#include "net/flood.h"

#include <gtest/gtest.h>

#include <string>

#include "net/topology.h"

namespace nf::net {
namespace {

Overlay make_overlay(std::uint32_t n, std::uint64_t seed) {
  Rng rng(seed);
  return Overlay(random_connected(n, 4.0, rng));
}

TEST(FloodTest, ReachesEveryAlivePeerExactlyOnce) {
  Overlay overlay = make_overlay(100, 1);
  TrafficMeter meter(100);
  std::vector<int> deliveries(100, 0);
  Flood<std::string> flood(PeerId(7), "hello", 8,
                           TrafficCategory::kDissemination, 64,
                           [&](PeerId p, const std::string& s) {
                             EXPECT_EQ(s, "hello");
                             ++deliveries[p.value()];
                           });
  Engine engine(overlay, meter);
  engine.run(flood, 200);
  EXPECT_EQ(flood.num_reached(), 100u);
  for (int d : deliveries) EXPECT_EQ(d, 1);
}

TEST(FloodTest, DuplicatesAreCountedButSuppressed) {
  Overlay overlay = make_overlay(50, 2);
  TrafficMeter meter(50);
  Flood<int> flood(PeerId(0), 1, 4, TrafficCategory::kDissemination, 64,
                   [](PeerId, const int&) {});
  Engine engine(overlay, meter);
  engine.run(flood, 200);
  EXPECT_EQ(flood.num_reached(), 50u);
  // A flood on a graph with cycles necessarily sees duplicates.
  EXPECT_GT(flood.num_copies(), 49u);
}

TEST(FloodTest, TtlLimitsPropagation) {
  // Line topology: TTL 3 reaches exactly peers 0..3.
  Topology t(10);
  for (std::uint32_t i = 0; i + 1 < 10; ++i) {
    t.add_edge(PeerId(i), PeerId(i + 1));
  }
  Overlay overlay(std::move(t));
  TrafficMeter meter(10);
  Flood<int> flood(PeerId(0), 1, 4, TrafficCategory::kDissemination, 3,
                   [](PeerId, const int&) {});
  Engine engine(overlay, meter);
  engine.run(flood, 100);
  EXPECT_EQ(flood.num_reached(), 4u);
  EXPECT_TRUE(flood.reached(PeerId(3)));
  EXPECT_FALSE(flood.reached(PeerId(4)));
}

TEST(FloodTest, DeadPeersBlockButDoNotCrash) {
  Topology t(5);
  for (std::uint32_t i = 0; i + 1 < 5; ++i) {
    t.add_edge(PeerId(i), PeerId(i + 1));
  }
  Overlay overlay(std::move(t));
  overlay.fail(PeerId(2));
  TrafficMeter meter(5);
  Flood<int> flood(PeerId(0), 1, 4, TrafficCategory::kDissemination, 10,
                   [](PeerId, const int&) {});
  Engine engine(overlay, meter);
  engine.run(flood, 100);
  EXPECT_EQ(flood.num_reached(), 2u);  // 0 and 1; 2 is dead, 3-4 unreachable
}

TEST(FloodTest, BytesChargedPerForwardedCopy) {
  Topology t(3);
  t.add_edge(PeerId(0), PeerId(1));
  t.add_edge(PeerId(1), PeerId(2));
  Overlay overlay(std::move(t));
  TrafficMeter meter(3);
  Flood<int> flood(PeerId(0), 1, 16, TrafficCategory::kDissemination, 10,
                   [](PeerId, const int&) {});
  Engine engine(overlay, meter);
  engine.run(flood, 100);
  // 0 -> 1, then 1 -> 2 (not back to 0): two copies of 16 bytes.
  EXPECT_EQ(meter.total(TrafficCategory::kDissemination), 32u);
}

TEST(FloodTest, InvalidTtlThrows) {
  EXPECT_THROW(Flood<int>(PeerId(0), 1, 4, TrafficCategory::kDissemination,
                          0, [](PeerId, const int&) {}),
               InvalidArgument);
}

}  // namespace
}  // namespace nf::net
