#include "net/engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace nf::net {
namespace {

Overlay make_line(std::uint32_t n) {
  Topology t(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    t.add_edge(PeerId(i), PeerId(i + 1));
  }
  return Overlay(std::move(t));
}

/// Relays a token from peer 0 down the line, recording arrival rounds.
class RelayProtocol final : public Protocol {
 public:
  explicit RelayProtocol(std::uint32_t n) : arrival_round_(n, -1) {}

  void on_round(Context& ctx) override {
    if (ctx.self() == PeerId(0) && !started_) {
      started_ = true;
      arrival_round_[0] = static_cast<std::int64_t>(ctx.round());
      ctx.send(PeerId(1), TrafficCategory::kControl, 4, std::any(1));
    }
  }

  void on_message(Context& ctx, Envelope&& env) override {
    const std::uint32_t self = ctx.self().value();
    arrival_round_[self] = static_cast<std::int64_t>(ctx.round());
    received_from_.push_back(env.from);
    if (self + 1 < arrival_round_.size()) {
      ctx.send(PeerId(self + 1), TrafficCategory::kControl, 4,
               std::any(std::any_cast<int>(env.payload) + 1));
    } else {
      done_ = true;
    }
  }

  [[nodiscard]] bool active() const override { return !done_; }

  std::vector<std::int64_t> arrival_round_;
  std::vector<PeerId> received_from_;
  bool started_ = false;
  bool done_ = false;
};

TEST(EngineTest, MessagesTakeOneRoundPerHop) {
  Overlay overlay = make_line(5);
  TrafficMeter meter(5);
  Engine engine(overlay, meter);
  RelayProtocol relay(5);
  engine.run(relay, 100);
  EXPECT_TRUE(relay.done_);
  for (std::uint32_t p = 0; p < 5; ++p) {
    EXPECT_EQ(relay.arrival_round_[p], p) << "peer " << p;
  }
}

TEST(EngineTest, ChargesSenderOnSend) {
  Overlay overlay = make_line(3);
  TrafficMeter meter(3);
  Engine engine(overlay, meter);
  RelayProtocol relay(3);
  engine.run(relay, 100);
  EXPECT_EQ(meter.peer_total(PeerId(0)), 4u);
  EXPECT_EQ(meter.peer_total(PeerId(1)), 4u);
  EXPECT_EQ(meter.peer_total(PeerId(2)), 0u);  // last peer never sends
  EXPECT_EQ(meter.num_messages(), 2u);
}

TEST(EngineTest, StopsWhenQuiescent) {
  Overlay overlay = make_line(4);
  TrafficMeter meter(4);
  Engine engine(overlay, meter);
  RelayProtocol relay(4);
  const std::uint64_t rounds = engine.run(relay, 1000);
  EXPECT_LE(rounds, 6u);  // 3 hops + bounded overhead, not 1000
}

TEST(EngineTest, DropsMessagesToDeadPeers) {
  Overlay overlay = make_line(3);
  TrafficMeter meter(3);
  Engine engine(overlay, meter);
  RelayProtocol relay(3);
  ChurnSchedule churn;
  churn.fail_at(1, PeerId(1));  // dies before the message arrives
  engine.run(relay, 10, &churn);
  EXPECT_FALSE(relay.done_);
  EXPECT_EQ(engine.dropped_messages(), 1u);
  EXPECT_EQ(relay.arrival_round_[1], -1);
}

TEST(EngineTest, ChurnJoinRevivesPeer) {
  Overlay overlay = make_line(3);
  overlay.fail(PeerId(2));
  TrafficMeter meter(3);
  Engine engine(overlay, meter);
  RelayProtocol relay(3);
  ChurnSchedule churn;
  churn.join_at(1, PeerId(2));
  engine.run(relay, 10, &churn);
  EXPECT_TRUE(relay.done_);
}

TEST(EngineTest, DeadPeersGetNoOnRound) {
  Overlay overlay = make_line(2);
  overlay.fail(PeerId(0));
  TrafficMeter meter(2);
  Engine engine(overlay, meter);
  RelayProtocol relay(2);
  engine.run(relay, 5);
  EXPECT_FALSE(relay.started_);
}

TEST(EngineTest, RespectsMaxRounds) {
  /// A protocol that stays active forever.
  class Forever final : public Protocol {
   public:
    void on_round(Context&) override { ++ticks; }
    [[nodiscard]] bool active() const override { return true; }
    int ticks = 0;
  };
  Overlay overlay = make_line(1);
  TrafficMeter meter(1);
  Engine engine(overlay, meter);
  Forever forever;
  const std::uint64_t rounds = engine.run(forever, 7);
  EXPECT_EQ(rounds, 7u);
  EXPECT_EQ(forever.ticks, 7);
}

TEST(EngineTest, RoutesMessagesToOwningProtocol) {
  /// Each protocol pings its own id; cross-delivery would corrupt counts.
  class Ping final : public Protocol {
   public:
    explicit Ping(int id) : id_(id) {}
    void on_round(Context& ctx) override {
      if (ctx.self() == PeerId(0) && !sent_) {
        sent_ = true;
        ctx.send(PeerId(1), TrafficCategory::kControl, 1, std::any(id_));
      }
    }
    void on_message(Context&, Envelope&& env) override {
      got_ = std::any_cast<int>(env.payload);
    }
    [[nodiscard]] bool active() const override { return got_ == 0 && sent_; }
    int id_;
    bool sent_ = false;
    int got_ = 0;
  };
  Overlay overlay = make_line(2);
  TrafficMeter meter(2);
  Engine engine(overlay, meter);
  Ping a(1);
  Ping b(2);
  std::vector<Protocol*> protos{&a, &b};
  engine.run(protos, 10);
  EXPECT_EQ(a.got_, 1);
  EXPECT_EQ(b.got_, 2);
}

TEST(EngineTest, RoundCounterAdvancesAcrossRuns) {
  Overlay overlay = make_line(2);
  TrafficMeter meter(2);
  Engine engine(overlay, meter);
  RelayProtocol r1(2);
  engine.run(r1, 10);
  const std::uint64_t after_first = engine.round();
  EXPECT_GT(after_first, 0u);
  RelayProtocol r2(2);
  engine.run(r2, 10);
  EXPECT_GT(engine.round(), after_first);
}

TEST(EngineTest, MismatchedMeterThrows) {
  Overlay overlay = make_line(3);
  TrafficMeter meter(2);
  EXPECT_THROW(Engine(overlay, meter), InvalidArgument);
}

TEST(EngineTest, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    Overlay overlay = make_line(6);
    TrafficMeter meter(6);
    Engine engine(overlay, meter);
    RelayProtocol relay(6);
    engine.run(relay, 100);
    return relay.arrival_round_;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace nf::net
