#include "core/monitor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "net/topology.h"
#include "workload/growing.h"
#include "workload/workload.h"

namespace nf::core {
namespace {

using net::Overlay;
using net::TrafficMeter;

struct Rig {
  explicit Rig(std::uint64_t seed)
      : growing([&] {
          wl::WorkloadConfig cfg;
          cfg.num_peers = 60;
          cfg.num_items = 3000;
          cfg.seed = seed;
          return wl::GrowingWorkload::from(wl::Workload::generate(cfg));
        }()),
        overlay([&] {
          Rng rng(seed + 1);
          return Overlay(net::random_tree(60, 3, rng));
        }()),
        meter(60),
        hierarchy(agg::build_bfs_hierarchy(overlay, PeerId(0))) {}

  [[nodiscard]] ValueMap<ItemId, Value> oracle(double theta) const {
    ValueMap<ItemId, Value> global;
    for (std::uint32_t p = 0; p < 60; ++p) {
      global.merge_add(growing.local_items(PeerId(p)));
    }
    const auto t = static_cast<Value>(
        std::ceil(theta * static_cast<double>(global.total())));
    global.retain([&](ItemId, Value v) { return v >= t; });
    return global;
  }

  wl::GrowingWorkload growing;
  Overlay overlay;
  TrafficMeter meter;
  agg::Hierarchy hierarchy;
};

NetFilterConfig config() {
  NetFilterConfig c;
  c.num_groups = 48;
  c.num_filters = 2;
  return c;
}

TEST(GrowingWorkloadTest, AccumulatesDeltas) {
  wl::GrowingWorkload g(3);
  g.add(PeerId(0), ItemId(7), 2);
  g.add(PeerId(0), ItemId(7), 3);
  g.add(PeerId(2), ItemId(7), 1);
  EXPECT_EQ(g.local_items(PeerId(0)).value_of(ItemId(7)), 5u);
  EXPECT_EQ(g.total_value(), 6u);
  LocalItems batch;
  batch.add(ItemId(9), 4);
  g.add_all(PeerId(1), batch);
  EXPECT_EQ(g.total_value(), 10u);
  EXPECT_THROW(g.add(PeerId(9), ItemId(1), 1), InvalidArgument);
  EXPECT_THROW(g.add(PeerId(0), ItemId(1), 0), InvalidArgument);
}

TEST(ContinuousMonitorTest, EveryEpochIsExact) {
  Rig rig(1);
  ContinuousMonitor monitor(config(), 0.01);
  Rng rng(77);
  for (int e = 0; e < 5; ++e) {
    const EpochReport report =
        monitor.epoch(rig.growing, rig.hierarchy, rig.overlay, rig.meter);
    EXPECT_EQ(report.frequent, rig.oracle(0.01)) << "epoch " << e;
    EXPECT_EQ(report.epoch, static_cast<std::uint32_t>(e));
    // Grow some counters for the next epoch.
    for (int i = 0; i < 200; ++i) {
      rig.growing.add(PeerId(static_cast<std::uint32_t>(rng.below(60))),
                      ItemId(rng.below(40)), rng.between(1, 30));
    }
  }
  EXPECT_EQ(monitor.epochs_run(), 5u);
  EXPECT_GT(monitor.total_cost_per_peer(), 0.0);
}

TEST(ContinuousMonitorTest, DetectsNewlyFrequentItems) {
  Rig rig(2);
  ContinuousMonitor monitor(config(), 0.01);
  (void)monitor.epoch(rig.growing, rig.hierarchy, rig.overlay, rig.meter);

  // Pump one previously-absent item well past the threshold, spread over
  // many peers.
  const ItemId rocket(424242);
  const Value t_now = static_cast<Value>(rig.growing.total_value() / 50);
  for (std::uint32_t p = 0; p < 60; ++p) {
    rig.growing.add(PeerId(p), rocket, t_now / 30 + 1);
  }
  const EpochReport report =
      monitor.epoch(rig.growing, rig.hierarchy, rig.overlay, rig.meter);
  EXPECT_TRUE(report.frequent.contains(rocket));
  EXPECT_EQ(std::count(report.newly_frequent.begin(),
                       report.newly_frequent.end(), rocket),
            1);
}

TEST(ContinuousMonitorTest, RisingBarDropsStaleItems) {
  Rig rig(3);
  ContinuousMonitor monitor(config(), 0.01);
  const EpochReport first =
      monitor.epoch(rig.growing, rig.hierarchy, rig.overlay, rig.meter);
  ASSERT_GT(first.frequent.size(), 1u);

  // Find the weakest currently-frequent item, then inflate *other* items
  // so the threshold rises past it (its own counter never shrinks).
  ItemId weakest;
  Value weakest_v = std::numeric_limits<Value>::max();
  for (const auto& [id, v] : first.frequent) {
    if (v < weakest_v) {
      weakest_v = v;
      weakest = id;
    }
  }
  const Value pump = rig.growing.total_value();  // double the system total
  for (std::uint32_t p = 0; p < 60; ++p) {
    rig.growing.add(PeerId(p), ItemId(999999), pump / 60 + 1);
  }
  const EpochReport second =
      monitor.epoch(rig.growing, rig.hierarchy, rig.overlay, rig.meter);
  EXPECT_GT(second.threshold, first.threshold);
  EXPECT_FALSE(second.frequent.contains(weakest));
  EXPECT_EQ(std::count(second.dropped.begin(), second.dropped.end(),
                       weakest),
            1);
  // Still exact.
  EXPECT_EQ(second.frequent, rig.oracle(0.01));
}

TEST(ContinuousMonitorTest, SurvivesHierarchyChangeBetweenEpochs) {
  Rig rig(4);
  ContinuousMonitor monitor(config(), 0.01);
  (void)monitor.epoch(rig.growing, rig.hierarchy, rig.overlay, rig.meter);
  // Re-root the hierarchy (as a repair or re-election would).
  const agg::Hierarchy rerooted =
      agg::build_bfs_hierarchy(rig.overlay, PeerId(30));
  const EpochReport report =
      monitor.epoch(rig.growing, rerooted, rig.overlay, rig.meter);
  EXPECT_EQ(report.frequent, rig.oracle(0.01));
}

TEST(ContinuousMonitorTest, InvalidThetaThrows) {
  EXPECT_THROW(ContinuousMonitor(config(), 0.0), InvalidArgument);
  EXPECT_THROW(ContinuousMonitor(config(), 1.0001), InvalidArgument);
}

}  // namespace
}  // namespace nf::core
