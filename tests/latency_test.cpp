// Heterogeneous link latencies (net/engine.h LatencyModel).
#include <gtest/gtest.h>

#include "agg/convergecast.h"
#include "core/netfilter.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace nf::net {
namespace {

Overlay make_line(std::uint32_t n) {
  Topology t(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    t.add_edge(PeerId(i), PeerId(i + 1));
  }
  return Overlay(std::move(t));
}

LatencyModel slow_links(std::uint32_t min_d, std::uint32_t max_d,
                        std::uint64_t seed = 3) {
  LatencyModel m;
  m.min_delay = min_d;
  m.max_delay = max_d;
  m.seed = seed;
  return m;
}

TEST(LatencyModelTest, DelayIsSymmetricAndBounded) {
  const LatencyModel m = slow_links(2, 7);
  for (std::uint32_t a = 0; a < 20; ++a) {
    for (std::uint32_t b = a + 1; b < 20; ++b) {
      const std::uint32_t d = m.delay(PeerId(a), PeerId(b));
      EXPECT_EQ(d, m.delay(PeerId(b), PeerId(a)));
      EXPECT_GE(d, 2u);
      EXPECT_LE(d, 7u);
    }
  }
}

TEST(LatencyModelTest, UnitModelChangesNothing) {
  Overlay overlay = make_line(5);
  TrafficMeter meter(5);
  Engine engine(overlay, meter);
  engine.set_latency_model(LatencyModel{});  // (1,1)
  const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
  agg::Convergecast<std::uint64_t> cast(
      h, TrafficCategory::kFiltering, [](PeerId) { return std::uint64_t{1}; },
      [](std::uint64_t& a, std::uint64_t&& b) { a += b; },
      [](const std::uint64_t&) { return std::uint64_t{4}; });
  const std::uint64_t rounds = engine.run(cast, 100);
  EXPECT_EQ(cast.result(), 5u);
  EXPECT_LE(rounds, 7u);
}

TEST(LatencyModelTest, SlowLinksStretchCompletionNotCorrectness) {
  auto run_with = [](std::uint32_t max_delay) {
    Rng rng(5);
    Overlay overlay(random_connected(50, 4.0, rng));
    TrafficMeter meter(50);
    Engine engine(overlay, meter);
    engine.set_latency_model(slow_links(1, max_delay));
    const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
    agg::Convergecast<std::uint64_t> cast(
        h, TrafficCategory::kFiltering,
        [](PeerId p) { return std::uint64_t{p.value()} + 1; },
        [](std::uint64_t& a, std::uint64_t&& b) { a += b; },
        [](const std::uint64_t&) { return std::uint64_t{4}; });
    const std::uint64_t rounds = engine.run(cast, 5000);
    EXPECT_TRUE(cast.complete());
    std::uint64_t expect = 0;
    for (std::uint32_t p = 0; p < 50; ++p) expect += p + 1;
    EXPECT_EQ(cast.result(), expect);
    // Bytes unchanged: latency costs time, not traffic.
    EXPECT_EQ(meter.total(), 49u * 4);
    return rounds;
  };
  const std::uint64_t fast = run_with(1);
  const std::uint64_t slow = run_with(8);
  EXPECT_GT(slow, fast);
}

TEST(LatencyModelTest, FixedDelayLineIsExactlyPredictable) {
  // Line of 4 with uniform delay 3: the farthest leaf's contribution takes
  // 3 hops * 3 rounds; total completion ~9-11 rounds.
  Overlay overlay = make_line(4);
  TrafficMeter meter(4);
  Engine engine(overlay, meter);
  engine.set_latency_model(slow_links(3, 3));
  const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
  agg::Convergecast<std::uint64_t> cast(
      h, TrafficCategory::kFiltering, [](PeerId) { return std::uint64_t{1}; },
      [](std::uint64_t& a, std::uint64_t&& b) { a += b; },
      [](const std::uint64_t&) { return std::uint64_t{4}; });
  const std::uint64_t rounds = engine.run(cast, 100);
  EXPECT_EQ(cast.result(), 4u);
  EXPECT_GE(rounds, 9u);
  EXPECT_LE(rounds, 12u);
}

TEST(LatencyModelTest, ComposesWithLossModel) {
  Rng rng(6);
  Overlay overlay(random_connected(30, 4.0, rng));
  TrafficMeter meter(30);
  Engine engine(overlay, meter);
  engine.set_latency_model(slow_links(1, 4));
  LinkFaultModel fault;
  fault.loss_probability = 0.2;
  fault.retransmit_after = 6;  // cover the worst link delay + ack
  engine.set_fault_model(fault);
  const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
  agg::Convergecast<std::uint64_t> cast(
      h, TrafficCategory::kFiltering, [](PeerId) { return std::uint64_t{1}; },
      [](std::uint64_t& a, std::uint64_t&& b) { a += b; },
      [](const std::uint64_t&) { return std::uint64_t{4}; });
  engine.run(cast, 5000);
  ASSERT_TRUE(cast.complete());
  EXPECT_EQ(cast.result(), 30u);
}

TEST(LatencyModelTest, InvalidModelsRejected) {
  Overlay overlay = make_line(2);
  TrafficMeter meter(2);
  Engine engine(overlay, meter);
  LatencyModel zero;
  zero.min_delay = 0;
  EXPECT_THROW(engine.set_latency_model(zero), InvalidArgument);
  LatencyModel inverted;
  inverted.min_delay = 5;
  inverted.max_delay = 2;
  EXPECT_THROW(engine.set_latency_model(inverted), InvalidArgument);
}

}  // namespace
}  // namespace nf::net
