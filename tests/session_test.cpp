// Unit tests for the session runtime (net/session.h): envelope routing
// between multiplexed sessions, per-peer phase opening, buffered replay
// and per-session traffic attribution.
#include "net/session.h"

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "net/engine.h"
#include "net/topology.h"

namespace nf::net {
namespace {

constexpr std::uint32_t kPeers = 8;

Overlay line_overlay() {
  // 0 - 1 - 2 - ... - 7.
  Topology topo(kPeers);
  for (std::uint32_t p = 0; p + 1 < kPeers; ++p) {
    topo.add_edge(PeerId(p), PeerId(p + 1));
  }
  return Overlay(std::move(topo));
}

/// Relays one uint32 token from peer 0 to the last peer, one hop per round.
class RelayPhase final : public TypedPhase<std::uint32_t> {
 public:
  explicit RelayPhase(std::uint32_t token) : token_(token) {}

  void on_start(PhaseContext& ctx) override {
    if (ctx.self() != PeerId(0)) return;
    this->send(ctx, PeerId(1), TrafficCategory::kControl, 8, token_);
  }

  [[nodiscard]] bool done() const override {
    return arrived_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t received() const { return received_; }

 protected:
  void on_payload(PhaseContext& ctx, std::uint32_t&& token,
                  PeerId /*from*/) override {
    if (ctx.self().value() + 1 < kPeers) {
      this->send(ctx, PeerId(ctx.self().value() + 1),
                 TrafficCategory::kControl, 8, std::uint32_t{token});
      return;
    }
    received_ = token;
    arrived_.store(true, std::memory_order_relaxed);
  }

 private:
  std::uint32_t token_;
  std::uint32_t received_ = 0;
  std::atomic<bool> arrived_{false};
};

TEST(SessionMuxTest, RoutesEnvelopesToTheirOwnSession) {
  Overlay overlay = line_overlay();
  TrafficMeter meter(kPeers);
  SessionMux mux;
  RelayPhase a(111);
  RelayPhase b(222);
  PhaseOptions opts;
  opts.start = PhaseStart::kAllPeers;
  const SessionId sa = mux.add_session("a");
  (void)mux.add_phase(sa, a, opts);
  const SessionId sb = mux.add_session("b");
  (void)mux.add_phase(sb, b, opts);

  Engine engine(overlay, meter);
  (void)engine.run(mux, 100);

  EXPECT_TRUE(mux.all_done());
  EXPECT_TRUE(mux.session_done(sa));
  EXPECT_TRUE(mux.session_done(sb));
  // Same phase type, same wire shape — only the session tag kept the two
  // token streams apart.
  EXPECT_EQ(a.received(), 111u);
  EXPECT_EQ(b.received(), 222u);
}

TEST(SessionMuxTest, PerSessionTrafficTalliesSplitTheMeter) {
  Overlay overlay = line_overlay();
  TrafficMeter meter(kPeers);
  SessionMux mux;
  RelayPhase a(1);
  RelayPhase b(2);
  PhaseOptions opts;
  opts.start = PhaseStart::kAllPeers;
  const SessionId sa = mux.add_session();  // unnamed -> "s0"
  (void)mux.add_phase(sa, a, opts);
  const SessionId sb = mux.add_session("named");
  (void)mux.add_phase(sb, b, opts);

  Engine engine(overlay, meter);
  (void)engine.run(mux, 100);

  const auto traffic = mux.traffic();
  ASSERT_EQ(traffic.size(), 2u);
  EXPECT_EQ(traffic[0].name, "s0");
  EXPECT_EQ(traffic[1].name, "named");
  const auto control = static_cast<std::size_t>(TrafficCategory::kControl);
  // 7 hops of 8 bytes each, per session; together they account for the
  // meter's total exactly.
  EXPECT_EQ(traffic[0].bytes[control], 56u);
  EXPECT_EQ(traffic[0].msgs[control], 7u);
  EXPECT_EQ(traffic[0].total_bytes(), traffic[1].total_bytes());
  EXPECT_EQ(traffic[0].total_bytes() + traffic[1].total_bytes(),
            meter.total());
}

/// Sends a token from peer 0 to peer 1 as soon as the phase opens at 0;
/// records the round each delivery fires at.
class SinkPhase final : public TypedPhase<std::uint32_t> {
 public:
  void on_start(PhaseContext& ctx) override {
    ++opens_;
    if (ctx.self() != PeerId(0)) return;
    this->send(ctx, PeerId(1), TrafficCategory::kControl, 4,
               std::uint32_t{7});
  }

  [[nodiscard]] bool done() const override {
    return done_.load(std::memory_order_relaxed);
  }
  void finish() { done_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] int opens() const { return opens_; }
  [[nodiscard]] const std::vector<std::pair<std::uint32_t, std::uint64_t>>&
  seen() const {
    return seen_;
  }

 protected:
  void on_payload(PhaseContext& ctx, std::uint32_t&& v,
                  PeerId /*from*/) override {
    seen_.emplace_back(v, ctx.round());
  }

 private:
  int opens_ = 0;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> seen_;
  std::atomic<bool> done_{false};
};

/// Opens the sink at peer 0 immediately and at peer 1 only in round 3 —
/// after the sink's token has already arrived there.
class DriverPhase final : public TypedPhase<std::uint32_t> {
 public:
  DriverPhase(SinkPhase& sink, PhaseId sink_pid)
      : sink_(sink), sink_pid_(sink_pid) {}

  void on_start(PhaseContext& ctx) override {
    if (ctx.self() == PeerId(0)) ctx.open_phase(sink_pid_);
  }

  void on_round(PhaseContext& ctx) override {
    if (ctx.self() == PeerId(1) && ctx.round() == 3) {
      ctx.open_phase(sink_pid_);
      sink_.finish();
      done_.store(true, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] bool done() const override {
    return done_.load(std::memory_order_relaxed);
  }

 protected:
  void on_payload(PhaseContext& /*ctx*/, std::uint32_t&& /*v*/,
                  PeerId /*from*/) override {}

 private:
  SinkPhase& sink_;
  PhaseId sink_pid_;
  std::atomic<bool> done_{false};
};

TEST(SessionMuxTest, BuffersEarlyArrivalsUntilThePhaseOpens) {
  Overlay overlay = line_overlay();
  TrafficMeter meter(kPeers);
  SessionMux mux;
  SinkPhase sink;
  DriverPhase driver(sink, /*sink_pid=*/1);

  const SessionId s = mux.add_session();
  PhaseOptions driver_opts;
  driver_opts.start = PhaseStart::kAllPeers;
  (void)mux.add_phase(s, driver, driver_opts);
  PhaseOptions sink_opts;
  sink_opts.open_on_message = false;
  const PhaseId sink_pid = mux.add_phase(s, sink, sink_opts);
  ASSERT_EQ(sink_pid, 1u);

  Engine engine(overlay, meter);
  (void)engine.run(mux, 100);

  EXPECT_TRUE(mux.all_done());
  // The sink opened exactly where the driver opened it, nowhere else:
  // peer 0 (round 0) and peer 1 (round 3). The token reached peer 1 in
  // round 1 but was held until the round-3 open replayed it.
  EXPECT_EQ(sink.opens(), 2);
  ASSERT_EQ(sink.seen().size(), 1u);
  EXPECT_EQ(sink.seen()[0].first, 7u);
  EXPECT_EQ(sink.seen()[0].second, 3u);
}

TEST(SessionMuxTest, OpenOnMessageDeliversImmediately) {
  // Same wiring, but the default open_on_message: the token's arrival at
  // peer 1 opens the sink right there in round 1.
  Overlay overlay = line_overlay();
  TrafficMeter meter(kPeers);
  SessionMux mux;
  SinkPhase sink;
  DriverPhase driver(sink, /*sink_pid=*/1);

  const SessionId s = mux.add_session();
  PhaseOptions driver_opts;
  driver_opts.start = PhaseStart::kAllPeers;
  (void)mux.add_phase(s, driver, driver_opts);
  PhaseOptions sink_opts;  // open_on_message = true
  (void)mux.add_phase(s, sink, sink_opts);

  Engine engine(overlay, meter);
  (void)engine.run(mux, 100);

  EXPECT_TRUE(mux.all_done());
  ASSERT_EQ(sink.seen().size(), 1u);
  EXPECT_EQ(sink.seen()[0].second, 1u);
}

TEST(SessionMuxTest, RejectsUnknownSessionIds) {
  SessionMux mux;
  (void)mux.add_session("only");
  EXPECT_THROW((void)mux.session_done(3), InvalidArgument);
  RelayPhase phase(0);
  EXPECT_THROW((void)mux.add_phase(7, phase, PhaseOptions{}),
               InvalidArgument);
}

}  // namespace
}  // namespace nf::net
