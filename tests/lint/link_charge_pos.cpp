// nf-lint fixture: nf-cap-thread must fire — LinkStats::charge called
// from a protocol component. The Misra-Gries link summary is merge-order
// sensitive, so only net/engine.cpp's canonical barrier merge may charge
// it (folded into the capability pass from the old nf-obs-context rule).
// Lexed by tools/nf-lint; compiled only by the engine parity test.
#include <cstddef>
#include <cstdint>

namespace fixture {

struct LinkStats {
  void charge(std::uint32_t, std::uint32_t, std::size_t, std::uint64_t) {}
};

class Convergecast {
 public:
  void on_deliver(std::uint32_t from, std::uint32_t to,
                  std::uint64_t bytes) {
    // Shard callback order is nondeterministic: this breaks the
    // bit-identical-across---threads contract.
    link_stats_->charge(from, to, 0, bytes);
  }

 private:
  LinkStats* link_stats_ = nullptr;
};

}  // namespace fixture
