// nf-lint fixture: the same Phase component as flat_payload_pos.cpp with
// every site suppressed (pretend this is a control-plane phase whose one
// tiny message per run legitimately rides the legacy object pipeline).
// nf-lint must report nothing for nf-flat-payload.
#include <any>
#include <cstdint>
#include <utility>

namespace net {
template <typename M>
struct TypedPhase {};
struct Ctx {
  // nf-lint: nf-flat-payload-ok (declaration, not a hot-path send)
  void send_raw(std::uint32_t, std::uint64_t, std::any) {}
};
}  // namespace net

namespace fixture {

struct HeavySet {
  std::uint64_t bits = 0;
};

class ControlMulticast final  // control plane, not hot path
    : public net::TypedPhase<HeavySet> {  // nf-lint: nf-flat-payload-ok
 public:
  void on_round(net::Ctx& ctx) {
    // nf-lint: nf-flat-payload-ok (one message per run, off the hot path)
    ctx.send_raw(1, 64, std::any(HeavySet{payload_}));
  }

 private:
  std::uint64_t payload_ = 0;
};

}  // namespace fixture
