// nf-lint fixture: nf-flat-payload must fire three times — the TypedPhase
// base declaration, the std::any payload, and the send_raw call — because
// this file declares a Phase component shipping object payloads. Never
// compiled; lexed by tools/nf-lint only.
#include <any>
#include <cstdint>
#include <utility>

namespace net {
template <typename M>
struct TypedPhase {};
struct Ctx {
  void send_raw(std::uint32_t, std::uint64_t, std::any) {}
};
}  // namespace net

namespace fixture {

struct HeavySet {
  std::uint64_t bits = 0;
};

class ObjectMulticast final : public net::TypedPhase<HeavySet> {
 public:
  void on_round(net::Ctx& ctx) {
    // Reconstructs an owning payload object per message: allocates on the
    // hot path and breaks the zero-alloc steady state.
    ctx.send_raw(1, 64, std::any(HeavySet{payload_}));
  }

 private:
  std::uint64_t payload_ = 0;
};

}  // namespace fixture
