// nf-lint fixture: nf-obs-context must fire twice — an obs::Context
// dereference with no null guard in sight, and a string-keyed metric-handle
// lookup inside a loop. Never compiled; lexed by tools/nf-lint only.
#include <cstdint>
#include <string>

namespace fixture {

struct Counter {
  void add(std::uint64_t) {}
};
struct Registry {
  Counter& counter(const std::string&) {
    static Counter c;
    return c;
  }
};
struct ObsContext {
  Registry registry;
};

class Aggregator {
 public:
  void finish(int rounds) {
    obs_->registry.counter("agg/done").add(1);  // obs_ is nullable!
    for (int r = 0; r < rounds; ++r) {
      registry.counter("agg/rounds").add(1);  // lookup per iteration
    }
  }

 private:
  ObsContext* obs_ = nullptr;
  Registry registry;
};

}  // namespace fixture
