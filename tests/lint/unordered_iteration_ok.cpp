// nf-lint fixture: the same nondeterministic iteration as
// unordered_iteration_pos.cpp, with every site suppressed. nf-lint must
// report nothing for nf-determinism-unordered-iteration.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

std::uint64_t emit_group_sums() {
  // Pretend a profile showed the hash map matters and order was proven
  // irrelevant downstream; the suppression carries that claim.
  std::unordered_map<std::uint32_t, std::uint64_t> sums;  // nf-lint: nf-determinism-unordered-iteration-ok
  sums[3] = 7;
  std::uint64_t total = 0;
  // nf-lint: nf-determinism-unordered-iteration-ok (order folded into a sum)
  for (const auto& [id, v] : sums) {
    total += id + v;
  }
  std::unordered_set<std::uint32_t> members{1, 2, 3};  // nf-lint: nf-determinism-unordered-iteration-ok
  // nf-lint: nf-determinism-unordered-iteration-ok
  std::vector<std::uint32_t> out(members.begin(), members.end());
  return total + out.size();
}

}  // namespace fixture
