// nf-lint fixture: nf-cap-complete must fire — a function touches the
// engine's guarded, merge-order-sensitive member set (lineage_) without
// declaring any capability. Every toucher must say which execution context
// it runs in (src/common/capability.h). Lexed by tools/nf-lint; compiled
// only by the engine parity test (tests/lint/nf_lint_parity.cmake).
#include <cstdint>

namespace fixture {

class Engine {
 public:
  void note_admission(std::uint64_t bytes) {
    lineage_ += bytes;  // guarded member, no capability declared
  }

 private:
  std::uint64_t lineage_ = 0;
};

}  // namespace fixture
