// nf-lint fixture: the same node-keyed maps as arena_map_pos.cpp with both
// sites suppressed (pretend the key space is sparse — say, only hierarchy
// roots — so a dense arena would waste memory). nf-lint must report nothing
// for nf-arena-map.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

struct PeerId {
  std::uint32_t v = 0;
  bool operator<(PeerId o) const { return v < o.v; }
};
using NodeId = PeerId;

class RootReports {
 public:
  void record(PeerId p, std::uint64_t bytes) { pending_[p] += bytes; }

 private:
  std::map<PeerId, std::uint64_t> pending_;  // nf-lint: nf-arena-map-ok
  // nf-lint: nf-arena-map-ok (sparse key space: hierarchy roots only)
  std::unordered_map<NodeId, std::vector<std::uint64_t>> history_;
};

}  // namespace fixture
