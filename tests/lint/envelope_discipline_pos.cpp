// nf-lint fixture: nf-envelope-discipline must fire three times — the
// direct send_tagged call, the raw Envelope construction, and the
// kNoSession reference — because this file declares a Phase component.
// Never compiled; lexed by tools/nf-lint only.
#include <cstdint>
#include <vector>

namespace net {
struct Phase {};
struct Envelope {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
};
inline constexpr std::uint32_t kNoSession = 0xFFFFFFFFu;
struct Ctx {
  void send_tagged(std::uint32_t, std::uint64_t, std::uint32_t,
                   std::uint32_t) {}
  std::vector<Envelope> queue;
};
}  // namespace net

namespace fixture {

class RogueBroadcast : public net::Phase {
 public:
  void on_round(net::Ctx& ctx) {
    ctx.send_tagged(1, 64, 7, 0);  // hand-threads session/phase ids
    ctx.queue.push_back(net::Envelope{0, 1});  // bypasses the mux tags
    session_ = net::kNoSession;  // detaches traffic from its session
  }

 private:
  std::uint32_t session_ = 0;
};

}  // namespace fixture
