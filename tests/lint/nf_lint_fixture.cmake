# ctest driver for one nf-lint self-test fixture pair (golden-style, like
# tools/nf_inspect_smoke.cmake): the positive fixture must make CHECK fire
# (exit 1, report naming the check and the fixture), and the suppressed twin
# must lint clean (exit 0, zero findings). Variables: LINT (binary), CHECK
# (full check name), POS / OK (fixture paths).
execute_process(
  COMMAND ${LINT} --engine=tokens --check=${CHECK} ${POS}
  RESULT_VARIABLE pos_rc
  OUTPUT_VARIABLE pos_out
  ERROR_VARIABLE pos_err)
if(NOT pos_rc EQUAL 1)
  message(FATAL_ERROR
    "positive fixture: expected exit 1, got ${pos_rc}\n${pos_out}${pos_err}")
endif()
if(NOT pos_out MATCHES "\\[${CHECK}\\]")
  message(FATAL_ERROR
    "positive fixture: report does not name [${CHECK}]\n${pos_out}")
endif()
get_filename_component(pos_name ${POS} NAME)
if(NOT pos_out MATCHES "${pos_name}")
  message(FATAL_ERROR
    "positive fixture: report does not cite ${pos_name}\n${pos_out}")
endif()

execute_process(
  COMMAND ${LINT} --engine=tokens --check=${CHECK} ${OK}
  RESULT_VARIABLE ok_rc
  OUTPUT_VARIABLE ok_out
  ERROR_VARIABLE ok_err)
if(NOT ok_rc EQUAL 0)
  message(FATAL_ERROR
    "suppressed fixture: expected exit 0, got ${ok_rc}\n${ok_out}${ok_err}")
endif()
if(NOT ok_out MATCHES ": 0 findings")
  message(FATAL_ERROR
    "suppressed fixture: expected zero findings\n${ok_out}")
endif()
