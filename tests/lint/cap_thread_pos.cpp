// nf-lint fixture: nf-cap-thread must fire — an NF_SHARD_CONTEXT callback
// calls an NF_ENGINE_THREAD-only API. Engine-thread bookkeeping is
// canonical-order sensitive; invoking it from a shard callback races the
// barrier merge. Lexed by tools/nf-lint; compiled only by the engine
// parity test (tests/lint/nf_lint_parity.cmake).
#include <cstdint>

#include "common/capability.h"

namespace fixture {

class Recorder {
 public:
  NF_ENGINE_THREAD void admit(std::uint64_t bytes) { total_ += bytes; }

 private:
  std::uint64_t total_ = 0;
};

class Phase {
 public:
  NF_SHARD_CONTEXT void on_message(std::uint64_t bytes) {
    recorder_.admit(bytes);  // engine-thread API from a shard callback
  }

 private:
  Recorder recorder_;
};

}  // namespace fixture
