// nf-lint fixture: the same sites as link_model_pos.cpp with the findings
// suppressed (pretend this is an offline trace-replay tool that re-runs
// the canonical admission stream single-threaded). nf-lint must report
// nothing for nf-link-model.
#include <cstddef>
#include <cstdint>

namespace fixture {

struct Scheduled {
  std::uint64_t queue_rounds;
  std::uint64_t clamped_bytes;
};

struct LinkQueueTable {
  Scheduled schedule(std::uint32_t, std::uint32_t, std::uint64_t,
                     std::uint64_t, std::uint32_t, std::uint32_t) {
    return {};
  }
  template <typename Cb>
  std::uint64_t drain_round(Cb&&) {
    return 0;
  }
};

struct LinkStats {
  void charge_spill(std::uint32_t, std::uint32_t, std::uint64_t) {}
  void set_backlog(std::size_t, std::uint64_t) {}
};

inline void noop_level(std::uint32_t, std::uint64_t) {}

class GreedyPhase {
 public:
  void on_send(std::uint32_t from, std::uint32_t to, std::uint64_t bytes) {
    // nf-lint: nf-link-model-ok (offline replay, canonical order)
    const Scheduled s = link_queues_.schedule(from, to, 900, bytes, 64, 0);
    if (s.clamped_bytes != 0) {
      // nf-lint: nf-link-model-ok (offline replay, canonical order)
      link_stats_->charge_spill(from, to, s.clamped_bytes);
    }
  }

  void on_round_end() {
    // nf-lint: nf-link-model-ok (offline replay, canonical order)
    const std::uint64_t left = link_queues_.drain_round(noop_level);
    // nf-lint: nf-link-model-ok (offline replay, canonical order)
    link_stats_->set_backlog(0, left);
  }

 private:
  LinkQueueTable link_queues_;
  LinkStats* link_stats_ = nullptr;
};

}  // namespace fixture
