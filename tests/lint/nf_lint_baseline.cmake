# ctest driver for nf-lint's baseline workflow: --write-baseline must
# capture the current findings, a re-run against that baseline must gate
# clean, and introducing a fresh violation must fail with a "new" finding.
# Variables: LINT (binary), FIXTURES (tests/lint source dir).
set(work ${CMAKE_CURRENT_BINARY_DIR}/nf_lint_baseline_work)
file(REMOVE_RECURSE ${work})
file(MAKE_DIRECTORY ${work})
configure_file(${FIXTURES}/arena_map_pos.cpp ${work}/seeded.cpp COPYONLY)

execute_process(
  COMMAND ${LINT} --engine=tokens --check=nf-arena-map
          --write-baseline=${work}/baseline.txt ${work}/seeded.cpp
  RESULT_VARIABLE write_rc
  OUTPUT_VARIABLE write_out)
if(NOT write_rc EQUAL 0)
  message(FATAL_ERROR "--write-baseline: expected exit 0, got ${write_rc}")
endif()
file(READ ${work}/baseline.txt baseline_text)
if(NOT baseline_text MATCHES "nf-arena-map\\|")
  message(FATAL_ERROR "baseline file lists no finding keys:\n${baseline_text}")
endif()

# Against the fresh baseline every finding is known: the gate passes.
execute_process(
  COMMAND ${LINT} --engine=tokens --check=nf-arena-map
          --baseline=${work}/baseline.txt ${work}/seeded.cpp
  RESULT_VARIABLE known_rc
  OUTPUT_VARIABLE known_out)
if(NOT known_rc EQUAL 0)
  message(FATAL_ERROR
    "baselined findings must not gate: exit ${known_rc}\n${known_out}")
endif()
if(NOT known_out MATCHES "0 new vs")
  message(FATAL_ERROR "summary does not report 0 new:\n${known_out}")
endif()

# A newly introduced violation is not in the baseline: the gate fails.
file(APPEND ${work}/seeded.cpp
  "namespace fixture { std::map<NodeId, int> fresh_state; }\n")
execute_process(
  COMMAND ${LINT} --engine=tokens --check=nf-arena-map
          --baseline=${work}/baseline.txt ${work}/seeded.cpp
  RESULT_VARIABLE new_rc
  OUTPUT_VARIABLE new_out)
if(NOT new_rc EQUAL 1)
  message(FATAL_ERROR
    "new finding must gate (exit 1), got ${new_rc}\n${new_out}")
endif()
if(NOT new_out MATCHES "1 new vs")
  message(FATAL_ERROR "summary does not report the new finding:\n${new_out}")
endif()
