// nf-lint fixture: nf-arena-map must fire on each node-keyed map below —
// peers are dense 0..N-1, so per-peer state belongs in PeerArena<T>
// (common/arena.h). Never compiled; lexed by tools/nf-lint only.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

struct PeerId {
  std::uint32_t v = 0;
  bool operator<(PeerId o) const { return v < o.v; }
};
using NodeId = PeerId;

class HostReports {
 public:
  void record(PeerId p, std::uint64_t bytes) { pending_[p] += bytes; }

 private:
  std::map<PeerId, std::uint64_t> pending_;
  std::unordered_map<NodeId, std::vector<std::uint64_t>> history_;
};

}  // namespace fixture
