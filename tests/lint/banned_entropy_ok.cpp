// nf-lint fixture: the same entropy sources as banned_entropy_pos.cpp with
// every site suppressed. nf-lint must report nothing for
// nf-determinism-banned-entropy.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

std::uint64_t jittered_backoff() {
  // Pretend this is a one-shot seed captured before any protocol round.
  std::random_device rd;  // nf-lint: nf-determinism-banned-entropy-ok
  // nf-lint: nf-determinism-banned-entropy-ok
  const auto t0 = std::chrono::steady_clock::now();
  const auto wall = std::chrono::system_clock::now();  // nf-lint: nf-determinism-banned-entropy-ok
  std::srand(42);  // nf-lint: nf-determinism-banned-entropy-ok
  // nf-lint: nf-determinism-banned-entropy-ok
  std::uint64_t x = static_cast<std::uint64_t>(std::rand());
  x += static_cast<std::uint64_t>(time(nullptr));  // nf-lint: nf-determinism-banned-entropy-ok
  (void)t0;
  (void)wall;
  return x + rd();  // nf-lint: nf-determinism-banned-entropy-ok
}

}  // namespace fixture
