// nf-lint fixture: the same Phase component as lineage_tag_pos.cpp with
// every site suppressed (pretend this is a runtime-internal shim that
// legitimately owns lineage stamping). nf-lint must report nothing for
// nf-envelope-discipline.
#include <cstdint>

namespace obs {
using LineageId = std::uint64_t;
// nf-lint: nf-envelope-discipline-ok (the definition)
inline constexpr LineageId kNoLineage = 0;
}  // namespace obs

namespace net {
struct Phase {};
struct Packet {
  std::uint64_t lineage = 0;
};
struct Ctx {
  Packet out;
  void send(std::uint32_t, std::uint64_t) {}
};
}  // namespace net

namespace fixture {

class RuntimeShim : public net::Phase {
 public:
  void on_round(net::Ctx& ctx) {
    parent_ = obs::kNoLineage;  // nf-lint: nf-envelope-discipline-ok
    ctx.out.lineage = 42;  // nf-lint: nf-envelope-discipline-ok
    ctx.send(1, 64);
  }

 private:
  obs::LineageId parent_ = 0;
};

}  // namespace fixture
