// nf-lint fixture: nf-cap-noalloc must fire twice — a growing container op
// with no reserve in sight directly inside an NF_STEADY_NOALLOC root, and
// operator new one call away (the whole-program walk must descend through
// the helper). Lexed by tools/nf-lint; compiled only by the engine parity
// test (tests/lint/nf_lint_parity.cmake).
#include <cstdint>
#include <vector>

#include "common/capability.h"

namespace fixture {

class Merge {
 public:
  NF_STEADY_NOALLOC void on_flat(std::uint64_t v) {
    values_.push_back(v);  // grows with no reserve in sight
    stash(v);
  }

 private:
  void stash(std::uint64_t v) {
    auto* copy = new std::uint64_t(v);  // heap touch on the steady path
    delete copy;
  }

  std::vector<std::uint64_t> values_;
};

}  // namespace fixture
