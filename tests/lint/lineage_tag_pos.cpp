// nf-lint fixture: the lineage half of nf-envelope-discipline must fire —
// the kNoLineage references and the hand-written envelope lineage
// assignment — because this file declares a Phase component. Sends inside
// Phase components must carry their causal tags via ctx.cause() / an
// explicit parents span; the engine stamps ids in canonical merge order.
// Never compiled; lexed by tools/nf-lint only.
#include <cstdint>

namespace obs {
using LineageId = std::uint64_t;
inline constexpr LineageId kNoLineage = 0;
}  // namespace obs

namespace net {
struct Phase {};
struct Packet {
  std::uint64_t lineage = 0;
};
struct Ctx {
  Packet out;
  void send(std::uint32_t, std::uint64_t) {}
};
}  // namespace net

namespace fixture {

class UntaggedForwarder : public net::Phase {
 public:
  void on_round(net::Ctx& ctx) {
    parent_ = obs::kNoLineage;  // hand-rolls "no parent"
    ctx.out.lineage = 42;  // stamps an id the engine owns
    ctx.send(1, 64);
  }

 private:
  obs::LineageId parent_ = 0;
};

}  // namespace fixture
