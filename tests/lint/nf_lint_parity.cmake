# Asserts the token and Clang engines of nf-lint produce byte-identical
# findings on the capability fixture corpus. The corpus is compiled for
# real by the Clang engine (via a generated compile_commands.json), so the
# fixtures must stay valid C++20.
#
# Inputs: -DLINT=<nf-lint binary> -DFIXTURES=<tests/lint dir>
#         -DSRC=<repo src dir>   -DWORK=<scratch dir>
# Env:    NF_LINT_REQUIRE_CLANG=1 makes a missing Clang engine a failure
#         (CI sets this); by default the test skips when nf-lint was built
#         without Clang LibTooling support.

foreach(var LINT FIXTURES SRC WORK)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "nf_lint_parity: missing -D${var}")
  endif()
endforeach()

set(corpus
    cap_thread_pos.cpp
    cap_thread_ok.cpp
    cap_noalloc_pos.cpp
    cap_noalloc_ok.cpp
    cap_complete_pos.cpp
    cap_complete_ok.cpp
    link_charge_pos.cpp
    link_charge_ok.cpp)

file(MAKE_DIRECTORY "${WORK}")

set(files)
set(entries)
foreach(f ${corpus})
  set(path "${FIXTURES}/${f}")
  if(NOT EXISTS "${path}")
    message(FATAL_ERROR "nf_lint_parity: corpus file missing: ${path}")
  endif()
  list(APPEND files "${path}")
  string(APPEND entries
         "  {\"directory\": \"${FIXTURES}\",\n"
         "   \"file\": \"${path}\",\n"
         "   \"command\": \"clang++ -std=c++20 -I${SRC} -c ${path}\"},\n")
endforeach()
string(REGEX REPLACE ",\n$" "\n" entries "${entries}")
file(WRITE "${WORK}/compile_commands.json" "[\n${entries}]\n")

set(checks --check=nf-cap-thread --check=nf-cap-noalloc
           --check=nf-cap-complete)

execute_process(
  COMMAND "${LINT}" --engine=tokens ${checks} --quiet
          --report "${WORK}/tokens.txt" ${files}
  RESULT_VARIABLE tok_rc
  OUTPUT_VARIABLE tok_out
  ERROR_VARIABLE tok_err)
if(tok_rc GREATER 1)
  message(FATAL_ERROR "nf_lint_parity: token engine failed (rc=${tok_rc})\n"
                      "${tok_out}${tok_err}")
endif()

execute_process(
  COMMAND "${LINT}" --engine=clang --compdb "${WORK}" ${checks} --quiet
          --report "${WORK}/clang.txt" ${files}
  RESULT_VARIABLE cl_rc
  OUTPUT_VARIABLE cl_out
  ERROR_VARIABLE cl_err)
if(cl_rc EQUAL 2 AND cl_err MATCHES "built without Clang")
  if(DEFINED ENV{NF_LINT_REQUIRE_CLANG})
    message(FATAL_ERROR
            "nf_lint_parity: NF_LINT_REQUIRE_CLANG is set but nf-lint was "
            "built without the Clang engine:\n${cl_err}")
  endif()
  message(STATUS "nf_lint_parity: skipped — nf-lint built without the "
                 "Clang engine (set NF_LINT_REQUIRE_CLANG=1 to require it)")
  return()
endif()
if(cl_rc GREATER 1)
  message(FATAL_ERROR "nf_lint_parity: clang engine failed (rc=${cl_rc})\n"
                      "${cl_out}${cl_err}")
endif()

# The reports are identical except for the engine-named summary line.
file(READ "${WORK}/tokens.txt" tok_report)
file(READ "${WORK}/clang.txt" cl_report)
string(REGEX REPLACE "nf-lint \\([a-z]+\\)[^\n]*\n?" "" tok_report
       "${tok_report}")
string(REGEX REPLACE "nf-lint \\([a-z]+\\)[^\n]*\n?" "" cl_report
       "${cl_report}")

if(NOT tok_report STREQUAL cl_report)
  message(FATAL_ERROR
          "nf_lint_parity: engines disagree on the fixture corpus.\n"
          "--- tokens ---\n${tok_report}\n"
          "--- clang ----\n${cl_report}")
endif()

if(tok_report STREQUAL "")
  message(FATAL_ERROR
          "nf_lint_parity: corpus produced no findings — the positive "
          "fixtures should fire; the parity check is vacuous")
endif()

message(STATUS "nf_lint_parity: engines agree byte-for-byte "
               "(rc tokens=${tok_rc} clang=${cl_rc})")
