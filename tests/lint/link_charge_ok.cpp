// nf-lint fixture: the same charge site as link_charge_pos.cpp with the
// finding suppressed (pretend this is a single-threaded offline replay
// tool that feeds the summary in a fixed order). nf-lint must report
// nothing for nf-cap-thread.
#include <cstddef>
#include <cstdint>

namespace fixture {

struct LinkStats {
  void charge(std::uint32_t, std::uint32_t, std::size_t, std::uint64_t) {}
};

class Convergecast {
 public:
  void on_deliver(std::uint32_t from, std::uint32_t to,
                  std::uint64_t bytes) {
    // nf-lint: nf-cap-thread-ok (offline replay, deterministic order)
    link_stats_->charge(from, to, 0, bytes);
  }

 private:
  LinkStats* link_stats_ = nullptr;
};

}  // namespace fixture
