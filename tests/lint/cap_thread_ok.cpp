// nf-lint fixture: the same shard-context -> engine-thread call as
// cap_thread_pos.cpp with the finding suppressed (pretend this phase runs
// in a single-shard replay harness where no merge races exist). nf-lint
// must report nothing for nf-cap-thread.
#include <cstdint>

#include "common/capability.h"

namespace fixture {

class Recorder {
 public:
  NF_ENGINE_THREAD void admit(std::uint64_t bytes) { total_ += bytes; }

 private:
  std::uint64_t total_ = 0;
};

class Phase {
 public:
  NF_SHARD_CONTEXT void on_message(std::uint64_t bytes) {
    // nf-lint: nf-cap-thread-ok (single-shard replay harness, no races)
    recorder_.admit(bytes);
  }

 private:
  Recorder recorder_;
};

}  // namespace fixture
