// nf-lint fixture: the same obs sites as obs_context_pos.cpp with both
// suppressed (pretend the pointer is set unconditionally in the ctor and
// the loop is cold teardown code). nf-lint must report nothing for
// nf-obs-context.
#include <cstdint>
#include <string>

namespace fixture {

struct Counter {
  void add(std::uint64_t) {}
};
struct Registry {
  Counter& counter(const std::string&) {
    static Counter c;
    return c;
  }
};
struct ObsContext {
  Registry registry;
};

class Aggregator {
 public:
  void finish(int rounds) {
    obs_->registry.counter("agg/done").add(1);  // nf-lint: nf-obs-context-ok
    for (int r = 0; r < rounds; ++r) {
      // nf-lint: nf-obs-context-ok (cold teardown path, runs once per run)
      registry.counter("agg/rounds").add(1);
    }
  }

 private:
  ObsContext* obs_ = nullptr;
  Registry registry;
};

}  // namespace fixture
