// nf-lint fixture: the same allocating sites as cap_noalloc_pos.cpp with
// both findings suppressed (pretend the vector is bounded scratch measured
// off-path and the copy is a debug-only diagnostic). nf-lint must report
// nothing for nf-cap-noalloc.
#include <cstdint>
#include <vector>

#include "common/capability.h"

namespace fixture {

class Merge {
 public:
  NF_STEADY_NOALLOC void on_flat(std::uint64_t v) {
    // nf-lint: nf-cap-noalloc-ok (bounded scratch, measured off-path)
    values_.push_back(v);
    stash(v);
  }

 private:
  void stash(std::uint64_t v) {
    // nf-lint: nf-cap-noalloc-ok (debug-only diagnostic copy, cold)
    auto* copy = new std::uint64_t(v);
    delete copy;
  }

  std::vector<std::uint64_t> values_;
};

}  // namespace fixture
