// nf-lint fixture: the same guarded-member touch as cap_complete_pos.cpp
// with the finding suppressed (pretend this is a scratch prototype whose
// real counterpart is annotated). nf-lint must report nothing for
// nf-cap-complete.
#include <cstdint>

namespace fixture {

class Engine {
 public:
  void note_admission(std::uint64_t bytes) {
    // nf-lint: nf-cap-complete-ok (scratch prototype, annotated upstream)
    lineage_ += bytes;
  }

 private:
  std::uint64_t lineage_ = 0;
};

}  // namespace fixture
