// nf-lint fixture: nf-determinism-banned-entropy must fire on every ambient
// entropy source below (this path is outside the exempt src/obs and bench/
// trees). Never compiled; lexed by tools/nf-lint only.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

std::uint64_t jittered_backoff() {
  std::random_device rd;
  const auto t0 = std::chrono::steady_clock::now();
  const auto wall = std::chrono::system_clock::now();
  std::srand(42);
  std::uint64_t x = static_cast<std::uint64_t>(std::rand());
  x += static_cast<std::uint64_t>(time(nullptr));
  (void)t0;
  (void)wall;
  return x + rd();
}

}  // namespace fixture
