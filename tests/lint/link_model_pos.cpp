// nf-lint fixture: nf-link-model must fire — LinkQueueTable mutation and
// congestion-telemetry writes from a protocol component. The backlog
// ledger is admission-order sensitive; only net/engine.cpp's canonical
// scheduler may touch it. Never compiled; lexed by tools/nf-lint only.
#include <cstddef>
#include <cstdint>

namespace fixture {

struct Scheduled {
  std::uint64_t queue_rounds;
  std::uint64_t clamped_bytes;
};

struct LinkQueueTable {
  Scheduled schedule(std::uint32_t, std::uint32_t, std::uint64_t,
                     std::uint64_t, std::uint32_t, std::uint32_t) {
    return {};
  }
  template <typename Cb>
  std::uint64_t drain_round(Cb&&) {
    return 0;
  }
};

struct LinkStats {
  void charge_spill(std::uint32_t, std::uint32_t, std::uint64_t) {}
  void set_backlog(std::size_t, std::uint64_t) {}
};

class GreedyPhase {
 public:
  void on_send(std::uint32_t from, std::uint32_t to, std::uint64_t bytes) {
    // Forks the ledger: a shard-local schedule diverges from the engine's
    // canonical admission order.
    const Scheduled s =
        link_queues_.schedule(from, to, 1000, bytes, 64, 0);
    if (s.clamped_bytes != 0) {
      link_stats_->charge_spill(from, to, s.clamped_bytes);
    }
  }

  void on_round_end() {
    const std::uint64_t left =
        link_queues_.drain_round([](std::uint32_t, std::uint64_t) {});
    link_stats_->set_backlog(0, left);
  }

 private:
  LinkQueueTable link_queues_;
  LinkStats* link_stats_ = nullptr;
};

}  // namespace fixture
