// nf-lint fixture: nf-determinism-unordered-iteration must fire on the
// declaration, the range-for, and the iterator pair below. Never compiled;
// lexed by tools/nf-lint only (see tests/lint/nf_lint_fixture.cmake).
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

std::uint64_t emit_group_sums() {
  std::unordered_map<std::uint32_t, std::uint64_t> sums;
  sums[3] = 7;
  std::uint64_t total = 0;
  for (const auto& [id, v] : sums) {
    total += id + v;  // emission order depends on the hash seed
  }
  std::unordered_set<std::uint32_t> members{1, 2, 3};
  std::vector<std::uint32_t> out(members.begin(), members.end());
  return total + out.size();
}

}  // namespace fixture
