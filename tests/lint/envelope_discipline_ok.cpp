// nf-lint fixture: the same Phase component as envelope_discipline_pos.cpp
// with every site suppressed (pretend this is a runtime-internal shim that
// legitimately owns its tags). nf-lint must report nothing for
// nf-envelope-discipline.
#include <cstdint>
#include <vector>

namespace net {
struct Phase {};
struct Envelope {  // nf-lint: nf-envelope-discipline-ok (the definition)
  std::uint32_t from = 0;
  std::uint32_t to = 0;
};
// nf-lint: nf-envelope-discipline-ok (the definition)
inline constexpr std::uint32_t kNoSession = 0xFFFFFFFFu;
struct Ctx {
  // nf-lint: nf-envelope-discipline-ok (declaration, not a call site)
  void send_tagged(std::uint32_t, std::uint64_t, std::uint32_t,
                   std::uint32_t) {}
  std::vector<Envelope> queue;
};
}  // namespace net

namespace fixture {

class RuntimeShim : public net::Phase {
 public:
  void on_round(net::Ctx& ctx) {
    ctx.send_tagged(1, 64, 7, 0);  // nf-lint: nf-envelope-discipline-ok
    // nf-lint: nf-envelope-discipline-ok (control traffic, untagged by design)
    ctx.queue.push_back(net::Envelope{0, 1});
    session_ = net::kNoSession;  // nf-lint: nf-envelope-discipline-ok
  }

 private:
  std::uint32_t session_ = 0;
};

}  // namespace fixture
