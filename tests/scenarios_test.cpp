#include "workload/scenarios.h"

#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "common/hashing.h"

namespace nf::wl {
namespace {

TEST(CatalogTest, InternIsStableAndReversible) {
  Catalog c;
  const ItemId id1 = c.intern("hello");
  const ItemId id2 = c.intern("hello");
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(c.name_of(id1), "hello");
  EXPECT_EQ(c.size(), 1u);
  const ItemId id3 = c.intern("world");
  EXPECT_NE(id1, id3);
  EXPECT_TRUE(c.contains(id3));
  EXPECT_FALSE(c.contains(ItemId(123)));
  EXPECT_THROW((void)c.name_of(ItemId(123)), InvalidArgument);
}

TEST(KeywordQueriesTest, ProducesConsistentWorkload) {
  const ScenarioOutput out = keyword_queries(40, 500, 100, 1.0, 3);
  EXPECT_EQ(out.workload.num_peers(), 40u);
  EXPECT_GT(out.workload.total_value(), 0u);
  // Every item in the ground truth has a catalog name.
  for (const auto& [id, v] : out.workload.global()) {
    EXPECT_TRUE(out.catalog.contains(id));
  }
  // Keyword rank 1 should be globally frequent under Zipf(1).
  const ItemId top = ItemId(hash_bytes("kw-1"));
  EXPECT_GT(out.workload.global().value_of(top),
            out.workload.total_value() / 100);
}

TEST(KeywordQueriesTest, LocalValuesCountQueriesNotOccurrences) {
  // Each of the q queries contains a keyword at most once, so no local
  // value can exceed the number of queries.
  const std::uint32_t q = 50;
  const ScenarioOutput out = keyword_queries(10, 100, q, 1.0, 5);
  for (std::uint32_t p = 0; p < 10; ++p) {
    for (const auto& [id, v] : out.workload.local_items(PeerId(p))) {
      EXPECT_LE(v, q);
    }
  }
}

TEST(CoOccurringPairsTest, ItemsArePairsWithCanonicalOrder) {
  const ScenarioOutput out = co_occurring_pairs(20, 100, 50, 1.0, 7);
  EXPECT_GT(out.workload.num_distinct(), 0u);
  for (const auto& [id, v] : out.workload.global()) {
    const std::string& name = out.catalog.name_of(id);
    const auto plus = name.find('+');
    ASSERT_NE(plus, std::string::npos) << name;
    // Canonical: first keyword rank <= second keyword rank.
    const auto a = std::stoul(name.substr(3, plus - 3));
    const auto b = std::stoul(name.substr(plus + 4));
    EXPECT_LE(a, b) << name;
  }
}

TEST(DdosFlowsTest, PlantedVictimsDominateGlobally) {
  const ScenarioOutput out = ddos_flows(100, 5000, 200, 3, 11);
  ASSERT_EQ(out.planted.size(), 3u);
  // Each victim's global value should clear a 0.5% threshold easily.
  const Value t = out.workload.threshold_for(0.005);
  for (ItemId victim : out.planted) {
    EXPECT_GE(out.workload.global().value_of(victim), t)
        << out.catalog.name_of(victim);
  }
}

TEST(DdosFlowsTest, VictimsAreNotLocallyObvious) {
  const ScenarioOutput out = ddos_flows(100, 5000, 200, 2, 13);
  // At most a handful of routers should see the victim among their top-5
  // local destinations; the attack hides in per-router noise.
  for (ItemId victim : out.planted) {
    int top5 = 0;
    for (std::uint32_t p = 0; p < 100; ++p) {
      const auto& local = out.workload.local_items(PeerId(p));
      const Value vv = local.value_of(victim);
      if (vv == 0) continue;
      int bigger = 0;
      for (const auto& [id, v] : local) {
        if (v > vv) ++bigger;
      }
      if (bigger < 5) ++top5;
    }
    EXPECT_LT(top5, 60);
  }
}

TEST(WormSignaturesTest, PlantedWormsAreFrequent) {
  const ScenarioOutput out = worm_signatures(80, 2000, 100, 2, 17);
  ASSERT_EQ(out.planted.size(), 2u);
  const Value t = out.workload.threshold_for(0.01);
  for (ItemId worm : out.planted) {
    EXPECT_GE(out.workload.global().value_of(worm), t);
  }
}

TEST(DocumentReplicasTest, PopularDocumentsAreFrequent) {
  const ScenarioOutput out = document_replicas(60, 2000, 50, 1.0, 19);
  EXPECT_EQ(out.workload.num_peers(), 60u);
  // doc-1 is the most replicated; it should clear a 1% threshold.
  const ItemId top = ItemId(hash_bytes("doc-1"));
  EXPECT_GE(out.workload.global().value_of(top),
            out.workload.threshold_for(0.01));
  // Local replica counts are bounded by the per-peer budget.
  for (std::uint32_t p = 0; p < 60; ++p) {
    EXPECT_LE(out.workload.local_items(PeerId(p)).total(), 50u);
  }
}

TEST(PopularPeersTest, SuperPeersDominate) {
  const ScenarioOutput out = popular_peers(100, 200, 3, 23);
  ASSERT_EQ(out.planted.size(), 3u);
  const Value t = out.workload.threshold_for(0.02);
  for (ItemId super : out.planted) {
    EXPECT_GE(out.workload.global().value_of(super), t)
        << out.catalog.name_of(super);
  }
  // No peer rated itself: peer-i never appears in peer i's local set.
  for (std::uint32_t p = 0; p < 100; ++p) {
    const ItemId self_id = ItemId(hash_bytes("peer-" + std::to_string(p)));
    EXPECT_EQ(out.workload.local_items(PeerId(p)).value_of(self_id), 0u);
  }
}

TEST(ContactedPeerPairsTest, FriendPairsAreFrequentAndCanonical) {
  const ScenarioOutput out = contacted_peer_pairs(80, 300, 2, 29);
  ASSERT_EQ(out.planted.size(), 2u);
  const Value t = out.workload.threshold_for(0.01);
  for (ItemId pair : out.planted) {
    EXPECT_GE(out.workload.global().value_of(pair), t);
    // Canonical naming: smaller id first.
    const std::string& name = out.catalog.name_of(pair);
    const auto sep = name.find("<->");
    ASSERT_NE(sep, std::string::npos);
    const auto a = std::stoul(name.substr(5, sep - 5));
    const auto b = std::stoul(name.substr(sep + 3));
    EXPECT_LE(a, b);
  }
}

TEST(ScenariosTest, DeterministicForSeed) {
  const ScenarioOutput a = keyword_queries(10, 100, 20, 1.0, 21);
  const ScenarioOutput b = keyword_queries(10, 100, 20, 1.0, 21);
  EXPECT_EQ(a.workload.global(), b.workload.global());
}

TEST(ScenariosTest, InvalidArgumentsThrow) {
  EXPECT_THROW((void)keyword_queries(10, 2, 10, 1.0, 1), InvalidArgument);
  EXPECT_THROW((void)ddos_flows(10, 2, 10, 3, 1), InvalidArgument);
  EXPECT_THROW((void)worm_signatures(10, 2, 10, 1, 1), InvalidArgument);
}

}  // namespace
}  // namespace nf::wl
