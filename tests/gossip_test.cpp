#include "agg/gossip.h"

#include <gtest/gtest.h>

#include <cmath>

#include "net/engine.h"
#include "net/topology.h"

namespace nf::agg {
namespace {

using net::Engine;
using net::Overlay;
using net::TrafficMeter;

TEST(PushSumTest, ConvergesToGlobalSum) {
  Rng rng(1);
  Overlay overlay(net::random_connected(100, 6.0, rng));
  TrafficMeter meter(100);
  std::vector<std::vector<double>> initial;
  double truth = 0.0;
  for (std::uint32_t p = 0; p < 100; ++p) {
    initial.push_back({static_cast<double>(p) + 1.0});
    truth += static_cast<double>(p) + 1.0;
  }
  PushSumGossip::Config cfg;
  cfg.rounds = 80;
  PushSumGossip gossip(std::move(initial), cfg);
  Engine engine(overlay, meter);
  engine.run(gossip, cfg.rounds + 2);
  for (std::uint32_t p = 0; p < 100; ++p) {
    EXPECT_NEAR(gossip.estimate_sum(PeerId(p), 0), truth, truth * 0.01)
        << "peer " << p;
  }
  EXPECT_LT(gossip.relative_spread(0), 0.02);
}

TEST(PushSumTest, MassIsConserved) {
  Rng rng(2);
  Overlay overlay(net::random_connected(50, 5.0, rng));
  TrafficMeter meter(50);
  std::vector<std::vector<double>> initial(50, std::vector<double>{2.0});
  PushSumGossip::Config cfg;
  cfg.rounds = 5;
  PushSumGossip gossip(std::move(initial), cfg);
  Engine engine(overlay, meter);
  // The run drains in-flight shares after the last active round, so the
  // resident mass must equal the initial global mass exactly.
  engine.run(gossip, cfg.rounds + 2);
  EXPECT_NEAR(gossip.total_mass(0), 100.0, 1e-9);
}

TEST(PushSumTest, MultiDimensionalVectorsConvergePerCoordinate) {
  Rng rng(3);
  Overlay overlay(net::random_connected(60, 6.0, rng));
  TrafficMeter meter(60);
  std::vector<std::vector<double>> initial;
  for (std::uint32_t p = 0; p < 60; ++p) {
    initial.push_back({1.0, static_cast<double>(p % 3)});
  }
  PushSumGossip::Config cfg;
  cfg.rounds = 80;
  PushSumGossip gossip(std::move(initial), cfg);
  Engine engine(overlay, meter);
  engine.run(gossip, cfg.rounds + 2);
  EXPECT_NEAR(gossip.estimate_sum(PeerId(5), 0), 60.0, 1.0);
  EXPECT_NEAR(gossip.estimate_sum(PeerId(5), 1), 60.0, 1.5);  // 20*(0+1+2)
}

TEST(PushSumTest, TrafficScalesWithDimensionAndRounds) {
  Rng rng(4);
  Overlay overlay(net::random_connected(20, 4.0, rng));
  TrafficMeter meter(20);
  std::vector<std::vector<double>> initial(20, std::vector<double>(10, 1.0));
  PushSumGossip::Config cfg;
  cfg.rounds = 10;
  cfg.bytes_per_coordinate = 4;
  cfg.weight_bytes = 4;
  PushSumGossip gossip(std::move(initial), cfg);
  Engine engine(overlay, meter);
  engine.run(gossip, cfg.rounds + 2);
  // Each peer sends one message of (10+1)*4 + 4 bytes per round.
  const std::uint64_t per_msg = 48;
  EXPECT_EQ(meter.total(net::TrafficCategory::kGossip) % per_msg, 0u);
  EXPECT_GE(meter.num_messages(), 20u * 9);
  EXPECT_LE(meter.num_messages(), 20u * 11);
}

TEST(PushSumTest, SpreadShrinksWithMoreRounds) {
  auto spread_after = [](std::uint32_t rounds) {
    Rng rng(5);
    Overlay overlay(net::random_connected(80, 5.0, rng));
    TrafficMeter meter(80);
    std::vector<std::vector<double>> initial;
    for (std::uint32_t p = 0; p < 80; ++p) {
      initial.push_back({p < 40 ? 0.0 : 10.0});
    }
    PushSumGossip::Config cfg;
    cfg.rounds = rounds;
    PushSumGossip gossip(std::move(initial), cfg);
    Engine engine(overlay, meter);
    engine.run(gossip, cfg.rounds + 2);
    return gossip.relative_spread(0);
  };
  const double early = spread_after(8);
  const double late = spread_after(60);
  EXPECT_LT(late, early);
  EXPECT_LT(late, 0.05);
}

TEST(PushSumTest, RejectsBadInputs) {
  PushSumGossip::Config cfg;
  EXPECT_THROW(PushSumGossip({}, cfg), InvalidArgument);
  EXPECT_THROW(PushSumGossip({{1.0}, {1.0, 2.0}}, cfg), InvalidArgument);
}

}  // namespace
}  // namespace nf::agg
