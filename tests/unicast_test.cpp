#include "agg/unicast.h"

#include <gtest/gtest.h>

#include <string>

#include "net/topology.h"

namespace nf::agg {
namespace {

using net::Engine;
using net::Overlay;
using net::Topology;
using net::TrafficMeter;

struct Fixture {
  explicit Fixture(Topology topo, PeerId root = PeerId(0))
      : overlay(std::move(topo)),
        meter(overlay.num_peers()),
        hierarchy(build_bfs_hierarchy(overlay, root)) {}

  Overlay overlay;
  TrafficMeter meter;
  Hierarchy hierarchy;
};

Topology line(std::uint32_t n) {
  Topology t(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    t.add_edge(PeerId(i), PeerId(i + 1));
  }
  return t;
}

TEST(TreeRequestReplyTest, RoundTripsAlongTheLine) {
  Fixture fx(line(6));
  TreeRequestReply<int, std::string> rpc(
      fx.hierarchy, PeerId(5), 42, /*request_bytes=*/4,
      [](PeerId root, const int& q) {
        EXPECT_EQ(root, PeerId(0));
        return "answer-" + std::to_string(q);
      },
      [](const std::string& r) { return r.size(); });
  Engine engine(fx.overlay, fx.meter);
  engine.run(rpc, 100);
  ASSERT_TRUE(rpc.complete());
  EXPECT_EQ(rpc.reply(), "answer-42");
}

TEST(TreeRequestReplyTest, CompletesInTwiceDepthRounds) {
  Fixture fx(line(8));
  TreeRequestReply<int, int> rpc(
      fx.hierarchy, PeerId(7), 1, 4, [](PeerId, const int& q) { return q; },
      [](const int&) { return std::uint64_t{4}; });
  Engine engine(fx.overlay, fx.meter);
  const std::uint64_t rounds = engine.run(rpc, 100);
  EXPECT_TRUE(rpc.complete());
  EXPECT_LE(rounds, 2u * 7u + 2u);
}

TEST(TreeRequestReplyTest, ChargesPerHopBothWays) {
  Fixture fx(line(4));  // requester depth 3
  TreeRequestReply<int, int> rpc(
      fx.hierarchy, PeerId(3), 1, /*request_bytes=*/10,
      [](PeerId, const int& q) { return q; },
      [](const int&) { return std::uint64_t{20}; });
  Engine engine(fx.overlay, fx.meter);
  engine.run(rpc, 100);
  // 3 request hops at 10 bytes + 3 reply hops at 20 bytes.
  EXPECT_EQ(fx.meter.total(net::TrafficCategory::kControl), 3u * 10 + 3u * 20);
}

TEST(TreeRequestReplyTest, RootRequesterIsServedLocally) {
  Fixture fx(line(3));
  TreeRequestReply<int, int> rpc(
      fx.hierarchy, PeerId(0), 7, 4, [](PeerId, const int& q) { return q * 2; },
      [](const int&) { return std::uint64_t{4}; });
  Engine engine(fx.overlay, fx.meter);
  engine.run(rpc, 10);
  ASSERT_TRUE(rpc.complete());
  EXPECT_EQ(rpc.reply(), 14);
  EXPECT_EQ(fx.meter.total(), 0u);
}

TEST(TreeRequestReplyTest, WorksOnRandomTreesFromAnyRequester) {
  Rng rng(3);
  Fixture fx(net::random_tree(60, 3, rng));
  for (std::uint32_t requester : {1u, 17u, 42u, 59u}) {
    TreeRequestReply<std::uint32_t, std::uint32_t> rpc(
        fx.hierarchy, PeerId(requester), requester, 4,
        [](PeerId, const std::uint32_t& q) { return q + 1000; },
        [](const std::uint32_t&) { return std::uint64_t{4}; });
    Engine engine(fx.overlay, fx.meter);
    engine.run(rpc, 200);
    ASSERT_TRUE(rpc.complete()) << requester;
    EXPECT_EQ(rpc.reply(), requester + 1000);
  }
}

TEST(TreeRequestReplyTest, NonMemberRequesterRejected) {
  Overlay overlay(line(4));
  overlay.fail(PeerId(3));
  TrafficMeter meter(4);
  const Hierarchy h = build_bfs_hierarchy(overlay, PeerId(0));
  EXPECT_THROW((TreeRequestReply<int, int>(
                   h, PeerId(3), 1, 4, [](PeerId, const int& q) { return q; },
                   [](const int&) { return std::uint64_t{4}; })),
               InvalidArgument);
}

TEST(TreeRequestReplyTest, ReplyBeforeCompletionThrows) {
  Fixture fx(line(3));
  TreeRequestReply<int, int> rpc(
      fx.hierarchy, PeerId(2), 1, 4, [](PeerId, const int& q) { return q; },
      [](const int&) { return std::uint64_t{4}; });
  EXPECT_THROW((void)rpc.reply(), InvalidArgument);
}

}  // namespace
}  // namespace nf::agg
