#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <set>
#include <vector>

namespace nf {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 1234;
  std::uint64_t s2 = 1234;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(SplitMix64Test, DistinctSeedsDiverge) {
  std::uint64_t a = 1;
  std::uint64_t b = 2;
  EXPECT_NE(splitmix64(a), splitmix64(b));
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BelowZeroThrows) {
  Rng rng(5);
  EXPECT_THROW((void)rng.below(0), InvalidArgument);
}

TEST(RngTest, BetweenInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = rng.between(10, 12);
    EXPECT_GE(x, 10u);
    EXPECT_LE(x, 12u);
    saw_lo |= (x == 10);
    saw_hi |= (x == 12);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BetweenBadRangeThrows) {
  Rng rng(5);
  EXPECT_THROW((void)rng.between(3, 2), InvalidArgument);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  // Chi-square with 9 dof; 99.9% critical value ~ 27.9.
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(RngTest, ChanceRespectsProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
  Rng never(18);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(never.chance(0.0));
}

TEST(RngTest, ForkProducesIndependentChildren) {
  Rng parent(21);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1() == c2()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, ForkIsStableAcrossRuns) {
  Rng p1(33);
  Rng p2(33);
  Rng a = p1.fork();
  Rng b = p2.fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a(), b());
}

TEST(ShuffleTest, ProducesPermutation) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Rng rng(55);
  shuffle(v, rng);
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

TEST(ShuffleTest, ActuallyShuffles) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  const std::vector<int> orig = v;
  Rng rng(56);
  shuffle(v, rng);
  EXPECT_NE(v, orig);
}

TEST(ShuffleTest, UniformOverSmallPermutations) {
  // All 6 permutations of 3 elements should be roughly equally likely.
  std::map<std::array<int, 3>, int> counts;
  Rng rng(57);
  for (int i = 0; i < 60000; ++i) {
    std::array<int, 3> v{0, 1, 2};
    shuffle(v, rng);
    ++counts[v];
  }
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [perm, c] : counts) {
    EXPECT_NEAR(c, 10000, 500);
  }
}

}  // namespace
}  // namespace nf
