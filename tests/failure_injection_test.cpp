// Failure injection: what the protocols do when peers die mid-run.
//
// A hierarchical aggregation whose tree breaks mid-pass cannot silently
// return a wrong answer — it must either complete exactly (failure did not
// hit the active path) or fail loudly so the driver re-runs on a repaired
// hierarchy. These tests pin that contract.
#include <gtest/gtest.h>

#include "agg/convergecast.h"
#include "core/netfilter.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace nf {
namespace {

using agg::build_bfs_hierarchy;
using agg::Hierarchy;
using net::ChurnSchedule;
using net::Engine;
using net::Overlay;
using net::Topology;
using net::TrafficMeter;

Topology line(std::uint32_t n) {
  Topology t(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    t.add_edge(PeerId(i), PeerId(i + 1));
  }
  return t;
}

TEST(FailureInjectionTest, ConvergecastNeverCompletesAcrossADeadRelay) {
  Overlay overlay(line(6));
  TrafficMeter meter(6);
  const Hierarchy h = build_bfs_hierarchy(overlay, PeerId(0));
  agg::Convergecast<std::uint64_t> cast(
      h, net::TrafficCategory::kFiltering,
      [](PeerId) { return std::uint64_t{1}; },
      [](std::uint64_t& a, std::uint64_t&& b) { a += b; },
      [](const std::uint64_t&) { return std::uint64_t{4}; });
  Engine engine(overlay, meter);
  ChurnSchedule churn;
  churn.fail_at(1, PeerId(3));  // relay dies while the wave passes
  engine.run(cast, 50, &churn);
  // The pass must NOT complete with a partial sum; it reports incomplete.
  EXPECT_FALSE(cast.complete());
  EXPECT_THROW((void)cast.result(), InvalidArgument);
}

TEST(FailureInjectionTest, LateLeafFailureAfterSendingIsHarmless) {
  Overlay overlay(line(4));
  TrafficMeter meter(4);
  const Hierarchy h = build_bfs_hierarchy(overlay, PeerId(0));
  agg::Convergecast<std::uint64_t> cast(
      h, net::TrafficCategory::kFiltering,
      [](PeerId p) { return std::uint64_t{p.value() + 1}; },
      [](std::uint64_t& a, std::uint64_t&& b) { a += b; },
      [](const std::uint64_t&) { return std::uint64_t{4}; });
  Engine engine(overlay, meter);
  ChurnSchedule churn;
  // The leaf (peer 3) sends during round 0; its message is in flight and
  // still delivered. Failing it afterwards changes nothing.
  churn.fail_at(2, PeerId(3));
  engine.run(cast, 50, &churn);
  ASSERT_TRUE(cast.complete());
  EXPECT_EQ(cast.result(), 1u + 2u + 3u + 4u);
}

TEST(FailureInjectionTest, NetFilterPhase1FailsLoudlyOnBrokenTree) {
  wl::WorkloadConfig wc;
  wc.num_peers = 8;
  wc.num_items = 200;
  wc.seed = 3;
  const wl::Workload workload = wl::Workload::generate(wc);
  Overlay overlay(line(8));
  TrafficMeter meter(8);
  const Hierarchy h = build_bfs_hierarchy(overlay, PeerId(0));

  core::NetFilterConfig cfg;
  cfg.num_groups = 16;
  cfg.num_filters = 2;
  // Cap rounds so the stalled convergecast surfaces as an error quickly.
  cfg.max_rounds_per_phase = 30;
  const core::NetFilter nf(cfg);

  // Kill a mid-line relay before the run: the hierarchy snapshot is stale
  // (it still routes through the dead peer), so phase 1 cannot finish and
  // must throw rather than return a partial answer.
  overlay.fail(PeerId(4));
  core::NetFilterStats stats;
  EXPECT_THROW((void)nf.filter_candidates(workload, h, overlay, meter, 2,
                                          &stats),
               ProtocolError);
}

TEST(FailureInjectionTest, RerunOnRepairedHierarchySucceeds) {
  // The documented recovery path: rebuild/repair the hierarchy over the
  // survivors, then re-run; exactness holds for the surviving data.
  Rng rng(9);
  Overlay overlay(net::random_connected(40, 5.0, rng));
  TrafficMeter meter(40);

  wl::WorkloadConfig wc;
  wc.num_peers = 40;
  wc.num_items = 2000;
  wc.seed = 4;
  const wl::Workload workload = wl::Workload::generate(wc);

  // Find a non-cut victim.
  PeerId victim(1);
  for (std::uint32_t cand = 1; cand < 40; ++cand) {
    overlay.fail(PeerId(cand));
    std::vector<bool> seen(40, false);
    std::vector<PeerId> stack{PeerId(0)};
    seen[0] = true;
    std::uint32_t count = 1;
    while (!stack.empty()) {
      const PeerId p = stack.back();
      stack.pop_back();
      for (PeerId q : overlay.alive_neighbors(p)) {
        if (!seen[q.value()]) {
          seen[q.value()] = true;
          ++count;
          stack.push_back(q);
        }
      }
    }
    overlay.revive(PeerId(cand));
    if (count == 39) {
      victim = PeerId(cand);
      break;
    }
  }

  overlay.fail(victim);
  const Hierarchy repaired = build_bfs_hierarchy(overlay, PeerId(0));

  LocalItems truth;
  for (std::uint32_t p = 0; p < 40; ++p) {
    if (overlay.is_alive(PeerId(p))) {
      truth.merge_add(workload.local_items(PeerId(p)));
    }
  }
  const Value t = std::max<Value>(1, truth.total() / 50);
  truth.retain([&](ItemId, Value v) { return v >= t; });

  core::NetFilterConfig cfg;
  cfg.num_groups = 32;
  cfg.num_filters = 2;
  const core::NetFilter nf(cfg);
  const auto res = nf.run(workload, repaired, overlay, meter, t);
  EXPECT_EQ(res.frequent, truth);
}

}  // namespace
}  // namespace nf
