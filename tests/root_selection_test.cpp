#include "agg/root_selection.h"

#include <gtest/gtest.h>

#include <vector>

#include "agg/hierarchy.h"
#include "net/topology.h"

namespace nf::agg {
namespace {

using net::Overlay;
using net::Topology;

Overlay make_line(std::uint32_t n) {
  Topology t(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    t.add_edge(PeerId(i), PeerId(i + 1));
  }
  return Overlay(std::move(t));
}

TEST(EccentricityTest, LineEndpointsAndMiddle) {
  const Overlay o = make_line(9);
  EXPECT_EQ(eccentricity(o, PeerId(0)), 8u);
  EXPECT_EQ(eccentricity(o, PeerId(8)), 8u);
  EXPECT_EQ(eccentricity(o, PeerId(4)), 4u);
}

TEST(RootSelectionTest, RandomPicksAliveUniformly) {
  Overlay o = make_line(10);
  o.fail(PeerId(3));
  Rng rng(1);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 2000; ++i) {
    const PeerId r = select_root(o, RootPolicy::kRandom, {}, rng);
    ASSERT_TRUE(o.is_alive(r));
    ++counts[r.value()];
  }
  EXPECT_EQ(counts[3], 0);
  for (std::uint32_t p = 0; p < 10; ++p) {
    if (p == 3) continue;
    EXPECT_NEAR(counts[p], 2000 / 9, 80) << p;
  }
}

TEST(RootSelectionTest, MostStablePicksHighestAliveUptime) {
  Overlay o = make_line(5);
  const std::vector<double> uptime{0.1, 0.9, 0.3, 0.95, 0.2};
  Rng rng(2);
  EXPECT_EQ(select_root(o, RootPolicy::kMostStable, uptime, rng), PeerId(3));
  o.fail(PeerId(3));
  EXPECT_EQ(select_root(o, RootPolicy::kMostStable, uptime, rng), PeerId(1));
}

TEST(RootSelectionTest, MostStableNeedsUptimes) {
  const Overlay o = make_line(3);
  Rng rng(3);
  EXPECT_THROW((void)select_root(o, RootPolicy::kMostStable, {}, rng),
               InvalidArgument);
}

TEST(RootSelectionTest, CenterOfLineIsTheMiddle) {
  const Overlay o = make_line(11);
  Rng rng(4);
  const PeerId c = select_root(o, RootPolicy::kCenter, {}, rng);
  EXPECT_EQ(eccentricity(o, c), 5u);  // true center of an 11-line
}

TEST(RootSelectionTest, CenterRootHalvesHierarchyHeight) {
  // On random trees a central root should give a substantially shorter
  // hierarchy than the worst random pick.
  Rng rng(5);
  const Overlay o{net::random_tree(500, 3, rng)};
  const PeerId center = select_root(o, RootPolicy::kCenter, {}, rng);
  const std::uint32_t center_ecc = eccentricity(o, center);
  std::uint32_t worst_ecc = 0;
  for (int i = 0; i < 10; ++i) {
    const PeerId r = select_root(o, RootPolicy::kRandom, {}, rng);
    worst_ecc = std::max(worst_ecc, eccentricity(o, r));
  }
  EXPECT_LT(center_ecc, worst_ecc);
  // The double-sweep approximation is within 1 of the optimum on trees:
  // ecc(center) <= ceil(diameter/2) + 1.
  const std::uint32_t diameter = [&] {
    std::uint32_t best = 0;
    for (std::uint32_t p = 0; p < 500; p += 37) {
      best = std::max(best, eccentricity(o, PeerId(p)));
    }
    return best;
  }();
  EXPECT_LE(center_ecc, (diameter + 1) / 2 + 1);
}

TEST(RootSelectionTest, CenterRootShortensNetFilterRounds) {
  Rng rng(6);
  const Overlay o{net::random_tree(300, 3, rng)};
  const PeerId center = select_root(o, RootPolicy::kCenter, {}, rng);
  const Hierarchy hc = build_bfs_hierarchy(o, center);
  const Hierarchy h0 = build_bfs_hierarchy(o, PeerId(0));
  EXPECT_LE(hc.height(), h0.height());
}

}  // namespace
}  // namespace nf::agg
