#include "agg/sampling.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "workload/workload.h"

namespace nf::agg {
namespace {

using net::Overlay;
using net::TrafficMeter;

struct SamplingRig {
  SamplingRig(std::uint32_t num_peers, std::uint64_t num_items, double alpha,
        std::uint64_t seed)
      : workload([&] {
          wl::WorkloadConfig cfg;
          cfg.num_peers = num_peers;
          cfg.num_items = num_items;
          cfg.alpha = alpha;
          cfg.seed = seed;
          return wl::Workload::generate(cfg);
        }()),
        overlay([&] {
          Rng rng(seed + 1);
          return Overlay(net::random_tree(num_peers, 3, rng));
        }()),
        hierarchy(build_bfs_hierarchy(overlay, PeerId(0))) {}

  wl::Workload workload;
  Overlay overlay;
  Hierarchy hierarchy;
};

TEST(SamplingTest, EstimatesTrackGroundTruth) {
  SamplingRig s(200, 20000, 1.0, 7);
  const Value t = s.workload.threshold_for(0.01);
  SamplingConfig cfg;
  cfg.num_branches = 8;
  cfg.items_per_peer = 100;
  TrafficMeter meter(200);
  const SampleEstimates est = sample_estimates(
      s.hierarchy, s.workload, s.workload.total_value(), t, cfg, &meter);

  EXPECT_GT(est.num_sampled_peers, 1u);
  EXPECT_GT(est.num_sampled_items, 50u);

  // n̂ from the HLL should be tight (~3% at precision 10).
  const double n_true = static_cast<double>(s.workload.num_distinct());
  EXPECT_NEAR(est.n_hat, n_true, 0.10 * n_true);

  // v̄ and v̄_light should land within a small factor of the truth — they
  // only drive g_opt, whose cost curve is flat near the optimum. The
  // paper's sampling is popularity-biased (items on more peers are sampled
  // more often); Horvitz-Thompson weighting removes most but not all of the
  // skew on the light average, so accept a 5x band on the raw estimates...
  const double v_bar_true = s.workload.avg_global_value();
  const double v_light_true = s.workload.avg_light_value(t);
  EXPECT_GT(est.v_bar, v_bar_true / 5.0);
  EXPECT_GT(est.v_bar_light, v_light_true / 5.0);
  EXPECT_LT(est.v_bar_light, v_light_true * 5.0);

  // ...and require the quantity that matters — the g_opt ratio
  // v̄_light / v̄ of Formula 3 — to track the oracle within 5x as well.
  const double ratio_true = v_light_true / v_bar_true;
  const double ratio_est = est.v_bar_light / est.v_bar;
  EXPECT_GT(ratio_est, ratio_true / 5.0);
  EXPECT_LT(ratio_est, ratio_true * 5.0);

  // r̂ should have the right order of magnitude.
  const double r_true =
      static_cast<double>(s.workload.frequent_items(t).size());
  EXPECT_GT(est.r_hat, r_true / 5.0);
  EXPECT_LT(est.r_hat, r_true * 5.0);
}

TEST(SamplingTest, ChargesSamplingTraffic) {
  SamplingRig s(100, 5000, 1.0, 9);
  const Value t = s.workload.threshold_for(0.01);
  SamplingConfig cfg;
  TrafficMeter meter(100);
  (void)sample_estimates(s.hierarchy, s.workload, s.workload.total_value(), t,
                         cfg, &meter);
  EXPECT_GT(meter.total(net::TrafficCategory::kSampling), 0u);
  EXPECT_EQ(meter.total(net::TrafficCategory::kFiltering), 0u);
}

TEST(SamplingTest, NullMeterIsAllowed) {
  SamplingRig s(50, 2000, 1.0, 11);
  const Value t = s.workload.threshold_for(0.01);
  SamplingConfig cfg;
  const SampleEstimates est = sample_estimates(
      s.hierarchy, s.workload, s.workload.total_value(), t, cfg, nullptr);
  EXPECT_GT(est.v_bar, 0.0);
}

TEST(SamplingTest, SkippingNEstimateLeavesZeroAndSavesBytes) {
  SamplingRig s(100, 5000, 1.0, 13);
  const Value t = s.workload.threshold_for(0.01);
  SamplingConfig with;
  SamplingConfig without;
  without.estimate_n = false;
  TrafficMeter m1(100);
  TrafficMeter m2(100);
  const auto e1 = sample_estimates(s.hierarchy, s.workload,
                                   s.workload.total_value(), t, with, &m1);
  const auto e2 = sample_estimates(s.hierarchy, s.workload,
                                   s.workload.total_value(), t, without, &m2);
  EXPECT_GT(e1.n_hat, 0.0);
  EXPECT_EQ(e2.n_hat, 0.0);
  EXPECT_LT(m2.total(net::TrafficCategory::kSampling),
            m1.total(net::TrafficCategory::kSampling));
}

TEST(SamplingTest, DeterministicForSeed) {
  SamplingRig s(100, 5000, 1.0, 17);
  const Value t = s.workload.threshold_for(0.01);
  SamplingConfig cfg;
  const auto a = sample_estimates(s.hierarchy, s.workload,
                                  s.workload.total_value(), t, cfg, nullptr);
  const auto b = sample_estimates(s.hierarchy, s.workload,
                                  s.workload.total_value(), t, cfg, nullptr);
  EXPECT_EQ(a.v_bar, b.v_bar);
  EXPECT_EQ(a.v_bar_light, b.v_bar_light);
  EXPECT_EQ(a.r_hat, b.r_hat);
  EXPECT_EQ(a.n_hat, b.n_hat);
}

TEST(SamplingTest, MoreBranchesSampleMorePeers) {
  SamplingRig s(300, 5000, 1.0, 19);
  const Value t = s.workload.threshold_for(0.01);
  SamplingConfig few;
  few.num_branches = 1;
  SamplingConfig many;
  many.num_branches = 20;
  const auto a = sample_estimates(s.hierarchy, s.workload,
                                  s.workload.total_value(), t, few, nullptr);
  const auto b = sample_estimates(s.hierarchy, s.workload,
                                  s.workload.total_value(), t, many, nullptr);
  EXPECT_LT(a.num_sampled_peers, b.num_sampled_peers);
}

TEST(SamplingTest, InvalidConfigThrows) {
  SamplingRig s(20, 500, 1.0, 23);
  SamplingConfig zero_branches;
  zero_branches.num_branches = 0;
  EXPECT_THROW((void)sample_estimates(s.hierarchy, s.workload, 1, 1,
                                      zero_branches, nullptr),
               InvalidArgument);
  SamplingConfig zero_items;
  zero_items.items_per_peer = 0;
  EXPECT_THROW((void)sample_estimates(s.hierarchy, s.workload, 1, 1,
                                      zero_items, nullptr),
               InvalidArgument);
}

}  // namespace
}  // namespace nf::agg
