#include "net/topology.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.h"

namespace nf::net {
namespace {

TEST(TopologyTest, AddEdgeIsSymmetric) {
  Topology t(3);
  t.add_edge(PeerId(0), PeerId(1));
  EXPECT_TRUE(t.has_edge(PeerId(0), PeerId(1)));
  EXPECT_TRUE(t.has_edge(PeerId(1), PeerId(0)));
  EXPECT_EQ(t.num_edges(), 1u);
  EXPECT_EQ(t.degree(PeerId(0)), 1u);
}

TEST(TopologyTest, RejectsSelfLoopsAndDuplicates) {
  Topology t(3);
  EXPECT_THROW(t.add_edge(PeerId(1), PeerId(1)), InvalidArgument);
  t.add_edge(PeerId(0), PeerId(1));
  EXPECT_THROW(t.add_edge(PeerId(1), PeerId(0)), InvalidArgument);
  EXPECT_THROW(t.add_edge(PeerId(0), PeerId(7)), InvalidArgument);
}

TEST(TopologyTest, ConnectedDetection) {
  Topology t(4);
  t.add_edge(PeerId(0), PeerId(1));
  t.add_edge(PeerId(2), PeerId(3));
  EXPECT_FALSE(t.connected());
  t.add_edge(PeerId(1), PeerId(2));
  EXPECT_TRUE(t.connected());
}

TEST(TopologyTest, SinglePeerIsConnected) {
  EXPECT_TRUE(Topology(1).connected());
}

TEST(RandomTreeTest, IsSpanningTree) {
  Rng rng(1);
  const Topology t = random_tree(500, 3, rng);
  EXPECT_EQ(t.num_edges(), 499u);
  EXPECT_TRUE(t.connected());
  t.validate();
}

TEST(RandomTreeTest, RespectsFanoutCap) {
  Rng rng(2);
  const std::uint32_t b = 3;
  const Topology t = random_tree(1000, b, rng);
  // A node has at most b children plus one parent edge.
  for (std::uint32_t p = 0; p < 1000; ++p) {
    EXPECT_LE(t.degree(PeerId(p)), b + 1) << "peer " << p;
  }
}

TEST(RandomTreeTest, DeterministicForSeed) {
  Rng a(3);
  Rng b(3);
  const Topology ta = random_tree(100, 3, a);
  const Topology tb = random_tree(100, 3, b);
  for (std::uint32_t p = 0; p < 100; ++p) {
    EXPECT_EQ(ta.neighbors(PeerId(p)), tb.neighbors(PeerId(p)));
  }
}

class TopologyGeneratorTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {};

TEST_P(TopologyGeneratorTest, RandomConnectedIsConnectedAndValid) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const Topology t = random_connected(n, 4.0, rng);
  EXPECT_TRUE(t.connected());
  t.validate();
  const double avg_degree = 2.0 * static_cast<double>(t.num_edges()) / n;
  EXPECT_GE(avg_degree, 1.9);  // at least the spanning tree
  EXPECT_LE(avg_degree, 4.5);
}

TEST_P(TopologyGeneratorTest, WattsStrogatzIsValid) {
  const auto [n, seed] = GetParam();
  if (n <= 4) GTEST_SKIP();
  Rng rng(seed);
  const Topology t = watts_strogatz(n, 4, 0.2, rng);
  t.validate();
  // Rewiring keeps roughly k*n/2 edges (some rewires are skipped).
  EXPECT_GE(t.num_edges(), static_cast<std::size_t>(1.7 * n));
  EXPECT_LE(t.num_edges(), static_cast<std::size_t>(2.0 * n) + 1);
}

TEST_P(TopologyGeneratorTest, BarabasiAlbertIsConnectedAndValid) {
  const auto [n, seed] = GetParam();
  if (n <= 3) GTEST_SKIP();
  Rng rng(seed);
  const Topology t = barabasi_albert(n, 2, rng);
  t.validate();
  EXPECT_TRUE(t.connected());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TopologyGeneratorTest,
    ::testing::Combine(::testing::Values(3u, 10u, 100u, 1000u),
                       ::testing::Values(1u, 99u)));

TEST(BarabasiAlbertTest, HubsEmerge) {
  Rng rng(5);
  const Topology t = barabasi_albert(2000, 2, rng);
  std::size_t max_degree = 0;
  for (std::uint32_t p = 0; p < 2000; ++p) {
    max_degree = std::max(max_degree, t.degree(PeerId(p)));
  }
  // Preferential attachment should produce hubs far above the mean (~4).
  EXPECT_GE(max_degree, 30u);
}

TEST(WattsStrogatzTest, ZeroBetaIsRingLattice) {
  Rng rng(6);
  const Topology t = watts_strogatz(20, 4, 0.0, rng);
  for (std::uint32_t p = 0; p < 20; ++p) {
    EXPECT_EQ(t.degree(PeerId(p)), 4u);
  }
  EXPECT_TRUE(t.connected());
}

TEST(GeneratorArgsTest, InvalidArgumentsThrow) {
  Rng rng(7);
  EXPECT_THROW((void)random_tree(10, 0, rng), InvalidArgument);
  EXPECT_THROW((void)watts_strogatz(10, 3, 0.1, rng), InvalidArgument);
  EXPECT_THROW((void)watts_strogatz(4, 4, 0.1, rng), InvalidArgument);
  EXPECT_THROW((void)barabasi_albert(2, 2, rng), InvalidArgument);
  EXPECT_THROW(Topology(0), InvalidArgument);
}

}  // namespace
}  // namespace nf::net
