// Zero-allocation steady state (ISSUE: million-peer hot path).
//
// The flat payload path exists so a warmed engine performs no heap
// allocation per round: slabs, outboxes, inboxes and protocol arenas all
// reach their high-water mark during a warm-up run and are reused
// afterwards. This test links the nf_alloc_hook operator-new override,
// warms an engine with one full flat convergecast run, flips
// begin_steady_state(), and runs a second (fresh) protocol instance on the
// same engine — asserting the round loop allocated exactly nothing.
//
// Protocol instances are one-shot (SessionMux `opened` gating), so the
// steady-state run uses a fresh instance B while the *engine* stays warm;
// B's own arenas fill in on_run_start, which sits before the measured
// round loop by design.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "agg/flat_phases.h"
#include "agg/hierarchy.h"
#include "common/alloc_hook.h"
#include "common/rng.h"
#include "net/engine.h"
#include "net/topology.h"
#include "obs/context.h"

namespace nf::agg {
namespace {

using net::Engine;
using net::Overlay;
using net::TrafficCategory;
using net::TrafficMeter;

constexpr std::uint32_t kPeers = 256;
constexpr std::uint32_t kWidth = 96;  // f*g group sums per message

FlatAggregateConvergecast make_cast(const Hierarchy& hierarchy,
                                    obs::Context* obs = nullptr) {
  return FlatAggregateConvergecast(
      hierarchy, TrafficCategory::kFiltering, kWidth,
      [](PeerId p, std::span<std::uint64_t> out) {
        for (std::uint32_t j = 0; j < kWidth; ++j) {
          out[j] = (p.value() + j) % 7;
        }
      },
      /*flat_bytes=*/0, obs);
}

TEST(SteadyAllocTest, HookIsArmedAndCounting) {
  // Guard against a silently missing link line: a binary without the
  // override TU would report zero allocations for any run.
  ASSERT_TRUE(alloc_hook::armed());
  const std::uint64_t before = alloc_hook::count();
  std::vector<std::uint8_t> sink(1 << 16);
  ASSERT_NE(sink.data(), nullptr);
  EXPECT_GT(alloc_hook::count(), before);
}

TEST(SteadyAllocTest, WarmedFlatRunAllocatesNothing) {
  ASSERT_TRUE(alloc_hook::armed());
  Rng rng(11);
  Overlay overlay(net::random_tree(kPeers, 3, rng));
  TrafficMeter meter(overlay.num_peers());
  const Hierarchy hierarchy = build_bfs_hierarchy(overlay, PeerId(0));
  Engine engine(overlay, meter);

  // Warm-up: one full run grows every slab, outbox and inbox to its
  // high-water mark.
  FlatAggregateConvergecast warm = make_cast(hierarchy);
  engine.run(warm, 100);
  ASSERT_TRUE(warm.complete());

  engine.begin_steady_state();
  FlatAggregateConvergecast steady = make_cast(hierarchy);
  engine.run(steady, 100);
  ASSERT_TRUE(steady.complete());
  EXPECT_EQ(engine.steady_allocs(), 0u)
      << "flat hot path allocated on a warmed engine";
}

TEST(SteadyAllocTest, WarmedLinkStatsChargePathAllocatesNothing) {
  // The telemetry plane's own contract: after the warm-up calls
  // (set_link_capacity / configure_levels / bind_series), charge() touches
  // only preallocated storage — including the Misra-Gries overflow path,
  // which this stream forces by feeding far more distinct links than the
  // summary's capacity.
  ASSERT_TRUE(alloc_hook::armed());
  obs::Context obs;
  obs::LinkStats& ls = obs.link_stats;
  std::vector<std::uint32_t> depths(kPeers);
  for (std::uint32_t p = 0; p < kPeers; ++p) {
    depths[p] = p == 0 ? 0 : 1 + p % 3;
  }
  ls.set_link_capacity(64);
  ls.configure_levels(depths, 4);
  ls.bind_series(obs.registry, obs.series);

  const std::uint64_t before = alloc_hook::count();
  for (std::uint32_t i = 0; i < 20000; ++i) {
    ls.charge(i % kPeers, (i * 7 + 1) % kPeers, i % 9, 64);
  }
  EXPECT_EQ(alloc_hook::count(), before)
      << "LinkStats::charge allocated on a warmed telemetry plane";
}

TEST(SteadyAllocTest, SteadyAllocsMirroredIntoObsCounter) {
  // With an obs context attached the per-round delta also feeds the
  // `engine/steady_allocs` counter. Obs itself allocates (tracer events,
  // metric names), so this test checks the mirror, not zero.
  Rng rng(12);
  Overlay overlay(net::random_tree(64, 3, rng));
  TrafficMeter meter(overlay.num_peers());
  const Hierarchy hierarchy = build_bfs_hierarchy(overlay, PeerId(0));
  Engine engine(overlay, meter);
  obs::Context obs;
  engine.set_obs(&obs);

  FlatAggregateConvergecast warm = make_cast(hierarchy, &obs);
  engine.run(warm, 100);
  engine.begin_steady_state();
  FlatAggregateConvergecast steady = make_cast(hierarchy, &obs);
  engine.run(steady, 100);
  ASSERT_TRUE(steady.complete());
  EXPECT_EQ(obs.registry.counter("engine/steady_allocs").value(),
            engine.steady_allocs());
}

}  // namespace
}  // namespace nf::agg
