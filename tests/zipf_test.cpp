#include "common/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

namespace nf {
namespace {

TEST(HarmonicTest, MatchesClosedFormsForAlphaZeroAndOne) {
  EXPECT_DOUBLE_EQ(generalized_harmonic(10, 0.0), 10.0);
  // H_5 = 1 + 1/2 + 1/3 + 1/4 + 1/5
  EXPECT_NEAR(generalized_harmonic(5, 1.0), 2.283333333333333, 1e-12);
}

TEST(HarmonicTest, LargeNStable) {
  const double h = generalized_harmonic(1000000, 1.0);
  // H_n ~ ln(n) + gamma.
  EXPECT_NEAR(h, std::log(1e6) + 0.5772156649, 1e-6);
}

TEST(ZipfTest, PmfSumsToOne) {
  for (double alpha : {0.0, 0.5, 1.0, 2.0, 5.0}) {
    const ZipfDistribution z(1000, alpha);
    double sum = 0.0;
    for (std::uint64_t k = 1; k <= 1000; ++k) sum += z.pmf(k);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "alpha=" << alpha;
  }
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  const ZipfDistribution z(100, 1.5);
  for (std::uint64_t k = 2; k <= 100; ++k) {
    EXPECT_LE(z.pmf(k), z.pmf(k - 1));
  }
}

TEST(ZipfTest, RanksStayInRange) {
  Rng rng(1);
  for (double alpha : {0.0, 1.0, 3.0}) {
    const ZipfDistribution z(50, alpha);
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t k = z(rng);
      ASSERT_GE(k, 1u);
      ASSERT_LE(k, 50u);
    }
  }
}

TEST(ZipfTest, SingleRankAlwaysOne) {
  Rng rng(2);
  const ZipfDistribution z(1, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z(rng), 1u);
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  Rng rng(3);
  const ZipfDistribution z(10, 0.0);
  std::vector<int> counts(11, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[z(rng)];
  for (std::uint64_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(kDraws), 0.1, 0.01);
  }
}

TEST(ZipfTest, InvalidArgumentsThrow) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), InvalidArgument);
  EXPECT_THROW(ZipfDistribution(10, -0.5), InvalidArgument);
  const ZipfDistribution z(10, 1.0);
  EXPECT_THROW((void)z.pmf(0), InvalidArgument);
  EXPECT_THROW((void)z.pmf(11), InvalidArgument);
}

class ZipfEmpiricalTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfEmpiricalTest, EmpiricalFrequenciesMatchPmf) {
  const double alpha = GetParam();
  constexpr std::uint64_t kRanks = 200;
  constexpr int kDraws = 400000;
  const ZipfDistribution z(kRanks, alpha);
  Rng rng(static_cast<std::uint64_t>(alpha * 1000) + 5);
  std::vector<double> counts(kRanks + 1, 0.0);
  for (int i = 0; i < kDraws; ++i) ++counts[z(rng)];
  // Compare empirical frequency with pmf on ranks with enough mass.
  for (std::uint64_t k = 1; k <= kRanks; ++k) {
    const double expected = z.pmf(k) * kDraws;
    if (expected < 100) continue;
    EXPECT_NEAR(counts[k], expected, 5 * std::sqrt(expected) + 1)
        << "alpha=" << alpha << " rank=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Skewness, ZipfEmpiricalTest,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.2, 2.0, 3.0,
                                           5.0));

TEST(ZipfTest, DeterministicForFixedSeed) {
  const ZipfDistribution z(1000, 1.0);
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(z(a), z(b));
}

TEST(ZipfTest, HigherAlphaConcentratesMass) {
  constexpr int kDraws = 50000;
  double top_share_prev = 0.0;
  for (double alpha : {0.5, 1.0, 2.0}) {
    const ZipfDistribution z(1000, alpha);
    Rng rng(7);
    int top = 0;
    for (int i = 0; i < kDraws; ++i) {
      if (z(rng) <= 10) ++top;
    }
    const double share = top / static_cast<double>(kDraws);
    EXPECT_GT(share, top_share_prev) << "alpha=" << alpha;
    top_share_prev = share;
  }
}

}  // namespace
}  // namespace nf
