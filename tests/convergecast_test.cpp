#include "agg/convergecast.h"

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "common/value_map.h"

namespace nf::agg {
namespace {

using net::Engine;
using net::Overlay;
using net::Topology;
using net::TrafficCategory;
using net::TrafficMeter;

struct Fixture {
  explicit Fixture(Topology topo)
      : overlay(std::move(topo)),
        meter(overlay.num_peers()),
        hierarchy(build_bfs_hierarchy(overlay, PeerId(0))) {}

  Overlay overlay;
  TrafficMeter meter;
  Hierarchy hierarchy;
};

Topology line(std::uint32_t n) {
  Topology t(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    t.add_edge(PeerId(i), PeerId(i + 1));
  }
  return t;
}

TEST(ConvergecastTest, SumsScalarsOverLine) {
  Fixture fx(line(5));
  Convergecast<std::uint64_t> cast(
      fx.hierarchy, TrafficCategory::kFiltering,
      [](PeerId p) { return std::uint64_t{p.value() + 1}; },  // 1..5
      [](std::uint64_t& a, std::uint64_t&& b) { a += b; },
      [](const std::uint64_t&) { return std::uint64_t{4}; });
  Engine engine(fx.overlay, fx.meter);
  engine.run(cast, 100);
  ASSERT_TRUE(cast.complete());
  EXPECT_EQ(cast.result(), 15u);
}

TEST(ConvergecastTest, CompletesInHeightRounds) {
  Fixture fx(line(8));  // height 8
  Convergecast<std::uint64_t> cast(
      fx.hierarchy, TrafficCategory::kFiltering,
      [](PeerId) { return std::uint64_t{1}; },
      [](std::uint64_t& a, std::uint64_t&& b) { a += b; },
      [](const std::uint64_t&) { return std::uint64_t{4}; });
  Engine engine(fx.overlay, fx.meter);
  const std::uint64_t rounds = engine.run(cast, 100);
  EXPECT_EQ(cast.result(), 8u);
  // One level per round plus the final quiescence checks.
  EXPECT_LE(rounds, fx.hierarchy.height() + 2);
}

TEST(ConvergecastTest, OneMessagePerNonRootMember) {
  Rng rng(4);
  Fixture fx(net::random_tree(100, 3, rng));
  Convergecast<std::uint64_t> cast(
      fx.hierarchy, TrafficCategory::kFiltering,
      [](PeerId) { return std::uint64_t{1}; },
      [](std::uint64_t& a, std::uint64_t&& b) { a += b; },
      [](const std::uint64_t&) { return std::uint64_t{4}; });
  Engine engine(fx.overlay, fx.meter);
  engine.run(cast, 200);
  EXPECT_EQ(cast.result(), 100u);
  EXPECT_EQ(fx.meter.num_messages(), 99u);
  EXPECT_EQ(fx.meter.total(TrafficCategory::kFiltering), 99u * 4);
  // The root never sends.
  EXPECT_EQ(cast.sent_bytes(PeerId(0)), 0u);
}

TEST(ConvergecastTest, VectorAggregatesAddElementwise) {
  Rng rng(5);
  Fixture fx(net::random_tree(50, 3, rng));
  Convergecast<std::vector<std::uint64_t>> cast(
      fx.hierarchy, TrafficCategory::kFiltering,
      [](PeerId p) {
        return std::vector<std::uint64_t>{1, p.value(), 2 * p.value()};
      },
      [](std::vector<std::uint64_t>& a, std::vector<std::uint64_t>&& b) {
        for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
      },
      [](const std::vector<std::uint64_t>& v) { return 4 * v.size(); });
  Engine engine(fx.overlay, fx.meter);
  engine.run(cast, 200);
  ASSERT_TRUE(cast.complete());
  const std::uint64_t sum_ids = 50 * 49 / 2;
  EXPECT_EQ(cast.result()[0], 50u);
  EXPECT_EQ(cast.result()[1], sum_ids);
  EXPECT_EQ(cast.result()[2], 2 * sum_ids);
}

TEST(ConvergecastTest, ValueMapMergeMatchesGroundTruth) {
  Rng rng(6);
  Fixture fx(net::random_tree(64, 4, rng));
  // Each peer holds items {p mod 7, p mod 3} with value p+1.
  auto local = [](PeerId p) {
    ValueMap<ItemId, std::uint64_t> m;
    m.add(ItemId(p.value() % 7), p.value() + 1);
    m.add(ItemId(100 + p.value() % 3), p.value() + 1);
    return m;
  };
  ValueMap<ItemId, std::uint64_t> truth;
  for (std::uint32_t p = 0; p < 64; ++p) truth.merge_add(local(PeerId(p)));

  Convergecast<ValueMap<ItemId, std::uint64_t>> cast(
      fx.hierarchy, TrafficCategory::kAggregation, local,
      [](auto& a, auto&& b) { a.merge_add(b); },
      [](const auto& m) { return 8 * m.size(); });
  Engine engine(fx.overlay, fx.meter);
  engine.run(cast, 200);
  ASSERT_TRUE(cast.complete());
  EXPECT_EQ(cast.result(), truth);
}

TEST(ConvergecastTest, SingletonHierarchyCompletesWithoutTraffic) {
  Fixture fx{Topology(1)};
  Convergecast<std::uint64_t> cast(
      fx.hierarchy, TrafficCategory::kFiltering,
      [](PeerId) { return std::uint64_t{42}; },
      [](std::uint64_t& a, std::uint64_t&& b) { a += b; },
      [](const std::uint64_t&) { return std::uint64_t{4}; });
  Engine engine(fx.overlay, fx.meter);
  engine.run(cast, 10);
  ASSERT_TRUE(cast.complete());
  EXPECT_EQ(cast.result(), 42u);
  EXPECT_EQ(fx.meter.total(), 0u);
}

TEST(ConvergecastTest, ResultBeforeCompletionThrows) {
  Fixture fx(line(3));
  Convergecast<std::uint64_t> cast(
      fx.hierarchy, TrafficCategory::kFiltering,
      [](PeerId) { return std::uint64_t{1}; },
      [](std::uint64_t& a, std::uint64_t&& b) { a += b; },
      [](const std::uint64_t&) { return std::uint64_t{4}; });
  EXPECT_THROW((void)cast.result(), InvalidArgument);
}

class ConvergecastTopologyTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {};

TEST_P(ConvergecastTopologyTest, SumIsExactOnArbitraryGraphs) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  Fixture fx(net::random_connected(n, 4.0, rng));
  Convergecast<std::uint64_t> cast(
      fx.hierarchy, TrafficCategory::kFiltering,
      [](PeerId p) { return std::uint64_t{p.value()} * 3 + 1; },
      [](std::uint64_t& a, std::uint64_t&& b) { a += b; },
      [](const std::uint64_t&) { return std::uint64_t{4}; });
  Engine engine(fx.overlay, fx.meter);
  engine.run(cast, 1000);
  ASSERT_TRUE(cast.complete());
  std::uint64_t expect = 0;
  for (std::uint32_t p = 0; p < n; ++p) expect += std::uint64_t{p} * 3 + 1;
  EXPECT_EQ(cast.result(), expect);
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, ConvergecastTopologyTest,
    ::testing::Combine(::testing::Values(2u, 5u, 37u, 256u, 1000u),
                       ::testing::Values(11u, 12u)));

}  // namespace
}  // namespace nf::agg
