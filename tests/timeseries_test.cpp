// obs::TimeSeries: delta semantics, ring wraparound, stamp monotonicity,
// JSON round-trip, and shard-count invariance of the engine-driven series.
#include "obs/timeseries.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "agg/convergecast.h"
#include "agg/hierarchy.h"
#include "net/engine.h"
#include "net/topology.h"
#include "obs/context.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "workload/workload.h"

namespace nf::obs {
namespace {

TEST(TimeSeriesTest, CountersSampleAsPerRoundDeltas) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  TimeSeries series(8);
  c.add(5);  // pre-registration activity becomes the baseline, not a delta
  series.track_counter("x", &c);
  c.add(3);
  series.sample(1);
  series.sample(2);  // no activity -> zero delta
  c.add(7);
  series.sample(3);
  EXPECT_EQ(series.counter_series("x"),
            (std::vector<std::uint64_t>{3, 0, 7}));
  EXPECT_EQ(series.stamps(), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(TimeSeriesTest, GaugesSampleCurrentValue) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("y");
  TimeSeries series(8);
  series.track_gauge("y", &g);
  g.set(1.5);
  series.sample(1);
  g.set(-2.0);
  series.sample(2);
  series.sample(3);
  EXPECT_EQ(series.gauge_series("y"), (std::vector<double>{1.5, -2.0, -2.0}));
}

TEST(TimeSeriesTest, LateRegistrationReadsZeroForEarlierRows) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  TimeSeries series(8);
  series.sample(1);
  series.sample(2);
  series.track_counter("x", &c);
  c.add(4);
  series.sample(3);
  EXPECT_EQ(series.counter_series("x"),
            (std::vector<std::uint64_t>{0, 0, 4}));
}

TEST(TimeSeriesTest, RebindingRebaselinesWithoutASpuriousDelta) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  TimeSeries series(8);
  series.track_counter("x", &c);
  c.add(10);
  series.sample(1);
  // A second engine attaching to the same context re-registers the column;
  // the counter moved meanwhile, but nothing was sampled, so the next row
  // must only cover post-rebind activity.
  c.add(100);
  series.track_counter("x", &c);
  c.add(2);
  series.sample(2);
  EXPECT_EQ(series.counter_series("x"), (std::vector<std::uint64_t>{10, 2}));
}

TEST(TimeSeriesTest, RingWraparoundKeepsNewestRowsAndMonotonicTotals) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  TimeSeries series(4);
  series.track_counter("x", &c);
  for (std::uint64_t round = 1; round <= 10; ++round) {
    c.add(round);
    series.sample(round);
  }
  EXPECT_EQ(series.capacity(), 4u);
  EXPECT_EQ(series.size(), 4u);
  EXPECT_EQ(series.total_samples(), 10u);
  EXPECT_EQ(series.dropped(), 6u);
  EXPECT_EQ(series.stamps(), (std::vector<std::uint64_t>{7, 8, 9, 10}));
  EXPECT_EQ(series.counter_series("x"),
            (std::vector<std::uint64_t>{7, 8, 9, 10}));
}

TEST(TimeSeriesTest, JsonExportRoundTripsThroughParse) {
  MetricsRegistry reg;
  Counter& c = reg.counter("engine/sent");
  Gauge& g = reg.gauge("engine/in_flight");
  TimeSeries series(4);
  series.track_counter("engine/sent", &c);
  series.track_gauge("engine/in_flight", &g);
  for (int i = 1; i <= 6; ++i) {  // wraps: 6 samples into capacity 4
    c.add(static_cast<std::uint64_t>(i));
    g.set(i * 0.5);
    series.sample(static_cast<std::uint64_t>(i));
  }
  const Json doc = to_json(series);
  EXPECT_EQ(doc.at("total_samples").as_uint64(), 6u);
  EXPECT_EQ(doc.at("dropped").as_uint64(), 2u);
  EXPECT_EQ(doc.at("stamps").size(), 4u);
  EXPECT_EQ(doc.at("counters").at("engine/sent").size(), 4u);
  EXPECT_EQ(doc.at("gauges").at("engine/in_flight").size(), 4u);
  EXPECT_EQ(Json::parse(doc.dump()), doc);
}

/// Runs a small convergecast with an obs context attached and returns the
/// context for series inspection.
std::unique_ptr<Context> run_with_obs(std::uint32_t threads) {
  constexpr std::uint32_t kPeers = 40;
  wl::WorkloadConfig wc;
  wc.num_peers = kPeers;
  wc.num_items = 500;
  wc.seed = 17;
  const wl::Workload w = wl::Workload::generate(wc);
  Rng rng(9);
  net::Overlay overlay(net::random_tree(kPeers, 3, rng));
  const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
  net::TrafficMeter meter(kPeers);

  auto ctx = std::make_unique<Context>();
  net::Engine engine(overlay, meter);
  engine.set_threads(threads);
  engine.set_obs(ctx.get());
  agg::Convergecast<std::uint64_t> cast(
      h, net::TrafficCategory::kFiltering,
      [&](PeerId p) { return w.local_items(p).size(); },
      [](std::uint64_t& acc, std::uint64_t&& child) { acc += child; },
      [](const std::uint64_t&) { return std::uint64_t{64}; }, ctx.get());
  engine.run(cast, 5000);
  EXPECT_TRUE(cast.complete());
  return ctx;
}

TEST(TimeSeriesTest, EngineSeriesHasOneMonotonicRowPerRound) {
  const auto ctx = run_with_obs(1);
  const TimeSeries& s = ctx->series;
  const std::vector<std::uint64_t> stamps = s.stamps();
  ASSERT_FALSE(stamps.empty());
  EXPECT_EQ(stamps.size(), ctx->registry.counter("engine/rounds").value());
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_LT(stamps[i - 1], stamps[i]);
  }
  // Per-round deltas re-total to the cumulative counters.
  std::uint64_t sent = 0;
  for (const std::uint64_t d : s.counter_series("engine/sent")) sent += d;
  EXPECT_EQ(sent, ctx->registry.counter("engine/sent").value());
  std::uint64_t bytes = 0;
  for (const std::uint64_t d : s.counter_series("engine/sent_bytes")) {
    bytes += d;
  }
  EXPECT_EQ(bytes, ctx->registry.counter("engine/sent_bytes").value());
  // Quiescent at the end: nothing left in flight.
  EXPECT_EQ(s.gauge_series("engine/in_flight").back(), 0.0);
}

TEST(TimeSeriesTest, DeterministicSeriesColumnsMatchAcrossShardCounts) {
  const auto serial = run_with_obs(1);
  const auto sharded = run_with_obs(4);
  EXPECT_EQ(serial->series.stamps(), sharded->series.stamps());
  for (const char* col : {"engine/sent", "engine/delivered",
                          "engine/sent_bytes"}) {
    EXPECT_EQ(serial->series.counter_series(col),
              sharded->series.counter_series(col))
        << col;
  }
  EXPECT_EQ(serial->series.gauge_series("engine/in_flight"),
            sharded->series.gauge_series("engine/in_flight"));
  // Busy/idle wall time is real time — present per shard, but never
  // compared across shard counts.
  EXPECT_FALSE(serial->series.gauge_series("engine/shard0/busy_us").empty());
}

}  // namespace
}  // namespace nf::obs
