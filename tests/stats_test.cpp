#include "common/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace nf {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 5.0);
}

TEST(OnlineStatsTest, KnownSample) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, MatchesDirectComputationOnRandomData) {
  Rng rng(3);
  OnlineStats s;
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform() * 100 - 50;
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(PercentileTest, Median) {
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 0.5), 2.5);
}

TEST(PercentileTest, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 3}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 3}, 1.0), 5.0);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7}, 0.25), 7.0);
}

TEST(PercentileTest, InvalidInputsThrow) {
  EXPECT_THROW((void)percentile({}, 0.5), InvalidArgument);
  EXPECT_THROW((void)percentile({1.0}, -0.1), InvalidArgument);
  EXPECT_THROW((void)percentile({1.0}, 1.1), InvalidArgument);
}

}  // namespace
}  // namespace nf
