#include "agg/maintenance.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.h"

namespace nf::agg {
namespace {

using net::ChurnSchedule;
using net::Engine;
using net::Overlay;
using net::Topology;
using net::TrafficMeter;

struct Fixture {
  explicit Fixture(Topology topo)
      : overlay(std::move(topo)),
        meter(overlay.num_peers()),
        hierarchy(build_bfs_hierarchy(overlay, PeerId(0))) {}

  Overlay overlay;
  TrafficMeter meter;
  Hierarchy hierarchy;
};

HierarchyMaintenance::Config fast_config() {
  HierarchyMaintenance::Config c;
  c.timeout_rounds = 2;
  return c;
}

TEST(MaintenanceTest, StableNetworkStaysStable) {
  Rng rng(1);
  Fixture fx(net::random_tree(50, 3, rng));
  HierarchyMaintenance maint(fx.hierarchy, fast_config());
  Engine engine(fx.overlay, fx.meter);
  engine.run(maint, 20);
  EXPECT_TRUE(maint.stabilized(fx.overlay));
  const Hierarchy snap = maint.snapshot(fx.overlay);
  snap.validate(fx.overlay);
  // Without churn the tree should be exactly the original.
  for (std::uint32_t p = 0; p < 50; ++p) {
    EXPECT_EQ(snap.depth(PeerId(p)), fx.hierarchy.depth(PeerId(p)));
  }
}

TEST(MaintenanceTest, HeartbeatsFlowEveryRound) {
  Rng rng(2);
  Fixture fx(net::random_tree(10, 3, rng));
  HierarchyMaintenance maint(fx.hierarchy, fast_config());
  Engine engine(fx.overlay, fx.meter);
  engine.run(maint, 5);
  // Every peer heartbeats all neighbors every round: 2 * edges * rounds
  // messages (minus the last round still in flight).
  EXPECT_GT(fx.meter.num_messages(), 2u * 9u * 3u);
  EXPECT_GT(fx.meter.total(net::TrafficCategory::kControl), 0u);
}

TEST(MaintenanceTest, LeafFailureNeedsNoRepair) {
  Rng rng(3);
  Fixture fx(net::random_tree(30, 3, rng));
  HierarchyMaintenance maint(fx.hierarchy, fast_config());
  Engine engine(fx.overlay, fx.meter);
  // Find a leaf.
  PeerId leaf(0);
  for (std::uint32_t p = 0; p < 30; ++p) {
    if (fx.hierarchy.is_leaf(PeerId(p))) {
      leaf = PeerId(p);
      break;
    }
  }
  ChurnSchedule churn;
  churn.fail_at(3, leaf);
  engine.run(maint, 30, &churn);
  EXPECT_TRUE(maint.stabilized(fx.overlay));
  const Hierarchy snap = maint.snapshot(fx.overlay);
  snap.validate(fx.overlay);
  EXPECT_EQ(snap.num_members(), 29u);
  EXPECT_FALSE(snap.is_member(leaf));
}

TEST(MaintenanceTest, InternalFailureRepairsWhenRouteExists) {
  // Ring: every peer has two routes to the root, so any single non-root
  // failure leaves the rest reattachable.
  Topology t(12);
  for (std::uint32_t i = 0; i < 12; ++i) {
    t.add_edge(PeerId(i), PeerId((i + 1) % 12));
  }
  Fixture fx(std::move(t));
  HierarchyMaintenance maint(fx.hierarchy, fast_config());
  Engine engine(fx.overlay, fx.meter);
  ChurnSchedule churn;
  churn.fail_at(3, PeerId(1));  // internal node on one side of the ring
  engine.run(maint, 60, &churn);
  EXPECT_TRUE(maint.stabilized(fx.overlay));
  const Hierarchy snap = maint.snapshot(fx.overlay);
  snap.validate(fx.overlay);
  EXPECT_EQ(snap.num_members(), 11u);
  // Peer 2 lost its parent (1) and must have reattached via peer 3.
  EXPECT_TRUE(snap.is_member(PeerId(2)));
}

TEST(MaintenanceTest, JoiningPeerAttaches) {
  Topology t(5);
  for (std::uint32_t i = 0; i + 1 < 5; ++i) {
    t.add_edge(PeerId(i), PeerId(i + 1));
  }
  Overlay overlay(std::move(t));
  overlay.fail(PeerId(4));
  TrafficMeter meter(5);
  const Hierarchy initial = build_bfs_hierarchy(overlay, PeerId(0));
  EXPECT_EQ(initial.num_members(), 4u);
  HierarchyMaintenance maint(initial, fast_config());
  Engine engine(overlay, meter);
  ChurnSchedule churn;
  churn.join_at(3, PeerId(4));
  engine.run(maint, 30, &churn);
  EXPECT_TRUE(maint.stabilized(overlay));
  const Hierarchy snap = maint.snapshot(overlay);
  snap.validate(overlay);
  EXPECT_TRUE(snap.is_member(PeerId(4)));
  EXPECT_EQ(snap.depth(PeerId(4)), 4u);
  EXPECT_EQ(snap.upstream(PeerId(4)), PeerId(3));
}

class MaintenanceChurnTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(MaintenanceChurnTest, RandomChurnConvergesOnWellConnectedGraphs) {
  const auto [seed, fail_prob] = GetParam();
  Rng rng(seed);
  // Well-connected overlay: failures rarely disconnect it.
  Fixture fx(net::random_connected(60, 6.0, rng));
  HierarchyMaintenance maint(fx.hierarchy, fast_config());
  Engine engine(fx.overlay, fx.meter);
  ChurnSchedule churn = ChurnSchedule::random_failures(
      2, 6, 60, fail_prob, PeerId(0), rng);
  engine.run(maint, 100, &churn);

  // Convergence is only guaranteed if the alive overlay stayed connected;
  // verify it did, then require stabilization.
  const auto alive_reachable = [&] {
    std::vector<bool> seen(60, false);
    std::vector<PeerId> stack{PeerId(0)};
    seen[0] = true;
    std::uint32_t count = 1;
    while (!stack.empty()) {
      const PeerId p = stack.back();
      stack.pop_back();
      for (PeerId q : fx.overlay.alive_neighbors(p)) {
        if (!seen[q.value()]) {
          seen[q.value()] = true;
          ++count;
          stack.push_back(q);
        }
      }
    }
    return count;
  }();
  if (alive_reachable != fx.overlay.num_alive()) GTEST_SKIP();

  EXPECT_TRUE(maint.stabilized(fx.overlay));
  const Hierarchy snap = maint.snapshot(fx.overlay);
  snap.validate(fx.overlay);
  EXPECT_EQ(snap.num_members(), fx.overlay.num_alive());
}

INSTANTIATE_TEST_SUITE_P(
    Churn, MaintenanceChurnTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(0.01, 0.05)));

TEST(MaintenanceTest, DepthCountersMatchSnapshotAfterRepair) {
  Topology t(8);
  for (std::uint32_t i = 0; i < 8; ++i) {
    t.add_edge(PeerId(i), PeerId((i + 1) % 8));
  }
  Fixture fx(std::move(t));
  HierarchyMaintenance maint(fx.hierarchy, fast_config());
  Engine engine(fx.overlay, fx.meter);
  ChurnSchedule churn;
  churn.fail_at(2, PeerId(7));
  engine.run(maint, 50, &churn);
  ASSERT_TRUE(maint.stabilized(fx.overlay));
  const Hierarchy snap = maint.snapshot(fx.overlay);
  for (std::uint32_t p = 0; p < 8; ++p) {
    if (!snap.is_member(PeerId(p))) continue;
    EXPECT_EQ(maint.depth(PeerId(p)), snap.depth(PeerId(p)));
  }
}

}  // namespace
}  // namespace nf::agg
