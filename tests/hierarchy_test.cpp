#include "agg/hierarchy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <tuple>

#include "common/error.h"

namespace nf::agg {
namespace {

using net::Overlay;
using net::Topology;

Overlay make_line(std::uint32_t n) {
  Topology t(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    t.add_edge(PeerId(i), PeerId(i + 1));
  }
  return Overlay(std::move(t));
}

/// Reference BFS distances over the alive sub-overlay.
std::vector<std::uint32_t> bfs_distances(const Overlay& o, PeerId root) {
  std::vector<std::uint32_t> dist(o.num_peers(), kInfiniteDepth);
  std::queue<PeerId> q;
  dist[root.value()] = 0;
  q.push(root);
  while (!q.empty()) {
    const PeerId p = q.front();
    q.pop();
    for (PeerId nb : o.neighbors(p)) {
      if (!o.is_alive(nb) || dist[nb.value()] != kInfiniteDepth) continue;
      dist[nb.value()] = dist[p.value()] + 1;
      q.push(nb);
    }
  }
  return dist;
}

TEST(HierarchyTest, LineHierarchyDepthsAreDistances) {
  const Overlay o = make_line(5);
  const Hierarchy h = build_bfs_hierarchy(o, PeerId(0));
  h.validate(o);
  EXPECT_EQ(h.num_members(), 5u);
  EXPECT_EQ(h.height(), 5u);
  for (std::uint32_t p = 0; p < 5; ++p) {
    EXPECT_EQ(h.depth(PeerId(p)), p);
  }
  EXPECT_TRUE(h.is_leaf(PeerId(4)));
  EXPECT_FALSE(h.is_leaf(PeerId(0)));
}

TEST(HierarchyTest, RootFromTheMiddle) {
  const Overlay o = make_line(5);
  const Hierarchy h = build_bfs_hierarchy(o, PeerId(2));
  h.validate(o);
  EXPECT_EQ(h.depth(PeerId(0)), 2u);
  EXPECT_EQ(h.depth(PeerId(4)), 2u);
  EXPECT_EQ(h.height(), 3u);
  EXPECT_EQ(h.upstream(PeerId(1)), PeerId(2));
  EXPECT_EQ(h.upstream(PeerId(3)), PeerId(2));
}

class HierarchyRandomTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {};

TEST_P(HierarchyRandomTest, DepthsAreShortestPathsOnRandomGraphs) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const Overlay o{net::random_connected(n, 4.0, rng)};
  const PeerId root(static_cast<std::uint32_t>(rng.below(n)));
  const Hierarchy h = build_bfs_hierarchy(o, root);
  h.validate(o);
  const auto dist = bfs_distances(o, root);
  for (std::uint32_t p = 0; p < n; ++p) {
    ASSERT_TRUE(h.is_member(PeerId(p)));
    EXPECT_EQ(h.depth(PeerId(p)), dist[p]) << "peer " << p;
  }
}

TEST_P(HierarchyRandomTest, TreeFanoutTracksTopologyCap) {
  const auto [n, seed] = GetParam();
  if (n < 50) GTEST_SKIP();
  Rng rng(seed);
  const Overlay o{net::random_tree(n, 3, rng)};
  const Hierarchy h = build_bfs_hierarchy(o, PeerId(0));
  h.validate(o);
  for (std::uint32_t p = 0; p < n; ++p) {
    EXPECT_LE(h.downstream(PeerId(p)).size(), 3u);
  }
  EXPECT_GT(h.avg_fanout(), 1.0);
  EXPECT_LE(h.avg_fanout(), 3.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, HierarchyRandomTest,
    ::testing::Combine(::testing::Values(2u, 10u, 100u, 500u),
                       ::testing::Values(1u, 2u, 3u)));

TEST(HierarchyTest, UnreachableAlivePeerIsAnError) {
  Topology t(5);
  t.add_edge(PeerId(0), PeerId(1));
  t.add_edge(PeerId(0), PeerId(2));
  t.add_edge(PeerId(2), PeerId(3));
  t.add_edge(PeerId(3), PeerId(4));
  Overlay o(std::move(t));
  o.fail(PeerId(3));
  // Peer 4's only route is through dead peer 3: unreachable.
  EXPECT_THROW((void)build_bfs_hierarchy(o, PeerId(0)), ProtocolError);
}

TEST(HierarchyTest, DeadLeafIsSimplyExcluded) {
  Overlay o = make_line(4);
  o.fail(PeerId(3));
  const Hierarchy h = build_bfs_hierarchy(o, PeerId(0));
  h.validate(o);
  EXPECT_EQ(h.num_members(), 3u);
  EXPECT_FALSE(h.is_member(PeerId(3)));
}

TEST(HierarchyTest, ParticipantSubsetWithHosts) {
  const Overlay o = make_line(6);
  const std::vector<bool> participant{true, true, false, true, false, false};
  // Participant 3 is cut off from {0,1} by non-participant 2 -> demoted.
  const Hierarchy h = build_bfs_hierarchy(o, PeerId(0), participant);
  h.validate(o);
  EXPECT_TRUE(h.is_member(PeerId(0)));
  EXPECT_TRUE(h.is_member(PeerId(1)));
  EXPECT_FALSE(h.is_member(PeerId(2)));
  EXPECT_FALSE(h.is_member(PeerId(3)));
  // Hosts are the nearest member.
  EXPECT_EQ(h.host(PeerId(2)), PeerId(1));
  EXPECT_EQ(h.host(PeerId(3)), PeerId(1));
  EXPECT_EQ(h.host(PeerId(5)), PeerId(1));
  // Members host themselves.
  EXPECT_EQ(h.host(PeerId(0)), PeerId(0));
}

TEST(HierarchyTest, MembersDeepestFirstIsBottomUpOrder) {
  Rng rng(9);
  const Overlay o{net::random_tree(200, 3, rng)};
  const Hierarchy h = build_bfs_hierarchy(o, PeerId(0));
  const auto order = h.members_deepest_first();
  ASSERT_EQ(order.size(), 200u);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_GE(h.depth(order[i]), h.depth(order[i + 1]));
  }
  EXPECT_EQ(order.back(), PeerId(0));
}

TEST(HierarchyTest, NonMemberAccessorsThrow) {
  const Overlay o = make_line(4);
  const std::vector<bool> participant{true, true, false, false};
  const Hierarchy h = build_bfs_hierarchy(o, PeerId(0), participant);
  EXPECT_THROW((void)h.depth(PeerId(2)), InvalidArgument);
  EXPECT_THROW((void)h.upstream(PeerId(2)), InvalidArgument);
  EXPECT_THROW((void)h.downstream(PeerId(2)), InvalidArgument);
}

TEST(HierarchyTest, RootMustBeAliveParticipant) {
  Overlay o = make_line(3);
  o.fail(PeerId(0));
  EXPECT_THROW((void)build_bfs_hierarchy(o, PeerId(0)), InvalidArgument);
  const Overlay o2 = make_line(3);
  const std::vector<bool> participant{false, true, true};
  EXPECT_THROW((void)build_bfs_hierarchy(o2, PeerId(0), participant),
               InvalidArgument);
}

TEST(SelectStablePeersTest, PicksHighestUptime) {
  const std::vector<double> uptime{0.1, 0.9, 0.5, 0.8};
  const auto mask = select_stable_peers(uptime, 0.5, PeerId(1));
  EXPECT_FALSE(mask[0]);
  EXPECT_TRUE(mask[1]);
  EXPECT_FALSE(mask[2]);
  EXPECT_TRUE(mask[3]);
}

TEST(SelectStablePeersTest, RootAlwaysIncluded) {
  const std::vector<double> uptime{0.1, 0.9, 0.5, 0.8};
  const auto mask = select_stable_peers(uptime, 0.25, PeerId(0));
  EXPECT_TRUE(mask[0]);  // forced in despite lowest uptime
  EXPECT_TRUE(mask[1]);
}

TEST(SelectStablePeersTest, FullFractionSelectsEveryone) {
  const std::vector<double> uptime{0.3, 0.2, 0.1};
  const auto mask = select_stable_peers(uptime, 1.0, PeerId(2));
  EXPECT_EQ(std::count(mask.begin(), mask.end(), true), 3);
}

}  // namespace
}  // namespace nf::agg
