// Cost-model conformance: residual math, the gated-tolerance gate, JSON
// shape, hand-computed Formula 1/3/4 values, and the end-to-end guarantee
// that a real netFilter run records gated residuals within 10%.
#include "obs/conformance.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/netfilter.h"
#include "net/topology.h"
#include "obs/context.h"
#include "workload/workload.h"

namespace nf {
namespace {

using core::cost_model::aggregation_term;
using core::cost_model::dissemination_term;
using core::cost_model::expected_fp2;
using core::cost_model::filtering_term;
using core::cost_model::netfilter_cost;
using core::cost_model::optimal_num_groups;
using obs::ConformanceCheck;
using obs::ConformanceReport;

TEST(ConformanceCheckTest, ResidualIsSignedRelativeError) {
  EXPECT_DOUBLE_EQ((ConformanceCheck{"x", 100.0, 100.0, true}).residual(),
                   0.0);
  EXPECT_DOUBLE_EQ((ConformanceCheck{"x", 100.0, 110.0, true}).residual(),
                   0.1);
  EXPECT_DOUBLE_EQ((ConformanceCheck{"x", 100.0, 90.0, true}).residual(),
                   -0.1);
  // predicted == 0: exact when observed is too, finite (not inf) otherwise.
  EXPECT_DOUBLE_EQ((ConformanceCheck{"x", 0.0, 0.0, true}).residual(), 0.0);
  EXPECT_DOUBLE_EQ((ConformanceCheck{"x", 0.0, 5.0, true}).residual(), 5.0);
}

TEST(ConformanceReportTest, GateCoversOnlyGatedChecks) {
  ConformanceReport report;
  report.begin_run();
  report.set_param("num_peers", 60.0);
  report.add_check("exact", 100.0, 100.5, /*gated=*/true);
  report.add_check("bound", 100.0, 250.0, /*gated=*/false);
  EXPECT_EQ(report.num_runs(), 1u);
  EXPECT_DOUBLE_EQ(report.max_gated_residual(), 0.005);
  EXPECT_TRUE(report.within(0.01));
  EXPECT_FALSE(report.within(0.001));
  report.begin_run();
  report.add_check("exact", 100.0, 120.0, /*gated=*/true);
  EXPECT_DOUBLE_EQ(report.max_gated_residual(), 0.2);  // worst across runs
  report.clear();
  EXPECT_EQ(report.num_runs(), 0u);
  EXPECT_TRUE(report.within(0.0));
}

TEST(ConformanceReportTest, JsonShape) {
  ConformanceReport report;
  report.begin_run();
  report.set_param("num_groups", 50.0);
  report.add_check("F1.filtering", 400.0, 400.0, true);
  const obs::Json doc = to_json(report);
  ASSERT_EQ(doc.at("runs").size(), 1u);
  const obs::Json& run = doc.at("runs").as_array()[0];
  EXPECT_DOUBLE_EQ(run.at("params").at("num_groups").as_double(), 50.0);
  const obs::Json& check = run.at("checks").as_array()[0];
  EXPECT_EQ(check.at("name").as_string(), "F1.filtering");
  EXPECT_DOUBLE_EQ(check.at("residual").as_double(), 0.0);
  EXPECT_TRUE(check.at("gated").as_bool());
  EXPECT_DOUBLE_EQ(doc.at("max_gated_residual").as_double(), 0.0);
  EXPECT_EQ(obs::Json::parse(doc.dump()), doc);
}

TEST(ConformanceFormulaTest, HandComputedFormula1Components) {
  const WireSizes wire{};  // sa = sg = 4, pair = 8
  // Formula 1 with f=2, g=50, w=3 per filter, r=3, fp=2:
  //   filtering sa*f*g = 4*2*50 = 400, dissemination sg*f*w = 4*2*3 = 24,
  //   aggregation (sa+si)*(r+fp) = 8*5 = 40.
  EXPECT_DOUBLE_EQ(filtering_term(wire, 2, 50), 400.0);
  EXPECT_DOUBLE_EQ(dissemination_term(wire, 2, 3), 24.0);
  EXPECT_DOUBLE_EQ(aggregation_term(wire, 3, 2), 40.0);
  EXPECT_DOUBLE_EQ(netfilter_cost(wire, 2, 50, 3, 3, 2), 464.0);
}

TEST(ConformanceFormulaTest, HandComputedFormula3And4) {
  // F3: g_opt = c + v_light / (theta * v_bar) = 20 + 50/(0.01*100) = 70.
  EXPECT_DOUBLE_EQ(optimal_num_groups(50.0, 0.01, 100.0), 70.0);
  // F4: fp2 = (n-r)*(1-(1-1/g)^r)^f with n=100, r=10, g=20, f=2.
  const double p = 1.0 - std::pow(1.0 - 1.0 / 20.0, 10.0);
  EXPECT_NEAR(expected_fp2(100.0, 10.0, 20.0, 2.0), 90.0 * p * p, 1e-9);
}

TEST(ConformanceIntegrationTest, NetFilterRunStaysWithinTenPercent) {
  constexpr std::uint32_t kPeers = 60;
  wl::WorkloadConfig wc;
  wc.num_peers = kPeers;
  wc.num_items = 2000;
  wc.seed = 11;
  const wl::Workload w = wl::Workload::generate(wc);
  Rng rng(5);
  net::Overlay overlay(net::random_tree(kPeers, 3, rng));
  const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
  net::TrafficMeter meter(kPeers);

  obs::Context ctx;
  core::NetFilterConfig cfg;
  cfg.num_groups = 40;
  cfg.num_filters = 2;
  cfg.obs = &ctx;
  const core::NetFilter nf(cfg);
  const core::NetFilterResult result =
      nf.run(w, h, overlay, meter, w.threshold_for(0.01));
  ASSERT_GT(result.frequent.size(), 0u);

  ASSERT_EQ(ctx.conformance.num_runs(), 1u);
  EXPECT_TRUE(ctx.conformance.within(0.10))
      << "max gated residual " << ctx.conformance.max_gated_residual();
  const auto runs = ctx.conformance.snapshot();
  ASSERT_EQ(runs[0].checks.size(), 4u);
  EXPECT_EQ(runs[0].checks[0].name, "F1.filtering");
  EXPECT_TRUE(runs[0].checks[0].gated);
  EXPECT_EQ(runs[0].checks[1].name, "F1.dissemination");
  EXPECT_TRUE(runs[0].checks[1].gated);
  EXPECT_EQ(runs[0].checks[2].name, "F1.aggregation_ub");
  EXPECT_FALSE(runs[0].checks[2].gated);
  EXPECT_EQ(runs[0].checks[3].name, "F1.total");
  EXPECT_DOUBLE_EQ(runs[0].params.at("num_peers"),
                   static_cast<double>(kPeers));
  // The aggregation bound really is a bound: observed <= predicted.
  EXPECT_LE(runs[0].checks[2].observed,
            runs[0].checks[2].predicted * (1.0 + 1e-9));
}

TEST(ConformanceIntegrationTest, VarintAndLossyRunsAreNotJudged) {
  constexpr std::uint32_t kPeers = 30;
  wl::WorkloadConfig wc;
  wc.num_peers = kPeers;
  wc.num_items = 500;
  wc.seed = 7;
  const wl::Workload w = wl::Workload::generate(wc);
  Rng rng(3);
  net::Overlay overlay(net::random_tree(kPeers, 3, rng));
  const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
  net::TrafficMeter meter(kPeers);

  obs::Context ctx;
  core::NetFilterConfig cfg;
  cfg.num_groups = 20;
  cfg.num_filters = 2;
  cfg.obs = &ctx;
  cfg.wire_model = core::WireModel::kVarintDelta;
  const core::NetFilter nf(cfg);
  const auto result =
      nf.run(w, h, overlay, meter, w.threshold_for(0.01));
  (void)result;
  EXPECT_EQ(ctx.conformance.num_runs(), 0u);
}

}  // namespace
}  // namespace nf
