// Chrome/Perfetto trace-event export: golden output for a tiny trace,
// structural invariants (balanced B/E, orphan ends dropped), counter tracks
// from the time series, and the file writer.
#include "obs/trace_event.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/context.h"
#include "obs/json.h"

namespace nf::obs {
namespace {

/// Counts events with the given "ph" in a trace document.
int count_ph(const Json& doc, const std::string& ph) {
  int n = 0;
  for (const Json& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == ph) ++n;
  }
  return n;
}

TEST(TraceEventTest, GoldenMinimalTrace) {
  Context ctx(/*trace_capacity=*/16, /*series_capacity=*/4);
  ctx.tracer.advance_clock();
  ctx.tracer.record(EventKind::kPhaseBegin, "filtering");
  ctx.tracer.record(EventKind::kMerge, "cast.merge", /*peer=*/3,
                    /*value=*/64);
  ctx.tracer.advance_clock();
  ctx.tracer.record(EventKind::kPhaseEnd, "filtering", kNoPeer,
                    /*value=*/1000);

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"args\":{\"name\":\"netfilter\"},\"name\":\"process_name\","
      "\"ph\":\"M\",\"pid\":0,\"tid\":0},"
      "{\"args\":{\"name\":\"filtering\"},\"name\":\"thread_name\","
      "\"ph\":\"M\",\"pid\":0,\"tid\":1},"
      "{\"args\":{\"name\":\"merges\"},\"name\":\"thread_name\","
      "\"ph\":\"M\",\"pid\":0,\"tid\":100},"
      "{\"name\":\"filtering\",\"ph\":\"B\",\"pid\":0,\"tid\":1,\"ts\":1},"
      "{\"args\":{\"bytes\":64,\"peer\":3},\"name\":\"cast.merge\","
      "\"ph\":\"i\",\"pid\":0,\"s\":\"t\",\"tid\":100,\"ts\":1},"
      "{\"args\":{\"wall_us\":1000},\"name\":\"filtering\",\"ph\":\"E\","
      "\"pid\":0,\"tid\":1,\"ts\":2}"
      "]}";
  EXPECT_EQ(trace_event_json(ctx).dump(), expected);
}

TEST(TraceEventTest, OrphanEndIsDroppedOpenBeginTolerated) {
  Context ctx(16, 4);
  ctx.tracer.record(EventKind::kPhaseEnd, "lost-begin", kNoPeer, 5);
  ctx.tracer.record(EventKind::kPhaseBegin, "still-open");
  const Json doc = trace_event_json(ctx);
  EXPECT_EQ(count_ph(doc, "E"), 0);
  EXPECT_EQ(count_ph(doc, "B"), 1);
}

TEST(TraceEventTest, NestedAndRepeatedPhasesStayBalanced) {
  Context ctx(64, 4);
  for (int i = 0; i < 3; ++i) {
    ctx.tracer.advance_clock();
    ctx.tracer.record(EventKind::kPhaseBegin, "outer");
    ctx.tracer.record(EventKind::kPhaseBegin, "inner");
    ctx.tracer.record(EventKind::kPhaseEnd, "inner", kNoPeer, 1);
    ctx.tracer.record(EventKind::kPhaseEnd, "outer", kNoPeer, 2);
  }
  const Json doc = trace_event_json(ctx);
  EXPECT_EQ(count_ph(doc, "B"), 6);
  EXPECT_EQ(count_ph(doc, "E"), 6);
  // Same phase name -> same track, every time.
  std::map<std::string, std::uint64_t> tids;
  for (const Json& e : doc.at("traceEvents").as_array()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph != "B" && ph != "E") continue;
    const std::string& name = e.at("name").as_string();
    const std::uint64_t tid = e.at("tid").as_uint64();
    if (tids.count(name) != 0) {
      EXPECT_EQ(tids[name], tid) << name;
    }
    tids[name] = tid;
  }
  EXPECT_EQ(tids.size(), 2u);
}

TEST(TraceEventTest, SeriesColumnsBecomeCounterTracks) {
  Context ctx(16, 8);
  Counter& sent = ctx.registry.counter("engine/sent");
  ctx.series.track_counter("engine/sent", &sent);
  for (std::uint64_t round = 1; round <= 3; ++round) {
    ctx.tracer.advance_clock();
    sent.add(round);
    ctx.series.sample(ctx.tracer.clock());
  }
  const Json doc = trace_event_json(ctx);
  int counters = 0;
  for (const Json& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "C") continue;
    if (e.at("name").as_string() != "engine/sent") continue;
    ++counters;
    EXPECT_EQ(e.at("args").at("value").as_uint64(), e.at("ts").as_uint64());
  }
  EXPECT_EQ(counters, 3);
}

TEST(TraceEventTest, WriteFileProducesParseableDocument) {
  Context ctx(16, 4);
  ctx.tracer.record(EventKind::kPhaseBegin, "p");
  ctx.tracer.record(EventKind::kPhaseEnd, "p", kNoPeer, 1);
  const std::string path = "trace_event_test_out.json";
  ASSERT_TRUE(write_trace_event_file(path, ctx));
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const Json doc = Json::parse(buf.str());
  EXPECT_TRUE(doc.contains("traceEvents"));
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nf::obs
