#include "core/partitioned.h"

#include <gtest/gtest.h>

#include "core/netfilter.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace nf::core {
namespace {

using net::Overlay;
using net::TrafficMeter;

struct Rig {
  Rig(std::uint32_t num_peers, std::uint64_t num_items, std::uint64_t seed)
      : workload([&] {
          wl::WorkloadConfig cfg;
          cfg.num_peers = num_peers;
          cfg.num_items = num_items;
          cfg.seed = seed;
          return wl::Workload::generate(cfg);
        }()),
        overlay([&] {
          Rng rng(seed + 1);
          return Overlay(net::random_connected(num_peers, 4.0, rng));
        }()),
        meter(num_peers) {}

  wl::Workload workload;
  Overlay overlay;
  TrafficMeter meter;
};

NetFilterConfig config(std::uint32_t g, std::uint32_t f) {
  NetFilterConfig c;
  c.num_groups = g;
  c.num_filters = f;
  return c;
}

TEST(PartitionedNetFilterTest, ExactAcrossPartitionCounts) {
  for (std::uint32_t k : {1u, 2u, 3u, 4u}) {
    Rig rig(80, 6000, 10 + k);
    Rng rng(99 + k);
    const auto mh =
        agg::MultiHierarchy::build_random(rig.overlay, k, rng);
    const Value t = rig.workload.threshold_for(0.01);
    const PartitionedNetFilter pnf(config(64, 4));
    const auto res =
        pnf.run(rig.workload, mh, rig.overlay, rig.meter, t);
    EXPECT_EQ(res.frequent, rig.workload.frequent_items(t)) << "k=" << k;
    EXPECT_EQ(res.stats.num_frequent, res.frequent.size());
    EXPECT_GT(res.stats.total_cost(), 0.0);
  }
}

TEST(PartitionedNetFilterTest, SinglePartitionMatchesPlainNetFilterCost) {
  Rig rig(60, 4000, 20);
  const auto mh = agg::MultiHierarchy::build(rig.overlay, {PeerId(0)});
  const Value t = rig.workload.threshold_for(0.01);
  const PartitionedNetFilter pnf(config(64, 3));
  const auto part = pnf.run(rig.workload, mh, rig.overlay, rig.meter, t);

  TrafficMeter meter2(60);
  const NetFilter nf(config(64, 3));
  const auto plain = nf.run(rig.workload, mh.primary(), rig.overlay, meter2,
                            t);
  EXPECT_EQ(part.frequent, plain.frequent);
  EXPECT_DOUBLE_EQ(part.stats.filtering_cost, plain.stats.filtering_cost);
  EXPECT_DOUBLE_EQ(part.stats.dissemination_cost,
                   plain.stats.dissemination_cost);
  EXPECT_DOUBLE_EQ(part.stats.aggregation_cost,
                   plain.stats.aggregation_cost);
}

TEST(PartitionedNetFilterTest, SpreadsTheRootLoad) {
  // The headline: with k partitions, the busiest peer carries much less
  // than under a single hierarchy, at similar average cost.
  Rig single_rig(120, 20000, 30);
  const auto mh1 =
      agg::MultiHierarchy::build(single_rig.overlay, {PeerId(0)});
  const Value t = single_rig.workload.threshold_for(0.01);
  const PartitionedNetFilter pnf(config(100, 4));
  (void)pnf.run(single_rig.workload, mh1, single_rig.overlay,
                single_rig.meter, t);
  const std::uint64_t single_max = single_rig.meter.max_peer_total();

  Rig part_rig(120, 20000, 30);
  Rng rng(31);
  const auto mh4 =
      agg::MultiHierarchy::build_random(part_rig.overlay, 4, rng);
  (void)pnf.run(part_rig.workload, mh4, part_rig.overlay, part_rig.meter,
                t);
  const std::uint64_t part_max = part_rig.meter.max_peer_total();

  EXPECT_LT(part_max, single_max);
  // Average cost stays within 2x (extra hierarchies do not multiply cost).
  EXPECT_LT(part_rig.meter.per_peer(), 2.0 * single_rig.meter.per_peer());
}

TEST(PartitionedNetFilterTest, MorePartitionsThanFiltersStillExact) {
  Rig rig(50, 3000, 40);
  Rng rng(41);
  const auto mh = agg::MultiHierarchy::build_random(rig.overlay, 5, rng);
  const Value t = rig.workload.threshold_for(0.02);
  const PartitionedNetFilter pnf(config(32, 2));  // k=5 > f=2
  const auto res = pnf.run(rig.workload, mh, rig.overlay, rig.meter, t);
  EXPECT_EQ(res.frequent, rig.workload.frequent_items(t));
}

TEST(PartitionedNetFilterTest, InvalidThresholdThrows) {
  Rig rig(10, 100, 50);
  const auto mh = agg::MultiHierarchy::build(rig.overlay, {PeerId(0)});
  const PartitionedNetFilter pnf(config(8, 2));
  EXPECT_THROW(
      (void)pnf.run(rig.workload, mh, rig.overlay, rig.meter, 0),
      InvalidArgument);
}

}  // namespace
}  // namespace nf::core
