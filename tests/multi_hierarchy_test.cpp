#include "agg/multi_hierarchy.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "net/topology.h"

namespace nf::agg {
namespace {

using net::Overlay;

Overlay make_overlay(std::uint32_t n, std::uint64_t seed) {
  Rng rng(seed);
  return Overlay(net::random_connected(n, 4.0, rng));
}

TEST(MultiHierarchyTest, BuildsOnePerRoot) {
  const Overlay o = make_overlay(50, 1);
  const MultiHierarchy mh =
      MultiHierarchy::build(o, {PeerId(0), PeerId(7), PeerId(33)});
  ASSERT_EQ(mh.size(), 3u);
  EXPECT_EQ(mh.at(0).root(), PeerId(0));
  EXPECT_EQ(mh.at(1).root(), PeerId(7));
  EXPECT_EQ(mh.at(2).root(), PeerId(33));
  for (std::size_t i = 0; i < 3; ++i) mh.at(i).validate(o);
  EXPECT_EQ(mh.primary().root(), PeerId(0));
}

TEST(MultiHierarchyTest, DuplicateRootsRejected) {
  const Overlay o = make_overlay(10, 2);
  EXPECT_THROW((void)MultiHierarchy::build(o, {PeerId(1), PeerId(1)}),
               InvalidArgument);
  EXPECT_THROW((void)MultiHierarchy::build(o, {}), InvalidArgument);
}

TEST(MultiHierarchyTest, SurvivingSkipsDeadRoots) {
  Overlay o = make_overlay(50, 3);
  const MultiHierarchy mh =
      MultiHierarchy::build(o, {PeerId(0), PeerId(7), PeerId(33)});
  EXPECT_EQ(mh.surviving(o).root(), PeerId(0));
  o.fail(PeerId(0));
  EXPECT_EQ(mh.surviving(o).root(), PeerId(7));
  o.fail(PeerId(7));
  EXPECT_EQ(mh.surviving(o).root(), PeerId(33));
  o.fail(PeerId(33));
  EXPECT_THROW((void)mh.surviving(o), ProtocolError);
}

TEST(MultiHierarchyTest, RandomRootsAreDistinctAndAlive) {
  Overlay o = make_overlay(100, 4);
  o.fail(PeerId(5));
  Rng rng(9);
  const MultiHierarchy mh = MultiHierarchy::build_random(o, 5, rng);
  ASSERT_EQ(mh.size(), 5u);
  std::set<std::uint32_t> roots;
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(o.is_alive(mh.at(i).root()));
    roots.insert(mh.at(i).root().value());
  }
  EXPECT_EQ(roots.size(), 5u);
}

TEST(MultiHierarchyTest, IndexOutOfRangeThrows) {
  const Overlay o = make_overlay(10, 5);
  const MultiHierarchy mh = MultiHierarchy::build(o, {PeerId(0)});
  EXPECT_THROW((void)mh.at(1), InvalidArgument);
}

}  // namespace
}  // namespace nf::agg
