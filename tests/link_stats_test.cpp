// obs/link_stats.h — the Misra-Gries link summary and the per-level
// traffic matrix (schema v6 `link_stats`).
//
// The summary's contract is the classic heavy-hitter sandwich: for every
// key, estimate <= true weight <= estimate + error_bound(), with equality
// (error_bound 0) while the distinct-key count stays within capacity. The
// matrix's contract is the level geometry: a link is charged to the deeper
// endpoint's BFS depth, off-hierarchy endpoints land in the bucket row,
// and re-configuring with identical geometry preserves accumulated counts
// (alpha sweeps re-run over one shared context).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "obs/export.h"
#include "obs/link_stats.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace nf::obs {
namespace {

TEST(LinkSummaryTest, ExactWhileDistinctKeysWithinCapacity) {
  LinkSummary s(16);
  for (std::uint64_t k = 0; k < 16; ++k) {
    s.add(k, 10 * (k + 1));
    s.add(k, 1);
  }
  EXPECT_EQ(s.error_bound(), 0u);
  EXPECT_EQ(s.size(), 16u);
  EXPECT_EQ(s.total_weight(), [] {
    std::uint64_t sum = 0;
    for (std::uint64_t k = 0; k < 16; ++k) sum += 10 * (k + 1) + 1;
    return sum;
  }());
  for (std::uint64_t k = 0; k < 16; ++k) {
    EXPECT_EQ(s.estimate(k), 10 * (k + 1) + 1) << k;
  }
  EXPECT_EQ(s.estimate(999), 0u);
}

TEST(LinkSummaryTest, RankedOrdersByWeightDescThenKeyAsc) {
  LinkSummary s(8);
  s.add(5, 100);
  s.add(2, 300);
  s.add(9, 100);
  s.add(7, 200);
  const std::vector<LinkSummary::Entry> r = s.ranked();
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r[0].key, 2u);
  EXPECT_EQ(r[1].key, 7u);
  EXPECT_EQ(r[2].key, 5u);  // ties at 100 break toward the smaller key
  EXPECT_EQ(r[3].key, 9u);
}

TEST(LinkSummaryTest, SandwichBoundHoldsUnderOverflow) {
  // Many more distinct keys than capacity, skewed weights: every estimate
  // must stay a lower bound within error_bound() of the true count, and
  // total_weight() must stay exact.
  constexpr std::size_t kCapacity = 8;
  constexpr std::uint64_t kDomain = 64;
  LinkSummary s(kCapacity);
  std::map<std::uint64_t, std::uint64_t> truth;
  Rng rng(42);
  std::uint64_t total = 0;
  for (int i = 0; i < 5000; ++i) {
    // Zipf-ish skew: low keys dominate, so some keys are genuinely heavy.
    const std::uint64_t key = rng.below(rng.below(kDomain) + 1);
    const std::uint64_t w = 1 + rng.below(16);
    truth[key] += w;
    total += w;
    s.add(key, w);
  }
  EXPECT_EQ(s.total_weight(), total);
  EXPECT_GT(s.error_bound(), 0u);  // overflow definitely decremented
  for (const auto& [key, true_w] : truth) {
    const std::uint64_t est = s.estimate(key);
    EXPECT_LE(est, true_w) << key;
    EXPECT_LE(true_w, est + s.error_bound()) << key;
  }
  // Live entries never exceed capacity.
  EXPECT_LE(s.size(), kCapacity);
  EXPECT_LE(s.ranked().size(), kCapacity);
}

TEST(LinkSummaryTest, ReviveAfterDecayRestartsFromOffset) {
  LinkSummary s(1);
  s.add(1, 10);
  s.add(2, 10);  // full, no dead slot -> decrement-all, key 2 not admitted
  EXPECT_EQ(s.estimate(1), 0u);  // decayed to zero
  EXPECT_EQ(s.error_bound(), 10u);
  s.add(1, 5);  // revive: estimate restarts from the offset
  EXPECT_EQ(s.estimate(1), 5u);
  EXPECT_LE(5u + 10u, 15u + s.error_bound());  // bound still covers truth
  EXPECT_EQ(s.total_weight(), 25u);
}

TEST(LinkSummaryTest, MergeIsDeterministicAndKeepsTheBound) {
  // Split one stream across two summaries, merge, and require (a) the
  // sandwich bound against the combined truth and (b) bit-identical ranked
  // output when the merge is repeated — merge() replays entries in
  // ranked() order, a total order, so there is nothing ambient about it.
  constexpr std::size_t kCapacity = 8;
  constexpr std::uint64_t kDomain = 48;
  LinkSummary a(kCapacity);
  LinkSummary b(kCapacity);
  std::map<std::uint64_t, std::uint64_t> truth;
  Rng rng(7);
  std::uint64_t total = 0;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t key = rng.below(rng.below(kDomain) + 1);
    const std::uint64_t w = 1 + rng.below(8);
    truth[key] += w;
    total += w;
    (i % 2 == 0 ? a : b).add(key, w);
  }
  LinkSummary merged(kCapacity);
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.total_weight(), total);
  for (const auto& [key, true_w] : truth) {
    const std::uint64_t est = merged.estimate(key);
    EXPECT_LE(est, true_w) << key;
    EXPECT_LE(true_w, est + merged.error_bound()) << key;
  }
  LinkSummary again(kCapacity);
  again.merge(a);
  again.merge(b);
  const auto r1 = merged.ranked();
  const auto r2 = again.ranked();
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].key, r2[i].key);
    EXPECT_EQ(r1[i].weight, r2[i].weight);
  }
}

TEST(LinkKeyTest, PackingRoundTrips) {
  EXPECT_EQ(link_src(link_key(0xABCD1234u, 0x5678EF01u)), 0xABCD1234u);
  EXPECT_EQ(link_dst(link_key(0xABCD1234u, 0x5678EF01u)), 0x5678EF01u);
  EXPECT_NE(link_key(1, 2), link_key(2, 1));  // directed
}

// Depths: peer 0 = root, 1..2 at depth 1, 3 at depth 2, 4 off-hierarchy.
std::vector<std::uint32_t> tiny_depths() {
  return {0, 1, 1, 2, LinkStats::kNoLevel};
}

TEST(LinkStatsTest, ChargesTheDeeperEndpointsLevel) {
  LinkStats ls;
  ls.configure_levels(tiny_depths(), 3);
  ASSERT_TRUE(ls.configured());
  EXPECT_EQ(ls.num_levels(), 3u);
  EXPECT_EQ(ls.level_peers(0), 1u);
  EXPECT_EQ(ls.level_peers(1), 2u);
  EXPECT_EQ(ls.level_peers(2), 1u);

  ls.charge(1, 0, 0, 100);  // child -> root: level 1
  ls.charge(0, 1, 0, 40);   // root -> child: same level
  ls.charge(3, 1, 1, 70);   // depth 2 -> depth 1: level 2
  EXPECT_EQ(ls.level_bytes(1, 0), 140u);
  EXPECT_EQ(ls.level_msgs(1, 0), 2u);
  EXPECT_EQ(ls.level_bytes(2, 1), 70u);
  EXPECT_EQ(ls.level_total_bytes(1), 140u);
  EXPECT_EQ(ls.level_total_msgs(2), 1u);
  EXPECT_EQ(ls.links().estimate(link_key(1, 0)), 100u);
  EXPECT_EQ(ls.links().total_weight(), 210u);
}

TEST(LinkStatsTest, OffHierarchyAndUnknownPeersLandInTheBucket) {
  LinkStats ls;
  ls.configure_levels(tiny_depths(), 3);
  const std::size_t bucket = ls.num_levels();
  ls.charge(4, 0, 2, 30);   // kNoLevel endpoint
  ls.charge(99, 1, 2, 20);  // id beyond the depth vector
  EXPECT_EQ(ls.level_bytes(bucket, 2), 50u);
  EXPECT_EQ(ls.level_total_msgs(bucket), 2u);
  EXPECT_EQ(ls.level_total_bytes(1), 0u);
}

TEST(LinkStatsTest, UnconfiguredChargeGoesToTheBucketRow) {
  // Regression: engines attach obs without a hierarchy (raw engine tests,
  // naive flood); charge() must hit preallocated storage, not an empty
  // matrix. Row 0 *is* the bucket while num_levels() == 0.
  LinkStats ls;
  ASSERT_FALSE(ls.configured());
  ls.charge(7, 8, 1, 64);
  EXPECT_EQ(ls.level_of_link(7, 8), 0u);
  EXPECT_EQ(ls.level_bytes(0, 1), 64u);
  EXPECT_EQ(ls.level_total_msgs(0), 1u);
}

TEST(LinkStatsTest, ReconfigureSameGeometryKeepsCountsChangedResets) {
  LinkStats ls;
  ls.configure_levels(tiny_depths(), 3);
  ls.charge(1, 0, 0, 100);
  ls.configure_levels(tiny_depths(), 3);  // identical: accumulate across runs
  EXPECT_EQ(ls.level_bytes(1, 0), 100u);
  ls.configure_levels({0, 1}, 2);  // new geometry: stale matrix resets
  EXPECT_EQ(ls.level_bytes(1, 0), 0u);
  EXPECT_EQ(ls.num_levels(), 2u);
}

TEST(LinkStatsTest, PredictionsAccumulateAcrossRuns) {
  LinkStats ls;
  ls.configure_levels(tiny_depths(), 3);
  ls.add_prediction(1, 0, 120.0);
  ls.add_prediction(1, 0, 80.0);
  EXPECT_DOUBLE_EQ(ls.level_predicted(1, 0), 200.0);
  EXPECT_DOUBLE_EQ(ls.level_predicted(2, 0), 0.0);
}

TEST(LinkStatsTest, BindSeriesTracksPerLevelByteColumns) {
  LinkStats ls;
  ls.configure_levels(tiny_depths(), 3);
  MetricsRegistry registry;
  TimeSeries series(16);
  ls.bind_series(registry, series);
  ls.charge(1, 0, 0, 100);
  ls.charge(3, 1, 1, 70);
  series.sample(0);
  EXPECT_EQ(registry.counter("link/level1/bytes").value(), 100u);
  EXPECT_EQ(registry.counter("link/level2/bytes").value(), 70u);
  const auto col1 = series.counter_series("link/level1/bytes");
  ASSERT_EQ(col1.size(), 1u);
  EXPECT_EQ(col1[0], 100u);
}

TEST(LinkStatsTest, JsonExportShapesLevelsAndHotLinks) {
  LinkStats ls;
  ls.configure_levels(tiny_depths(), 3);
  ls.charge(1, 0, 0, 100);
  ls.charge(3, 1, 1, 70);
  ls.charge(4, 0, 2, 30);  // off-hierarchy
  ls.add_prediction(1, 0, 100.0);
  const Json j = to_json(ls);
  EXPECT_EQ(j.at("num_levels").as_double(), 3.0);
  ASSERT_EQ(j.at("levels").size(), 3u);
  const Json& l1 = j.at("levels").as_array()[1];
  EXPECT_EQ(l1.at("total_bytes").as_double(), 100.0);
  EXPECT_NE(j.find("off_hierarchy"), nullptr);
  const Json& hot = j.at("hot");
  ASSERT_GE(hot.size(), 1u);
  EXPECT_EQ(hot.as_array()[0].at("bytes").as_double(), 100.0);
  EXPECT_EQ(hot.as_array()[0].at("from").as_double(), 1.0);
  EXPECT_EQ(hot.as_array()[0].at("to").as_double(), 0.0);
  EXPECT_EQ(j.at("links_error_bound").as_double(), 0.0);
}

}  // namespace
}  // namespace nf::obs
