#include "workload/workload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/error.h"

namespace nf::wl {
namespace {

WorkloadConfig small_config() {
  WorkloadConfig cfg;
  cfg.num_peers = 50;
  cfg.num_items = 2000;
  cfg.alpha = 1.0;
  cfg.seed = 42;
  return cfg;
}

TEST(WorkloadTest, TotalInstancesMatchConfig) {
  const Workload w = Workload::generate(small_config());
  // 10 instances per item, unit values.
  EXPECT_EQ(w.total_value(), 20000u);
  EXPECT_EQ(w.num_peers(), 50u);
}

TEST(WorkloadTest, GroundTruthEqualsSumOfLocalSets) {
  const Workload w = Workload::generate(small_config());
  LocalItems merged;
  for (std::uint32_t p = 0; p < w.num_peers(); ++p) {
    merged.merge_add(w.local_items(PeerId(p)));
  }
  EXPECT_EQ(merged, w.global());
}

TEST(WorkloadTest, DeterministicForSeed) {
  const Workload a = Workload::generate(small_config());
  const Workload b = Workload::generate(small_config());
  EXPECT_EQ(a.global(), b.global());
  for (std::uint32_t p = 0; p < a.num_peers(); ++p) {
    EXPECT_EQ(a.local_items(PeerId(p)), b.local_items(PeerId(p)));
  }
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  WorkloadConfig c1 = small_config();
  WorkloadConfig c2 = small_config();
  c2.seed = 43;
  EXPECT_NE(Workload::generate(c1).global(),
            Workload::generate(c2).global());
}

TEST(WorkloadTest, ThresholdForRoundsUp) {
  const Workload w = Workload::generate(small_config());
  EXPECT_EQ(w.threshold_for(0.01),
            static_cast<Value>(std::ceil(0.01 * 20000)));
  EXPECT_EQ(w.threshold_for(1.0), w.total_value());
  EXPECT_THROW((void)w.threshold_for(0.0), InvalidArgument);
  EXPECT_THROW((void)w.threshold_for(1.5), InvalidArgument);
}

TEST(WorkloadTest, FrequentItemsOracleIsExact) {
  const Workload w = Workload::generate(small_config());
  const Value t = w.threshold_for(0.01);
  const auto frequent = w.frequent_items(t);
  for (const auto& [id, v] : frequent) {
    EXPECT_GE(v, t);
    EXPECT_EQ(v, w.global().value_of(id));
  }
  // Complement check: nothing above t was missed.
  std::size_t above = 0;
  for (const auto& [id, v] : w.global()) {
    if (v >= t) ++above;
  }
  EXPECT_EQ(frequent.size(), above);
  EXPECT_GT(frequent.size(), 0u);
}

TEST(WorkloadTest, HigherSkewConcentratesTopItem) {
  WorkloadConfig flat = small_config();
  flat.alpha = 0.0;
  WorkloadConfig steep = small_config();
  steep.alpha = 2.0;
  auto top_value = [](const Workload& w) {
    Value best = 0;
    for (const auto& [id, v] : w.global()) best = std::max(best, v);
    return best;
  };
  EXPECT_GT(top_value(Workload::generate(steep)),
            top_value(Workload::generate(flat)) * 10);
}

TEST(WorkloadTest, AvgLocalDistinctIsPlausible) {
  const Workload w = Workload::generate(small_config());
  // 20000 instances over 50 peers = 400 per peer; distinct <= 400.
  EXPECT_LE(w.avg_local_distinct(), 400.0);
  EXPECT_GT(w.avg_local_distinct(), 100.0);
}

TEST(WorkloadTest, AvgValuesAreConsistent) {
  const Workload w = Workload::generate(small_config());
  EXPECT_NEAR(w.avg_global_value(),
              static_cast<double>(w.total_value()) /
                  static_cast<double>(w.num_distinct()),
              1e-9);
  const Value t = w.threshold_for(0.01);
  EXPECT_LT(w.avg_light_value(t), static_cast<double>(t));
  EXPECT_GT(w.avg_light_value(t), 0.0);
}

TEST(WorkloadTest, FromLocalSetsBuildsGroundTruth) {
  std::vector<LocalItems> locals(2);
  locals[0].add(ItemId(1), 5);
  locals[0].add(ItemId(2), 1);
  locals[1].add(ItemId(1), 3);
  const Workload w = Workload::from_local_sets(std::move(locals));
  EXPECT_EQ(w.total_value(), 9u);
  EXPECT_EQ(w.global().value_of(ItemId(1)), 8u);
  EXPECT_EQ(w.global().value_of(ItemId(2)), 1u);
  EXPECT_EQ(w.num_distinct(), 2u);
}

TEST(WorkloadTest, ItemIdsAreScatteredNotSequential) {
  const Workload w = Workload::generate(small_config());
  // Hashed ids should not be tiny integers.
  std::size_t big = 0;
  for (const auto& [id, v] : w.global()) {
    if (id.value() > 0xFFFFFFFFull) ++big;
  }
  EXPECT_GT(big, w.num_distinct() / 2);
}

TEST(WorkloadTest, InvalidConfigThrows) {
  WorkloadConfig bad = small_config();
  bad.num_peers = 0;
  EXPECT_THROW((void)Workload::generate(bad), InvalidArgument);
  bad = small_config();
  bad.alpha = -1.0;
  EXPECT_THROW((void)Workload::generate(bad), InvalidArgument);
  bad = small_config();
  bad.instances_per_item = 0.0;
  EXPECT_THROW((void)Workload::generate(bad), InvalidArgument);
}

class WorkloadParamTest
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(WorkloadParamTest, InvariantsHoldAcrossSkewAndSeed) {
  const auto [alpha, seed] = GetParam();
  WorkloadConfig cfg = small_config();
  cfg.alpha = alpha;
  cfg.seed = seed;
  const Workload w = Workload::generate(cfg);
  EXPECT_EQ(w.total_value(), 20000u);
  EXPECT_LE(w.num_distinct(), 2000u);
  EXPECT_GT(w.num_distinct(), 0u);
  // Every local value positive, every item in ground truth.
  for (std::uint32_t p = 0; p < w.num_peers(); ++p) {
    for (const auto& [id, v] : w.local_items(PeerId(p))) {
      EXPECT_GT(v, 0u);
      EXPECT_GE(w.global().value_of(id), v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WorkloadParamTest,
    ::testing::Combine(::testing::Values(0.0, 0.5, 1.0, 2.0, 4.0),
                       ::testing::Values(1u, 7u)));

}  // namespace
}  // namespace nf::wl
