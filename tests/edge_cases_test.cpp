// Adversarial and degenerate inputs for the whole stack.
#include <gtest/gtest.h>

#include "core/naive.h"
#include "core/netfilter.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace nf::core {
namespace {

using net::Overlay;
using net::Topology;
using net::TrafficMeter;

struct Rig {
  explicit Rig(std::vector<LocalItems> locals, std::uint64_t seed = 1)
      : workload(wl::Workload::from_local_sets(std::move(locals))),
        overlay([&] {
          Rng rng(seed);
          return Overlay(
              net::random_tree(workload.num_peers(), 3, rng));
        }()),
        meter(workload.num_peers()),
        hierarchy(agg::build_bfs_hierarchy(overlay, PeerId(0))) {}

  wl::Workload workload;
  Overlay overlay;
  TrafficMeter meter;
  agg::Hierarchy hierarchy;
};

NetFilterConfig config(std::uint32_t g, std::uint32_t f) {
  NetFilterConfig c;
  c.num_groups = g;
  c.num_filters = f;
  return c;
}

TEST(EdgeCaseTest, SinglePeerSystem) {
  std::vector<LocalItems> locals(1);
  locals[0].add(ItemId(1), 10);
  locals[0].add(ItemId(2), 1);
  Rig rig(std::move(locals));
  const auto res = NetFilter(config(4, 2))
                       .run(rig.workload, rig.hierarchy, rig.overlay,
                            rig.meter, 5);
  ASSERT_EQ(res.frequent.size(), 1u);
  EXPECT_EQ(res.frequent.value_of(ItemId(1)), 10u);
  // A single peer exchanges nothing.
  EXPECT_EQ(rig.meter.total(), 0u);
}

TEST(EdgeCaseTest, ValueExactlyAtThresholdIsIncluded) {
  // IFI is defined with >= t (paper: "global values ... greater than t"
  // formalized as vx >= t in the definition); pin the >= semantics.
  std::vector<LocalItems> locals(3);
  locals[0].add(ItemId(7), 3);
  locals[1].add(ItemId(7), 4);
  locals[2].add(ItemId(8), 6);
  Rig rig(std::move(locals));
  const auto res = NetFilter(config(8, 2))
                       .run(rig.workload, rig.hierarchy, rig.overlay,
                            rig.meter, 7);
  EXPECT_TRUE(res.frequent.contains(ItemId(7)));   // exactly 7
  EXPECT_FALSE(res.frequent.contains(ItemId(8)));  // 6 < 7
}

TEST(EdgeCaseTest, AllMassOnOneItem) {
  std::vector<LocalItems> locals(10);
  for (auto& l : locals) l.add(ItemId(42), 100);
  Rig rig(std::move(locals));
  const Value t = 500;
  const auto res = NetFilter(config(16, 3))
                       .run(rig.workload, rig.hierarchy, rig.overlay,
                            rig.meter, t);
  ASSERT_EQ(res.frequent.size(), 1u);
  EXPECT_EQ(res.frequent.value_of(ItemId(42)), 1000u);
}

TEST(EdgeCaseTest, AllItemsTiedAtThreshold) {
  // Every item has the same global value == t: all must be reported.
  std::vector<LocalItems> locals(5);
  for (std::uint64_t item = 0; item < 20; ++item) {
    for (std::uint32_t p = 0; p < 5; ++p) {
      locals[p].add(ItemId(item), 2);
    }
  }
  Rig rig(std::move(locals));
  const auto res = NetFilter(config(8, 2))
                       .run(rig.workload, rig.hierarchy, rig.overlay,
                            rig.meter, 10);
  EXPECT_EQ(res.frequent.size(), 20u);
}

TEST(EdgeCaseTest, EmptyPeersAreFine) {
  std::vector<LocalItems> locals(6);
  locals[2].add(ItemId(1), 9);  // only one peer holds anything
  Rig rig(std::move(locals));
  const auto res = NetFilter(config(4, 1))
                       .run(rig.workload, rig.hierarchy, rig.overlay,
                            rig.meter, 5);
  ASSERT_EQ(res.frequent.size(), 1u);
  EXPECT_EQ(res.frequent.value_of(ItemId(1)), 9u);
}

TEST(EdgeCaseTest, HugeValuesDoNotOverflow) {
  // Values near 2^62 summed across peers stay within uint64.
  const Value big = Value{1} << 61;
  std::vector<LocalItems> locals(3);
  locals[0].add(ItemId(5), big);
  locals[1].add(ItemId(5), big);
  locals[2].add(ItemId(6), 1);
  Rig rig(std::move(locals));
  const auto res = NetFilter(config(8, 2))
                       .run(rig.workload, rig.hierarchy, rig.overlay,
                            rig.meter, big);
  ASSERT_TRUE(res.frequent.contains(ItemId(5)));
  EXPECT_EQ(res.frequent.value_of(ItemId(5)), 2 * big);
}

TEST(EdgeCaseTest, AdjacentItemIdsLandInDistinctGroups) {
  // Sequential ids (0,1,2,...) are the classic weak-hash killer; the
  // filter bank must still spread them.
  std::vector<LocalItems> locals(4);
  for (std::uint64_t item = 0; item < 64; ++item) {
    locals[item % 4].add(ItemId(item), 1);
  }
  Rig rig(std::move(locals));
  const NetFilter nf(config(16, 1));
  const auto agg = nf.local_group_aggregates(rig.workload.local_items(PeerId(0)));
  std::size_t nonempty = 0;
  for (Value v : agg) nonempty += (v > 0);
  EXPECT_GE(nonempty, 8u);  // 16 items over 16 groups: most groups hit
}

TEST(EdgeCaseTest, GMuchLargerThanItemCountStillExact) {
  std::vector<LocalItems> locals(4);
  locals[0].add(ItemId(1), 10);
  locals[1].add(ItemId(2), 3);
  Rig rig(std::move(locals));
  const auto res = NetFilter(config(100000, 2))
                       .run(rig.workload, rig.hierarchy, rig.overlay,
                            rig.meter, 5);
  ASSERT_EQ(res.frequent.size(), 1u);
}

TEST(EdgeCaseTest, NaiveAgreesOnAllEdgeCases) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    std::vector<LocalItems> locals(8);
    for (auto& l : locals) {
      const std::uint64_t n = rng.below(10);
      for (std::uint64_t i = 0; i < n; ++i) {
        l.add(ItemId(rng.below(12)), rng.between(1, 4));
      }
    }
    // Ensure at least one item exists so thresholds are valid.
    locals[0].add(ItemId(0), 5);
    Rig rig(std::move(locals), seed);
    const Value t = 3;
    const auto fast = NetFilter(config(8, 2))
                          .run(rig.workload, rig.hierarchy, rig.overlay,
                               rig.meter, t);
    const auto slow = NaiveCollector{WireSizes{}}.run(
        rig.workload, rig.hierarchy, rig.overlay, rig.meter, t);
    EXPECT_EQ(fast.frequent, slow.frequent) << "seed " << seed;
  }
}

TEST(EdgeCaseTest, CustomWireSizesPropagate) {
  std::vector<LocalItems> locals(4);
  for (auto& l : locals) l.add(ItemId(1), 5);
  Rig rig(std::move(locals));
  NetFilterConfig cfg = config(10, 2);
  cfg.wire.aggregate_bytes = 8;
  cfg.wire.group_id_bytes = 2;
  cfg.wire.item_id_bytes = 16;
  const auto res = NetFilter(cfg).run(rig.workload, rig.hierarchy,
                                      rig.overlay, rig.meter, 10);
  // Filtering: 3 non-root peers * 8 * 2 * 10 bytes / 4 peers.
  EXPECT_DOUBLE_EQ(res.stats.filtering_cost, 3.0 * 8 * 2 * 10 / 4.0);
  EXPECT_TRUE(res.frequent.contains(ItemId(1)));
}

}  // namespace
}  // namespace nf::core
