#include "common/value_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace nf {
namespace {

using Map = ValueMap<ItemId, std::uint64_t>;

TEST(ValueMapTest, StartsEmpty) {
  Map m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(m.value_of(ItemId(1)), 0u);
  EXPECT_FALSE(m.contains(ItemId(1)));
}

TEST(ValueMapTest, AddInsertsAndAccumulates) {
  Map m;
  m.add(ItemId(5), 3);
  m.add(ItemId(2), 1);
  m.add(ItemId(5), 4);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.value_of(ItemId(5)), 7u);
  EXPECT_EQ(m.value_of(ItemId(2)), 1u);
  EXPECT_EQ(m.total(), 8u);
}

TEST(ValueMapTest, IterationIsSortedById) {
  Map m;
  m.add(ItemId(30), 1);
  m.add(ItemId(10), 1);
  m.add(ItemId(20), 1);
  std::vector<std::uint64_t> ids;
  for (const auto& [id, v] : m) ids.push_back(id.value());
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{10, 20, 30}));
}

TEST(ValueMapTest, FromUnsortedDeduplicates) {
  const Map m = Map::from_unsorted({{ItemId(3), 1},
                                    {ItemId(1), 2},
                                    {ItemId(3), 5},
                                    {ItemId(2), 1},
                                    {ItemId(1), 1}});
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.value_of(ItemId(1)), 3u);
  EXPECT_EQ(m.value_of(ItemId(2)), 1u);
  EXPECT_EQ(m.value_of(ItemId(3)), 6u);
}

TEST(ValueMapTest, MergeAddCombines) {
  Map a = Map::from_unsorted({{ItemId(1), 1}, {ItemId(3), 3}});
  const Map b = Map::from_unsorted({{ItemId(2), 2}, {ItemId(3), 7}});
  a.merge_add(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.value_of(ItemId(1)), 1u);
  EXPECT_EQ(a.value_of(ItemId(2)), 2u);
  EXPECT_EQ(a.value_of(ItemId(3)), 10u);
}

TEST(ValueMapTest, MergeWithEmptyIsIdentity) {
  Map a = Map::from_unsorted({{ItemId(1), 1}});
  const Map copy = a;
  a.merge_add(Map{});
  EXPECT_EQ(a, copy);
  Map empty;
  empty.merge_add(copy);
  EXPECT_EQ(empty, copy);
}

TEST(ValueMapTest, RetainFiltersEntries) {
  Map m = Map::from_unsorted(
      {{ItemId(1), 10}, {ItemId(2), 5}, {ItemId(3), 20}});
  m.retain([](ItemId, std::uint64_t v) { return v >= 10; });
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(ItemId(1)));
  EXPECT_FALSE(m.contains(ItemId(2)));
  EXPECT_TRUE(m.contains(ItemId(3)));
}

TEST(ValueMapTest, ClearEmpties) {
  Map m = Map::from_unsorted({{ItemId(1), 1}});
  m.clear();
  EXPECT_TRUE(m.empty());
}

TEST(ValueMapTest, EqualityIsStructural) {
  const Map a = Map::from_unsorted({{ItemId(1), 1}, {ItemId(2), 2}});
  Map b;
  b.add(ItemId(2), 2);
  b.add(ItemId(1), 1);
  EXPECT_EQ(a, b);
  b.add(ItemId(1), 1);
  EXPECT_NE(a, b);
}

// Property test: a random sequence of add/merge operations matches a
// std::map reference model.
class ValueMapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValueMapPropertyTest, AgreesWithReferenceModel) {
  Rng rng(GetParam());
  Map subject;
  std::map<std::uint64_t, std::uint64_t> model;
  for (int op = 0; op < 2000; ++op) {
    const std::uint64_t id = rng.below(64);  // small space forces collisions
    const std::uint64_t v = rng.between(1, 10);
    if (rng.chance(0.8)) {
      subject.add(ItemId(id), v);
      model[id] += v;
    } else {
      // Merge a small random batch.
      std::vector<std::pair<ItemId, std::uint64_t>> batch;
      for (int i = 0; i < 5; ++i) {
        const std::uint64_t bid = rng.below(64);
        batch.emplace_back(ItemId(bid), v);
        model[bid] += v;
      }
      subject.merge_add(Map::from_unsorted(std::move(batch)));
    }
  }
  ASSERT_EQ(subject.size(), model.size());
  for (const auto& [id, v] : model) {
    EXPECT_EQ(subject.value_of(ItemId(id)), v);
  }
  std::uint64_t model_total = 0;
  for (const auto& [id, v] : model) model_total += v;
  EXPECT_EQ(subject.total(), model_total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueMapPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ValueMapTest, MergeAddIsCommutativeOnRandomInputs) {
  Rng rng(77);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<std::pair<ItemId, std::uint64_t>> pa;
    std::vector<std::pair<ItemId, std::uint64_t>> pb;
    for (int i = 0; i < 50; ++i) {
      pa.emplace_back(ItemId(rng.below(40)), rng.between(1, 9));
      pb.emplace_back(ItemId(rng.below(40)), rng.between(1, 9));
    }
    Map a1 = Map::from_unsorted(pa);
    const Map b1 = Map::from_unsorted(pb);
    Map b2 = Map::from_unsorted(pb);
    const Map a2 = Map::from_unsorted(pa);
    a1.merge_add(b1);
    b2.merge_add(a2);
    EXPECT_EQ(a1, b2);
  }
}

}  // namespace
}  // namespace nf
