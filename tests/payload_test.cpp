#include "net/payload.h"

#include <gtest/gtest.h>

#include <vector>

namespace nf::net {
namespace {

TEST(PayloadRefTest, DefaultIsInvalid) {
  const PayloadRef ref;
  EXPECT_FALSE(ref.valid());
  EXPECT_EQ(ref.slab, kNoSlab);
}

TEST(SlabArenaTest, ResetKeepsCapacity) {
  SlabArena slab;
  const std::vector<std::uint8_t> chunk(4096, 0xAB);
  slab.append(chunk);
  EXPECT_EQ(slab.size(), 4096u);
  const std::size_t warmed = slab.capacity();
  EXPECT_GE(warmed, 4096u);

  // High-water-mark reset: size drops, capacity stays — the steady-state
  // zero-alloc guarantee rests on this.
  slab.reset();
  EXPECT_EQ(slab.size(), 0u);
  EXPECT_EQ(slab.capacity(), warmed);

  // Refilling up to the high-water mark must not grow the allocation.
  slab.append(chunk);
  EXPECT_EQ(slab.capacity(), warmed);
}

TEST(SlabArenaTest, ViewBoundsChecked) {
  SlabArena slab;
  slab.push(1);
  slab.push(2);
  slab.push(3);
  const auto v = slab.view(1, 2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 2);
  EXPECT_EQ(v[1], 3);
  EXPECT_THROW((void)slab.view(1, 3), Error);
  EXPECT_THROW((void)slab.view(4, 0), Error);
  // Offset + length overflowing size_t must not wrap past the check.
  EXPECT_THROW((void)slab.view(0xFFFFFFFFu, 0xFFFFFFFFu), Error);
}

TEST(PayloadWriterTest, RefCoversExactlyWhatWasWritten) {
  SlabArena slab;
  slab.push(0xEE);  // pre-existing content the writer must not claim

  PayloadWriter w(slab, 3);
  w.put_varint(300);  // 0xAC 0x02
  const std::vector<std::uint8_t> tail{0x10, 0x20};
  w.put_bytes(tail);
  EXPECT_EQ(w.written(), 4u);

  const PayloadRef ref = w.finish();
  EXPECT_EQ(ref.slab, 3u);
  EXPECT_EQ(ref.offset, 1u);
  EXPECT_EQ(ref.length, 4u);
  const auto v = slab.view(ref.offset, ref.length);
  EXPECT_EQ((std::vector<std::uint8_t>(v.begin(), v.end())),
            (std::vector<std::uint8_t>{0xAC, 0x02, 0x10, 0x20}));
}

TEST(PayloadWriterTest, EmptyPayloadIsValidZeroLengthRef) {
  SlabArena slab;
  PayloadWriter w(slab, 0);
  const PayloadRef ref = w.finish();
  EXPECT_TRUE(ref.valid());
  EXPECT_EQ(ref.length, 0u);
  EXPECT_TRUE(slab.view(ref.offset, ref.length).empty());
}

TEST(PayloadWriterTest, RefsSurviveSlabGrowth) {
  SlabArena slab;
  PayloadWriter a(slab, 0);
  a.put_varint(7);
  const PayloadRef ra = a.finish();

  // Force reallocation: offsets are stable even though the base pointer
  // moves, which is why PayloadRef stores (slab, offset) instead of a span.
  const std::vector<std::uint8_t> big(1 << 20, 0x55);
  slab.append(big);

  const auto v = slab.view(ra.offset, ra.length);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 7);
}

TEST(CopyToSlabTest, AppendsAndRefs) {
  SlabArena slab;
  const std::vector<std::uint8_t> first{1, 2, 3};
  const std::vector<std::uint8_t> second{9};
  const PayloadRef ra = copy_to_slab(slab, kRingSlabBase, first);
  const PayloadRef rb = copy_to_slab(slab, kRingSlabBase, second);
  EXPECT_EQ(ra.slab, kRingSlabBase);
  EXPECT_EQ(ra.offset, 0u);
  EXPECT_EQ(ra.length, 3u);
  EXPECT_EQ(rb.offset, 3u);
  EXPECT_EQ(rb.length, 1u);
  EXPECT_EQ(slab.view(rb.offset, rb.length)[0], 9);
}

}  // namespace
}  // namespace nf::net
