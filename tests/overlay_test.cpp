#include "net/overlay.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace nf::net {
namespace {

Overlay make_line(std::uint32_t n) {
  Topology t(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    t.add_edge(PeerId(i), PeerId(i + 1));
  }
  return Overlay(std::move(t));
}

TEST(OverlayTest, AllAliveInitially) {
  const Overlay o = make_line(5);
  EXPECT_EQ(o.num_alive(), 5u);
  for (std::uint32_t p = 0; p < 5; ++p) {
    EXPECT_TRUE(o.is_alive(PeerId(p)));
  }
}

TEST(OverlayTest, FailAndReviveFlipLiveness) {
  Overlay o = make_line(5);
  o.fail(PeerId(2));
  EXPECT_FALSE(o.is_alive(PeerId(2)));
  EXPECT_EQ(o.num_alive(), 4u);
  o.revive(PeerId(2));
  EXPECT_TRUE(o.is_alive(PeerId(2)));
  EXPECT_EQ(o.num_alive(), 5u);
}

TEST(OverlayTest, FailIsIdempotent) {
  Overlay o = make_line(3);
  o.fail(PeerId(1));
  o.fail(PeerId(1));
  EXPECT_EQ(o.num_alive(), 2u);
  o.revive(PeerId(1));
  o.revive(PeerId(1));
  EXPECT_EQ(o.num_alive(), 3u);
}

TEST(OverlayTest, AliveNeighborsExcludesDead) {
  Overlay o = make_line(5);
  o.fail(PeerId(1));
  const auto ns = o.alive_neighbors(PeerId(2));
  ASSERT_EQ(ns.size(), 1u);
  EXPECT_EQ(ns[0], PeerId(3));
  // Static neighbors still include the dead peer.
  EXPECT_EQ(o.neighbors(PeerId(2)).size(), 2u);
}

TEST(OverlayTest, OutOfRangeThrows) {
  Overlay o = make_line(3);
  EXPECT_THROW(o.fail(PeerId(3)), InvalidArgument);
  EXPECT_THROW(o.revive(PeerId(9)), InvalidArgument);
}

}  // namespace
}  // namespace nf::net
