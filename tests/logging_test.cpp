#include "common/logging.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <sstream>

namespace nf {
namespace {

/// Captures stderr for the duration of a scope.
class CaptureStderr {
 public:
  CaptureStderr() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CaptureStderr() { std::cerr.rdbuf(old_); }
  [[nodiscard]] std::string str() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

TEST_F(LoggingTest, DisabledLevelsProduceNothing) {
  set_log_level(LogLevel::kWarn);
  CaptureStderr capture;
  log_debug("tag", "invisible");
  log_info("tag", "invisible");
  EXPECT_TRUE(capture.str().empty());
}

TEST_F(LoggingTest, EnabledLevelsProduceTaggedLines) {
  set_log_level(LogLevel::kDebug);
  CaptureStderr capture;
  log_debug("net", "round ", 42);
  log_error("agg", "boom");
  const std::string out = capture.str();
  EXPECT_NE(out.find("[debug net] round 42"), std::string::npos);
  EXPECT_NE(out.find("[error agg] boom"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST_F(LoggingTest, ErrorAlwaysPassesWarnThreshold) {
  set_log_level(LogLevel::kWarn);
  CaptureStderr capture;
  log_warn("x", "w");
  log_error("x", "e");
  const std::string out = capture.str();
  EXPECT_NE(out.find("[warn"), std::string::npos);
  EXPECT_NE(out.find("[error"), std::string::npos);
}

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kInfo);
  EXPECT_EQ(log_level(), LogLevel::kInfo);
}

TEST_F(LoggingTest, ParseLogLevelAcceptsKnownNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  // Case-insensitive.
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
}

TEST_F(LoggingTest, ParseLogLevelRejectsUnknownNames) {
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("3"), std::nullopt);
}

TEST_F(LoggingTest, InitFromEnvAppliesVariable) {
  ASSERT_EQ(setenv("NF_LOG_LEVEL", "debug", /*overwrite=*/1), 0);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  ASSERT_EQ(unsetenv("NF_LOG_LEVEL"), 0);
}

TEST_F(LoggingTest, InitFromEnvKeepsLevelWhenUnsetOrInvalid) {
  ASSERT_EQ(unsetenv("NF_LOG_LEVEL"), 0);
  set_log_level(LogLevel::kError);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kError);

  ASSERT_EQ(setenv("NF_LOG_LEVEL", "bogus", /*overwrite=*/1), 0);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kError);
  ASSERT_EQ(unsetenv("NF_LOG_LEVEL"), 0);
}

}  // namespace
}  // namespace nf
