// The lossy-link model and its reliability layer (net/engine.h).
#include <gtest/gtest.h>

#include "agg/convergecast.h"
#include "core/netfilter.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace nf::net {
namespace {

Overlay make_line(std::uint32_t n) {
  Topology t(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    t.add_edge(PeerId(i), PeerId(i + 1));
  }
  return Overlay(std::move(t));
}

LinkFaultModel lossy(double p, std::uint64_t seed = 7) {
  LinkFaultModel m;
  m.loss_probability = p;
  m.seed = seed;
  return m;
}

TEST(FaultModelTest, ZeroLossKeepsExactByteAccounting) {
  // The reliability layer must stay out of the way when disabled: no ACKs,
  // no retransmissions, byte counts identical to the plain engine.
  Overlay overlay = make_line(5);
  TrafficMeter meter(5);
  Engine engine(overlay, meter);
  const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
  agg::Convergecast<std::uint64_t> cast(
      h, TrafficCategory::kFiltering, [](PeerId) { return std::uint64_t{1}; },
      [](std::uint64_t& a, std::uint64_t&& b) { a += b; },
      [](const std::uint64_t&) { return std::uint64_t{4}; });
  engine.run(cast, 100);
  EXPECT_EQ(cast.result(), 5u);
  EXPECT_EQ(meter.total(), 4u * 4);  // 4 messages, nothing else
  EXPECT_EQ(engine.retransmissions(), 0u);
  EXPECT_EQ(engine.lost_transmissions(), 0u);
}

TEST(FaultModelTest, ConvergecastSurvivesHeavyLoss) {
  Rng rng(1);
  Overlay overlay(random_connected(60, 4.0, rng));
  TrafficMeter meter(60);
  Engine engine(overlay, meter);
  engine.set_fault_model(lossy(0.3));
  const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
  agg::Convergecast<std::uint64_t> cast(
      h, TrafficCategory::kFiltering,
      [](PeerId p) { return std::uint64_t{p.value()} + 1; },
      [](std::uint64_t& a, std::uint64_t&& b) { a += b; },
      [](const std::uint64_t&) { return std::uint64_t{4}; });
  engine.run(cast, 2000);
  ASSERT_TRUE(cast.complete());
  std::uint64_t expect = 0;
  for (std::uint32_t p = 0; p < 60; ++p) expect += p + 1;
  EXPECT_EQ(cast.result(), expect);  // exactly once, despite loss
  EXPECT_GT(engine.lost_transmissions(), 0u);
  EXPECT_GT(engine.retransmissions(), 0u);
}

TEST(FaultModelTest, NetFilterStaysExactOverLossyLinks) {
  wl::WorkloadConfig wc;
  wc.num_peers = 50;
  wc.num_items = 3000;
  wc.seed = 2;
  const wl::Workload workload = wl::Workload::generate(wc);
  Rng rng(3);
  Overlay overlay(random_tree(50, 3, rng));
  const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
  const Value t = workload.threshold_for(0.01);

  core::NetFilterConfig cfg;
  cfg.num_groups = 32;
  cfg.num_filters = 2;
  const core::NetFilter nf(cfg);

  // The driver constructs its own engines internally, so run phases
  // manually over a lossy engine via the phase APIs.
  TrafficMeter meter(50);
  Engine engine(overlay, meter);
  engine.set_fault_model(lossy(0.2));
  // filter_candidates/verify_candidates construct internal engines; to
  // exercise loss end-to-end use the building blocks directly instead.
  agg::Convergecast<std::vector<Value>> phase1(
      h, TrafficCategory::kFiltering,
      [&](PeerId p) {
        return nf.local_group_aggregates(workload.local_items(p));
      },
      [](std::vector<Value>& a, std::vector<Value>&& b) {
        for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
      },
      [](const std::vector<Value>&) { return std::uint64_t{256}; });
  engine.run(phase1, 5000);
  ASSERT_TRUE(phase1.complete());

  core::HeavyGroupSet heavy;
  heavy.heavy.assign(2, std::vector<bool>(32, false));
  for (std::uint32_t i = 0; i < 2; ++i) {
    for (std::uint32_t j = 0; j < 32; ++j) {
      heavy.heavy[i][j] = phase1.result()[i * 32 + j] >= t;
    }
  }
  agg::Convergecast<LocalItems> phase2(
      h, TrafficCategory::kAggregation,
      [&](PeerId p) {
        return nf.materialize_candidates(workload.local_items(p), heavy);
      },
      [](LocalItems& a, LocalItems&& b) { a.merge_add(b); },
      [](const LocalItems& m) { return m.size() * 8; });
  engine.run(phase2, 5000);
  ASSERT_TRUE(phase2.complete());
  LocalItems frequent = phase2.result();
  frequent.retain([&](ItemId, Value v) { return v >= t; });
  EXPECT_EQ(frequent, workload.frequent_items(t));
}

TEST(FaultModelTest, LossCostsBytesAndRounds) {
  auto run_at = [](double p) {
    Rng rng(4);
    Overlay overlay(random_connected(40, 4.0, rng));
    TrafficMeter meter(40);
    Engine engine(overlay, meter);
    if (p > 0) engine.set_fault_model(lossy(p));
    const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
    agg::Convergecast<std::uint64_t> cast(
        h, TrafficCategory::kFiltering,
        [](PeerId) { return std::uint64_t{1}; },
        [](std::uint64_t& a, std::uint64_t&& b) { a += b; },
        [](const std::uint64_t&) { return std::uint64_t{100}; });
    const std::uint64_t rounds = engine.run(cast, 5000);
    EXPECT_TRUE(cast.complete());
    return std::pair<std::uint64_t, std::uint64_t>(meter.total(), rounds);
  };
  const auto [clean_bytes, clean_rounds] = run_at(0.0);
  const auto [lossy_bytes, lossy_rounds] = run_at(0.25);
  EXPECT_GT(lossy_bytes, clean_bytes);
  EXPECT_GE(lossy_rounds, clean_rounds);
}

TEST(FaultModelTest, GivesUpOnDeadDestinations) {
  Overlay overlay = make_line(3);
  TrafficMeter meter(3);
  Engine engine(overlay, meter);
  LinkFaultModel m = lossy(0.1);
  m.max_retries = 3;
  m.retransmit_after = 1;
  engine.set_fault_model(m);
  overlay.fail(PeerId(2));

  /// One message into the void.
  class SendOnce final : public Protocol {
   public:
    void on_round(Context& ctx) override {
      if (ctx.self() == PeerId(1) && !sent_) {
        sent_ = true;
        ctx.send(PeerId(2), TrafficCategory::kControl, 4, std::any(1));
      }
    }
    bool sent_ = false;
  };
  SendOnce proto;
  const std::uint64_t rounds = engine.run(proto, 1000);
  EXPECT_EQ(engine.given_up(), 1u);
  EXPECT_LT(rounds, 50u);  // terminates, does not spin to max_rounds
}

TEST(FaultModelTest, DeterministicForSeed) {
  auto run_once = [] {
    Rng rng(5);
    Overlay overlay(random_connected(30, 4.0, rng));
    TrafficMeter meter(30);
    Engine engine(overlay, meter);
    engine.set_fault_model(lossy(0.2, 99));
    const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
    agg::Convergecast<std::uint64_t> cast(
        h, TrafficCategory::kFiltering,
        [](PeerId) { return std::uint64_t{1}; },
        [](std::uint64_t& a, std::uint64_t&& b) { a += b; },
        [](const std::uint64_t&) { return std::uint64_t{4}; });
    engine.run(cast, 5000);
    return std::tuple(meter.total(), engine.retransmissions(),
                      engine.lost_transmissions());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FaultModelTest, InvalidModelRejected) {
  Overlay overlay = make_line(2);
  TrafficMeter meter(2);
  Engine engine(overlay, meter);
  LinkFaultModel bad;
  bad.loss_probability = 1.0;
  EXPECT_THROW(engine.set_fault_model(bad), InvalidArgument);
  bad.loss_probability = -0.1;
  EXPECT_THROW(engine.set_fault_model(bad), InvalidArgument);
  LinkFaultModel bad2 = lossy(0.1);
  bad2.retransmit_after = 0;
  EXPECT_THROW(engine.set_fault_model(bad2), InvalidArgument);
}

}  // namespace
}  // namespace nf::net
