#include "core/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace nf::core::cost_model {
namespace {

const WireSizes kWire{};  // sa = sg = si = 4

TEST(CostModelTest, Formula1Arithmetic) {
  // sa*f*g + sg*f*w + (sa+si)*(r+fp) = 4*3*100 + 4*3*10 + 8*(50+20)
  EXPECT_DOUBLE_EQ(netfilter_cost(kWire, 3, 100, 10, 50, 20),
                   1200.0 + 120.0 + 560.0);
}

TEST(CostModelTest, ComponentTermsSumToFormula1) {
  EXPECT_DOUBLE_EQ(filtering_term(kWire, 3, 100), 1200.0);
  EXPECT_DOUBLE_EQ(dissemination_term(kWire, 3, 10), 120.0);
  EXPECT_DOUBLE_EQ(aggregation_term(kWire, 50, 20), 560.0);
  EXPECT_DOUBLE_EQ(filtering_term(kWire, 3, 100) +
                       dissemination_term(kWire, 3, 10) +
                       aggregation_term(kWire, 50, 20),
                   netfilter_cost(kWire, 3, 100, 10, 50, 20));
}

TEST(CostModelTest, Formula2Bounds) {
  EXPECT_DOUBLE_EQ(naive_cost_lower(kWire, 1000), 8000.0);
  EXPECT_DOUBLE_EQ(naive_cost_upper(kWire, 1000, 7), 48000.0);
  // Degenerate height clamps at the lower bound.
  EXPECT_DOUBLE_EQ(naive_cost_upper(kWire, 1000, 1), 8000.0);
}

TEST(Fp2Test, MatchesFormula4ByHand) {
  const double n = 1000;
  const double r = 10;
  const double g = 100;
  const double f = 2;
  const double p = 1.0 - std::pow(1.0 - 1.0 / g, r);
  EXPECT_NEAR(expected_fp2(n, r, g, f), (n - r) * p * p, 1e-9);
}

TEST(Fp2Test, MoreFiltersReduceFalsePositives) {
  double prev = expected_fp2(100000, 100, 100, 1);
  for (double f = 2; f <= 8; ++f) {
    const double cur = expected_fp2(100000, 100, 100, f);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Fp2Test, LargerFiltersReduceFalsePositives) {
  double prev = expected_fp2(100000, 100, 25, 3);
  for (double g : {50.0, 100.0, 200.0, 400.0}) {
    const double cur = expected_fp2(100000, 100, g, 3);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Fp2Test, EdgeCases) {
  EXPECT_DOUBLE_EQ(expected_fp2(100, 100, 10, 2), 0.0);  // all heavy
  EXPECT_DOUBLE_EQ(expected_fp2(100, 200, 10, 2), 0.0);  // r > n clamps
  // g=1: every light item collides -> fp2 = n - r.
  EXPECT_DOUBLE_EQ(expected_fp2(100, 10, 1, 3), 90.0);
}

TEST(GOptTest, MatchesFormula3) {
  // g_opt = c + v_light/(theta*v_bar); paper example: theta=0.01,
  // v_light/v_bar ~ 0.8 -> g_opt = c + 80.
  EXPECT_DOUBLE_EQ(optimal_num_groups(0.8, 0.01, 1.0, 20.0), 100.0);
  EXPECT_DOUBLE_EQ(optimal_num_groups(8.0, 0.01, 10.0, 5.0), 85.0);
}

TEST(GOptTest, SmallerThetaNeedsLargerFilters) {
  EXPECT_GT(optimal_num_groups(0.8, 0.001, 1.0),
            optimal_num_groups(0.8, 0.01, 1.0));
}

TEST(GOptTest, InvalidArgsThrow) {
  EXPECT_THROW((void)optimal_num_groups(1.0, 0.0, 1.0), InvalidArgument);
  EXPECT_THROW((void)optimal_num_groups(1.0, 0.1, 0.0), InvalidArgument);
}

TEST(FOptTest, Formula6ByHand) {
  const double n = 100000;
  const double r = 50;
  const double g = 100;
  const double p = 1.0 - std::pow(1.0 - 1.0 / g, r);
  const double arg = 8.0 * (n - r) / (g * 4.0);
  const double expect = std::ceil(std::log(arg) / -std::log(p));
  EXPECT_EQ(optimal_num_filters(kWire, n, r, g),
            static_cast<std::uint32_t>(expect));
}

TEST(FOptTest, PaperDefaultsLandNearThree) {
  // Paper §V-B: with n=1e5, g=100 the measured optimum is f=3. Under the
  // paper's default workload (Zipf(1), v=10^6, theta=0.01) the heavy-item
  // count is r = |{k : 10^6/(k*H_{10^5}) >= 10^4}| ≈ 8.
  const std::uint32_t f = optimal_num_filters(kWire, 1e5, 8, 100);
  EXPECT_GE(f, 2u);
  EXPECT_LE(f, 4u);
}

TEST(FOptTest, MoreHeavyItemsNeedMoreFilters) {
  EXPECT_LE(optimal_num_filters(kWire, 1e5, 10, 100),
            optimal_num_filters(kWire, 1e5, 60, 100));
}

TEST(FOptTest, DegenerateCasesClampToOne) {
  EXPECT_EQ(optimal_num_filters(kWire, 100, 100, 10), 1u);  // nothing light
  EXPECT_EQ(optimal_num_filters(kWire, 100, 0, 10), 1u);    // nothing heavy
  // Tiny argument (few light items per group slot) needs no extra filters.
  EXPECT_EQ(optimal_num_filters(kWire, 10, 5, 1000), 1u);
}

TEST(FOptTest, CostIsMinimizedNearFOpt) {
  // Sanity-check the optimality argument of §IV-D using the model itself:
  // total modelled cost at f_opt should not exceed cost at f_opt±1 by more
  // than rounding slack.
  const double n = 1e5;
  const double r = 40;
  const double g = 100;
  const auto cost_at = [&](double f) {
    const double fp = expected_fp2(n, r, g, f);
    return netfilter_cost(kWire, f, g, /*w=*/r, r, fp);
  };
  const std::uint32_t f_opt = optimal_num_filters(kWire, n, r, g);
  const double at_opt = cost_at(f_opt);
  EXPECT_LE(at_opt, cost_at(f_opt + 1) * 1.0001);
  if (f_opt > 1) {
    EXPECT_LE(at_opt, cost_at(f_opt - 1) * 1.0001);
  }
}

}  // namespace
}  // namespace nf::core::cost_model
