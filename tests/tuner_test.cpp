#include "core/tuner.h"

#include <gtest/gtest.h>

#include "core/netfilter.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace nf::core {
namespace {

using net::Overlay;
using net::TrafficMeter;

struct Rig {
  Rig(std::uint32_t num_peers, std::uint64_t num_items, std::uint64_t seed)
      : workload([&] {
          wl::WorkloadConfig cfg;
          cfg.num_peers = num_peers;
          cfg.num_items = num_items;
          cfg.seed = seed;
          return wl::Workload::generate(cfg);
        }()),
        overlay([&] {
          Rng rng(seed + 1);
          return Overlay(net::random_tree(num_peers, 3, rng));
        }()),
        meter(num_peers),
        hierarchy(agg::build_bfs_hierarchy(overlay, PeerId(0))) {}

  wl::Workload workload;
  Overlay overlay;
  TrafficMeter meter;
  agg::Hierarchy hierarchy;
};

TEST(TunerTest, RecoversVAndThreshold) {
  Rig rig(100, 10000, 1);
  const TunedSetting ts =
      tune(rig.workload, rig.hierarchy, 0.01, TunerConfig{}, &rig.meter);
  EXPECT_EQ(ts.v_total, rig.workload.total_value());
  EXPECT_EQ(ts.threshold, rig.workload.threshold_for(0.01));
}

TEST(TunerTest, ChosenParametersAreReasonable) {
  Rig rig(200, 50000, 2);
  TunerConfig cfg;
  cfg.sampling.num_branches = 10;
  cfg.sampling.items_per_peer = 100;
  const TunedSetting ts =
      tune(rig.workload, rig.hierarchy, 0.01, cfg, &rig.meter);
  // The paper's analysis (§V-A) puts g_opt near c + v_light/(theta*v_bar)
  // ~ 100 for theta=0.01 on Zipf(1); accept a generous band.
  EXPECT_GE(ts.num_groups, 30u);
  EXPECT_LE(ts.num_groups, 400u);
  EXPECT_GE(ts.num_filters, 1u);
  EXPECT_LE(ts.num_filters, 10u);
}

TEST(TunerTest, TunedRunIsExactAndCheap) {
  Rig rig(150, 30000, 3);
  TunerConfig cfg;
  const TunedSetting ts =
      tune(rig.workload, rig.hierarchy, 0.01, cfg, &rig.meter);
  const NetFilter nf(ts.to_config(NetFilterConfig{}));
  const auto res = nf.run(rig.workload, rig.hierarchy, rig.overlay,
                          rig.meter, ts.threshold);
  EXPECT_EQ(res.frequent, rig.workload.frequent_items(ts.threshold));

  // The tuned setting should be within a small factor of the best (g, f)
  // over a coarse grid — the point of §IV-E.
  double best = res.stats.total_cost();
  double tuned = res.stats.total_cost();
  for (std::uint32_t g : {25u, 50u, 100u, 200u, 400u}) {
    for (std::uint32_t f : {1u, 2u, 3u, 5u, 8u}) {
      TrafficMeter m(150);
      NetFilterConfig c;
      c.num_groups = g;
      c.num_filters = f;
      const NetFilter cand(c);
      const auto r = cand.run(rig.workload, rig.hierarchy, rig.overlay, m,
                              ts.threshold);
      best = std::min(best, r.stats.total_cost());
    }
  }
  EXPECT_LE(tuned, best * 3.0);
}

TEST(TunerTest, SmallerThetaYieldsLargerG) {
  Rig rig(100, 20000, 4);
  const TunedSetting coarse =
      tune(rig.workload, rig.hierarchy, 0.05, TunerConfig{}, nullptr);
  const TunedSetting fine =
      tune(rig.workload, rig.hierarchy, 0.002, TunerConfig{}, nullptr);
  EXPECT_GT(fine.num_groups, coarse.num_groups);
}

TEST(TunerTest, RespectsClamps) {
  Rig rig(50, 5000, 5);
  TunerConfig cfg;
  cfg.min_groups = 64;
  cfg.max_groups = 64;
  cfg.max_filters = 2;
  const TunedSetting ts =
      tune(rig.workload, rig.hierarchy, 0.01, cfg, nullptr);
  EXPECT_EQ(ts.num_groups, 64u);
  EXPECT_LE(ts.num_filters, 2u);
}

TEST(TunerTest, ChargesSamplingTraffic) {
  Rig rig(60, 5000, 6);
  (void)tune(rig.workload, rig.hierarchy, 0.01, TunerConfig{}, &rig.meter);
  EXPECT_GT(rig.meter.total(net::TrafficCategory::kSampling), 0u);
}

TEST(TunerTest, InvalidThetaThrows) {
  Rig rig(20, 500, 7);
  EXPECT_THROW(
      (void)tune(rig.workload, rig.hierarchy, 0.0, TunerConfig{}, nullptr),
      InvalidArgument);
  EXPECT_THROW(
      (void)tune(rig.workload, rig.hierarchy, 1.5, TunerConfig{}, nullptr),
      InvalidArgument);
}

}  // namespace
}  // namespace nf::core
