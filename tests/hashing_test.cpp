#include "common/hashing.h"

#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <string>
#include <vector>

namespace nf {
namespace {

TEST(Fmix64Test, ZeroMapsToZero) { EXPECT_EQ(fmix64(0), 0u); }

TEST(Fmix64Test, IsInjectiveOnSample) {
  std::set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 10000; ++i) out.insert(fmix64(i));
  EXPECT_EQ(out.size(), 10000u);
}

TEST(Fmix64Test, AvalancheFlipsAboutHalfTheBits) {
  // Flipping one input bit should flip ~32 of 64 output bits.
  double total_flips = 0.0;
  int cases = 0;
  for (std::uint64_t x = 1; x < 100; ++x) {
    for (int bit = 0; bit < 64; bit += 7) {
      const std::uint64_t a = fmix64(x);
      const std::uint64_t b = fmix64(x ^ (1ull << bit));
      total_flips += std::popcount(a ^ b);
      ++cases;
    }
  }
  EXPECT_NEAR(total_flips / cases, 32.0, 3.0);
}

TEST(Hash64Test, SeedChangesOutput) {
  EXPECT_NE(hash64(123, 1), hash64(123, 2));
}

TEST(Hash64Test, Deterministic) {
  EXPECT_EQ(hash64(42, 7), hash64(42, 7));
}

TEST(HashBytesTest, DistinctStringsDistinctHashes) {
  std::set<std::uint64_t> out;
  for (int i = 0; i < 5000; ++i) {
    out.insert(hash_bytes("key-" + std::to_string(i)));
  }
  EXPECT_EQ(out.size(), 5000u);
}

TEST(HashBytesTest, EmptyAndSeedBehaviour) {
  EXPECT_EQ(hash_bytes(""), hash_bytes(""));
  EXPECT_NE(hash_bytes("a", 1), hash_bytes("a", 2));
  EXPECT_NE(hash_bytes("a"), hash_bytes("b"));
}

TEST(GroupHashTest, GroupsInRange) {
  const GroupHash h(99, 17);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_LT(h.group_of(ItemId(i)).value(), 17u);
  }
}

TEST(GroupHashTest, ZeroGroupsThrows) {
  EXPECT_THROW(GroupHash(1, 0), InvalidArgument);
}

TEST(GroupHashTest, SameSeedSameMapping) {
  const GroupHash a(5, 100);
  const GroupHash b(5, 100);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.group_of(ItemId(i)), b.group_of(ItemId(i)));
  }
  EXPECT_EQ(a, b);
}

TEST(GroupHashTest, RoughlyBalancedBuckets) {
  const GroupHash h(123, 10);
  std::vector<int> counts(10, 0);
  constexpr int kItems = 100000;
  for (std::uint64_t i = 0; i < kItems; ++i) {
    ++counts[h.group_of(ItemId(fmix64(i + 1))).value()];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kItems / 10, kItems / 100);
  }
}

TEST(FilterBankTest, DerivesIndependentFilters) {
  const FilterBank bank(42, 4, 50);
  ASSERT_EQ(bank.num_filters(), 4u);
  EXPECT_EQ(bank.num_groups(), 50u);
  // All filter seeds distinct.
  std::set<std::uint64_t> seeds;
  for (std::uint32_t i = 0; i < 4; ++i) seeds.insert(bank.filter(i).seed());
  EXPECT_EQ(seeds.size(), 4u);
}

TEST(FilterBankTest, GroupsOfReturnsOnePerFilter) {
  const FilterBank bank(42, 3, 10);
  const auto groups = bank.groups_of(ItemId(777));
  ASSERT_EQ(groups.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(groups[i], bank.filter(i).group_of(ItemId(777)));
  }
}

TEST(FilterBankTest, SameMasterSeedSameBank) {
  const FilterBank a(7, 3, 100);
  const FilterBank b(7, 3, 100);
  EXPECT_EQ(a, b);
}

TEST(FilterBankTest, FiltersDisagreeOnItems) {
  // Independent filters should map a given item to different groups often.
  const FilterBank bank(11, 2, 100);
  int disagreements = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto groups = bank.groups_of(ItemId(fmix64(i)));
    if (groups[0] != groups[1]) ++disagreements;
  }
  EXPECT_GT(disagreements, 950);
}

TEST(FilterBankTest, InvalidConfigThrows) {
  EXPECT_THROW(FilterBank(1, 0, 10), InvalidArgument);
  const FilterBank bank(1, 2, 10);
  EXPECT_THROW((void)bank.filter(2), InvalidArgument);
}

}  // namespace
}  // namespace nf
