#include "core/topk.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/topology.h"
#include "workload/workload.h"

namespace nf::core {
namespace {

using net::Overlay;
using net::TrafficMeter;

struct Rig {
  Rig(std::uint32_t num_peers, std::uint64_t num_items, double alpha,
      std::uint64_t seed)
      : workload([&] {
          wl::WorkloadConfig cfg;
          cfg.num_peers = num_peers;
          cfg.num_items = num_items;
          cfg.alpha = alpha;
          cfg.seed = seed;
          return wl::Workload::generate(cfg);
        }()),
        overlay([&] {
          Rng rng(seed + 1);
          return Overlay(net::random_tree(num_peers, 3, rng));
        }()),
        meter(num_peers),
        hierarchy(agg::build_bfs_hierarchy(overlay, PeerId(0))) {}

  /// Brute-force oracle with the same tie-break (value desc, id asc).
  [[nodiscard]] std::vector<std::pair<ItemId, Value>> oracle(
      std::uint32_t k) const {
    std::vector<std::pair<ItemId, Value>> all(workload.global().begin(),
                                              workload.global().end());
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (all.size() > k) all.resize(k);
    return all;
  }

  wl::Workload workload;
  Overlay overlay;
  TrafficMeter meter;
  agg::Hierarchy hierarchy;
};

NetFilterConfig config() {
  NetFilterConfig c;
  c.num_groups = 64;
  c.num_filters = 3;
  return c;
}

class TopKParamTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double>> {};

TEST_P(TopKParamTest, MatchesBruteForceOracle) {
  const auto [k, alpha] = GetParam();
  Rig rig(60, 5000, alpha, 7);
  const TopK topk(config());
  const auto res =
      topk.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, k);
  EXPECT_EQ(res.items, rig.oracle(k)) << "k=" << k << " alpha=" << alpha;
  EXPECT_GE(res.stats.netfilter_runs, 1u);
  EXPECT_GT(res.stats.total_cost, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Ks, TopKParamTest,
    ::testing::Combine(::testing::Values(1u, 3u, 10u, 50u, 200u),
                       ::testing::Values(0.0, 1.0, 2.0)));

TEST(TopKTest, SkewedDataConvergesInFewRuns) {
  Rig rig(80, 20000, 1.5, 9);
  const TopK topk(config());
  const auto res =
      topk.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, 10);
  EXPECT_LE(res.stats.netfilter_runs, 6u);
  EXPECT_EQ(res.items.size(), 10u);
}

TEST(TopKTest, KLargerThanUniverseReturnsEverything) {
  std::vector<LocalItems> locals(4);
  locals[0].add(ItemId(1), 5);
  locals[1].add(ItemId(2), 3);
  const wl::Workload w = wl::Workload::from_local_sets(std::move(locals));
  Rng rng(1);
  Overlay overlay(net::random_tree(4, 2, rng));
  TrafficMeter meter(4);
  const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
  const TopK topk(config());
  const auto res = topk.run(w, h, overlay, meter, 100);
  ASSERT_EQ(res.items.size(), 2u);
  EXPECT_EQ(res.items[0].first, ItemId(1));
  EXPECT_EQ(res.items[1].first, ItemId(2));
  EXPECT_EQ(res.stats.final_threshold, 1u);
}

TEST(TopKTest, ResultIsSortedDescending) {
  Rig rig(40, 3000, 1.0, 11);
  const TopK topk(config());
  const auto res =
      topk.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, 20);
  for (std::size_t i = 0; i + 1 < res.items.size(); ++i) {
    EXPECT_GE(res.items[i].second, res.items[i + 1].second);
  }
}

TEST(TopKTest, InvalidKThrows) {
  Rig rig(10, 100, 1.0, 13);
  const TopK topk(config());
  EXPECT_THROW((void)topk.run(rig.workload, rig.hierarchy, rig.overlay,
                              rig.meter, 0),
               InvalidArgument);
}

}  // namespace
}  // namespace nf::core
