// End-to-end sweep: every Table I application scenario through netFilter.
//
// Exactness on synthetic Zipf workloads is covered elsewhere; this suite
// confirms it for the application-shaped data (non-unit values, planted
// heavy hitters, pair items) and that every planted target is found.
#include <gtest/gtest.h>

#include "core/netfilter.h"
#include "net/topology.h"
#include "workload/scenarios.h"

namespace nf::core {
namespace {

using net::Overlay;
using net::TrafficMeter;

struct Case {
  const char* name;
  wl::ScenarioOutput scenario;
  double theta;
};

std::vector<Case> all_scenarios() {
  std::vector<Case> cases;
  cases.push_back({"keyword_queries",
                   wl::keyword_queries(80, 5000, 150, 1.0, 31), 0.01});
  cases.push_back({"document_replicas",
                   wl::document_replicas(80, 3000, 60, 1.0, 32), 0.01});
  cases.push_back({"co_occurring_pairs",
                   wl::co_occurring_pairs(60, 400, 80, 1.0, 33), 0.01});
  cases.push_back({"popular_peers", wl::popular_peers(100, 150, 3, 34),
                   0.02});
  cases.push_back({"contacted_peer_pairs",
                   wl::contacted_peer_pairs(80, 200, 2, 35), 0.01});
  cases.push_back({"ddos_flows", wl::ddos_flows(100, 10000, 200, 3, 36),
                   0.004});
  cases.push_back({"worm_signatures",
                   wl::worm_signatures(80, 5000, 120, 2, 37), 0.01});
  return cases;
}

TEST(ScenarioSweepTest, NetFilterExactOnEveryTableIScenario) {
  for (auto& c : all_scenarios()) {
    const std::uint32_t peers = c.scenario.workload.num_peers();
    Rng rng(99);
    Overlay overlay(net::random_connected(peers, 4.0, rng));
    TrafficMeter meter(peers);
    const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
    const Value t = c.scenario.workload.threshold_for(c.theta);

    NetFilterConfig cfg;
    cfg.num_groups = 128;
    cfg.num_filters = 3;
    const NetFilter nf(cfg);
    const auto res =
        nf.run(c.scenario.workload, h, overlay, meter, t);
    EXPECT_EQ(res.frequent, c.scenario.workload.frequent_items(t))
        << c.name;
    for (ItemId planted : c.scenario.planted) {
      EXPECT_TRUE(res.frequent.contains(planted))
          << c.name << ": " << c.scenario.catalog.name_of(planted);
    }
  }
}

TEST(ScenarioSweepTest, FilteringPrunesOnApplicationData) {
  // The filter must do real work on application-shaped data too, not just
  // on synthetic Zipf: candidates well below the distinct-item count.
  auto scenario = wl::keyword_queries(80, 20000, 300, 1.0, 41);
  const std::uint32_t peers = scenario.workload.num_peers();
  Rng rng(42);
  Overlay overlay(net::random_tree(peers, 3, rng));
  TrafficMeter meter(peers);
  const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
  const Value t = scenario.workload.threshold_for(0.01);
  NetFilterConfig cfg;
  cfg.num_groups = 256;
  cfg.num_filters = 3;
  const auto res =
      NetFilter(cfg).run(scenario.workload, h, overlay, meter, t);
  EXPECT_LT(res.stats.num_candidates,
            scenario.workload.num_distinct() / 5);
}

}  // namespace
}  // namespace nf::core
