#include "core/netfilter.h"

#include <gtest/gtest.h>

#include <tuple>

#include "net/topology.h"
#include "workload/workload.h"

namespace nf::core {
namespace {

using net::Overlay;
using net::TrafficCategory;
using net::TrafficMeter;

struct Rig {
  Rig(std::uint32_t num_peers, std::uint64_t num_items, double alpha,
      std::uint64_t seed, std::uint32_t fanout = 3)
      : workload([&] {
          wl::WorkloadConfig cfg;
          cfg.num_peers = num_peers;
          cfg.num_items = num_items;
          cfg.alpha = alpha;
          cfg.seed = seed;
          return wl::Workload::generate(cfg);
        }()),
        overlay([&] {
          Rng rng(seed + 1);
          return Overlay(net::random_tree(num_peers, fanout, rng));
        }()),
        meter(num_peers),
        hierarchy(agg::build_bfs_hierarchy(overlay, PeerId(0))) {}

  wl::Workload workload;
  Overlay overlay;
  TrafficMeter meter;
  agg::Hierarchy hierarchy;
};

NetFilterConfig config(std::uint32_t g, std::uint32_t f) {
  NetFilterConfig c;
  c.num_groups = g;
  c.num_filters = f;
  return c;
}

TEST(NetFilterTest, ExactOnDefaultishSetup) {
  Rig rig(100, 10000, 1.0, 1);
  const Value t = rig.workload.threshold_for(0.01);
  const NetFilter nf(config(100, 3));
  const NetFilterResult res =
      nf.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, t);
  EXPECT_EQ(res.frequent, rig.workload.frequent_items(t));
  EXPECT_GT(res.frequent.size(), 0u);
}

TEST(NetFilterTest, PaperWorkedExample) {
  // Figure 1 of the paper: 3 peers, 8 items a..h, threshold 3; only item d
  // (global value 3) is frequent.
  std::vector<LocalItems> locals(3);
  const ItemId a(1), b(2), c(3), d(4), e(5), f(6), g(7), h(8);
  locals[0] = LocalItems::from_unsorted({{a, 1}, {b, 1}, {d, 1}});
  locals[1] = LocalItems::from_unsorted({{d, 1}, {f, 1}, {g, 1}});
  locals[2] = LocalItems::from_unsorted({{c, 1}, {d, 1}, {e, 1}, {h, 1}});
  const wl::Workload w = wl::Workload::from_local_sets(std::move(locals));

  net::Topology topo(3);
  topo.add_edge(PeerId(0), PeerId(1));
  topo.add_edge(PeerId(0), PeerId(2));
  Overlay overlay(std::move(topo));
  TrafficMeter meter(3);
  const agg::Hierarchy hier = agg::build_bfs_hierarchy(overlay, PeerId(0));

  const NetFilter nf(config(4, 1));
  const NetFilterResult res = nf.run(w, hier, overlay, meter, 3);
  ASSERT_EQ(res.frequent.size(), 1u);
  EXPECT_EQ(res.frequent.value_of(d), 3u);
}

class NetFilterExactnessTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, double, std::uint64_t>> {};

TEST_P(NetFilterExactnessTest, NoFalsePositivesOrNegativesEver) {
  const auto [g, f, theta, seed] = GetParam();
  Rig rig(60, 5000, 1.0, seed);
  const Value t = rig.workload.threshold_for(theta);
  const NetFilter nf(config(g, f));
  const NetFilterResult res =
      nf.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, t);
  EXPECT_EQ(res.frequent, rig.workload.frequent_items(t))
      << "g=" << g << " f=" << f << " theta=" << theta << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NetFilterExactnessTest,
    ::testing::Combine(::testing::Values(1u, 4u, 25u, 100u, 1000u),
                       ::testing::Values(1u, 2u, 5u),
                       ::testing::Values(0.1, 0.01, 0.003),
                       ::testing::Values(1u, 2u)));

TEST(NetFilterTest, CandidateSetNeverLosesFrequentItems) {
  // Phase-1 invariant: every truly frequent item passes every filter
  // (group aggregate >= item's own value >= t).
  Rig rig(80, 8000, 1.2, 5);
  const Value t = rig.workload.threshold_for(0.01);
  const NetFilter nf(config(50, 4));
  NetFilterStats stats;
  const HeavyGroupSet heavy = nf.filter_candidates(
      rig.workload, rig.hierarchy, rig.overlay, rig.meter, t, &stats);
  for (const auto& [id, v] : rig.workload.frequent_items(t)) {
    EXPECT_TRUE(heavy.passes(id, nf.bank())) << "item " << id;
  }
}

TEST(NetFilterTest, ReportedValuesAreExact) {
  Rig rig(100, 10000, 1.0, 3);
  const Value t = rig.workload.threshold_for(0.01);
  const NetFilter nf(config(100, 3));
  const NetFilterResult res =
      nf.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, t);
  for (const auto& [id, v] : res.frequent) {
    EXPECT_EQ(v, rig.workload.global().value_of(id));
  }
}

TEST(NetFilterTest, FilteringCostIsExactlySaFG) {
  Rig rig(64, 5000, 1.0, 7);
  const Value t = rig.workload.threshold_for(0.01);
  const NetFilter nf(config(75, 4));
  const NetFilterResult res =
      nf.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, t);
  // Every non-root peer sends sa*f*g once: total = 63 * 4*4*75.
  const double expected =
      63.0 * 4 * 4 * 75 / 64.0;
  EXPECT_DOUBLE_EQ(res.stats.filtering_cost, expected);
}

TEST(NetFilterTest, DisseminationCostMatchesHeavyGroups) {
  Rig rig(64, 5000, 1.0, 9);
  const Value t = rig.workload.threshold_for(0.01);
  const NetFilter nf(config(60, 2));
  const NetFilterResult res =
      nf.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, t);
  // Each of the 63 tree edges carries sg * (total heavy groups) bytes.
  const double expected =
      63.0 * 4.0 * static_cast<double>(res.stats.heavy_groups_total) / 64.0;
  EXPECT_DOUBLE_EQ(res.stats.dissemination_cost, expected);
}

TEST(NetFilterTest, StatsCountsAreConsistent) {
  Rig rig(100, 10000, 1.0, 11);
  const Value t = rig.workload.threshold_for(0.01);
  const NetFilter nf(config(100, 3));
  const NetFilterResult res =
      nf.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, t);
  const auto& s = res.stats;
  EXPECT_EQ(s.threshold, t);
  EXPECT_EQ(s.num_frequent, res.frequent.size());
  EXPECT_EQ(s.num_candidates, s.num_frequent + s.num_false_positives);
  EXPECT_GT(s.heavy_groups_total, 0u);
  EXPECT_GT(s.candidates_per_peer, 0.0);
  EXPECT_GT(s.rounds_filtering, 0u);
  EXPECT_GT(s.rounds_verification, 0u);
  EXPECT_NEAR(s.total_cost(),
              s.filtering_cost + s.dissemination_cost + s.aggregation_cost,
              1e-9);
}

TEST(NetFilterTest, TrivialFilterDegeneratesToNaiveCandidates) {
  // g=1: the single group holds everything and is heavy, so every item is
  // a candidate — still exact, just expensive.
  Rig rig(30, 1000, 1.0, 13);
  const Value t = rig.workload.threshold_for(0.01);
  const NetFilter nf(config(1, 1));
  const NetFilterResult res =
      nf.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, t);
  EXPECT_EQ(res.frequent, rig.workload.frequent_items(t));
  EXPECT_EQ(res.stats.num_candidates, rig.workload.num_distinct());
}

TEST(NetFilterTest, ImpossibleThresholdYieldsEmptyResult) {
  Rig rig(30, 1000, 1.0, 15);
  const NetFilter nf(config(50, 2));
  const NetFilterResult res = nf.run(rig.workload, rig.hierarchy, rig.overlay,
                                     rig.meter, rig.workload.total_value() + 1);
  EXPECT_EQ(res.frequent.size(), 0u);
  EXPECT_EQ(res.stats.heavy_groups_total, 0u);
  EXPECT_EQ(res.stats.num_candidates, 0u);
}

TEST(NetFilterTest, ThresholdOneReportsEverything) {
  Rig rig(30, 500, 1.0, 17);
  const NetFilter nf(config(64, 2));
  const NetFilterResult res =
      nf.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, 1);
  EXPECT_EQ(res.frequent, rig.workload.global());
}

TEST(NetFilterTest, LocalGroupAggregatesPreserveMass) {
  Rig rig(20, 1000, 1.0, 19);
  const NetFilter nf(config(37, 3));
  for (std::uint32_t p = 0; p < 20; ++p) {
    const auto& items = rig.workload.local_items(PeerId(p));
    const auto agg = nf.local_group_aggregates(items);
    ASSERT_EQ(agg.size(), 37u * 3u);
    // Each filter partitions the mass: per-filter sum == local total.
    for (std::uint32_t fi = 0; fi < 3; ++fi) {
      Value sum = 0;
      for (std::uint32_t gi = 0; gi < 37; ++gi) sum += agg[fi * 37 + gi];
      EXPECT_EQ(sum, items.total());
    }
  }
}

TEST(NetFilterTest, MaterializeCandidatesHonorsAllFilters) {
  Rig rig(20, 1000, 1.0, 21);
  const NetFilter nf(config(8, 2));
  HeavyGroupSet heavy;
  heavy.heavy = {std::vector<bool>(8, false), std::vector<bool>(8, true)};
  heavy.heavy[0][3] = true;  // filter 0 admits only group 3
  const auto& items = rig.workload.local_items(PeerId(5));
  const LocalItems cands = nf.materialize_candidates(items, heavy);
  for (const auto& [id, v] : cands) {
    EXPECT_EQ(nf.bank().filter(0).group_of(id).value(), 3u);
  }
  for (const auto& [id, v] : items) {
    const bool expect = nf.bank().filter(0).group_of(id).value() == 3;
    EXPECT_EQ(cands.contains(id), expect);
  }
}

TEST(NetFilterTest, InvalidInputsThrow) {
  Rig rig(10, 100, 1.0, 23);
  EXPECT_THROW(NetFilter(config(0, 1)), InvalidArgument);
  EXPECT_THROW(NetFilter(config(10, 0)), InvalidArgument);
  const NetFilter nf(config(10, 1));
  EXPECT_THROW((void)nf.run(rig.workload, rig.hierarchy, rig.overlay,
                            rig.meter, 0),
               InvalidArgument);
}

TEST(NetFilterTest, RunIsDeterministic) {
  auto run_once = [] {
    Rig rig(50, 2000, 1.0, 25);
    const Value t = rig.workload.threshold_for(0.01);
    const NetFilter nf(config(40, 2));
    return nf.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, t);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.frequent, b.frequent);
  EXPECT_EQ(a.stats.heavy_groups_total, b.stats.heavy_groups_total);
  EXPECT_EQ(a.stats.num_candidates, b.stats.num_candidates);
}

}  // namespace
}  // namespace nf::core
