// Link capacity and contention model (net/link_model.h) and its
// interaction with the engine's reliable transport.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "agg/convergecast.h"
#include "net/engine.h"
#include "net/link_model.h"
#include "net/topology.h"

namespace nf::net {
namespace {

Overlay make_line(std::uint32_t n) {
  Topology t(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    t.add_edge(PeerId(i), PeerId(i + 1));
  }
  return Overlay(std::move(t));
}

agg::Convergecast<std::uint64_t> counting_cast(const agg::Hierarchy& h,
                                               std::uint64_t wire_bytes) {
  return agg::Convergecast<std::uint64_t>(
      h, TrafficCategory::kFiltering, [](PeerId) { return std::uint64_t{1}; },
      [](std::uint64_t& a, std::uint64_t&& b) { a += b; },
      [wire_bytes](const std::uint64_t&) { return wire_bytes; });
}

TEST(LinkClassModelTest, InvalidInputsRejected) {
  EXPECT_THROW(LinkClassModel::uniform(0), InvalidArgument);
  EXPECT_THROW(LinkClassModel::mixed(-0.1, 0.5, 1), InvalidArgument);
  EXPECT_THROW(LinkClassModel::mixed(0.7, 0.5, 1), InvalidArgument);
  const std::vector<std::uint32_t> depths{0, 1, 1};
  LinkClassModel m;
  EXPECT_THROW(m.set_level_override(depths, 1, 0), InvalidArgument);
  m.set_level_override(depths, 1, 512);
  const std::vector<std::uint32_t> other{0, 1};
  EXPECT_THROW(m.set_level_override(other, 2, 512), InvalidArgument);
}

TEST(LinkClassModelTest, PresetsAndMinOfEndpoints) {
  EXPECT_EQ(link_class_capacity(LinkClass::kModem), 7'000u);
  EXPECT_EQ(link_class_capacity(LinkClass::kDsl), 256'000u);
  EXPECT_EQ(link_class_capacity(LinkClass::kFiber), 12'500'000u);

  const LinkClassModel modem = LinkClassModel::uniform_class(LinkClass::kModem);
  EXPECT_EQ(modem.link_capacity(PeerId(0), PeerId(1)), 7'000u);

  // Mixed: deterministic assignment, link capacity = min endpoint class,
  // symmetric in (a, b).
  const LinkClassModel mixed = LinkClassModel::mixed(0.4, 0.4, 17);
  const LinkClassModel again = LinkClassModel::mixed(0.4, 0.4, 17);
  bool saw_two_classes = false;
  for (std::uint32_t a = 0; a < 30; ++a) {
    EXPECT_EQ(mixed.peer_class(PeerId(a)), again.peer_class(PeerId(a)));
    for (std::uint32_t b = a + 1; b < 30; ++b) {
      const std::uint64_t cap = mixed.link_capacity(PeerId(a), PeerId(b));
      const std::uint64_t ca = mixed.peer_capacity(PeerId(a));
      const std::uint64_t cb = mixed.peer_capacity(PeerId(b));
      EXPECT_EQ(cap, std::min(ca, cb));
      EXPECT_EQ(cap, mixed.link_capacity(PeerId(b), PeerId(a)));
      if (ca != cb) saw_two_classes = true;
    }
  }
  EXPECT_TRUE(saw_two_classes);
}

TEST(LinkClassModelTest, LevelOverrideReplacesClassCapacity) {
  // Line 0-1-2 rooted at 0: depths (0, 1, 2). A link's level is its deeper
  // endpoint's depth.
  const std::vector<std::uint32_t> depths{0, 1, 2};
  LinkClassModel m = LinkClassModel::uniform(100'000);
  m.set_level_override(depths, 1, 512);
  EXPECT_EQ(m.link_capacity(PeerId(0), PeerId(1)), 512u);  // level 1
  EXPECT_EQ(m.link_capacity(PeerId(1), PeerId(2)), 100'000u);  // level 2
}

TEST(LinkClassModelTest, CapacityLimitedFlag) {
  EXPECT_FALSE(LinkClassModel{}.capacity_limited());
  EXPECT_FALSE(LinkClassModel::uniform(kInfiniteCapacity).capacity_limited());
  EXPECT_TRUE(LinkClassModel::uniform(100).capacity_limited());
  LinkClassModel overridden;
  const std::vector<std::uint32_t> depths{0, 1};
  overridden.set_level_override(depths, 1, 512);
  EXPECT_TRUE(overridden.capacity_limited());

  LinkModel infinite;
  EXPECT_FALSE(infinite.capacity_limited());
}

TEST(LinkModelTest, InvalidModelsRejected) {
  Overlay overlay = make_line(2);
  TrafficMeter meter(2);
  Engine engine(overlay, meter);
  LinkModel zero;
  zero.min_delay = 0;
  EXPECT_THROW(engine.set_link_model(zero), InvalidArgument);
  LinkModel inverted;
  inverted.min_delay = 5;
  inverted.max_delay = 2;
  EXPECT_THROW(engine.set_link_model(inverted), InvalidArgument);
  LinkModel no_horizon;
  no_horizon.max_backlog_rounds = 0;
  EXPECT_THROW(engine.set_link_model(no_horizon), InvalidArgument);
}

TEST(LinkModelTest, InfiniteCapacityMatchesLatencyModelExactly) {
  auto run = [](bool via_link_model) {
    Rng rng(5);
    Overlay overlay(random_connected(40, 4.0, rng));
    TrafficMeter meter(40);
    Engine engine(overlay, meter);
    if (via_link_model) {
      LinkModel link;
      link.min_delay = 2;
      link.max_delay = 6;
      link.seed = 3;
      engine.set_link_model(link);
    } else {
      LatencyModel lat;
      lat.min_delay = 2;
      lat.max_delay = 6;
      lat.seed = 3;
      engine.set_latency_model(lat);
    }
    const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
    auto cast = counting_cast(h, 4);
    const std::uint64_t rounds = engine.run(cast, 5000);
    EXPECT_TRUE(cast.complete());
    EXPECT_EQ(cast.result(), 40u);
    return std::pair{rounds, meter.total()};
  };
  // The infinite-capacity LinkModel IS the LatencyModel: same seeded draw,
  // same deliveries, same rounds, same bytes.
  EXPECT_EQ(run(true), run(false));
}

TEST(LinkModelTest, CapacityStretchesRoundsNotBytes) {
  auto run = [](std::uint64_t capacity) {
    Overlay overlay = make_line(4);
    TrafficMeter meter(4);
    Engine engine(overlay, meter);
    LinkModel link;
    link.classes = LinkClassModel::uniform(capacity);
    engine.set_link_model(link);
    const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
    auto cast = counting_cast(h, 1000);  // 1000-byte messages
    const std::uint64_t rounds = engine.run(cast, 5000);
    EXPECT_TRUE(cast.complete());
    EXPECT_EQ(cast.result(), 4u);
    EXPECT_EQ(meter.total(), 3u * 1000);  // contention costs time, not bytes
    return rounds;
  };
  const std::uint64_t wide = run(kInfiniteCapacity);
  const std::uint64_t narrow = run(250);  // 4 transfer rounds per message
  EXPECT_GT(narrow, wide);
  // Line of 4: each of 3 hops pays ceil(1000/250) = 4 transfer rounds where
  // the infinite-capacity run pays 1; quiescence padding is identical.
  EXPECT_GE(narrow, wide + 3 * 3);
}

TEST(LinkModelTest, BacklogClampBoundsDelayAndReportsClampedBytes) {
  // Star: 8 leaves all converge on peer 0 in the same round; the root's
  // inbound links are narrow and the horizon is tight.
  Topology t(9);
  for (std::uint32_t i = 1; i < 9; ++i) t.add_edge(PeerId(0), PeerId(i));
  Overlay overlay(std::move(t));
  TrafficMeter meter(9);
  Engine engine(overlay, meter);
  LinkModel link;
  link.classes = LinkClassModel::uniform(100);
  link.max_backlog_rounds = 3;  // horizon: 300 bytes per link
  engine.set_link_model(link);
  const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
  auto cast = counting_cast(h, 1000);  // every message overflows the horizon
  const std::uint64_t rounds = engine.run(cast, 200);
  EXPECT_TRUE(cast.complete());
  EXPECT_EQ(cast.result(), 9u);
  EXPECT_GT(engine.queue_delay_rounds(), 0u);
  EXPECT_GT(engine.clamped_backlog_bytes(), 0u);
  // Clamping bounds the stretch: no message waits more than
  // max_delay + max_backlog_rounds, so completion stays near the horizon.
  EXPECT_LE(rounds, 20u);
  EXPECT_EQ(engine.backlog_bytes(), 0u);  // fully drained at quiescence
}

TEST(LinkQueueTableTest, ScheduleMathAndDrain) {
  LinkQueueTable q;
  q.configure(8);
  // Empty link, capacity 100: 250 bytes take ceil(250/100) = 3 rounds.
  auto s1 = q.schedule(PeerId(0), PeerId(1), 100, 250, 64, 0);
  EXPECT_EQ(s1.queue_rounds, 3u);
  EXPECT_EQ(s1.clamped_bytes, 0u);
  // 100 more behind the 250 backlog: ceil(350/100) = 4 rounds.
  auto s2 = q.schedule(PeerId(0), PeerId(1), 100, 100, 64, 0);
  EXPECT_EQ(s2.queue_rounds, 4u);
  EXPECT_EQ(q.backlogged_links(), 1u);
  // Independent link queues independently.
  auto s3 = q.schedule(PeerId(1), PeerId(2), 100, 50, 64, 0);
  EXPECT_EQ(s3.queue_rounds, 1u);
  // Every fresh admission joins the active list; the 50-byte backlog
  // drains at the next round-barrier drain.
  EXPECT_EQ(q.backlogged_links(), 2u);

  // Drain clears capacity bytes per link per round: 350 -> 250 -> ... -> 0.
  std::uint64_t remaining = ~0ull;
  int drains = 0;
  while (remaining != 0) {
    remaining = q.drain_round([](std::uint32_t, std::uint64_t) {});
    ++drains;
  }
  EXPECT_EQ(drains, 4);  // ceil(350/100)
  EXPECT_EQ(q.backlogged_links(), 0u);

  // Horizon clamp: capacity 100, 2-round horizon = 200 bytes. 500 bytes
  // admits at the clamped depth with the excess reported, never dropped.
  auto s4 = q.schedule(PeerId(3), PeerId(4), 100, 500, 2, 0);
  EXPECT_EQ(s4.queue_rounds, 2u);
  EXPECT_EQ(s4.clamped_bytes, 300u);
  EXPECT_EQ(q.drain_round([](std::uint32_t, std::uint64_t) {}), 100u);
}

// The satellite requirement: a message queued past the sender's retransmit
// timer must retransmit deterministically and never double-deliver.
TEST(LinkModelTest, QueueDelayBeyondRetransmitTimerStaysExactlyOnce) {
  auto run = [] {
    Overlay overlay = make_line(5);
    TrafficMeter meter(5);
    Engine engine(overlay, meter);
    LinkModel link;
    link.classes = LinkClassModel::uniform(100);
    engine.set_link_model(link);
    LinkFaultModel fault;
    // Near-zero loss arms the reliable transport without actually losing
    // anything: every retransmission below is queueing-driven.
    fault.loss_probability = 1e-9;
    fault.retransmit_after = 2;  // fires long before a 10-round transfer
    fault.max_retries = 50;
    engine.set_fault_model(fault);
    const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
    auto cast = counting_cast(h, 1000);  // 10 transfer rounds per hop
    const std::uint64_t rounds = engine.run(cast, 1000);
    EXPECT_TRUE(cast.complete());
    // Exactly-once: retransmitted copies are suppressed at the receiver,
    // so the sum is exact even though the timer fired under queueing.
    EXPECT_EQ(cast.result(), 5u);
    EXPECT_GT(engine.retransmissions(), 0u);
    EXPECT_GT(engine.duplicates_suppressed(), 0u);
    EXPECT_LE(engine.duplicates_suppressed(), engine.retransmissions());
    return std::tuple{rounds, engine.retransmissions(), meter.total()};
  };
  // Deterministic: two identical runs agree on every count.
  EXPECT_EQ(run(), run());
}

TEST(LinkModelTest, LossAndQueueingComposeToExactResult) {
  Rng rng(6);
  Overlay overlay(random_connected(30, 4.0, rng));
  TrafficMeter meter(30);
  Engine engine(overlay, meter);
  LinkModel link;
  link.min_delay = 1;
  link.max_delay = 3;
  link.classes = LinkClassModel::mixed(0.3, 0.4, 9);
  engine.set_link_model(link);
  LinkFaultModel fault;
  fault.loss_probability = 0.15;
  fault.retransmit_after = 8;
  fault.max_retries = 100;
  engine.set_fault_model(fault);
  const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
  auto cast = counting_cast(h, 2000);
  engine.run(cast, 5000);
  ASSERT_TRUE(cast.complete());
  EXPECT_EQ(cast.result(), 30u);
}

}  // namespace
}  // namespace nf::net
