#include "core/misra_gries.h"

#include <gtest/gtest.h>

#include <map>

#include "net/topology.h"
#include "workload/workload.h"

namespace nf::core {
namespace {

using net::Overlay;
using net::TrafficMeter;

TEST(MisraGriesTest, ExactBelowCapacity) {
  MisraGries mg(10);
  mg.add(ItemId(1), 5);
  mg.add(ItemId(2), 3);
  mg.add(ItemId(1), 2);
  EXPECT_EQ(mg.estimate(ItemId(1)), 7u);
  EXPECT_EQ(mg.estimate(ItemId(2)), 3u);
  EXPECT_EQ(mg.estimate(ItemId(3)), 0u);
  EXPECT_EQ(mg.error_bound(), 0u);
}

TEST(MisraGriesTest, CapacityIsEnforced) {
  MisraGries mg(4);
  for (std::uint64_t i = 0; i < 100; ++i) {
    mg.add(ItemId(i), i + 1);
  }
  EXPECT_LE(mg.counters().size(), 4u);
}

TEST(MisraGriesTest, ErrorBoundHolds) {
  // Classic guarantee: estimate <= true <= estimate + error_bound.
  Rng rng(1);
  MisraGries mg(20);
  std::map<std::uint64_t, std::uint64_t> truth;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t id = rng.below(200);
    const std::uint64_t w = rng.between(1, 5);
    mg.add(ItemId(id), w);
    truth[id] += w;
  }
  for (const auto& [id, v] : truth) {
    const Value est = mg.estimate(ItemId(id));
    EXPECT_LE(est, v);
    EXPECT_GE(est + mg.error_bound(), v) << "id " << id;
  }
}

TEST(MisraGriesTest, MergePreservesErrorBound) {
  Rng rng(2);
  MisraGries a(16);
  MisraGries b(16);
  std::map<std::uint64_t, std::uint64_t> truth;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t id = rng.below(100);
    const std::uint64_t w = rng.between(1, 3);
    (i % 2 ? a : b).add(ItemId(id), w);
    truth[id] += w;
  }
  a.merge(b);
  EXPECT_LE(a.counters().size(), 16u);
  for (const auto& [id, v] : truth) {
    const Value est = a.estimate(ItemId(id));
    EXPECT_LE(est, v);
    EXPECT_GE(est + a.error_bound(), v);
  }
}

TEST(MisraGriesTest, HeavyItemSurvivesAggressiveMerging) {
  // An item holding >1/(k+1) of the mass must be tracked after any merges.
  MisraGries total(8);
  for (int part = 0; part < 10; ++part) {
    MisraGries mg(8);
    mg.add(ItemId(42), 1000);
    for (std::uint64_t i = 0; i < 50; ++i) {
      mg.add(ItemId(100 + i + static_cast<std::uint64_t>(part) * 50), 10);
    }
    total.merge(mg);
  }
  EXPECT_GT(total.estimate(ItemId(42)), 0u);
  EXPECT_GE(total.estimate(ItemId(42)) + total.error_bound(), 10000u);
}

TEST(MisraGriesTest, CapacityMismatchThrows) {
  MisraGries a(4);
  const MisraGries b(5);
  EXPECT_THROW(a.merge(b), InvalidArgument);
  EXPECT_THROW(MisraGries(0), InvalidArgument);
}

TEST(MisraGriesTest, WireBytesTracksCounters) {
  MisraGries mg(10);
  const WireSizes wire;
  EXPECT_EQ(mg.wire_bytes(wire), 4u);  // just the error field
  mg.add(ItemId(1), 1);
  mg.add(ItemId(2), 1);
  EXPECT_EQ(mg.wire_bytes(wire), 2 * 8 + 4u);
}

struct Rig {
  explicit Rig(std::uint64_t seed)
      : workload([&] {
          wl::WorkloadConfig cfg;
          cfg.num_peers = 80;
          cfg.num_items = 10000;
          cfg.seed = seed;
          return wl::Workload::generate(cfg);
        }()),
        overlay([&] {
          Rng rng(seed + 1);
          return Overlay(net::random_tree(80, 3, rng));
        }()),
        meter(80),
        hierarchy(agg::build_bfs_hierarchy(overlay, PeerId(0))) {}

  wl::Workload workload;
  Overlay overlay;
  TrafficMeter meter;
  agg::Hierarchy hierarchy;
};

TEST(ApproxCollectorTest, NoFalseNegatives) {
  Rig rig(3);
  const Value t = rig.workload.threshold_for(0.01);
  const auto oracle = rig.workload.frequent_items(t);
  const ApproxCollector approx(WireSizes{}, /*epsilon=*/0.002);
  const ApproxResult res = approx.run(rig.workload, rig.hierarchy,
                                      rig.overlay, rig.meter, t, &oracle);
  EXPECT_EQ(res.stats.false_negatives, 0u);
  for (const auto& [id, v] : oracle) {
    EXPECT_TRUE(res.reported.contains(id));
  }
}

TEST(ApproxCollectorTest, TighterEpsilonCostsMore) {
  auto cost_at = [](double eps) {
    Rig rig(4);
    const Value t = rig.workload.threshold_for(0.01);
    const ApproxCollector approx(WireSizes{}, eps);
    return approx
        .run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, t, nullptr)
        .stats.cost_per_peer;
  };
  EXPECT_LT(cost_at(0.02), cost_at(0.001));
}

TEST(ApproxCollectorTest, ReportsFalsePositivesAgainstOracle) {
  // The no-false-negative guarantee needs epsilon < theta; just inside that
  // boundary the upper-bound report rule must over-report borderline items.
  Rig rig(5);
  const Value t = rig.workload.threshold_for(0.01);
  const auto oracle = rig.workload.frequent_items(t);
  const ApproxCollector approx(WireSizes{}, /*epsilon=*/0.008);
  const ApproxResult res = approx.run(rig.workload, rig.hierarchy,
                                      rig.overlay, rig.meter, t, &oracle);
  EXPECT_EQ(res.stats.false_negatives, 0u);
  EXPECT_GT(res.stats.false_positives, 0u);
  EXPECT_GT(res.stats.max_value_error, 0.0);
}

TEST(ApproxCollectorTest, SketchCapacityFromEpsilon) {
  EXPECT_EQ(ApproxCollector(WireSizes{}, 0.01).sketch_capacity(), 100u);
  EXPECT_EQ(ApproxCollector(WireSizes{}, 1.0).sketch_capacity(), 1u);
  EXPECT_THROW(ApproxCollector(WireSizes{}, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace nf::core
