#include "core/host_report.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "workload/workload.h"

namespace nf::core {
namespace {

using net::Overlay;
using net::TrafficCategory;
using net::TrafficMeter;

struct Rig {
  explicit Rig(std::uint64_t seed)
      : workload([&] {
          wl::WorkloadConfig cfg;
          cfg.num_peers = 30;
          cfg.num_items = 1000;
          cfg.seed = seed;
          return wl::Workload::generate(cfg);
        }()),
        overlay([&] {
          Rng rng(seed);
          return Overlay(net::random_connected(30, 4.0, rng));
        }()),
        meter(30) {}

  wl::Workload workload;
  Overlay overlay;
  TrafficMeter meter;
};

TEST(EffectiveItemsTest, FullParticipationIsTransparent) {
  Rig rig(1);
  const agg::Hierarchy h = agg::build_bfs_hierarchy(rig.overlay, PeerId(0));
  const EffectiveItems eff(rig.workload, h, rig.overlay, WireSizes{},
                           &rig.meter);
  EXPECT_EQ(eff.num_reporters(), 0u);
  EXPECT_EQ(rig.meter.total(TrafficCategory::kHostReport), 0u);
  for (std::uint32_t p = 0; p < 30; ++p) {
    EXPECT_EQ(eff.local_items(PeerId(p)),
              rig.workload.local_items(PeerId(p)));
  }
}

TEST(EffectiveItemsTest, NonMembersReportToHostsAndMassIsPreserved) {
  Rig rig(2);
  std::vector<double> uptime(30);
  Rng rng(3);
  for (auto& u : uptime) u = rng.uniform();
  const auto participant = agg::select_stable_peers(uptime, 0.5, PeerId(0));
  const agg::Hierarchy h =
      agg::build_bfs_hierarchy(rig.overlay, PeerId(0), participant);
  const EffectiveItems eff(rig.workload, h, rig.overlay, WireSizes{},
                           &rig.meter);
  EXPECT_GT(eff.num_reporters(), 0u);
  EXPECT_GT(rig.meter.total(TrafficCategory::kHostReport), 0u);

  // Non-members expose empty sets; total mass over members is unchanged.
  Value total = 0;
  for (std::uint32_t p = 0; p < 30; ++p) {
    if (!h.is_member(PeerId(p))) {
      EXPECT_TRUE(eff.local_items(PeerId(p)).empty());
    }
    total += eff.local_items(PeerId(p)).total();
  }
  EXPECT_EQ(total, rig.workload.total_value());
}

TEST(EffectiveItemsTest, ChargesPairBytesPerReportedItem) {
  // Deterministic star overlay: removing one leaf participant cannot
  // demote any other, so there is exactly one reporter.
  Rig rig(4);
  net::Topology star(30);
  for (std::uint32_t i = 1; i < 30; ++i) {
    star.add_edge(PeerId(0), PeerId(i));
  }
  rig.overlay = Overlay(std::move(star));
  std::vector<bool> participant(30, true);
  participant[7] = false;  // exactly one reporter
  const agg::Hierarchy h =
      agg::build_bfs_hierarchy(rig.overlay, PeerId(0), participant);
  const EffectiveItems eff(rig.workload, h, rig.overlay, WireSizes{},
                           &rig.meter);
  EXPECT_EQ(eff.num_reporters(), 1u);
  EXPECT_EQ(rig.meter.total(TrafficCategory::kHostReport),
            rig.workload.local_items(PeerId(7)).size() * 8);
  EXPECT_EQ(rig.meter.peer_total(PeerId(7)),
            rig.workload.local_items(PeerId(7)).size() * 8);
}

TEST(EffectiveItemsTest, DeadNonMembersDoNotReport) {
  Rig rig(5);
  std::vector<bool> participant(30, true);
  participant[9] = false;
  rig.overlay.fail(PeerId(9));
  const agg::Hierarchy h =
      agg::build_bfs_hierarchy(rig.overlay, PeerId(0), participant);
  const EffectiveItems eff(rig.workload, h, rig.overlay, WireSizes{},
                           &rig.meter);
  EXPECT_EQ(eff.num_reporters(), 0u);
}

TEST(EffectiveItemsTest, NullMeterSkipsCharging) {
  Rig rig(6);
  std::vector<bool> participant(30, true);
  participant[3] = false;
  const agg::Hierarchy h =
      agg::build_bfs_hierarchy(rig.overlay, PeerId(0), participant);
  const EffectiveItems eff(rig.workload, h, rig.overlay, WireSizes{},
                           nullptr);
  EXPECT_EQ(eff.num_reporters(), 1u);
  EXPECT_EQ(rig.meter.total(), 0u);
}

}  // namespace
}  // namespace nf::core
