#include "common/error.h"

#include <gtest/gtest.h>

#include <string>

namespace nf {
namespace {

TEST(ErrorTest, RequirePassesOnTrue) {
  EXPECT_NO_THROW(require(true, "never"));
}

TEST(ErrorTest, RequireThrowsInvalidArgument) {
  EXPECT_THROW(require(false, "bad arg"), InvalidArgument);
}

TEST(ErrorTest, EnsureThrowsProtocolError) {
  EXPECT_THROW(ensure(false, "broken"), ProtocolError);
}

TEST(ErrorTest, MessagesCarryContextAndLocation) {
  try {
    require(false, "the message");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, HierarchyIsCatchableAsError) {
  EXPECT_THROW(require(false, "x"), Error);
  EXPECT_THROW(ensure(false, "x"), Error);
}

TEST(ConcatTest, JoinsStreamables) {
  EXPECT_EQ(concat("a", 1, '-', 2.5), "a1-2.5");
  EXPECT_EQ(concat(), "");
}

}  // namespace
}  // namespace nf
