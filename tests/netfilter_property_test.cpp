// Property-style sweeps over netFilter invariants (DESIGN.md §8).
#include <gtest/gtest.h>

#include <tuple>

#include "core/netfilter.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace nf::core {
namespace {

using net::Overlay;
using net::TrafficMeter;

struct Rig {
  Rig(std::uint32_t num_peers, std::uint64_t num_items, double alpha,
      std::uint64_t seed)
      : workload([&] {
          wl::WorkloadConfig cfg;
          cfg.num_peers = num_peers;
          cfg.num_items = num_items;
          cfg.alpha = alpha;
          cfg.seed = seed;
          return wl::Workload::generate(cfg);
        }()),
        overlay([&] {
          Rng rng(seed * 31 + 1);
          // Alternate topology families to avoid over-fitting to trees.
          switch (seed % 3) {
            case 0: return Overlay(net::random_tree(num_peers, 3, rng));
            case 1: return Overlay(net::random_connected(num_peers, 4.0, rng));
            default: return Overlay(net::barabasi_albert(num_peers, 2, rng));
          }
        }()),
        meter(num_peers),
        hierarchy(agg::build_bfs_hierarchy(overlay, PeerId(0))) {}

  wl::Workload workload;
  Overlay overlay;
  TrafficMeter meter;
  agg::Hierarchy hierarchy;
};

NetFilterConfig config(std::uint32_t g, std::uint32_t f,
                       std::uint64_t seed = 0xF117E25EEDull) {
  NetFilterConfig c;
  c.num_groups = g;
  c.num_filters = f;
  c.filter_seed = seed;
  return c;
}

class RandomizedExactness
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(RandomizedExactness, OutputEqualsOracleOnRandomConfigurations) {
  const auto [seed, alpha] = GetParam();
  Rng rng(seed);
  const auto num_peers = static_cast<std::uint32_t>(rng.between(2, 120));
  const std::uint64_t num_items = rng.between(50, 20000);
  Rig rig(num_peers, num_items, alpha, seed);
  const auto g = static_cast<std::uint32_t>(rng.between(1, 400));
  const auto f = static_cast<std::uint32_t>(rng.between(1, 8));
  const double theta = 0.001 + rng.uniform() * 0.2;
  const Value t = rig.workload.threshold_for(theta);
  const NetFilter nf(config(g, f, rng()));
  const NetFilterResult res =
      nf.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, t);
  EXPECT_EQ(res.frequent, rig.workload.frequent_items(t))
      << "N=" << num_peers << " n=" << num_items << " g=" << g << " f=" << f
      << " theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, RandomizedExactness,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 21),
                       ::testing::Values(0.0, 0.8, 1.0, 2.5)));

TEST(NetFilterMonotonicity, MoreFiltersNeverAddCandidates) {
  // With a nested bank (same seed, prefix filters), candidates(f+1) ⊆
  // candidates(f): an extra filter can only prune more.
  Rig rig(60, 8000, 1.0, 42);
  const Value t = rig.workload.threshold_for(0.01);
  std::uint64_t prev_candidates = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t f = 1; f <= 6; ++f) {
    TrafficMeter meter(60);
    const NetFilter nf(config(60, f, 777));
    const NetFilterResult res =
        nf.run(rig.workload, rig.hierarchy, rig.overlay, meter, t);
    EXPECT_LE(res.stats.num_candidates, prev_candidates) << "f=" << f;
    prev_candidates = res.stats.num_candidates;
    EXPECT_EQ(res.frequent, rig.workload.frequent_items(t));
  }
}

TEST(NetFilterMonotonicity, HigherThresholdShrinksResult) {
  Rig rig(60, 8000, 1.0, 43);
  const NetFilter nf(config(80, 3));
  ValueMap<ItemId, Value> prev;
  bool first = true;
  for (double theta : {0.001, 0.005, 0.02, 0.1}) {
    TrafficMeter meter(60);
    const Value t = rig.workload.threshold_for(theta);
    const auto res =
        nf.run(rig.workload, rig.hierarchy, rig.overlay, meter, t);
    if (!first) {
      // Every item at the higher threshold was also in the lower-threshold
      // result.
      for (const auto& [id, v] : res.frequent) {
        EXPECT_TRUE(prev.contains(id));
      }
      EXPECT_LE(res.frequent.size(), prev.size());
    }
    prev = res.frequent;
    first = false;
  }
}

TEST(NetFilterMonotonicity, LargerFiltersNeverIncreaseFalsePositives) {
  // Expectation over hashing: more groups -> fewer collisions. Tested with
  // averaged seeds to keep it deterministic but meaningful.
  Rig rig(50, 10000, 1.0, 44);
  const Value t = rig.workload.threshold_for(0.01);
  auto avg_fp = [&](std::uint32_t g) {
    double total = 0;
    for (std::uint64_t s = 0; s < 3; ++s) {
      TrafficMeter meter(50);
      const NetFilter nf(config(g, 2, 1000 + s));
      total += static_cast<double>(
          nf.run(rig.workload, rig.hierarchy, rig.overlay, meter, t)
              .stats.num_false_positives);
    }
    return total / 3;
  };
  const double fp_small = avg_fp(20);
  const double fp_large = avg_fp(500);
  EXPECT_LE(fp_large, fp_small);
}

class ParticipationFuzz
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(ParticipationFuzz, StablePeerRecruitmentNeverBreaksExactness) {
  const auto [fraction, seed] = GetParam();
  Rig rig(80, 6000, 1.0, seed);
  Rng rng(seed * 13 + 1);
  std::vector<double> uptime(80);
  for (auto& u : uptime) u = rng.uniform();
  const auto participant =
      agg::select_stable_peers(uptime, fraction, PeerId(0));
  const agg::Hierarchy h =
      agg::build_bfs_hierarchy(rig.overlay, PeerId(0), participant);
  h.validate(rig.overlay);
  const Value t = rig.workload.threshold_for(0.01);
  const NetFilter nf(config(60, 3));
  const auto res = nf.run(rig.workload, h, rig.overlay, rig.meter, t);
  EXPECT_EQ(res.frequent, rig.workload.frequent_items(t))
      << "fraction=" << fraction << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Fractions, ParticipationFuzz,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.5, 0.8, 1.0),
                       ::testing::Values(101u, 102u, 103u)));

TEST(NetFilterProperty, CostAccountingMatchesMeter) {
  Rig rig(70, 6000, 1.0, 45);
  const Value t = rig.workload.threshold_for(0.01);
  const NetFilter nf(config(90, 3));
  const NetFilterResult res =
      nf.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, t);
  using net::TrafficCategory;
  const double n = 70.0;
  EXPECT_DOUBLE_EQ(
      res.stats.filtering_cost,
      static_cast<double>(rig.meter.total(TrafficCategory::kFiltering)) / n);
  EXPECT_DOUBLE_EQ(
      res.stats.dissemination_cost,
      static_cast<double>(rig.meter.total(TrafficCategory::kDissemination)) /
          n);
  EXPECT_DOUBLE_EQ(
      res.stats.aggregation_cost,
      static_cast<double>(rig.meter.total(TrafficCategory::kAggregation)) / n);
}

TEST(NetFilterProperty, IdenticalFilterSeedsGiveIdenticalBanks) {
  // Decentralized materialization relies on every peer deriving the same
  // filters from (seed, f, g).
  const NetFilter a(config(64, 4, 9));
  const NetFilter b(config(64, 4, 9));
  EXPECT_EQ(a.bank(), b.bank());
}

TEST(NetFilterProperty, CandidatesPerPeerBoundedByCandidates) {
  // A peer propagates at most the full candidate set.
  Rig rig(40, 4000, 1.0, 46);
  const Value t = rig.workload.threshold_for(0.01);
  const NetFilter nf(config(64, 3));
  const auto res =
      nf.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, t);
  EXPECT_LE(res.stats.candidates_per_peer,
            static_cast<double>(res.stats.num_candidates));
}

}  // namespace
}  // namespace nf::core
