// The kVarintDelta wire model: identical results, different byte pricing.
#include <gtest/gtest.h>

#include "core/netfilter.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace nf::core {
namespace {

using net::Overlay;
using net::TrafficMeter;

struct Rig {
  explicit Rig(std::uint64_t seed)
      : workload([&] {
          wl::WorkloadConfig cfg;
          cfg.num_peers = 80;
          cfg.num_items = 8000;
          cfg.seed = seed;
          return wl::Workload::generate(cfg);
        }()),
        overlay([&] {
          Rng rng(seed + 1);
          return Overlay(net::random_tree(80, 3, rng));
        }()),
        hierarchy(agg::build_bfs_hierarchy(overlay, PeerId(0))) {}

  wl::Workload workload;
  Overlay overlay;
  agg::Hierarchy hierarchy;
};

NetFilterConfig config(WireModel model) {
  NetFilterConfig c;
  c.num_groups = 64;
  c.num_filters = 3;
  c.wire_model = model;
  return c;
}

TEST(WireModelTest, ResultsAreIdenticalAcrossModels) {
  Rig rig(1);
  const Value t = rig.workload.threshold_for(0.01);
  TrafficMeter m1(80);
  TrafficMeter m2(80);
  const auto flat = NetFilter(config(WireModel::kFlatFields))
                        .run(rig.workload, rig.hierarchy, rig.overlay, m1, t);
  const auto varint = NetFilter(config(WireModel::kVarintDelta))
                          .run(rig.workload, rig.hierarchy, rig.overlay, m2, t);
  EXPECT_EQ(flat.frequent, varint.frequent);
  EXPECT_EQ(flat.stats.num_candidates, varint.stats.num_candidates);
  EXPECT_EQ(flat.stats.heavy_groups_total, varint.stats.heavy_groups_total);
}

TEST(WireModelTest, VarintShrinksFilteringAndDissemination) {
  Rig rig(2);
  const Value t = rig.workload.threshold_for(0.01);
  TrafficMeter m1(80);
  TrafficMeter m2(80);
  const auto flat = NetFilter(config(WireModel::kFlatFields))
                        .run(rig.workload, rig.hierarchy, rig.overlay, m1, t);
  const auto varint = NetFilter(config(WireModel::kVarintDelta))
                          .run(rig.workload, rig.hierarchy, rig.overlay, m2, t);
  // Group-aggregate vectors hold many small counts: varint wins clearly.
  EXPECT_LT(varint.stats.filtering_cost, 0.8 * flat.stats.filtering_cost);
  // Heavy-group id lists are dense ranges: delta coding wins.
  EXPECT_LT(varint.stats.dissemination_cost, flat.stats.dissemination_cost);
}

TEST(WireModelTest, VarintPairsCostMoreWith64BitIds) {
  // Hashed 64-bit item ids have huge deltas; flat si = 4 undercounts them.
  Rig rig(3);
  const Value t = rig.workload.threshold_for(0.01);
  TrafficMeter m1(80);
  TrafficMeter m2(80);
  const auto flat = NetFilter(config(WireModel::kFlatFields))
                        .run(rig.workload, rig.hierarchy, rig.overlay, m1, t);
  const auto varint = NetFilter(config(WireModel::kVarintDelta))
                          .run(rig.workload, rig.hierarchy, rig.overlay, m2, t);
  EXPECT_GT(varint.stats.aggregation_cost, flat.stats.aggregation_cost);
}

TEST(WireModelTest, FlatFieldsFilteringIsSparsityIndependent) {
  // The flat model charges sa*f*g regardless of how many groups are empty;
  // varint charges by content, so two different workloads should produce
  // the same flat filtering cost but different varint costs.
  Rig a(4);
  Rig b(5);
  const Value ta = a.workload.threshold_for(0.01);
  const Value tb = b.workload.threshold_for(0.01);
  TrafficMeter ma1(80), mb1(80), ma2(80), mb2(80);
  const auto fa = NetFilter(config(WireModel::kFlatFields))
                      .run(a.workload, a.hierarchy, a.overlay, ma1, ta);
  const auto fb = NetFilter(config(WireModel::kFlatFields))
                      .run(b.workload, b.hierarchy, b.overlay, mb1, tb);
  EXPECT_DOUBLE_EQ(fa.stats.filtering_cost, fb.stats.filtering_cost);
  const auto va = NetFilter(config(WireModel::kVarintDelta))
                      .run(a.workload, a.hierarchy, a.overlay, ma2, ta);
  const auto vb = NetFilter(config(WireModel::kVarintDelta))
                      .run(b.workload, b.hierarchy, b.overlay, mb2, tb);
  EXPECT_NE(va.stats.filtering_cost, vb.stats.filtering_cost);
}

}  // namespace
}  // namespace nf::core
