#include "workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/hashing.h"

#include "common/error.h"

namespace nf::wl {
namespace {

TEST(TraceTest, IdRoundTripPreservesEverything) {
  WorkloadConfig cfg;
  cfg.num_peers = 20;
  cfg.num_items = 500;
  cfg.seed = 5;
  const Workload original = Workload::generate(cfg);

  std::stringstream buffer;
  save_trace(buffer, original, TraceKeyMode::kIds);
  const ScenarioOutput loaded = load_trace(buffer);

  ASSERT_EQ(loaded.workload.num_peers(), 20u);
  EXPECT_EQ(loaded.workload.global(), original.global());
  for (std::uint32_t p = 0; p < 20; ++p) {
    EXPECT_EQ(loaded.workload.local_items(PeerId(p)),
              original.local_items(PeerId(p)));
  }
}

TEST(TraceTest, KeyModePreservesNames) {
  const ScenarioOutput scenario = keyword_queries(10, 100, 20, 1.0, 6);
  std::stringstream buffer;
  save_trace(buffer, scenario.workload, TraceKeyMode::kKeys,
             &scenario.catalog);
  const ScenarioOutput loaded = load_trace(buffer);
  EXPECT_EQ(loaded.workload.global(), scenario.workload.global());
  // Names survive: every loaded item resolves to its original keyword.
  for (const auto& [id, v] : loaded.workload.global()) {
    EXPECT_EQ(loaded.catalog.name_of(id), scenario.catalog.name_of(id));
  }
}

TEST(TraceTest, HandComposedTrace) {
  std::stringstream in(
      "netfilter-trace-v1 keys\n"
      "# comment line\n"
      "peer 0\n"
      "apple 3\n"
      "pear 1\n"
      "\n"
      "peer 2\n"
      "apple 4\n");
  const ScenarioOutput loaded = load_trace(in);
  ASSERT_EQ(loaded.workload.num_peers(), 3u);
  EXPECT_EQ(loaded.workload.total_value(), 8u);
  const ItemId apple = ItemId(hash_bytes("apple"));
  EXPECT_EQ(loaded.workload.global().value_of(apple), 7u);
  EXPECT_TRUE(loaded.workload.local_items(PeerId(1)).empty());
}

TEST(TraceTest, RepeatedSectionsAccumulate) {
  std::stringstream in(
      "netfilter-trace-v1 ids\n"
      "peer 0\n"
      "7 1\n"
      "peer 0\n"
      "7 2\n");
  const ScenarioOutput loaded = load_trace(in);
  EXPECT_EQ(loaded.workload.global().value_of(ItemId(7)), 3u);
}

TEST(TraceTest, MalformedInputsThrow) {
  const auto expect_bad = [](const std::string& text) {
    std::stringstream in(text);
    EXPECT_THROW((void)load_trace(in), InvalidArgument) << text;
  };
  expect_bad("");
  expect_bad("wrong-magic ids\npeer 0\n1 1\n");
  expect_bad("netfilter-trace-v1 hex\npeer 0\n1 1\n");
  expect_bad("netfilter-trace-v1 ids\n1 1\n");          // item before peer
  expect_bad("netfilter-trace-v1 ids\npeer 0\n1\n");    // missing value
  expect_bad("netfilter-trace-v1 ids\npeer 0\n1 1 9\n");  // trailing token
  expect_bad("netfilter-trace-v1 ids\npeer 0\nxyz 1\n");  // bad id
  expect_bad("netfilter-trace-v1 ids\npeer x\n");         // bad peer id
  expect_bad("netfilter-trace-v1 ids\n");                 // no peers
}

TEST(TraceTest, FileRoundTrip) {
  WorkloadConfig cfg;
  cfg.num_peers = 5;
  cfg.num_items = 50;
  cfg.seed = 7;
  const Workload original = Workload::generate(cfg);
  const std::string path = ::testing::TempDir() + "/nf_trace_test.txt";
  save_trace_file(path, original, TraceKeyMode::kIds);
  const ScenarioOutput loaded = load_trace_file(path);
  EXPECT_EQ(loaded.workload.global(), original.global());
  EXPECT_THROW((void)load_trace_file("/nonexistent/dir/file"),
               InvalidArgument);
}

}  // namespace
}  // namespace nf::wl
