// Golden determinism suite for the sharded round engine (DESIGN.md §6c).
//
// The engine's contract is that the shard count is invisible: a K-shard run
// must produce the SAME execution as the serial engine, bit for bit — the
// same envelopes admitted in the same order (observed via set_send_probe),
// the same meter charges, and the same protocol results. These tests pin
// that contract for K ∈ {2, 4, 8} against K = 1, for plain runs and under
// the adversarial engine features (link loss, latency jitter), and for the
// full netFilter and gossip-netFilter drivers.
#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "agg/convergecast.h"
#include "agg/hierarchy.h"
#include "core/gossip_netfilter.h"
#include "core/netfilter.h"
#include "net/engine.h"
#include "net/topology.h"
#include "obs/context.h"
#include "obs/export.h"
#include "workload/workload.h"

namespace nf {
namespace {

using net::Engine;
using net::Envelope;
using net::LatencyModel;
using net::LinkFaultModel;
using net::Overlay;
using net::TrafficCategory;
using net::TrafficMeter;

// 60 peers: not a multiple of 8, so every K in {2,4,8} gets uneven
// contiguous shards — the case where a sloppy merge would reorder sends.
constexpr std::uint32_t kPeers = 60;
constexpr std::uint32_t kShardCounts[] = {2, 4, 8};

struct TestWorld {
  wl::Workload workload;
  Overlay overlay;
  agg::Hierarchy hierarchy;

  static TestWorld make() {
    wl::WorkloadConfig wc;
    wc.num_peers = kPeers;
    wc.num_items = 2000;
    wc.seed = 11;
    wl::Workload w = wl::Workload::generate(wc);
    Rng rng(5);
    Overlay overlay(net::random_tree(kPeers, 3, rng));
    agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
    return TestWorld{std::move(w), std::move(overlay), std::move(h)};
  }
};

/// One admitted envelope, flattened for exact comparison. The payload is
/// protocol-internal; identity of (from, to, category, bytes) in identical
/// order pins the wire-visible execution.
using SendRecord = std::tuple<std::uint32_t, std::uint32_t, int, std::uint64_t>;

struct RunTrace {
  std::vector<SendRecord> sends;
  std::array<std::uint64_t, net::kNumTrafficCategories> totals{};
  std::uint64_t num_messages = 0;
  std::uint64_t rounds = 0;
  std::vector<Value> result;
};

/// Runs the fig5-style phase-1 convergecast (group aggregates up the
/// hierarchy) at the given shard count and records everything observable.
RunTrace run_convergecast(const TestWorld& world, std::uint32_t threads,
                          const LinkFaultModel* fault,
                          const LatencyModel* latency) {
  const core::NetFilter nf(core::NetFilterConfig{});
  TrafficMeter meter(kPeers);
  Overlay overlay = world.overlay;  // engines never mutate it, but stay safe
  Engine engine(overlay, meter);
  engine.set_threads(threads);
  if (fault != nullptr) engine.set_fault_model(*fault);
  if (latency != nullptr) engine.set_latency_model(*latency);

  RunTrace trace;
  engine.set_send_probe([&trace](const Envelope& env) {
    trace.sends.emplace_back(env.from.value(), env.to.value(),
                             static_cast<int>(env.category), env.bytes);
  });

  agg::Convergecast<std::vector<Value>> cast(
      world.hierarchy, TrafficCategory::kFiltering,
      [&](PeerId p) {
        return nf.local_group_aggregates(world.workload.local_items(p));
      },
      [](std::vector<Value>& acc, std::vector<Value>&& child) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += child[i];
      },
      [](const std::vector<Value>&) { return std::uint64_t{128}; });
  trace.rounds = engine.run(cast, 5000);
  EXPECT_TRUE(cast.complete());
  trace.result = cast.result();
  for (std::size_t c = 0; c < net::kNumTrafficCategories; ++c) {
    trace.totals[c] = meter.total(static_cast<TrafficCategory>(c));
  }
  trace.num_messages = meter.num_messages();
  return trace;
}

void expect_identical(const RunTrace& serial, const RunTrace& sharded,
                      std::uint32_t threads) {
  SCOPED_TRACE(::testing::Message() << "threads=" << threads);
  EXPECT_EQ(serial.rounds, sharded.rounds);
  EXPECT_EQ(serial.result, sharded.result);
  EXPECT_EQ(serial.totals, sharded.totals);
  EXPECT_EQ(serial.num_messages, sharded.num_messages);
  ASSERT_EQ(serial.sends.size(), sharded.sends.size());
  // Element-wise (not one big EQ) so a failure names the first divergence.
  for (std::size_t i = 0; i < serial.sends.size(); ++i) {
    ASSERT_EQ(serial.sends[i], sharded.sends[i]) << "send index " << i;
  }
}

TEST(DeterminismTest, ShardedConvergecastIsBitIdenticalToSerial) {
  const TestWorld world = TestWorld::make();
  const RunTrace serial = run_convergecast(world, 1, nullptr, nullptr);
  ASSERT_FALSE(serial.sends.empty());
  for (const std::uint32_t k : kShardCounts) {
    expect_identical(serial, run_convergecast(world, k, nullptr, nullptr), k);
  }
}

TEST(DeterminismTest, LossyLinksPreserveTheSendStream) {
  const TestWorld world = TestWorld::make();
  LinkFaultModel fault;
  fault.loss_probability = 0.25;
  fault.seed = 99;
  const RunTrace serial = run_convergecast(world, 1, &fault, nullptr);
  // Loss forces retransmissions and ACK traffic through the probe too.
  EXPECT_GT(serial.totals[static_cast<std::size_t>(TrafficCategory::kControl)],
            0u);
  for (const std::uint32_t k : kShardCounts) {
    expect_identical(serial, run_convergecast(world, k, &fault, nullptr), k);
  }
}

TEST(DeterminismTest, LatencyJitterPreservesTheSendStream) {
  const TestWorld world = TestWorld::make();
  LatencyModel latency;
  latency.min_delay = 1;
  latency.max_delay = 4;
  latency.seed = 7;
  const RunTrace serial = run_convergecast(world, 1, nullptr, &latency);
  for (const std::uint32_t k : kShardCounts) {
    expect_identical(serial, run_convergecast(world, k, nullptr, &latency), k);
  }
}

TEST(DeterminismTest, LossPlusLatencyPreservesTheSendStream) {
  const TestWorld world = TestWorld::make();
  LinkFaultModel fault;
  fault.loss_probability = 0.15;
  fault.seed = 3;
  LatencyModel latency;
  latency.min_delay = 1;
  latency.max_delay = 3;
  latency.seed = 21;
  const RunTrace serial = run_convergecast(world, 1, &fault, &latency);
  for (const std::uint32_t k : kShardCounts) {
    expect_identical(serial, run_convergecast(world, k, &fault, &latency), k);
  }
}

TEST(DeterminismTest, NetFilterEndToEndMatchesSerial) {
  const TestWorld world = TestWorld::make();
  const Value t = world.workload.threshold_for(0.01);

  const auto run_at = [&](std::uint32_t threads) {
    core::NetFilterConfig cfg;
    cfg.num_groups = 40;
    cfg.num_filters = 2;
    cfg.threads = threads;
    const core::NetFilter nf(cfg);
    TrafficMeter meter(kPeers);
    Overlay overlay = world.overlay;
    core::NetFilterResult r =
        nf.run(world.workload, world.hierarchy, overlay, meter, t);
    return std::make_tuple(std::move(r), meter.total(), meter.num_messages());
  };

  const auto [serial, serial_bytes, serial_msgs] = run_at(1);
  for (const std::uint32_t k : kShardCounts) {
    SCOPED_TRACE(::testing::Message() << "threads=" << k);
    const auto [sharded, bytes, msgs] = run_at(k);
    EXPECT_EQ(serial_bytes, bytes);
    EXPECT_EQ(serial_msgs, msgs);
    EXPECT_EQ(serial.stats.heavy_groups_total, sharded.stats.heavy_groups_total);
    EXPECT_EQ(serial.stats.num_candidates, sharded.stats.num_candidates);
    EXPECT_EQ(serial.stats.rounds_filtering, sharded.stats.rounds_filtering);
    EXPECT_EQ(serial.stats.rounds_verification,
              sharded.stats.rounds_verification);
    ASSERT_EQ(serial.frequent.size(), sharded.frequent.size());
    auto it = sharded.frequent.begin();
    for (const auto& [id, v] : serial.frequent) {
      EXPECT_EQ(id, it->first);
      EXPECT_EQ(v, it->second);
      ++it;
    }
  }
}

TEST(DeterminismTest, ObsMetricsAndSeriesMatchSerial) {
  const TestWorld world = TestWorld::make();
  const Value t = world.workload.threshold_for(0.01);

  const auto run_at = [&](std::uint32_t threads) {
    auto ctx = std::make_unique<obs::Context>();
    core::NetFilterConfig cfg;
    cfg.num_groups = 40;
    cfg.num_filters = 2;
    cfg.threads = threads;
    cfg.obs = ctx.get();
    const core::NetFilter nf(cfg);
    TrafficMeter meter(kPeers);
    Overlay overlay = world.overlay;
    (void)nf.run(world.workload, world.hierarchy, overlay, meter, t);
    return ctx;
  };

  const auto serial = run_at(1);
  for (const std::uint32_t k : kShardCounts) {
    SCOPED_TRACE(::testing::Message() << "threads=" << k);
    const auto sharded = run_at(k);
    // Every counter except the wall-clock timings must be bit-identical.
    for (const auto& [name, c] : serial->registry.counters()) {
      if (name.rfind("time_us/", 0) == 0) continue;
      EXPECT_EQ(c.value(), sharded->registry.counter(name).value()) << name;
    }
    // Deterministic series columns: same rows, same stamps, same deltas.
    // Busy/idle shard gauges are real time and excluded by construction
    // (they are gauge columns compared by explicit name below).
    EXPECT_EQ(serial->series.stamps(), sharded->series.stamps());
    for (const char* col :
         {"engine/sent", "engine/delivered", "engine/sent_bytes"}) {
      EXPECT_EQ(serial->series.counter_series(col),
                sharded->series.counter_series(col))
          << col;
    }
    EXPECT_EQ(serial->series.gauge_series("engine/in_flight"),
              sharded->series.gauge_series("engine/in_flight"));
    // Conformance runs are derived from deterministic stats, so the whole
    // report must agree too.
    EXPECT_EQ(obs::to_json(serial->conformance).dump(),
              obs::to_json(sharded->conformance).dump());
  }
}

TEST(DeterminismTest, GossipNetFilterMatchesSerial) {
  const TestWorld world = TestWorld::make();
  const Value t = world.workload.threshold_for(0.02);

  const auto run_at = [&](std::uint32_t threads) {
    core::GossipNetFilterConfig cfg;
    cfg.num_groups = 32;
    cfg.num_filters = 2;
    cfg.phase1_rounds = 30;
    cfg.phase2_rounds = 30;
    cfg.threads = threads;
    const core::GossipNetFilter gnf(cfg);
    TrafficMeter meter(kPeers);
    Overlay overlay = world.overlay;
    core::GossipNetFilterResult r =
        gnf.run(world.workload, overlay, PeerId(0), meter, t);
    return std::make_tuple(std::move(r), meter.total(), meter.num_messages());
  };

  const auto [serial, serial_bytes, serial_msgs] = run_at(1);
  for (const std::uint32_t k : kShardCounts) {
    SCOPED_TRACE(::testing::Message() << "threads=" << k);
    const auto [sharded, bytes, msgs] = run_at(k);
    EXPECT_EQ(serial_bytes, bytes);
    EXPECT_EQ(serial_msgs, msgs);
    EXPECT_EQ(serial.stats.heavy_groups_total, sharded.stats.heavy_groups_total);
    EXPECT_EQ(serial.stats.rounds, sharded.stats.rounds);
    ASSERT_EQ(serial.reported.size(), sharded.reported.size());
    auto it = sharded.reported.begin();
    for (const auto& [id, v] : serial.reported) {
      EXPECT_EQ(id, it->first);
      EXPECT_EQ(v, it->second);
      ++it;
    }
  }
}

}  // namespace
}  // namespace nf
