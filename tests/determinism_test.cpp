// Golden determinism suite for the sharded round engine (DESIGN.md §6c).
//
// The engine's contract is that the shard count is invisible: a K-shard run
// must produce the SAME execution as the serial engine, bit for bit — the
// same envelopes admitted in the same order (observed via set_send_probe),
// the same meter charges, and the same protocol results. These tests pin
// that contract for K ∈ {2, 4, 8} against K = 1, for plain runs and under
// the adversarial engine features (link loss, latency jitter), and for the
// full netFilter and gossip-netFilter drivers.
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "agg/convergecast.h"
#include "agg/flat_phases.h"
#include "agg/hierarchy.h"
#include "agg/multi_hierarchy.h"
#include "core/gossip_netfilter.h"
#include "core/netfilter.h"
#include "core/partitioned.h"
#include "core/query_service.h"
#include "core/tuner.h"
#include "net/engine.h"
#include "net/topology.h"
#include "obs/context.h"
#include "obs/export.h"
#include "workload/workload.h"

namespace nf {
namespace {

using net::Engine;
using net::Envelope;
using net::LatencyModel;
using net::LinkFaultModel;
using net::Overlay;
using net::TrafficCategory;
using net::TrafficMeter;

// 60 peers: not a multiple of 8, so every K in {2,4,8} gets uneven
// contiguous shards — the case where a sloppy merge would reorder sends.
constexpr std::uint32_t kPeers = 60;
constexpr std::uint32_t kShardCounts[] = {2, 4, 8};

struct TestWorld {
  wl::Workload workload;
  Overlay overlay;
  agg::Hierarchy hierarchy;

  static TestWorld make() {
    wl::WorkloadConfig wc;
    wc.num_peers = kPeers;
    wc.num_items = 2000;
    wc.seed = 11;
    wl::Workload w = wl::Workload::generate(wc);
    Rng rng(5);
    Overlay overlay(net::random_tree(kPeers, 3, rng));
    agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
    return TestWorld{std::move(w), std::move(overlay), std::move(h)};
  }
};

/// One admitted envelope, flattened for exact comparison. The payload is
/// protocol-internal; identity of (from, to, category, bytes) in identical
/// order pins the wire-visible execution.
using SendRecord = std::tuple<std::uint32_t, std::uint32_t, int, std::uint64_t>;

struct RunTrace {
  std::vector<SendRecord> sends;
  std::array<std::uint64_t, net::kNumTrafficCategories> totals{};
  std::uint64_t num_messages = 0;
  std::uint64_t rounds = 0;
  std::vector<Value> result;
};

/// Runs the fig5-style phase-1 convergecast (group aggregates up the
/// hierarchy) at the given shard count and records everything observable.
RunTrace run_convergecast(const TestWorld& world, std::uint32_t threads,
                          const LinkFaultModel* fault,
                          const LatencyModel* latency) {
  const core::NetFilter nf(core::NetFilterConfig{});
  TrafficMeter meter(kPeers);
  Overlay overlay = world.overlay;  // engines never mutate it, but stay safe
  Engine engine(overlay, meter);
  engine.set_threads(threads);
  if (fault != nullptr) engine.set_fault_model(*fault);
  if (latency != nullptr) engine.set_latency_model(*latency);

  RunTrace trace;
  engine.set_send_probe([&trace](const Envelope& env) {
    trace.sends.emplace_back(env.from.value(), env.to.value(),
                             static_cast<int>(env.category), env.bytes);
  });

  agg::Convergecast<std::vector<Value>> cast(
      world.hierarchy, TrafficCategory::kFiltering,
      [&](PeerId p) {
        return nf.local_group_aggregates(world.workload.local_items(p));
      },
      [](std::vector<Value>& acc, std::vector<Value>&& child) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += child[i];
      },
      [](const std::vector<Value>&) { return std::uint64_t{128}; });
  trace.rounds = engine.run(cast, 5000);
  EXPECT_TRUE(cast.complete());
  trace.result = cast.result();
  for (std::size_t c = 0; c < net::kNumTrafficCategories; ++c) {
    trace.totals[c] = meter.total(static_cast<TrafficCategory>(c));
  }
  trace.num_messages = meter.num_messages();
  return trace;
}

void expect_identical(const RunTrace& serial, const RunTrace& sharded,
                      std::uint32_t threads) {
  SCOPED_TRACE(::testing::Message() << "threads=" << threads);
  EXPECT_EQ(serial.rounds, sharded.rounds);
  EXPECT_EQ(serial.result, sharded.result);
  EXPECT_EQ(serial.totals, sharded.totals);
  EXPECT_EQ(serial.num_messages, sharded.num_messages);
  ASSERT_EQ(serial.sends.size(), sharded.sends.size());
  // Element-wise (not one big EQ) so a failure names the first divergence.
  for (std::size_t i = 0; i < serial.sends.size(); ++i) {
    ASSERT_EQ(serial.sends[i], sharded.sends[i]) << "send index " << i;
  }
}

TEST(DeterminismTest, ShardedConvergecastIsBitIdenticalToSerial) {
  const TestWorld world = TestWorld::make();
  const RunTrace serial = run_convergecast(world, 1, nullptr, nullptr);
  ASSERT_FALSE(serial.sends.empty());
  for (const std::uint32_t k : kShardCounts) {
    expect_identical(serial, run_convergecast(world, k, nullptr, nullptr), k);
  }
}

TEST(DeterminismTest, LossyLinksPreserveTheSendStream) {
  const TestWorld world = TestWorld::make();
  LinkFaultModel fault;
  fault.loss_probability = 0.25;
  fault.seed = 99;
  const RunTrace serial = run_convergecast(world, 1, &fault, nullptr);
  // Loss forces retransmissions and ACK traffic through the probe too.
  EXPECT_GT(serial.totals[static_cast<std::size_t>(TrafficCategory::kControl)],
            0u);
  for (const std::uint32_t k : kShardCounts) {
    expect_identical(serial, run_convergecast(world, k, &fault, nullptr), k);
  }
}

TEST(DeterminismTest, LatencyJitterPreservesTheSendStream) {
  const TestWorld world = TestWorld::make();
  LatencyModel latency;
  latency.min_delay = 1;
  latency.max_delay = 4;
  latency.seed = 7;
  const RunTrace serial = run_convergecast(world, 1, nullptr, &latency);
  for (const std::uint32_t k : kShardCounts) {
    expect_identical(serial, run_convergecast(world, k, nullptr, &latency), k);
  }
}

TEST(DeterminismTest, LossPlusLatencyPreservesTheSendStream) {
  const TestWorld world = TestWorld::make();
  LinkFaultModel fault;
  fault.loss_probability = 0.15;
  fault.seed = 3;
  LatencyModel latency;
  latency.min_delay = 1;
  latency.max_delay = 3;
  latency.seed = 21;
  const RunTrace serial = run_convergecast(world, 1, &fault, &latency);
  for (const std::uint32_t k : kShardCounts) {
    expect_identical(serial, run_convergecast(world, k, &fault, &latency), k);
  }
}

// Flat payloads raise the determinism bar from "same envelope stream" to
// "same wire bytes": slab-backed payload spans — written into per-shard
// outbox slabs and copied to transit-ring slots at the canonical-order
// merge barrier — must resolve to byte-identical content at every shard
// count, not just the same (from, to, category, bytes) metadata.
TEST(DeterminismTest, FlatPayloadBytesAreBitIdenticalAcrossShardCounts) {
  const TestWorld world = TestWorld::make();
  constexpr std::uint32_t kWidth = 80;  // f=2 banks of g=40 group sums

  struct FlatTrace {
    std::vector<SendRecord> sends;
    std::vector<net::Bytes> payloads;
    std::vector<Value> result;
  };

  const auto run_at = [&](std::uint32_t threads) {
    core::NetFilterConfig cfg;
    cfg.num_groups = 40;
    cfg.num_filters = 2;
    const core::NetFilter nf(cfg);
    TrafficMeter meter(kPeers);
    Overlay overlay = world.overlay;
    Engine engine(overlay, meter);
    engine.set_threads(threads);

    FlatTrace trace;
    // The probe fires at admission, after the engine parked the payload in
    // the delivery slot's slab — resolve() here reads the actual wire span.
    engine.set_send_probe([&trace, &engine](const Envelope& env) {
      trace.sends.emplace_back(env.from.value(), env.to.value(),
                               static_cast<int>(env.category), env.bytes);
      const std::span<const std::uint8_t> bytes = engine.resolve(env.flat);
      trace.payloads.emplace_back(bytes.begin(), bytes.end());
    });

    agg::FlatAggregateConvergecast cast(
        world.hierarchy, TrafficCategory::kFiltering, kWidth,
        [&](PeerId p, std::span<Value> out) {
          nf.local_group_aggregates_into(world.workload.local_items(p), out);
        },
        /*flat_bytes=*/0);
    engine.run(cast, 5000);
    EXPECT_TRUE(cast.complete());
    const std::span<const Value> result = cast.result();
    trace.result.assign(result.begin(), result.end());
    return trace;
  };

  const FlatTrace serial = run_at(1);
  ASSERT_FALSE(serial.sends.empty());
  // Every upward merge ships a real encoded payload, not an empty ref.
  for (const net::Bytes& p : serial.payloads) ASSERT_FALSE(p.empty());
  for (const std::uint32_t k : kShardCounts) {
    SCOPED_TRACE(::testing::Message() << "threads=" << k);
    const FlatTrace sharded = run_at(k);
    EXPECT_EQ(serial.result, sharded.result);
    ASSERT_EQ(serial.sends.size(), sharded.sends.size());
    for (std::size_t i = 0; i < serial.sends.size(); ++i) {
      ASSERT_EQ(serial.sends[i], sharded.sends[i]) << "send index " << i;
      ASSERT_EQ(serial.payloads[i], sharded.payloads[i])
          << "payload bytes diverge at send index " << i;
    }
  }
}

TEST(DeterminismTest, NetFilterEndToEndMatchesSerial) {
  const TestWorld world = TestWorld::make();
  const Value t = world.workload.threshold_for(0.01);

  const auto run_at = [&](std::uint32_t threads) {
    core::NetFilterConfig cfg;
    cfg.num_groups = 40;
    cfg.num_filters = 2;
    cfg.threads = threads;
    const core::NetFilter nf(cfg);
    TrafficMeter meter(kPeers);
    Overlay overlay = world.overlay;
    core::NetFilterResult r =
        nf.run(world.workload, world.hierarchy, overlay, meter, t);
    return std::make_tuple(std::move(r), meter.total(), meter.num_messages());
  };

  const auto [serial, serial_bytes, serial_msgs] = run_at(1);
  for (const std::uint32_t k : kShardCounts) {
    SCOPED_TRACE(::testing::Message() << "threads=" << k);
    const auto [sharded, bytes, msgs] = run_at(k);
    EXPECT_EQ(serial_bytes, bytes);
    EXPECT_EQ(serial_msgs, msgs);
    EXPECT_EQ(serial.stats.heavy_groups_total, sharded.stats.heavy_groups_total);
    EXPECT_EQ(serial.stats.num_candidates, sharded.stats.num_candidates);
    EXPECT_EQ(serial.stats.rounds_filtering, sharded.stats.rounds_filtering);
    EXPECT_EQ(serial.stats.rounds_verification,
              sharded.stats.rounds_verification);
    ASSERT_EQ(serial.frequent.size(), sharded.frequent.size());
    auto it = sharded.frequent.begin();
    for (const auto& [id, v] : serial.frequent) {
      EXPECT_EQ(id, it->first);
      EXPECT_EQ(v, it->second);
      ++it;
    }
  }
}

TEST(DeterminismTest, ObsMetricsAndSeriesMatchSerial) {
  const TestWorld world = TestWorld::make();
  const Value t = world.workload.threshold_for(0.01);

  const auto run_at = [&](std::uint32_t threads) {
    auto ctx = std::make_unique<obs::Context>();
    core::NetFilterConfig cfg;
    cfg.num_groups = 40;
    cfg.num_filters = 2;
    cfg.threads = threads;
    cfg.obs = ctx.get();
    const core::NetFilter nf(cfg);
    TrafficMeter meter(kPeers);
    Overlay overlay = world.overlay;
    (void)nf.run(world.workload, world.hierarchy, overlay, meter, t);
    return ctx;
  };

  const auto serial = run_at(1);
  for (const std::uint32_t k : kShardCounts) {
    SCOPED_TRACE(::testing::Message() << "threads=" << k);
    const auto sharded = run_at(k);
    // Every counter except the wall-clock timings must be bit-identical.
    for (const auto& [name, c] : serial->registry.counters()) {
      if (name.rfind("time_us/", 0) == 0) continue;
      if (name == "obs/overhead_us" || name == "engine/round_us") continue;
      EXPECT_EQ(c.value(), sharded->registry.counter(name).value()) << name;
    }
    // Deterministic series columns: same rows, same stamps, same deltas.
    // Busy/idle shard gauges are real time and excluded by construction
    // (they are gauge columns compared by explicit name below).
    EXPECT_EQ(serial->series.stamps(), sharded->series.stamps());
    for (const char* col :
         {"engine/sent", "engine/delivered", "engine/sent_bytes"}) {
      EXPECT_EQ(serial->series.counter_series(col),
                sharded->series.counter_series(col))
          << col;
    }
    EXPECT_EQ(serial->series.gauge_series("engine/in_flight"),
              sharded->series.gauge_series("engine/in_flight"));
    // Conformance runs are derived from deterministic stats, so the whole
    // report must agree too.
    EXPECT_EQ(obs::to_json(serial->conformance).dump(),
              obs::to_json(sharded->conformance).dump());
    // The topology telemetry plane is charged once, on the engine thread,
    // in canonical merge order — so the whole link_stats export (per-level
    // matrix, Misra-Gries hot list, predictions) must be byte-identical,
    // and so must the per-level series columns it binds.
    EXPECT_EQ(obs::to_json(serial->link_stats).dump(),
              obs::to_json(sharded->link_stats).dump());
    ASSERT_TRUE(serial->link_stats.configured());
    EXPECT_FALSE(serial->link_stats.links().ranked().empty());
    for (std::uint32_t d = 0; d < serial->link_stats.num_levels(); ++d) {
      const std::string col = "link/level" + std::to_string(d) + "/bytes";
      EXPECT_EQ(serial->series.counter_series(col),
                sharded->series.counter_series(col))
          << col;
    }
  }
}

// The link scheduler runs at the canonical-order merge barrier on the
// engine thread, so saturating congestion must not cost a single bit of
// determinism: under narrow links with a clamping backlog horizon, the
// full netFilter run — results, congestion counters, the backlog gauge
// series, and the link_stats congestion export — must be byte-identical
// serial vs sharded.
TEST(DeterminismTest, SaturatedCongestionMatchesSerial) {
  const TestWorld world = TestWorld::make();
  const Value t = world.workload.threshold_for(0.01);

  const auto run_at = [&](std::uint32_t threads) {
    auto ctx = std::make_unique<obs::Context>();
    core::NetFilterConfig cfg;
    cfg.num_groups = 40;
    cfg.num_filters = 2;
    cfg.threads = threads;
    cfg.obs = ctx.get();
    // Saturating: every message (f*g encoded group sums, ~100+ bytes)
    // overflows a 64-byte link, the root-adjacent links get an even
    // narrower override, and the tight horizon forces clamping.
    cfg.link.classes = net::LinkClassModel::uniform(64);
    std::vector<std::uint32_t> depths(kPeers);
    for (std::uint32_t p = 0; p < kPeers; ++p) {
      depths[p] = world.hierarchy.depth(PeerId(p));
    }
    cfg.link.classes.set_level_override(depths, 1, 24);
    cfg.link.max_backlog_rounds = 6;
    const core::NetFilter nf(cfg);
    TrafficMeter meter(kPeers);
    Overlay overlay = world.overlay;
    core::NetFilterResult r =
        nf.run(world.workload, world.hierarchy, overlay, meter, t);
    return std::make_tuple(std::move(r), std::move(ctx), meter.total(),
                           meter.num_messages());
  };

  const auto [serial, serial_ctx, serial_bytes, serial_msgs] = run_at(1);
  // The scenario actually saturates: messages queued, rounds stretched.
  EXPECT_GT(serial_ctx->registry.counter("engine/congestion/queued_msgs")
                .value(),
            0u);
  EXPECT_GT(
      serial_ctx->registry.counter("engine/congestion/queue_delay_rounds")
          .value(),
      0u);
  for (const std::uint32_t k : kShardCounts) {
    SCOPED_TRACE(::testing::Message() << "threads=" << k);
    const auto [sharded, ctx, bytes, msgs] = run_at(k);
    EXPECT_EQ(serial_bytes, bytes);  // contention costs rounds, not bytes
    EXPECT_EQ(serial_msgs, msgs);
    EXPECT_EQ(serial.stats.rounds_total, sharded.stats.rounds_total);
    EXPECT_EQ(serial.frequent, sharded.frequent);
    for (const auto& [name, c] : serial_ctx->registry.counters()) {
      if (name.rfind("time_us/", 0) == 0) continue;
      if (name == "obs/overhead_us" || name == "engine/round_us") continue;
      EXPECT_EQ(c.value(), ctx->registry.counter(name).value()) << name;
    }
    // The congestion telemetry columns specifically: same stamps, same
    // backlog trajectory per level, same utilization inputs.
    EXPECT_EQ(serial_ctx->series.stamps(), ctx->series.stamps());
    EXPECT_EQ(serial_ctx->series.gauge_series("engine/backlog_bytes"),
              ctx->series.gauge_series("engine/backlog_bytes"));
    ASSERT_TRUE(serial_ctx->link_stats.configured());
    for (std::uint32_t d = 0; d < serial_ctx->link_stats.num_levels(); ++d) {
      const std::string bytes_col =
          "link/level" + std::to_string(d) + "/bytes";
      EXPECT_EQ(serial_ctx->series.counter_series(bytes_col),
                ctx->series.counter_series(bytes_col))
          << bytes_col;
      const std::string backlog_col =
          "link/level" + std::to_string(d) + "/backlog_bytes";
      EXPECT_EQ(serial_ctx->series.gauge_series(backlog_col),
                ctx->series.gauge_series(backlog_col))
          << backlog_col;
    }
    // The whole export — per-level capacity rows, the congestion
    // sub-object, hot spill links — byte for byte.
    EXPECT_EQ(obs::to_json(serial_ctx->link_stats).dump(),
              obs::to_json(ctx->link_stats).dump());
  }
}

// The infinite-capacity LinkModel must be invisible: explicitly setting the
// default model on a netFilter run reproduces the no-model run bit for bit
// (same sends, bytes, rounds, results) — the committed-baseline guarantee.
TEST(DeterminismTest, InfiniteCapacityLinkModelIsInvisible) {
  const TestWorld world = TestWorld::make();
  const Value t = world.workload.threshold_for(0.01);

  const auto run_at = [&](bool explicit_model) {
    core::NetFilterConfig cfg;
    cfg.num_groups = 40;
    cfg.num_filters = 2;
    if (explicit_model) {
      cfg.link.classes = net::LinkClassModel::uniform(net::kInfiniteCapacity);
    }
    const core::NetFilter nf(cfg);
    TrafficMeter meter(kPeers);
    Overlay overlay = world.overlay;
    core::NetFilterResult r =
        nf.run(world.workload, world.hierarchy, overlay, meter, t);
    return std::make_tuple(r.frequent, r.stats.rounds_total, meter.total(),
                           meter.num_messages());
  };

  EXPECT_EQ(run_at(false), run_at(true));
}

// The pipelined session runtime must be a pure orchestration change: byte
// for byte the same answer and phase costs as the barriered three-run
// netFilter, in strictly fewer engine rounds — serial and sharded alike.
TEST(DeterminismTest, PipelinedNetFilterMatchesBarrieredInFewerRounds) {
  const TestWorld world = TestWorld::make();
  const Value t = world.workload.threshold_for(0.01);

  const auto run_at = [&](std::uint32_t threads, bool barriered) {
    core::NetFilterConfig cfg;
    cfg.num_groups = 40;
    cfg.num_filters = 2;
    cfg.threads = threads;
    cfg.barriered = barriered;
    const core::NetFilter nf(cfg);
    TrafficMeter meter(kPeers);
    Overlay overlay = world.overlay;
    core::NetFilterResult r =
        nf.run(world.workload, world.hierarchy, overlay, meter, t);
    return std::make_tuple(std::move(r), meter.total(), meter.num_messages());
  };

  const auto [barriered, b_bytes, b_msgs] = run_at(1, true);
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    const auto [pipelined, p_bytes, p_msgs] = run_at(threads, false);
    // Loss-free, the message set is identical — only the schedule differs.
    EXPECT_EQ(b_bytes, p_bytes);
    EXPECT_EQ(b_msgs, p_msgs);
    EXPECT_EQ(barriered.stats.heavy_groups_total,
              pipelined.stats.heavy_groups_total);
    EXPECT_EQ(barriered.stats.num_candidates, pipelined.stats.num_candidates);
    EXPECT_EQ(barriered.stats.num_frequent, pipelined.stats.num_frequent);
    EXPECT_EQ(barriered.stats.filtering_cost, pipelined.stats.filtering_cost);
    EXPECT_EQ(barriered.stats.dissemination_cost,
              pipelined.stats.dissemination_cost);
    EXPECT_EQ(barriered.stats.aggregation_cost,
              pipelined.stats.aggregation_cost);
    ASSERT_EQ(barriered.frequent.size(), pipelined.frequent.size());
    auto it = pipelined.frequent.begin();
    for (const auto& [id, v] : barriered.frequent) {
      EXPECT_EQ(id, it->first);
      EXPECT_EQ(v, it->second);
      ++it;
    }
    // The pipelining win itself: phase overlap saves whole rounds.
    EXPECT_GT(barriered.stats.rounds_total, 0u);
    EXPECT_LT(pipelined.stats.rounds_total, barriered.stats.rounds_total);
  }
}

// N queries multiplexed over one engine run must return bit-identical
// answers to the same queries run back to back, at every shard count.
TEST(DeterminismTest, ConcurrentSessionsMatchBackToBackRuns) {
  const TestWorld world = TestWorld::make();
  const std::vector<core::ConcurrentRequest> requests{
      {PeerId(3), 0.01, 0, 0, 0},
      {PeerId(20), 0.03, 3, 64, 77},  // its own filter bank
      {PeerId(41), 0.005, 0, 0, 0},
      {PeerId(9), 0.08, 2, 24, 5},
  };

  const auto serve_at = [&](std::uint32_t threads) {
    core::NetFilterConfig cfg;
    cfg.num_groups = 40;
    cfg.num_filters = 2;
    cfg.threads = threads;
    const core::QueryService svc(cfg);
    TrafficMeter meter(kPeers);
    Overlay overlay = world.overlay;
    core::ConcurrentQueryStats stats;
    auto responses = svc.serve_concurrent(requests, world.workload,
                                          world.hierarchy, overlay, meter,
                                          &stats);
    return std::make_tuple(std::move(responses), std::move(stats),
                           meter.total(), meter.num_messages());
  };

  const auto [serial, serial_stats, serial_bytes, serial_msgs] = serve_at(1);
  ASSERT_EQ(serial.size(), requests.size());

  // Back-to-back baseline: each request as its own netFilter run with the
  // same effective config and threshold.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    core::NetFilterConfig cfg;
    cfg.num_groups =
        requests[i].num_groups != 0 ? requests[i].num_groups : 40;
    cfg.num_filters =
        requests[i].num_filters != 0 ? requests[i].num_filters : 2;
    if (requests[i].filter_seed != 0) cfg.filter_seed = requests[i].filter_seed;
    const core::NetFilter nf(cfg);
    TrafficMeter meter(kPeers);
    Overlay overlay = world.overlay;
    const core::NetFilterResult solo = nf.run(
        world.workload, world.hierarchy, overlay, meter, serial[i].threshold);
    SCOPED_TRACE(::testing::Message() << "request " << i);
    EXPECT_EQ(solo.frequent, serial[i].frequent);
    EXPECT_EQ(solo.stats.heavy_groups_total,
              serial_stats.sessions[i].netfilter.heavy_groups_total);
    EXPECT_EQ(solo.stats.num_candidates,
              serial_stats.sessions[i].netfilter.num_candidates);
  }

  for (const std::uint32_t k : kShardCounts) {
    SCOPED_TRACE(::testing::Message() << "threads=" << k);
    const auto [sharded, sharded_stats, bytes, msgs] = serve_at(k);
    EXPECT_EQ(serial_bytes, bytes);
    EXPECT_EQ(serial_msgs, msgs);
    EXPECT_EQ(serial_stats.rounds_total, sharded_stats.rounds_total);
    ASSERT_EQ(serial.size(), sharded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].requester, sharded[i].requester);
      EXPECT_EQ(serial[i].threshold, sharded[i].threshold);
      EXPECT_EQ(serial[i].frequent, sharded[i].frequent) << "request " << i;
      EXPECT_EQ(serial_stats.sessions[i].traffic.total_bytes(),
                sharded_stats.sessions[i].traffic.total_bytes());
      EXPECT_EQ(serial_stats.sessions[i].traffic.total_msgs(),
                sharded_stats.sessions[i].traffic.total_msgs());
    }
  }
}

// The multi-hierarchy (partitioned) and sampling (tuner) paths compose the
// containers nf-lint polices hardest: random root draws, branch walks,
// Floyd index picks, and per-slice convergecasts. Tuning from branch
// samples and then running the partitioned filter over randomly replicated
// hierarchies must give byte-identical results AND byte-identical obs
// output, serial vs sharded.
TEST(DeterminismTest, PartitionedMultiHierarchyAndSamplingMatchSerial) {
  const TestWorld world = TestWorld::make();

  const auto run_at = [&](std::uint32_t threads) {
    auto ctx = std::make_unique<obs::Context>();
    TrafficMeter meter(kPeers);
    Overlay overlay = world.overlay;

    // Sampling path: g, f, and t all come from random-branch estimates.
    core::TunerConfig tc;
    tc.sampling.num_branches = 6;
    tc.sampling.items_per_peer = 8;
    tc.sampling.seed = 23;
    const core::TunedSetting tuned =
        core::tune(world.workload, world.hierarchy, 0.01, tc, &meter);

    core::NetFilterConfig base;
    base.threads = threads;
    base.obs = ctx.get();
    const core::PartitionedNetFilter pnf(tuned.to_config(base));

    // Multi-hierarchy path: three replicated roots drawn from a fresh RNG.
    Rng roots_rng(31);
    const agg::MultiHierarchy hierarchies =
        agg::MultiHierarchy::build_random(overlay, 3, roots_rng);
    core::PartitionedResult r =
        pnf.run(world.workload, hierarchies, overlay, meter, tuned.threshold);
    return std::make_tuple(std::move(r), tuned, std::move(ctx),
                           meter.total(), meter.num_messages());
  };

  const auto [serial, serial_tuned, serial_ctx, serial_bytes, serial_msgs] =
      run_at(1);
  ASSERT_GT(serial.frequent.size(), 0u);
  for (const std::uint32_t k : {2u, 4u}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << k);
    const auto [sharded, tuned, ctx, bytes, msgs] = run_at(k);
    // The tuner never touches the engine; its estimates must not depend on
    // the shard count at all.
    EXPECT_EQ(serial_tuned.num_groups, tuned.num_groups);
    EXPECT_EQ(serial_tuned.num_filters, tuned.num_filters);
    EXPECT_EQ(serial_tuned.threshold, tuned.threshold);
    EXPECT_EQ(serial_tuned.estimates.v_bar, tuned.estimates.v_bar);
    EXPECT_EQ(serial_tuned.estimates.r_hat, tuned.estimates.r_hat);
    EXPECT_EQ(serial_bytes, bytes);
    EXPECT_EQ(serial_msgs, msgs);
    EXPECT_EQ(serial.stats.rounds, sharded.stats.rounds);
    EXPECT_EQ(serial.stats.heavy_groups_total, sharded.stats.heavy_groups_total);
    EXPECT_EQ(serial.stats.num_candidates, sharded.stats.num_candidates);
    ASSERT_EQ(serial.frequent.size(), sharded.frequent.size());
    auto it = sharded.frequent.begin();
    for (const auto& [id, v] : serial.frequent) {
      EXPECT_EQ(id, it->first);
      EXPECT_EQ(v, it->second);
      ++it;
    }
    // Byte-identical obs output, wall-clock readings aside.
    for (const auto& [name, c] : serial_ctx->registry.counters()) {
      if (name.rfind("time_us/", 0) == 0) continue;
      if (name == "obs/overhead_us" || name == "engine/round_us") continue;
      EXPECT_EQ(c.value(), ctx->registry.counter(name).value()) << name;
    }
    EXPECT_EQ(serial_ctx->series.stamps(), ctx->series.stamps());
    for (const char* col :
         {"engine/sent", "engine/delivered", "engine/sent_bytes"}) {
      EXPECT_EQ(serial_ctx->series.counter_series(col),
                ctx->series.counter_series(col))
          << col;
    }
    EXPECT_EQ(serial_ctx->series.gauge_series("engine/in_flight"),
              ctx->series.gauge_series("engine/in_flight"));
    EXPECT_EQ(obs::to_json(serial_ctx->link_stats).dump(),
              obs::to_json(ctx->link_stats).dump());
  }
}

// Lineage ids are stamped by the engine in canonical merge order — the
// same total order that makes K-shard runs bit-identical — so the whole
// schema v5 lineage section (ids, parents, sampled extra edges, extracted
// critical paths and slack) must serialize byte-identically at every shard
// count.
TEST(DeterminismTest, LineageAndCriticalPathsMatchSerial) {
  const TestWorld world = TestWorld::make();
  const Value t = world.workload.threshold_for(0.01);

  const auto run_at = [&](std::uint32_t threads) {
    auto ctx = std::make_unique<obs::Context>();
    core::NetFilterConfig cfg;
    cfg.num_groups = 40;
    cfg.num_filters = 2;
    cfg.threads = threads;
    cfg.obs = ctx.get();
    const core::NetFilter nf(cfg);
    TrafficMeter meter(kPeers);
    Overlay overlay = world.overlay;
    (void)nf.run(world.workload, world.hierarchy, overlay, meter, t);
    return ctx;
  };

  const auto serial = run_at(1);
  EXPECT_GT(serial->lineage.total(), 0u);
  const std::vector<obs::CriticalPath> paths =
      obs::critical_paths(serial->lineage);
  ASSERT_FALSE(paths.empty());
  for (const obs::CriticalPath& p : paths) {
    ASSERT_FALSE(p.hops.empty());
    // Chains are causally ordered: each hop departs no earlier than the
    // previous hop's delivery round.
    for (std::size_t i = 1; i < p.hops.size(); ++i) {
      EXPECT_GE(p.hops[i].send_round, p.hops[i - 1].deliver_round);
    }
    EXPECT_EQ(p.hops.back().deliver_round, p.done_round);
  }
  const std::string serial_json = obs::to_json(serial->lineage).dump();
  for (const std::uint32_t k : kShardCounts) {
    SCOPED_TRACE(::testing::Message() << "threads=" << k);
    const auto sharded = run_at(k);
    EXPECT_EQ(serial_json, obs::to_json(sharded->lineage).dump());
  }
}

// Every multiplexed session's gating chain must end at the round the
// session recorded as done: the critical path's final delivery round IS
// the per-session rounds_total that serve_concurrent reports (and that
// `nf-inspect critical-path` cross-checks).
TEST(DeterminismTest, CriticalPathsTerminateAtSessionDone) {
  const TestWorld world = TestWorld::make();
  const std::vector<core::ConcurrentRequest> requests{
      {PeerId(3), 0.01, 0, 0, 0},
      {PeerId(20), 0.03, 3, 64, 77},
      {PeerId(41), 0.005, 0, 0, 0},
  };

  const auto serve_at = [&](std::uint32_t threads) {
    auto ctx = std::make_unique<obs::Context>();
    core::NetFilterConfig cfg;
    cfg.num_groups = 40;
    cfg.num_filters = 2;
    cfg.threads = threads;
    cfg.obs = ctx.get();
    const core::QueryService svc(cfg);
    TrafficMeter meter(kPeers);
    Overlay overlay = world.overlay;
    core::ConcurrentQueryStats stats;
    (void)svc.serve_concurrent(requests, world.workload, world.hierarchy,
                               overlay, meter, &stats);
    return std::make_tuple(std::move(ctx), std::move(stats));
  };

  const auto [serial_ctx, serial_stats] = serve_at(1);
  const std::vector<obs::CriticalPath> paths =
      obs::critical_paths(serial_ctx->lineage);
  ASSERT_EQ(paths.size(), requests.size());
  ASSERT_EQ(serial_stats.sessions.size(), requests.size());
  for (const obs::CriticalPath& p : paths) {
    ASSERT_FALSE(p.hops.empty());
    const core::ConcurrentSessionStats& ss = serial_stats.sessions[p.session];
    EXPECT_EQ(p.session_name, ss.name);
    EXPECT_EQ(p.done_round, ss.netfilter.rounds_total) << ss.name;
    EXPECT_EQ(p.hops.back().deliver_round, ss.netfilter.rounds_total)
        << ss.name;
    // Slack rows never report a delivery later than the session's done
    // round feeding its completion.
    for (const obs::PhaseSlack& s : p.slack) {
      EXPECT_EQ(s.slack_rounds,
                p.done_round > s.last_deliver_round
                    ? p.done_round - s.last_deliver_round
                    : 0u);
    }
  }
  const std::string serial_json = obs::to_json(serial_ctx->lineage).dump();
  for (const std::uint32_t k : kShardCounts) {
    SCOPED_TRACE(::testing::Message() << "threads=" << k);
    const auto [ctx, stats] = serve_at(k);
    EXPECT_EQ(serial_json, obs::to_json(ctx->lineage).dump());
    for (std::size_t i = 0; i < stats.sessions.size(); ++i) {
      EXPECT_EQ(serial_stats.sessions[i].netfilter.rounds_total,
                stats.sessions[i].netfilter.rounds_total);
    }
  }
}

TEST(DeterminismTest, GossipNetFilterMatchesSerial) {
  const TestWorld world = TestWorld::make();
  const Value t = world.workload.threshold_for(0.02);

  const auto run_at = [&](std::uint32_t threads) {
    core::GossipNetFilterConfig cfg;
    cfg.num_groups = 32;
    cfg.num_filters = 2;
    cfg.phase1_rounds = 30;
    cfg.phase2_rounds = 30;
    cfg.threads = threads;
    const core::GossipNetFilter gnf(cfg);
    TrafficMeter meter(kPeers);
    Overlay overlay = world.overlay;
    core::GossipNetFilterResult r =
        gnf.run(world.workload, overlay, PeerId(0), meter, t);
    return std::make_tuple(std::move(r), meter.total(), meter.num_messages());
  };

  const auto [serial, serial_bytes, serial_msgs] = run_at(1);
  for (const std::uint32_t k : kShardCounts) {
    SCOPED_TRACE(::testing::Message() << "threads=" << k);
    const auto [sharded, bytes, msgs] = run_at(k);
    EXPECT_EQ(serial_bytes, bytes);
    EXPECT_EQ(serial_msgs, msgs);
    EXPECT_EQ(serial.stats.heavy_groups_total, sharded.stats.heavy_groups_total);
    EXPECT_EQ(serial.stats.rounds, sharded.stats.rounds);
    ASSERT_EQ(serial.reported.size(), sharded.reported.size());
    auto it = sharded.reported.begin();
    for (const auto& [id, v] : serial.reported) {
      EXPECT_EQ(id, it->first);
      EXPECT_EQ(v, it->second);
      ++it;
    }
  }
}

}  // namespace
}  // namespace nf
