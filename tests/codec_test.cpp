#include "net/codec.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/hashing.h"
#include "common/rng.h"

namespace nf::net {
namespace {

TEST(VarintTest, KnownEncodings) {
  Bytes out;
  put_varint(out, 0);
  put_varint(out, 1);
  put_varint(out, 127);
  put_varint(out, 128);
  put_varint(out, 300);
  EXPECT_EQ(out, (Bytes{0x00, 0x01, 0x7F, 0x80, 0x01, 0xAC, 0x02}));
}

TEST(VarintTest, SizesMatchEncoding) {
  const std::uint64_t cases[] = {
      0, 1, 127, 128, 16383, 16384, std::uint64_t{1} << 40,
      std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : cases) {
    Bytes out;
    put_varint(out, v);
    EXPECT_EQ(out.size(), varint_size(v)) << v;
  }
}

TEST(VarintTest, RoundTripFuzz) {
  Rng rng(1);
  Bytes out;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 10000; ++i) {
    // Mix magnitudes: shift a random value by a random amount.
    const std::uint64_t v = rng() >> rng.below(64);
    values.push_back(v);
    put_varint(out, v);
  }
  std::size_t offset = 0;
  for (std::uint64_t expected : values) {
    EXPECT_EQ(get_varint(out, offset), expected);
  }
  EXPECT_EQ(offset, out.size());
}

TEST(VarintTest, TruncatedInputThrows) {
  Bytes out;
  put_varint(out, 1ull << 40);
  out.pop_back();
  std::size_t offset = 0;
  EXPECT_THROW((void)get_varint(out, offset), ProtocolError);
}

TEST(VarintTest, OverlongInputThrows) {
  const Bytes evil(11, 0x80);  // 11 continuation bytes > 64 bits
  std::size_t offset = 0;
  EXPECT_THROW((void)get_varint(evil, offset), ProtocolError);
}

TEST(SortedIdsTest, RoundTrip) {
  const std::vector<std::uint64_t> ids{3, 7, 8, 100, 100000, 1ull << 50};
  EXPECT_EQ(decode_sorted_ids(encode_sorted_ids(ids)), ids);
}

TEST(SortedIdsTest, EmptyAndSingle) {
  const std::vector<std::uint64_t> none;
  EXPECT_TRUE(decode_sorted_ids(encode_sorted_ids(none)).empty());
  const std::vector<std::uint64_t> one{42};
  EXPECT_EQ(decode_sorted_ids(encode_sorted_ids(one)), one);
}

TEST(SortedIdsTest, DenseIdsCompressWell) {
  // Heavy-group ids 0..99: deltas of ~1 cost 1 byte each.
  std::vector<std::uint64_t> dense(100);
  for (std::uint64_t i = 0; i < 100; ++i) dense[i] = i;
  const Bytes encoded = encode_sorted_ids(dense);
  EXPECT_LT(encoded.size(), 110u);  // vs 400 bytes at 4 bytes/id
}

TEST(SortedIdsTest, UnsortedInputRejected) {
  const std::vector<std::uint64_t> bad{5, 3};
  EXPECT_THROW((void)encode_sorted_ids(bad), InvalidArgument);
}

TEST(SortedIdsTest, TrailingGarbageRejected) {
  const std::vector<std::uint64_t> ids{1, 2};
  Bytes b = encode_sorted_ids(ids);
  b.push_back(0x00);
  EXPECT_THROW((void)decode_sorted_ids(b), ProtocolError);
}

TEST(PairsTest, RoundTripFuzz) {
  Rng rng(2);
  for (int iter = 0; iter < 50; ++iter) {
    ValueMap<ItemId, std::uint64_t> map;
    const std::uint64_t n = rng.below(200);
    for (std::uint64_t i = 0; i < n; ++i) {
      map.add(ItemId(hash64(i, static_cast<std::uint64_t>(iter))),
              rng.between(1, 1000000));
    }
    EXPECT_EQ(decode_pairs(encode_pairs(map)), map);
  }
}

TEST(AggregatesTest, RoundTripAndZeroCompression) {
  std::vector<std::uint64_t> values(300, 0);
  values[7] = 12;
  values[130] = 1ull << 33;
  EXPECT_EQ(decode_aggregates(encode_aggregates(values)), values);
  // Mostly-zero vector: ~1 byte per slot instead of 4.
  EXPECT_LT(encode_aggregates(values).size(), 320u);
}

TEST(AggregatesTest, Fixed32MatchesPaperModel) {
  std::vector<std::uint64_t> values(100, 77);
  const Bytes encoded = encode_aggregates_fixed32(values);
  // count varint + 4 bytes per slot: the paper's sa*g.
  EXPECT_EQ(encoded.size(), varint_size(100) + 400u);
  EXPECT_EQ(decode_aggregates_fixed32(encoded), values);
}

TEST(AggregatesTest, Fixed32ClampsOverflow) {
  const std::vector<std::uint64_t> values{std::uint64_t{1} << 40};
  const auto decoded = decode_aggregates_fixed32(
      encode_aggregates_fixed32(values));
  EXPECT_EQ(decoded[0], 0xFFFFFFFFull);
}

TEST(AggregatesTest, Fixed32LengthMismatchThrows) {
  const std::vector<std::uint64_t> values{1, 2};
  Bytes b = encode_aggregates_fixed32(values);
  b.pop_back();
  EXPECT_THROW((void)decode_aggregates_fixed32(b), ProtocolError);
}

// --- Slab-writer variants (net/payload.h) ----------------------------------
//
// The flat payload path encodes through a PayloadWriter into a slab arena;
// the wire bytes must be identical to the Bytes-returning encoders or the
// kVarintDelta charged sizes (and the pipelined-vs-barriered byte-equality
// invariant) silently drift.

Bytes slab_bytes(const SlabArena& slab, PayloadRef ref) {
  const std::span<const std::uint8_t> view = slab.view(ref.offset, ref.length);
  return Bytes(view.begin(), view.end());
}

TEST(SlabWriterTest, SortedIdsMatchLegacyEncoderBytes) {
  Rng rng(3);
  SlabArena slab;
  for (int iter = 0; iter < 100; ++iter) {
    // Random sorted id lists across magnitudes, including adversarial
    // varint boundaries (2^7k ± 1) where the LEB128 width flips.
    std::vector<std::uint64_t> ids;
    const std::uint64_t n = rng.below(100);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint64_t v = rng() >> rng.below(64);
      if (rng.below(4) == 0) {
        const std::uint64_t boundary = std::uint64_t{1}
                                       << (7 * (1 + rng.below(9)));
        v = rng.below(2) == 0 ? boundary - 1 : boundary;
      }
      ids.push_back(v);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

    PayloadWriter w(slab, 0);
    encode_sorted_ids_to(w, ids);
    const PayloadRef ref = w.finish();
    EXPECT_EQ(slab_bytes(slab, ref), encode_sorted_ids(ids)) << iter;
  }
}

TEST(SlabWriterTest, PairsMatchLegacyEncoderBytes) {
  Rng rng(4);
  SlabArena slab;
  for (int iter = 0; iter < 50; ++iter) {
    ValueMap<ItemId, std::uint64_t> map;
    const std::uint64_t n = rng.below(200);
    for (std::uint64_t i = 0; i < n; ++i) {
      map.add(ItemId(hash64(i, static_cast<std::uint64_t>(iter))),
              rng() >> rng.below(64));
    }
    PayloadWriter w(slab, 0);
    encode_pairs_to(w, map);
    const PayloadRef ref = w.finish();
    EXPECT_EQ(slab_bytes(slab, ref), encode_pairs(map)) << iter;
  }
}

TEST(SlabWriterTest, AggregatesMatchLegacyEncoderBytes) {
  Rng rng(5);
  SlabArena slab;
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::uint64_t> values(rng.below(400), 0);
    for (std::uint64_t& v : values) {
      if (rng.below(3) == 0) v = rng() >> rng.below(64);
    }
    PayloadWriter w(slab, 0);
    encode_aggregates_to(w, values);
    const PayloadRef ref = w.finish();
    EXPECT_EQ(slab_bytes(slab, ref), encode_aggregates(values)) << iter;
  }
}

TEST(SlabWriterTest, ConsecutiveWritesShareOneSlab) {
  SlabArena slab;
  PayloadWriter a(slab, 7);
  encode_sorted_ids_to(a, std::vector<std::uint64_t>{1, 2, 3});
  const PayloadRef ra = a.finish();
  PayloadWriter b(slab, 7);
  encode_sorted_ids_to(b, std::vector<std::uint64_t>{100, 200});
  const PayloadRef rb = b.finish();
  EXPECT_EQ(ra.slab, 7u);
  EXPECT_EQ(rb.offset, ra.offset + ra.length);  // back to back, no gaps
  EXPECT_EQ(slab_bytes(slab, ra),
            encode_sorted_ids(std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(slab_bytes(slab, rb),
            encode_sorted_ids(std::vector<std::uint64_t>{100, 200}));
}

TEST(AddAggregatesTest, AccumulatesWithoutIntermediateVector) {
  const std::vector<std::uint64_t> a{1, 0, 1ull << 40, 7};
  std::vector<std::uint64_t> acc{10, 20, 30, 40};
  add_aggregates_from(encode_aggregates(a), acc);
  EXPECT_EQ(acc, (std::vector<std::uint64_t>{11, 20, (1ull << 40) + 30, 47}));
}

TEST(AddAggregatesTest, WidthMismatchThrows) {
  const std::vector<std::uint64_t> a{1, 2, 3};
  std::vector<std::uint64_t> acc(4, 0);
  EXPECT_THROW(add_aggregates_from(encode_aggregates(a), acc), ProtocolError);
}

TEST(AddAggregatesTest, TruncatedInputThrows) {
  const std::vector<std::uint64_t> a{1, 1ull << 40};
  Bytes b = encode_aggregates(a);
  b.pop_back();
  std::vector<std::uint64_t> acc(2, 0);
  EXPECT_THROW(add_aggregates_from(b, acc), ProtocolError);
}

TEST(AddAggregatesTest, TrailingGarbageThrows) {
  const std::vector<std::uint64_t> a{1, 2};
  Bytes b = encode_aggregates(a);
  b.push_back(0x00);
  std::vector<std::uint64_t> acc(2, 0);
  EXPECT_THROW(add_aggregates_from(b, acc), ProtocolError);
}

}  // namespace
}  // namespace nf::net
