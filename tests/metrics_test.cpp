#include "net/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"

namespace nf::net {
namespace {

TEST(TrafficMeterTest, StartsAtZero) {
  const TrafficMeter m(4);
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(m.num_messages(), 0u);
  EXPECT_EQ(m.per_peer(), 0.0);
  EXPECT_EQ(m.max_peer_total(), 0u);
}

TEST(TrafficMeterTest, RecordsPerCategoryAndPeer) {
  TrafficMeter m(4);
  m.record(PeerId(0), TrafficCategory::kFiltering, 100);
  m.record(PeerId(1), TrafficCategory::kFiltering, 50);
  m.record(PeerId(1), TrafficCategory::kAggregation, 25);
  EXPECT_EQ(m.total(TrafficCategory::kFiltering), 150u);
  EXPECT_EQ(m.total(TrafficCategory::kAggregation), 25u);
  EXPECT_EQ(m.total(), 175u);
  EXPECT_EQ(m.peer_total(PeerId(1)), 75u);
  EXPECT_EQ(m.peer_total(PeerId(2)), 0u);
  EXPECT_EQ(m.num_messages(), 3u);
}

TEST(TrafficMeterTest, PerPeerIsAverageOverAllPeers) {
  TrafficMeter m(4);
  m.record(PeerId(0), TrafficCategory::kNaive, 100);
  EXPECT_DOUBLE_EQ(m.per_peer(TrafficCategory::kNaive), 25.0);
  EXPECT_DOUBLE_EQ(m.per_peer(), 25.0);
}

TEST(TrafficMeterTest, MaxPeerTotalFindsBottleneck) {
  TrafficMeter m(3);
  m.record(PeerId(0), TrafficCategory::kControl, 10);
  m.record(PeerId(2), TrafficCategory::kControl, 10);
  m.record(PeerId(2), TrafficCategory::kGossip, 15);
  EXPECT_EQ(m.max_peer_total(), 25u);
}

TEST(TrafficMeterTest, ResetClearsEverything) {
  TrafficMeter m(2);
  m.record(PeerId(0), TrafficCategory::kControl, 10);
  m.reset();
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(m.num_messages(), 0u);
  EXPECT_EQ(m.peer_total(PeerId(0)), 0u);
}

TEST(TrafficMeterTest, OutOfRangeSenderThrows) {
  TrafficMeter m(2);
  EXPECT_THROW(m.record(PeerId(2), TrafficCategory::kControl, 1),
               InvalidArgument);
}

TEST(TrafficMeterTest, PerPeerBreakdownIndexesByCategory) {
  TrafficMeter m(3);
  m.record(PeerId(1), TrafficCategory::kFiltering, 100);
  m.record(PeerId(1), TrafficCategory::kGossip, 7);
  const auto& row = m.per_peer_breakdown(PeerId(1));
  EXPECT_EQ(row[static_cast<std::size_t>(TrafficCategory::kFiltering)], 100u);
  EXPECT_EQ(row[static_cast<std::size_t>(TrafficCategory::kGossip)], 7u);
  EXPECT_EQ(row[static_cast<std::size_t>(TrafficCategory::kNaive)], 0u);
  // Untouched peers have an all-zero row.
  for (const std::uint64_t bytes : m.per_peer_breakdown(PeerId(0))) {
    EXPECT_EQ(bytes, 0u);
  }
  EXPECT_THROW(m.per_peer_breakdown(PeerId(3)), InvalidArgument);
}

TEST(TrafficMeterTest, WriteCsvEmitsPerPeerRowsAndTotals) {
  TrafficMeter m(2);
  m.record(PeerId(0), TrafficCategory::kFiltering, 10);
  m.record(PeerId(1), TrafficCategory::kAggregation, 5);
  std::ostringstream os;
  m.write_csv(os);

  std::vector<std::string> lines;
  std::istringstream is(os.str());
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  // Header + one row per peer + totals footer.
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0],
            "peer,filtering,dissemination,aggregation,naive,gossip,"
            "sampling,control,host-report,approx,total");
  EXPECT_EQ(lines[1], "0,10,0,0,0,0,0,0,0,0,10");
  EXPECT_EQ(lines[2], "1,0,0,5,0,0,0,0,0,0,5");
  EXPECT_EQ(lines[3], "total,10,0,5,0,0,0,0,0,0,15");
}

TEST(TrafficCategoryTest, NamesAreStable) {
  EXPECT_EQ(to_string(TrafficCategory::kFiltering), "filtering");
  EXPECT_EQ(to_string(TrafficCategory::kDissemination), "dissemination");
  EXPECT_EQ(to_string(TrafficCategory::kAggregation), "aggregation");
  EXPECT_EQ(to_string(TrafficCategory::kNaive), "naive");
  EXPECT_EQ(to_string(TrafficCategory::kApprox), "approx");
}

}  // namespace
}  // namespace nf::net
