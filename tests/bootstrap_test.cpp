#include "agg/bootstrap.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "workload/workload.h"

namespace nf::agg {
namespace {

using net::Overlay;
using net::TrafficMeter;

TEST(BootstrapTest, ComputesVAndNExactly) {
  wl::WorkloadConfig wc;
  wc.num_peers = 60;
  wc.num_items = 2000;
  wc.seed = 1;
  const wl::Workload workload = wl::Workload::generate(wc);
  Rng rng(2);
  Overlay overlay(net::random_tree(60, 3, rng));
  TrafficMeter meter(60);
  const Hierarchy h = build_bfs_hierarchy(overlay, PeerId(0));

  const BootstrapTotals totals =
      bootstrap_totals(workload, h, overlay, meter, WireSizes{});
  EXPECT_EQ(totals.v_total, workload.total_value());
  EXPECT_EQ(totals.num_members, 60u);
  // Two aggregate fields per non-root member.
  EXPECT_EQ(meter.total(net::TrafficCategory::kSampling), 59u * 8);
  EXPECT_GT(totals.rounds, 0u);
}

TEST(BootstrapTest, CountsOnlyMembers) {
  wl::WorkloadConfig wc;
  wc.num_peers = 20;
  wc.num_items = 200;
  wc.seed = 3;
  const wl::Workload workload = wl::Workload::generate(wc);
  Rng rng(4);
  Overlay overlay(net::random_connected(20, 4.0, rng));
  TrafficMeter meter(20);
  std::vector<double> uptime(20);
  for (auto& u : uptime) u = rng.uniform();
  const auto participant = select_stable_peers(uptime, 0.5, PeerId(0));
  const Hierarchy h = build_bfs_hierarchy(overlay, PeerId(0), participant);

  const BootstrapTotals totals =
      bootstrap_totals(workload, h, overlay, meter, WireSizes{});
  EXPECT_EQ(totals.num_members, h.num_members());
  Value expect = 0;
  for (std::uint32_t p = 0; p < 20; ++p) {
    if (h.is_member(PeerId(p))) {
      expect += workload.local_items(PeerId(p)).total();
    }
  }
  EXPECT_EQ(totals.v_total, expect);
}

}  // namespace
}  // namespace nf::agg
