#include "core/naive.h"

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace nf::core {
namespace {

using net::Overlay;
using net::TrafficMeter;

struct Rig {
  Rig(std::uint32_t num_peers, std::uint64_t num_items, double alpha,
      std::uint64_t seed)
      : workload([&] {
          wl::WorkloadConfig cfg;
          cfg.num_peers = num_peers;
          cfg.num_items = num_items;
          cfg.alpha = alpha;
          cfg.seed = seed;
          return wl::Workload::generate(cfg);
        }()),
        overlay([&] {
          Rng rng(seed + 1);
          return Overlay(net::random_tree(num_peers, 3, rng));
        }()),
        meter(num_peers),
        hierarchy(agg::build_bfs_hierarchy(overlay, PeerId(0))) {}

  wl::Workload workload;
  Overlay overlay;
  TrafficMeter meter;
  agg::Hierarchy hierarchy;
};

TEST(NaiveTest, ExactResult) {
  Rig rig(80, 5000, 1.0, 1);
  const Value t = rig.workload.threshold_for(0.01);
  const NaiveCollector naive(WireSizes{});
  const NaiveResult res =
      naive.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, t);
  EXPECT_EQ(res.frequent, rig.workload.frequent_items(t));
  EXPECT_EQ(res.stats.num_frequent, res.frequent.size());
}

TEST(NaiveTest, CostWithinFormula2Bounds) {
  Rig rig(100, 20000, 1.0, 2);
  const Value t = rig.workload.threshold_for(0.01);
  const NaiveCollector naive(WireSizes{});
  const NaiveResult res =
      naive.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, t);
  const double o = rig.workload.avg_local_distinct();
  const WireSizes wire;
  // Lower bound has slack: the root propagates nothing, so the average over
  // peers can fall just below (sa+si)*o.
  EXPECT_GE(res.stats.cost_per_peer,
            cost_model::naive_cost_lower(wire, o) * 0.9);
  EXPECT_LE(res.stats.cost_per_peer,
            cost_model::naive_cost_upper(wire, o,
                                         rig.hierarchy.height()));
}

TEST(NaiveTest, CostFarBelowNTimesN) {
  // The paper's observation: C_naive is near o, not n*N.
  Rig rig(100, 20000, 1.0, 3);
  const Value t = rig.workload.threshold_for(0.01);
  const NaiveCollector naive(WireSizes{});
  const NaiveResult res =
      naive.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, t);
  const double full_broadcast = 8.0 * static_cast<double>(
      rig.workload.num_distinct());
  EXPECT_LT(res.stats.cost_per_peer, full_broadcast);
}

TEST(NaiveTest, ItemsPerPeerMatchesBytes) {
  Rig rig(50, 3000, 1.0, 4);
  const Value t = rig.workload.threshold_for(0.01);
  const NaiveCollector naive(WireSizes{});
  const NaiveResult res =
      naive.run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, t);
  EXPECT_NEAR(res.stats.items_per_peer * 8.0, res.stats.cost_per_peer, 1e-9);
}

TEST(NaiveTest, SkewReducesCost) {
  auto cost_at = [](double alpha) {
    Rig rig(60, 10000, alpha, 5);
    const Value t = rig.workload.threshold_for(0.01);
    const NaiveCollector naive(WireSizes{});
    return naive
        .run(rig.workload, rig.hierarchy, rig.overlay, rig.meter, t)
        .stats.cost_per_peer;
  };
  // More skew -> fewer distinct items in circulation -> cheaper collection.
  EXPECT_LT(cost_at(3.0), cost_at(0.5));
}

TEST(NaiveTest, ZeroThresholdRejected) {
  Rig rig(10, 100, 1.0, 6);
  const NaiveCollector naive(WireSizes{});
  EXPECT_THROW((void)naive.run(rig.workload, rig.hierarchy, rig.overlay,
                               rig.meter, 0),
               InvalidArgument);
}

}  // namespace
}  // namespace nf::core
