#include "agg/multicast.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace nf::agg {
namespace {

using net::Engine;
using net::Overlay;
using net::Topology;
using net::TrafficCategory;
using net::TrafficMeter;

struct Fixture {
  explicit Fixture(Topology topo)
      : overlay(std::move(topo)),
        meter(overlay.num_peers()),
        hierarchy(build_bfs_hierarchy(overlay, PeerId(0))) {}

  Overlay overlay;
  TrafficMeter meter;
  Hierarchy hierarchy;
};

TEST(MulticastTest, EveryMemberReceivesExactlyOnce) {
  Rng rng(1);
  Fixture fx(net::random_tree(100, 3, rng));
  std::multiset<std::uint32_t> receivers;
  Multicast<std::string> mc(
      fx.hierarchy, TrafficCategory::kDissemination, "payload", 16,
      [&](PeerId p, const std::string& s) {
        EXPECT_EQ(s, "payload");
        receivers.insert(p.value());
      });
  Engine engine(fx.overlay, fx.meter);
  engine.run(mc, 200);
  ASSERT_TRUE(mc.complete());
  EXPECT_EQ(mc.num_received(), 100u);
  EXPECT_EQ(receivers.size(), 100u);
  for (std::uint32_t p = 0; p < 100; ++p) {
    EXPECT_EQ(receivers.count(p), 1u) << "peer " << p;
  }
}

TEST(MulticastTest, ChargesOneMessagePerEdge) {
  Rng rng(2);
  Fixture fx(net::random_tree(64, 4, rng));
  Multicast<int> mc(fx.hierarchy, TrafficCategory::kDissemination, 7, 10,
                    [](PeerId, const int&) {});
  Engine engine(fx.overlay, fx.meter);
  engine.run(mc, 100);
  // N-1 tree edges, one message of 10 bytes each.
  EXPECT_EQ(fx.meter.num_messages(), 63u);
  EXPECT_EQ(fx.meter.total(TrafficCategory::kDissemination), 630u);
}

TEST(MulticastTest, CompletesInHeightRounds) {
  Topology t(6);
  for (std::uint32_t i = 0; i + 1 < 6; ++i) {
    t.add_edge(PeerId(i), PeerId(i + 1));
  }
  Fixture fx(std::move(t));
  Multicast<int> mc(fx.hierarchy, TrafficCategory::kDissemination, 1, 1,
                    [](PeerId, const int&) {});
  Engine engine(fx.overlay, fx.meter);
  const std::uint64_t rounds = engine.run(mc, 100);
  EXPECT_TRUE(mc.complete());
  EXPECT_LE(rounds, fx.hierarchy.height() + 1);
}

TEST(MulticastTest, SingletonRootOnlyDeliversLocally) {
  Fixture fx{Topology(1)};
  int deliveries = 0;
  Multicast<int> mc(fx.hierarchy, TrafficCategory::kDissemination, 1, 1,
                    [&](PeerId, const int&) { ++deliveries; });
  Engine engine(fx.overlay, fx.meter);
  engine.run(mc, 10);
  EXPECT_TRUE(mc.complete());
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(fx.meter.total(), 0u);
}

TEST(MulticastTest, RootHandlerRunsFirst) {
  Rng rng(3);
  Fixture fx(net::random_tree(30, 3, rng));
  std::vector<std::uint32_t> order;
  Multicast<int> mc(fx.hierarchy, TrafficCategory::kDissemination, 1, 1,
                    [&](PeerId p, const int&) { order.push_back(p.value()); });
  Engine engine(fx.overlay, fx.meter);
  engine.run(mc, 100);
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.front(), 0u);
  // Delivery order respects depth: a child never precedes its parent.
  std::vector<std::uint32_t> depth_at_delivery;
  for (std::uint32_t p : order) {
    depth_at_delivery.push_back(fx.hierarchy.depth(PeerId(p)));
  }
  EXPECT_TRUE(std::is_sorted(depth_at_delivery.begin(),
                             depth_at_delivery.end()));
}

}  // namespace
}  // namespace nf::agg
