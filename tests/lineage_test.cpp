// Causal lineage layer (obs/lineage.h, docs/OBSERVABILITY.md "Causal
// lineage"): DAG recording, critical-path extraction, and the structural
// guarantee the Perfetto flow export rides on — a node dropped by the
// fault model or churn is never delivered, so neither the critical paths
// nor the flow arrows may ever reference it, and every gating chain still
// terminates at the session's done() round.
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "agg/convergecast.h"
#include "agg/hierarchy.h"
#include "common/rng.h"
#include "net/churn.h"
#include "net/engine.h"
#include "net/flood.h"
#include "net/topology.h"
#include "obs/context.h"
#include "obs/export.h"
#include "obs/lineage.h"
#include "obs/trace_event.h"

namespace nf {
namespace {

using net::Engine;
using net::Overlay;
using net::TrafficCategory;
using net::TrafficMeter;
using obs::CriticalPath;
using obs::LineageRecorder;

constexpr std::uint32_t kPeers = 40;

struct World {
  Overlay overlay;
  agg::Hierarchy hierarchy;

  static World make() {
    Rng rng(17);
    Overlay overlay(net::random_tree(kPeers, 3, rng));
    agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
    return World{std::move(overlay), std::move(h)};
  }
};

/// Sum-convergecast with a named phase so the trace grows an "agg" span
/// track for the flow arrows to bind to.
std::uint64_t run_convergecast(World& world, obs::Context& ctx,
                               const net::LinkFaultModel* fault = nullptr,
                               std::uint64_t* retransmissions = nullptr) {
  net::SessionMux mux(&ctx);
  const net::SessionId sid = mux.add_session();
  agg::ConvergecastPhase<std::uint64_t> phase(
      world.hierarchy, TrafficCategory::kAggregation,
      [](PeerId p) { return std::uint64_t{p.value() + 1}; },
      [](std::uint64_t& acc, std::uint64_t&& child) { acc += child; },
      [](const std::uint64_t&) { return std::uint64_t{16}; }, &ctx);
  net::PhaseOptions opts;
  opts.start = net::PhaseStart::kAllPeers;
  opts.open_on_message = false;
  opts.name = "agg";
  (void)mux.add_phase(sid, phase, opts);

  TrafficMeter meter(kPeers);
  Engine engine(world.overlay, meter);
  engine.set_obs(&ctx);
  if (fault != nullptr) engine.set_fault_model(*fault);
  const std::uint64_t rounds = engine.run(mux, 5000);
  EXPECT_TRUE(phase.complete());
  if (retransmissions != nullptr) *retransmissions = engine.retransmissions();
  return rounds;
}

/// Every node id a critical path references must be retained and delivered.
void expect_paths_reference_only_delivered(
    const LineageRecorder& rec, const std::vector<CriticalPath>& paths) {
  for (const CriticalPath& p : paths) {
    ASSERT_FALSE(p.hops.empty());
    for (const obs::CriticalHop& h : p.hops) {
      EXPECT_TRUE(rec.retained(h.id)) << "hop id " << h.id;
      EXPECT_TRUE(rec.was_delivered(h.id)) << "hop id " << h.id;
      EXPECT_LT(h.send_round, h.deliver_round);
    }
    // The chain terminates at (never after) the session's done() round.
    EXPECT_LE(p.hops.back().deliver_round, p.done_round);
    for (std::size_t i = 1; i < p.hops.size(); ++i) {
      EXPECT_GE(p.hops[i].send_round, p.hops[i - 1].deliver_round);
    }
  }
}

TEST(LineageTest, ConvergecastBuildsACausalChainEndingAtDone) {
  World world = World::make();
  obs::Context ctx;
  run_convergecast(world, ctx);

  const LineageRecorder& rec = ctx.lineage;
  ASSERT_GT(rec.total(), 0u);
  EXPECT_EQ(rec.dropped_nodes(), 0u);
  ASSERT_EQ(rec.runs().size(), 1u);

  // Ids are a topological order: every recorded parent precedes its child.
  for (obs::LineageId id = rec.first_retained_id(); id <= rec.total(); ++id) {
    const LineageRecorder::NodeView n = rec.node(id);
    if (n.parent != obs::kNoLineage) {
      EXPECT_LT(n.parent, id);
    }
  }
  for (const obs::LineageEdge& e : rec.extra_edges()) {
    EXPECT_LT(e.parent, e.child);
  }

  const std::vector<CriticalPath> paths = obs::critical_paths(rec);
  ASSERT_EQ(paths.size(), 1u);
  expect_paths_reference_only_delivered(rec, paths);
  // Loss-free, the gating delivery is the root's last merge: exactly at the
  // session's recorded done round.
  EXPECT_EQ(paths[0].hops.back().deliver_round, paths[0].done_round);
  EXPECT_EQ(paths[0].hops.back().phase_name, "agg");
}

TEST(LineageTest, LossNeverLeaksUndeliveredNodesIntoPathsOrFlows) {
  World world = World::make();
  obs::Context ctx;
  net::LinkFaultModel fault;
  fault.loss_probability = 0.3;
  fault.seed = 12;
  std::uint64_t retransmissions = 0;
  run_convergecast(world, ctx, &fault, &retransmissions);
  // The link really ate messages; the reliability layer recovered them, so
  // recovered hops stretch across the retransmission delay and the path
  // must follow the delivered copies.
  ASSERT_GT(retransmissions, 0u);

  const LineageRecorder& rec = ctx.lineage;
  const obs::LineageId lo =
      std::max(rec.runs().back().first_id, rec.first_retained_id());
  std::set<std::uint64_t> delivered_clocks;
  for (obs::LineageId id = lo; id <= rec.total(); ++id) {
    if (rec.was_delivered(id)) {
      delivered_clocks.insert(rec.node(id).send_clock);
      delivered_clocks.insert(rec.node(id).deliver_clock);
    }
  }

  const std::vector<CriticalPath> paths = obs::critical_paths(rec);
  ASSERT_EQ(paths.size(), 1u);
  expect_paths_reference_only_delivered(rec, paths);
  EXPECT_EQ(paths[0].hops.back().deliver_round, paths[0].done_round);

  // Flow arrows in the Perfetto export bind only to clocks of delivered
  // nodes — never to a dropped message's send/deliver time.
  const obs::Json trace = obs::trace_event_json(ctx);
  const obs::Json* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t starts = 0;
  std::size_t finishes = 0;
  for (const obs::Json& e : events->as_array()) {
    const obs::Json* cat = e.find("cat");
    if (cat == nullptr || cat->as_string() != "lineage") continue;
    const std::string ph = e.at("ph").as_string();
    if (ph == "s") ++starts;
    if (ph == "f") ++finishes;
    const auto ts = static_cast<std::uint64_t>(e.at("ts").as_double());
    EXPECT_EQ(delivered_clocks.count(ts), 1u) << "flow ts " << ts;
  }
  EXPECT_EQ(starts, 1u);
  EXPECT_EQ(finishes, 1u);
}

TEST(LineageTest, ChurnedPeerDropsOutOfCriticalPaths) {
  // One session, two concurrent phases: a convergecast that gates
  // completion, and a flood whose copy to the churned leaf is in flight
  // when the leaf dies. The dropped copy becomes a permanently undelivered
  // lineage node and must never surface in the gating chain; the chain
  // still terminates at the session's done() round.
  Rng rng(23);
  Overlay overlay(net::random_tree(kPeers, 3, rng));
  obs::Context ctx;

  // BFS from the originator: a peer at depth d receives the flood during
  // iteration d, so its parent's copy is in flight exactly then.
  std::vector<std::uint32_t> depth(kPeers, 0);
  std::vector<PeerId> frontier{PeerId(0)};
  std::vector<bool> seen(kPeers, false);
  seen[0] = true;
  PeerId victim(0);
  while (!frontier.empty()) {
    std::vector<PeerId> next;
    for (const PeerId p : frontier) {
      for (const PeerId n : overlay.neighbors(p)) {
        if (seen[n.value()]) continue;
        seen[n.value()] = true;
        depth[n.value()] = depth[p.value()] + 1;
        victim = n;  // last one discovered = a deepest peer
        next.push_back(n);
      }
    }
    frontier = std::move(next);
  }
  ASSERT_GE(depth[victim.value()], 2u);

  agg::Hierarchy hierarchy = agg::build_bfs_hierarchy(overlay, PeerId(0));

  net::SessionMux mux(&ctx);
  const net::SessionId sid = mux.add_session();
  agg::ConvergecastPhase<std::uint64_t> cast(
      hierarchy, TrafficCategory::kAggregation,
      [](PeerId p) { return std::uint64_t{p.value() + 1}; },
      [](std::uint64_t& acc, std::uint64_t&& child) { acc += child; },
      [](const std::uint64_t&) { return std::uint64_t{16}; }, &ctx);
  net::PhaseOptions cast_opts;
  cast_opts.start = net::PhaseStart::kAllPeers;
  cast_opts.open_on_message = false;
  cast_opts.name = "agg";
  (void)mux.add_phase(sid, cast, cast_opts);

  std::uint32_t receipts = 0;
  net::FloodPhase<std::uint32_t> flood(
      PeerId(0), 7u, 8, TrafficCategory::kDissemination, /*ttl=*/16,
      [&receipts](net::PhaseContext&, const std::uint32_t&) { ++receipts; });
  net::PhaseOptions flood_opts;
  flood_opts.start = net::PhaseStart::kAllPeers;
  flood_opts.name = "flood";
  (void)mux.add_phase(sid, flood, flood_opts);

  // The victim is a deepest leaf: its convergecast contribution is already
  // delivered at round 1, and the flood copy addressed to it is in flight
  // when churn (applied at the top of the round, before delivery) kills it
  // — so the network drops that copy and its node stays undelivered.
  net::ChurnSchedule churn;
  churn.fail_at(depth[victim.value()], victim);

  TrafficMeter meter(kPeers);
  Engine engine(overlay, meter);
  engine.set_obs(&ctx);
  (void)engine.run(mux, 100, &churn);
  EXPECT_TRUE(cast.complete());
  EXPECT_GT(receipts, 0u);
  EXPECT_FALSE(flood.reached(victim));

  const LineageRecorder& rec = ctx.lineage;
  std::size_t undelivered = 0;
  for (obs::LineageId id = rec.first_retained_id(); id <= rec.total(); ++id) {
    if (!rec.was_delivered(id)) ++undelivered;
  }
  ASSERT_GT(undelivered, 0u);

  const std::vector<CriticalPath> paths = obs::critical_paths(ctx.lineage);
  ASSERT_EQ(paths.size(), 1u);
  expect_paths_reference_only_delivered(ctx.lineage, paths);
  EXPECT_EQ(paths[0].hops.back().deliver_round, paths[0].done_round);
  for (const obs::CriticalHop& h : paths[0].hops) {
    EXPECT_NE(h.to, victim.value());
  }
}

TEST(LineageTest, TinyRingWrapsWithoutBreakingAnalysis) {
  World world = World::make();
  obs::Context ctx(/*trace_capacity=*/4096, /*series_capacity=*/4096,
                   /*lineage_capacity=*/8);
  run_convergecast(world, ctx);

  const LineageRecorder& rec = ctx.lineage;
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_GT(rec.dropped_nodes(), 0u);
  EXPECT_EQ(rec.first_retained_id(), rec.total() - 7);

  // Analysis over the surviving window stays well-formed: retained,
  // delivered hops in causal order, nothing referencing evicted ids.
  const std::vector<CriticalPath> paths = obs::critical_paths(rec);
  expect_paths_reference_only_delivered(rec, paths);
  const obs::Json j = obs::to_json(rec);
  const obs::Json* nodes = j.find("nodes");
  ASSERT_NE(nodes, nullptr);
  EXPECT_LE(nodes->at("id").size(), 8u);
  EXPECT_EQ(static_cast<std::uint64_t>(j.at("dropped_nodes").as_double()),
            rec.dropped_nodes());
}

TEST(LineageTest, ReservoirEdgeSamplingIsDeterministic) {
  const auto build = [] {
    LineageRecorder rec(/*capacity=*/64, /*edge_capacity=*/4);
    for (std::uint64_t i = 1; i <= 40; ++i) {
      const obs::LineageId id =
          rec.admit(/*parent=*/i > 1 ? i - 1 : 0, PeerId(0), PeerId(1),
                    /*session=*/0, /*phase=*/0, /*bytes=*/8,
                    /*send_clock=*/i);
      rec.delivered(id, i + 1);
      // Two extra parents per node once enough ancestors exist.
      if (i > 4) {
        rec.link(id, i - 2);
        rec.link(id, i - 3);
      }
    }
    return rec;
  };
  const LineageRecorder a = build();
  const LineageRecorder b = build();
  EXPECT_GT(a.edges_seen(), a.edge_capacity());
  ASSERT_EQ(a.extra_edges().size(), a.edge_capacity());
  for (std::size_t i = 0; i < a.extra_edges().size(); ++i) {
    EXPECT_EQ(a.extra_edges()[i].parent, b.extra_edges()[i].parent);
    EXPECT_EQ(a.extra_edges()[i].child, b.extra_edges()[i].child);
  }
}

}  // namespace
}  // namespace nf
