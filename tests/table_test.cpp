#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace nf {
namespace {

TEST(TableWriterTest, PrintsHeaderAndRule) {
  std::ostringstream os;
  TableWriter t({"a", "b"}, os, 6);
  const std::string out = os.str();
  EXPECT_NE(out.find("     a     b"), std::string::npos);
  EXPECT_NE(out.find("------------"), std::string::npos);
}

TEST(TableWriterTest, FormatsMixedCellTypes) {
  std::ostringstream os;
  TableWriter t({"x", "y", "z"}, os, 10);
  t.row(7, 3.14159, "hi");
  const std::string out = os.str();
  EXPECT_NE(out.find("         7"), std::string::npos);
  EXPECT_NE(out.find("      3.14"), std::string::npos);
  EXPECT_NE(out.find("        hi"), std::string::npos);
}

TEST(TableWriterTest, SmallFloatsKeepSignificantDigits) {
  std::ostringstream os;
  TableWriter t({"eps"}, os, 12);
  t.row(0.0002);
  t.row(0.05);
  t.row(0.0);
  const std::string out = os.str();
  EXPECT_NE(out.find("0.0002"), std::string::npos);
  EXPECT_NE(out.find("0.050"), std::string::npos);
  EXPECT_NE(out.find("0.00\n"), std::string::npos);  // zero prints plainly
}

TEST(TableWriterTest, LargeFloatsUseTwoDecimals) {
  std::ostringstream os;
  TableWriter t({"v"}, os, 12);
  t.row(12345.6789);
  EXPECT_NE(os.str().find("12345.68"), std::string::npos);
}

TEST(TableWriterTest, RowsEndWithNewline) {
  std::ostringstream os;
  TableWriter t({"v"}, os, 8);
  t.row(1);
  t.row(2);
  const std::string out = os.str();
  // Header + rule + 2 rows = 4 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

}  // namespace
}  // namespace nf
