#include "core/gossip_netfilter.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "workload/workload.h"

namespace nf::core {
namespace {

using net::Overlay;
using net::TrafficMeter;

struct Rig {
  Rig(std::uint32_t num_peers, std::uint64_t num_items, std::uint64_t seed)
      : workload([&] {
          wl::WorkloadConfig cfg;
          cfg.num_peers = num_peers;
          cfg.num_items = num_items;
          cfg.seed = seed;
          return wl::Workload::generate(cfg);
        }()),
        overlay([&] {
          Rng rng(seed + 1);
          // Gossip needs a well-connected overlay to mix.
          return Overlay(net::random_connected(num_peers, 6.0, rng));
        }()),
        meter(num_peers) {}

  wl::Workload workload;
  Overlay overlay;
  TrafficMeter meter;
};

GossipNetFilterConfig config() {
  GossipNetFilterConfig c;
  c.num_groups = 64;
  c.num_filters = 2;
  c.phase1_rounds = 80;
  c.phase2_rounds = 80;
  c.slack = 0.15;
  return c;
}

TEST(GossipNetFilterTest, FindsAllFrequentItems) {
  Rig rig(150, 10000, 1);
  const Value t = rig.workload.threshold_for(0.01);
  const auto oracle = rig.workload.frequent_items(t);
  const GossipNetFilter gnf(config());
  const auto res = gnf.run(rig.workload, rig.overlay, PeerId(0), rig.meter,
                           t, &oracle);
  EXPECT_EQ(res.stats.false_negatives, 0u);
  for (const auto& [id, v] : oracle) {
    EXPECT_TRUE(res.reported.contains(id));
  }
}

TEST(GossipNetFilterTest, ValuesAreCloseAfterEnoughRounds) {
  Rig rig(150, 10000, 2);
  const Value t = rig.workload.threshold_for(0.01);
  const auto oracle = rig.workload.frequent_items(t);
  GossipNetFilterConfig c = config();
  c.phase1_rounds = 120;
  c.phase2_rounds = 120;
  const GossipNetFilter gnf(c);
  const auto res = gnf.run(rig.workload, rig.overlay, PeerId(0), rig.meter,
                           t, &oracle);
  EXPECT_EQ(res.stats.false_negatives, 0u);
  EXPECT_LT(res.stats.max_value_rel_error, 0.05);
}

TEST(GossipNetFilterTest, MoreRoundsImproveAccuracy) {
  auto error_at = [](std::uint32_t rounds) {
    Rig rig(100, 8000, 3);
    const Value t = rig.workload.threshold_for(0.01);
    const auto oracle = rig.workload.frequent_items(t);
    GossipNetFilterConfig c = config();
    c.phase1_rounds = rounds;
    c.phase2_rounds = rounds;
    c.slack = 0.4;  // keep pruning identical-ish across settings
    const GossipNetFilter gnf(c);
    return gnf
        .run(rig.workload, rig.overlay, PeerId(0), rig.meter, t, &oracle)
        .stats.max_value_rel_error;
  };
  EXPECT_LT(error_at(100), error_at(25));
}

TEST(GossipNetFilterTest, SurvivesDeadPeersWithoutRepair) {
  // The hierarchy-free selling point: failures before the run need no tree
  // repair at all; the protocol just runs over whoever is alive.
  Rig rig(120, 8000, 4);
  rig.overlay.fail(PeerId(11));
  rig.overlay.fail(PeerId(57));
  rig.overlay.fail(PeerId(93));

  LocalItems truth;
  for (std::uint32_t p = 0; p < 120; ++p) {
    if (rig.overlay.is_alive(PeerId(p))) {
      truth.merge_add(rig.workload.local_items(PeerId(p)));
    }
  }
  const Value t = std::max<Value>(1, truth.total() / 100);
  truth.retain([&](ItemId, Value v) { return v >= t; });

  const GossipNetFilter gnf(config());
  const auto res =
      gnf.run(rig.workload, rig.overlay, PeerId(0), rig.meter, t, &truth);
  EXPECT_EQ(res.stats.false_negatives, 0u);
}

TEST(GossipNetFilterTest, CostSplitsAcrossStages) {
  Rig rig(100, 5000, 5);
  const Value t = rig.workload.threshold_for(0.01);
  const GossipNetFilter gnf(config());
  const auto res =
      gnf.run(rig.workload, rig.overlay, PeerId(0), rig.meter, t, nullptr);
  EXPECT_GT(res.stats.phase1_cost, 0.0);
  EXPECT_GT(res.stats.flood_cost, 0.0);
  EXPECT_GT(res.stats.phase2_cost, 0.0);
  EXPECT_NEAR(res.stats.total_cost(),
              res.stats.phase1_cost + res.stats.flood_cost +
                  res.stats.phase2_cost,
              1e-9);
  EXPECT_GT(res.stats.rounds, 100u);
}

TEST(GossipNetFilterTest, FilteringActuallyPrunes) {
  Rig rig(100, 5000, 6);
  const Value t = rig.workload.threshold_for(0.01);
  // Pruning needs expected group mass v/g below t (Formula 3): with
  // v = 50000 and t = 500 that means g > 100 per filter.
  GossipNetFilterConfig pruning_config = config();
  pruning_config.num_groups = 256;
  const GossipNetFilter gnf(pruning_config);
  const auto res =
      gnf.run(rig.workload, rig.overlay, PeerId(0), rig.meter, t, nullptr);
  EXPECT_LT(res.stats.num_candidates, rig.workload.num_distinct() / 2);
  EXPECT_GT(res.stats.num_candidates, 0u);
  EXPECT_LT(res.stats.heavy_groups_total, 2u * 256u);
}

TEST(GossipNetFilterTest, DeterministicForSeed) {
  auto run_once = [] {
    Rig rig(80, 4000, 7);
    const Value t = rig.workload.threshold_for(0.01);
    const GossipNetFilter gnf(config());
    return gnf.run(rig.workload, rig.overlay, PeerId(0), rig.meter, t,
                   nullptr);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.reported, b.reported);
}

TEST(GossipNetFilterTest, SurvivesLossyLinks) {
  // Push-sum conserves mass only with exactly-once delivery; the engine's
  // reliability layer provides it, so the result quality matches the
  // loss-free run at the price of retransmissions.
  Rig rig(100, 6000, 21);
  const Value t = rig.workload.threshold_for(0.01);
  const auto oracle = rig.workload.frequent_items(t);
  GossipNetFilterConfig c = config();
  c.phase1_rounds = 100;
  c.phase2_rounds = 100;
  c.fault.loss_probability = 0.15;
  const GossipNetFilter gnf(c);
  const auto res = gnf.run(rig.workload, rig.overlay, PeerId(0), rig.meter,
                           t, &oracle);
  EXPECT_EQ(res.stats.false_negatives, 0u);
  EXPECT_LT(res.stats.max_value_rel_error, 0.10);
}

TEST(GossipNetFilterTest, InvalidConfigThrows) {
  GossipNetFilterConfig c = config();
  c.slack = 1.0;
  EXPECT_THROW(GossipNetFilter{c}, InvalidArgument);
  c = config();
  c.num_groups = 0;
  EXPECT_THROW(GossipNetFilter{c}, InvalidArgument);
  c = config();
  c.phase1_rounds = 0;
  EXPECT_THROW(GossipNetFilter{c}, InvalidArgument);

  Rig rig(10, 100, 8);
  rig.overlay.fail(PeerId(3));
  const GossipNetFilter gnf(config());
  EXPECT_THROW((void)gnf.run(rig.workload, rig.overlay, PeerId(3),
                             rig.meter, 1, nullptr),
               InvalidArgument);
}

}  // namespace
}  // namespace nf::core
