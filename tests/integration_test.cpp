// End-to-end integration: netFilter running on top of the full substrate
// stack — overlay churn, hierarchy repair, stable-peer recruitment,
// multi-hierarchy failover, application scenarios.
#include <gtest/gtest.h>

#include "agg/maintenance.h"
#include "agg/multi_hierarchy.h"
#include "core/naive.h"
#include "core/netfilter.h"
#include "core/tuner.h"
#include "net/topology.h"
#include "workload/scenarios.h"
#include "workload/workload.h"

namespace nf {
namespace {

using agg::build_bfs_hierarchy;
using agg::Hierarchy;
using agg::HierarchyMaintenance;
using core::NetFilter;
using core::NetFilterConfig;
using net::ChurnSchedule;
using net::Engine;
using net::Overlay;
using net::TrafficMeter;

NetFilterConfig config(std::uint32_t g, std::uint32_t f) {
  NetFilterConfig c;
  c.num_groups = g;
  c.num_filters = f;
  return c;
}

TEST(IntegrationTest, RepairThenRunStaysExact) {
  // A peer dies; the maintenance protocol repairs the hierarchy; netFilter
  // runs on the repaired snapshot and must still be exact (the dead peer's
  // items are gone from the system, so the oracle shrinks accordingly).
  Rng rng(1);
  Overlay overlay(net::random_connected(60, 5.0, rng));
  TrafficMeter meter(60);
  const Hierarchy initial = build_bfs_hierarchy(overlay, PeerId(0));

  // Pick a victim whose removal keeps the alive overlay connected (a cut
  // vertex would legitimately strand peers, which is not what this test is
  // about).
  const auto is_cut_vertex = [&](PeerId v) {
    overlay.fail(v);
    std::vector<bool> seen(60, false);
    std::vector<PeerId> stack{PeerId(0)};
    seen[0] = true;
    std::uint32_t count = 1;
    while (!stack.empty()) {
      const PeerId p = stack.back();
      stack.pop_back();
      for (PeerId q : overlay.alive_neighbors(p)) {
        if (!seen[q.value()]) {
          seen[q.value()] = true;
          ++count;
          stack.push_back(q);
        }
      }
    }
    overlay.revive(v);
    return count != overlay.num_alive() - 1;
  };
  PeerId victim(13);
  while (is_cut_vertex(victim)) victim = PeerId(victim.value() + 1);

  HierarchyMaintenance::Config mc;
  mc.timeout_rounds = 2;
  HierarchyMaintenance maint(initial, mc);
  Engine engine(overlay, meter);
  ChurnSchedule churn;
  churn.fail_at(2, victim);
  engine.run(maint, 60, &churn);
  ASSERT_TRUE(maint.stabilized(overlay));
  const Hierarchy repaired = maint.snapshot(overlay);
  repaired.validate(overlay);

  wl::WorkloadConfig wc;
  wc.num_peers = 60;
  wc.num_items = 5000;
  wc.seed = 2;
  const wl::Workload workload = wl::Workload::generate(wc);

  // Oracle over alive peers only.
  LocalItems truth;
  for (std::uint32_t p = 0; p < 60; ++p) {
    if (overlay.is_alive(PeerId(p))) {
      truth.merge_add(workload.local_items(PeerId(p)));
    }
  }
  const Value t = static_cast<Value>(truth.total() / 100);
  truth.retain([&](ItemId, Value v) { return v >= t; });

  const NetFilter nf(config(60, 3));
  const auto res = nf.run(workload, repaired, overlay, meter, t);
  EXPECT_EQ(res.frequent, truth);
}

TEST(IntegrationTest, MultiHierarchyFailoverAfterRootDeath) {
  Rng rng(3);
  Overlay overlay(net::random_connected(50, 5.0, rng));
  TrafficMeter meter(50);
  const agg::MultiHierarchy mh =
      agg::MultiHierarchy::build(overlay, {PeerId(0), PeerId(25)});

  wl::WorkloadConfig wc;
  wc.num_peers = 50;
  wc.num_items = 3000;
  wc.seed = 4;
  const wl::Workload workload = wl::Workload::generate(wc);
  const Value t = workload.threshold_for(0.01);

  overlay.fail(PeerId(0));  // primary root dies
  const Hierarchy& fallback = mh.surviving(overlay);
  EXPECT_EQ(fallback.root(), PeerId(25));
  // Rebuild over alive peers (the dead root is gone from the replica too).
  const Hierarchy usable = build_bfs_hierarchy(overlay, fallback.root());

  LocalItems truth;
  for (std::uint32_t p = 1; p < 50; ++p) {
    truth.merge_add(workload.local_items(PeerId(p)));
  }
  truth.retain([&](ItemId, Value v) { return v >= t; });

  const NetFilter nf(config(50, 3));
  const auto res = nf.run(workload, usable, overlay, meter, t);
  EXPECT_EQ(res.frequent, truth);
}

TEST(IntegrationTest, StablePeerRecruitmentStaysExact) {
  // Only 40% of peers participate; the rest host-report. The result must
  // still be exact over the whole system.
  Rng rng(5);
  Overlay overlay(net::random_connected(100, 5.0, rng));
  TrafficMeter meter(100);
  std::vector<double> uptime(100);
  for (auto& u : uptime) u = rng.uniform();
  const auto participant = agg::select_stable_peers(uptime, 0.4, PeerId(0));
  const Hierarchy h = build_bfs_hierarchy(overlay, PeerId(0), participant);
  h.validate(overlay);

  wl::WorkloadConfig wc;
  wc.num_peers = 100;
  wc.num_items = 8000;
  wc.seed = 6;
  const wl::Workload workload = wl::Workload::generate(wc);
  const Value t = workload.threshold_for(0.01);

  const NetFilter nf(config(80, 3));
  const auto res = nf.run(workload, h, overlay, meter, t);
  EXPECT_EQ(res.frequent, workload.frequent_items(t));
  EXPECT_GT(meter.total(net::TrafficCategory::kHostReport), 0u);
  EXPECT_GT(res.stats.host_report_cost, 0.0);
}

TEST(IntegrationTest, NetFilterAndNaiveAgreeEverywhere) {
  for (std::uint64_t seed : {10u, 11u, 12u}) {
    Rng rng(seed);
    Overlay overlay(net::random_tree(70, 3, rng));
    TrafficMeter meter(70);
    const Hierarchy h = build_bfs_hierarchy(overlay, PeerId(0));
    wl::WorkloadConfig wc;
    wc.num_peers = 70;
    wc.num_items = 4000;
    wc.seed = seed;
    const wl::Workload workload = wl::Workload::generate(wc);
    const Value t = workload.threshold_for(0.02);

    const NetFilter nf(config(64, 2));
    const auto fast = nf.run(workload, h, overlay, meter, t);
    const core::NaiveCollector naive{WireSizes{}};
    const auto slow = naive.run(workload, h, overlay, meter, t);
    EXPECT_EQ(fast.frequent, slow.frequent);
  }
}

TEST(IntegrationTest, DdosScenarioFindsExactlyTheVictims) {
  const wl::ScenarioOutput scenario = wl::ddos_flows(120, 20000, 300, 4, 7);
  Rng rng(8);
  Overlay overlay(net::random_tree(120, 3, rng));
  TrafficMeter meter(120);
  const Hierarchy h = build_bfs_hierarchy(overlay, PeerId(0));

  // Tune automatically, then run.
  const core::TunedSetting ts =
      core::tune(scenario.workload, h, 0.004, core::TunerConfig{}, &meter);
  const NetFilter nf(ts.to_config(NetFilterConfig{}));
  const auto res =
      nf.run(scenario.workload, h, overlay, meter, ts.threshold);
  EXPECT_EQ(res.frequent,
            scenario.workload.frequent_items(ts.threshold));
  for (ItemId victim : scenario.planted) {
    EXPECT_TRUE(res.frequent.contains(victim))
        << scenario.catalog.name_of(victim);
  }
}

TEST(IntegrationTest, ChurnBetweenPhasesKeepsVerificationRunnable) {
  // A leaf dies after candidate filtering; verification runs on the
  // repaired hierarchy. Candidate filtering aggregates included the dead
  // peer's mass, but verification recomputes values over surviving peers —
  // the reported values must be exact over the survivors, with no crash.
  Rng rng(9);
  Overlay overlay(net::random_connected(40, 5.0, rng));
  TrafficMeter meter(40);
  const Hierarchy h = build_bfs_hierarchy(overlay, PeerId(0));
  wl::WorkloadConfig wc;
  wc.num_peers = 40;
  wc.num_items = 2000;
  wc.seed = 10;
  const wl::Workload workload = wl::Workload::generate(wc);
  const Value t = workload.threshold_for(0.02);

  const NetFilter nf(config(40, 2));
  core::NetFilterStats stats;
  const auto heavy = nf.filter_candidates(workload, h, overlay, meter, t,
                                          &stats);

  // Kill a leaf, repair, verify on the new snapshot.
  PeerId victim(0);
  for (std::uint32_t p = 1; p < 40; ++p) {
    if (h.is_leaf(PeerId(p))) {
      victim = PeerId(p);
      break;
    }
  }
  overlay.fail(victim);
  const Hierarchy repaired = build_bfs_hierarchy(overlay, PeerId(0));
  const auto res = nf.verify_candidates(workload, repaired, overlay, meter,
                                        t, heavy, stats);

  // Every reported item's value equals the survivors' total for it.
  for (const auto& [id, v] : res.frequent) {
    Value truth = 0;
    for (std::uint32_t p = 0; p < 40; ++p) {
      if (overlay.is_alive(PeerId(p))) {
        truth += workload.local_items(PeerId(p)).value_of(id);
      }
    }
    EXPECT_EQ(v, truth);
    EXPECT_GE(v, t);
  }
}

}  // namespace
}  // namespace nf
