// Tests for the observability subsystem: metrics registry semantics, tracer
// ring wraparound, JSON model round-trips, exporter schema, and the --json
// report produced end-to-end through a netFilter run.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "common/error.h"
#include "net/metrics.h"
#include "obs/context.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nf::obs {
namespace {

// ---- MetricsRegistry ------------------------------------------------------

TEST(MetricsRegistryTest, CountersAccumulateAndHandlesAreStable) {
  MetricsRegistry reg;
  Counter& c = reg.counter("engine/sent");
  c.add();
  c.add(41);
  // Interleave other registrations; the handle must stay valid (node map).
  for (int i = 0; i < 100; ++i) {
    reg.counter("other/" + std::to_string(i));
  }
  c.add(8);
  EXPECT_EQ(reg.counter("engine/sent").value(), 50u);
  EXPECT_EQ(&reg.counter("engine/sent"), &c);
}

TEST(MetricsRegistryTest, GaugesHoldLastValue) {
  MetricsRegistry reg;
  reg.gauge("x").set(2.5);
  reg.gauge("x").set(-1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("x").value(), -1.0);
}

TEST(MetricsRegistryTest, ResetDropsEverything) {
  MetricsRegistry reg;
  reg.counter("a").add(3);
  reg.histogram("h").observe(7);
  reg.reset();
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.histograms().empty());
  EXPECT_EQ(reg.counter("a").value(), 0u);
}

TEST(HistogramTest, Log2BucketBoundaries) {
  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(4);
  h.observe(1023);
  h.observe(1024);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 1023 + 1024);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_EQ(h.bucket(0), 1u);  // exactly the value 0
  EXPECT_EQ(h.bucket(1), 1u);  // [1, 1]
  EXPECT_EQ(h.bucket(2), 2u);  // [2, 3]
  EXPECT_EQ(h.bucket(3), 1u);  // [4, 7]
  EXPECT_EQ(h.bucket(10), 1u);  // [512, 1023]
  EXPECT_EQ(h.bucket(11), 1u);  // [1024, 2047]
  EXPECT_EQ(Histogram::bucket_lo(11), 1024u);
  EXPECT_EQ(Histogram::bucket_hi(11), 2047u);
  EXPECT_EQ(Histogram::bucket_lo(0), 0u);
  EXPECT_EQ(Histogram::bucket_hi(0), 0u);
}

TEST(HistogramTest, EmptyHistogramReportsZeroMin) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

// ---- ProtocolTracer -------------------------------------------------------

TEST(ProtocolTracerTest, RecordsInOrderWithLogicalClock) {
  ProtocolTracer t(/*capacity=*/16);
  t.record(EventKind::kPhaseBegin, "p1");
  t.advance_clock();
  t.record(EventKind::kMerge, "m", /*peer=*/3, /*value=*/128);
  t.advance_clock();
  t.record(EventKind::kPhaseEnd, "p1", kNoPeer, 55);

  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].clock, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].clock, 1u);
  EXPECT_EQ(events[1].peer, 3u);
  EXPECT_EQ(events[1].value, 128u);
  EXPECT_EQ(events[2].clock, 2u);
  EXPECT_EQ(t.clock(), 2u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(ProtocolTracerTest, RingWraparoundKeepsNewestAndGlobalSeq) {
  ProtocolTracer t(/*capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.record(EventKind::kMark, "e", kNoPeer, i);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.total_recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, sequence numbers survive the wrap.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);
    EXPECT_EQ(events[i].value, 6u + i);
  }
}

TEST(ProtocolTracerTest, ZeroCapacityIsClampedToOne) {
  ProtocolTracer t(0);
  EXPECT_EQ(t.capacity(), 1u);
  t.record(EventKind::kMark, "a");
  t.record(EventKind::kMark, "b");
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "b");
}

TEST(ScopedPhaseTest, EmitsBeginEndAndTiming) {
  Context ctx;
  {
    ScopedPhase phase(&ctx, "unit");
  }
  const auto events = ctx.tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kPhaseBegin);
  EXPECT_EQ(events[1].kind, EventKind::kPhaseEnd);
  EXPECT_STREQ(events[1].name, "unit");
  EXPECT_EQ(ctx.registry.counters().count("time_us/unit"), 1u);
}

TEST(ScopedPhaseTest, NullContextIsSafe) {
  ScopedPhase phase(nullptr, "noop");  // must not crash or allocate a ctx
}

// ---- Json model -----------------------------------------------------------

TEST(JsonTest, DumpIsStableAndSorted) {
  Json j = Json::object();
  j["b"] = 2;
  j["a"] = 1;
  j["c"] = Json::array();
  j["c"].push_back("x");
  j["c"].push_back(true);
  j["c"].push_back(nullptr);
  EXPECT_EQ(j.dump(), R"({"a":1,"b":2,"c":["x",true,null]})");
}

TEST(JsonTest, RoundTripsThroughParse) {
  Json j = Json::object();
  j["int"] = -42;
  j["uint"] = std::uint64_t{18446744073709551615ull};
  j["pi"] = 3.25;
  j["s"] = "quote \" backslash \\ newline \n tab \t";
  j["arr"] = Json::array();
  j["arr"].push_back(Json::object());
  j["flag"] = false;
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back, j);
  // Pretty-printing must parse back to the same document too.
  EXPECT_EQ(Json::parse(j.dump(/*indent=*/2)), j);
}

TEST(JsonTest, ParsesEscapesAndUnicode) {
  const Json j = Json::parse(R"({"s":"aA\né"})");
  EXPECT_EQ(j.at("s").as_string(), "aA\n\xc3\xa9");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), InvalidArgument);
  EXPECT_THROW(Json::parse("{"), InvalidArgument);
  EXPECT_THROW(Json::parse("[1,]"), InvalidArgument);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), InvalidArgument);
  EXPECT_THROW(Json::parse("nul"), InvalidArgument);
}

TEST(JsonTest, NonFiniteDoublesSerializeAsNull) {
  Json j = Json::array();
  j.push_back(std::numeric_limits<double>::quiet_NaN());
  j.push_back(std::numeric_limits<double>::infinity());
  EXPECT_EQ(j.dump(), "[null,null]");
}

// ---- Exporters ------------------------------------------------------------

TEST(ExportTest, RegistrySchema) {
  MetricsRegistry reg;
  reg.counter("engine/sent").add(7);
  reg.gauge("load").set(0.5);
  reg.histogram("bytes").observe(5);
  reg.histogram("bytes").observe(6);

  const Json j = to_json(reg);
  EXPECT_EQ(j.at("counters").at("engine/sent").as_uint64(), 7u);
  EXPECT_DOUBLE_EQ(j.at("gauges").at("load").as_double(), 0.5);
  const Json& h = j.at("histograms").at("bytes");
  EXPECT_EQ(h.at("count").as_uint64(), 2u);
  EXPECT_EQ(h.at("sum").as_uint64(), 11u);
  EXPECT_EQ(h.at("min").as_uint64(), 5u);
  EXPECT_EQ(h.at("max").as_uint64(), 6u);
  // 5 and 6 share bit width 3 -> one bucket [4, 7] with count 2.
  ASSERT_EQ(h.at("buckets").size(), 1u);
  EXPECT_EQ(h.at("buckets").as_array()[0].at("lo").as_uint64(), 4u);
  EXPECT_EQ(h.at("buckets").as_array()[0].at("hi").as_uint64(), 7u);
  EXPECT_EQ(h.at("buckets").as_array()[0].at("count").as_uint64(), 2u);
}

TEST(ExportTest, SpansPairBeginEndIncludingNesting) {
  ProtocolTracer t(64);
  t.record(EventKind::kPhaseBegin, "outer");
  t.advance_clock();
  t.record(EventKind::kPhaseBegin, "inner");
  t.advance_clock(3);
  t.record(EventKind::kPhaseEnd, "inner", kNoPeer, 10);
  t.advance_clock();
  t.record(EventKind::kPhaseEnd, "outer", kNoPeer, 99);

  const Json spans = spans_json(t);
  ASSERT_EQ(spans.size(), 2u);
  const Json& inner = spans.as_array()[0];
  EXPECT_EQ(inner.at("name").as_string(), "inner");
  EXPECT_EQ(inner.at("rounds").as_uint64(), 3u);
  EXPECT_EQ(inner.at("wall_us").as_uint64(), 10u);
  const Json& outer = spans.as_array()[1];
  EXPECT_EQ(outer.at("name").as_string(), "outer");
  EXPECT_EQ(outer.at("rounds").as_uint64(), 5u);
}

TEST(ExportTest, TimingsStripPrefix) {
  MetricsRegistry reg;
  reg.counter("time_us/filtering").add(123);
  reg.counter("engine/sent").add(1);
  const Json t = timings_json(reg);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.at("filtering").as_uint64(), 123u);
}

TEST(ExportTest, TrafficMeterJsonMatchesMeter) {
  net::TrafficMeter meter(3);
  meter.record(PeerId(0), net::TrafficCategory::kFiltering, 100);
  meter.record(PeerId(2), net::TrafficCategory::kAggregation, 44);

  const Json j = to_json(meter);
  EXPECT_EQ(j.at("num_peers").as_uint64(), 3u);
  EXPECT_EQ(j.at("total_bytes").as_uint64(), 144u);
  EXPECT_EQ(j.at("totals").at("filtering").as_uint64(), 100u);
  EXPECT_EQ(j.at("categories").size(), net::kNumTrafficCategories);
  ASSERT_EQ(j.at("peer_category_bytes").size(), 3u);
  const auto& row2 = j.at("peer_category_bytes").as_array()[2];
  EXPECT_EQ(
      row2.as_array()[static_cast<std::size_t>(
                          net::TrafficCategory::kAggregation)]
          .as_uint64(),
      44u);
}

TEST(ExportTest, BundleSchemaAndConditionalSections) {
  ExportBundle bundle;
  bundle.bench = "unit";
  bundle.params["n"] = 5;
  Json without = to_json(bundle);
  EXPECT_EQ(without.at("schema_version").as_uint64(), kSchemaVersion);
  EXPECT_EQ(without.at("bench").as_string(), "unit");
  EXPECT_FALSE(without.contains("traffic"));
  EXPECT_FALSE(without.contains("metrics"));

  Context ctx;
  ctx.registry.counter("c").add(1);
  net::TrafficMeter meter(1);
  bundle.obs = &ctx;
  bundle.traffic = to_json(meter);
  Json with = to_json(bundle);
  for (const char* key : {"schema_version", "bench", "params", "results",
                          "traffic", "metrics", "timings", "spans", "trace"}) {
    EXPECT_TRUE(with.contains(key)) << key;
  }
}

TEST(ExportTest, CsvWritersEmitHeaderedRows) {
  MetricsRegistry reg;
  reg.counter("a").add(2);
  reg.histogram("h").observe(9);
  std::ostringstream metrics_csv;
  write_csv(metrics_csv, reg);
  EXPECT_NE(metrics_csv.str().find("type,name,value,count,min,max"),
            std::string::npos);
  EXPECT_NE(metrics_csv.str().find("counter,a,2"), std::string::npos);
  EXPECT_NE(metrics_csv.str().find("histogram,h,9,1,9,9"), std::string::npos);

  ProtocolTracer t(8);
  t.record(EventKind::kMerge, "m", 4, 16);
  std::ostringstream trace_csv;
  write_csv(trace_csv, t);
  EXPECT_NE(trace_csv.str().find("seq,clock,kind,name,peer,value"),
            std::string::npos);
  EXPECT_NE(trace_csv.str().find("0,0,merge,m,4,16"), std::string::npos);
}

// ---- End-to-end through a netFilter run -----------------------------------

class ObsEndToEndTest : public ::testing::Test {
 protected:
  static bench::Params small_params() {
    bench::Params p;
    p.num_peers = 60;
    p.num_items = 4000;
    return p;
  }
};

TEST_F(ObsEndToEndTest, NetFilterRunEmitsSpansMetricsAndTraffic) {
  Context ctx;
  bench::Env env(small_params(), &ctx);
  const auto res = env.run_netfilter(/*g=*/50, /*f=*/3);
  ASSERT_GT(res.stats.num_frequent, 0u);

  // One span per phase, with the whole-run span enclosing them.
  const Json spans = spans_json(ctx.tracer);
  std::vector<std::string> names;
  for (const auto& s : spans.as_array()) {
    names.push_back(s.at("name").as_string());
  }
  for (const char* phase :
       {"host-report", "filtering", "dissemination", "aggregation",
        "netfilter"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), phase), names.end())
        << phase;
  }

  // The engine counted every metered message.
  EXPECT_EQ(ctx.registry.counter("engine/sent").value(),
            env.meter.num_messages());
  EXPECT_GT(ctx.registry.counter("convergecast/merges").value(), 0u);
  EXPECT_GT(ctx.registry.counter("multicast/forwards").value(), 0u);
  EXPECT_EQ(ctx.registry.counter("netfilter/frequent").value(),
            res.stats.num_frequent);
  EXPECT_GT(ctx.registry.histogram("engine/msg_bytes").count(), 0u);

  // Traffic JSON agrees with the meter it was built from.
  const Json traffic = to_json(env.meter);
  EXPECT_EQ(traffic.at("total_bytes").as_uint64(), env.meter.total());
  std::uint64_t matrix_sum = 0;
  for (const auto& row : traffic.at("peer_category_bytes").as_array()) {
    for (const auto& cell : row.as_array()) matrix_sum += cell.as_uint64();
  }
  EXPECT_EQ(matrix_sum, env.meter.total());
}

TEST_F(ObsEndToEndTest, DisabledObsChangesNothing) {
  bench::Env with(small_params(), nullptr);
  const auto base = with.run_netfilter(50, 3);
  Context ctx;
  bench::Env instrumented(small_params(), &ctx);
  const auto traced = instrumented.run_netfilter(50, 3);
  // Instrumentation must not perturb the protocol: identical results/costs.
  EXPECT_EQ(base.stats.num_frequent, traced.stats.num_frequent);
  EXPECT_EQ(base.stats.heavy_groups_total, traced.stats.heavy_groups_total);
  EXPECT_DOUBLE_EQ(base.stats.total_cost(), traced.stats.total_cost());
  EXPECT_EQ(with.meter.total(), instrumented.meter.total());
}

TEST_F(ObsEndToEndTest, JsonReportRoundTripsThroughFile) {
  const std::string path = "obs_test_report.json";
  {
    bench::Cli cli;
    cli.json = path;
    bench::JsonReport report(cli, "obs_test");
    report.params_from(small_params());
    bench::Env env(small_params(), report.obs());
    const auto res = env.run_netfilter(50, 3);
    report.capture_traffic(env.meter);
    Json row = bench::to_json(res.stats);
    row["g"] = 50;
    report.row(std::move(row));
    ASSERT_TRUE(report.write());
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const Json doc = Json::parse(buffer.str());
  std::remove(path.c_str());

  EXPECT_EQ(doc.at("schema_version").as_uint64(), kSchemaVersion);
  EXPECT_EQ(doc.at("bench").as_string(), "obs_test");
  EXPECT_EQ(doc.at("params").at("num_peers").as_uint64(), 60u);
  ASSERT_EQ(doc.at("results").size(), 1u);
  const Json& row = doc.at("results").as_array()[0];
  EXPECT_EQ(row.at("g").as_uint64(), 50u);
  EXPECT_TRUE(row.contains("filtering_cost"));
  // Per-category per-peer costs in the traffic section match the stats row.
  EXPECT_DOUBLE_EQ(
      doc.at("traffic").at("per_peer").at("filtering").as_double(),
      row.at("filtering_cost").as_double());
  EXPECT_DOUBLE_EQ(
      doc.at("traffic").at("per_peer").at("aggregation").as_double(),
      row.at("aggregation_cost").as_double());
  // At least one span per netFilter phase made it into the report.
  std::vector<std::string> names;
  for (const auto& s : doc.at("spans").as_array()) {
    names.push_back(s.at("name").as_string());
  }
  for (const char* phase : {"filtering", "dissemination", "aggregation"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), phase), names.end())
        << phase;
  }
  EXPECT_GT(doc.at("trace").at("events").size(), 0u);
  // Schema v6: link telemetry rode along — levels configured from the run's
  // hierarchy, per-level bytes recorded, and the hottest links ranked.
  const Json& ls = doc.at("link_stats");
  EXPECT_GT(ls.at("num_levels").as_uint64(), 0u);
  EXPECT_GT(ls.at("links_tracked").as_uint64(), 0u);
  EXPECT_GT(ls.at("hot").size(), 0u);
  std::uint64_t level_bytes = 0;
  for (const auto& level : ls.at("levels").as_array()) {
    level_bytes += level.at("total_bytes").as_uint64();
  }
  EXPECT_GT(level_bytes, 0u);
}

TEST_F(ObsEndToEndTest, TinySeriesCapSurfacesDroppedRoundsCounter) {
  // Satellite of the link-telemetry work: a wrapped TimeSeries ring must be
  // loud, like trace/dropped_events — the report carries the drop count as
  // obs/timeseries_dropped_rounds and nf-inspect warns on it.
  const std::string path = "obs_test_series_wrap.json";
  {
    bench::Cli cli;
    cli.json = path;
    cli.series_cap = 4;  // a run takes far more rounds than 4
    bench::JsonReport report(cli, "obs_test");
    bench::Env env(small_params(), report.obs());
    (void)env.run_netfilter(50, 3);
    ASSERT_TRUE(report.write());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const Json doc = Json::parse(buffer.str());
  std::remove(path.c_str());

  EXPECT_EQ(doc.at("series").at("capacity").as_uint64(), 4u);
  const std::uint64_t dropped = doc.at("series").at("dropped").as_uint64();
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(doc.at("metrics")
                .at("counters")
                .at("obs/timeseries_dropped_rounds")
                .as_uint64(),
            dropped);
}

}  // namespace
}  // namespace nf::obs
