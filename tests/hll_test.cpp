#include "agg/hll.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/hashing.h"

namespace nf::agg {
namespace {

TEST(HllTest, EmptyEstimatesZeroish) {
  const HyperLogLog hll(12);
  EXPECT_LT(hll.estimate(), 1.0);
}

TEST(HllTest, SmallCardinalityIsNearExact) {
  HyperLogLog hll(12);
  for (std::uint64_t i = 0; i < 100; ++i) hll.insert(ItemId(fmix64(i + 1)));
  EXPECT_NEAR(hll.estimate(), 100.0, 5.0);
}

TEST(HllTest, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (int rep = 0; rep < 50; ++rep) {
    for (std::uint64_t i = 0; i < 200; ++i) {
      hll.insert(ItemId(fmix64(i + 1)));
    }
  }
  EXPECT_NEAR(hll.estimate(), 200.0, 10.0);
}

class HllAccuracyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HllAccuracyTest, RelativeErrorWithinFourSigma) {
  const std::uint64_t n = GetParam();
  HyperLogLog hll(12);
  for (std::uint64_t i = 0; i < n; ++i) {
    hll.insert(ItemId(fmix64(i * 2654435761ull + 17)));
  }
  const double sigma = 1.04 / std::sqrt(4096.0);
  EXPECT_NEAR(hll.estimate(), static_cast<double>(n),
              4.0 * sigma * static_cast<double>(n) + 10.0);
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllAccuracyTest,
                         ::testing::Values(1000u, 10000u, 100000u, 1000000u));

TEST(HllTest, MergeEqualsUnion) {
  HyperLogLog a(10);
  HyperLogLog b(10);
  HyperLogLog u(10);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const ItemId id(fmix64(i + 1));
    if (i % 2 == 0) a.insert(id);
    if (i % 3 == 0) b.insert(id);
    if (i % 2 == 0 || i % 3 == 0) u.insert(id);
  }
  a.merge(b);
  EXPECT_EQ(a, u);
}

TEST(HllTest, MergeIsIdempotentAndCommutative) {
  HyperLogLog a(8);
  HyperLogLog b(8);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    (i % 2 ? a : b).insert(ItemId(fmix64(i + 1)));
  }
  HyperLogLog ab = a;
  ab.merge(b);
  HyperLogLog ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
  HyperLogLog twice = ab;
  twice.merge(ab);
  EXPECT_EQ(twice, ab);
}

TEST(HllTest, PrecisionMismatchThrows) {
  HyperLogLog a(8);
  const HyperLogLog b(9);
  EXPECT_THROW(a.merge(b), InvalidArgument);
}

TEST(HllTest, InvalidPrecisionThrows) {
  EXPECT_THROW(HyperLogLog(3), InvalidArgument);
  EXPECT_THROW(HyperLogLog(19), InvalidArgument);
}

TEST(HllTest, WireBytesIsRegisterCount) {
  EXPECT_EQ(HyperLogLog(10).wire_bytes(), 1024u);
  EXPECT_EQ(HyperLogLog(4).wire_bytes(), 16u);
}

}  // namespace
}  // namespace nf::agg
