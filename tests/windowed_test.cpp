#include "workload/windowed.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/monitor.h"
#include "net/topology.h"

namespace nf::wl {
namespace {

TEST(WindowedWorkloadTest, SumsOnlyTheWindow) {
  WindowedWorkload w(2, /*window=*/2);
  w.add(PeerId(0), ItemId(1), 10);
  w.roll_epoch();  // epoch 0
  w.add(PeerId(0), ItemId(1), 5);
  w.roll_epoch();  // epoch 1
  EXPECT_EQ(w.local_items(PeerId(0)).value_of(ItemId(1)), 15u);
  w.roll_epoch();  // epoch 2 (empty) -> epoch 0 scrolls out
  EXPECT_EQ(w.local_items(PeerId(0)).value_of(ItemId(1)), 5u);
  w.roll_epoch();  // epoch 3 -> epoch 1 scrolls out too
  EXPECT_EQ(w.local_items(PeerId(0)).value_of(ItemId(1)), 0u);
  EXPECT_EQ(w.total_value(), 0u);
}

TEST(WindowedWorkloadTest, WindowOfOneIsJustLastEpoch) {
  WindowedWorkload w(1, 1);
  w.add(PeerId(0), ItemId(3), 7);
  w.roll_epoch();
  EXPECT_EQ(w.total_value(), 7u);
  w.add(PeerId(0), ItemId(3), 2);
  w.roll_epoch();
  EXPECT_EQ(w.total_value(), 2u);
}

TEST(WindowedWorkloadTest, QueryingWithUnrolledActivityThrows) {
  WindowedWorkload w(1, 2);
  w.add(PeerId(0), ItemId(1), 1);
  EXPECT_THROW((void)w.local_items(PeerId(0)), InvalidArgument);
  EXPECT_THROW((void)w.total_value(), InvalidArgument);
  w.roll_epoch();
  EXPECT_NO_THROW((void)w.local_items(PeerId(0)));
}

TEST(WindowedWorkloadTest, InvalidArgsThrow) {
  EXPECT_THROW(WindowedWorkload(0, 1), InvalidArgument);
  EXPECT_THROW(WindowedWorkload(1, 0), InvalidArgument);
  WindowedWorkload w(1, 1);
  EXPECT_THROW(w.add(PeerId(1), ItemId(1), 1), InvalidArgument);
  EXPECT_THROW(w.add(PeerId(0), ItemId(1), 0), InvalidArgument);
}

TEST(WindowedWorkloadTest, BurstScrollsOutOfTheFrequentSet) {
  // End-to-end with the monitor: a song bursts in epoch 1, stays frequent
  // while the burst is inside the 2-epoch window, then drops out — the
  // paper's "past week" semantics.
  const std::uint32_t kPeers = 40;
  WindowedWorkload downloads(kPeers, /*window=*/2);
  Rng rng(5);
  const ItemId burst_song(777);
  const auto organic = [&](Value per_epoch) {
    for (Value i = 0; i < per_epoch; ++i) {
      downloads.add(PeerId(static_cast<std::uint32_t>(rng.below(kPeers))),
                    ItemId(rng.below(500)), 1);
    }
  };

  net::Overlay overlay(net::random_tree(kPeers, 3, rng));
  net::TrafficMeter meter(kPeers);
  const agg::Hierarchy hierarchy =
      agg::build_bfs_hierarchy(overlay, PeerId(0));
  core::NetFilterConfig cfg;
  cfg.num_groups = 32;
  cfg.num_filters = 2;
  core::ContinuousMonitor monitor(cfg, 0.02);

  // Epoch 0: organic only.
  organic(4000);
  downloads.roll_epoch();
  auto r0 = monitor.epoch(downloads, hierarchy, overlay, meter);
  EXPECT_FALSE(r0.frequent.contains(burst_song));

  // Epoch 1: the burst (spread over most peers).
  organic(4000);
  for (std::uint32_t p = 0; p < kPeers; ++p) {
    downloads.add(PeerId(p), burst_song, 20);
  }
  downloads.roll_epoch();
  auto r1 = monitor.epoch(downloads, hierarchy, overlay, meter);
  EXPECT_TRUE(r1.frequent.contains(burst_song));
  EXPECT_EQ(std::count(r1.newly_frequent.begin(), r1.newly_frequent.end(),
                       burst_song),
            1);

  // Epoch 2: burst is still inside the window (epochs 1-2).
  organic(4000);
  downloads.roll_epoch();
  auto r2 = monitor.epoch(downloads, hierarchy, overlay, meter);
  EXPECT_TRUE(r2.frequent.contains(burst_song));

  // Epoch 3: the burst scrolled out; the song drops from the set.
  organic(4000);
  downloads.roll_epoch();
  auto r3 = monitor.epoch(downloads, hierarchy, overlay, meter);
  EXPECT_FALSE(r3.frequent.contains(burst_song));
  EXPECT_EQ(std::count(r3.dropped.begin(), r3.dropped.end(), burst_song),
            1);
}

TEST(WindowedWorkloadTest, MonitorStaysExactOverWindow) {
  const std::uint32_t kPeers = 30;
  WindowedWorkload w(kPeers, 3);
  Rng rng(9);
  net::Overlay overlay(net::random_tree(kPeers, 3, rng));
  net::TrafficMeter meter(kPeers);
  const agg::Hierarchy hierarchy =
      agg::build_bfs_hierarchy(overlay, PeerId(0));
  core::NetFilterConfig cfg;
  cfg.num_groups = 32;
  cfg.num_filters = 2;
  core::ContinuousMonitor monitor(cfg, 0.02);

  for (int e = 0; e < 6; ++e) {
    for (int i = 0; i < 3000; ++i) {
      w.add(PeerId(static_cast<std::uint32_t>(rng.below(kPeers))),
            ItemId(rng.below(300)), rng.between(1, 3));
    }
    w.roll_epoch();
    const auto report = monitor.epoch(w, hierarchy, overlay, meter);
    // Oracle over the window view.
    LocalItems truth;
    for (std::uint32_t p = 0; p < kPeers; ++p) {
      truth.merge_add(w.local_items(PeerId(p)));
    }
    truth.retain(
        [&](ItemId, Value v) { return v >= report.threshold; });
    EXPECT_EQ(report.frequent, truth) << "epoch " << e;
  }
}

}  // namespace
}  // namespace nf::wl
