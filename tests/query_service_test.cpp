#include "core/query_service.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "workload/workload.h"

namespace nf::core {
namespace {

using net::Overlay;
using net::TrafficMeter;

struct Rig {
  explicit Rig(std::uint64_t seed)
      : workload([&] {
          wl::WorkloadConfig cfg;
          cfg.num_peers = 80;
          cfg.num_items = 8000;
          cfg.seed = seed;
          return wl::Workload::generate(cfg);
        }()),
        overlay([&] {
          Rng rng(seed + 1);
          return Overlay(net::random_tree(80, 3, rng));
        }()),
        meter(80),
        hierarchy(agg::build_bfs_hierarchy(overlay, PeerId(0))) {}

  wl::Workload workload;
  Overlay overlay;
  TrafficMeter meter;
  agg::Hierarchy hierarchy;
};

NetFilterConfig config() {
  NetFilterConfig c;
  c.num_groups = 80;
  c.num_filters = 3;
  return c;
}

TEST(QueryServiceTest, EachRequesterGetsItsExactSet) {
  Rig rig(1);
  const QueryService svc(config());
  const std::vector<FrequentItemsRequest> reqs{
      {PeerId(5), 0.1}, {PeerId(17), 0.01}, {PeerId(40), 0.03}};
  QueryServiceStats stats;
  const auto responses = svc.serve(reqs, rig.workload, rig.hierarchy,
                                   rig.overlay, rig.meter, &stats);
  ASSERT_EQ(responses.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(responses[i].requester, reqs[i].requester);
    const Value t = rig.workload.threshold_for(reqs[i].theta);
    EXPECT_EQ(responses[i].threshold, t);
    EXPECT_EQ(responses[i].frequent, rig.workload.frequent_items(t))
        << "request " << i;
  }
}

TEST(QueryServiceTest, RunsNetFilterOnceAtMinTheta) {
  Rig rig(2);
  const QueryService svc(config());
  QueryServiceStats stats;
  (void)svc.serve({{PeerId(1), 0.05}, {PeerId(2), 0.01}, {PeerId(3), 0.2}},
                  rig.workload, rig.hierarchy, rig.overlay, rig.meter,
                  &stats);
  EXPECT_EQ(stats.netfilter_runs, 1u);
  EXPECT_EQ(stats.min_threshold, rig.workload.threshold_for(0.01));
}

TEST(QueryServiceTest, SupersetRelationHolds) {
  Rig rig(3);
  const QueryService svc(config());
  const auto responses =
      svc.serve({{PeerId(1), 0.005}, {PeerId(2), 0.05}}, rig.workload,
                rig.hierarchy, rig.overlay, rig.meter);
  ASSERT_EQ(responses.size(), 2u);
  // The low-theta set contains the high-theta set.
  for (const auto& [id, v] : responses[1].frequent) {
    EXPECT_TRUE(responses[0].frequent.contains(id));
  }
  EXPECT_GE(responses[0].frequent.size(), responses[1].frequent.size());
}

TEST(QueryServiceTest, SharingBeatsSeparateRuns) {
  // Total bytes of the shared run must be below the sum of three separate
  // netFilter runs at each requested theta.
  Rig shared_rig(4);
  const QueryService svc(config());
  (void)svc.serve({{PeerId(1), 0.01}, {PeerId(2), 0.02}, {PeerId(3), 0.05}},
                  shared_rig.workload, shared_rig.hierarchy,
                  shared_rig.overlay, shared_rig.meter);
  const std::uint64_t shared_bytes = shared_rig.meter.total();

  Rig separate_rig(4);
  const NetFilter nf(config());
  for (double theta : {0.01, 0.02, 0.05}) {
    (void)nf.run(separate_rig.workload, separate_rig.hierarchy,
                 separate_rig.overlay, separate_rig.meter,
                 separate_rig.workload.threshold_for(theta));
  }
  EXPECT_LT(shared_bytes, separate_rig.meter.total());
}

TEST(QueryServiceTest, ChargesRequestAndReplyTraffic) {
  Rig rig(5);
  const QueryService svc(config());
  QueryServiceStats stats;
  (void)svc.serve({{PeerId(60), 0.01}}, rig.workload, rig.hierarchy,
                  rig.overlay, rig.meter, &stats);
  EXPECT_GT(stats.request_cost_per_peer, 0.0);
  EXPECT_GT(stats.reply_cost_per_peer, 0.0);
}

TEST(QueryServiceTest, RejectsBadInput) {
  Rig rig(6);
  const QueryService svc(config());
  EXPECT_THROW((void)svc.serve({}, rig.workload, rig.hierarchy, rig.overlay,
                               rig.meter),
               InvalidArgument);
  EXPECT_THROW((void)svc.serve({{PeerId(1), 0.0}}, rig.workload,
                               rig.hierarchy, rig.overlay, rig.meter),
               InvalidArgument);
}

// ---- serve_concurrent: multiplexed sessions over one engine run ----

TEST(QueryServiceTest, ConcurrentSessionsEachGetExactAnswers) {
  Rig rig(7);
  const QueryService svc(config());
  const std::vector<ConcurrentRequest> reqs{
      {PeerId(5), 0.1, 0, 0, 0},
      {PeerId(17), 0.01, 0, 0, 0},
      {PeerId(40), 0.03, 4, 120, 99},  // its own filter bank
      {PeerId(2), 0.05, 0, 0, 0},
  };
  ConcurrentQueryStats stats;
  const auto responses = svc.serve_concurrent(reqs, rig.workload,
                                              rig.hierarchy, rig.overlay,
                                              rig.meter, &stats);
  ASSERT_EQ(responses.size(), 4u);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "request " << i);
    EXPECT_EQ(responses[i].requester, reqs[i].requester);
    EXPECT_EQ(responses[i].frequent,
              rig.workload.frequent_items(responses[i].threshold));
  }

  // One engine run served all four sessions.
  EXPECT_GT(stats.rounds_total, 0u);
  ASSERT_EQ(stats.sessions.size(), 4u);
  for (std::size_t i = 0; i < stats.sessions.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "session " << i);
    const ConcurrentSessionStats& ss = stats.sessions[i];
    EXPECT_EQ(ss.name, "q" + std::to_string(i));
    // Per-session completion round (the gating delivery the lineage
    // critical path reports), bounded by the shared run length.
    EXPECT_GT(ss.netfilter.rounds_total, 0u);
    EXPECT_LE(ss.netfilter.rounds_total, stats.rounds_total);
    EXPECT_EQ(ss.threshold, responses[i].threshold);
    // Per-session traffic attribution: every phase of every session moved
    // its own bytes (request/announce/reply ride kControl).
    using net::TrafficCategory;
    const auto bytes = [&](TrafficCategory c) {
      return ss.traffic.bytes[static_cast<std::size_t>(c)];
    };
    EXPECT_GT(bytes(TrafficCategory::kFiltering), 0u);
    EXPECT_GT(bytes(TrafficCategory::kDissemination), 0u);
    EXPECT_GT(bytes(TrafficCategory::kAggregation), 0u);
    EXPECT_GT(bytes(TrafficCategory::kControl), 0u);
    EXPECT_GT(ss.netfilter.total_cost(), 0.0);
  }
  // The tallies attribute real traffic: the sum over sessions plus the
  // shared host report accounts for every metered byte.
  std::uint64_t attributed = 0;
  for (const auto& ss : stats.sessions) attributed += ss.traffic.total_bytes();
  EXPECT_EQ(attributed + rig.meter.total(net::TrafficCategory::kHostReport),
            rig.meter.total());
}

TEST(QueryServiceTest, ConcurrentMatchesBackToBackRuns) {
  Rig rig(8);
  const QueryService svc(config());
  const std::vector<ConcurrentRequest> reqs{
      {PeerId(10), 0.02, 0, 0, 0}, {PeerId(33), 0.04, 2, 50, 13}};
  const auto responses = svc.serve_concurrent(reqs, rig.workload,
                                              rig.hierarchy, rig.overlay,
                                              rig.meter);
  ASSERT_EQ(responses.size(), 2u);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    NetFilterConfig cfg = config();
    if (reqs[i].num_filters != 0) cfg.num_filters = reqs[i].num_filters;
    if (reqs[i].num_groups != 0) cfg.num_groups = reqs[i].num_groups;
    if (reqs[i].filter_seed != 0) cfg.filter_seed = reqs[i].filter_seed;
    const NetFilter nf(cfg);
    Rig fresh(8);
    const NetFilterResult solo =
        nf.run(fresh.workload, fresh.hierarchy, fresh.overlay, fresh.meter,
               responses[i].threshold);
    EXPECT_EQ(solo.frequent, responses[i].frequent) << "request " << i;
  }
}

TEST(QueryServiceTest, ConcurrentStaysExactUnderLoss) {
  Rig rig(9);
  NetFilterConfig cfg = config();
  cfg.fault.loss_probability = 0.15;
  cfg.fault.seed = 42;
  const QueryService svc(cfg);
  const std::vector<ConcurrentRequest> reqs{
      {PeerId(5), 0.02, 0, 0, 0},
      {PeerId(17), 0.01, 0, 0, 0},
      {PeerId(40), 0.05, 0, 0, 0},
      {PeerId(2), 0.1, 0, 0, 0},
  };
  ConcurrentQueryStats stats;
  const auto responses = svc.serve_concurrent(reqs, rig.workload,
                                              rig.hierarchy, rig.overlay,
                                              rig.meter, &stats);
  ASSERT_EQ(responses.size(), 4u);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(responses[i].frequent,
              rig.workload.frequent_items(responses[i].threshold))
        << "request " << i;
  }
  // The reliability layer paid for the losses in rounds, not correctness.
  EXPECT_GT(rig.meter.total(net::TrafficCategory::kControl), 0u);
}

TEST(QueryServiceTest, ConcurrentSurvivesNonMemberChurn) {
  // Hierarchy over the 70 most stable of 80 peers; the 10 non-members host
  // their items with members before the run, so killing them mid-run must
  // not disturb any session.
  Rig rig(10);
  std::vector<double> uptime(80, 0.0);
  for (std::size_t p = 0; p < 80; ++p) {
    uptime[p] = p < 70 ? 1.0 : 0.1;
  }
  const auto participant =
      agg::select_stable_peers(uptime, 70.0 / 80.0, PeerId(0));
  const agg::Hierarchy partial =
      agg::build_bfs_hierarchy(rig.overlay, PeerId(0), participant);
  ASSERT_LT(partial.num_members(), 80u);

  const std::vector<ConcurrentRequest> reqs{
      {PeerId(1), 0.02, 0, 0, 0}, {PeerId(7), 0.05, 0, 0, 0}};
  for (const auto& req : reqs) {
    ASSERT_TRUE(partial.is_member(req.requester));
  }

  const auto serve = [&](const net::ChurnSchedule* churn) {
    Rig fresh(10);
    const QueryService svc(config());
    return svc.serve_concurrent(reqs, fresh.workload, partial, fresh.overlay,
                                fresh.meter, nullptr, churn);
  };

  net::ChurnSchedule churn;
  std::uint64_t round = 1;
  for (std::uint32_t p = 0; p < 80; ++p) {
    if (!partial.is_member(PeerId(p))) churn.fail_at(round++, PeerId(p));
  }
  const auto calm = serve(nullptr);
  const auto churned = serve(&churn);
  ASSERT_EQ(calm.size(), churned.size());
  for (std::size_t i = 0; i < calm.size(); ++i) {
    EXPECT_EQ(calm[i].threshold, churned[i].threshold);
    EXPECT_EQ(calm[i].frequent, churned[i].frequent) << "request " << i;
  }
}

TEST(QueryServiceTest, ConcurrentRejectsBadInput) {
  Rig rig(11);
  const QueryService svc(config());
  EXPECT_THROW((void)svc.serve_concurrent({}, rig.workload, rig.hierarchy,
                                          rig.overlay, rig.meter),
               InvalidArgument);
  EXPECT_THROW(
      (void)svc.serve_concurrent({{PeerId(1), 0.0, 0, 0, 0}}, rig.workload,
                                 rig.hierarchy, rig.overlay, rig.meter),
      InvalidArgument);
}

}  // namespace
}  // namespace nf::core
