#include "core/query_service.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "workload/workload.h"

namespace nf::core {
namespace {

using net::Overlay;
using net::TrafficMeter;

struct Rig {
  explicit Rig(std::uint64_t seed)
      : workload([&] {
          wl::WorkloadConfig cfg;
          cfg.num_peers = 80;
          cfg.num_items = 8000;
          cfg.seed = seed;
          return wl::Workload::generate(cfg);
        }()),
        overlay([&] {
          Rng rng(seed + 1);
          return Overlay(net::random_tree(80, 3, rng));
        }()),
        meter(80),
        hierarchy(agg::build_bfs_hierarchy(overlay, PeerId(0))) {}

  wl::Workload workload;
  Overlay overlay;
  TrafficMeter meter;
  agg::Hierarchy hierarchy;
};

NetFilterConfig config() {
  NetFilterConfig c;
  c.num_groups = 80;
  c.num_filters = 3;
  return c;
}

TEST(QueryServiceTest, EachRequesterGetsItsExactSet) {
  Rig rig(1);
  const QueryService svc(config());
  const std::vector<FrequentItemsRequest> reqs{
      {PeerId(5), 0.1}, {PeerId(17), 0.01}, {PeerId(40), 0.03}};
  QueryServiceStats stats;
  const auto responses = svc.serve(reqs, rig.workload, rig.hierarchy,
                                   rig.overlay, rig.meter, &stats);
  ASSERT_EQ(responses.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(responses[i].requester, reqs[i].requester);
    const Value t = rig.workload.threshold_for(reqs[i].theta);
    EXPECT_EQ(responses[i].threshold, t);
    EXPECT_EQ(responses[i].frequent, rig.workload.frequent_items(t))
        << "request " << i;
  }
}

TEST(QueryServiceTest, RunsNetFilterOnceAtMinTheta) {
  Rig rig(2);
  const QueryService svc(config());
  QueryServiceStats stats;
  (void)svc.serve({{PeerId(1), 0.05}, {PeerId(2), 0.01}, {PeerId(3), 0.2}},
                  rig.workload, rig.hierarchy, rig.overlay, rig.meter,
                  &stats);
  EXPECT_EQ(stats.netfilter_runs, 1u);
  EXPECT_EQ(stats.min_threshold, rig.workload.threshold_for(0.01));
}

TEST(QueryServiceTest, SupersetRelationHolds) {
  Rig rig(3);
  const QueryService svc(config());
  const auto responses =
      svc.serve({{PeerId(1), 0.005}, {PeerId(2), 0.05}}, rig.workload,
                rig.hierarchy, rig.overlay, rig.meter);
  ASSERT_EQ(responses.size(), 2u);
  // The low-theta set contains the high-theta set.
  for (const auto& [id, v] : responses[1].frequent) {
    EXPECT_TRUE(responses[0].frequent.contains(id));
  }
  EXPECT_GE(responses[0].frequent.size(), responses[1].frequent.size());
}

TEST(QueryServiceTest, SharingBeatsSeparateRuns) {
  // Total bytes of the shared run must be below the sum of three separate
  // netFilter runs at each requested theta.
  Rig shared_rig(4);
  const QueryService svc(config());
  (void)svc.serve({{PeerId(1), 0.01}, {PeerId(2), 0.02}, {PeerId(3), 0.05}},
                  shared_rig.workload, shared_rig.hierarchy,
                  shared_rig.overlay, shared_rig.meter);
  const std::uint64_t shared_bytes = shared_rig.meter.total();

  Rig separate_rig(4);
  const NetFilter nf(config());
  for (double theta : {0.01, 0.02, 0.05}) {
    (void)nf.run(separate_rig.workload, separate_rig.hierarchy,
                 separate_rig.overlay, separate_rig.meter,
                 separate_rig.workload.threshold_for(theta));
  }
  EXPECT_LT(shared_bytes, separate_rig.meter.total());
}

TEST(QueryServiceTest, ChargesRequestAndReplyTraffic) {
  Rig rig(5);
  const QueryService svc(config());
  QueryServiceStats stats;
  (void)svc.serve({{PeerId(60), 0.01}}, rig.workload, rig.hierarchy,
                  rig.overlay, rig.meter, &stats);
  EXPECT_GT(stats.request_cost_per_peer, 0.0);
  EXPECT_GT(stats.reply_cost_per_peer, 0.0);
}

TEST(QueryServiceTest, RejectsBadInput) {
  Rig rig(6);
  const QueryService svc(config());
  EXPECT_THROW((void)svc.serve({}, rig.workload, rig.hierarchy, rig.overlay,
                               rig.meter),
               InvalidArgument);
  EXPECT_THROW((void)svc.serve({{PeerId(1), 0.0}}, rig.workload,
                               rig.hierarchy, rig.overlay, rig.meter),
               InvalidArgument);
}

}  // namespace
}  // namespace nf::core
