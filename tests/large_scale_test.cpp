// Large-scale smoke test: the full stack at 5x the paper's peer count.
// Guards against accidental quadratic blowups in the simulator hot paths.
#include <gtest/gtest.h>

#include <chrono>

#include "core/netfilter.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace nf::core {
namespace {

TEST(LargeScaleTest, FiveThousandPeersStayExactAndFast) {
  const auto start = std::chrono::steady_clock::now();

  wl::WorkloadConfig wc;
  wc.num_peers = 5000;
  wc.num_items = 200000;
  wc.seed = 1;
  const wl::Workload workload = wl::Workload::generate(wc);

  Rng rng(2);
  net::Overlay overlay(net::random_tree(5000, 3, rng));
  net::TrafficMeter meter(5000);
  const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
  EXPECT_EQ(h.num_members(), 5000u);

  const Value t = workload.threshold_for(0.01);
  NetFilterConfig cfg;
  cfg.num_groups = 100;
  cfg.num_filters = 3;
  const NetFilter nf(cfg);
  const auto res = nf.run(workload, h, overlay, meter, t);
  EXPECT_EQ(res.frequent, workload.frequent_items(t));

  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - start);
  // Generation + hierarchy + full run; generous bound to avoid flaking on
  // slow CI machines while still catching accidental O(N^2) regressions.
  EXPECT_LT(elapsed.count(), 60);
}

}  // namespace
}  // namespace nf::core
