// nf-inspect — terminal inspector for bench --json reports
// (docs/OBSERVABILITY.md schema, version 6).
//
// One report: prints the bench/params header, per-row results, phase spans,
// the per-peer traffic split, the per-session traffic breakdown of
// multiplexed runs, a per-round series summary and the cost-model
// conformance table. Exits non-zero when any *gated* conformance residual
// exceeds the tolerance, so CI can assert "the simulator still matches
// Formula 1" with one command:
//
//   nf-inspect [--tol=0.10] fig5.json
//
// Two reports: an A-vs-B regression diff. Result rows are compared by
// index; deterministic per-peer cost columns (`*_cost`) gate on relative
// increase beyond the tolerance, wall-clock fields are ignored (they never
// compare across machines):
//
//   nf-inspect [--tol=0.10] fig5.json BENCH_baseline.json
//
// Critical path: prints each session's gating chain (the lineage critical
// path — peer, phase, round and bytes per hop) and per-phase slack from
// the schema v5 `lineage` section, cross-checking the chain's final round
// against the session's recorded rounds_total:
//
//   nf-inspect critical-path multiquery.json
//
// Hotspots: ranks the heaviest directed links from the schema v6
// `link_stats` section (Misra-Gries estimates, lower bounds within
// links_error_bound). --expect-root-adjacent gates on the topology-locality
// property: the hottest link must touch the hierarchy root (level <= 1):
//
//   nf-inspect hotspots [--top=20] [--expect-root-adjacent] fig7.json
//
// Levels: reconciles observed per-hierarchy-level bytes against the
// cost-model per-level terms (link_stats levels[].predicted); a gated
// residual beyond the tolerance exits 1:
//
//   nf-inspect levels [--tol=0.01] fig7.json
//
// Overhead: the obs self-overhead budget — obs/overhead_us as a fraction
// of engine/round_us (whole-run wall inside the engine loop); exceeding
// --budget exits 1 so CI can cap what telemetry itself costs:
//
//   nf-inspect overhead --budget=0.35 fig7.json
//
// Congestion: the schema v7 link-capacity telemetry — per-level
// utilization (charged bytes over static capacity x engine rounds), peak
// backlog and the number of retained rounds each level's queue gated, the
// queueing counters and the spill hot-link table. With a second report the
// deterministic congestion scalars diff against the baseline and a
// relative increase beyond --tol exits 1:
//
//   nf-inspect congestion [--util=0.75] fig_congestion.json [BASELINE.json]
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/table.h"
#include "obs/json.h"

namespace {

using nf::TableWriter;
using nf::obs::Json;

Json load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "nf-inspect: cannot open " << path << "\n";
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return Json::parse(buf.str());
  } catch (const std::exception& e) {
    std::cerr << "nf-inspect: " << path << ": " << e.what() << "\n";
    std::exit(2);
  }
}

double num(const Json& j, std::string_view key, double fallback = 0.0) {
  const Json* v = j.find(key);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

std::string fmt(double v) {
  std::ostringstream os;
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os.setf(std::ios::fixed);
    os.precision(0);
  } else {
    os.precision(6);
  }
  os << v;
  return os.str();
}

void print_header(const Json& doc, const std::string& path) {
  std::cout << "# " << path << "\n";
  const Json* bench = doc.find("bench");
  std::cout << "bench: " << (bench != nullptr ? bench->as_string() : "?")
            << "   schema_version: "
            << static_cast<std::uint64_t>(num(doc, "schema_version")) << "\n";
  if (const Json* params = doc.find("params"); params != nullptr) {
    std::cout << "params:";
    for (const auto& [k, v] : params->as_object()) {
      std::cout << ' ' << k << '=' << v.dump();
    }
    std::cout << "\n";
  }
}

void print_results(const Json& doc) {
  const Json* results = doc.find("results");
  if (results == nullptr || !results->is_array() || results->size() == 0) {
    return;
  }
  std::cout << "\n== results (" << results->size() << " rows) ==\n";
  TableWriter t({"row", "frequent", "false_pos", "filter_cost", "dissem_cost",
                 "agg_cost", "total_cost"},
                std::cout, 14);
  std::size_t i = 0;
  for (const Json& r : results->as_array()) {
    t.row(i++, num(r, "num_frequent"), num(r, "num_false_positives"),
          num(r, "filtering_cost"), num(r, "dissemination_cost"),
          num(r, "aggregation_cost"), num(r, "total_cost"));
  }
}

void print_spans(const Json& doc) {
  const Json* spans = doc.find("spans");
  if (spans == nullptr || !spans->is_array() || spans->size() == 0) return;
  std::cout << "\n== phase spans ==\n";
  TableWriter t({"phase", "rounds", "wall_us"}, std::cout, 16);
  for (const Json& s : spans->as_array()) {
    t.row(s.at("name").as_string(), num(s, "rounds"), num(s, "wall_us"));
  }
}

void print_traffic(const Json& doc) {
  const Json* traffic = doc.find("traffic");
  if (traffic == nullptr || !traffic->is_object()) return;
  std::cout << "\n== traffic (bytes/peer, most recent captured run) ==\n";
  if (const Json* per_peer = traffic->find("per_peer"); per_peer != nullptr) {
    TableWriter t({"category", "bytes/peer"}, std::cout, 16);
    for (const auto& [k, v] : per_peer->as_object()) t.row(k, v.as_double());
  }
  std::cout << "total: " << fmt(num(*traffic, "total_bytes")) << " bytes, "
            << fmt(num(*traffic, "num_messages")) << " messages\n";
}

/// Schema v4 "sessions": per-query traffic attribution of a multiplexed
/// (SessionMux) run — which session moved how many bytes, by category.
void print_sessions(const Json& doc) {
  const Json* sessions = doc.find("sessions");
  if (sessions == nullptr || !sessions->is_array() || sessions->size() == 0) {
    return;
  }
  std::cout << "\n== sessions (" << sessions->size()
            << " multiplexed over one run) ==\n";
  TableWriter t({"session", "threshold", "filtering", "dissemination",
                 "aggregation", "control", "total_bytes"},
                std::cout, 14);
  for (const Json& s : sessions->as_array()) {
    const Json* bytes = s.find("bytes");
    const auto cat = [&](std::string_view name) {
      return bytes != nullptr ? num(*bytes, name) : 0.0;
    };
    const Json* name = s.find("name");
    t.row(name != nullptr ? name->as_string() : "?", num(s, "threshold"),
          cat("filtering"), cat("dissemination"), cat("aggregation"),
          cat("control"), num(s, "total_bytes"));
  }
}

void print_series(const Json& doc) {
  const Json* series = doc.find("series");
  if (series == nullptr || !series->is_object()) return;
  const Json* stamps = series->find("stamps");
  const std::size_t rows = stamps != nullptr ? stamps->size() : 0;
  std::cout << "\n== series (" << rows << " rounds retained, "
            << fmt(num(*series, "dropped")) << " dropped) ==\n";
  TableWriter t({"column", "kind", "sum", "max"}, std::cout, 22);
  if (const Json* counters = series->find("counters"); counters != nullptr) {
    for (const auto& [name, col] : counters->as_object()) {
      double sum = 0.0;
      double mx = 0.0;
      for (const Json& v : col.as_array()) {
        sum += v.as_double();
        mx = std::max(mx, v.as_double());
      }
      t.row(name, "counter", sum, mx);
    }
  }
  if (const Json* gauges = series->find("gauges"); gauges != nullptr) {
    for (const auto& [name, col] : gauges->as_object()) {
      double last = 0.0;
      double mx = 0.0;
      for (const Json& v : col.as_array()) {
        last = v.as_double();
        mx = std::max(mx, v.as_double());
      }
      t.row(name, "gauge", last, mx);
    }
  }
}

/// Prints the conformance table; returns the number of gated checks whose
/// |residual| exceeds `tol`.
int print_conformance(const Json& doc, double tol) {
  const Json* conf = doc.find("conformance");
  if (conf == nullptr || !conf->is_object()) return 0;
  const Json* runs = conf->find("runs");
  if (runs == nullptr || runs->size() == 0) {
    std::cout << "\n== conformance: no runs recorded ==\n";
    return 0;
  }
  std::cout << "\n== cost-model conformance (" << runs->size()
            << " runs, tol " << tol * 100 << "% on gated checks) ==\n";
  int breaches = 0;
  std::size_t i = 0;
  for (const Json& run : runs->as_array()) {
    std::cout << "run " << i++;
    if (const Json* params = run.find("params"); params != nullptr) {
      for (const std::string key :
           {"num_filters", "num_groups", "num_frequent",
            "num_false_positives"}) {
        if (const Json* v = params->find(key); v != nullptr) {
          std::cout << "  " << key << '=' << fmt(v->as_double());
        }
      }
    }
    std::cout << "\n";
    TableWriter t({"check", "predicted", "observed", "residual%", "status"},
                  std::cout, 16);
    for (const Json& c : run.at("checks").as_array()) {
      const double residual = num(c, "residual");
      const bool gated = c.at("gated").as_bool();
      std::string status = gated ? "ok" : "advisory";
      if (gated && std::abs(residual) > tol) {
        status = "BREACH";
        ++breaches;
      }
      t.row(c.at("name").as_string(), num(c, "predicted"),
            num(c, "observed"), residual * 100.0, status);
    }
  }
  return breaches;
}

/// Satellite of the lineage work: ring truncation must be loud. A wrapped
/// tracer ring used to surface only as a silent gap in the span/trace
/// tables; now the report carries trace/dropped_events and this warning.
void warn_trace_truncation(const Json& doc) {
  const Json* trace = doc.find("trace");
  if (trace == nullptr || !trace->is_object()) return;
  const double dropped = num(*trace, "dropped");
  if (dropped <= 0.0) return;
  std::cout << "\nWARNING: trace ring wrapped; " << fmt(dropped)
            << " event(s) dropped (oldest first) — spans and flows may be "
               "incomplete; raise --trace-cap / NF_TRACE_CAP\n";
}

/// Same treatment for the per-round series ring: a wrap means the oldest
/// rounds fell off every column and per-round analyses silently start
/// mid-run, so say so. Reads the series section and (reports written
/// before sampling stopped) the obs/timeseries_dropped_rounds counter.
void warn_series_truncation(const Json& doc) {
  double dropped = 0.0;
  if (const Json* series = doc.find("series");
      series != nullptr && series->is_object()) {
    dropped = num(*series, "dropped");
  }
  if (dropped <= 0.0) {
    if (const Json* metrics = doc.find("metrics");
        metrics != nullptr && metrics->is_object()) {
      if (const Json* counters = metrics->find("counters");
          counters != nullptr) {
        dropped = num(*counters, "obs/timeseries_dropped_rounds");
      }
    }
  }
  if (dropped <= 0.0) return;
  std::cout << "\nWARNING: time-series ring wrapped; " << fmt(dropped)
            << " round(s) dropped (oldest first) — per-round columns start "
               "mid-run; raise --series-cap / NF_SERIES_CAP\n";
}

int inspect_one(const Json& doc, const std::string& path, double tol) {
  print_header(doc, path);
  warn_trace_truncation(doc);
  warn_series_truncation(doc);
  print_results(doc);
  print_spans(doc);
  print_traffic(doc);
  print_sessions(doc);
  print_series(doc);
  const int breaches = print_conformance(doc, tol);
  if (breaches != 0) {
    std::cout << "\nFAIL: " << breaches
              << " gated conformance check(s) exceed tolerance\n";
    return 1;
  }
  std::cout << "\nOK\n";
  return 0;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// A-vs-B regression diff over the results rows. Only the deterministic
/// per-peer `*_cost` columns gate (wall-clock never compares across
/// machines); a relative increase beyond `tol` is a breach.
int diff_reports(const Json& a, const Json& b, const std::string& path_a,
                 const std::string& path_b, double tol) {
  std::cout << "# A: " << path_a << "\n# B (baseline): " << path_b << "\n";
  const Json* ra = a.find("results");
  const Json* rb = b.find("results");
  if (ra == nullptr || rb == nullptr || !ra->is_array() || !rb->is_array()) {
    std::cerr << "nf-inspect: both reports need a results array\n";
    return 2;
  }
  if (ra->size() != rb->size()) {
    std::cout << "note: row count differs (" << ra->size() << " vs "
              << rb->size() << "); comparing the common prefix\n";
  }
  const std::size_t rows = std::min(ra->size(), rb->size());
  int breaches = 0;
  TableWriter t({"row", "column", "A", "B", "delta%", "status"}, std::cout,
                16);
  for (std::size_t i = 0; i < rows; ++i) {
    const Json& row_a = ra->as_array()[i];
    const Json& row_b = rb->as_array()[i];
    if (!row_a.is_object() || !row_b.is_object()) continue;
    for (const auto& [key, va] : row_a.as_object()) {
      if (!ends_with(key, "_cost") || !va.is_number()) continue;
      const Json* vb = row_b.find(key);
      if (vb == nullptr || !vb->is_number()) continue;
      const double x = va.as_double();
      const double y = vb->as_double();
      const double delta =
          y != 0.0 ? (x - y) / std::abs(y) : (x == 0.0 ? 0.0 : 1.0);
      const bool breach = delta > tol;
      if (breach || std::abs(delta) > 1e-12) {
        t.row(i, key, x, y, delta * 100.0, breach ? "BREACH" : "ok");
      }
      if (breach) ++breaches;
    }
  }
  if (breaches != 0) {
    std::cout << "\nFAIL: " << breaches << " cost column(s) regressed more "
              << "than " << tol * 100 << "% vs baseline\n";
    return 1;
  }
  std::cout << "\nOK: no cost regressions vs baseline\n";
  return 0;
}

/// `nf-inspect critical-path REPORT.json` — the gating chain and per-phase
/// slack of every session, from the schema v5 lineage section. The chain's
/// final deliver round is cross-checked against the session's recorded
/// rounds_total (sessions section, matched by name): a disagreement means
/// the lineage DAG and the session accounting have diverged, exit 1.
/// Exit 2 when the report predates schema v5 / has no lineage section.
int critical_path_cmd(const Json& doc, const std::string& path) {
  print_header(doc, path);
  warn_trace_truncation(doc);
  const Json* lineage = doc.find("lineage");
  if (lineage == nullptr || !lineage->is_object()) {
    std::cerr << "nf-inspect: " << path
              << " has no lineage section (needs a schema v5 report from a "
                 "bench run with --json)\n";
    return 2;
  }
  const double dropped_nodes = num(*lineage, "dropped_nodes");
  if (dropped_nodes > 0.0) {
    std::cout << "\nWARNING: lineage ring wrapped; " << fmt(dropped_nodes)
              << " node(s) dropped — chains may start mid-run; raise "
                 "--lineage-cap / NF_LINEAGE_CAP\n";
  }
  const Json* paths = lineage->find("critical_paths");
  if (paths == nullptr || !paths->is_array() || paths->size() == 0) {
    std::cout << "\nno critical paths (no session-tagged deliveries were "
                 "recorded)\n";
    return 0;
  }

  // rounds_total per session name, for the cross-check.
  const Json* sessions = doc.find("sessions");
  const auto recorded_rounds = [&](std::string_view name) -> double {
    if (sessions == nullptr || !sessions->is_array()) return -1.0;
    for (const Json& s : sessions->as_array()) {
      const Json* n = s.find("name");
      if (n == nullptr || n->as_string() != name) continue;
      const Json* nfj = s.find("netfilter");
      if (nfj == nullptr) return -1.0;
      return num(*nfj, "rounds_total", -1.0);
    }
    return -1.0;
  };

  int mismatches = 0;
  for (const Json& cp : paths->as_array()) {
    const Json* name_j = cp.find("name");
    std::string name = fmt(num(cp, "session"));
    name.insert(0, "s");
    if (name_j != nullptr && !name_j->as_string().empty()) {
      name = name_j->as_string();
    }
    std::cout << "\n== critical path: " << name << " (done round "
              << fmt(num(cp, "done_round")) << ", chain "
              << fmt(num(cp, "rounds")) << " rounds, "
              << fmt(num(cp, "bytes")) << " bytes) ==\n";
    double final_round = -1.0;
    const Json* hops = cp.find("hops");
    if (hops != nullptr && hops->is_array() && hops->size() != 0) {
      TableWriter t({"hop", "from", "to", "phase", "bytes", "send_round",
                     "deliver_round"},
                    std::cout, 17);
      std::size_t i = 0;
      for (const Json& h : hops->as_array()) {
        const Json* phase = h.find("phase");
        t.row(i++, fmt(num(h, "from")), fmt(num(h, "to")),
              phase != nullptr && !phase->as_string().empty()
                  ? phase->as_string()
                  : "-",
              fmt(num(h, "bytes")), fmt(num(h, "send_round")),
              fmt(num(h, "deliver_round")));
        final_round = num(h, "deliver_round");
      }
    }
    const double recorded = recorded_rounds(name);
    if (recorded >= 0.0 && final_round >= 0.0) {
      if (final_round == recorded) {
        std::cout << "gating delivery at round " << fmt(final_round)
                  << " == recorded rounds_total\n";
      } else {
        std::cout << "MISMATCH: gating chain ends at round "
                  << fmt(final_round) << " but the session recorded "
                  << "rounds_total=" << fmt(recorded) << "\n";
        ++mismatches;
      }
    }
    const Json* slack = cp.find("slack");
    if (slack != nullptr && slack->is_array() && slack->size() != 0) {
      TableWriter t({"phase", "last_deliver_round", "slack_rounds"},
                    std::cout, 20);
      for (const Json& s : slack->as_array()) {
        const Json* phase = s.find("phase");
        t.row(phase != nullptr ? phase->as_string() : "?",
              fmt(num(s, "last_deliver_round")), fmt(num(s, "slack_rounds")));
      }
    }
  }
  if (mismatches != 0) {
    std::cout << "\nFAIL: " << mismatches << " gating chain(s) disagree "
              << "with the recorded session rounds\n";
    return 1;
  }
  std::cout << "\nOK\n";
  return 0;
}

/// Fetch the schema v6 link_stats section or exit 2 with a pointer at the
/// likely cause (pre-v6 report, or a bench run without --json/obs).
const Json& link_stats_or_die(const Json& doc, const std::string& path) {
  const Json* ls = doc.find("link_stats");
  if (ls == nullptr || !ls->is_object()) {
    std::cerr << "nf-inspect: " << path
              << " has no link_stats section (needs a schema v6 report "
                 "from a bench run with --json)\n";
    std::exit(2);
  }
  return *ls;
}

/// `nf-inspect hotspots [--top=N] [--expect-root-adjacent] REPORT.json` —
/// the heaviest directed links plus per-level utilization. Estimates are
/// Misra-Gries lower bounds; when links_error_bound is 0 the summary never
/// decremented and every count is exact. With --expect-root-adjacent the
/// hottest link must touch the root (level <= 1) — the paper's hierarchy
/// concentrates filtering/aggregation traffic at the root, so a top link
/// elsewhere means the accounting (or the topology) is wrong; exit 1.
int hotspots_cmd(const Json& doc, const std::string& path, std::size_t top,
                 bool expect_root_adjacent) {
  print_header(doc, path);
  warn_series_truncation(doc);
  const Json& ls = link_stats_or_die(doc, path);
  const double error_bound = num(ls, "links_error_bound");
  std::cout << "links tracked: " << fmt(num(ls, "links_tracked")) << " / "
            << fmt(num(ls, "link_capacity")) << " capacity, "
            << fmt(num(ls, "links_total_bytes")) << " bytes total, "
            << "error bound " << fmt(error_bound)
            << (error_bound == 0.0 ? " (exact)" : " (sketch)") << "\n";

  const Json* levels = ls.find("levels");
  if (levels != nullptr && levels->is_array() && levels->size() != 0) {
    std::cout << "\n== per-level utilization ==\n";
    TableWriter t({"level", "peers", "total_bytes", "total_msgs"}, std::cout,
                  14);
    for (const Json& row : levels->as_array()) {
      t.row(fmt(num(row, "level")), fmt(num(row, "peers")),
            fmt(num(row, "total_bytes")), fmt(num(row, "total_msgs")));
    }
    if (const Json* off = ls.find("off_hierarchy"); off != nullptr) {
      std::cout << "off-hierarchy: " << fmt(num(*off, "total_bytes"))
                << " bytes, " << fmt(num(*off, "total_msgs")) << " msgs\n";
    }
  }

  const Json* hot = ls.find("hot");
  if (hot == nullptr || !hot->is_array() || hot->size() == 0) {
    std::cout << "\nno links recorded\n";
    return expect_root_adjacent ? 1 : 0;
  }
  std::cout << "\n== hottest links (top " << top << " of "
            << fmt(num(ls, "links_tracked")) << ") ==\n";
  TableWriter t({"rank", "from", "to", "level", "bytes"}, std::cout, 12);
  std::size_t rank = 0;
  for (const Json& link : hot->as_array()) {
    if (rank >= top) break;
    t.row(rank++, fmt(num(link, "from")), fmt(num(link, "to")),
          fmt(num(link, "level")), fmt(num(link, "bytes")));
  }
  if (expect_root_adjacent) {
    const Json& first = hot->as_array()[0];
    const double level = num(first, "level");
    if (level > 1.0) {
      std::cout << "\nFAIL: hottest link " << fmt(num(first, "from"))
                << " -> " << fmt(num(first, "to")) << " is at level "
                << fmt(level) << "; expected a root-adjacent link "
                << "(level <= 1)\n";
      return 1;
    }
    std::cout << "\nOK: hottest link is root-adjacent (level "
              << fmt(level) << ")\n";
    return 0;
  }
  std::cout << "\nOK\n";
  return 0;
}

/// `nf-inspect levels [--tol=0.01] REPORT.json` — per-level observed bytes
/// against the cost-model level terms. Only categories with a recorded
/// prediction gate (the per-level split is only exact for flat wire sizes
/// and loss-free runs — the same gating as the F1 conformance checks);
/// |residual| > tol on any gated cell exits 1.
int levels_cmd(const Json& doc, const std::string& path, double tol) {
  print_header(doc, path);
  warn_series_truncation(doc);
  const Json& ls = link_stats_or_die(doc, path);
  const Json* levels = ls.find("levels");
  if (levels == nullptr || !levels->is_array() || levels->size() == 0) {
    std::cout << "\nno levels recorded\n";
    return 0;
  }
  std::cout << "\n== per-level cost-model reconciliation (tol " << tol * 100
            << "%) ==\n";
  TableWriter t({"level", "category", "predicted", "observed", "residual%",
                 "status"},
                std::cout, 14);
  int breaches = 0;
  int gated = 0;
  for (const Json& row : levels->as_array()) {
    const Json* predicted = row.find("predicted");
    if (predicted == nullptr || !predicted->is_object()) continue;
    const Json* bytes = row.find("bytes");
    for (const auto& [cat, pv] : predicted->as_object()) {
      const double pred = pv.as_double();
      if (pred <= 0.0) continue;
      const double obs = bytes != nullptr ? num(*bytes, cat) : 0.0;
      const double residual = (obs - pred) / pred;
      ++gated;
      const bool breach = std::abs(residual) > tol;
      if (breach) ++breaches;
      t.row(fmt(num(row, "level")), cat, pred, obs, residual * 100.0,
            breach ? "BREACH" : "ok");
    }
  }
  if (gated == 0) {
    std::cout << "no per-level predictions recorded (non-flat wire sizes or "
                 "lossy run)\n";
    return 0;
  }
  if (breaches != 0) {
    std::cout << "\nFAIL: " << breaches << " per-level check(s) exceed "
              << tol * 100 << "% tolerance\n";
    return 1;
  }
  std::cout << "\nOK: " << gated << " per-level check(s) within tolerance\n";
  return 0;
}

/// `nf-inspect overhead [--budget=X] REPORT.json` — what telemetry itself
/// costs. obs/overhead_us accumulates the wall time the engine spends in
/// obs-only work (round stamping, shard-gauge folds, link charging, series
/// sampling); engine/round_us is the whole engine loop. Their ratio beyond
/// --budget exits 1. Exit 2 when the counters are absent (pre-v6 report or
/// a run without obs attached).
int overhead_cmd(const Json& doc, const std::string& path, double budget) {
  print_header(doc, path);
  const Json* metrics = doc.find("metrics");
  const Json* counters =
      metrics != nullptr && metrics->is_object() ? metrics->find("counters")
                                                 : nullptr;
  if (counters == nullptr || counters->find("obs/overhead_us") == nullptr ||
      counters->find("engine/round_us") == nullptr) {
    std::cerr << "nf-inspect: " << path
              << " has no obs/overhead_us + engine/round_us counters (needs "
                 "a schema v6 report from a bench run with --json)\n";
    return 2;
  }
  const double overhead_us = num(*counters, "obs/overhead_us");
  const double round_us = num(*counters, "engine/round_us");
  const double frac = round_us > 0.0 ? overhead_us / round_us : 0.0;
  std::cout << "obs overhead: " << fmt(overhead_us) << " us of "
            << fmt(round_us) << " us engine-loop wall = "
            << fmt(frac * 100.0) << "% (budget " << fmt(budget * 100.0)
            << "%)\n";
  if (frac > budget) {
    std::cout << "\nFAIL: obs self-overhead exceeds budget\n";
    return 1;
  }
  std::cout << "\nOK\n";
  return 0;
}

/// Reads a counter from the metrics section (0.0 when absent).
double metric_counter(const Json& doc, std::string_view name) {
  const Json* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return 0.0;
  const Json* counters = metrics->find("counters");
  if (counters == nullptr || !counters->is_object()) return 0.0;
  return num(*counters, name);
}

/// `nf-inspect congestion [--util=0.75] REPORT.json` — the schema v7
/// link-capacity picture: which levels saturated (utilization = charged
/// bytes / (static capacity x engine rounds)), how deep their backlogs got
/// (peak of the link/level<d>/backlog_bytes series) and how many retained
/// rounds each queue gated, plus the engine queueing counters and the
/// spill hot-link table (which links the queueing concentrated on). Exit 2
/// when the report has no link_stats section.
int congestion_cmd(const Json& doc, const std::string& path,
                   double util_threshold) {
  print_header(doc, path);
  warn_series_truncation(doc);
  const Json& ls = link_stats_or_die(doc, path);

  const double rounds = metric_counter(doc, "engine/rounds");
  const double queued = metric_counter(doc, "engine/congestion/queued_msgs");
  const double delay =
      metric_counter(doc, "engine/congestion/queue_delay_rounds");
  const double clamped =
      metric_counter(doc, "engine/congestion/clamped_bytes");
  std::cout << "engine rounds: " << fmt(rounds) << "   queued msgs: "
            << fmt(queued) << "   queue delay: " << fmt(delay)
            << " rounds   clamped backlog: " << fmt(clamped) << " bytes\n";

  // Per-level backlog series columns, for peak depth and gated rounds.
  const Json* gauges = nullptr;
  if (const Json* series = doc.find("series");
      series != nullptr && series->is_object()) {
    gauges = series->find("gauges");
  }
  const auto backlog_stats = [&](double level, double* peak,
                                 double* gated_rounds) {
    *peak = 0.0;
    *gated_rounds = 0.0;
    if (gauges == nullptr || !gauges->is_object()) return;
    std::string name = "link/level";
    name += fmt(level);
    name += "/backlog_bytes";
    const Json* col = gauges->find(name);
    if (col == nullptr || !col->is_array()) return;
    for (const Json& v : col->as_array()) {
      const double b = v.as_double();
      *peak = std::max(*peak, b);
      if (b > 0.0) *gated_rounds += 1.0;
    }
  };

  const Json* levels = ls.find("levels");
  int saturated = 0;
  if (levels != nullptr && levels->is_array() && levels->size() != 0) {
    std::cout << "\n== per-level congestion (saturated at "
              << fmt(util_threshold * 100.0) << "% utilization) ==\n";
    TableWriter t({"level", "peers", "capacity", "bytes", "util%",
                   "backlog_peak", "gated_rounds", "status"},
                  std::cout, 14);
    for (const Json& row : levels->as_array()) {
      const double level = num(row, "level");
      const double capacity = num(row, "capacity");
      const double bytes = num(row, "total_bytes");
      const double util = capacity > 0.0 && rounds > 0.0
                              ? bytes / (capacity * rounds)
                              : 0.0;
      double peak = 0.0;
      double gated_rounds = 0.0;
      backlog_stats(level, &peak, &gated_rounds);
      std::string status = "ok";
      if (capacity <= 0.0) {
        status = "uncapped";
      } else if (util >= util_threshold || peak > 0.0) {
        status = "SATURATED";
        ++saturated;
      }
      t.row(fmt(level), fmt(num(row, "peers")), fmt(capacity), fmt(bytes),
            util * 100.0, fmt(peak), fmt(gated_rounds), status);
    }
  }

  const Json* congestion = ls.find("congestion");
  if (congestion != nullptr && congestion->is_object()) {
    std::cout << "\n== spill hot links (" << fmt(num(*congestion,
                                                     "spilled_bytes"))
              << " bytes queued, error bound "
              << fmt(num(*congestion, "spill_error_bound")) << ") ==\n";
    if (const Json* hot = congestion->find("hot");
        hot != nullptr && hot->is_array()) {
      TableWriter t({"rank", "from", "to", "level", "queued_bytes"},
                    std::cout, 13);
      std::size_t rank = 0;
      for (const Json& link : hot->as_array()) {
        t.row(rank++, fmt(num(link, "from")), fmt(num(link, "to")),
              fmt(num(link, "level")), fmt(num(link, "bytes")));
      }
    }
  } else {
    std::cout << "\nno links queued (run never exceeded link capacity)\n";
  }
  if (saturated != 0) {
    std::cout << "\n" << saturated << " level(s) saturated\n";
  }
  std::cout << "\nOK\n";
  return 0;
}

/// `nf-inspect congestion REPORT.json BASELINE.json` — regression diff of
/// the deterministic congestion scalars. The engine schedules on the
/// engine thread in canonical order, so these are exact across machines
/// and thread counts; a relative increase beyond --tol (more queueing than
/// the committed baseline) exits 1.
int congestion_diff_cmd(const Json& a, const Json& b,
                        const std::string& path_a, const std::string& path_b,
                        double tol) {
  std::cout << "# A: " << path_a << "\n# B (baseline): " << path_b << "\n";
  const auto spilled = [](const Json& doc) {
    const Json* ls = doc.find("link_stats");
    if (ls == nullptr || !ls->is_object()) return 0.0;
    const Json* congestion = ls->find("congestion");
    if (congestion == nullptr || !congestion->is_object()) return 0.0;
    return num(*congestion, "spilled_bytes");
  };
  struct Scalar {
    const char* name;
    double x;
    double y;
  };
  const Scalar scalars[] = {
      {"engine/rounds", metric_counter(a, "engine/rounds"),
       metric_counter(b, "engine/rounds")},
      {"congestion/queued_msgs",
       metric_counter(a, "engine/congestion/queued_msgs"),
       metric_counter(b, "engine/congestion/queued_msgs")},
      {"congestion/queue_delay_rounds",
       metric_counter(a, "engine/congestion/queue_delay_rounds"),
       metric_counter(b, "engine/congestion/queue_delay_rounds")},
      {"congestion/clamped_bytes",
       metric_counter(a, "engine/congestion/clamped_bytes"),
       metric_counter(b, "engine/congestion/clamped_bytes")},
      {"link_stats/spilled_bytes", spilled(a), spilled(b)},
  };
  int breaches = 0;
  TableWriter t({"scalar", "A", "B", "delta%", "status"}, std::cout, 24);
  for (const Scalar& s : scalars) {
    const double delta = s.y != 0.0 ? (s.x - s.y) / std::abs(s.y)
                                    : (s.x == 0.0 ? 0.0 : 1.0);
    const bool breach = delta > tol;
    if (breach) ++breaches;
    t.row(s.name, s.x, s.y, delta * 100.0, breach ? "BREACH" : "ok");
  }
  if (breaches != 0) {
    std::cout << "\nFAIL: " << breaches << " congestion scalar(s) regressed "
              << "more than " << tol * 100 << "% vs baseline\n";
    return 1;
  }
  std::cout << "\nOK: no congestion regressions vs baseline\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double tol = 0.10;
  bool tol_set = false;
  std::size_t top = 20;
  bool expect_root_adjacent = false;
  double budget = 0.35;
  double util_threshold = 0.75;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--tol=", 0) == 0) {
      tol = std::stod(std::string(arg.substr(6)));
      tol_set = true;
    } else if (arg.rfind("--top=", 0) == 0) {
      top = std::stoull(std::string(arg.substr(6)));
    } else if (arg == "--expect-root-adjacent") {
      expect_root_adjacent = true;
    } else if (arg.rfind("--budget=", 0) == 0) {
      budget = std::stod(std::string(arg.substr(9)));
    } else if (arg.rfind("--util=", 0) == 0) {
      util_threshold = std::stod(std::string(arg.substr(7)));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: nf-inspect [--tol=0.10] REPORT.json "
                   "[BASELINE.json]\n"
                   "       nf-inspect critical-path REPORT.json\n"
                   "       nf-inspect hotspots [--top=20] "
                   "[--expect-root-adjacent] REPORT.json\n"
                   "       nf-inspect levels [--tol=0.01] REPORT.json\n"
                   "       nf-inspect overhead [--budget=0.35] REPORT.json\n"
                   "       nf-inspect congestion [--util=0.75] REPORT.json "
                   "[BASELINE.json]\n"
                   "  one file: summarize + gate cost-model conformance\n"
                   "  two files: regression-diff A against baseline B\n"
                   "  critical-path: per-session gating chain + per-phase "
                   "slack (schema v5 lineage)\n"
                   "  hotspots: heaviest links + per-level utilization "
                   "(schema v6 link_stats)\n"
                   "  levels: per-level bytes vs cost-model level terms\n"
                   "  overhead: gate obs self-overhead against a budget "
                   "fraction of engine wall\n"
                   "  congestion: saturated levels/links, backlog depth + "
                   "gated rounds; with a\n"
                   "    baseline, gate the deterministic queueing scalars "
                   "(schema v7)\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "nf-inspect: unknown flag " << arg << "\n";
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (!paths.empty() && paths[0] == "critical-path") {
    if (paths.size() != 2) {
      std::cerr << "usage: nf-inspect critical-path REPORT.json\n";
      return 2;
    }
    return critical_path_cmd(load(paths[1]), paths[1]);
  }
  if (!paths.empty() && paths[0] == "hotspots") {
    if (paths.size() != 2) {
      std::cerr << "usage: nf-inspect hotspots [--top=20] "
                   "[--expect-root-adjacent] REPORT.json\n";
      return 2;
    }
    return hotspots_cmd(load(paths[1]), paths[1], top, expect_root_adjacent);
  }
  if (!paths.empty() && paths[0] == "levels") {
    if (paths.size() != 2) {
      std::cerr << "usage: nf-inspect levels [--tol=0.01] REPORT.json\n";
      return 2;
    }
    // Per-level reconciliation is exact by construction for gated cells,
    // so default much tighter than the conformance gate.
    return levels_cmd(load(paths[1]), paths[1], tol_set ? tol : 0.01);
  }
  if (!paths.empty() && paths[0] == "congestion") {
    if (paths.size() != 2 && paths.size() != 3) {
      std::cerr << "usage: nf-inspect congestion [--util=0.75] REPORT.json "
                   "[BASELINE.json]\n";
      return 2;
    }
    if (paths.size() == 2) {
      return congestion_cmd(load(paths[1]), paths[1], util_threshold);
    }
    return congestion_diff_cmd(load(paths[1]), load(paths[2]), paths[1],
                               paths[2], tol);
  }
  if (!paths.empty() && paths[0] == "overhead") {
    if (paths.size() != 2) {
      std::cerr << "usage: nf-inspect overhead [--budget=0.35] "
                   "REPORT.json\n";
      return 2;
    }
    return overhead_cmd(load(paths[1]), paths[1], budget);
  }
  if (paths.empty() || paths.size() > 2) {
    std::cerr << "usage: nf-inspect [--tol=0.10] REPORT.json "
                 "[BASELINE.json] | nf-inspect "
                 "critical-path|hotspots|levels|overhead|congestion "
                 "REPORT.json\n";
    return 2;
  }
  const Json a = load(paths[0]);
  if (paths.size() == 1) return inspect_one(a, paths[0], tol);
  const Json b = load(paths[1]);
  return diff_reports(a, b, paths[0], paths[1], tol);
}
