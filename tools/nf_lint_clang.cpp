// nf-lint Clang LibTooling engine (optional; see nf_lint.h).
//
// Compiled only when the build found a Clang CMake package
// (NF_LINT_HAVE_CLANG); machines without libclang dev headers build the
// token engine alone and `--engine=auto` falls back transparently. This
// engine resolves real types over an exported compile_commands.json, so it
// has none of the token engine's spelling heuristics: an unordered_map
// hidden behind a typedef still matches, and a std::map keyed by an alias
// of PeerId still trips nf-arena-map.
//
// Parity note: the null-guard half of nf-obs-context stays textual (a
// backward window scan identical to the token engine's) because "is there a
// guard in sight" is a convention about code shape, not something the AST
// answers better — and both engines must agree on what src/ counts as
// clean.
#ifdef NF_LINT_HAVE_CLANG

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Tooling/JSONCompilationDatabase.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/Path.h"

#include "nf_lint.h"
#include "nf_lint_cap.h"
#include "nf_lint_lex.h"

namespace nf::lint {
namespace {

using namespace clang;
using namespace clang::ast_matchers;

std::string collapse(const std::string& s) {
  std::string out;
  bool space = false;
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      space = !out.empty();
    } else {
      if (space) out += ' ';
      out += c;
      space = false;
    }
  }
  return out;
}

std::string strip_spaces(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) out += c;
  }
  return out;
}

bool in_dir(const std::string& path, const std::string& dir) {
  const std::string p = "/" + path;
  return p.find("/" + dir + "/") != std::string::npos;
}

bool ends_with(const std::string& s, const std::string& tail) {
  return s.size() >= tail.size() &&
         s.compare(s.size() - tail.size(), tail.size(), tail) == 0;
}

/// Shared state for all matcher callbacks of one tool run.
struct Sink {
  std::vector<Finding>* findings = nullptr;
  /// Absolute-path -> display-path for the files the driver asked about;
  /// matches landing anywhere else (system headers, generated code) drop.
  std::set<std::string> wanted;
  std::string cwd;

  /// Maps an absolute path back to the repo-relative spelling the baseline
  /// uses; returns empty when the location is out of scope.
  std::string display_path(llvm::StringRef abs) const {
    std::string p = abs.str();
    for (char& c : p) {
      if (c == '\\') c = '/';
    }
    if (wanted.count(p) == 0) return {};
    if (!cwd.empty() && p.rfind(cwd + "/", 0) == 0) {
      return p.substr(cwd.size() + 1);
    }
    return p;
  }

  void add(Check check, const SourceManager& sm, SourceLocation loc,
           std::string message) {
    const SourceLocation spell = sm.getExpansionLoc(loc);
    if (spell.isInvalid() || sm.isInSystemHeader(spell)) return;
    const auto* entry = sm.getFileEntryForID(sm.getFileID(spell));
    if (entry == nullptr) return;
    llvm::SmallString<256> abs(entry->tryGetRealPathName());
    if (abs.empty()) abs = entry->getName();
    const std::string path = display_path(abs.str());
    if (path.empty()) return;
    const unsigned line = sm.getSpellingLineNumber(spell);
    Finding f;
    f.check = check;
    f.path = path;
    f.line = static_cast<int>(line);
    f.message = std::move(message);
    const llvm::StringRef buf = sm.getBufferData(sm.getFileID(spell));
    std::size_t start = 0, seen = 1;
    for (std::size_t i = 0; i < buf.size() && seen < line; ++i) {
      if (buf[i] == '\n') {
        ++seen;
        start = i + 1;
      }
    }
    const std::size_t eol = buf.find('\n', start);
    f.snippet = collapse(buf.substr(start, eol - start).str());
    // One diagnostic per (check, path, line), across TUs re-including the
    // same header.
    for (const Finding& g : *findings) {
      if (g.check == f.check && g.line == f.line && g.path == f.path) return;
    }
    findings->push_back(std::move(f));
  }

  /// The token engine's backward guard-window scan, on the raw buffer.
  bool guarded(const SourceManager& sm, SourceLocation loc,
               const std::string& chain) const {
    if (chain.empty()) return false;
    const SourceLocation spell = sm.getExpansionLoc(loc);
    const llvm::StringRef buf = sm.getBufferData(sm.getFileID(spell));
    const unsigned line = sm.getSpellingLineNumber(spell);
    std::vector<std::string> lines;
    std::string cur;
    for (const char c : buf) {
      if (c == '\n') {
        lines.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    lines.push_back(cur);
    const unsigned first = line > 40 ? line - 40 : 1;
    for (unsigned li = first; li <= line && li <= lines.size(); ++li) {
      const std::string flat = strip_spaces(lines[li - 1]);
      for (const std::string& pat :
           {chain + "!=nullptr", chain + "==nullptr", "if(" + chain + ")",
            "!" + chain, chain + "&&", "&&" + chain, chain + "?"}) {
        if (flat.find(pat) != std::string::npos) return true;
      }
    }
    return false;
  }
};

class Callback : public MatchFinder::MatchCallback {
 public:
  explicit Callback(Sink& sink) : sink_(sink) {}

  void run(const MatchFinder::MatchResult& result) override {
    const SourceManager& sm = *result.SourceManager;
    if (const auto* s = result.Nodes.getNodeAs<CXXForRangeStmt>("ufor")) {
      sink_.add(Check::kUnorderedIteration, sm, s->getBeginLoc(),
                "range-for over an unordered container: emission order is "
                "nondeterministic; materialize into a sorted vector first");
    }
    if (const auto* e = result.Nodes.getNodeAs<CXXMemberCallExpr>("ubegin")) {
      sink_.add(Check::kUnorderedIteration, sm, e->getBeginLoc(),
                "iterator over an unordered container: traversal order is "
                "nondeterministic; materialize into a sorted vector first");
    }
    if (const auto* d = result.Nodes.getNodeAs<DeclRefExpr>("entropy")) {
      const std::string path = current_path(sm, d->getBeginLoc());
      if (!exempt_entropy(path)) {
        sink_.add(Check::kBannedEntropy, sm, d->getBeginLoc(),
                  "'" + d->getNameInfo().getAsString() +
                      "' is ambient entropy: draw from seeded nf::Rng / "
                      "counter-keyed streams; wall time lives in obs");
      }
    }
    if (const auto* tl = result.Nodes.getNodeAs<TypeLoc>("entropyType")) {
      const std::string path = current_path(sm, tl->getBeginLoc());
      if (!exempt_entropy(path)) {
        sink_.add(Check::kBannedEntropy, sm, tl->getBeginLoc(),
                  "wall-clock / random_device type in protocol code: "
                  "reproducibility requires seeded entropy only");
      }
    }
    if (const auto* c =
            result.Nodes.getNodeAs<CXXMemberCallExpr>("sendtagged")) {
      if (!exempt_runtime(current_path(sm, c->getBeginLoc()))) {
        sink_.add(Check::kEnvelopeDiscipline, sm, c->getBeginLoc(),
                  "Phase component calls send_tagged directly: use "
                  "PhaseContext::send_raw / TypedPhase::send");
      }
    }
    if (const auto* c = result.Nodes.getNodeAs<CXXConstructExpr>("rawenv")) {
      if (!exempt_runtime(current_path(sm, c->getBeginLoc()))) {
        sink_.add(Check::kEnvelopeDiscipline, sm, c->getBeginLoc(),
                  "Phase component constructs a raw Envelope: tags bypass "
                  "the SessionMux; send through the PhaseContext");
      }
    }
    if (const auto* d = result.Nodes.getNodeAs<DeclRefExpr>("nosession")) {
      if (!exempt_runtime(current_path(sm, d->getBeginLoc()))) {
        sink_.add(Check::kEnvelopeDiscipline, sm, d->getBeginLoc(),
                  "Phase component references kNoSession: phase traffic "
                  "must stay attributed to its session");
      }
    }
    if (const auto* v = result.Nodes.getNodeAs<ValueDecl>("nodemap")) {
      sink_.add(Check::kArenaMap, sm, v->getBeginLoc(),
                "node-keyed std::map for per-peer state: peers are dense "
                "0..N-1, use PeerArena<T> (common/arena.h)");
    }
    if (const auto* m = result.Nodes.getNodeAs<MemberExpr>("obsderef")) {
      const std::string path = current_path(sm, m->getBeginLoc());
      if (!path.empty() && !in_dir(path, "obs")) {
        std::string chain;
        const Expr* base = m->getBase()->IgnoreParenImpCasts();
        if (const auto* dre = dyn_cast<DeclRefExpr>(base)) {
          chain = dre->getNameInfo().getAsString();
        } else if (const auto* me = dyn_cast<MemberExpr>(base)) {
          chain = me->getMemberNameInfo().getAsString();
        }
        if (!sink_.guarded(sm, m->getBeginLoc(), chain)) {
          sink_.add(Check::kObsContext, sm, m->getBeginLoc(),
                    "dereference of obs::Context '" + chain +
                        "' with no null guard in sight: obs is nullable by "
                        "contract (obs/context.h)");
        }
      }
    }
    if (const auto* c = result.Nodes.getNodeAs<CXXMemberCallExpr>("obsloop")) {
      const std::string path = current_path(sm, c->getBeginLoc());
      if (!path.empty() && !in_dir(path, "obs")) {
        sink_.add(Check::kObsContext, sm, c->getBeginLoc(),
                  "string-keyed registry handle lookup inside a loop; hoist "
                  "the handle (see Engine::set_obs)");
      }
    }
  }

 private:
  std::string current_path(const SourceManager& sm, SourceLocation loc) {
    const SourceLocation spell = sm.getExpansionLoc(loc);
    const auto* entry = sm.getFileEntryForID(sm.getFileID(spell));
    if (entry == nullptr) return {};
    llvm::SmallString<256> abs(entry->tryGetRealPathName());
    if (abs.empty()) abs = entry->getName();
    return sink_.display_path(abs.str());
  }

  static bool exempt_entropy(const std::string& path) {
    return path.empty() || in_dir(path, "obs") || in_dir(path, "bench");
  }

  static bool exempt_runtime(const std::string& path) {
    return path.empty() || ends_with(path, "net/session.h") ||
           ends_with(path, "net/session.cpp") ||
           ends_with(path, "net/engine.h") ||
           ends_with(path, "net/engine.cpp") ||
           ends_with(path, "net/envelope.h");
  }

  Sink& sink_;
};

/// Extracts the capability model (nf_lint_cap.h) from real ASTs. The model
/// mirrors the token engine's *surface* facts on purpose — the spelled
/// callee name, the innermost written qualifier, the receiver identifier —
/// rather than fully-resolved callees, because the shared cap::analyze()
/// resolution heuristics are part of the checks' contract: both engines
/// must agree on what src/ counts as clean, and feeding the same analyzer
/// the same surface model is what guarantees byte-for-byte findings.
class CapCollector : public MatchFinder::MatchCallback {
 public:
  explicit CapCollector(Sink& sink) : sink_(sink) {}

  cap::Model model;

  void run(const MatchFinder::MatchResult& result) override {
    const auto* fd = result.Nodes.getNodeAs<FunctionDecl>("capfn");
    if (fd == nullptr || fd->isImplicit() || fd->isTemplateInstantiation() ||
        fd->isOverloadedOperator() || isa<CXXConversionDecl>(fd)) {
      return;
    }
    const auto* method = dyn_cast<CXXMethodDecl>(fd);
    if (method != nullptr && method->getParent()->isLambda()) return;
    const SourceManager& sm = *result.SourceManager;
    const std::string path = path_of(sm, fd->getLocation());
    if (path.empty()) return;

    cap::Function fn;
    fn.name = fd->getNameAsString();
    if (fn.name.empty() || !lex::ident_start(fn.name[0])) {
      // Destructors: the token engine folds '~' into the name.
      if (fn.name.empty() || fn.name[0] != '~') return;
    }
    fn.path = path;
    fn.line = line_of(sm, fd->getLocation());
    if (method != nullptr) fn.cls = method->getParent()->getNameAsString();
    for (const auto* attr : fd->attrs()) {
      if (const auto* ann = dyn_cast<AnnotateAttr>(attr)) {
        fn.caps |= cap::capability_from_annotation(ann->getAnnotation().str());
      }
    }
    fn.has_body = fd->doesThisDeclarationHaveABody();
    const std::string key = path + "|" + std::to_string(fn.line) + "|" +
                            fn.display() + (fn.has_body ? "|d" : "");
    if (!dedup_.insert(key).second) return;
    ensure_lines(path);
    if (fn.has_body) walk(fd->getBody(), sm, reserved_for(path), fn);
    model.functions.push_back(std::move(fn));
  }

 private:
  static int line_of(const SourceManager& sm, SourceLocation loc) {
    return static_cast<int>(
        sm.getSpellingLineNumber(sm.getExpansionLoc(loc)));
  }

  std::string path_of(const SourceManager& sm, SourceLocation loc) const {
    const SourceLocation spell = sm.getExpansionLoc(loc);
    if (spell.isInvalid()) return {};
    const auto* entry = sm.getFileEntryForID(sm.getFileID(spell));
    if (entry == nullptr) return {};
    llvm::SmallString<256> abs(entry->tryGetRealPathName());
    if (abs.empty()) abs = entry->getName();
    return sink_.display_path(abs.str());
  }

  void ensure_lines(const std::string& path) {
    if (model.lines.count(path) > 0) return;
    lex::SourceFile sf;
    if (lex::load_file(path, sf)) model.lines[path] = sf.raw;
  }

  /// The same lexical "reserve in sight" evidence the token engine uses —
  /// deliberately textual, like the nf-obs-context guard window: it is a
  /// convention about code shape, and both engines must read it alike.
  const std::vector<std::string>& reserved_for(const std::string& path) {
    const auto it = reserved_by_path_.find(path);
    if (it != reserved_by_path_.end()) return it->second;
    std::vector<std::string> reserved;
    lex::SourceFile sf;
    if (lex::load_file(path, sf)) {
      reserved = cap::reserve_evidence(
          lex::lex(sf, /*skip_preprocessor=*/true));
    }
    return reserved_by_path_.emplace(path, std::move(reserved)).first->second;
  }

  /// The token engine's receiver spelling: the identifier right before the
  /// '.'/'->', "this" for explicit this, "?" when the base is not a plain
  /// identifier (call results, dereferences).
  static std::string receiver_of(const Expr* base) {
    if (base == nullptr) return "?";
    base = base->IgnoreParenImpCasts();
    if (const auto* dre = dyn_cast<DeclRefExpr>(base)) {
      return dre->getNameInfo().getAsString();
    }
    if (const auto* me = dyn_cast<MemberExpr>(base)) {
      return me->getMemberNameInfo().getAsString();
    }
    if (isa<CXXThisExpr>(base)) return "this";
    return "?";
  }

  static std::string qualifier_of(const NestedNameSpecifier* q) {
    if (q == nullptr) return {};
    switch (q->getKind()) {
      case NestedNameSpecifier::Identifier:
        return q->getAsIdentifier()->getName().str();
      case NestedNameSpecifier::Namespace:
        return q->getAsNamespace()->getNameAsString();
      case NestedNameSpecifier::NamespaceAlias:
        return q->getAsNamespaceAlias()->getNameAsString();
      case NestedNameSpecifier::TypeSpec:
      case NestedNameSpecifier::TypeSpecWithTemplate: {
        const Type* t = q->getAsType();
        if (const auto* rd = t->getAsCXXRecordDecl()) {
          return rd->getNameAsString();
        }
        return {};
      }
      default:
        return {};
    }
  }

  static bool is_std_record(QualType qt, llvm::StringRef name) {
    if (qt.isNull() || qt->isReferenceType() || qt->isPointerType()) {
      return false;
    }
    const auto* rd = qt->getAsCXXRecordDecl();
    return rd != nullptr && rd->getName() == name && rd->isInStdNamespace();
  }

  void walk(const Stmt* s, const SourceManager& sm,
            const std::vector<std::string>& reserved, cap::Function& fn) {
    if (s == nullptr) return;
    static const std::set<std::string> grow_ops = {
        "push_back", "emplace_back", "emplace", "push_front", "insert"};
    if (const auto* call = dyn_cast<CallExpr>(s)) {
      // Operator calls never look like `ident (` to the token engine.
      if (!isa<CXXOperatorCallExpr>(call)) {
        const Expr* callee = call->getCallee();
        if (callee != nullptr) callee = callee->IgnoreParenImpCasts();
        std::string name, qualifier, receiver;
        SourceLocation name_loc;
        bool dotted = false;  // spelled with '.'/'->' (grow-op candidate)
        if (const auto* me = dyn_cast_or_null<MemberExpr>(callee)) {
          name = me->getMemberNameInfo().getAsString();
          name_loc = me->getMemberNameInfo().getLoc();
          if (!me->isImplicitAccess()) {
            receiver = receiver_of(me->getBase());
            dotted = true;
          }
        } else if (const auto* dre = dyn_cast_or_null<DeclRefExpr>(callee)) {
          name = dre->getNameInfo().getAsString();
          name_loc = dre->getNameInfo().getLoc();
          qualifier = qualifier_of(dre->getQualifier());
        } else if (const auto* ule =
                       dyn_cast_or_null<UnresolvedLookupExpr>(callee)) {
          name = ule->getNameInfo().getAsString();
          name_loc = ule->getNameInfo().getLoc();
          qualifier = qualifier_of(ule->getQualifier());
        } else if (const auto* dme =
                       dyn_cast_or_null<CXXDependentScopeMemberExpr>(
                           callee)) {
          name = dme->getMemberNameInfo().getAsString();
          name_loc = dme->getMemberNameInfo().getLoc();
          if (!dme->isImplicitAccess()) {
            receiver = receiver_of(dme->getBase());
            dotted = true;
          }
        } else if (const auto* ume =
                       dyn_cast_or_null<UnresolvedMemberExpr>(callee)) {
          name = ume->getMemberNameInfo().getAsString();
          name_loc = ume->getMemberNameInfo().getLoc();
          if (!ume->isImplicitAccess()) {
            receiver = receiver_of(ume->getBase());
            dotted = true;
          }
        }
        if (!name.empty() && lex::ident_start(name[0])) {
          cap::CallSite cs;
          cs.callee = name;
          cs.qualifier = qualifier;
          cs.receiver = receiver;
          cs.line = line_of(sm, name_loc);
          const int call_line = cs.line;
          fn.calls.push_back(std::move(cs));
          if (dotted && grow_ops.count(name) > 0) {
            const std::string recv = receiver == "?" ? std::string()
                                                     : receiver;
            const bool has_reserve =
                !recv.empty() &&
                std::binary_search(reserved.begin(), reserved.end(), recv);
            if (!has_reserve) {
              fn.effects.push_back(
                  {cap::EffectKind::kGrowContainer,
                   recv.empty() ? name : recv + "." + name, call_line});
            }
          }
        }
      }
    }
    if (const auto* ne = dyn_cast<CXXNewExpr>(s)) {
      if (ne->getNumPlacementArgs() == 0) {
        fn.effects.push_back(
            {cap::EffectKind::kNew, "", line_of(sm, ne->getBeginLoc())});
      }
    }
    if (const auto* th = dyn_cast<CXXThrowExpr>(s)) {
      if (th->getSubExpr() != nullptr) {
        fn.effects.push_back(
            {cap::EffectKind::kThrow, "", line_of(sm, th->getThrowLoc())});
      }
    }
    if (const auto* tmp = dyn_cast<CXXTemporaryObjectExpr>(s)) {
      if (is_std_record(tmp->getType(), "basic_string")) {
        fn.effects.push_back(
            {cap::EffectKind::kString, "", line_of(sm, tmp->getBeginLoc())});
      }
    }
    if (const auto* ds = dyn_cast<DeclStmt>(s)) {
      for (const Decl* d : ds->decls()) {
        const auto* vd = dyn_cast<VarDecl>(d);
        if (vd == nullptr) continue;
        const int line = line_of(sm, vd->getTypeSpecStartLoc());
        if (is_std_record(vd->getType(), "basic_string")) {
          fn.effects.push_back({cap::EffectKind::kString, "", line});
        } else if (is_std_record(vd->getType(), "function")) {
          fn.effects.push_back({cap::EffectKind::kFunction, "", line});
        }
      }
    }
    if (const auto* me = dyn_cast<MemberExpr>(s)) {
      touch(me->getMemberNameInfo().getAsString(),
            line_of(sm, me->getMemberNameInfo().getLoc()), fn);
    }
    if (const auto* dre = dyn_cast<DeclRefExpr>(s)) {
      touch(dre->getNameInfo().getAsString(),
            line_of(sm, dre->getNameInfo().getLoc()), fn);
    }
    for (const Stmt* child : s->children()) walk(child, sm, reserved, fn);
  }

  static void touch(const std::string& name, int line, cap::Function& fn) {
    for (const std::string& m : cap::guarded_members()) {
      if (name == m) {
        fn.touches.push_back({m, line});
        return;
      }
    }
  }

  Sink& sink_;
  std::set<std::string> dedup_;
  std::map<std::string, std::vector<std::string>> reserved_by_path_;
};

auto unordered_type() {
  return qualType(hasUnqualifiedDesugaredType(recordType(hasDeclaration(
      namedDecl(hasAnyName("::std::unordered_map", "::std::unordered_set",
                           "::std::unordered_multimap",
                           "::std::unordered_multiset"))))));
}

auto phase_member() {
  return hasAncestor(cxxRecordDecl(
      isDerivedFrom(cxxRecordDecl(hasName("::nf::net::Phase")))));
}

}  // namespace

bool clang_engine_available() { return true; }

bool run_clang_engine(const std::vector<std::string>& paths,
                      const std::vector<Check>& checks,
                      const std::string& compdb_dir,
                      std::vector<Finding>& findings, std::string& error) {
  std::string db_error;
  std::unique_ptr<tooling::CompilationDatabase> db =
      tooling::CompilationDatabase::loadFromDirectory(compdb_dir, db_error);
  if (db == nullptr) {
    error = "cannot load compile_commands.json from '" + compdb_dir +
            "': " + db_error;
    return false;
  }

  Sink sink;
  sink.findings = &findings;
  llvm::SmallString<256> cwd;
  if (!llvm::sys::fs::current_path(cwd)) sink.cwd = cwd.str().str();
  std::vector<std::string> sources;
  for (const std::string& p : paths) {
    llvm::SmallString<256> abs(p);
    llvm::sys::fs::make_absolute(abs);
    llvm::sys::path::remove_dots(abs, /*remove_dot_dot=*/true);
    sink.wanted.insert(abs.str().str());
    if (ends_with(p, ".cpp") || ends_with(p, ".cc") || ends_with(p, ".cxx")) {
      sources.push_back(abs.str().str());
    }
  }
  if (sources.empty()) {
    error = "no translation units among the given paths";
    return false;
  }

  const auto enabled = [&checks](Check c) {
    return std::find(checks.begin(), checks.end(), c) != checks.end();
  };
  MatchFinder finder;
  Callback cb(sink);
  CapCollector capcb(sink);
  const bool want_cap = enabled(Check::kCapThread) ||
                        enabled(Check::kCapNoalloc) ||
                        enabled(Check::kCapComplete);
  if (want_cap) finder.addMatcher(functionDecl().bind("capfn"), &capcb);
  if (enabled(Check::kUnorderedIteration)) {
    finder.addMatcher(
        cxxForRangeStmt(hasRangeInit(expr(hasType(unordered_type()))))
            .bind("ufor"),
        &cb);
    finder.addMatcher(
        cxxMemberCallExpr(callee(cxxMethodDecl(hasAnyName(
                              "begin", "end", "cbegin", "cend"))),
                          on(expr(hasType(unordered_type()))))
            .bind("ubegin"),
        &cb);
  }
  if (enabled(Check::kBannedEntropy)) {
    finder.addMatcher(
        declRefExpr(to(functionDecl(hasAnyName(
                        "::rand", "::srand", "::time", "::clock_gettime",
                        "::gettimeofday", "::timespec_get", "::std::rand",
                        "::std::srand", "::std::time"))))
            .bind("entropy"),
        &cb);
    finder.addMatcher(
        typeLoc(loc(qualType(hasDeclaration(namedDecl(hasAnyName(
                    "::std::random_device", "::std::chrono::system_clock",
                    "::std::chrono::steady_clock",
                    "::std::chrono::high_resolution_clock"))))))
            .bind("entropyType"),
        &cb);
  }
  if (enabled(Check::kEnvelopeDiscipline)) {
    finder.addMatcher(
        cxxMemberCallExpr(callee(cxxMethodDecl(hasName("send_tagged"))),
                          phase_member())
            .bind("sendtagged"),
        &cb);
    finder.addMatcher(
        cxxConstructExpr(
            hasType(cxxRecordDecl(hasName("::nf::net::Envelope"))),
            phase_member())
            .bind("rawenv"),
        &cb);
    finder.addMatcher(
        declRefExpr(to(varDecl(hasName("kNoSession"))), phase_member())
            .bind("nosession"),
        &cb);
  }
  if (enabled(Check::kArenaMap)) {
    finder.addMatcher(
        valueDecl(hasType(qualType(hasDeclaration(
                      classTemplateSpecializationDecl(
                          hasAnyName("::std::map", "::std::unordered_map",
                                     "::std::multimap"),
                          hasTemplateArgument(
                              0, refersToType(hasDeclaration(namedDecl(
                                     hasAnyName("::nf::PeerId",
                                                "::nf::NodeId")))))))))
                  .bind("nodemap"),
        &cb);
  }
  if (enabled(Check::kObsContext)) {
    finder.addMatcher(
        memberExpr(member(hasAnyName("registry", "tracer", "series",
                                     "conformance")),
                   hasObjectExpression(expr(hasType(pointsTo(
                       cxxRecordDecl(hasName("::nf::obs::Context")))))))
            .bind("obsderef"),
        &cb);
    finder.addMatcher(
        cxxMemberCallExpr(
            callee(cxxMethodDecl(
                hasAnyName("counter", "gauge", "histogram"),
                ofClass(hasName("::nf::obs::MetricsRegistry")))),
            hasAncestor(stmt(anyOf(forStmt(), whileStmt(), doStmt(),
                                   cxxForRangeStmt()))))
            .bind("obsloop"),
        &cb);
  }

  tooling::ClangTool tool(*db, sources);
  tool.setPrintErrorMessage(false);
  tool.run(tooling::newFrontendActionFactory(&finder).get());
  if (want_cap) cap::analyze(capcb.model, checks, findings);
  sort_findings(findings);
  return true;
}

}  // namespace nf::lint

#endif  // NF_LINT_HAVE_CLANG
