// Whole-program capability & effect analysis for nf-lint (nf_lint.h).
//
// The engines do not run this analysis themselves — they *extract* a
// CapModel (function definitions with their declared capabilities, call
// sites, allocation-effect sites, guarded-member touches) and hand it to
// one shared analyzer, so findings, messages and ordering are identical
// whichever engine produced the model:
//
//   * the token engine lexes every file (nf_lint_lex.h) and parses
//     definitions/declarations with scope tracking (nf_lint_cap.cpp);
//   * the Clang engine walks real ASTs over compile_commands.json and maps
//     [[clang::annotate("nf::cap::...")]] attributes + direct callees into
//     the same model (nf_lint_clang.cpp).
//
// Three checks run over the model (docs/STATIC_ANALYSIS.md "Capability
// model", macros in src/common/capability.h):
//
//   nf-cap-thread    no NF_ENGINE_THREAD API is reachable from an
//                    NF_SHARD_CONTEXT root (NF_REENTRANT is the traversal
//                    barrier); plus the folded PR-8 rule: LinkStats::charge
//                    anywhere but net/engine.cpp.
//   nf-cap-noalloc   no allocating construct (operator new, growing
//                    container ops without a reserve in sight, std::string
//                    / std::function temporaries, throw) is reachable from
//                    an NF_STEADY_NOALLOC root.
//   nf-cap-complete  a function touching the engine's merge-order-
//                    sensitive guarded members must declare a capability.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nf_lint.h"
#include "nf_lint_lex.h"

namespace nf::lint::cap {

// Capability bits, one per macro in src/common/capability.h.
inline constexpr unsigned kCapEngineThread = 1u << 0;
inline constexpr unsigned kCapShardContext = 1u << 1;
inline constexpr unsigned kCapReentrant = 1u << 2;
inline constexpr unsigned kCapSteadyNoalloc = 1u << 3;

/// NF_ENGINE_THREAD -> kCapEngineThread, ... ; 0 for anything else.
unsigned capability_from_macro(const std::string& token);

/// "nf::cap::engine_thread" -> kCapEngineThread, ... ; 0 for anything else
/// (the [[clang::annotate]] string the macros expand to).
unsigned capability_from_annotation(const std::string& annotation);

/// Human-readable macro spelling(s) of a mask, e.g. "NF_ENGINE_THREAD".
std::string capability_names(unsigned mask);

/// Members of net::Engine whose mutation order is protocol-visible: the
/// nf-cap-complete check requires every function touching one to declare a
/// capability.
const std::vector<std::string>& guarded_members();

/// One call site inside a function body.
struct CallSite {
  std::string callee;     ///< unqualified name
  std::string qualifier;  ///< innermost spelled qualifier ("Engine" for
                          ///< Engine::admit(...)), empty otherwise
  std::string receiver;   ///< last identifier of the receiver chain for
                          ///< member calls ("link_stats_"), empty for bare
  int line = 0;
};

enum class EffectKind : std::uint8_t {
  kNew,           ///< non-placement operator new
  kThrow,         ///< throw with an operand (allocates the exception)
  kString,        ///< by-value std::string construction / temporary
  kFunction,      ///< by-value std::function (capture may allocate)
  kGrowContainer  ///< push_back/emplace/insert with no reserve in sight
};

struct EffectSite {
  EffectKind kind;
  std::string detail;  ///< receiver.op for container growth, else empty
  int line = 0;
};

struct MemberTouch {
  std::string member;
  int line = 0;
};

/// One function definition or declaration.
struct Function {
  std::string cls;   ///< enclosing or spelled class; empty for free
  std::string name;  ///< unqualified name
  std::string path;  ///< display path ('/'-separated)
  int line = 0;
  unsigned caps = 0;
  bool has_body = false;
  std::vector<CallSite> calls;
  std::vector<EffectSite> effects;
  std::vector<MemberTouch> touches;

  [[nodiscard]] std::string display() const {
    return cls.empty() ? name : cls + "::" + name;
  }
};

/// The whole-program model one engine extracted.
struct Model {
  std::vector<Function> functions;
  /// Raw source lines per display path, for finding snippets.
  std::map<std::string, std::vector<std::string>> lines;
};

/// Token-engine extraction: parses definitions/declarations out of `file`
/// and appends them (use lex(file, /*skip_preprocessor=*/true) for `toks`
/// so macro definitions spelling the macros don't read as annotations).
void extract_from_tokens(const lex::SourceFile& file,
                         const std::vector<lex::Tok>& toks, Model& model);

/// Scans one function body's token range (open/close brace indices) for
/// call sites, effect sites and guarded-member touches. Shared with the
/// Clang engine so both classify effects identically. `reserved` holds
/// receiver identifiers with reserve() evidence in the same file.
void scan_body(const std::vector<lex::Tok>& toks, std::size_t body_open,
               std::size_t body_close,
               const std::vector<std::string>& reserved, Function& fn);

/// Receiver identifiers that appear in a `x.reserve(...)` call anywhere in
/// the token stream — the "reserve in sight" evidence for container-growth
/// effects.
std::vector<std::string> reserve_evidence(const std::vector<lex::Tok>& toks);

/// Runs the enabled capability checks over the model and appends findings.
/// Deterministic: the model is sorted internally before analysis.
void analyze(Model& model, const std::vector<Check>& checks,
             std::vector<Finding>& findings);

}  // namespace nf::lint::cap
