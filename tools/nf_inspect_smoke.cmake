# ctest driver for nf_inspect_smoke: run fig5 --quick with a JSON report and
# a trace-event file, then require nf-inspect to pass its gated conformance
# checks at the default tolerance.
execute_process(
  COMMAND ${FIG5} --quick --json=fig5_inspect_smoke.json
          --trace-out=fig5_inspect_smoke.trace.json
  RESULT_VARIABLE bench_rc
  OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "fig5_filter_size failed: ${bench_rc}")
endif()

execute_process(
  COMMAND ${INSPECT} fig5_inspect_smoke.json
  RESULT_VARIABLE inspect_rc)
if(NOT inspect_rc EQUAL 0)
  message(FATAL_ERROR "nf-inspect gated a conformance breach: ${inspect_rc}")
endif()

file(READ fig5_inspect_smoke.trace.json trace_text LIMIT 256)
if(NOT trace_text MATCHES "traceEvents")
  message(FATAL_ERROR "--trace-out did not produce a trace-event document")
endif()

# Multiplexed-query report: the schema v4 "sessions" section must round-trip
# through nf-inspect as a per-session traffic breakdown.
execute_process(
  COMMAND ${MULTIQUERY} --quick --json=multiquery_inspect_smoke.json
  RESULT_VARIABLE mq_rc
  OUTPUT_QUIET)
if(NOT mq_rc EQUAL 0)
  message(FATAL_ERROR "ablation_multiquery failed: ${mq_rc}")
endif()

execute_process(
  COMMAND ${INSPECT} multiquery_inspect_smoke.json
  RESULT_VARIABLE mq_inspect_rc
  OUTPUT_VARIABLE mq_inspect_out)
if(NOT mq_inspect_rc EQUAL 0)
  message(FATAL_ERROR "nf-inspect failed on multiquery report: ${mq_inspect_rc}")
endif()
if(NOT mq_inspect_out MATCHES "== sessions \\(")
  message(FATAL_ERROR "nf-inspect printed no per-session traffic breakdown")
endif()
if(NOT mq_inspect_out MATCHES "q0")
  message(FATAL_ERROR "per-session breakdown names no session")
endif()

# Schema v5 lineage: the critical-path subcommand must print a gating chain
# per session and agree with each session's recorded rounds_total.
execute_process(
  COMMAND ${INSPECT} critical-path multiquery_inspect_smoke.json
  RESULT_VARIABLE cp_rc
  OUTPUT_VARIABLE cp_out)
if(NOT cp_rc EQUAL 0)
  message(FATAL_ERROR "nf-inspect critical-path failed: ${cp_rc}")
endif()
if(NOT cp_out MATCHES "== critical path: q0")
  message(FATAL_ERROR "critical-path printed no gating chain for q0")
endif()
if(NOT cp_out MATCHES "== recorded rounds_total")
  message(FATAL_ERROR "critical-path did not cross-check rounds_total")
endif()
if(cp_out MATCHES "MISMATCH")
  message(FATAL_ERROR "a gating chain disagrees with recorded rounds_total")
endif()
