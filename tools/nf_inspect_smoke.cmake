# ctest driver for nf_inspect_smoke: run fig5 --quick with a JSON report and
# a trace-event file, then require nf-inspect to pass its gated conformance
# checks at the default tolerance.
execute_process(
  COMMAND ${FIG5} --quick --json=fig5_inspect_smoke.json
          --trace-out=fig5_inspect_smoke.trace.json
  RESULT_VARIABLE bench_rc
  OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "fig5_filter_size failed: ${bench_rc}")
endif()

execute_process(
  COMMAND ${INSPECT} fig5_inspect_smoke.json
  RESULT_VARIABLE inspect_rc)
if(NOT inspect_rc EQUAL 0)
  message(FATAL_ERROR "nf-inspect gated a conformance breach: ${inspect_rc}")
endif()

file(READ fig5_inspect_smoke.trace.json trace_text LIMIT 256)
if(NOT trace_text MATCHES "traceEvents")
  message(FATAL_ERROR "--trace-out did not produce a trace-event document")
endif()
