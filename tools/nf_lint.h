// nf-lint: project-specific invariant linter (docs/STATIC_ANALYSIS.md).
//
// The stack's correctness rests on conventions the compiler never checks:
// bit-identical sharded execution requires deterministic emission order and
// counter-keyed entropy, the session runtime requires every Phase send to
// carry its (session, phase) envelope tags, and the obs layer requires
// null-guarded contexts plus cached metric handles on hot paths. nf-lint
// turns those conventions into diagnostics.
//
// Two engines share this header and the driver in nf_lint.cpp:
//   * a dependency-free token-level analyzer (always built, what CI runs),
//   * a Clang LibTooling pass over compile_commands.json (nf_lint_clang.cpp,
//     compiled only when find_package(Clang) succeeds; sharper on types).
// Both emit `Finding`s; suppression, baseline and report handling are
// engine-independent.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace nf::lint {

enum class Check : std::uint8_t {
  kUnorderedIteration,  // nf-determinism-unordered-iteration
  kBannedEntropy,       // nf-determinism-banned-entropy
  kEnvelopeDiscipline,  // nf-envelope-discipline
  kArenaMap,            // nf-arena-map
  kObsContext,          // nf-obs-context
  kFlatPayload,         // nf-flat-payload
  kLinkModel,           // nf-link-model
  kCapThread,           // nf-cap-thread
  kCapNoalloc,          // nf-cap-noalloc
  kCapComplete,         // nf-cap-complete
};

inline constexpr Check kAllChecks[] = {
    Check::kUnorderedIteration, Check::kBannedEntropy,
    Check::kEnvelopeDiscipline, Check::kArenaMap, Check::kObsContext,
    Check::kFlatPayload, Check::kLinkModel, Check::kCapThread,
    Check::kCapNoalloc, Check::kCapComplete};

/// The whole-program capability checks (common/capability.h): run over a
/// cross-file call graph instead of one file at a time, and the only checks
/// whose messages are engine-independent (tests/lint parity relies on it).
inline constexpr Check kCapChecks[] = {Check::kCapThread, Check::kCapNoalloc,
                                       Check::kCapComplete};

inline const char* check_name(Check c) {
  switch (c) {
    case Check::kUnorderedIteration:
      return "nf-determinism-unordered-iteration";
    case Check::kBannedEntropy:
      return "nf-determinism-banned-entropy";
    case Check::kEnvelopeDiscipline:
      return "nf-envelope-discipline";
    case Check::kArenaMap:
      return "nf-arena-map";
    case Check::kObsContext:
      return "nf-obs-context";
    case Check::kFlatPayload:
      return "nf-flat-payload";
    case Check::kLinkModel:
      return "nf-link-model";
    case Check::kCapThread:
      return "nf-cap-thread";
    case Check::kCapNoalloc:
      return "nf-cap-noalloc";
    case Check::kCapComplete:
      return "nf-cap-complete";
  }
  return "?";
}

inline const char* check_description(Check c) {
  switch (c) {
    case Check::kUnorderedIteration:
      return "unordered_map/set in protocol code: iteration order is "
             "nondeterministic; materialize into a sorted vector before "
             "emission or use a deterministic container";
    case Check::kBannedEntropy:
      return "ambient entropy (std::rand, std::random_device, wall clocks) "
             "outside src/obs and bench/: draw from seeded nf::Rng or "
             "counter-keyed hash streams instead";
    case Check::kEnvelopeDiscipline:
      return "Phase components must send through PhaseContext::send_raw / "
             "TypedPhase::send so (session, phase) envelope tags and causal "
             "lineage parents are threaded; raw tagging and hand-stamped "
             "lineage ids belong to the session runtime";
    case Check::kArenaMap:
      return "node-keyed std::map for per-peer state: peers are dense "
             "0..N-1, use PeerArena<T> (common/arena.h)";
    case Check::kObsContext:
      return "obs::Context hygiene: null-guard dereferences and hoist "
             "string-keyed metric-handle lookups out of loops";
    case Check::kFlatPayload:
      return "Phase components on the hot path must ship flat slab-backed "
             "payloads (net::FlatPhase + PayloadRef, net/payload.h), not "
             "std::any objects via TypedPhase/send_raw: object payloads "
             "allocate per message and break the zero-alloc steady state";
    case Check::kLinkModel:
      return "LinkQueueTable state may only be mutated by the engine's "
             "canonical-order scheduler in net/engine.cpp: schedule/"
             "drain_round elsewhere would fork the backlog ledger and "
             "break bit-identical sharded congestion (net/link_model.h)";
    case Check::kCapThread:
      return "no NF_ENGINE_THREAD API may be reachable from an "
             "NF_SHARD_CONTEXT root over the whole-program call graph: "
             "engine-thread bookkeeping is canonical-order sensitive "
             "(common/capability.h); includes the LinkStats::charge "
             "engine-only rule";
    case Check::kCapNoalloc:
      return "no allocating construct (new, growing container ops without "
             "a reserve in sight, std::string/std::function temporaries, "
             "throw) may be reachable from an NF_STEADY_NOALLOC root: the "
             "warmed steady-state round performs zero heap allocations "
             "(tests/steady_alloc_test.cpp is the dynamic twin)";
    case Check::kCapComplete:
      return "a function touching the engine's guarded members "
             "(link_stats_, link_queues_, lineage_, ...) must declare a "
             "capability macro so the reachability checks can see it "
             "(common/capability.h)";
  }
  return "?";
}

struct Finding {
  Check check;
  std::string path;     ///< as passed on the command line, '/'-separated
  int line = 0;         ///< 1-based
  std::string message;  ///< site-specific detail
  std::string snippet;  ///< trimmed source line, whitespace-collapsed
};

/// Stable, line-number-free identity used by the baseline file, so findings
/// survive unrelated edits that shift lines.
inline std::string finding_key(const Finding& f) {
  return std::string(check_name(f.check)) + "|" + f.path + "|" + f.snippet;
}

inline void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return static_cast<int>(a.check) < static_cast<int>(b.check);
            });
}

/// Token-level engine (nf_lint.cpp). `paths` are files, not directories.
std::vector<Finding> run_token_engine(const std::vector<std::string>& paths,
                                      const std::vector<Check>& checks);

/// Clang LibTooling engine. Returns false (with `error` set) when the
/// binary was built without Clang support or the compilation database at
/// `compdb_dir` cannot be loaded.
bool run_clang_engine(const std::vector<std::string>& paths,
                      const std::vector<Check>& checks,
                      const std::string& compdb_dir,
                      std::vector<Finding>& findings, std::string& error);

/// True when this binary was compiled with the LibTooling engine.
bool clang_engine_available();

}  // namespace nf::lint
