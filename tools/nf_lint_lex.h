// Shared lexing layer for nf-lint's token-level analyses (nf_lint.h).
//
// Extracted from the per-file checks in nf_lint.cpp when the whole-program
// capability pass (nf_lint_cap.h) arrived: both consume the same
// sanitized-token view of a source file, and the Clang engine reuses the
// body scanner for effect sites so the two engines classify allocation
// constructs identically. Everything here is dependency-free and
// deterministic: same bytes in, same tokens out.
#pragma once

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace nf::lint::lex {

/// One scanned file: the raw lines (for snippets and suppression comments)
/// plus a sanitized twin with comments and literals blanked so token scans
/// never trip on prose or quoted code.
struct SourceFile {
  std::string path;               // display path, '/'-separated
  std::vector<std::string> raw;   // as on disk (comments intact)
  std::vector<std::string> code;  // comments and literals blanked out
};

inline std::string normalize_path(std::string p) {
  for (char& c : p) {
    if (c == '\\') c = '/';
  }
  return p;
}

inline std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

/// Blanks comments, string literals and char literals (newlines kept).
inline std::string sanitize(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class St { kCode, kLine, kBlock, kStr, kChar, kRaw };
  St st = St::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char n = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLine;
          out += "  ";
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::kBlock;
          out += "  ";
          ++i;
        } else if (c == 'R' && n == '"' &&
                   (out.empty() || !(std::isalnum(out.back()) != 0 ||
                                     out.back() == '_'))) {
          st = St::kRaw;
          raw_delim.clear();
          std::size_t j = i + 2;
          while (j < text.size() && text[j] != '(') raw_delim += text[j++];
          out += "  ";
          out.append(raw_delim.size() + 1, ' ');
          i = j;
        } else if (c == '"') {
          st = St::kStr;
          out += ' ';
        } else if (c == '\'') {
          st = St::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case St::kBlock:
        if (c == '*' && n == '/') {
          st = St::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::kStr:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          st = St::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case St::kRaw: {
        const std::string close = ")" + raw_delim + "\"";
        if (text.compare(i, close.size(), close) == 0) {
          st = St::kCode;
          out.append(close.size(), ' ');
          i += close.size() - 1;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      }
    }
  }
  return out;
}

inline bool load_file(const std::string& path, SourceFile& file) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  file.path = normalize_path(path);
  file.raw = split_lines(text);
  file.code = split_lines(sanitize(text));
  file.code.resize(file.raw.size());
  return true;
}

struct Tok {
  std::string text;
  int line = 0;  // 1-based
};

inline bool ident_start(char c) { return std::isalpha(c) != 0 || c == '_'; }
inline bool ident_char(char c) { return std::isalnum(c) != 0 || c == '_'; }

/// Tokenizes the sanitized view. `skip_preprocessor` additionally drops
/// whole `#...` directive lines (with `\` continuations) — the capability
/// pass wants declarations only, not macro definitions spelling the same
/// tokens.
inline std::vector<Tok> lex(const SourceFile& file,
                            bool skip_preprocessor = false) {
  std::vector<Tok> toks;
  bool in_directive = false;
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& s = file.code[li];
    const int line = static_cast<int>(li) + 1;
    if (skip_preprocessor) {
      if (!in_directive) {
        std::size_t k = 0;
        while (k < s.size() && std::isspace(s[k]) != 0) ++k;
        if (k < s.size() && s[k] == '#') in_directive = true;
      }
      if (in_directive) {
        std::size_t last = s.find_last_not_of(" \t");
        in_directive = last != std::string::npos && s[last] == '\\';
        continue;
      }
    }
    for (std::size_t i = 0; i < s.size();) {
      const char c = s[i];
      if (std::isspace(c) != 0) {
        ++i;
      } else if (ident_start(c)) {
        std::size_t j = i + 1;
        while (j < s.size() && ident_char(s[j])) ++j;
        toks.push_back({s.substr(i, j - i), line});
        i = j;
      } else if (std::isdigit(c) != 0) {
        std::size_t j = i + 1;
        while (j < s.size() && (ident_char(s[j]) || s[j] == '.')) ++j;
        toks.push_back({s.substr(i, j - i), line});
        i = j;
      } else if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
        toks.push_back({"::", line});
        i += 2;
      } else if (c == '-' && i + 1 < s.size() && s[i + 1] == '>') {
        toks.push_back({"->", line});
        i += 2;
      } else {
        toks.push_back({std::string(1, c), line});
        ++i;
      }
    }
  }
  return toks;
}

inline const std::string& tok_at(const std::vector<Tok>& t, std::size_t i) {
  static const std::string empty;
  return i < t.size() ? t[i].text : empty;
}

/// Receiver chain (identifiers joined by '.'/'::') ending just before
/// token `end` — e.g. for `config_.obs->` returns "config_.obs".
inline std::string chain_before(const std::vector<Tok>& t, std::size_t end) {
  std::string chain;
  std::size_t i = end;
  while (i > 0) {
    const std::string& s = t[i - 1].text;
    if (s == "." || s == "::" || ident_start(s[0])) {
      chain.insert(0, s);
      --i;
    } else {
      break;
    }
  }
  return chain;
}

/// Index of the matching ')' for the '(' at `open`, or t.size().
inline std::size_t match_paren(const std::vector<Tok>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == "(") ++depth;
    if (t[i].text == ")" && --depth == 0) return i;
  }
  return t.size();
}

inline std::string collapse_ws(const std::string& s) {
  std::string out;
  bool space = false;
  for (const char c : s) {
    if (std::isspace(c) != 0) {
      space = !out.empty();
    } else {
      if (space) out += ' ';
      out += c;
      space = false;
    }
  }
  return out;
}

inline std::string strip_ws(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (std::isspace(c) == 0) out += c;
  }
  return out;
}

/// True when `path` has `dir` as one of its directory components.
inline bool in_dir(const std::string& path, const std::string& dir) {
  const std::string p = "/" + path;
  return p.find("/" + dir + "/") != std::string::npos;
}

inline bool path_ends_with(const std::string& path, const std::string& tail) {
  return path.size() >= tail.size() &&
         path.compare(path.size() - tail.size(), tail.size(), tail) == 0;
}

}  // namespace nf::lint::lex
