// Capability model extraction (token engine) and the shared whole-program
// analyzer behind nf-cap-thread / nf-cap-noalloc / nf-cap-complete
// (nf_lint_cap.h).
//
// The token-side extractor is a deliberate over-approximation of C++: it
// tracks namespace/class scopes by brace matching, recognizes function
// definitions and declarations by the `ident (` shape at declaration scope,
// and attributes everything inside a body (lambdas included) to the
// enclosing function. What it cannot see — virtual dispatch, inheritance,
// templates specialized by name — the annotation discipline covers:
// override sets are annotated directly (every FlatPhase::on_flat override
// carries its own NF_STEADY_NOALLOC), so roots never depend on resolving a
// virtual call. Resolution is by qualified name when spelled, same-class
// first for bare calls, and name-across-classes (narrowed by a
// receiver-name heuristic) for member calls — each an over-approximation
// in the sound direction for a linter with suppressions.
#include "nf_lint_cap.h"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <map>
#include <set>

namespace nf::lint::cap {
namespace {

using lex::SourceFile;
using lex::Tok;
using lex::chain_before;
using lex::ident_start;
using lex::match_paren;
using lex::tok_at;

/// Statement/expression keywords that can precede a '(' without naming a
/// callable, plus declaration keywords that never name a function.
bool is_noncall_keyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",       "for",      "while",     "switch",   "return",
      "catch",    "sizeof",   "alignof",   "alignas",  "decltype",
      "noexcept", "static_assert", "assert", "defined", "new",
      "delete",   "throw",    "operator",  "co_await", "co_return",
      "void",     "int",      "bool",      "char",     "auto",
      "double",   "float",    "long",      "short",    "unsigned",
      "signed",   "const",    "constexpr", "typename", "template",
      "using",    "typedef",  "explicit",  "static",   "inline",
      "virtual",  "friend",   "else",      "do",       "case"};
  return kw.count(s) > 0;
}

/// All-caps identifiers are treated as macros, not functions.
bool looks_like_macro(const std::string& s) {
  bool has_alpha = false;
  for (const char c : s) {
    if (std::islower(c) != 0) return false;
    if (std::isupper(c) != 0) has_alpha = true;
  }
  return has_alpha;
}

bool is_plain_ident(const std::string& s) {
  return !s.empty() && ident_start(s[0]);
}

/// Index of the matching '}' for the '{' at `open`, or t.size().
std::size_t match_brace(const std::vector<Tok>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == "{") ++depth;
    if (t[i].text == "}" && --depth == 0) return i;
  }
  return t.size();
}

/// Skips a balanced template-argument list starting at `i` if t[i] == "<";
/// returns the index just past it (or `i` unchanged).
std::size_t skip_angles(const std::vector<Tok>& t, std::size_t i) {
  if (tok_at(t, i) != "<") return i;
  int angle = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].text == "<") ++angle;
    if (t[j].text == ">" && --angle == 0) return j + 1;
    if (t[j].text == ";" || t[j].text == "{") break;  // not a template list
  }
  return i;
}

struct Scope {
  enum Kind { kNamespace, kClass, kOther } kind = kOther;
  std::string name;
};

/// Classifies the '{' at `open` by scanning its declaration head backwards
/// to the previous ';', '{' or '}'.
Scope classify_brace(const std::vector<Tok>& t, std::size_t open) {
  std::size_t b = open;
  while (b > 0 && t[b - 1].text != ";" && t[b - 1].text != "{" &&
         t[b - 1].text != "}") {
    --b;
  }
  Scope scope;
  bool is_enum = false;
  for (std::size_t k = b; k < open; ++k) {
    const std::string& s = t[k].text;
    if (s == "enum" || s == "union") is_enum = true;
    if (s == "namespace") {
      scope.kind = Scope::kNamespace;
      if (is_plain_ident(tok_at(t, k + 1))) scope.name = t[k + 1].text;
      return scope;
    }
    if ((s == "class" || s == "struct") && !is_enum) {
      scope.kind = Scope::kClass;
      for (std::size_t n = k + 1; n < open; ++n) {
        if (is_plain_ident(t[n].text) && !looks_like_macro(t[n].text) &&
            t[n].text != "final" && t[n].text != "alignas") {
          scope.name = t[n].text;
          break;
        }
      }
      return scope;
    }
  }
  return scope;  // kOther
}

/// Capability macros read backwards from the declaration head: from the
/// function-name token to the previous ';', '{', '}' or access-specifier
/// ':'.
unsigned caps_before(const std::vector<Tok>& t, std::size_t name_start) {
  unsigned caps = 0;
  for (std::size_t k = name_start; k > 0; --k) {
    const std::string& s = t[k - 1].text;
    if (s == ";" || s == "{" || s == "}" || s == ":") break;
    caps |= capability_from_macro(s);
  }
  return caps;
}

struct ParsedFn {
  bool ok = false;
  bool has_body = false;
  std::size_t body_open = 0;   // valid when has_body
  std::size_t resume = 0;      // outer-loop index to continue from
  std::string name;
  std::string spelled_cls;     // explicit A::B qualifier (innermost)
  std::size_t name_start = 0;  // first token of the qualified name
  int line = 0;
};

/// Tries to parse a function declaration or definition whose parameter '('
/// sits at index `open`. Returns ok=false for anything that is not one
/// (variable initializers, macro calls, control flow...).
ParsedFn parse_function_at(const std::vector<Tok>& t, std::size_t open) {
  ParsedFn fn;
  if (open == 0) return fn;
  const std::string& name = t[open - 1].text;
  if (!is_plain_ident(name) || is_noncall_keyword(name) ||
      looks_like_macro(name)) {
    return fn;
  }
  fn.name = name;
  fn.line = t[open - 1].line;
  fn.name_start = open - 1;
  // Destructor: fold '~' into the name.
  if (fn.name_start > 0 && t[fn.name_start - 1].text == "~") {
    fn.name = "~" + fn.name;
    --fn.name_start;
  }
  // Explicit qualification: A::B::name — record the innermost qualifier.
  while (fn.name_start >= 2 && t[fn.name_start - 1].text == "::" &&
         is_plain_ident(t[fn.name_start - 2].text)) {
    if (fn.spelled_cls.empty()) fn.spelled_cls = t[fn.name_start - 2].text;
    fn.name_start -= 2;
  }
  // A member access before the name means a call, not a declaration.
  if (fn.name_start > 0 && (t[fn.name_start - 1].text == "." ||
                            t[fn.name_start - 1].text == "->")) {
    return fn;
  }

  const std::size_t close = match_paren(t, open);
  if (close >= t.size()) return fn;
  std::size_t j = close + 1;
  while (j < t.size()) {
    const std::string& s = t[j].text;
    if (s == "const" || s == "override" || s == "final" || s == "volatile" ||
        s == "mutable" || s == "&" || s == "&&") {
      ++j;
    } else if (s == "noexcept") {
      ++j;
      if (tok_at(t, j) == "(") j = match_paren(t, j) + 1;
    } else if (s == "->") {
      // Trailing return type: consume up to the body/terminator.
      ++j;
      int angle = 0;
      while (j < t.size()) {
        const std::string& r = t[j].text;
        if (r == "<") ++angle;
        if (r == ">") --angle;
        if (angle == 0 && (r == "{" || r == ";" || r == "=")) break;
        ++j;
      }
    } else if (s == "=") {
      const std::string& v = tok_at(t, j + 1);
      if (v != "default" && v != "delete" && v != "0") return fn;
      // Declaration (defaulted/deleted/pure): resume at the ';'.
      while (j < t.size() && t[j].text != ";") ++j;
      fn.ok = true;
      fn.resume = j;
      return fn;
    } else if (s == ":") {
      // Constructor initializer list.
      ++j;
      while (j < t.size()) {
        while (j < t.size() &&
               (is_plain_ident(t[j].text) || t[j].text == "::")) {
          ++j;
          j = skip_angles(t, j);
        }
        if (tok_at(t, j) == "(") {
          j = match_paren(t, j) + 1;
        } else if (tok_at(t, j) == "{") {
          j = match_brace(t, j) + 1;
        } else {
          return fn;
        }
        if (tok_at(t, j) == "...") ++j;
        if (tok_at(t, j) == ",") {
          ++j;
          continue;
        }
        break;
      }
      if (tok_at(t, j) != "{") return fn;
      fn.ok = true;
      fn.has_body = true;
      fn.body_open = j;
      fn.resume = match_brace(t, j);
      return fn;
    } else if (s == "{") {
      fn.ok = true;
      fn.has_body = true;
      fn.body_open = j;
      fn.resume = match_brace(t, j);
      return fn;
    } else if (s == ";") {
      fn.ok = true;
      fn.resume = j;
      return fn;
    } else {
      return fn;
    }
  }
  return fn;
}

void add_cap_finding(Model& model, std::vector<Finding>& out, Check c,
                     const std::string& path, int line, std::string message) {
  for (const Finding& f : out) {
    if (f.check == c && f.line == line && f.path == path) return;
  }
  std::string snippet;
  const auto it = model.lines.find(path);
  if (it != model.lines.end() && line >= 1 &&
      line <= static_cast<int>(it->second.size())) {
    snippet = lex::collapse_ws(it->second[static_cast<std::size_t>(line) - 1]);
  }
  out.push_back({c, path, line, std::move(message), std::move(snippet)});
}

std::string snake_case(const std::string& cls) {
  std::string out;
  for (const char c : cls) {
    if (std::isupper(c) != 0) {
      if (!out.empty() && out.back() != '_') out += '_';
      out += static_cast<char>(std::tolower(c));
    } else {
      out += c;
    }
  }
  return out;
}

/// Does the receiver identifier plausibly name an instance of `cls`?
/// ("link_stats_" -> LinkStats, "writer" -> PayloadWriter.) Used only to
/// *narrow* member-call candidates, never to invent them.
bool receiver_suggests(const std::string& receiver, const std::string& cls) {
  std::string base;
  for (const char c : receiver) base += static_cast<char>(std::tolower(c));
  while (!base.empty() && base.back() == '_') base.pop_back();
  if (base.size() < 3) return false;
  const std::string snake = snake_case(cls);
  return snake.find(base) != std::string::npos ||
         base.find(snake) != std::string::npos;
}

std::string effect_text(const EffectSite& e) {
  switch (e.kind) {
    case EffectKind::kNew:
      return "operator new";
    case EffectKind::kThrow:
      return "throw (constructs the exception)";
    case EffectKind::kString:
      return "std::string construction";
    case EffectKind::kFunction:
      return "std::function value (capture may allocate)";
    case EffectKind::kGrowContainer:
      return "growing container op '" + e.detail +
             "' with no reserve in sight";
  }
  return "allocation";
}

}  // namespace

unsigned capability_from_macro(const std::string& token) {
  if (token == "NF_ENGINE_THREAD") return kCapEngineThread;
  if (token == "NF_SHARD_CONTEXT") return kCapShardContext;
  if (token == "NF_REENTRANT") return kCapReentrant;
  if (token == "NF_STEADY_NOALLOC") return kCapSteadyNoalloc;
  return 0;
}

unsigned capability_from_annotation(const std::string& annotation) {
  if (annotation == "nf::cap::engine_thread") return kCapEngineThread;
  if (annotation == "nf::cap::shard_context") return kCapShardContext;
  if (annotation == "nf::cap::reentrant") return kCapReentrant;
  if (annotation == "nf::cap::steady_noalloc") return kCapSteadyNoalloc;
  return 0;
}

std::string capability_names(unsigned mask) {
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += " ";
    out += name;
  };
  if ((mask & kCapEngineThread) != 0) add("NF_ENGINE_THREAD");
  if ((mask & kCapShardContext) != 0) add("NF_SHARD_CONTEXT");
  if ((mask & kCapReentrant) != 0) add("NF_REENTRANT");
  if ((mask & kCapSteadyNoalloc) != 0) add("NF_STEADY_NOALLOC");
  return out;
}

const std::vector<std::string>& guarded_members() {
  static const std::vector<std::string> members = {"lineage_", "link_queues_",
                                                   "link_stats_"};
  return members;
}

std::vector<std::string> reserve_evidence(const std::vector<Tok>& t) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if ((t[i + 1].text == "." || t[i + 1].text == "->") &&
        t[i + 2].text == "reserve" && tok_at(t, i + 3) == "(" &&
        is_plain_ident(t[i].text)) {
      out.push_back(t[i].text);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void scan_body(const std::vector<Tok>& t, std::size_t body_open,
               std::size_t body_close,
               const std::vector<std::string>& reserved, Function& fn) {
  static const std::set<std::string> grow_ops = {
      "push_back", "emplace_back", "emplace", "push_front", "insert"};
  const auto has_reserve = [&reserved](const std::string& recv) {
    return std::binary_search(reserved.begin(), reserved.end(), recv);
  };
  for (std::size_t j = body_open + 1; j < body_close && j < t.size(); ++j) {
    const std::string& s = t[j].text;
    // Call sites.
    if (s == "(" && j > 0) {
      const std::string& callee = t[j - 1].text;
      if (is_plain_ident(callee) && !is_noncall_keyword(callee) &&
          !looks_like_macro(callee) && capability_from_macro(callee) == 0) {
        CallSite call;
        call.callee = callee;
        call.line = t[j - 1].line;
        const std::string prev = j >= 2 ? t[j - 2].text : std::string();
        if (prev == "::") {
          if (j >= 3 && is_plain_ident(t[j - 3].text)) {
            call.qualifier = t[j - 3].text;
          }
        } else if (prev == "." || prev == "->") {
          if (j >= 3 && is_plain_ident(t[j - 3].text)) {
            call.receiver = t[j - 3].text;
          } else {
            call.receiver = "?";  // foo().bar(...) — unknown receiver
          }
        }
        fn.calls.push_back(std::move(call));
      }
    }
    // Effect sites.
    if (s == "new" && tok_at(t, j + 1) != "(" &&
        (j == 0 || t[j - 1].text != "operator")) {
      fn.effects.push_back({EffectKind::kNew, "", t[j].line});
    }
    if (s == "throw" && tok_at(t, j + 1) != ";") {
      fn.effects.push_back({EffectKind::kThrow, "", t[j].line});
    }
    if (s == "string" && j >= 2 && t[j - 1].text == "::" &&
        t[j - 2].text == "std") {
      const std::string& nxt = tok_at(t, j + 1);
      const bool temp = nxt == "(" || nxt == "{";
      const bool decl = is_plain_ident(nxt) && !is_noncall_keyword(nxt);
      if (temp || decl) {
        fn.effects.push_back({EffectKind::kString, "", t[j].line});
      }
    }
    if (s == "function" && j >= 2 && t[j - 1].text == "::" &&
        t[j - 2].text == "std") {
      const std::size_t after = skip_angles(t, j + 1);
      const std::string& nxt = tok_at(t, after);
      if (after != j + 1 && nxt != "&" && nxt != "*") {
        fn.effects.push_back({EffectKind::kFunction, "", t[j].line});
      }
    }
    if ((s == "." || s == "->") && grow_ops.count(tok_at(t, j + 1)) > 0 &&
        tok_at(t, j + 2) == "(") {
      const std::string recv =
          j > 0 && is_plain_ident(t[j - 1].text) ? t[j - 1].text
                                                 : std::string();
      if (recv.empty() || !has_reserve(recv)) {
        const std::string detail =
            (recv.empty() ? tok_at(t, j + 1)
                          : recv + "." + tok_at(t, j + 1));
        fn.effects.push_back(
            {EffectKind::kGrowContainer, detail, t[j + 1].line});
      }
    }
    // Guarded-member touches.
    if (is_plain_ident(s)) {
      for (const std::string& m : guarded_members()) {
        if (s == m) {
          fn.touches.push_back({m, t[j].line});
          break;
        }
      }
    }
  }
}

void extract_from_tokens(const SourceFile& file, const std::vector<Tok>& t,
                         Model& model) {
  if (model.lines.find(file.path) == model.lines.end()) {
    model.lines[file.path] = file.raw;
  }
  const std::vector<std::string> reserved = reserve_evidence(t);
  std::vector<Scope> scopes;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    const bool decl_scope =
        scopes.empty() || scopes.back().kind != Scope::kOther;
    if (s == "(" && decl_scope) {
      ParsedFn parsed = parse_function_at(t, i);
      if (parsed.ok) {
        Function fn;
        fn.name = parsed.name;
        fn.path = file.path;
        fn.line = parsed.line;
        fn.caps = caps_before(t, parsed.name_start);
        fn.has_body = parsed.has_body;
        if (!parsed.spelled_cls.empty()) {
          fn.cls = parsed.spelled_cls;
        } else {
          for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
            if (it->kind == Scope::kClass) {
              fn.cls = it->name;
              break;
            }
          }
        }
        if (parsed.has_body) {
          scan_body(t, parsed.body_open, parsed.resume, reserved, fn);
        }
        model.functions.push_back(std::move(fn));
        i = parsed.resume;  // skip the body / declaration wholesale
        continue;
      }
    }
    if (s == "{") {
      scopes.push_back(classify_brace(t, i));
    } else if (s == "}") {
      if (!scopes.empty()) scopes.pop_back();
    }
  }
}

void analyze(Model& model, const std::vector<Check>& checks,
             std::vector<Finding>& findings) {
  const auto enabled = [&checks](Check c) {
    return std::find(checks.begin(), checks.end(), c) != checks.end();
  };
  const bool want_thread = enabled(Check::kCapThread);
  const bool want_noalloc = enabled(Check::kCapNoalloc);
  const bool want_complete = enabled(Check::kCapComplete);
  if (!want_thread && !want_noalloc && !want_complete) return;

  auto& fns = model.functions;
  std::sort(fns.begin(), fns.end(), [](const Function& a, const Function& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return a.display() < b.display();
  });

  // Capabilities merge across declarations and definitions of one identity
  // (the header decl carries the macro; the .cpp definition inherits it).
  std::map<std::string, unsigned> caps_by_id;
  std::map<std::string, std::vector<std::size_t>> defs_by_id;
  std::map<std::string, std::vector<std::string>> ids_by_name;
  for (std::size_t i = 0; i < fns.size(); ++i) {
    const std::string id = fns[i].display();
    caps_by_id[id] |= fns[i].caps;
    if (fns[i].has_body) defs_by_id[id].push_back(i);
    ids_by_name[fns[i].name].push_back(id);
  }
  for (auto& [name, ids] : ids_by_name) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  }

  const auto resolve = [&](const Function& from,
                           const CallSite& c) -> std::vector<std::string> {
    if (!c.qualifier.empty()) {
      const std::string id = c.qualifier + "::" + c.callee;
      if (caps_by_id.count(id) > 0) return {id};
      return {};
    }
    if (c.receiver.empty()) {
      // Bare call: same class first, then a free function, then anything
      // sharing the name (inherited methods land here).
      if (!from.cls.empty()) {
        const std::string id = from.cls + "::" + c.callee;
        if (caps_by_id.count(id) > 0) return {id};
      }
      if (caps_by_id.count(c.callee) > 0) return {c.callee};
      const auto it = ids_by_name.find(c.callee);
      return it == ids_by_name.end() ? std::vector<std::string>{}
                                     : it->second;
    }
    // Member call: class methods sharing the name, narrowed to classes the
    // receiver identifier plausibly names when that leaves any.
    const auto it = ids_by_name.find(c.callee);
    if (it == ids_by_name.end()) return {};
    std::vector<std::string> cands;
    for (const std::string& id : it->second) {
      if (id.find("::") != std::string::npos) cands.push_back(id);
    }
    std::vector<std::string> suggested;
    for (const std::string& id : cands) {
      const std::string cls = id.substr(0, id.find("::"));
      if (receiver_suggests(c.receiver, cls)) suggested.push_back(id);
    }
    return suggested.empty() ? cands : suggested;
  };

  // Shared BFS used by both reachability checks: seeds are definitions
  // whose merged caps carry `root_cap`; `barrier_cap` stops descent.
  const auto reach = [&](unsigned root_cap, unsigned barrier_cap)
      -> std::vector<std::pair<std::size_t, std::string>> {
    std::deque<std::size_t> queue;
    std::map<std::size_t, std::string> root_of;
    for (std::size_t i = 0; i < fns.size(); ++i) {
      if (!fns[i].has_body) continue;
      if ((caps_by_id[fns[i].display()] & root_cap) != 0) {
        queue.push_back(i);
        root_of[i] = fns[i].display();
      }
    }
    std::vector<std::pair<std::size_t, std::string>> visited;
    std::set<std::size_t> seen;
    while (!queue.empty()) {
      const std::size_t cur = queue.front();
      queue.pop_front();
      if (!seen.insert(cur).second) continue;
      visited.emplace_back(cur, root_of[cur]);
      for (const CallSite& c : fns[cur].calls) {
        for (const std::string& id : resolve(fns[cur], c)) {
          const unsigned caps = caps_by_id[id];
          if ((caps & barrier_cap) != 0) continue;
          for (const std::size_t d : defs_by_id[id]) {
            if (seen.count(d) == 0 && root_of.count(d) == 0) {
              root_of[d] = root_of[cur];
            }
            if (seen.count(d) == 0) queue.push_back(d);
          }
        }
      }
    }
    return visited;
  };

  if (want_thread) {
    // Reachability: NF_ENGINE_THREAD must not be callable from shard roots.
    // NF_REENTRANT is the barrier; an engine-thread callee is the violation
    // (reported, not descended into).
    const auto visited =
        reach(kCapShardContext, kCapReentrant | kCapEngineThread);
    for (const auto& [idx, root] : visited) {
      const Function& f = fns[idx];
      for (const CallSite& c : f.calls) {
        for (const std::string& id : resolve(f, c)) {
          if ((caps_by_id[id] & kCapEngineThread) == 0) continue;
          add_cap_finding(
              model, findings, Check::kCapThread, f.path, c.line,
              "shard-context code '" + f.display() + "' (root '" + root +
                  "') calls engine-thread-only '" + id +
                  "': NF_ENGINE_THREAD bookkeeping is canonical-order "
                  "sensitive (common/capability.h)");
        }
      }
    }
    // Folded hard rule (ex nf-obs-context (c)): LinkStats::charge is
    // engine-only regardless of annotations — the Misra-Gries link summary
    // is merge-order sensitive. src/obs implements it and is exempt.
    for (const Function& f : fns) {
      if (!f.has_body || lex::in_dir(f.path, "obs") ||
          lex::path_ends_with(f.path, "net/engine.cpp")) {
        continue;
      }
      for (const CallSite& c : f.calls) {
        if (c.callee == "charge" &&
            c.receiver.rfind("link_stats", 0) == 0) {
          add_cap_finding(
              model, findings, Check::kCapThread, f.path, c.line,
              "LinkStats::charge outside net/engine.cpp: the link summary "
              "is merge-order sensitive; only the engine's canonical "
              "barrier merge may charge it (obs/link_stats.h)");
        }
      }
    }
  }

  if (want_noalloc) {
    // Every allocating construct reachable from an NF_STEADY_NOALLOC root
    // is a finding at the construct's site (no barrier: reentrancy does
    // not imply allocation freedom).
    const auto visited = reach(kCapSteadyNoalloc, 0);
    for (const auto& [idx, root] : visited) {
      const Function& f = fns[idx];
      std::vector<EffectSite> effects = f.effects;
      std::sort(effects.begin(), effects.end(),
                [](const EffectSite& a, const EffectSite& b) {
                  return a.line < b.line;
                });
      for (const EffectSite& e : effects) {
        std::string via = f.display() == root
                              ? std::string()
                              : " via '" + f.display() + "'";
        add_cap_finding(model, findings, Check::kCapNoalloc, f.path, e.line,
                        effect_text(e) +
                            " reachable from NF_STEADY_NOALLOC root '" +
                            root + "'" + via +
                            ": the warmed steady-state round must not "
                            "touch the heap (common/capability.h)");
      }
    }
  }

  if (want_complete) {
    for (const Function& f : fns) {
      if (!f.has_body || f.touches.empty()) continue;
      if (caps_by_id[f.display()] != 0) continue;
      MemberTouch first = f.touches.front();
      for (const MemberTouch& touch : f.touches) {
        if (touch.line < first.line) first = touch;
      }
      add_cap_finding(
          model, findings, Check::kCapComplete, f.path, first.line,
          "'" + f.display() + "' touches guarded engine member '" +
              first.member +
              "' but declares no capability; mark it NF_ENGINE_THREAD / "
              "NF_SHARD_CONTEXT / NF_REENTRANT / NF_STEADY_NOALLOC "
              "(common/capability.h)");
    }
  }
}

}  // namespace nf::lint::cap
