// nf-lint driver + dependency-free token-level engine (nf_lint.h).
//
// The token engine deliberately over-approximates: it cannot track aliasing
// or types across translation units, so it flags the *pattern* (an
// unordered container declared in protocol code, a wall-clock token outside
// obs/, a registry lookup under a loop) and relies on `// nf-lint:
// <check>-ok` suppressions where a human has proven the site safe. The
// Clang engine (nf_lint_clang.cpp, optional) resolves types instead of
// guessing from spelling. Both feed the same suppression/baseline pipeline
// below, so CI behaves identically whichever engine a machine can build.
//
// Lexing lives in nf_lint_lex.h (shared with the capability pass); the
// whole-program capability checks live in nf_lint_cap.cpp and run over a
// model extracted here file-by-file.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "nf_lint.h"
#include "nf_lint_cap.h"
#include "nf_lint_lex.h"

namespace nf::lint {
namespace {

using lex::SourceFile;
using lex::Tok;
using lex::chain_before;
using lex::ident_start;
using lex::in_dir;
using lex::load_file;
using lex::match_paren;
using lex::path_ends_with;
using lex::strip_ws;
using lex::tok_at;

void add_finding(std::vector<Finding>& out, const SourceFile& file, Check c,
                 int line, std::string message) {
  // One diagnostic per (check, line): `v.begin(), v.end()` is one problem.
  for (const Finding& f : out) {
    if (f.check == c && f.line == line && f.path == file.path) return;
  }
  const std::string& src =
      line >= 1 && line <= static_cast<int>(file.raw.size())
          ? file.raw[static_cast<std::size_t>(line) - 1]
          : std::string();
  out.push_back(
      {c, file.path, line, std::move(message), lex::collapse_ws(src)});
}

/// Per-token loop-body depth: >0 when the token sits inside a for/while
/// body (brace-delimited or single-statement).
std::vector<int> loop_depths(const std::vector<Tok>& t) {
  std::vector<int> depth(t.size(), 0);
  std::vector<bool> brace_is_loop;       // one entry per open '{'
  std::vector<std::size_t> single_at;    // brace depth of single-stmt loops
  std::set<std::size_t> loop_brace_idx;  // '{' indices that open loop bodies
  int cur = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if ((s == "for" || s == "while") && tok_at(t, i + 1) == "(") {
      const std::size_t close = match_paren(t, i + 1);
      if (close < t.size()) {
        if (tok_at(t, close + 1) == "{") {
          loop_brace_idx.insert(close + 1);
        } else if (tok_at(t, close + 1) != ";") {  // `do {} while ();` tail
          single_at.push_back(brace_is_loop.size());
          ++cur;
        }
      }
    }
    if (s == "{") {
      const bool is_loop = loop_brace_idx.count(i) > 0;
      brace_is_loop.push_back(is_loop);
      if (is_loop) ++cur;
    } else if (s == "}") {
      if (!brace_is_loop.empty()) {
        if (brace_is_loop.back()) --cur;
        brace_is_loop.pop_back();
      }
    } else if (s == ";") {
      while (!single_at.empty() && single_at.back() >= brace_is_loop.size()) {
        single_at.pop_back();
        --cur;
      }
    }
    depth[i] = cur;
  }
  return depth;
}

// ---------------------------------------------------------------------------
// Check 1: nf-determinism-unordered-iteration.
//
// Protocol emission order must be deterministic, and iterating a
// std::unordered_{map,set} is the classic way to lose that silently
// (PAPER.md §III's exactness claim survives only if every peer emits group
// sums in one canonical order). The token engine cannot prove a container
// is never iterated, so it flags the declaration too — membership-only
// containers either become sorted vectors (the usual fix) or carry an
// inline suppression stating the proof.

void check_unordered(const SourceFile& file, const std::vector<Tok>& t,
                     std::vector<Finding>& out) {
  std::set<std::string> unordered_vars;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].text != "std" || t[i + 1].text != "::") continue;
    const std::string& kind = t[i + 2].text;
    if (kind != "unordered_map" && kind != "unordered_set" &&
        kind != "unordered_multimap" && kind != "unordered_multiset") {
      continue;
    }
    add_finding(out, file, Check::kUnorderedIteration, t[i].line,
                "std::" + kind +
                    " in deterministic protocol code: iteration order is "
                    "unspecified; use a sorted vector / std::map, or "
                    "suppress with proof it is never iterated");
    // Track the declared name so iteration sites get their own finding.
    if (tok_at(t, i + 3) != "<") continue;
    int angle = 0;
    std::size_t j = i + 3;
    for (; j < t.size(); ++j) {
      if (t[j].text == "<") ++angle;
      if (t[j].text == ">" && --angle == 0) break;
    }
    ++j;
    while (j < t.size() &&
           (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) {
      ++j;
    }
    if (j < t.size() && ident_start(t[j].text[0]) &&
        tok_at(t, j + 1) != "(") {
      unordered_vars.insert(t[j].text);
    }
  }
  if (unordered_vars.empty()) return;

  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for over a tracked container.
    if (t[i].text == "for" && tok_at(t, i + 1) == "(") {
      const std::size_t close = match_paren(t, i + 1);
      std::size_t colon = 0;
      bool classic = false;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")") --depth;
        if (depth == 1 && t[j].text == ";") classic = true;
        if (depth == 1 && t[j].text == ":") colon = j;
      }
      if (!classic && colon != 0) {
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (unordered_vars.count(t[j].text) > 0) {
            add_finding(out, file, Check::kUnorderedIteration, t[j].line,
                        "range-for over unordered container '" + t[j].text +
                            "': emission order is nondeterministic; "
                            "materialize into a sorted vector first");
            break;
          }
        }
      }
    }
    // Iterator access on a tracked container (incl. vector(v.begin(), ...)).
    if (t[i].text == "." && i > 0 && unordered_vars.count(t[i - 1].text) > 0) {
      const std::string& m = tok_at(t, i + 1);
      if ((m == "begin" || m == "end" || m == "cbegin" || m == "cend" ||
           m == "rbegin" || m == "rend") &&
          tok_at(t, i + 2) == "(") {
        add_finding(out, file, Check::kUnorderedIteration, t[i].line,
                    "iterator over unordered container '" + t[i - 1].text +
                        "': traversal order is nondeterministic; "
                        "materialize into a sorted vector first");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 2: nf-determinism-banned-entropy.
//
// Every random draw must come from a seeded nf::Rng or a counter-keyed
// hash stream, and every timestamp from the obs layer — ambient entropy
// (wall clocks, std::rand) makes runs unreproducible and breaks the
// serial-vs-sharded bit-identity contract. src/obs and bench/ are exempt:
// wall-clock time is their job.

void check_entropy(const SourceFile& file, const std::vector<Tok>& t,
                   std::vector<Finding>& out) {
  if (in_dir(file.path, "obs") || in_dir(file.path, "bench")) return;
  static const std::set<std::string> banned_idents = {
      "random_device",  "system_clock", "steady_clock",
      "high_resolution_clock", "clock_gettime", "gettimeofday",
      "timespec_get"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (banned_idents.count(s) > 0) {
      add_finding(out, file, Check::kBannedEntropy, t[i].line,
                  "'" + s +
                      "' is ambient entropy: protocol code must draw from "
                      "seeded nf::Rng / counter-keyed hash streams and take "
                      "wall time from the obs layer only");
      continue;
    }
    if ((s == "rand" || s == "srand") && i >= 2 &&
        t[i - 1].text == "::" && t[i - 2].text == "std") {
      add_finding(out, file, Check::kBannedEntropy, t[i].line,
                  "std::" + s + " is unseeded global state; use nf::Rng");
      continue;
    }
    if (s == "time" && tok_at(t, i + 1) == "(") {
      const std::string prev = i > 0 ? t[i - 1].text : std::string();
      const bool member = prev == "." || prev == "->";
      const bool qualified_other =
          prev == "::" && i >= 2 && t[i - 2].text != "std";
      if (!member && !qualified_other) {
        add_finding(out, file, Check::kBannedEntropy, t[i].line,
                    "time() reads the wall clock; protocol code must be "
                    "reproducible from its seeds");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 3: nf-envelope-discipline.
//
// Inside a Phase component every send must go through PhaseContext::
// send_raw / TypedPhase::send, which thread the (session, phase) tags from
// net/envelope.h. Hand-rolled tagging (send_tagged, raw Envelope
// construction, kNoSession) bypasses the SessionMux's routing and traffic
// attribution; only the session runtime itself (net/session.*, net/engine.*)
// may touch those primitives. The same discipline covers causal lineage:
// parents come from ctx.cause() or an explicit parents span — referencing
// kNoLineage or writing an envelope's lineage field by hand hides the send
// from critical-path analysis (obs/lineage.h).

void check_envelope(const SourceFile& file, const std::vector<Tok>& t,
                    std::vector<Finding>& out) {
  if (path_ends_with(file.path, "net/session.h") ||
      path_ends_with(file.path, "net/session.cpp") ||
      path_ends_with(file.path, "net/engine.h") ||
      path_ends_with(file.path, "net/engine.cpp") ||
      path_ends_with(file.path, "net/envelope.h")) {
    return;
  }
  bool has_phase = false;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "public") continue;
    std::size_t j = i + 1;
    if (tok_at(t, j) == "net" && tok_at(t, j + 1) == "::") j += 2;
    const std::string& base = tok_at(t, j);
    if (base == "Phase" || base == "TypedPhase") {
      has_phase = true;
      break;
    }
  }
  if (!has_phase) return;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "send_tagged") {
      add_finding(out, file, Check::kEnvelopeDiscipline, t[i].line,
                  "Phase component calls send_tagged directly: session and "
                  "phase ids must come from the PhaseContext (send_raw / "
                  "TypedPhase::send), not be hand-threaded");
    } else if (s == "Envelope" && tok_at(t, i + 1) == "{") {
      add_finding(out, file, Check::kEnvelopeDiscipline, t[i].line,
                  "Phase component constructs a raw Envelope: tags bypass "
                  "the SessionMux; send through the PhaseContext");
    } else if (s == "kNoSession") {
      add_finding(out, file, Check::kEnvelopeDiscipline, t[i].line,
                  "Phase component references kNoSession: phase traffic "
                  "must stay attributed to its session");
    } else if (s == "kNoLineage") {
      add_finding(out, file, Check::kEnvelopeDiscipline, t[i].line,
                  "Phase component references kNoLineage: causal parents "
                  "come from ctx.cause() or an explicit parents span; "
                  "hand-rolling an empty lineage hides the send from "
                  "critical-path analysis");
    } else if (s == "lineage" && i > 0 &&
               (t[i - 1].text == "." || t[i - 1].text == "->") &&
               tok_at(t, i + 1) == "=" && tok_at(t, i + 2) != "=") {
      add_finding(out, file, Check::kEnvelopeDiscipline, t[i].line,
                  "Phase component writes an envelope's lineage id: ids are "
                  "stamped by the engine in canonical merge order; pass "
                  "causal parents through send(..., parents) instead");
    }
  }
}

// ---------------------------------------------------------------------------
// Check 4: nf-arena-map.
//
// Peers are dense 0..N-1 (common/ids.h), so node-keyed std::map /
// unordered_map per-peer state wastes cache, allocates per node, and (for
// the unordered flavour) iterates nondeterministically. PeerArena<T>
// (common/arena.h) is the project container: dense, shard-safe, and
// mechanically iterable in id order.

void check_arena_map(const SourceFile& file, const std::vector<Tok>& t,
                     std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (t[i].text != "std" || t[i + 1].text != "::") continue;
    const std::string& kind = t[i + 2].text;
    if (kind != "map" && kind != "unordered_map" && kind != "multimap") {
      continue;
    }
    if (tok_at(t, i + 3) != "<") continue;
    // Scan the first template argument (up to a top-level comma).
    int angle = 0;
    for (std::size_t j = i + 3; j < t.size(); ++j) {
      if (t[j].text == "<") ++angle;
      if (t[j].text == ">" && --angle == 0) break;
      if (t[j].text == "," && angle == 1) break;
      if (angle == 1 && (t[j].text == "PeerId" || t[j].text == "NodeId")) {
        add_finding(out, file, Check::kArenaMap, t[i].line,
                    "std::" + kind + "<" + t[j].text +
                        ", T> for per-peer state: peers are dense 0..N-1, "
                        "use PeerArena<T> (common/arena.h)");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 5: nf-obs-context.
//
// obs::Context rides protocol hot paths as a nullable pointer, so (a) every
// dereference needs a null guard in sight, and (b) string-keyed registry
// lookups (registry.counter("...")) may not sit inside loops — cache the
// handle once (see Engine::set_obs) and bump it. src/obs itself is exempt:
// it implements the registry. (The former rule (c) — LinkStats::charge
// outside net/engine.cpp — moved to the whole-program nf-cap-thread pass,
// nf_lint_cap.cpp.)

void check_obs_context(const SourceFile& file, const std::vector<Tok>& t,
                       const std::vector<int>& loop_depth,
                       std::vector<Finding>& out) {
  if (in_dir(file.path, "obs")) return;
  static const std::set<std::string> members = {
      "registry", "tracer", "series", "conformance", "link_stats"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    // (a) unguarded `x->registry` etc.
    if (t[i].text == "->" && members.count(tok_at(t, i + 1)) > 0) {
      const std::string chain = chain_before(t, i);
      bool guarded = false;
      if (!chain.empty()) {
        const int line = t[i].line;
        const int first = std::max(1, line - 40);
        for (int li = first; li <= line && !guarded; ++li) {
          const std::string flat =
              strip_ws(file.code[static_cast<std::size_t>(li) - 1]);
          for (const std::string& pat :
               {chain + "!=nullptr", chain + "==nullptr", "if(" + chain + ")",
                "!" + chain, chain + "&&", "&&" + chain, chain + "?"}) {
            if (flat.find(pat) != std::string::npos) {
              guarded = true;
              break;
            }
          }
        }
      }
      if (!guarded) {
        add_finding(out, file, Check::kObsContext, t[i].line,
                    "dereference of obs::Context '" + chain +
                        "' with no null guard in sight: obs is nullable by "
                        "contract (obs/context.h)");
      }
    }
    // (b) string-keyed handle lookup inside a loop.
    if (t[i].text == "registry" && tok_at(t, i + 1) == "." &&
        loop_depth[i] > 0) {
      const std::string& m = tok_at(t, i + 2);
      if ((m == "counter" || m == "gauge" || m == "histogram") &&
          tok_at(t, i + 3) == "(") {
        add_finding(out, file, Check::kObsContext, t[i].line,
                    "registry." + m +
                        "(...) inside a loop does a string-keyed lookup per "
                        "iteration; hoist the handle (see Engine::set_obs)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 6: nf-flat-payload.
//
// The million-peer hot path ships payloads as flat slab spans (net/payload.h
// PayloadRef into per-shard arenas) so a loss-free steady-state round loop
// performs zero heap allocations. In files that declare a Phase component,
// the legacy object pipeline — std::any payloads, PhaseContext::send_raw,
// TypedPhase bases — allocates per message, so each use needs either a
// migration to net::FlatPhase + send_flat or an inline suppression naming
// the site legacy. net/session.h is exempt: it defines both pipelines.

void check_flat_payload(const SourceFile& file, const std::vector<Tok>& t,
                        std::vector<Finding>& out) {
  if (path_ends_with(file.path, "net/session.h") ||
      path_ends_with(file.path, "net/session.cpp")) {
    return;
  }
  // Same Phase-subclass detection as nf-envelope-discipline: only files
  // declaring a Phase component are held to the payload discipline.
  bool has_phase = false;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "public") continue;
    std::size_t j = i + 1;
    if (tok_at(t, j) == "net" && tok_at(t, j + 1) == "::") j += 2;
    const std::string& base = tok_at(t, j);
    if (base == "Phase" || base == "TypedPhase" || base == "FlatPhase") {
      has_phase = true;
      break;
    }
  }
  if (!has_phase) return;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "any" && i >= 2 && t[i - 1].text == "::" &&
        t[i - 2].text == "std") {
      add_finding(out, file, Check::kFlatPayload, t[i].line,
                  "Phase component mentions std::any: object payloads "
                  "allocate per message; encode into the shard slab "
                  "(PhaseContext::flat_payload + send_flat) instead");
    } else if (s == "send_raw") {
      add_finding(out, file, Check::kFlatPayload, t[i].line,
                  "Phase component calls send_raw: the object pipeline "
                  "allocates per message; use send_flat with a PayloadRef");
    } else if (s == "TypedPhase") {
      const bool direct = i > 0 && t[i - 1].text == "public";
      const bool qualified = i >= 3 && t[i - 1].text == "::" &&
                             t[i - 2].text == "net" &&
                             t[i - 3].text == "public";
      if (direct || qualified) {
        add_finding(out, file, Check::kFlatPayload, t[i].line,
                    "TypedPhase base ships std::any payloads; hot-path "
                    "phases derive from net::FlatPhase and decode slab "
                    "spans (net/codec.h)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 7: nf-link-model.
//
// The per-link backlog ledger (net/link_model.h LinkQueueTable) is only
// deterministic because every mutation happens on the engine thread in
// canonical (major, minor) admission order, inside net/engine.cpp. A
// schedule()/drain_round() call anywhere else — a protocol peeking at
// capacity headroom, a bench draining queues itself — would fork the
// ledger and desynchronize serial vs sharded congestion. Matching is by
// the conventional member names (link_queues_ / link_queues), so a unit
// test exercising a standalone table under a local name is not flagged.

void check_link_model(const SourceFile& file, const std::vector<Tok>& t,
                      std::vector<Finding>& out) {
  if (path_ends_with(file.path, "net/engine.cpp") ||
      path_ends_with(file.path, "net/link_model.h") ||
      path_ends_with(file.path, "net/link_model.cpp")) {
    return;
  }
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    const bool queue_object = s == "link_queues" || s == "link_queues_" ||
                              s == "LinkQueueTable";
    if (queue_object &&
        (tok_at(t, i + 1) == "." || tok_at(t, i + 1) == "->" ||
         tok_at(t, i + 1) == "::")) {
      const std::string& m = tok_at(t, i + 2);
      if ((m == "schedule" || m == "drain_round") &&
          tok_at(t, i + 3) == "(") {
        add_finding(out, file, Check::kLinkModel, t[i].line,
                    "LinkQueueTable::" + m +
                        " outside net/engine.cpp: the backlog ledger is "
                        "admission-order sensitive; only the engine's "
                        "canonical scheduler may mutate it "
                        "(net/link_model.h)");
      }
    }
    // The congestion telemetry mirror: spill charges and backlog gauges
    // are snapshots of the engine-thread ledger; writing them elsewhere
    // misreports a ledger the writer cannot see.
    if ((s == "link_stats" || s == "link_stats_") &&
        (tok_at(t, i + 1) == "." || tok_at(t, i + 1) == "->")) {
      const std::string& m = tok_at(t, i + 2);
      if ((m == "charge_spill" || m == "set_backlog") &&
          tok_at(t, i + 3) == "(") {
        add_finding(out, file, Check::kLinkModel, t[i].line,
                    "LinkStats::" + m +
                        " outside net/engine.cpp: congestion telemetry "
                        "mirrors the engine-thread backlog ledger; only "
                        "the canonical scheduler may write it "
                        "(obs/link_stats.h)");
      }
    }
  }
}

}  // namespace

std::vector<Finding> run_token_engine(const std::vector<std::string>& paths,
                                      const std::vector<Check>& checks) {
  std::vector<Finding> out;
  const auto enabled = [&checks](Check c) {
    return std::find(checks.begin(), checks.end(), c) != checks.end();
  };
  const bool want_cap = enabled(Check::kCapThread) ||
                        enabled(Check::kCapNoalloc) ||
                        enabled(Check::kCapComplete);
  cap::Model model;
  for (const std::string& path : paths) {
    SourceFile file;
    if (!load_file(path, file)) {
      std::fprintf(stderr, "nf-lint: cannot read %s\n", path.c_str());
      continue;
    }
    const std::vector<Tok> toks = lex::lex(file);
    const std::vector<int> depth = loop_depths(toks);
    if (enabled(Check::kUnorderedIteration)) {
      check_unordered(file, toks, out);
    }
    if (enabled(Check::kBannedEntropy)) check_entropy(file, toks, out);
    if (enabled(Check::kEnvelopeDiscipline)) check_envelope(file, toks, out);
    if (enabled(Check::kArenaMap)) check_arena_map(file, toks, out);
    if (enabled(Check::kObsContext)) {
      check_obs_context(file, toks, depth, out);
    }
    if (enabled(Check::kFlatPayload)) check_flat_payload(file, toks, out);
    if (enabled(Check::kLinkModel)) check_link_model(file, toks, out);
    if (want_cap) {
      // The capability pass reads declarations, so macro-definition lines
      // spelling the same tokens must not leak in.
      const std::vector<Tok> cap_toks =
          lex::lex(file, /*skip_preprocessor=*/true);
      cap::extract_from_tokens(file, cap_toks, model);
    }
  }
  if (want_cap) cap::analyze(model, checks, out);
  sort_findings(out);
  return out;
}

#ifndef NF_LINT_HAVE_CLANG
bool clang_engine_available() { return false; }
bool run_clang_engine(const std::vector<std::string>&,
                      const std::vector<Check>&, const std::string&,
                      std::vector<Finding>&, std::string& error) {
  error = "built without Clang LibTooling support (find_package(Clang) "
          "failed at configure time); use --engine=tokens";
  return false;
}
#endif

}  // namespace nf::lint

// ---------------------------------------------------------------------------
// Driver.

namespace {

using nf::lint::Check;
using nf::lint::Finding;

struct Options {
  std::vector<std::string> paths;
  std::vector<Check> checks{std::begin(nf::lint::kAllChecks),
                            std::end(nf::lint::kAllChecks)};
  std::string baseline;
  std::string write_baseline;
  std::string report;
  std::string engine = "auto";  // auto | tokens | clang
  std::string compdb = "build";
  bool quiet = false;
  bool strict_suppressions = false;
};

int usage(const char* argv0) {
  std::printf(
      "usage: %s [options] [paths...]\n"
      "Scans C++ sources for netfilter invariant violations "
      "(docs/STATIC_ANALYSIS.md).\n\n"
      "  paths                  files or directories (default: src)\n"
      "  --check NAME           run only NAME (repeatable)\n"
      "  --baseline FILE        fail only on findings not in FILE\n"
      "  --write-baseline FILE  write current findings as the new baseline\n"
      "  --report FILE          also write the findings report to FILE\n"
      "  --engine E             auto|tokens|clang (default auto)\n"
      "  --compdb DIR           compile_commands.json dir for the clang "
      "engine (default build)\n"
      "  --strict-suppressions  fail when a `<check>-ok` comment suppresses "
      "nothing\n"
      "  --list-checks          print the check catalog and exit\n"
      "  -q, --quiet            summary only\n\n"
      "Suppress a finding inline with `// nf-lint: <check>-ok` on the "
      "flagged line or the line above.\n"
      "Exit: 0 clean (or no new findings vs baseline), 1 findings, 2 usage "
      "error.\n",
      argv0);
  return 2;
}

std::vector<std::string> collect_files(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  const auto is_source = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
           ext == ".cxx";
  };
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           it != end && !ec; it.increment(ec)) {
        const std::string name = it->path().filename().string();
        if (it->is_directory() &&
            (name == ".git" || name.rfind("build", 0) == 0)) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && is_source(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else {
      files.push_back(path);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// One `// nf-lint: <check>-ok` comment found in a scanned file.
struct Suppression {
  std::string path;
  int line = 0;
  std::string check;  // check name, without the "-ok"
  bool used = false;
};

std::vector<std::string> read_raw_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : ss.str()) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

/// Scans every file for suppression comments naming an enabled check, so
/// stale ones (suppressing nothing) can be reported instead of rotting.
std::vector<Suppression> collect_suppressions(
    const std::vector<std::string>& files, const std::vector<Check>& checks) {
  std::vector<Suppression> out;
  for (const std::string& path : files) {
    const std::vector<std::string> lines = read_raw_lines(path);
    for (std::size_t li = 0; li < lines.size(); ++li) {
      if (lines[li].find("nf-lint:") == std::string::npos) continue;
      for (const Check c : checks) {
        const std::string want = std::string(check_name(c)) + "-ok";
        if (lines[li].find(want) != std::string::npos) {
          out.push_back({nf::lint::lex::normalize_path(path),
                         static_cast<int>(li) + 1, check_name(c), false});
        }
      }
    }
  }
  return out;
}

/// Drops findings suppressed by `// nf-lint: <check>-ok` on the finding's
/// line or the line above it, marking the matching comments used.
void apply_suppressions(std::vector<Finding>& findings,
                        std::vector<Suppression>& suppressions) {
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    bool suppressed = false;
    for (Suppression& s : suppressions) {
      if (s.path == f.path && s.check == check_name(f.check) &&
          (s.line == f.line || s.line == f.line - 1)) {
        s.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) kept.push_back(std::move(f));
  }
  findings = std::move(kept);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::vector<Check> only;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both `--flag value` and `--flag=value`.
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    const auto next = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--list-checks") {
      for (const Check c : nf::lint::kAllChecks) {
        std::printf("%-40s %s\n", check_name(c),
                    nf::lint::check_description(c));
      }
      return 0;
    } else if (arg == "--check") {
      const char* name = next();
      if (name == nullptr) return usage(argv[0]);
      bool found = false;
      for (const Check c : nf::lint::kAllChecks) {
        if (std::string(check_name(c)) == name) {
          only.push_back(c);
          found = true;
        }
      }
      if (!found) {
        std::fprintf(stderr, "nf-lint: unknown check '%s'\n", name);
        return 2;
      }
    } else if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.baseline = v;
    } else if (arg == "--write-baseline") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.write_baseline = v;
    } else if (arg == "--report") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.report = v;
    } else if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.engine = v;
    } else if (arg == "--compdb") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.compdb = v;
    } else if (arg == "--strict-suppressions") {
      opt.strict_suppressions = true;
    } else if (arg == "-q" || arg == "--quiet") {
      opt.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      opt.paths.push_back(arg);
    }
  }
  if (!only.empty()) opt.checks = only;
  if (opt.paths.empty()) opt.paths.push_back("src");

  const std::vector<std::string> files = collect_files(opt.paths);
  if (files.empty()) {
    std::fprintf(stderr, "nf-lint: no source files under given paths\n");
    return 2;
  }

  std::vector<Finding> findings;
  std::string engine_used = "tokens";
  if (opt.engine == "clang" ||
      (opt.engine == "auto" && nf::lint::clang_engine_available())) {
    std::string error;
    if (nf::lint::run_clang_engine(files, opt.checks, opt.compdb, findings,
                                   error)) {
      engine_used = "clang";
    } else if (opt.engine == "clang") {
      std::fprintf(stderr, "nf-lint: %s\n", error.c_str());
      return 2;
    } else {
      if (!opt.quiet) {
        std::fprintf(stderr, "nf-lint: clang engine unavailable (%s); "
                             "falling back to token engine\n",
                     error.c_str());
      }
      findings = nf::lint::run_token_engine(files, opt.checks);
    }
  } else if (opt.engine == "tokens" || opt.engine == "auto") {
    findings = nf::lint::run_token_engine(files, opt.checks);
  } else {
    return usage(argv[0]);
  }

  std::vector<Suppression> suppressions =
      collect_suppressions(files, opt.checks);
  apply_suppressions(findings, suppressions);
  nf::lint::sort_findings(findings);

  if (!opt.write_baseline.empty()) {
    std::ofstream out(opt.write_baseline, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "nf-lint: cannot write %s\n",
                   opt.write_baseline.c_str());
      return 2;
    }
    out << "# nf-lint baseline: one `check|path|snippet` key per accepted\n"
           "# finding. CI fails only on findings NOT listed here; burn this\n"
           "# file down to empty. Regenerate: nf-lint --write-baseline "
           "tools/nf_lint_baseline.txt src\n";
    std::vector<std::string> keys;
    keys.reserve(findings.size());
    for (const Finding& f : findings) keys.push_back(finding_key(f));
    std::sort(keys.begin(), keys.end());
    for (const std::string& k : keys) out << k << "\n";
    std::printf("nf-lint: wrote %zu baseline entr%s to %s\n", keys.size(),
                keys.size() == 1 ? "y" : "ies", opt.write_baseline.c_str());
    return 0;
  }

  std::multiset<std::string> baseline;
  if (!opt.baseline.empty()) {
    std::ifstream in(opt.baseline, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "nf-lint: cannot read baseline %s\n",
                   opt.baseline.c_str());
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      baseline.insert(line);
    }
  }

  std::size_t new_count = 0;
  std::ostringstream report;
  for (const Finding& f : findings) {
    const std::string key = finding_key(f);
    const auto it = baseline.find(key);
    const bool known = it != baseline.end();
    if (known) {
      baseline.erase(it);
    } else {
      ++new_count;
    }
    report << f.path << ":" << f.line << ": [" << check_name(f.check) << "]"
           << (known ? " (baseline)" : "") << " " << f.message << "\n";
    if (!f.snippet.empty()) report << "    " << f.snippet << "\n";
  }
  std::size_t stale_count = 0;
  for (const Suppression& s : suppressions) {
    if (s.used) continue;
    ++stale_count;
    report << s.path << ":" << s.line << ": stale suppression `nf-lint: "
           << s.check << "-ok`: it no longer matches any finding; delete "
           << "it (or re-justify it) so the audit trail stays honest\n";
  }
  std::ostringstream summary;
  summary << "nf-lint (" << engine_used << "): " << findings.size()
          << " finding" << (findings.size() == 1 ? "" : "s");
  if (!opt.baseline.empty()) {
    summary << " (" << new_count << " new vs " << opt.baseline << ")";
  }
  if (stale_count > 0) {
    summary << ", " << stale_count << " stale suppression"
            << (stale_count == 1 ? "" : "s")
            << (opt.strict_suppressions ? "" : " (warning)");
  }
  summary << " across " << files.size() << " files\n";

  if (!opt.quiet) std::fputs(report.str().c_str(), stdout);
  std::fputs(summary.str().c_str(), stdout);
  if (!opt.report.empty()) {
    std::ofstream out(opt.report, std::ios::binary);
    out << report.str() << summary.str();
  }

  bool fail = opt.baseline.empty() ? !findings.empty() : new_count > 0;
  if (opt.strict_suppressions && stale_count > 0) fail = true;
  return fail ? 1 : 0;
}
