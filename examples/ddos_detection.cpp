// Denial-of-service attack detection (paper Table I, row 6).
//
// Routers (peers) observe flows to destination addresses. A DDoS victim
// receives moderate traffic through MANY routers — invisible locally,
// dominant globally. netFilter finds every destination whose global flow
// volume crosses the threshold, exactly: no false accusations (the paper's
// argument for exactness in attack detection, §II). For contrast, the same
// detection with an approximate Misra-Gries aggregation reports false
// positives.
#include <iostream>

#include "core/misra_gries.h"
#include "core/netfilter.h"
#include "net/topology.h"
#include "workload/scenarios.h"

int main() {
  using namespace nf;

  // 150 routers, 30,000 background destinations, 250 flows per router,
  // 3 planted attack victims.
  const wl::ScenarioOutput scenario = wl::ddos_flows(150, 30000, 250, 3, 99);
  const wl::Workload& workload = scenario.workload;

  Rng rng(5);
  net::Overlay overlay(net::random_connected(150, 5.0, rng));
  const agg::Hierarchy hierarchy =
      agg::build_bfs_hierarchy(overlay, PeerId(0));
  net::TrafficMeter meter(150);

  const Value threshold = workload.threshold_for(0.004);
  std::cout << "flow volume system-wide: " << workload.total_value()
            << " KB; alert threshold: " << threshold << " KB (0.4%)\n\n";

  // How invisible are the victims locally? Count routers where a victim is
  // among the top-5 local destinations.
  for (ItemId victim : scenario.planted) {
    int top5 = 0;
    int carrying = 0;
    for (std::uint32_t p = 0; p < 150; ++p) {
      const auto& local = workload.local_items(PeerId(p));
      const Value v = local.value_of(victim);
      if (v == 0) continue;
      ++carrying;
      int bigger = 0;
      for (const auto& [id, val] : local) {
        if (val > v) ++bigger;
      }
      if (bigger < 5) ++top5;
    }
    std::cout << "victim " << scenario.catalog.name_of(victim)
              << ": traffic crosses " << carrying
              << "/150 routers, locally top-5 at only " << top5 << "\n";
  }

  core::NetFilterConfig config;
  config.num_groups = 128;
  config.num_filters = 3;
  const core::NetFilter netfilter(config);
  const auto result =
      netfilter.run(workload, hierarchy, overlay, meter, threshold);

  std::cout << "\nnetFilter alerts (" << result.stats.total_cost()
            << " bytes/peer):\n";
  bool victims_found = true;
  for (const auto& [id, value] : result.frequent) {
    const bool planted =
        std::find(scenario.planted.begin(), scenario.planted.end(), id) !=
        scenario.planted.end();
    std::cout << "  " << scenario.catalog.name_of(id) << "  " << value
              << " KB" << (planted ? "   <-- planted attack" : "") << "\n";
  }
  for (ItemId victim : scenario.planted) {
    victims_found &= result.frequent.contains(victim);
  }
  const bool exact = result.frequent == workload.frequent_items(threshold);
  std::cout << "all planted victims detected: "
            << (victims_found ? "yes" : "NO")
            << "; exact (no false accusations): " << (exact ? "yes" : "NO")
            << "\n";

  // The approximate alternative at the same budget accuses innocents.
  const core::ApproxCollector approx(config.wire, /*epsilon=*/0.003);
  const auto oracle = workload.frequent_items(threshold);
  const auto approx_result = approx.run(workload, hierarchy, overlay, meter,
                                        threshold, &oracle);
  std::cout << "\napproximate (Misra-Gries, eps=0.003, "
            << approx_result.stats.cost_per_peer << " bytes/peer): "
            << approx_result.stats.num_reported << " alerts, "
            << approx_result.stats.false_positives
            << " false accusations, max volume error "
            << approx_result.stats.max_value_error << " KB\n";

  return (victims_found && exact) ? 0 : 1;
}
