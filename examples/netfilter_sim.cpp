// netfilter_sim — full-featured command-line driver for the library.
//
// Runs any combination of algorithm, workload, topology and parameters and
// prints results, cost breakdown and an exactness check. Examples:
//
//   netfilter_sim                                  # paper defaults, small
//   netfilter_sim --peers=1000 --items=100000      # Table III defaults
//   netfilter_sim --algo=all --alpha=2 --theta=0.001
//   netfilter_sim --tune                           # self-tune g and f
//   netfilter_sim --trace=flows.txt --algo=netfilter
//   netfilter_sim --topology=ba --participation=0.5
#include <algorithm>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "agg/root_selection.h"
#include "core/gossip_netfilter.h"
#include "core/misra_gries.h"
#include "core/partitioned.h"
#include "core/naive.h"
#include "core/netfilter.h"
#include "core/topk.h"
#include "core/tuner.h"
#include "net/topology.h"
#include "workload/trace.h"
#include "workload/workload.h"

namespace {

using namespace nf;

struct Options {
  std::uint32_t peers = 200;
  std::uint64_t items = 20000;
  double instances = 10.0;
  double alpha = 1.0;
  double theta = 0.01;
  std::string topology = "tree";
  std::string root = "random";
  std::uint32_t fanout = 3;
  double degree = 4.0;
  std::uint32_t g = 100;
  std::uint32_t f = 3;
  bool tune = false;
  std::string algo = "netfilter";
  double participation = 1.0;
  double epsilon = 0.005;
  std::uint32_t gossip_rounds = 80;
  double slack = 0.15;
  std::string wire = "flat";
  std::uint32_t topk = 0;  // 0 = threshold query (default)
  std::uint64_t seed = 42;
  std::optional<std::string> trace;
  std::optional<std::string> save_trace;
};

[[noreturn]] void usage(int code) {
  std::cout <<
      "netfilter_sim — identify frequent items in a simulated P2P system\n"
      "\n"
      "workload:   --peers=N --items=n --instances=I --alpha=A --seed=S\n"
      "            --trace=FILE (load instead of synthetic)\n"
      "            --save-trace=FILE (dump the workload and exit)\n"
      "query:      --theta=T (threshold ratio, default 0.01)\n"
      "topology:   --topology=tree|er|ws|ba --fanout=B --degree=D\n"
      "            --root=random|stable|center (hierarchy root policy)\n"
      "algorithm:  --algo=netfilter|naive|gossip|approx|partitioned|all\n"
      "            --g=G --f=F | --tune (pick G, F by in-network sampling)\n"
      "            --participation=P (stable-peer fraction forming the tree)\n"
      "            --epsilon=E (approx) --rounds=R --slack=D (gossip)\n"
      "accounting: --wire=flat|varint (paper byte model vs real encoding)\n"
      "top-k:      --topk=K (k most frequent items instead of a threshold)\n";
  std::exit(code);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto eq = arg.find('=');
    const std::string_view key = arg.substr(0, eq);
    const std::string val =
        eq == std::string_view::npos ? "" : std::string(arg.substr(eq + 1));
    try {
      if (key == "--help" || key == "-h") usage(0);
      else if (key == "--peers") opt.peers = static_cast<std::uint32_t>(std::stoul(val));
      else if (key == "--items") opt.items = std::stoull(val);
      else if (key == "--instances") opt.instances = std::stod(val);
      else if (key == "--alpha") opt.alpha = std::stod(val);
      else if (key == "--theta") opt.theta = std::stod(val);
      else if (key == "--topology") opt.topology = val;
      else if (key == "--root") opt.root = val;
      else if (key == "--fanout") opt.fanout = static_cast<std::uint32_t>(std::stoul(val));
      else if (key == "--degree") opt.degree = std::stod(val);
      else if (key == "--g") opt.g = static_cast<std::uint32_t>(std::stoul(val));
      else if (key == "--f") opt.f = static_cast<std::uint32_t>(std::stoul(val));
      else if (key == "--tune") opt.tune = true;
      else if (key == "--algo") opt.algo = val;
      else if (key == "--participation") opt.participation = std::stod(val);
      else if (key == "--epsilon") opt.epsilon = std::stod(val);
      else if (key == "--rounds") opt.gossip_rounds = static_cast<std::uint32_t>(std::stoul(val));
      else if (key == "--slack") opt.slack = std::stod(val);
      else if (key == "--wire") opt.wire = val;
      else if (key == "--topk") opt.topk = static_cast<std::uint32_t>(std::stoul(val));
      else if (key == "--seed") opt.seed = std::stoull(val);
      else if (key == "--trace") opt.trace = val;
      else if (key == "--save-trace") opt.save_trace = val;
      else {
        std::cerr << "unknown flag: " << arg << "\n";
        usage(2);
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << key << ": '" << val << "'\n";
      usage(2);
    }
  }
  return opt;
}

net::Topology make_topology(const Options& opt, std::uint32_t peers,
                            Rng& rng) {
  if (opt.topology == "tree") return net::random_tree(peers, opt.fanout, rng);
  if (opt.topology == "er") return net::random_connected(peers, opt.degree, rng);
  if (opt.topology == "ws") {
    auto k = static_cast<std::uint32_t>(opt.degree);
    if (k % 2 != 0) ++k;
    return net::watts_strogatz(peers, std::max(2u, k), 0.2, rng);
  }
  if (opt.topology == "ba") {
    return net::barabasi_albert(
        peers, std::max(1u, static_cast<std::uint32_t>(opt.degree / 2)), rng);
  }
  std::cerr << "unknown topology: " << opt.topology << "\n";
  usage(2);
}

void print_top(const ValueMap<ItemId, Value>& result,
               const wl::Catalog& catalog, std::size_t limit) {
  std::vector<std::pair<ItemId, Value>> sorted(result.begin(), result.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (std::size_t i = 0; i < std::min(limit, sorted.size()); ++i) {
    std::cout << "    ";
    if (catalog.contains(sorted[i].first)) {
      std::cout << catalog.name_of(sorted[i].first);
    } else {
      std::cout << "item-" << sorted[i].first.value();
    }
    std::cout << "  " << sorted[i].second << "\n";
  }
  if (sorted.size() > limit) {
    std::cout << "    ... and " << sorted.size() - limit << " more\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  // --- Workload ---
  wl::ScenarioOutput scenario;
  if (opt.trace.has_value()) {
    scenario = wl::load_trace_file(*opt.trace);
    std::cout << "loaded trace: " << scenario.workload.num_peers()
              << " peers, " << scenario.workload.num_distinct()
              << " distinct items, total value "
              << scenario.workload.total_value() << "\n";
  } else {
    wl::WorkloadConfig wc;
    wc.num_peers = opt.peers;
    wc.num_items = opt.items;
    wc.instances_per_item = opt.instances;
    wc.alpha = opt.alpha;
    wc.seed = opt.seed;
    scenario.workload = wl::Workload::generate(wc);
    std::cout << "synthetic workload: N=" << opt.peers << " n=" << opt.items
              << " alpha=" << opt.alpha << " -> "
              << scenario.workload.num_distinct()
              << " realized items, total value "
              << scenario.workload.total_value() << "\n";
  }
  const wl::Workload& workload = scenario.workload;
  const std::uint32_t peers = workload.num_peers();

  if (opt.save_trace.has_value()) {
    wl::save_trace_file(*opt.save_trace, workload, wl::TraceKeyMode::kIds);
    std::cout << "trace written to " << *opt.save_trace << "\n";
    return 0;
  }

  // --- Overlay & hierarchy ---
  Rng rng(opt.seed + 1);
  net::Overlay overlay(make_topology(opt, peers, rng));
  std::vector<double> uptime(peers);
  for (auto& u : uptime) u = rng.uniform();
  agg::RootPolicy root_policy = agg::RootPolicy::kRandom;
  if (opt.root == "stable") root_policy = agg::RootPolicy::kMostStable;
  else if (opt.root == "center") root_policy = agg::RootPolicy::kCenter;
  else if (opt.root != "random") {
    std::cerr << "unknown root policy: " << opt.root << "\n";
    usage(2);
  }
  const PeerId root = agg::select_root(overlay, root_policy, uptime, rng);
  std::vector<bool> participant(peers, true);
  if (opt.participation < 1.0) {
    participant = agg::select_stable_peers(uptime, opt.participation, root);
  }
  const agg::Hierarchy hierarchy =
      agg::build_bfs_hierarchy(overlay, root, participant);
  std::cout << "overlay: " << opt.topology << ", hierarchy height "
            << hierarchy.height() << ", members " << hierarchy.num_members()
            << "/" << peers << "\n";

  const Value threshold = workload.threshold_for(opt.theta);
  const auto oracle = workload.frequent_items(threshold);
  std::cout << "threshold t=" << threshold << " (theta=" << opt.theta
            << "); oracle: " << oracle.size() << " frequent items\n\n";

  net::TrafficMeter meter(peers);

  // --- Configuration (fixed or tuned) ---
  std::uint32_t g = opt.g;
  std::uint32_t f = opt.f;
  if (opt.tune) {
    const core::TunedSetting ts = core::tune(workload, hierarchy, opt.theta,
                                             core::TunerConfig{}, &meter);
    g = ts.num_groups;
    f = ts.num_filters;
    std::cout << "tuned: g=" << g << " f=" << f << " (sampled "
              << ts.estimates.num_sampled_peers << " peers)\n\n";
  }

  const core::WireModel wire_model = opt.wire == "varint"
                                         ? core::WireModel::kVarintDelta
                                         : core::WireModel::kFlatFields;

  if (opt.topk > 0) {
    core::NetFilterConfig cfg;
    cfg.num_groups = g;
    cfg.num_filters = f;
    cfg.wire_model = wire_model;
    const core::TopK topk(cfg);
    const auto res =
        topk.run(workload, hierarchy, overlay, meter, opt.topk);
    std::cout << "top-" << opt.topk << " items ("
              << res.stats.netfilter_runs << " netFilter runs, "
              << res.stats.total_cost << " bytes/peer):\n";
    ValueMap<ItemId, Value> as_map;
    for (const auto& [id, v] : res.items) as_map.add(id, v);
    print_top(as_map, scenario.catalog, opt.topk);
    return 0;
  }

  const bool all = opt.algo == "all";
  bool ran = false;

  if (all || opt.algo == "netfilter") {
    ran = true;
    core::NetFilterConfig cfg;
    cfg.num_groups = g;
    cfg.num_filters = f;
    cfg.wire_model = wire_model;
    const auto res = core::NetFilter(cfg).run(workload, hierarchy, overlay,
                                              meter, threshold);
    std::cout << "netFilter (g=" << g << ", f=" << f << "): "
              << res.frequent.size() << " items, "
              << res.stats.total_cost() << " bytes/peer (filter "
              << res.stats.filtering_cost << " + dissem "
              << res.stats.dissemination_cost << " + agg "
              << res.stats.aggregation_cost << "), exact: "
              << (res.frequent == oracle ? "yes" : "NO") << "\n";
    print_top(res.frequent, scenario.catalog, 5);
  }

  if (all || opt.algo == "naive") {
    ran = true;
    const auto res = core::NaiveCollector{WireSizes{}}.run(
        workload, hierarchy, overlay, meter, threshold);
    std::cout << "naive: " << res.frequent.size() << " items, "
              << res.stats.cost_per_peer << " bytes/peer, exact: "
              << (res.frequent == oracle ? "yes" : "NO") << "\n";
  }

  if (all || opt.algo == "gossip") {
    ran = true;
    if (opt.topology == "tree") {
      std::cout << "(hint: push-sum mixes poorly on trees; consider "
                   "--topology=er for the gossip algorithm)\n";
    }
    core::GossipNetFilterConfig cfg;
    cfg.num_groups = g;
    cfg.num_filters = f;
    cfg.phase1_rounds = opt.gossip_rounds;
    cfg.phase2_rounds = opt.gossip_rounds;
    cfg.slack = opt.slack;
    cfg.seed = opt.seed;
    const auto res = core::GossipNetFilter(cfg).run(
        workload, overlay, PeerId(0), meter, threshold, &oracle);
    std::cout << "gossip netFilter (" << opt.gossip_rounds
              << " rounds/phase): " << res.reported.size() << " items, "
              << res.stats.total_cost() << " bytes/peer, fp="
              << res.stats.false_positives << " fn="
              << res.stats.false_negatives << " max_rel_err="
              << res.stats.max_value_rel_error << "\n";
  }

  if (all || opt.algo == "partitioned") {
    ran = true;
    Rng root_rng(opt.seed + 9);
    const std::uint32_t k = 3;
    const auto mh =
        agg::MultiHierarchy::build_random(overlay, k, root_rng);
    core::NetFilterConfig cfg;
    cfg.num_groups = g;
    cfg.num_filters = std::max(f, k);
    const auto res = core::PartitionedNetFilter(cfg).run(
        workload, mh, overlay, meter, threshold);
    std::cout << "partitioned netFilter (k=" << k << " hierarchies): "
              << res.frequent.size() << " items, "
              << res.stats.total_cost() << " bytes/peer, exact: "
              << (res.frequent == oracle ? "yes" : "NO") << "\n";
  }

  if (all || opt.algo == "approx") {
    ran = true;
    const core::ApproxCollector approx(WireSizes{}, opt.epsilon);
    const auto res = approx.run(workload, hierarchy, overlay, meter,
                                threshold, &oracle);
    std::cout << "approx Misra-Gries (eps=" << opt.epsilon << "): "
              << res.reported.size() << " items, "
              << res.stats.cost_per_peer << " bytes/peer, fp="
              << res.stats.false_positives << " fn="
              << res.stats.false_negatives << "\n";
  }

  if (!ran) {
    std::cerr << "unknown --algo: " << opt.algo << "\n";
    usage(2);
  }
  return 0;
}
