// Internet worm detection under churn (paper Table I, row 7 + §III-A.3).
//
// Peers monitor byte-sequence signatures in passing flows; a worm's
// signature recurs at nearly every vantage point. This example runs the
// full operational loop a deployment would face: the aggregation hierarchy
// is maintained by heartbeats, several monitors fail mid-operation, the
// DEPTH-based repair protocol heals the tree, and netFilter then identifies
// the worm signatures exactly over the surviving monitors.
#include <iostream>

#include "agg/maintenance.h"
#include "core/netfilter.h"
#include "net/topology.h"
#include "workload/scenarios.h"

int main() {
  using namespace nf;

  const std::uint32_t kPeers = 120;
  const wl::ScenarioOutput scenario =
      wl::worm_signatures(kPeers, 20000, 200, 2, 123);
  const wl::Workload& workload = scenario.workload;

  Rng rng(6);
  net::Overlay overlay(net::random_connected(kPeers, 6.0, rng));
  net::TrafficMeter meter(kPeers);
  const agg::Hierarchy initial =
      agg::build_bfs_hierarchy(overlay, PeerId(0));
  std::cout << "monitoring overlay: " << kPeers
            << " sensors, hierarchy height " << initial.height() << "\n";

  // Run the maintenance protocol; three sensors die at round 3.
  agg::HierarchyMaintenance::Config mconfig;
  mconfig.timeout_rounds = 2;
  agg::HierarchyMaintenance maintenance(initial, mconfig);
  net::Engine engine(overlay, meter);
  net::ChurnSchedule churn;
  churn.fail_at(3, PeerId(17));
  churn.fail_at(3, PeerId(55));
  churn.fail_at(3, PeerId(101));
  std::uint64_t rounds = 0;
  while (rounds < 200 && !maintenance.stabilized(overlay)) {
    rounds += engine.run(maintenance, 5, &churn);
  }
  std::cout << "sensors 17, 55, 101 failed; hierarchy repaired after "
            << rounds << " rounds ("
            << meter.per_peer(net::TrafficCategory::kControl)
            << " control bytes/peer)\n\n";
  const agg::Hierarchy repaired = maintenance.snapshot(overlay);
  repaired.validate(overlay);

  // Detect signatures present in >= 1% of monitored flow volume.
  LocalItems surviving_truth;
  for (std::uint32_t p = 0; p < kPeers; ++p) {
    if (overlay.is_alive(PeerId(p))) {
      surviving_truth.merge_add(workload.local_items(PeerId(p)));
    }
  }
  const Value threshold =
      std::max<Value>(1, surviving_truth.total() / 100);

  core::NetFilterConfig config;
  config.num_groups = 100;
  config.num_filters = 3;
  const core::NetFilter netfilter(config);
  const auto result =
      netfilter.run(workload, repaired, overlay, meter, threshold);

  std::cout << "signatures above " << threshold << " flows ("
            << result.stats.total_cost() << " bytes/peer):\n";
  for (const auto& [id, value] : result.frequent) {
    const bool planted =
        std::find(scenario.planted.begin(), scenario.planted.end(), id) !=
        scenario.planted.end();
    std::cout << "  " << scenario.catalog.name_of(id) << "  " << value
              << (planted ? "   <-- planted worm" : "") << "\n";
  }

  bool worms_found = true;
  for (ItemId worm : scenario.planted) {
    worms_found &= result.frequent.contains(worm);
  }
  surviving_truth.retain(
      [&](ItemId, Value v) { return v >= threshold; });
  const bool exact = result.frequent == surviving_truth;
  std::cout << "\nworms detected: " << (worms_found ? "yes" : "NO")
            << "; exact over surviving sensors: " << (exact ? "yes" : "NO")
            << "\n";
  return (worms_found && exact) ? 0 : 1;
}
