// Frequent keyword identification for cache management (paper Table I,
// row 1).
//
// Peers in a file-sharing network issue keyword queries; a cache manager
// wants the keywords that appear in at least 0.5% of all queries,
// system-wide, with exact counts (cache replacement needs the real
// numbers — paper §II). Several peers ask concurrently with different
// thresholds; the query service answers all of them with ONE netFilter run
// at the minimum threshold (paper §III-A.1), using the self-tuned (g, f).
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/query_service.h"
#include "core/tuner.h"
#include "net/topology.h"
#include "workload/scenarios.h"

int main() {
  using namespace nf;

  // 500 peers, a 50,000-word vocabulary, 400 queries per peer.
  const wl::ScenarioOutput scenario =
      wl::keyword_queries(500, 50000, 400, 1.1, 2024);
  const wl::Workload& workload = scenario.workload;

  Rng rng(11);
  net::Overlay overlay(net::random_connected(500, 4.0, rng));
  const agg::Hierarchy hierarchy =
      agg::build_bfs_hierarchy(overlay, PeerId(0));
  net::TrafficMeter meter(500);

  // Self-tune g and f from in-network samples (paper §IV-E).
  const core::TunedSetting tuned =
      core::tune(workload, hierarchy, 0.005, core::TunerConfig{}, &meter);
  std::cout << "tuned configuration: g = " << tuned.num_groups
            << " item groups, f = " << tuned.num_filters << " filters\n\n";

  // Three peers request frequent keywords at different thresholds; one
  // netFilter run serves all of them.
  const core::QueryService service(tuned.to_config(core::NetFilterConfig{}));
  core::QueryServiceStats stats;
  const auto responses = service.serve(
      {{PeerId(42), 0.02}, {PeerId(170), 0.005}, {PeerId(333), 0.01}},
      workload, hierarchy, overlay, meter, &stats);

  std::cout << "one netFilter run at t = " << stats.min_threshold
            << " served " << responses.size() << " requests ("
            << stats.netfilter.total_cost() << " bytes/peer)\n\n";

  for (const auto& resp : responses) {
    // Sort this requester's keywords by count for display.
    std::vector<std::pair<ItemId, Value>> sorted(resp.frequent.begin(),
                                                 resp.frequent.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::cout << "peer " << resp.requester.value() << " (t = "
              << resp.threshold << "): " << sorted.size()
              << " frequent keywords";
    std::cout << "; top 5:\n";
    for (std::size_t i = 0; i < std::min<std::size_t>(5, sorted.size());
         ++i) {
      std::cout << "    \"" << scenario.catalog.name_of(sorted[i].first)
                << "\" in " << sorted[i].second << " queries\n";
    }
  }

  // Every response is exact.
  bool all_exact = true;
  for (const auto& resp : responses) {
    all_exact &= (resp.frequent == workload.frequent_items(resp.threshold));
  }
  std::cout << "\nall responses exact: " << (all_exact ? "yes" : "NO")
            << "\n";
  return all_exact ? 0 : 1;
}
