// Continuous trending-content monitor (paper §I: "which MP3 songs have
// been downloaded more than ... times in the past week").
//
// Download counters only grow; the monitor re-runs netFilter every epoch
// and reports what changed: songs newly above the 1% bar, and songs that
// fell below it because the bar (t = θ·v) rose with total activity. Epoch
// 3 injects a viral release that rockets into the frequent set.
#include <iostream>

#include "core/monitor.h"
#include "net/topology.h"
#include "workload/growing.h"
#include "workload/scenarios.h"
#include "workload/workload.h"

int main() {
  using namespace nf;

  const std::uint32_t kPeers = 120;
  const std::uint32_t kSongs = 5000;
  Rng rng(2026);

  // Epoch 0 state: organic downloads, Zipf popularity.
  wl::Catalog catalog;
  wl::GrowingWorkload downloads(kPeers);
  const ZipfDistribution popularity(kSongs, 1.1);
  auto simulate_downloads = [&](std::uint32_t count) {
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint64_t song = popularity(rng);
      downloads.add(PeerId(static_cast<std::uint32_t>(rng.below(kPeers))),
                    catalog.intern("song-" + std::to_string(song)), 1);
    }
  };
  simulate_downloads(60000);

  net::Overlay overlay(net::random_connected(kPeers, 4.0, rng));
  const agg::Hierarchy hierarchy =
      agg::build_bfs_hierarchy(overlay, PeerId(0));
  net::TrafficMeter meter(kPeers);

  core::NetFilterConfig config;
  config.num_groups = 128;
  config.num_filters = 3;
  core::ContinuousMonitor monitor(config, 0.01);

  const ItemId viral = catalog.intern("song-NEW-RELEASE");
  for (int epoch = 0; epoch < 5; ++epoch) {
    if (epoch > 0) {
      simulate_downloads(30000);  // organic growth between epochs
    }
    if (epoch == 3) {
      // A new release goes viral: downloads from nearly every peer.
      for (std::uint32_t p = 0; p < kPeers; ++p) {
        downloads.add(PeerId(p), viral, rng.between(20, 60));
      }
    }
    const core::EpochReport report =
        monitor.epoch(downloads, hierarchy, overlay, meter);
    std::cout << "epoch " << report.epoch << ": v=" << report.total_value
              << " t=" << report.threshold << " frequent="
              << report.frequent.size() << " (cost "
              << report.stats.total_cost() << " B/peer)\n";
    for (ItemId id : report.newly_frequent) {
      std::cout << "  + " << catalog.name_of(id) << " ("
                << report.frequent.value_of(id) << " downloads)"
                << (id == viral ? "   <-- the viral release" : "") << "\n";
    }
    for (ItemId id : report.dropped) {
      std::cout << "  - " << catalog.name_of(id)
                << " (fell below the rising bar)\n";
    }
  }

  const bool viral_detected = monitor.current().contains(viral);
  std::cout << "\nviral release detected: "
            << (viral_detected ? "yes" : "NO") << "; cumulative cost "
            << monitor.total_cost_per_peer() << " B/peer over "
            << monitor.epochs_run() << " epochs\n";
  return viral_detected ? 0 : 1;
}
