// Quickstart: identify frequent items in a simulated P2P system.
//
// Builds the paper's default setup at small scale — an unstructured
// overlay of 200 peers holding a Zipf-distributed workload — and runs
// netFilter to find every item whose global value reaches 1% of the total,
// exactly. Also runs the naive collect-everything baseline to show the
// communication saving.
#include <iostream>

#include "core/naive.h"
#include "core/netfilter.h"
#include "net/topology.h"
#include "workload/workload.h"

int main() {
  using namespace nf;

  // 1. A synthetic workload: 20,000 distinct items, 200,000 instances with
  // Zipf(1.0) popularity, scattered over 200 peers (paper §V, Table III).
  wl::WorkloadConfig wc;
  wc.num_peers = 200;
  wc.num_items = 20000;
  wc.alpha = 1.0;
  wc.seed = 7;
  const wl::Workload workload = wl::Workload::generate(wc);

  // 2. An unstructured overlay and the BFS aggregation hierarchy rooted at
  // a designated peer (paper §III-A.1).
  Rng rng(8);
  net::Overlay overlay(net::random_connected(wc.num_peers, 4.0, rng));
  const agg::Hierarchy hierarchy =
      agg::build_bfs_hierarchy(overlay, PeerId(0));

  // 3. Run netFilter: f = 3 hash filters of g = 100 item groups each.
  const Value threshold = workload.threshold_for(0.01);
  core::NetFilterConfig config;
  config.num_groups = 100;
  config.num_filters = 3;
  const core::NetFilter netfilter(config);
  net::TrafficMeter meter(wc.num_peers);
  const core::NetFilterResult result =
      netfilter.run(workload, hierarchy, overlay, meter, threshold);

  std::cout << "system total value v = " << workload.total_value()
            << ", threshold t = " << threshold << " (theta = 0.01)\n\n"
            << "frequent items (exact global values):\n";
  for (const auto& [id, value] : result.frequent) {
    std::cout << "  item " << id.value() << "  ->  " << value << "\n";
  }

  // 4. The answer is exact — verify against the generator's ground truth.
  const bool exact = result.frequent == workload.frequent_items(threshold);
  std::cout << "\nmatches ground truth oracle: " << (exact ? "yes" : "NO")
            << "\n";

  // 5. Cost accounting (the paper's metric: bytes propagated per peer).
  const core::NaiveCollector naive{config.wire};
  const auto naive_result =
      naive.run(workload, hierarchy, overlay, meter, threshold);
  std::cout << "\ncommunication cost per peer:\n"
            << "  netFilter: " << result.stats.total_cost() << " bytes"
            << " (filtering " << result.stats.filtering_cost
            << ", dissemination " << result.stats.dissemination_cost
            << ", aggregation " << result.stats.aggregation_cost << ")\n"
            << "  naive:     " << naive_result.stats.cost_per_peer
            << " bytes\n"
            << "  saving:    "
            << 100.0 * (1.0 - result.stats.total_cost() /
                                  naive_result.stats.cost_per_peer)
            << "%\n";
  return exact ? 0 : 1;
}
