// Analysis check — measured cost vs the closed-form model (paper §IV,
// Formulae 1-4).
//
// For each g the simulator's measured per-peer costs are printed next to
// the model's prediction assembled from the measured w, r and fp
// (Formula 1), and the predicted heterogeneous false positives (Formula 4)
// next to the measured count. Filtering and dissemination components are
// exact by construction; aggregation is an upper bound (deep peers carry
// fewer candidates), so model >= measured with the gap shrinking as the
// candidate set shrinks.
#include "bench/bench_util.h"

#include "core/cost_model.h"

int main(int argc, char** argv) {
  using namespace nf;
  using namespace nf::core;
  const auto cli = bench::Cli::parse(argc, argv);

  bench::Params params;
  params.seed = cli.seed;
  params.threads = cli.threads;
  bench::Env env(params);
  const WireSizes wire;
  const auto r =
      static_cast<double>(env.workload.frequent_items(env.threshold()).size());
  const auto n = static_cast<double>(env.workload.num_distinct());

  std::cout << "# Cost-model validation (Formulae 1, 2, 4)\n"
            << "# defaults: N=1000, n=10^5, theta=0.01, alpha=1, f=3\n";
  bench::banner("Formula 1 vs measured total cost across g",
                "model tracks measurement; filtering/dissemination exact, "
                "aggregation an upper bound");
  TableWriter table({"g", "measured", "model(F1)", "fp_measured",
                     "fp_model(F4)"},
                    std::cout, 16);
  for (std::uint32_t g : {50u, 100u, 200u, 400u}) {
    const auto res = env.run_netfilter(g, 3);
    const double w_per_filter =
        static_cast<double>(res.stats.heavy_groups_total) / 3.0;
    const double model = cost_model::netfilter_cost(
        wire, 3, g, w_per_filter, static_cast<double>(res.stats.num_frequent),
        static_cast<double>(res.stats.num_false_positives));
    const double fp_model = cost_model::expected_fp2(n, r, g, 3);
    table.row(g, res.stats.total_cost(), model,
              res.stats.num_false_positives, fp_model);
  }

  bench::banner("Formula 2 bounds vs measured naive cost",
                "(sa+si)*o <= C_naive <= (sa+si)*o*(h-1)");
  const auto naive = env.run_naive();
  const double o = env.workload.avg_local_distinct();
  TableWriter bounds({"lower", "measured", "upper", "o", "height"},
                     std::cout, 16);
  bounds.row(cost_model::naive_cost_lower(wire, o),
             naive.stats.cost_per_peer,
             cost_model::naive_cost_upper(wire, o, env.hierarchy.height()), o,
             env.hierarchy.height());
  return 0;
}
