// Ablation — exact netFilter vs ε-approximate frequent items (paper §II,
// §V footnote 5).
//
// The paper argues that the approximate schemes [9][12] are incomparable
// because they admit false positives and value errors, and that at small ε
// their O(a/ε) cost overtakes the exact approach. This ablation quantifies
// that with a mergeable Misra-Gries baseline: as ε shrinks toward θ, the
// sketch traffic grows past netFilter's total cost while still reporting
// false positives and approximate values.
#include "bench/bench_util.h"

#include "core/misra_gries.h"

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);

  bench::Params params;
  params.seed = cli.seed;
  params.threads = cli.threads;
  bench::Env env(params);
  const Value t = env.threshold();
  const auto oracle = env.workload.frequent_items(t);

  std::cout << "# Ablation: exact netFilter vs approximate Misra-Gries "
               "aggregation (N=1000, n=10^5, theta=0.01)\n"
            << "# ground truth: " << oracle.size()
            << " frequent items at t=" << t << "\n";

  const auto nf_res = env.run_netfilter(100, 3);
  bench::banner("netFilter (exact)",
                "zero false positives/negatives, exact values");
  TableWriter nft({"bytes/peer", "reported", "fp", "fn", "max_val_err"},
                  std::cout, 14);
  nft.row(nf_res.stats.total_cost(), nf_res.stats.num_frequent, 0, 0, 0.0);

  bench::banner("Misra-Gries at shrinking epsilon",
                "cost grows ~1/eps and passes netFilter; false positives "
                "and value errors persist");
  TableWriter table({"epsilon", "bytes/peer", "reported", "fp", "fn",
                     "max_val_err"},
                    std::cout, 14);
  for (double eps : {0.01, 0.005, 0.002, 0.001, 0.0005, 0.0002}) {
    net::TrafficMeter meter(params.num_peers);
    const core::ApproxCollector approx(WireSizes{}, eps);
    const auto res = approx.run(env.workload, env.hierarchy, env.overlay,
                                meter, t, &oracle);
    table.row(eps, res.stats.cost_per_peer, res.stats.num_reported,
              res.stats.false_positives, res.stats.false_negatives,
              res.stats.max_value_error);
  }
  return 0;
}
