// Ablation — hierarchical vs gossip aggregation (paper §III-A).
//
// The paper picks hierarchical aggregation because it is exact and needs
// one tree pass, and leaves gossip for future work. This ablation measures
// the trade on phase 1 (item-group aggregate computation): bytes per peer,
// rounds, and worst-case relative error of the group aggregates under
// push-sum as rounds grow. Hierarchical aggregation is exact in
// height-many rounds; push-sum needs many more rounds and stays
// approximate — exactly the argument of §III-A.
#include "bench/bench_util.h"

#include "agg/gossip.h"
#include "common/stats.h"

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);

  // Gossip needs a well-connected overlay to mix (it is hopeless on a
  // tree); use the unstructured d=6 random graph typical of Gnutella-like
  // systems for both contenders.
  bench::Params params;
  params.num_peers = 500;  // keep gossip rounds affordable
  params.num_items = 20000;
  params.seed = cli.seed;
  params.threads = cli.threads;
  bench::Env env(params);
  {
    Rng rng(cli.seed + 99);
    env.overlay = net::Overlay(net::random_connected(500, 6.0, rng));
    env.hierarchy = agg::build_bfs_hierarchy(env.overlay, PeerId(0));
  }

  const std::uint32_t g = 100;
  const std::uint32_t f = 1;

  std::cout << "# Ablation: hierarchical vs push-sum gossip aggregation "
               "(phase 1, f=1, g=100, N=500)\n";

  // Hierarchical reference.
  const auto res = env.run_netfilter(g, f);
  bench::banner("hierarchical aggregation (exact)",
                "exact aggregates in height-many rounds, sa*f*g bytes/peer");
  TableWriter htable({"rounds", "bytes/peer", "p50_rel_err", "p95_rel_err"},
                     std::cout, 16);
  htable.row(res.stats.rounds_filtering, res.stats.filtering_cost, 0.0, 0.0);

  // Push-sum over the same local group vectors.
  core::NetFilterConfig cfg;
  cfg.num_groups = g;
  cfg.num_filters = f;
  const core::NetFilter nf(cfg);
  std::vector<std::vector<double>> initial;
  initial.reserve(params.num_peers);
  std::vector<double> truth(g, 0.0);
  for (std::uint32_t p = 0; p < params.num_peers; ++p) {
    const auto agg =
        nf.local_group_aggregates(env.workload.local_items(PeerId(p)));
    std::vector<double> x(agg.begin(), agg.end());
    for (std::uint32_t i = 0; i < g; ++i) truth[i] += x[i];
    initial.push_back(std::move(x));
  }

  bench::banner("push-sum gossip (approximate)",
                "error shrinks with rounds; bytes/peer grows linearly and "
                "passes the hierarchical cost after a handful of rounds");
  TableWriter gtable({"rounds", "bytes/peer", "p50_rel_err", "p95_rel_err"},
                     std::cout, 16);
  for (std::uint32_t rounds : {10u, 20u, 40u, 80u}) {
    net::TrafficMeter meter(params.num_peers);
    net::Engine engine(env.overlay, meter);
    agg::PushSumGossip::Config gc;
    gc.rounds = rounds;
    gc.seed = cli.seed;
    agg::PushSumGossip gossip(initial, gc);
    engine.run(gossip, rounds + 2);
    std::vector<double> errs;
    for (std::uint32_t p = 0; p < params.num_peers; ++p) {
      for (std::uint32_t i = 0; i < g; ++i) {
        if (truth[i] == 0.0) continue;
        errs.push_back(
            std::abs(gossip.estimate_sum(PeerId(p), i) - truth[i]) /
            truth[i]);
      }
    }
    gtable.row(rounds, meter.per_peer(net::TrafficCategory::kGossip),
               percentile(errs, 0.5), percentile(errs, 0.95));
  }
  return 0;
}
