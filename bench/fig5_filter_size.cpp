// Figure 5 — effect of the filter size g (paper §V-A).
//
// Sweep g from 25 to 500 with f = 3 under Table III defaults and print:
//  (a) the average number of candidates propagated per peer during
//      candidate verification and the number of heavy item groups;
//  (b) the communication cost, split into candidate filtering, candidate
//      dissemination and candidate aggregation cost.
//
// Expected shapes: candidates collapse once g ≳ 75 (below ~50 nothing is
// pruned); heavy groups rise then fall; total cost is U-shaped with its
// minimum near g = 100 = c + v̄_light/(θ·v̄).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);

  bench::Params params;
  params.seed = cli.seed;
  params.threads = cli.threads;
  bench::JsonReport report(cli, "fig5_filter_size");
  report.params_from(params);
  report.param("f", obs::Json(3u));
  bench::Env env(params, report.obs());

  std::cout << "# Figure 5: effect of filter sizes"
            << " (N=" << params.num_peers << ", n=" << params.num_items
            << ", theta=" << params.theta << ", alpha=" << params.alpha
            << ", f=3)\n"
            << "# threshold t = " << env.threshold()
            << ", ground-truth frequent items r = "
            << env.workload.frequent_items(env.threshold()).size() << "\n";

  bench::banner("Figure 5(a)+(b): sweep of filter size g",
                "U-shaped total cost, minimum near g=100; candidates drop "
                "sharply once g >= ~75");
  TableWriter table({"g", "cand/peer", "heavy_groups", "total_cost",
                     "filter_cost", "dissem_cost", "agg_cost", "fp",
                     "rounds", "rounds_barrier"},
                    std::cout, 14);
  for (std::uint32_t g :
       {25u, 50u, 75u, 100u, 150u, 200u, 250u, 300u, 350u, 400u, 450u,
        500u}) {
    const auto res = env.run_netfilter(g, 3);
    // A/B the orchestrations: same query, barriered phases — the pipelined
    // session overlaps verification with filtering and saves whole rounds.
    const auto barriered = env.run_netfilter_barriered(g, 3);
    table.row(g, res.stats.candidates_per_peer, res.stats.heavy_groups_total,
              res.stats.total_cost(), res.stats.filtering_cost,
              res.stats.dissemination_cost, res.stats.aggregation_cost,
              res.stats.num_false_positives, res.stats.rounds_total,
              barriered.rounds_total);
    obs::Json row = bench::to_json(res.stats);
    row["g"] = obs::Json(g);
    row["rounds_total_barriered"] = obs::Json(barriered.rounds_total);
    report.row(std::move(row));
  }
  // The meter resets per run; snapshot the last netFilter run's breakdown
  // before the naive baseline overwrites it.
  report.capture_traffic(env.meter);

  std::cout << "# naive baseline cost/peer for reference: "
            << env.run_naive().stats.cost_per_peer << " bytes\n";
  report.write();
  return 0;
}
