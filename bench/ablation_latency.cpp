// Ablation — heterogeneous link latencies (net/engine.h LatencyModel).
//
// The paper's synchronous model delivers every message in one round. Real
// overlay links vary; completion time of a tree pass stretches to the sum
// of delays along the slowest root-leaf path, while byte costs stay put.
// Composing with 10% loss adds retransmission latency on top.
#include "bench/bench_util.h"

#include "agg/convergecast.h"

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);

  bench::Params params;
  params.num_peers = 500;
  params.num_items = 50000;
  params.seed = cli.seed;
  params.threads = cli.threads;
  bench::Env env(params);
  const Value t = env.threshold();
  const auto oracle = env.workload.frequent_items(t);

  std::cout << "# Ablation: link latency spread (N=500, n=5*10^4, g=100, "
               "f=3; delay ~ U[1, max])\n";
  bench::banner("completion rounds vs latency spread, with/without loss",
                "rounds scale with the slowest path; bytes flat without "
                "loss; exact everywhere");
  TableWriter table({"max_delay", "loss_p", "rounds", "bytes/peer",
                     "exact"},
                    std::cout, 14);
  for (std::uint32_t max_delay : {1u, 2u, 4u, 8u}) {
    for (double loss : {0.0, 0.1}) {
      net::TrafficMeter meter(params.num_peers);
      core::NetFilterConfig cfg;
      cfg.num_groups = 100;
      cfg.num_filters = 3;
      cfg.fault.loss_probability = loss;
      cfg.fault.retransmit_after = 2 * max_delay + 2;
      cfg.fault.seed = cli.seed;
      // The driver owns its engines; thread latency through the fault-free
      // path by running phases manually.
      const core::NetFilter nf(cfg);
      net::LatencyModel lat;
      lat.max_delay = max_delay;
      lat.seed = cli.seed + 1;

      // Phase 1 + 2 via the building blocks over one configured engine.
      net::Engine engine(env.overlay, meter);
      engine.set_latency_model(lat);
      engine.set_fault_model(cfg.fault);

      agg::Convergecast<std::vector<Value>> phase1(
          env.hierarchy, net::TrafficCategory::kFiltering,
          [&](PeerId p) {
            return nf.local_group_aggregates(env.workload.local_items(p));
          },
          [](std::vector<Value>& a, std::vector<Value>&& b) {
            for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
          },
          [&](const std::vector<Value>&) {
            return std::uint64_t{4} * 3 * 100;
          });
      std::uint64_t rounds = engine.run(phase1, 100000);
      if (!phase1.complete()) {
        table.row(max_delay, loss, "stall", 0.0, "NO");
        continue;
      }
      core::HeavyGroupSet heavy;
      heavy.heavy.assign(3, std::vector<bool>(100, false));
      for (std::uint32_t i = 0; i < 3; ++i) {
        for (std::uint32_t j = 0; j < 100; ++j) {
          heavy.heavy[i][j] = phase1.result()[i * 100 + j] >= t;
        }
      }
      agg::Convergecast<LocalItems> phase2(
          env.hierarchy, net::TrafficCategory::kAggregation,
          [&](PeerId p) {
            return nf.materialize_candidates(env.workload.local_items(p),
                                             heavy);
          },
          [](LocalItems& a, LocalItems&& b) { a.merge_add(b); },
          [](const LocalItems& m) { return m.size() * 8; });
      rounds += engine.run(phase2, 100000);
      LocalItems frequent = phase2.result();
      frequent.retain([&](ItemId, Value v) { return v >= t; });
      table.row(max_delay, loss, rounds, meter.per_peer(),
                frequent == oracle ? "yes" : "NO");
    }
  }
  return 0;
}
