// Ablation — hierarchical netFilter vs gossip-based netFilter (the
// paper's §VI future work, implemented in core/gossip_netfilter.h).
//
// Same workload, same overlay, two substrates. Hierarchical netFilter is
// exact and cheap but needs a maintained tree; the gossip variant needs no
// tree at all, at the price of more traffic (push-sum rounds) and
// approximate values. The sweep over gossip rounds shows the accuracy
// money buys.
#include "bench/bench_util.h"

#include "core/gossip_netfilter.h"

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);

  bench::Params params;
  params.num_peers = 500;
  params.num_items = 50000;
  params.seed = cli.seed;
  params.threads = cli.threads;
  bench::Env env(params);
  {
    // Gossip needs a connected, non-tree overlay to mix.
    Rng rng(cli.seed + 5);
    env.overlay = net::Overlay(net::random_connected(500, 6.0, rng));
    env.hierarchy = agg::build_bfs_hierarchy(env.overlay, PeerId(0));
  }
  const Value t = env.threshold();
  const auto oracle = env.workload.frequent_items(t);

  std::cout << "# Ablation: hierarchical vs gossip-based netFilter "
               "(N=500, n=5*10^4, theta=0.01)\n"
            << "# oracle: " << oracle.size() << " frequent items at t=" << t
            << "\n";

  bench::banner("hierarchical netFilter (exact, needs tree maintenance)",
                "baseline for cost and accuracy");
  const auto exact = env.run_netfilter(200, 3);
  TableWriter ht({"bytes/peer", "rounds", "fp", "fn", "max_rel_err"},
                 std::cout, 14);
  ht.row(exact.stats.total_cost(),
         exact.stats.rounds_filtering + exact.stats.rounds_verification, 0,
         0, 0.0);

  bench::banner("gossip netFilter at increasing round budgets",
                "no false negatives once rounds suffice; value error and "
                "borderline false positives shrink with rounds; cost is "
                "one to two orders above hierarchical");
  TableWriter table({"rounds/phase", "bytes/peer", "reported", "fp", "fn",
                     "max_rel_err"},
                    std::cout, 14);
  for (std::uint32_t rounds : {30u, 60u, 120u}) {
    core::GossipNetFilterConfig cfg;
    cfg.num_groups = 200;
    cfg.num_filters = 3;
    cfg.phase1_rounds = rounds;
    cfg.phase2_rounds = rounds;
    cfg.seed = cli.seed;
    const core::GossipNetFilter gnf(cfg);
    net::TrafficMeter meter(params.num_peers);
    const auto res = gnf.run(env.workload, env.overlay, PeerId(0), meter, t,
                             &oracle);
    table.row(rounds, res.stats.total_cost(), res.stats.num_reported,
              res.stats.false_positives, res.stats.false_negatives,
              res.stats.max_value_rel_error);
  }
  return 0;
}
