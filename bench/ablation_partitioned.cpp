// Ablation — partitioned netFilter over k replicated hierarchies
// (§III-A.1's multi-hierarchy suggestion realized as load balancing).
//
// Same workload and parameters, k = 1..4 hierarchies. Exactness is
// invariant; what moves is the load profile: the busiest peer (the root
// under k=1) sheds work as slices spread across roots, while the average
// per-peer cost barely moves (each peer serves k trees but each tree
// carries 1/k of the data).
#include "bench/bench_util.h"

#include "core/partitioned.h"

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);

  bench::Params params;
  params.seed = cli.seed;
  params.threads = cli.threads;
  bench::Env env(params);
  {
    // A connected graph gives the replicas genuinely different trees.
    Rng rng(cli.seed + 3);
    env.overlay = net::Overlay(net::random_connected(1000, 4.0, rng));
    env.hierarchy = agg::build_bfs_hierarchy(env.overlay, PeerId(0));
  }
  const Value t = env.threshold();
  const auto oracle = env.workload.frequent_items(t);

  std::cout << "# Ablation: partitioned netFilter over k hierarchies "
               "(N=1000, n=10^5, g=100, f=4)\n";
  bench::banner(
      "load profile vs partition count",
      "root-adjacent hotspot drops ~k-fold; avg cost flat; always exact. "
      "The global max moves less: on any overlay the BFS-central peers "
      "relay large candidate unions for every root — partitioning "
      "balances the roots (the paper's stated bottleneck concern), not "
      "the graph's center");
  TableWriter table({"k", "avg_bytes/peer", "root_area_max", "global_max",
                     "exact"},
                    std::cout, 16);

  core::NetFilterConfig cfg;
  cfg.num_groups = 100;
  cfg.num_filters = 4;
  const core::PartitionedNetFilter pnf(cfg);
  for (std::uint32_t k = 1; k <= 4; ++k) {
    Rng rng(cli.seed + 7);
    const auto mh = agg::MultiHierarchy::build_random(env.overlay, k, rng);
    net::TrafficMeter meter(1000);
    const auto res = pnf.run(env.workload, mh, env.overlay, meter, t);
    // Hotspot in the root areas: the busiest direct child of any root
    // (roots themselves only receive; senders are charged).
    std::uint64_t root_area_max = 0;
    for (std::uint32_t s = 0; s < k; ++s) {
      for (PeerId c : mh.at(s).downstream(mh.at(s).root())) {
        root_area_max = std::max(root_area_max, meter.peer_total(c));
      }
    }
    table.row(k, meter.per_peer(), root_area_max, meter.max_peer_total(),
              res.frequent == oracle ? "yes" : "NO");
  }
  return 0;
}
