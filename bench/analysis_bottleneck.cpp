// Analysis check — no bottleneck at the root (paper §IV-A).
//
// The paper argues that netFilter's communication cost at peers near the
// root "is not significantly higher" than deeper down: filtering cost is
// identical at every non-root peer, dissemination cost at every non-leaf,
// and only candidate aggregation grows toward the root — by too little to
// dominate. The naive approach, in contrast, concentrates load near the
// root. This bench prints average bytes sent per peer BY HIERARCHY DEPTH
// for both algorithms, plus the max/mean peer ratio.
#include "bench/bench_util.h"

#include <map>

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);

  bench::Params params;
  params.seed = cli.seed;
  params.threads = cli.threads;
  bench::Env env(params);
  const Value t = env.threshold();

  core::NetFilterConfig cfg;
  cfg.num_groups = 100;
  cfg.num_filters = 3;
  const core::NetFilter nf(cfg);

  net::TrafficMeter nf_meter(params.num_peers);
  (void)nf.run(env.workload, env.hierarchy, env.overlay, nf_meter, t);
  net::TrafficMeter naive_meter(params.num_peers);
  (void)core::NaiveCollector{WireSizes{}}.run(env.workload, env.hierarchy,
                                              env.overlay, naive_meter, t);

  std::cout << "# Per-depth load profile (N=1000, n=10^5, g=100, f=3)\n";
  bench::banner("avg bytes sent per peer, by hierarchy depth",
                "netFilter is flat across depths (no root bottleneck); "
                "naive concentrates near the root");
  std::map<std::uint32_t, std::pair<double, std::uint32_t>> nf_by_depth;
  std::map<std::uint32_t, double> naive_by_depth;
  for (std::uint32_t p = 0; p < params.num_peers; ++p) {
    const std::uint32_t d = env.hierarchy.depth(PeerId(p));
    nf_by_depth[d].first += static_cast<double>(nf_meter.peer_total(PeerId(p)));
    nf_by_depth[d].second += 1;
    naive_by_depth[d] += static_cast<double>(naive_meter.peer_total(PeerId(p)));
  }
  TableWriter table({"depth", "peers", "netFilter B/peer", "naive B/peer"},
                    std::cout, 18);
  for (const auto& [depth, acc] : nf_by_depth) {
    table.row(depth, acc.second, acc.first / acc.second,
              naive_by_depth[depth] / acc.second);
  }
  std::cout << "# max/mean peer load — netFilter: "
            << static_cast<double>(nf_meter.max_peer_total()) /
                   nf_meter.per_peer()
            << ", naive: "
            << static_cast<double>(naive_meter.max_peer_total()) /
                   naive_meter.per_peer()
            << "\n";
  return 0;
}
