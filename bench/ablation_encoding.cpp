// Ablation — the paper's flat-field byte model vs realistic encodings.
//
// The paper charges 4 bytes per aggregate, group id and item id (Table
// III). A deployment would serialize with varints and delta-coded id
// lists. This ablation re-prices every message of one default netFilter
// run (and the naive baseline) under both schemes by actually encoding the
// message contents, answering: does the paper's conclusion survive real
// serialization? (It does — both approaches shrink, and netFilter keeps
// its relative advantage.)
#include "bench/bench_util.h"

#include "net/codec.h"

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);

  bench::Params params;
  params.seed = cli.seed;
  params.threads = cli.threads;
  bench::Env env(params);
  const Value t = env.threshold();
  const std::uint32_t g = 100;
  const std::uint32_t f = 3;

  core::NetFilterConfig cfg;
  cfg.num_groups = g;
  cfg.num_filters = f;
  const core::NetFilter nf(cfg);

  // Walk the hierarchy bottom-up once, encoding each message three ways:
  // the paper's flat model, fixed32 serialization, and varint+delta.
  std::uint64_t model_bytes = 0;
  std::uint64_t fixed_bytes = 0;
  std::uint64_t varint_bytes = 0;

  // Phase 1 messages: per non-root member, the merged f*g aggregate
  // vector of its subtree.
  std::vector<std::vector<Value>> up(params.num_peers);
  const auto order = env.hierarchy.members_deepest_first();
  for (PeerId p : order) {
    auto agg = nf.local_group_aggregates(env.workload.local_items(p));
    for (PeerId child : env.hierarchy.downstream(p)) {
      for (std::size_t i = 0; i < agg.size(); ++i) {
        agg[i] += up[child.value()][i];
      }
      up[child.value()].clear();
    }
    if (p != env.hierarchy.root()) {
      model_bytes += std::uint64_t{4} * f * g;
      fixed_bytes += net::encode_aggregates_fixed32(agg).size();
      varint_bytes += net::encode_aggregates(agg).size();
    }
    up[p.value()] = std::move(agg);
  }
  const std::vector<Value> global = std::move(up[env.hierarchy.root().value()]);

  std::cout << "# Ablation: byte model vs real serialization (one default "
               "run, N=1000, n=10^5, g=100, f=3)\n";
  bench::banner("total bytes per message type, whole run",
                "varint/delta shrinks aggregate vectors and group-id lists "
                "dramatically; 64-bit hashed item ids make pair lists "
                "slightly larger than the 4-byte model; netFilter's "
                "relative advantage survives either way");
  TableWriter table({"message", "paper_model", "fixed32", "varint+delta"},
                    std::cout, 18);
  table.row("group aggregates", model_bytes, fixed_bytes, varint_bytes);

  // Dissemination: heavy group ids per filter, once per tree edge.
  core::HeavyGroupSet heavy;
  heavy.heavy.assign(f, std::vector<bool>(g, false));
  std::vector<std::uint64_t> heavy_ids;
  for (std::uint32_t i = 0; i < f; ++i) {
    for (std::uint32_t j = 0; j < g; ++j) {
      if (global[static_cast<std::size_t>(i) * g + j] >= t) {
        heavy.heavy[i][j] = true;
        heavy_ids.push_back(std::uint64_t{i} * g + j);
      }
    }
  }
  const std::uint64_t edges = env.hierarchy.num_members() - 1;
  const auto heavy_encoded = net::encode_sorted_ids(heavy_ids).size();
  table.row("heavy group ids", 4 * heavy_ids.size() * edges,
            (4 * heavy_ids.size() + 1) * edges, heavy_encoded * edges);

  // Phase 2 / naive messages: candidate pairs and full local sets.
  std::uint64_t cand_model = 0, cand_fixed = 0, cand_varint = 0;
  std::uint64_t naive_model = 0, naive_fixed = 0, naive_varint = 0;
  std::vector<LocalItems> cand_up(params.num_peers);
  std::vector<LocalItems> naive_up(params.num_peers);
  for (PeerId p : order) {
    LocalItems cand = nf.materialize_candidates(
        env.workload.local_items(p), heavy);
    LocalItems naive = env.workload.local_items(p);
    for (PeerId child : env.hierarchy.downstream(p)) {
      cand.merge_add(cand_up[child.value()]);
      naive.merge_add(naive_up[child.value()]);
      cand_up[child.value()].clear();
      naive_up[child.value()].clear();
    }
    if (p != env.hierarchy.root()) {
      cand_model += cand.size() * 8;
      naive_model += naive.size() * 8;
      cand_fixed += cand.size() * 8 + 1;
      naive_fixed += naive.size() * 8 + net::varint_size(naive.size());
      cand_varint += net::encode_pairs(cand).size();
      naive_varint += net::encode_pairs(naive).size();
    }
    cand_up[p.value()] = std::move(cand);
    naive_up[p.value()] = std::move(naive);
  }
  table.row("candidate pairs", cand_model, cand_fixed, cand_varint);
  table.row("naive item sets", naive_model, naive_fixed, naive_varint);

  const double nf_model = static_cast<double>(
      model_bytes + 4 * heavy_ids.size() * edges + cand_model);
  const double nf_varint = static_cast<double>(
      varint_bytes + heavy_encoded * edges + cand_varint);
  std::cout << "# netFilter/naive ratio under paper model: "
            << nf_model / static_cast<double>(naive_model)
            << ", under varint+delta: "
            << nf_varint / static_cast<double>(naive_varint) << "\n";
  return 0;
}
