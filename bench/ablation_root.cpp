// Ablation — root selection policies (paper §III-A.1).
//
// The paper roots the hierarchy at a random peer and leaves "the most
// stable peer, or a peer that is close to the center of the network" for
// future exploration. Explored: hierarchy height, completion rounds and
// costs under each policy. A central root halves the height, which
// shortens every phase and shrinks the naive baseline (Formula 2 scales
// with h-1); netFilter's byte cost barely moves, confirming it is
// dominated by sa·f·g, not by depth.
#include "bench/bench_util.h"

#include "agg/root_selection.h"

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);

  bench::Params params;
  params.seed = cli.seed;
  params.threads = cli.threads;
  bench::Env env(params);
  const Value t = env.threshold();
  const auto oracle = env.workload.frequent_items(t);

  Rng rng(cli.seed + 2);
  std::vector<double> uptime(params.num_peers);
  for (auto& u : uptime) u = rng.uniform();

  std::cout << "# Ablation: root selection policy (N=1000, n=10^5, "
               "g=100, f=3; tree overlay, b=3)\n";
  bench::banner("height, rounds and cost per policy",
                "central root halves height and rounds; naive cost drops "
                "with height; netFilter cost nearly unchanged");
  TableWriter table({"policy", "root", "height", "nf_rounds", "nf_cost",
                     "naive_cost", "exact"},
                    std::cout, 14);

  struct Policy {
    const char* name;
    agg::RootPolicy policy;
  };
  for (const auto& [name, policy] :
       {Policy{"random", agg::RootPolicy::kRandom},
        Policy{"most-stable", agg::RootPolicy::kMostStable},
        Policy{"center", agg::RootPolicy::kCenter}}) {
    const PeerId root = agg::select_root(env.overlay, policy, uptime, rng);
    const agg::Hierarchy h = agg::build_bfs_hierarchy(env.overlay, root);
    net::TrafficMeter meter(params.num_peers);
    core::NetFilterConfig cfg;
    cfg.num_groups = 100;
    cfg.num_filters = 3;
    const auto res =
        core::NetFilter(cfg).run(env.workload, h, env.overlay, meter, t);
    const auto naive = core::NaiveCollector{WireSizes{}}.run(
        env.workload, h, env.overlay, meter, t);
    table.row(name, root.value(), h.height(),
              res.stats.rounds_filtering + res.stats.rounds_verification,
              res.stats.total_cost(), naive.stats.cost_per_peer,
              res.frequent == oracle ? "yes" : "NO");
  }
  return 0;
}
