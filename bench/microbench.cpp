// Google-benchmark microbenchmarks for the library's hot paths: the
// per-instance costs that bound how large a simulated system fits in a
// given wall-clock budget.
#include <benchmark/benchmark.h>

#include <map>
#include <unordered_map>

#include "agg/hll.h"
#include "common/arena.h"
#include "common/hashing.h"
#include "net/codec.h"
#include "common/value_map.h"
#include "common/zipf.h"
#include "core/netfilter.h"
#include "obs/context.h"
#include "workload/workload.h"

namespace nf {
namespace {

void BM_ZipfSample(benchmark::State& state) {
  const ZipfDistribution zipf(static_cast<std::uint64_t>(state.range(0)),
                              1.0);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_GroupHash(benchmark::State& state) {
  const GroupHash h(7, 100);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.group_of(ItemId(fmix64(++i))));
  }
}
BENCHMARK(BM_GroupHash);

void BM_FilterBankGroups(benchmark::State& state) {
  const FilterBank bank(7, static_cast<std::uint32_t>(state.range(0)), 100);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bank.groups_of(ItemId(fmix64(++i))));
  }
}
BENCHMARK(BM_FilterBankGroups)->Arg(1)->Arg(3)->Arg(10);

void BM_ValueMapMergeAdd(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Rng rng(3);
  std::vector<std::pair<ItemId, Value>> pa, pb;
  for (std::uint64_t i = 0; i < n; ++i) {
    pa.emplace_back(ItemId(hash64(i, 1)), 1);
    pb.emplace_back(ItemId(hash64(i, 2)), 1);
  }
  const auto a = ValueMap<ItemId, Value>::from_unsorted(pa);
  const auto b = ValueMap<ItemId, Value>::from_unsorted(pb);
  for (auto _ : state) {
    auto merged = a;
    merged.merge_add(b);
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_ValueMapMergeAdd)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HllInsert(benchmark::State& state) {
  agg::HyperLogLog hll(12);
  std::uint64_t i = 0;
  for (auto _ : state) {
    hll.insert(ItemId(++i));
  }
}
BENCHMARK(BM_HllInsert);

void BM_LocalGroupAggregates(benchmark::State& state) {
  wl::WorkloadConfig wc;
  wc.num_peers = 10;
  wc.num_items = 100000;
  const auto workload = wl::Workload::generate(wc);
  core::NetFilterConfig cfg;
  cfg.num_groups = 100;
  cfg.num_filters = static_cast<std::uint32_t>(state.range(0));
  const core::NetFilter nf(cfg);
  const auto& items = workload.local_items(PeerId(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nf.local_group_aggregates(items));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(items.size()));
}
BENCHMARK(BM_LocalGroupAggregates)->Arg(1)->Arg(3)->Arg(5);

void BM_VarintEncodeAggregates(benchmark::State& state) {
  Rng rng(9);
  std::vector<Value> values(static_cast<std::size_t>(state.range(0)));
  for (auto& v : values) v = rng.below(10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::encode_aggregates(values));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_VarintEncodeAggregates)->Arg(300)->Arg(3000);

// The convergecast merge kernel: child's encoded aggregate vector folded
// into the parent's SoA row. Second arg caps the values — < 128 keeps every
// varint at one byte (the SWAR fast path in add_aggregates_from), large
// values force the scalar get_varint loop, so the pair bounds the win.
void BM_VarintAddAggregates(benchmark::State& state) {
  Rng rng(9);
  std::vector<Value> values(static_cast<std::size_t>(state.range(0)));
  for (auto& v : values) {
    v = rng.below(static_cast<std::uint64_t>(state.range(1)));
  }
  const net::Bytes encoded = net::encode_aggregates(values);
  std::vector<std::uint64_t> acc(values.size(), 0);
  for (auto _ : state) {
    net::add_aggregates_from(encoded, acc);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_VarintAddAggregates)
    ->Args({300, 100})
    ->Args({300, 1000000})
    ->Args({3000, 100})
    ->Args({3000, 1000000});

// Raw column add over disjoint rows — what nf::add_columns turns into once
// the restrict qualification licenses vectorization (partitioned merge,
// decoded fixed32 rows).
void BM_ColumnAdd(benchmark::State& state) {
  Rng rng(11);
  const auto width = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> acc(width, 0);
  std::vector<std::uint64_t> src(width);
  for (auto& v : src) v = rng.below(10000);
  for (auto _ : state) {
    add_columns(acc.data(), src.data(), width);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ColumnAdd)->Arg(300)->Arg(3000);

void BM_DeltaEncodePairs(benchmark::State& state) {
  std::vector<std::pair<ItemId, Value>> pairs;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    pairs.emplace_back(ItemId(hash64(static_cast<std::uint64_t>(i), 1)), 3);
  }
  const auto map = ValueMap<ItemId, Value>::from_unsorted(pairs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::encode_pairs(map));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DeltaEncodePairs)->Arg(1000)->Arg(10000);

void BM_CodecRoundTripPairs(benchmark::State& state) {
  std::vector<std::pair<ItemId, Value>> pairs;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    pairs.emplace_back(ItemId(hash64(static_cast<std::uint64_t>(i), 2)), 7);
  }
  const auto map = ValueMap<ItemId, Value>::from_unsorted(pairs);
  const auto encoded = net::encode_pairs(map);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::decode_pairs(encoded));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CodecRoundTripPairs)->Arg(1000)->Arg(10000);

void BM_WorkloadGenerate(benchmark::State& state) {
  for (auto _ : state) {
    wl::WorkloadConfig wc;
    wc.num_peers = 100;
    wc.num_items = static_cast<std::uint64_t>(state.range(0));
    benchmark::DoNotOptimize(wl::Workload::generate(wc));
  }
}
BENCHMARK(BM_WorkloadGenerate)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// --- per-peer state fixtures: PeerArena vs the node-based maps it replaced.
// Protocols keep per-peer state for every peer in a fixed [0, N) id space;
// the access pattern that matters is delivery order, which is effectively
// scattered across peers. Each iteration does one read-modify-write per peer
// in a hashed (scattered) order, so the three fixtures differ only in the
// container: dense arena slot vs tree map vs hash map.

void BM_PeerStateArena(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  PeerArena<std::uint64_t> arena(n, 0);
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto p = static_cast<std::uint32_t>(fmix64(i) % n);
      arena[PeerId(p)] += i;
    }
    benchmark::DoNotOptimize(arena.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PeerStateArena)->Arg(1000)->Arg(10000);

void BM_PeerStateTreeMap(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::map<std::uint32_t, std::uint64_t> peers;
  for (std::uint32_t p = 0; p < n; ++p) peers.emplace(p, 0);
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto p = static_cast<std::uint32_t>(fmix64(i) % n);
      peers[p] += i;
    }
    benchmark::DoNotOptimize(peers);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PeerStateTreeMap)->Arg(1000)->Arg(10000);

void BM_PeerStateHashMap(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::unordered_map<std::uint32_t, std::uint64_t> peers;
  peers.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) peers.emplace(p, 0);
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto p = static_cast<std::uint32_t>(fmix64(i) % n);
      peers[p] += i;
    }
    benchmark::DoNotOptimize(peers);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PeerStateHashMap)->Arg(1000)->Arg(10000);

// --- obs fixtures: the cost of instrumentation on hot paths. ---------------
// The disabled variants measure the single-branch tax paid by every
// instrumented site when no obs::Context is attached (the acceptance bar is
// < 5% on protocol hot paths); the enabled variants document what turning
// tracing on costs.

void BM_ObsCounterDisabled(benchmark::State& state) {
  obs::Context* ctx = nullptr;
  benchmark::DoNotOptimize(ctx);  // the null check must really happen
  for (auto _ : state) {
    obs::add_counter(ctx, "bench/counter");
  }
}
BENCHMARK(BM_ObsCounterDisabled);

void BM_ObsCounterEnabled(benchmark::State& state) {
  obs::Context ctx;
  obs::Context* p = &ctx;
  benchmark::DoNotOptimize(p);
  for (auto _ : state) {
    obs::add_counter(p, "bench/counter");  // includes the name lookup
  }
}
BENCHMARK(BM_ObsCounterEnabled);

void BM_ObsCounterHandle(benchmark::State& state) {
  obs::Context ctx;
  obs::Counter& c = ctx.registry.counter("bench/counter");
  for (auto _ : state) {
    c.add(1);  // the cached-handle pattern Engine::set_obs uses
  }
}
BENCHMARK(BM_ObsCounterHandle);

void BM_ObsHistogramEnabled(benchmark::State& state) {
  obs::Context ctx;
  obs::Histogram& h = ctx.registry.histogram("bench/bytes");
  std::uint64_t v = 0;
  for (auto _ : state) {
    h.observe(++v);
  }
}
BENCHMARK(BM_ObsHistogramEnabled);

void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::Context* ctx = nullptr;
  benchmark::DoNotOptimize(ctx);
  for (auto _ : state) {
    obs::ScopedPhase phase(ctx, "bench.phase");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::Context ctx;
  for (auto _ : state) {
    obs::ScopedPhase phase(&ctx, "bench.phase");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsSpanEnabled);

void BM_ObsTraceEvent(benchmark::State& state) {
  obs::Context ctx(/*trace_capacity=*/4096);
  std::uint64_t v = 0;
  for (auto _ : state) {
    ctx.tracer.record(obs::EventKind::kMark, "bench.mark", obs::kNoPeer, ++v);
  }
}
BENCHMARK(BM_ObsTraceEvent);

}  // namespace
}  // namespace nf

BENCHMARK_MAIN();
