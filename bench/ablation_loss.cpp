// Ablation — netFilter over lossy links.
//
// The paper simulates loss-free links. Real P2P links drop packets; the
// engine's reliability layer (ACK + retransmit + dedup, net/engine.h)
// keeps netFilter exact and converts loss into bytes and rounds. This
// sweep prices that conversion and checks exactness at every loss rate.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);

  bench::Params params;
  params.num_peers = 500;  // keep heavy-loss runs quick
  params.num_items = 50000;
  params.seed = cli.seed;
  params.threads = cli.threads;
  bench::Env env(params);
  const Value t = env.threshold();
  const auto oracle = env.workload.frequent_items(t);

  std::cout << "# Ablation: netFilter over lossy links (N=500, n=5*10^4, "
               "g=100, f=3; ACK+retransmit reliability layer)\n";
  bench::banner("cost and latency vs per-transmission loss probability",
                "bytes inflate ~1/(1-p) plus ACK overhead; rounds grow "
                "with retransmission latency; result exact at every p");
  TableWriter table({"loss_p", "bytes/peer", "rounds", "exact"},
                    std::cout, 14);
  for (double p : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    net::TrafficMeter meter(params.num_peers);
    core::NetFilterConfig cfg;
    cfg.num_groups = 100;
    cfg.num_filters = 3;
    cfg.fault.loss_probability = p;
    cfg.fault.seed = cli.seed + 17;
    const core::NetFilter nf(cfg);
    const auto res =
        nf.run(env.workload, env.hierarchy, env.overlay, meter, t);
    table.row(p, meter.per_peer(),
              res.stats.rounds_filtering + res.stats.rounds_verification,
              res.frequent == oracle ? "yes" : "NO");
  }
  return 0;
}
