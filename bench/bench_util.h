// Shared experiment plumbing for the bench binaries.
//
// Every binary reproduces one table/figure of the paper's evaluation (§V)
// under the Table III defaults:
//   N = 1000 peers, n = 10^5 items, 10·n instances, θ = 0.01, α = 1,
//   b = 3 downstream neighbors, sa = sg = si = 4 bytes.
//
// Flags (shared): --quick scales the 10^6-item experiments down 10x for CI
// runs; --seed=S changes the master seed.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "agg/hierarchy.h"
#include "common/table.h"
#include "core/naive.h"
#include "core/netfilter.h"
#include "net/topology.h"
#include "workload/workload.h"

namespace nf::bench {

struct Params {
  std::uint32_t num_peers = 1000;    ///< N
  std::uint64_t num_items = 100000;  ///< n
  double alpha = 1.0;                ///< Zipf skewness
  double theta = 0.01;               ///< threshold ratio
  std::uint32_t fanout = 3;          ///< b
  std::uint64_t seed = 42;
};

/// Workload + overlay + hierarchy, built once and shared across a sweep.
struct Env {
  explicit Env(const Params& p)
      : params(p),
        workload([&] {
          wl::WorkloadConfig cfg;
          cfg.num_peers = p.num_peers;
          cfg.num_items = p.num_items;
          cfg.alpha = p.alpha;
          cfg.seed = p.seed;
          return wl::Workload::generate(cfg);
        }()),
        overlay([&] {
          Rng rng(p.seed + 1);
          return net::Overlay(net::random_tree(p.num_peers, p.fanout, rng));
        }()),
        hierarchy(agg::build_bfs_hierarchy(overlay, PeerId(0))) {}

  [[nodiscard]] Value threshold() const {
    return workload.threshold_for(params.theta);
  }

  [[nodiscard]] core::NetFilterResult run_netfilter(std::uint32_t g,
                                                    std::uint32_t f) {
    net::TrafficMeter meter(params.num_peers);
    core::NetFilterConfig cfg;
    cfg.num_groups = g;
    cfg.num_filters = f;
    const core::NetFilter nf(cfg);
    return nf.run(workload, hierarchy, overlay, meter, threshold());
  }

  [[nodiscard]] core::NaiveResult run_naive() {
    net::TrafficMeter meter(params.num_peers);
    const core::NaiveCollector naive{WireSizes{}};
    return naive.run(workload, hierarchy, overlay, meter, threshold());
  }

  Params params;
  wl::Workload workload;
  net::Overlay overlay;
  agg::Hierarchy hierarchy;
};

struct Cli {
  bool quick = false;
  std::uint64_t seed = 42;

  static Cli parse(int argc, char** argv) {
    Cli cli;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--quick") {
        cli.quick = true;
      } else if (arg.rfind("--seed=", 0) == 0) {
        cli.seed = std::stoull(std::string(arg.substr(7)));
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "flags: --quick (scale 10^6-item runs down 10x), "
                     "--seed=S\n";
        std::exit(0);
      } else {
        std::cerr << "unknown flag: " << arg << "\n";
        std::exit(2);
      }
    }
    return cli;
  }

  /// n for the paper's 10^6-item experiments, honoring --quick.
  [[nodiscard]] std::uint64_t large_n() const {
    return quick ? 100000ull : 1000000ull;
  }
};

inline void banner(std::string_view title, std::string_view expectation) {
  std::cout << "\n## " << title << "\n#  paper expectation: " << expectation
            << "\n";
}

}  // namespace nf::bench
