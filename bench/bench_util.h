// Shared experiment plumbing for the bench binaries.
//
// Every binary reproduces one table/figure of the paper's evaluation (§V)
// under the Table III defaults:
//   N = 1000 peers, n = 10^5 items, 10·n instances, θ = 0.01, α = 1,
//   b = 3 downstream neighbors, sa = sg = si = 4 bytes.
//
// Flags (shared): --quick scales the 10^6-item experiments down 10x for CI
// runs; --seed=S changes the master seed; --json=PATH writes an
// obs::ExportBundle document (schema docs/OBSERVABILITY.md) with the sweep
// rows, traffic breakdown, metrics and protocol trace.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "agg/hierarchy.h"
#include "common/table.h"
#include "core/naive.h"
#include "core/netfilter.h"
#include "net/topology.h"
#include "obs/context.h"
#include "obs/export.h"
#include "obs/json.h"
#include "workload/workload.h"

namespace nf::bench {

struct Params {
  std::uint32_t num_peers = 1000;    ///< N
  std::uint64_t num_items = 100000;  ///< n
  double alpha = 1.0;                ///< Zipf skewness
  double theta = 0.01;               ///< threshold ratio
  std::uint32_t fanout = 3;          ///< b
  std::uint64_t seed = 42;
  /// Engine shards (--threads=K). Results are bit-identical for any value
  /// (the sharded schedule equals the serial one — DESIGN.md §6c); recorded
  /// in the JSON report so archived numbers state how they were produced.
  std::uint32_t threads = 1;
};

/// Workload + overlay + hierarchy, built once and shared across a sweep.
/// The meter is a member (reset per run) so a caller can inspect the traffic
/// breakdown of the most recent run; pass an obs::Context to thread
/// tracing/metrics through the protocol stack.
struct Env {
  explicit Env(const Params& p, obs::Context* obs_ctx = nullptr)
      : params(p),
        workload([&] {
          wl::WorkloadConfig cfg;
          cfg.num_peers = p.num_peers;
          cfg.num_items = p.num_items;
          cfg.alpha = p.alpha;
          cfg.seed = p.seed;
          return wl::Workload::generate(cfg);
        }()),
        overlay([&] {
          Rng rng(p.seed + 1);
          return net::Overlay(net::random_tree(p.num_peers, p.fanout, rng));
        }()),
        hierarchy(agg::build_bfs_hierarchy(overlay, PeerId(0))),
        meter(p.num_peers),
        obs(obs_ctx) {}

  [[nodiscard]] Value threshold() const {
    return workload.threshold_for(params.theta);
  }

  [[nodiscard]] core::NetFilterResult run_netfilter(std::uint32_t g,
                                                    std::uint32_t f) {
    meter.reset();
    core::NetFilterConfig cfg;
    cfg.num_groups = g;
    cfg.num_filters = f;
    cfg.threads = params.threads;
    cfg.obs = obs;
    const core::NetFilter nf(cfg);
    return nf.run(workload, hierarchy, overlay, meter, threshold());
  }

  [[nodiscard]] core::NaiveResult run_naive() {
    meter.reset();
    const core::NaiveCollector naive{WireSizes{}};
    return naive.run(workload, hierarchy, overlay, meter, threshold());
  }

  Params params;
  wl::Workload workload;
  net::Overlay overlay;
  agg::Hierarchy hierarchy;
  net::TrafficMeter meter;
  obs::Context* obs = nullptr;
};

struct Cli {
  bool quick = false;
  std::uint64_t seed = 42;
  std::uint32_t threads = 1;  ///< --threads=K engine shards (determinism-safe)
  std::string json;  ///< --json=PATH; empty disables the JSON report

  static Cli parse(int argc, char** argv) {
    Cli cli;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--quick") {
        cli.quick = true;
      } else if (arg.rfind("--seed=", 0) == 0) {
        cli.seed = std::stoull(std::string(arg.substr(7)));
      } else if (arg.rfind("--threads=", 0) == 0) {
        cli.threads = static_cast<std::uint32_t>(
            std::stoul(std::string(arg.substr(10))));
        if (cli.threads == 0) {
          std::cerr << "--threads must be >= 1\n";
          std::exit(2);
        }
      } else if (arg.rfind("--json=", 0) == 0) {
        cli.json = std::string(arg.substr(7));
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "flags: --quick (scale 10^6-item runs down 10x), "
                     "--seed=S, --threads=K (engine shards; results are "
                     "identical for any K), --json=PATH (write "
                     "observability report)\n";
        std::exit(0);
      } else {
        std::cerr << "unknown flag: " << arg << "\n";
        std::exit(2);
      }
    }
    return cli;
  }

  /// n for the paper's 10^6-item experiments, honoring --quick.
  [[nodiscard]] std::uint64_t large_n() const {
    return quick ? 100000ull : 1000000ull;
  }
};

inline void banner(std::string_view title, std::string_view expectation) {
  std::cout << "\n## " << title << "\n#  paper expectation: " << expectation
            << "\n";
}

/// NetFilterStats as one JSON result row (shared by the fig* benches).
[[nodiscard]] inline obs::Json to_json(const core::NetFilterStats& s) {
  obs::Json row = obs::Json::object();
  row["threshold"] = obs::Json(s.threshold);
  row["heavy_groups_total"] = obs::Json(s.heavy_groups_total);
  row["num_candidates"] = obs::Json(s.num_candidates);
  row["num_frequent"] = obs::Json(s.num_frequent);
  row["num_false_positives"] = obs::Json(s.num_false_positives);
  row["candidates_per_peer"] = obs::Json(s.candidates_per_peer);
  row["rounds_filtering"] = obs::Json(s.rounds_filtering);
  row["rounds_verification"] = obs::Json(s.rounds_verification);
  row["filtering_cost"] = obs::Json(s.filtering_cost);
  row["dissemination_cost"] = obs::Json(s.dissemination_cost);
  row["aggregation_cost"] = obs::Json(s.aggregation_cost);
  row["host_report_cost"] = obs::Json(s.host_report_cost);
  row["total_cost"] = obs::Json(s.total_cost());
  return row;
}

/// Accumulates one bench's observability output and writes it on request.
///
/// Constructed from the parsed Cli: when --json=PATH was given it owns an
/// obs::Context (pass `report.obs()` into Env) and write() serializes the
/// ExportBundle there; without the flag every method is a cheap no-op, so
/// benches call the same code either way.
class JsonReport {
 public:
  JsonReport(const Cli& cli, std::string bench_name) : path_(cli.json) {
    bundle_.bench = std::move(bench_name);
    if (enabled()) {
      ctx_ = std::make_unique<obs::Context>(/*trace_capacity=*/1 << 14);
      bundle_.obs = ctx_.get();
      param("seed", obs::Json(cli.seed));
      param("quick", obs::Json(cli.quick));
    }
  }

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// The context to thread through Env/configs; null when disabled.
  [[nodiscard]] obs::Context* obs() { return ctx_.get(); }

  void param(const std::string& name, obs::Json value) {
    if (enabled()) bundle_.params[name] = std::move(value);
  }

  void params_from(const Params& p) {
    if (!enabled()) return;
    param("num_peers", obs::Json(p.num_peers));
    param("num_items", obs::Json(p.num_items));
    param("alpha", obs::Json(p.alpha));
    param("theta", obs::Json(p.theta));
    param("fanout", obs::Json(p.fanout));
    param("threads", obs::Json(p.threads));  // schema v2: always recorded
  }

  void row(obs::Json r) {
    if (enabled()) bundle_.results.push_back(std::move(r));
  }

  /// Snapshots the meter's breakdown now (Env meters reset per run, so
  /// capture after the run whose traffic should land in the report).
  void capture_traffic(const net::TrafficMeter& meter) {
    if (enabled()) bundle_.traffic = obs::to_json(meter);
  }

  /// Serializes the bundle to the --json path. Returns false (with a
  /// stderr note) if the file cannot be written.
  bool write() {
    if (!enabled()) return true;
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "cannot write JSON report to " << path_ << "\n";
      return false;
    }
    obs::to_json(bundle_).dump(out, /*indent=*/2);
    out << '\n';
    std::cout << "# JSON report: " << path_ << "\n";
    return out.good();
  }

 private:
  std::string path_;
  std::unique_ptr<obs::Context> ctx_;
  obs::ExportBundle bundle_;
};

}  // namespace nf::bench
