// Shared experiment plumbing for the bench binaries.
//
// Every binary reproduces one table/figure of the paper's evaluation (§V)
// under the Table III defaults:
//   N = 1000 peers, n = 10^5 items, 10·n instances, θ = 0.01, α = 1,
//   b = 3 downstream neighbors, sa = sg = si = 4 bytes.
//
// Flags (shared): --quick scales the 10^6-item experiments down 10x for CI
// runs; --seed=S changes the master seed; --json=PATH writes an
// obs::ExportBundle document (schema docs/OBSERVABILITY.md) with the sweep
// rows, traffic breakdown, metrics, protocol trace, per-round series and
// cost-model conformance; --trace-out=PATH writes a Chrome/Perfetto
// trace-event file of the same run; --trace-cap=N (or the NF_TRACE_CAP env
// var) sizes the tracer ring; --lineage-cap=N (or NF_LINEAGE_CAP) sizes
// the causal lineage ring (schema v5 "lineage" section); --series-cap=N
// (or NF_SERIES_CAP) sizes the per-round TimeSeries ring; --link-cap=N (or
// NF_LINK_CAP) sizes the heavy-hitter link summary (schema v6 "link_stats"
// section — exact while it covers the overlay's directed links, a sketch
// beyond).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "agg/hierarchy.h"
#include "common/table.h"
#include "core/cost_model.h"
#include "core/naive.h"
#include "core/netfilter.h"
#include "core/query_service.h"
#include "net/topology.h"
#include "obs/context.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/trace_event.h"
#include "workload/workload.h"

namespace nf::bench {

struct Params {
  std::uint32_t num_peers = 1000;    ///< N
  std::uint64_t num_items = 100000;  ///< n
  double instances_per_item = 10.0;  ///< total instances = this * n
  double alpha = 1.0;                ///< Zipf skewness
  double theta = 0.01;               ///< threshold ratio
  std::uint32_t fanout = 3;          ///< b
  std::uint64_t seed = 42;
  /// Engine shards (--threads=K). Results are bit-identical for any value
  /// (the sharded schedule equals the serial one — DESIGN.md §6c); recorded
  /// in the JSON report so archived numbers state how they were produced.
  std::uint32_t threads = 1;
};

/// Workload + overlay + hierarchy, built once and shared across a sweep.
/// The meter is a member (reset per run) so a caller can inspect the traffic
/// breakdown of the most recent run; pass an obs::Context to thread
/// tracing/metrics through the protocol stack.
struct Env {
  explicit Env(const Params& p, obs::Context* obs_ctx = nullptr)
      : params(p),
        workload([&] {
          wl::WorkloadConfig cfg;
          cfg.num_peers = p.num_peers;
          cfg.num_items = p.num_items;
          cfg.instances_per_item = p.instances_per_item;
          cfg.alpha = p.alpha;
          cfg.seed = p.seed;
          return wl::Workload::generate(cfg);
        }()),
        overlay([&] {
          Rng rng(p.seed + 1);
          return net::Overlay(net::random_tree(p.num_peers, p.fanout, rng));
        }()),
        hierarchy(agg::build_bfs_hierarchy(overlay, PeerId(0))),
        meter(p.num_peers),
        obs(obs_ctx) {}

  [[nodiscard]] Value threshold() const {
    return workload.threshold_for(params.theta);
  }

  [[nodiscard]] core::NetFilterResult run_netfilter(std::uint32_t g,
                                                    std::uint32_t f) {
    meter.reset();
    core::NetFilterConfig cfg;
    cfg.num_groups = g;
    cfg.num_filters = f;
    cfg.threads = params.threads;
    cfg.obs = obs;
    const core::NetFilter nf(cfg);
    core::NetFilterResult result =
        nf.run(workload, hierarchy, overlay, meter, threshold());
    annotate_conformance(result.stats, cfg, g, f);
    return result;
  }

  /// Extends the Formula-1 conformance run NetFilter::run just recorded
  /// with the workload-dependent annotations core cannot compute: the
  /// Formula 4 false-positive prediction (advisory — it is an expectation
  /// over filter seeds, one run is one draw) and the Formula 3/6 optimal
  /// g and f for these parameters.
  void annotate_conformance(const core::NetFilterStats& s,
                            const core::NetFilterConfig& cfg, std::uint32_t g,
                            std::uint32_t f) {
    namespace cm = core::cost_model;
    if (obs == nullptr || obs->conformance.num_runs() == 0) return;
    const auto n_items = static_cast<double>(workload.num_distinct());
    const auto r = static_cast<double>(s.num_frequent);
    obs->conformance.add_check(
        "F4.fp2", cm::expected_fp2(n_items, r, g, f),
        static_cast<double>(s.num_false_positives), /*gated=*/false);
    obs->conformance.set_param(
        "g_opt",
        cm::optimal_num_groups(workload.avg_light_value(s.threshold),
                               params.theta, workload.avg_global_value()));
    if (g >= 2) {
      obs->conformance.set_param(
          "f_opt", cm::optimal_num_filters(cfg.wire, n_items, r, g));
    }
  }

  /// The classic three-run orchestration (global barriers between phases),
  /// kept as the A/B baseline for the pipelined session runtime. Runs on a
  /// scratch meter without obs so it never disturbs the report of the
  /// pipelined run it is compared against; only the round counts differ.
  [[nodiscard]] core::NetFilterStats run_netfilter_barriered(
      std::uint32_t g, std::uint32_t f) {
    net::TrafficMeter scratch(params.num_peers);
    core::NetFilterConfig cfg;
    cfg.num_groups = g;
    cfg.num_filters = f;
    cfg.threads = params.threads;
    cfg.barriered = true;
    const core::NetFilter nf(cfg);
    return nf.run(workload, hierarchy, overlay, scratch, threshold()).stats;
  }

  [[nodiscard]] core::NaiveResult run_naive() {
    meter.reset();
    const core::NaiveCollector naive{WireSizes{}};
    return naive.run(workload, hierarchy, overlay, meter, threshold());
  }

  Params params;
  wl::Workload workload;
  net::Overlay overlay;
  agg::Hierarchy hierarchy;
  net::TrafficMeter meter;
  obs::Context* obs = nullptr;
};

struct Cli {
  bool quick = false;
  std::uint64_t seed = 42;
  std::uint32_t threads = 1;  ///< --threads=K engine shards (determinism-safe)
  std::string json;       ///< --json=PATH; empty disables the JSON report
  std::string trace_out;  ///< --trace-out=PATH; Chrome trace-event file
  std::uint64_t trace_cap = 0;  ///< --trace-cap=N; 0 = unset (env/default)
  std::uint64_t lineage_cap = 0;  ///< --lineage-cap=N; 0 = unset
  std::uint64_t series_cap = 0;   ///< --series-cap=N; 0 = unset
  std::uint64_t link_cap = 0;     ///< --link-cap=N; 0 = unset

  static Cli parse(int argc, char** argv) {
    Cli cli;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--quick") {
        cli.quick = true;
      } else if (arg.rfind("--seed=", 0) == 0) {
        cli.seed = std::stoull(std::string(arg.substr(7)));
      } else if (arg.rfind("--threads=", 0) == 0) {
        cli.threads = static_cast<std::uint32_t>(
            std::stoul(std::string(arg.substr(10))));
        if (cli.threads == 0) {
          std::cerr << "--threads must be >= 1\n";
          std::exit(2);
        }
      } else if (arg.rfind("--json=", 0) == 0) {
        cli.json = std::string(arg.substr(7));
      } else if (arg.rfind("--trace-out=", 0) == 0) {
        cli.trace_out = std::string(arg.substr(12));
      } else if (arg.rfind("--trace-cap=", 0) == 0) {
        cli.trace_cap = std::stoull(std::string(arg.substr(12)));
        if (cli.trace_cap == 0) {
          std::cerr << "--trace-cap must be >= 1\n";
          std::exit(2);
        }
      } else if (arg.rfind("--lineage-cap=", 0) == 0) {
        cli.lineage_cap = std::stoull(std::string(arg.substr(14)));
        if (cli.lineage_cap == 0) {
          std::cerr << "--lineage-cap must be >= 1\n";
          std::exit(2);
        }
      } else if (arg.rfind("--series-cap=", 0) == 0) {
        cli.series_cap = std::stoull(std::string(arg.substr(13)));
        if (cli.series_cap == 0) {
          std::cerr << "--series-cap must be >= 1\n";
          std::exit(2);
        }
      } else if (arg.rfind("--link-cap=", 0) == 0) {
        cli.link_cap = std::stoull(std::string(arg.substr(11)));
        if (cli.link_cap == 0) {
          std::cerr << "--link-cap must be >= 1\n";
          std::exit(2);
        }
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "flags: --quick (scale 10^6-item runs down 10x), "
                     "--seed=S, --threads=K (engine shards; results are "
                     "identical for any K), --json=PATH (write "
                     "observability report), --trace-out=PATH (write "
                     "Chrome/Perfetto trace-event JSON), --trace-cap=N "
                     "(tracer ring capacity; NF_TRACE_CAP env is the "
                     "fallback, default 16384), --lineage-cap=N (lineage "
                     "ring capacity; NF_LINEAGE_CAP env is the fallback, "
                     "default 65536), --series-cap=N (per-round series "
                     "ring; NF_SERIES_CAP fallback, default 4096), "
                     "--link-cap=N (heavy-hitter link summary capacity; "
                     "NF_LINK_CAP fallback, default 4096)\n";
        std::exit(0);
      } else {
        std::cerr << "unknown flag: " << arg << "\n";
        std::exit(2);
      }
    }
    return cli;
  }

  /// n for the paper's 10^6-item experiments, honoring --quick.
  [[nodiscard]] std::uint64_t large_n() const {
    return quick ? 100000ull : 1000000ull;
  }

  /// Tracer ring capacity: --trace-cap beats NF_TRACE_CAP beats 16384.
  [[nodiscard]] std::uint64_t resolved_trace_cap() const {
    if (trace_cap != 0) return trace_cap;
    if (const char* env = std::getenv("NF_TRACE_CAP")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1) return v;
      std::cerr << "ignoring malformed NF_TRACE_CAP=" << env << "\n";
    }
    return 1ull << 14;
  }

  /// Lineage ring capacity: --lineage-cap beats NF_LINEAGE_CAP beats 65536.
  [[nodiscard]] std::uint64_t resolved_lineage_cap() const {
    if (lineage_cap != 0) return lineage_cap;
    if (const char* env = std::getenv("NF_LINEAGE_CAP")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1) return v;
      std::cerr << "ignoring malformed NF_LINEAGE_CAP=" << env << "\n";
    }
    return obs::LineageRecorder::kDefaultCapacity;
  }

  /// Series ring capacity: --series-cap beats NF_SERIES_CAP beats 4096.
  [[nodiscard]] std::uint64_t resolved_series_cap() const {
    if (series_cap != 0) return series_cap;
    if (const char* env = std::getenv("NF_SERIES_CAP")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1) return v;
      std::cerr << "ignoring malformed NF_SERIES_CAP=" << env << "\n";
    }
    return 4096;
  }

  /// Link summary capacity: --link-cap beats NF_LINK_CAP beats the default.
  [[nodiscard]] std::uint64_t resolved_link_cap() const {
    if (link_cap != 0) return link_cap;
    if (const char* env = std::getenv("NF_LINK_CAP")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1) return v;
      std::cerr << "ignoring malformed NF_LINK_CAP=" << env << "\n";
    }
    return obs::LinkStats::kDefaultLinkCapacity;
  }
};

inline void banner(std::string_view title, std::string_view expectation) {
  std::cout << "\n## " << title << "\n#  paper expectation: " << expectation
            << "\n";
}

/// NetFilterStats as one JSON result row (shared by the fig* benches).
[[nodiscard]] inline obs::Json to_json(const core::NetFilterStats& s) {
  obs::Json row = obs::Json::object();
  row["threshold"] = obs::Json(s.threshold);
  row["heavy_groups_total"] = obs::Json(s.heavy_groups_total);
  row["num_candidates"] = obs::Json(s.num_candidates);
  row["num_frequent"] = obs::Json(s.num_frequent);
  row["num_false_positives"] = obs::Json(s.num_false_positives);
  row["candidates_per_peer"] = obs::Json(s.candidates_per_peer);
  row["rounds_filtering"] = obs::Json(s.rounds_filtering);
  row["rounds_verification"] = obs::Json(s.rounds_verification);
  row["rounds_total"] = obs::Json(s.rounds_total);  // schema v4
  row["filtering_cost"] = obs::Json(s.filtering_cost);
  row["dissemination_cost"] = obs::Json(s.dissemination_cost);
  row["aggregation_cost"] = obs::Json(s.aggregation_cost);
  row["host_report_cost"] = obs::Json(s.host_report_cost);
  row["total_cost"] = obs::Json(s.total_cost());
  return row;
}

/// Accumulates one bench's observability output and writes it on request.
///
/// Constructed from the parsed Cli: when --json=PATH or --trace-out=PATH was
/// given it owns an obs::Context (pass `report.obs()` into Env) and write()
/// serializes the ExportBundle and/or the trace-event file; without either
/// flag every method is a cheap no-op, so benches call the same code either
/// way.
class JsonReport {
 public:
  JsonReport(const Cli& cli, std::string bench_name)
      : path_(cli.json), trace_path_(cli.trace_out) {
    bundle_.bench = std::move(bench_name);
    if (enabled()) {
      ctx_ = std::make_unique<obs::Context>(
          /*trace_capacity=*/cli.resolved_trace_cap(),
          /*series_capacity=*/cli.resolved_series_cap(),
          /*lineage_capacity=*/cli.resolved_lineage_cap());
      ctx_->link_stats.set_link_capacity(cli.resolved_link_cap());
      bundle_.obs = ctx_.get();
      param("seed", obs::Json(cli.seed));
      param("quick", obs::Json(cli.quick));
    }
  }

  [[nodiscard]] bool enabled() const {
    return !path_.empty() || !trace_path_.empty();
  }

  /// The context to thread through Env/configs; null when disabled.
  [[nodiscard]] obs::Context* obs() { return ctx_.get(); }

  void param(const std::string& name, obs::Json value) {
    if (enabled()) bundle_.params[name] = std::move(value);
  }

  void params_from(const Params& p) {
    if (!enabled()) return;
    param("num_peers", obs::Json(p.num_peers));
    param("num_items", obs::Json(p.num_items));
    param("instances_per_item", obs::Json(p.instances_per_item));
    param("alpha", obs::Json(p.alpha));
    param("theta", obs::Json(p.theta));
    param("fanout", obs::Json(p.fanout));
    param("threads", obs::Json(p.threads));  // schema v2: always recorded
  }

  void row(obs::Json r) {
    if (enabled()) bundle_.results.push_back(std::move(r));
  }

  /// Snapshots the meter's breakdown now (Env meters reset per run, so
  /// capture after the run whose traffic should land in the report).
  /// per_peer_matrix=false drops the N×category byte matrix from the
  /// report — at bench scales of 10^5+ peers it dominates the file while
  /// nf-inspect and the baseline diffs only read the summary sections.
  void capture_traffic(const net::TrafficMeter& meter,
                       bool per_peer_matrix = true) {
    if (enabled()) bundle_.traffic = obs::to_json(meter, per_peer_matrix);
  }

  /// Per-session traffic attribution of a multiplexed run (schema v4
  /// "sessions"). Pass QueryService's ConcurrentQueryStats sessions.
  void capture_sessions(
      const std::vector<core::ConcurrentSessionStats>& sessions) {
    if (!enabled()) return;
    auto arr = obs::Json::array();
    for (const auto& ss : sessions) {
      auto row = obs::Json::object();
      row["name"] = obs::Json(ss.name);
      row["threshold"] = obs::Json(ss.threshold);
      row["netfilter"] = to_json(ss.netfilter);
      auto bytes = obs::Json::object();
      auto msgs = obs::Json::object();
      for (std::size_t c = 0; c < net::kNumTrafficCategories; ++c) {
        if (ss.traffic.msgs[c] == 0) continue;
        const std::string cat(
            net::to_string(static_cast<net::TrafficCategory>(c)));
        bytes[cat] = obs::Json(ss.traffic.bytes[c]);
        msgs[cat] = obs::Json(ss.traffic.msgs[c]);
      }
      row["bytes"] = std::move(bytes);
      row["msgs"] = std::move(msgs);
      row["total_bytes"] = obs::Json(ss.traffic.total_bytes());
      arr.push_back(std::move(row));
    }
    bundle_.sessions = std::move(arr);
  }

  /// Serializes the bundle to the --json path and, when --trace-out was
  /// given, the Chrome trace-event file. Returns false (with a stderr note)
  /// if either file cannot be written.
  bool write() {
    bool ok = true;
    if (ctx_ != nullptr) {
      // Make ring truncation visible in the report: nf-inspect warns when
      // these are nonzero instead of readers silently seeing a gap.
      ctx_->registry.counter("trace/dropped_events")
          .add(ctx_->tracer.dropped());  // nf-lint: nf-obs-context-ok
      ctx_->registry.counter("obs/timeseries_dropped_rounds")
          .add(ctx_->series.dropped());  // nf-lint: nf-obs-context-ok
    }
    if (!path_.empty()) {
      std::ofstream out(path_);
      if (!out) {
        std::cerr << "cannot write JSON report to " << path_ << "\n";
        ok = false;
      } else {
        obs::to_json(bundle_).dump(out, /*indent=*/2);
        out << '\n';
        std::cout << "# JSON report: " << path_ << "\n";
        ok = out.good() && ok;
      }
    }
    if (!trace_path_.empty() && ctx_ != nullptr) {
      if (obs::write_trace_event_file(trace_path_, *ctx_)) {
        std::cout << "# trace-event file: " << trace_path_ << "\n";
      } else {
        ok = false;
      }
    }
    return ok;
  }

 private:
  std::string path_;
  std::string trace_path_;
  std::unique_ptr<obs::Context> ctx_;
  obs::ExportBundle bundle_;
};

}  // namespace nf::bench
