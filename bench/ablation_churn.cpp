// Ablation — hierarchy repair under churn (paper §III-A.3).
//
// Fail k random non-root peers simultaneously, run the maintenance
// protocol, and measure rounds to stabilization and control traffic; then
// run netFilter on the repaired hierarchy and verify exactness over the
// survivors. Also exercises the multi-hierarchy answer to root failure.
#include "bench/bench_util.h"

#include "agg/maintenance.h"
#include "agg/multi_hierarchy.h"

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);

  std::cout << "# Ablation: hierarchy repair under churn (N=300, "
               "well-connected overlay)\n";
  bench::banner("simultaneous failures -> repair -> exact netFilter run",
                "repair completes in tens of rounds; results stay exact "
                "over the survivors");

  TableWriter table({"failures", "repair_rounds", "ctrl_bytes/peer",
                     "stabilized", "exact"},
                    std::cout, 16);

  for (std::uint32_t failures : {1u, 3u, 10u, 30u}) {
    const std::uint32_t n_peers = 300;
    Rng rng(cli.seed + failures);
    net::Overlay overlay(net::random_connected(n_peers, 6.0, rng));
    net::TrafficMeter meter(n_peers);
    const agg::Hierarchy initial =
        agg::build_bfs_hierarchy(overlay, PeerId(0));

    wl::WorkloadConfig wc;
    wc.num_peers = n_peers;
    wc.num_items = 20000;
    wc.seed = cli.seed;
    const wl::Workload workload = wl::Workload::generate(wc);

    // Schedule the failures at round 2, keeping the *surviving* overlay
    // connected (a disconnected survivor could never rejoin any tree).
    // Candidates are checked cumulatively: each stays failed while testing
    // the next, then all are revived and handed to the churn schedule.
    net::ChurnSchedule churn;
    std::vector<PeerId> victims;
    while (victims.size() < failures) {
      const PeerId cand(
          static_cast<std::uint32_t>(rng.between(1, n_peers - 1)));
      if (!overlay.is_alive(cand)) continue;
      overlay.fail(cand);
      std::vector<bool> seen(n_peers, false);
      std::vector<PeerId> stack{PeerId(0)};
      seen[0] = true;
      std::uint32_t count = 1;
      while (!stack.empty()) {
        const PeerId p = stack.back();
        stack.pop_back();
        for (PeerId q : overlay.alive_neighbors(p)) {
          if (!seen[q.value()]) {
            seen[q.value()] = true;
            ++count;
            stack.push_back(q);
          }
        }
      }
      if (count != overlay.num_alive()) {
        overlay.revive(cand);
        continue;
      }
      victims.push_back(cand);
    }
    for (PeerId v : victims) {
      overlay.revive(v);
      churn.fail_at(2, v);
    }

    agg::HierarchyMaintenance::Config mc;
    mc.timeout_rounds = 2;
    agg::HierarchyMaintenance maint(initial, mc);
    net::Engine engine(overlay, meter);

    // Run until stabilized (checking every 5 rounds), cap at 200.
    std::uint64_t repair_rounds = 0;
    while (repair_rounds < 200) {
      repair_rounds += engine.run(maint, 5, &churn);
      if (maint.stabilized(overlay)) break;
    }
    const bool stable = maint.stabilized(overlay);
    const double ctrl =
        meter.per_peer(net::TrafficCategory::kControl);

    bool exact = false;
    if (stable) {
      const agg::Hierarchy repaired = maint.snapshot(overlay);
      LocalItems truth;
      for (std::uint32_t p = 0; p < n_peers; ++p) {
        if (overlay.is_alive(PeerId(p))) {
          truth.merge_add(workload.local_items(PeerId(p)));
        }
      }
      const Value t = std::max<Value>(1, truth.total() / 100);
      truth.retain([&](ItemId, Value v) { return v >= t; });

      core::NetFilterConfig cfg;
      cfg.num_groups = 100;
      cfg.num_filters = 3;
      const core::NetFilter nf(cfg);
      net::TrafficMeter run_meter(n_peers);
      const auto res =
          nf.run(workload, repaired, overlay, run_meter, t);
      exact = (res.frequent == truth);
    }
    table.row(failures, repair_rounds, ctrl, stable ? "yes" : "NO",
              exact ? "yes" : "NO");
  }

  bench::banner("root failure with replicated hierarchies",
                "failover root answers exactly");
  {
    const std::uint32_t n_peers = 200;
    Rng rng(cli.seed);
    net::Overlay overlay(net::random_connected(n_peers, 6.0, rng));
    const auto mh = agg::MultiHierarchy::build_random(overlay, 3, rng);
    overlay.fail(mh.primary().root());
    const agg::Hierarchy usable =
        agg::build_bfs_hierarchy(overlay, mh.surviving(overlay).root());

    wl::WorkloadConfig wc;
    wc.num_peers = n_peers;
    wc.num_items = 10000;
    wc.seed = cli.seed;
    const wl::Workload workload = wl::Workload::generate(wc);
    LocalItems truth;
    for (std::uint32_t p = 0; p < n_peers; ++p) {
      if (overlay.is_alive(PeerId(p))) {
        truth.merge_add(workload.local_items(PeerId(p)));
      }
    }
    const Value t = std::max<Value>(1, truth.total() / 100);
    truth.retain([&](ItemId, Value v) { return v >= t; });

    core::NetFilterConfig cfg;
    cfg.num_groups = 100;
    cfg.num_filters = 3;
    net::TrafficMeter meter(n_peers);
    const auto res = core::NetFilter(cfg).run(workload, usable, overlay,
                                              meter, t);
    TableWriter table2({"failover_root", "exact"}, std::cout, 16);
    table2.row(usable.root().value(), res.frequent == truth ? "yes" : "NO");
  }
  return 0;
}
