// Figure 6 — effect of the number of filters f (paper §V-B).
//
// Sweep f from 1 to 10 with g = 100 under Table III defaults and print the
// same series as Figure 5. Expected shapes: candidates decrease
// monotonically with f; heavy groups grow ~linearly; filtering and
// dissemination costs grow linearly; total cost is U-shaped with its
// minimum at f = 3.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);

  bench::Params params;
  params.seed = cli.seed;
  params.threads = cli.threads;
  bench::JsonReport report(cli, "fig6_num_filters");
  report.params_from(params);
  report.param("g", obs::Json(100u));
  bench::Env env(params, report.obs());

  std::cout << "# Figure 6: effect of number of filters"
            << " (N=" << params.num_peers << ", n=" << params.num_items
            << ", theta=" << params.theta << ", alpha=" << params.alpha
            << ", g=100)\n";

  bench::banner("Figure 6(a)+(b): sweep of filter count f",
                "candidates decrease with f; heavy groups ~linear in f; "
                "total cost U-shaped with minimum at f=3");
  TableWriter table({"f", "cand/peer", "heavy_groups", "total_cost",
                     "filter_cost", "dissem_cost", "agg_cost", "fp"},
                    std::cout, 14);
  for (std::uint32_t f = 1; f <= 10; ++f) {
    const auto res = env.run_netfilter(100, f);
    table.row(f, res.stats.candidates_per_peer, res.stats.heavy_groups_total,
              res.stats.total_cost(), res.stats.filtering_cost,
              res.stats.dissemination_cost, res.stats.aggregation_cost,
              res.stats.num_false_positives);
    obs::Json row = bench::to_json(res.stats);
    row["f"] = obs::Json(f);
    report.row(std::move(row));
  }
  report.capture_traffic(env.meter);
  report.write();
  return 0;
}
