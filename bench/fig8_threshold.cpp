// Figure 8 — effect of the threshold ratio θ (paper §V-D).
//
// n = 10^6, sweep Zipf α from 0 to 5 for θ ∈ {0.1, 0.01, 0.001} with the
// paper's optimal settings (g, f) = (10, 6), (100, 5), (1000, 2), plus the
// naive baseline. Expected shapes: larger θ means fewer qualifying items
// and lower cost; netFilter beats naive at every θ.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);
  bench::JsonReport report(cli, "fig8_threshold");

  struct Setting {
    double theta;
    std::uint32_t g;
    std::uint32_t f;
  };
  const Setting settings[] = {{0.1, 10, 6}, {0.01, 100, 5}, {0.001, 1000, 2}};

  std::cout << "# Figure 8: effect of threshold (N=1000, n=10^6)\n";
  bench::banner(
      "Figure 8: cost vs skewness for three thresholds + naive",
      "cost decreases as theta grows; netFilter below naive at every theta");

  TableWriter table({"alpha", "nf theta=.001", "nf theta=.01",
                     "nf theta=.1", "naive"},
                    std::cout, 16);
  for (double alpha : {0.0, 1.0, 2.0, 3.0, 4.0, 5.0}) {
    bench::Params params;
    params.num_items = cli.large_n();
    params.alpha = alpha;
    params.seed = cli.seed;
    params.threads = cli.threads;

    double cost[3] = {0, 0, 0};
    double naive_cost = 0;
    // One workload per alpha, shared across the three thresholds.
    bench::Env env(params, report.obs());
    for (int i = 0; i < 3; ++i) {
      env.params.theta = settings[i].theta;
      const auto res = env.run_netfilter(settings[i].g, settings[i].f);
      cost[i] = res.stats.total_cost();
      obs::Json row = bench::to_json(res.stats);
      row["alpha"] = obs::Json(alpha);
      row["theta"] = obs::Json(settings[i].theta);
      row["g"] = obs::Json(settings[i].g);
      row["f"] = obs::Json(settings[i].f);
      report.row(std::move(row));
    }
    // Snapshot the last netFilter run before run_naive resets the meter.
    report.capture_traffic(env.meter);
    env.params.theta = 0.01;
    naive_cost = env.run_naive().stats.cost_per_peer;
    table.row(alpha, cost[2], cost[1], cost[0], naive_cost);
  }
  if (cli.quick) {
    std::cout << "# (--quick: n scaled to 10^5; run without --quick for "
                 "the paper's n=10^6)\n";
  }
  report.write();
  return 0;
}
