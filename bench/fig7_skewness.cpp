// Figure 7 — effect of data skewness (paper §V-C).
//
// Sweep Zipf α from 0 to 5 and compare netFilter against the naive
// approach, at n = 10^5 with the paper's optimal setting (g=100, f=3) and
// at n = 10^6 with (g=100, f=5). Expected shapes: netFilter costs a small
// fraction of naive (2-5% at n=10^6); both costs decrease with skewness.
#include "bench/bench_util.h"

namespace {

void sweep(std::uint64_t num_items, std::uint32_t g, std::uint32_t f,
           const nf::bench::Cli& cli, std::string_view panel,
           nf::bench::JsonReport& report) {
  using namespace nf;
  TableWriter table({"alpha", "netFilter", "naive", "ratio", "frequent"},
                    std::cout, 14);
  for (double alpha : {0.0, 1.0, 2.0, 3.0, 4.0, 5.0}) {
    bench::Params params;
    params.num_items = num_items;
    params.alpha = alpha;
    params.seed = cli.seed;
    params.threads = cli.threads;
    bench::Env env(params, report.obs());
    const auto nf_res = env.run_netfilter(g, f);
    // Snapshot before run_naive resets the shared meter.
    report.capture_traffic(env.meter);
    const auto naive_res = env.run_naive();
    table.row(alpha, nf_res.stats.total_cost(),
              naive_res.stats.cost_per_peer,
              nf_res.stats.total_cost() / naive_res.stats.cost_per_peer,
              nf_res.stats.num_frequent);
    obs::Json row = bench::to_json(nf_res.stats);
    row["panel"] = obs::Json(panel);
    row["alpha"] = obs::Json(alpha);
    row["num_items"] = obs::Json(num_items);
    row["g"] = obs::Json(g);
    row["f"] = obs::Json(f);
    row["naive_cost"] = obs::Json(naive_res.stats.cost_per_peer);
    report.row(std::move(row));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);
  bench::JsonReport report(cli, "fig7_skewness");

  std::cout << "# Figure 7: effect of data skewness (N=1000, theta=0.01)\n";

  bench::banner("Figure 7(a): n = 10^5, netFilter at (g=100, f=3)",
                "netFilter far below naive; both decrease with skewness");
  sweep(100000, 100, 3, cli, "7a", report);

  bench::banner("Figure 7(b): n = 10^6, netFilter at (g=100, f=5)",
                "netFilter at 2-5% of naive across the sweep");
  sweep(cli.large_n(), 100, 5, cli, "7b", report);
  if (cli.quick) {
    std::cout << "# (--quick: n scaled to 10^5; run without --quick for "
                 "the paper's n=10^6)\n";
  }
  report.write();
  return 0;
}
