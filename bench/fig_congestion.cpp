// fig_congestion — the link-capacity engine under contention (schema v7).
//
// The paper's synchronous network delivers every message in one round no
// matter its size. The LinkModel makes bandwidth first-class: each link
// drains capacity bytes per round and excess spills into a bounded
// backlog. This bench sweeps four link models over the same pipelined
// netfilter query (its dissemination multicast and aggregation
// convergecast overlap in one engine run, contending for the same links):
//
//   infinite      — the paper's network; the A/B baseline rows
//   uniform       — every link tightly capped; all levels queue alike
//   mixed         — modem/DSL/fiber peers (heterogeneous-bandwidth
//                   ablation); only the narrow-class links queue
//   root-narrow   — a level-1 override; queueing concentrates on the
//                   root-adjacent links that gate every wave
//
// Expectation: per-peer byte costs are IDENTICAL in every row (capacity
// delays delivery, it never changes what is sent) while round counts
// stretch by the queueing delay. `nf-inspect congestion` on the --json
// report shows which levels saturated and the spill hot-link table; note
// the report's link_stats section accumulates over the whole sweep, so
// its per-level capacities are the last (root-narrow) configuration's.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);

  bench::Params params;
  params.num_peers = cli.quick ? 300 : 600;
  params.num_items = cli.quick ? 20000 : 50000;
  params.seed = cli.seed;
  params.threads = cli.threads;

  bench::JsonReport report(cli, "fig_congestion");
  report.params_from(params);
  bench::Env env(params, report.obs());
  const Value t = env.threshold();
  const auto oracle = env.workload.frequent_items(t);

  // g sized so the filtering message (sa·f·g = 9600 bytes) exceeds the
  // modem class (7000 B/round) — the mixed row queues on modem links only.
  const std::uint32_t g = 800;
  const std::uint32_t f = 3;
  report.param("num_groups", obs::Json(g));
  report.param("num_filters", obs::Json(f));

  struct Sweep {
    const char* name;
    net::LinkModel link;
  };
  std::vector<Sweep> sweeps;
  sweeps.push_back({"infinite", net::LinkModel{}});
  {
    net::LinkModel m;
    m.classes = net::LinkClassModel::uniform(1200);
    sweeps.push_back({"uniform-1200B", m});
  }
  {
    net::LinkModel m;
    m.classes = net::LinkClassModel::mixed(/*modem=*/0.25, /*dsl=*/0.5,
                                           cli.seed + 7);
    sweeps.push_back({"mixed-classes", m});
  }
  {
    // Root-adjacent bottleneck: every level-1 link capped below even the
    // dissemination multicast, so both waves queue at the root.
    std::vector<std::uint32_t> depths(params.num_peers, ~0u);
    for (std::uint32_t p = 0; p < params.num_peers; ++p) {
      if (env.hierarchy.is_member(PeerId(p))) {
        depths[p] = env.hierarchy.depth(PeerId(p));
      }
    }
    net::LinkModel m;
    m.classes.set_level_override(depths, /*level=*/1, /*bytes=*/512);
    sweeps.push_back({"root-narrow-512B", m});
  }

  // Engine queueing counters accumulate across the sweep in the shared obs
  // registry; per-row deltas come from sampling before/after each run.
  const auto counter = [&](const char* name) -> double {
    if (report.obs() == nullptr) return 0.0;
    return static_cast<double>(
        report.obs()->registry.counter(name).value());
  };

  std::cout << "# fig_congestion: flow-contended links (N="
            << params.num_peers << ", n=" << params.num_items << ", g=" << g
            << ", f=" << f << ")\n";
  bench::banner(
      "round counts vs link model, pipelined netfilter",
      "bytes/peer identical across rows; rounds stretch with queueing, "
      "concentrated at the root under the level-1 override");
  TableWriter table({"config", "rounds", "r_filter", "r_verify", "queued",
                     "delay_rounds", "bytes/peer", "exact"},
                    std::cout, 15);
  for (const Sweep& sweep : sweeps) {
    const double queued_before = counter("engine/congestion/queued_msgs");
    const double delay_before =
        counter("engine/congestion/queue_delay_rounds");
    env.meter.reset();
    core::NetFilterConfig cfg;
    cfg.num_groups = g;
    cfg.num_filters = f;
    cfg.threads = params.threads;
    cfg.link = sweep.link;
    cfg.obs = report.obs();
    const core::NetFilter nf(cfg);
    const core::NetFilterResult result =
        nf.run(env.workload, env.hierarchy, env.overlay, env.meter, t);
    const core::NetFilterStats& s = result.stats;
    const double queued = counter("engine/congestion/queued_msgs") -
                          queued_before;
    const double delay = counter("engine/congestion/queue_delay_rounds") -
                         delay_before;
    const bool exact = result.frequent == oracle;
    table.row(sweep.name, s.rounds_total, s.rounds_filtering,
              s.rounds_verification, queued, delay, env.meter.per_peer(),
              exact ? "yes" : "NO");
    obs::Json row = bench::to_json(s);
    row["config"] = obs::Json(std::string(sweep.name));
    row["queued_msgs"] = obs::Json(queued);
    row["queue_delay_rounds"] = obs::Json(delay);
    row["exact"] = obs::Json(exact);
    report.row(std::move(row));
  }
  report.capture_traffic(env.meter, /*per_peer_matrix=*/false);
  if (!report.write()) return 1;
  return 0;
}
