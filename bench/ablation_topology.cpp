// Ablation — overlay topology families (DESIGN.md §7).
//
// The paper evaluates on one overlay shape (b=3 hierarchy). netFilter's
// cost model depends on the topology only through the hierarchy height (in
// the naive bound) and the per-edge message counts, so its cost should be
// nearly topology-invariant while the naive baseline and round counts move
// with the tree shape. Sweep four generators at N=1000.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);

  std::cout << "# Ablation: overlay topology families (N=1000, n=10^5, "
               "theta=0.01, g=100, f=3)\n";
  bench::banner("netFilter vs naive across overlay generators",
                "netFilter cost nearly topology-invariant; naive cost and "
                "rounds track hierarchy height");

  wl::WorkloadConfig wc;
  wc.num_peers = 1000;
  wc.num_items = 100000;
  wc.seed = cli.seed;
  const wl::Workload workload = wl::Workload::generate(wc);
  const Value t = workload.threshold_for(0.01);

  struct Family {
    const char* name;
    net::Topology topo;
  };
  Rng rng(cli.seed + 1);
  std::vector<Family> families;
  families.push_back({"tree(b=3)", net::random_tree(1000, 3, rng)});
  families.push_back({"erdos-renyi(d=4)",
                      net::random_connected(1000, 4.0, rng)});
  families.push_back({"watts-strogatz", net::watts_strogatz(1000, 4, 0.2,
                                                            rng)});
  families.push_back({"barabasi-albert", net::barabasi_albert(1000, 2,
                                                              rng)});

  TableWriter table({"topology", "height", "nf_cost", "nf_rounds",
                     "naive_cost", "exact"},
                    std::cout, 18);
  for (auto& fam : families) {
    net::Overlay overlay(std::move(fam.topo));
    net::TrafficMeter meter(1000);
    const agg::Hierarchy h = agg::build_bfs_hierarchy(overlay, PeerId(0));
    core::NetFilterConfig cfg;
    cfg.num_groups = 100;
    cfg.num_filters = 3;
    const auto res =
        core::NetFilter(cfg).run(workload, h, overlay, meter, t);
    const auto naive =
        core::NaiveCollector{WireSizes{}}.run(workload, h, overlay, meter,
                                              t);
    table.row(fam.name, h.height(), res.stats.total_cost(),
              res.stats.rounds_filtering + res.stats.rounds_verification,
              naive.stats.cost_per_peer,
              res.frequent == workload.frequent_items(t) ? "yes" : "NO");
  }
  return 0;
}
