// Analysis check — setting netFilter optimally in practice (paper §IV-E).
//
// Runs the sampling-based tuner and prints (1) its estimates of v̄,
// v̄_light, n, r against the ground truth, (2) the (g, f) it picks from
// Formulae 3 and 6 and the cost of running with them, against a brute-force
// grid search over (g, f). The tuned cost should sit within a small factor
// of the grid optimum — the paper's claim that netFilter can be configured
// without global knowledge.
#include "bench/bench_util.h"

#include "core/tuner.h"

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);

  bench::Params params;
  params.seed = cli.seed;
  params.threads = cli.threads;
  bench::Env env(params);
  const Value t = env.threshold();

  net::TrafficMeter meter(params.num_peers);
  core::TunerConfig tc;
  tc.sampling.num_branches = 10;
  tc.sampling.items_per_peer = 100;
  const core::TunedSetting ts =
      core::tune(env.workload, env.hierarchy, params.theta, tc, &meter);

  std::cout << "# Parameter estimation and self-tuning (paper IV-E)\n";
  bench::banner(
      "sampled estimates vs ground truth",
      "per-item value estimates are popularity-inflated (the paper's "
      "v-hat scaling forces the sampled items to carry all system mass), "
      "but the RATIO v_light/v_bar that Formula 3 consumes is accurate; "
      "n-hat within a few percent (HLL); r-hat right order of magnitude");
  TableWriter est({"quantity", "estimate", "truth"}, std::cout, 18);
  est.row("v_bar", ts.estimates.v_bar, env.workload.avg_global_value());
  est.row("v_bar_light", ts.estimates.v_bar_light,
          env.workload.avg_light_value(t));
  est.row("v_light/v_bar", ts.estimates.v_bar_light / ts.estimates.v_bar,
          env.workload.avg_light_value(t) / env.workload.avg_global_value());
  est.row("n", ts.estimates.n_hat,
          static_cast<double>(env.workload.num_distinct()));
  est.row("r", ts.estimates.r_hat,
          static_cast<double>(env.workload.frequent_items(t).size()));
  std::cout << "# sampled peers: " << ts.estimates.num_sampled_peers
            << ", sampled items: " << ts.estimates.num_sampled_items
            << ", sampling traffic/peer: "
            << meter.per_peer(net::TrafficCategory::kSampling) << " bytes\n";

  bench::banner("tuned (g, f) vs brute-force grid search",
                "tuned cost within a small factor of the grid optimum");
  const auto tuned = env.run_netfilter(ts.num_groups, ts.num_filters);
  TableWriter table({"setting", "g", "f", "total_cost"}, std::cout, 14);
  table.row("tuned", ts.num_groups, ts.num_filters,
            tuned.stats.total_cost());

  double best_cost = tuned.stats.total_cost();
  std::uint32_t best_g = ts.num_groups;
  std::uint32_t best_f = ts.num_filters;
  for (std::uint32_t g : {25u, 50u, 100u, 200u, 400u, 800u}) {
    for (std::uint32_t f : {1u, 2u, 3u, 4u, 5u, 6u, 8u}) {
      const auto res = env.run_netfilter(g, f);
      if (res.stats.total_cost() < best_cost) {
        best_cost = res.stats.total_cost();
        best_g = g;
        best_f = f;
      }
    }
  }
  table.row("grid-best", best_g, best_f, best_cost);
  std::cout << "# tuned/grid-best cost ratio: "
            << tuned.stats.total_cost() / best_cost << "\n";
  return 0;
}
