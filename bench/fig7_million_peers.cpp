// Million-peer scale run — fig7-shaped sweep at N = 10^6 peers.
//
// The paper evaluates at N = 1000 peers; this bench stresses the flat
// slab-backed payload path at overlay sizes three orders of magnitude
// larger: per-peer SoA group-sum rows (f*g = 500 slots), slab outboxes
// reused across rounds, and canonical-order merges. It sweeps Zipf
// α ∈ {0, 1, 2} at n = 10^5 items with the paper's n = 10^6 tuning
// (g=100, f=5), comparing netFilter against the naive collector and
// cross-checking charged bytes against the Formula-1 cost model (the
// conformance section of the JSON report gates filtering/dissemination).
//
// Instance density scales with N (instances_per_item = N/1000, i.e. ~100
// instances per peer) so the comparison stays in Figure 7's regime: with
// the Table III default of 10·n instances spread over 10^6 peers each peer
// would hold ~0.1 items and the naive baseline would be trivially cheap.
//
// --quick scales N down to 10^5 peers for the CI smoke run; the committed
// BENCH_million_baseline.json is captured from that variant by
// scripts/capture_baseline.sh. The full N = 10^6 run is the acceptance
// gate for the zero-alloc steady state at target scale.
#include "bench/bench_util.h"

namespace {

void sweep(std::uint32_t num_peers, const nf::bench::Cli& cli,
           nf::bench::JsonReport& report) {
  using namespace nf;
  constexpr std::uint32_t g = 100;
  constexpr std::uint32_t f = 5;
  TableWriter table({"alpha", "netFilter", "naive", "ratio", "frequent"},
                    std::cout, 14);
  for (double alpha : {0.0, 1.0, 2.0}) {
    bench::Params params;
    params.num_peers = num_peers;
    params.num_items = 100000;
    params.instances_per_item = static_cast<double>(num_peers) / 1000.0;
    params.alpha = alpha;
    params.seed = cli.seed;
    params.threads = cli.threads;
    bench::Env env(params, report.obs());
    if (alpha == 0.0) report.params_from(params);
    const auto nf_res = env.run_netfilter(g, f);
    // Snapshot before run_naive resets the shared meter. Summary only:
    // the per-peer matrix would be 100 MB+ at N = 10^6.
    report.capture_traffic(env.meter, /*per_peer_matrix=*/false);
    const auto naive_res = env.run_naive();
    table.row(alpha, nf_res.stats.total_cost(),
              naive_res.stats.cost_per_peer,
              nf_res.stats.total_cost() / naive_res.stats.cost_per_peer,
              nf_res.stats.num_frequent);
    obs::Json row = bench::to_json(nf_res.stats);
    row["alpha"] = obs::Json(alpha);
    row["num_peers"] = obs::Json(num_peers);
    row["g"] = obs::Json(g);
    row["f"] = obs::Json(f);
    row["naive_cost"] = obs::Json(naive_res.stats.cost_per_peer);
    report.row(std::move(row));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);
  bench::JsonReport report(cli, "fig7_million_peers");

  const std::uint32_t num_peers = cli.quick ? 100000u : 1000000u;
  std::cout << "# Million-peer sweep: N=" << num_peers
            << ", n=10^5, ~100 instances/peer, g=100, f=5, theta=0.01\n";
  bench::banner("fig7-shaped sweep at large N",
                "netFilter cost per peer stays a small fraction of naive; "
                "bytes match the Formula-1 model");
  sweep(num_peers, cli, report);
  if (cli.quick) {
    std::cout << "# (--quick: N scaled to 10^5 peers; run without --quick "
                 "for the full 10^6-peer experiment)\n";
  }
  report.write();
  return 0;
}
