// Ablation — multiplexed concurrent queries (session runtime, DESIGN.md §6d).
//
// N independent IFI queries — distinct thresholds, one with its own filter
// bank — run as concurrent sessions over ONE engine run via
// QueryService::serve_concurrent, then the same queries back to back. Both
// orchestrations return bit-identical answers; the multiplexed run finishes
// in far fewer total rounds because sessions overlap, and the per-session
// traffic tallies attribute every byte to its query (the "sessions" section
// of the JSON report, surfaced by nf-inspect).
#include "bench/bench_util.h"

#include "core/query_service.h"

int main(int argc, char** argv) {
  using namespace nf;
  const auto cli = bench::Cli::parse(argc, argv);

  bench::Params params;
  params.seed = cli.seed;
  params.threads = cli.threads;
  bench::JsonReport report(cli, "ablation_multiquery");
  report.params_from(params);
  bench::Env env(params, report.obs());

  // Five queries: a spread of thetas plus one with a private filter bank.
  const std::vector<core::ConcurrentRequest> requests{
      {PeerId(7), 0.005, 0, 0, 0},
      {PeerId(123), 0.01, 0, 0, 0},
      {PeerId(256), 0.02, 0, 0, 0},
      {PeerId(400), 0.01, 4, 150, 1234},
      {PeerId(512), 0.05, 0, 0, 0},
  };
  report.param("num_queries", obs::Json(requests.size()));

  core::NetFilterConfig cfg;
  cfg.num_groups = 100;
  cfg.num_filters = 3;
  cfg.threads = params.threads;
  cfg.obs = report.obs();
  const core::QueryService svc(cfg);

  std::cout << "# Ablation: " << requests.size()
            << " concurrent IFI sessions over one engine run"
            << " (N=" << params.num_peers << ", n=" << params.num_items
            << ", g=100, f=3)\n";

  bench::banner("Multiplexed sessions vs back-to-back runs",
                "identical answers; multiplexed rounds ~= the slowest "
                "single query instead of the sum");
  env.meter.reset();
  core::ConcurrentQueryStats stats;
  const auto responses =
      svc.serve_concurrent(requests, env.workload, env.hierarchy, env.overlay,
                           env.meter, &stats);

  TableWriter table({"session", "theta", "threshold", "frequent",
                     "candidates", "total_cost", "bytes"},
                    std::cout, 14);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const auto& ss = stats.sessions[i];
    table.row(ss.name, requests[i].theta, ss.threshold,
              responses[i].frequent.size(), ss.netfilter.num_candidates,
              ss.netfilter.total_cost(), ss.traffic.total_bytes());
    obs::Json row = bench::to_json(ss.netfilter);
    row["session"] = obs::Json(ss.name);
    row["theta"] = obs::Json(requests[i].theta);
    row["num_frequent_reported"] = obs::Json(responses[i].frequent.size());
    report.row(std::move(row));
  }
  report.capture_traffic(env.meter);
  report.capture_sessions(stats.sessions);

  // Back-to-back baseline: each query on its own engine run; the answers
  // must match and the rounds add up instead of overlapping.
  std::uint64_t serial_rounds = 0;
  bool identical = true;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    core::NetFilterConfig solo_cfg = cfg;
    solo_cfg.obs = nullptr;
    if (requests[i].num_filters != 0) {
      solo_cfg.num_filters = requests[i].num_filters;
    }
    if (requests[i].num_groups != 0) {
      solo_cfg.num_groups = requests[i].num_groups;
    }
    if (requests[i].filter_seed != 0) {
      solo_cfg.filter_seed = requests[i].filter_seed;
    }
    const core::NetFilter nf(solo_cfg);
    net::TrafficMeter scratch(params.num_peers);
    const auto solo = nf.run(env.workload, env.hierarchy, env.overlay,
                             scratch, responses[i].threshold);
    serial_rounds += solo.stats.rounds_total;
    identical = identical && solo.frequent == responses[i].frequent;
  }
  std::cout << "# multiplexed rounds_total = " << stats.rounds_total
            << ", back-to-back sum = " << serial_rounds
            << ", answers identical = " << (identical ? "yes" : "NO") << "\n";
  report.param("rounds_total_multiplexed", obs::Json(stats.rounds_total));
  report.param("rounds_total_back_to_back", obs::Json(serial_rounds));

  report.write();
  return identical && stats.rounds_total < serial_rounds ? 0 : 1;
}
