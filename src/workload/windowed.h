// Sliding-window item source.
//
// The paper's flagship query is windowed: "which MP3 songs have been
// downloaded more than 10,000 times IN THE PAST WEEK" (§I, footnote 1).
// Cumulative counters cannot answer that; each peer must keep its recent
// activity bucketed by epoch and expose the sum of the last W epochs.
// WindowedWorkload does exactly that: push one delta set per peer per
// epoch, and `local_items` always reflects the current window — so
// netFilter and ContinuousMonitor run on it unchanged, and an item whose
// burst of popularity scrolls out of the window drops out of the frequent
// set even though nothing was ever decremented at the source.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/item_source.h"

namespace nf::wl {

class WindowedWorkload final : public ItemSource {
 public:
  /// `window` = number of most-recent epochs that count (W >= 1).
  WindowedWorkload(std::uint32_t num_peers, std::uint32_t window)
      : window_(window), current_(num_peers), sum_(num_peers) {
    require(num_peers >= 1, "need at least one peer");
    require(window >= 1, "window must cover at least one epoch");
  }

  /// Records activity for the epoch being assembled.
  void add(PeerId p, ItemId item, Value delta) {
    require(p.value() < current_.size(), "peer out of range");
    require(delta > 0, "deltas must be positive");
    current_[p.value()].add(item, delta);
    dirty_ = true;
  }

  /// Closes the current epoch: its deltas enter the window and the oldest
  /// epoch (if the window is full) scrolls out.
  void roll_epoch() {
    history_.push_back(std::move(current_));
    current_.assign(num_peers(), LocalItems{});
    if (history_.size() > window_) history_.pop_front();
    rebuild();
    ++epochs_rolled_;
    dirty_ = false;
  }

  // ItemSource: the window sum over *closed* epochs. Call roll_epoch()
  // before querying; throws if un-rolled activity would be silently
  // ignored.
  [[nodiscard]] const LocalItems& local_items(PeerId p) const override {
    require(p.value() < sum_.size(), "peer out of range");
    require(!dirty_,
            "current epoch has unrolled activity; call roll_epoch() first");
    return sum_[p.value()];
  }
  [[nodiscard]] std::uint32_t num_peers() const override {
    return static_cast<std::uint32_t>(sum_.size());
  }

  [[nodiscard]] std::uint32_t window() const { return window_; }
  [[nodiscard]] std::uint64_t epochs_rolled() const { return epochs_rolled_; }

  /// Total value inside the current window.
  [[nodiscard]] Value total_value() const {
    require(!dirty_, "roll_epoch() first");
    Value v = 0;
    for (const auto& l : sum_) v += l.total();
    return v;
  }

 private:
  void rebuild() {
    for (std::uint32_t p = 0; p < num_peers(); ++p) {
      sum_[p].clear();
      for (const auto& epoch : history_) {
        sum_[p].merge_add(epoch[p]);
      }
    }
  }

  std::uint32_t window_;
  std::deque<std::vector<LocalItems>> history_;
  std::vector<LocalItems> current_;
  std::vector<LocalItems> sum_;
  std::uint64_t epochs_rolled_ = 0;
  bool dirty_ = false;
};

}  // namespace nf::wl
