// Application scenario generators — the operations of the paper's Table I.
//
// Each scenario synthesizes per-peer local item sets for one of the
// applications the paper motivates IFI with, together with a Catalog that
// maps the opaque ItemIds back to human-readable keys so the examples can
// print real answers ("keyword 'mp3' was queried 18,204 times"), plus any
// planted ground truth the scenario controls (e.g. the DDoS victim).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "workload/workload.h"

namespace nf::wl {

/// Reverse mapping from hashed item ids to the application-level keys.
class Catalog {
 public:
  ItemId intern(const std::string& key);
  [[nodiscard]] const std::string& name_of(ItemId id) const;
  [[nodiscard]] bool contains(ItemId id) const {
    return names_.contains(id);
  }
  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  // Ordered map: catalog dumps and any future iteration emit in ItemId
  // order, keeping workload generation deterministic (nf-lint:
  // nf-determinism-unordered-iteration).
  std::map<ItemId, std::string> names_;
};

struct ScenarioOutput {
  Workload workload;
  Catalog catalog;
  /// Items the scenario deliberately made frequent (test/demo oracle).
  std::vector<ItemId> planted;
};

/// Table I row 1 — "frequent keywords identification" (cache management):
/// each peer issues `queries_per_peer` queries of 1..4 keywords drawn from a
/// Zipf-distributed vocabulary; the local value of a keyword is the number
/// of the peer's queries it appears in.
[[nodiscard]] ScenarioOutput keyword_queries(std::uint32_t num_peers,
                                             std::uint32_t vocabulary,
                                             std::uint32_t queries_per_peer,
                                             double alpha, std::uint64_t seed);

/// Table I row 2 — "frequent documents identification" (search technique
/// design): the local value of a document is the number of replicas the
/// peer stores; popular documents are replicated at many peers.
[[nodiscard]] ScenarioOutput document_replicas(std::uint32_t num_peers,
                                               std::uint32_t num_documents,
                                               std::uint32_t replicas_per_peer,
                                               double alpha,
                                               std::uint64_t seed);

/// Table I row 3 — "frequently co-occurring keyword pairs" (query
/// refinement): items are unordered keyword pairs co-occurring in a query.
[[nodiscard]] ScenarioOutput co_occurring_pairs(std::uint32_t num_peers,
                                                std::uint32_t vocabulary,
                                                std::uint32_t queries_per_peer,
                                                double alpha,
                                                std::uint64_t seed);

/// Table I row 4 — "popular peers identification" (content mirroring,
/// incentive mechanisms): the local value of peer X at peer i counts the
/// queries for which X provided satisfactory results to i. A few planted
/// "super-peers" answer a disproportionate share of everyone's queries.
[[nodiscard]] ScenarioOutput popular_peers(std::uint32_t num_peers,
                                           std::uint32_t queries_per_peer,
                                           std::uint32_t num_super_peers,
                                           std::uint64_t seed);

/// Table I row 5 — "frequently contacted peer pairs" (topology
/// optimization, social analysis): items are source/destination address
/// pairs observed in relayed packets; a few planted "friend pairs"
/// exchange heavy traffic that is routed through many relays.
[[nodiscard]] ScenarioOutput contacted_peer_pairs(std::uint32_t num_peers,
                                                  std::uint32_t packets_per_peer,
                                                  std::uint32_t num_friend_pairs,
                                                  std::uint64_t seed);

/// Table I row 6 — "large flow of traffic identification" (DDoS detection):
/// peers are routers; the local value of a destination address is the total
/// size of flows to it seen at that router. `num_victims` destinations are
/// planted as attack targets: each receives attack flows through most
/// routers, so only the *global* view reveals them.
[[nodiscard]] ScenarioOutput ddos_flows(std::uint32_t num_peers,
                                        std::uint32_t address_space,
                                        std::uint32_t flows_per_peer,
                                        std::uint32_t num_victims,
                                        std::uint64_t seed);

/// Table I row 7 — "frequent byte sequences" (worm detection): the local
/// value of a byte-sequence signature is the number of flows containing it;
/// `num_worms` signatures are planted across most peers.
[[nodiscard]] ScenarioOutput worm_signatures(std::uint32_t num_peers,
                                             std::uint32_t benign_signatures,
                                             std::uint32_t flows_per_peer,
                                             std::uint32_t num_worms,
                                             std::uint64_t seed);

}  // namespace nf::wl
