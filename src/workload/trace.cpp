#include "workload/trace.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/error.h"

namespace nf::wl {

namespace {
constexpr std::string_view kMagic = "netfilter-trace-v1";
}  // namespace

void save_trace(std::ostream& os, const ItemSource& items, TraceKeyMode mode,
                const Catalog* catalog) {
  os << kMagic << ' ' << (mode == TraceKeyMode::kIds ? "ids" : "keys")
     << '\n';
  for (std::uint32_t p = 0; p < items.num_peers(); ++p) {
    const auto& local = items.local_items(PeerId(p));
    if (local.empty()) continue;
    os << "peer " << p << '\n';
    for (const auto& [id, value] : local) {
      if (mode == TraceKeyMode::kIds) {
        os << id.value();
      } else if (catalog != nullptr && catalog->contains(id)) {
        os << catalog->name_of(id);
      } else {
        os << "item-" << id.value();
      }
      os << ' ' << value << '\n';
    }
  }
}

ScenarioOutput load_trace(std::istream& is) {
  std::string line;
  require(static_cast<bool>(std::getline(is, line)), "empty trace");
  std::istringstream header(line);
  std::string magic;
  std::string mode_word;
  header >> magic >> mode_word;
  require(magic == kMagic, "not a netfilter trace (bad magic)");
  TraceKeyMode mode;
  if (mode_word == "ids") {
    mode = TraceKeyMode::kIds;
  } else if (mode_word == "keys") {
    mode = TraceKeyMode::kKeys;
  } else {
    throw InvalidArgument("trace key mode must be 'ids' or 'keys'");
  }

  ScenarioOutput out;
  std::vector<std::vector<std::pair<ItemId, Value>>> raw;
  std::int64_t current_peer = -1;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string first;
    ls >> first;
    if (first == "peer") {
      std::uint32_t peer = 0;
      require(static_cast<bool>(ls >> peer),
              concat("bad peer line at ", line_no));
      current_peer = peer;
      if (raw.size() <= static_cast<std::size_t>(peer)) {
        raw.resize(static_cast<std::size_t>(peer) + 1);
      }
      continue;
    }
    require(current_peer >= 0,
            concat("item before any 'peer' line at ", line_no));
    Value value = 0;
    require(static_cast<bool>(ls >> value),
            concat("missing value at line ", line_no));
    std::string trailing;
    require(!(ls >> trailing), concat("trailing tokens at line ", line_no));
    ItemId id;
    if (mode == TraceKeyMode::kIds) {
      try {
        id = ItemId(std::stoull(first));
      } catch (const std::exception&) {
        throw InvalidArgument(concat("bad item id at line ", line_no));
      }
    } else {
      id = out.catalog.intern(first);
    }
    raw[static_cast<std::size_t>(current_peer)].emplace_back(id, value);
  }
  require(!raw.empty(), "trace contains no peers");

  std::vector<LocalItems> locals;
  locals.reserve(raw.size());
  for (auto& pairs : raw) {
    locals.push_back(LocalItems::from_unsorted(std::move(pairs)));
  }
  out.workload = Workload::from_local_sets(std::move(locals));
  return out;
}

void save_trace_file(const std::string& path, const ItemSource& items,
                     TraceKeyMode mode, const Catalog* catalog) {
  std::ofstream os(path);
  require(os.good(), concat("cannot open for writing: ", path));
  save_trace(os, items, mode, catalog);
  require(os.good(), concat("write failed: ", path));
}

ScenarioOutput load_trace_file(const std::string& path) {
  std::ifstream is(path);
  require(is.good(), concat("cannot open: ", path));
  return load_trace(is);
}

}  // namespace nf::wl
