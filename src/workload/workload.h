// Synthetic workload generation (paper §V, Table III).
//
// The evaluation generates 10·n instances of n distinct items with
// frequencies following a Zipf(α) distribution and scatters the instances
// uniformly over the N peers; each peer's local value for an item is the
// number of instances it received. The Workload also serves as the
// ground-truth oracle: it knows every item's exact global value, the grand
// total v, and hence the exact frequent-item set for any threshold — which
// is what netFilter's output is checked against.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/item_source.h"
#include "common/zipf.h"

namespace nf::wl {

struct WorkloadConfig {
  std::uint32_t num_peers = 1000;       ///< N
  std::uint64_t num_items = 100000;     ///< n (distinct item universe)
  double instances_per_item = 10.0;     ///< total instances = this * n
  double alpha = 1.0;                   ///< Zipf skewness (paper's α)
  /// The paper's problem statement says the data set *has* n distinct
  /// items, so by default every item receives one guaranteed instance and
  /// only the remaining (10-1)·n instances are Zipf-sampled. Without the
  /// floor, high skewness collapses the realized distinct-item count and
  /// the naive baseline becomes artificially cheap (see DESIGN.md).
  bool min_one_instance = true;
  std::uint64_t seed = 42;

  void validate() const;
};

class Workload final : public ItemSource {
 public:
  /// Generates the paper's synthetic workload.
  static Workload generate(const WorkloadConfig& config);

  /// Wraps explicit local item sets (application adapters, tests).
  static Workload from_local_sets(std::vector<LocalItems> local_sets);

  // ItemSource
  [[nodiscard]] const LocalItems& local_items(PeerId p) const override;
  [[nodiscard]] std::uint32_t num_peers() const override {
    return static_cast<std::uint32_t>(local_.size());
  }

  /// Ground truth: exact global values of every item that occurs.
  [[nodiscard]] const ValueMap<ItemId, Value>& global() const {
    return global_;
  }

  /// v: the grand total of all local values of all items.
  [[nodiscard]] Value total_value() const { return total_; }

  /// t = θ·v rounded up (a value passes iff value >= t).
  [[nodiscard]] Value threshold_for(double theta) const;

  /// Oracle IFI(A, t): exact ids and global values of items with v_x >= t.
  [[nodiscard]] ValueMap<ItemId, Value> frequent_items(Value threshold) const;

  /// Realized number of distinct items (<= configured n: with few instances
  /// some tail ranks never occur).
  [[nodiscard]] std::uint64_t num_distinct() const { return global_.size(); }

  /// Realized o: average distinct items per peer.
  [[nodiscard]] double avg_local_distinct() const;

  /// Average global value v̄ over occurring items.
  [[nodiscard]] double avg_global_value() const;

  /// Average global value over light items (global value < threshold).
  [[nodiscard]] double avg_light_value(Value threshold) const;

 private:
  std::vector<LocalItems> local_;
  ValueMap<ItemId, Value> global_;
  Value total_{0};
};

/// The deterministic rank -> ItemId mapping used by `generate`: ids are
/// scattered over the full 64-bit space, as hashed application keys would
/// be.
[[nodiscard]] ItemId item_id_for_rank(std::uint64_t rank, std::uint64_t seed);

}  // namespace nf::wl
