// Trace import/export.
//
// Lets users run netFilter over their own data instead of the synthetic
// Zipf workload: dump per-peer local item sets to a line-oriented text
// trace, or load one produced by an external tool. Two key modes:
//
//   netfilter-trace-v1 ids          netfilter-trace-v1 keys
//   peer 0                          peer 0
//   18446744073709551557 3          the-beatles-yesterday 3
//   42 1                            weather-report 1
//   peer 1                          peer 1
//   ...                             ...
//
// `ids` carries raw 64-bit item identifiers verbatim; `keys` carries
// application strings, interned to ids by hashing (a Catalog maps them
// back for display). Lines starting with '#' and blank lines are ignored.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/scenarios.h"
#include "workload/workload.h"

namespace nf::wl {

enum class TraceKeyMode { kIds, kKeys };

/// Writes every peer's local item set. In kKeys mode, items are written as
/// their catalog names; items without a catalog entry fall back to
/// "item-<id>".
void save_trace(std::ostream& os, const ItemSource& items,
                TraceKeyMode mode, const Catalog* catalog = nullptr);

/// Parses a trace. Peers may appear in any order; repeated `peer` sections
/// and repeated items accumulate. Peers absent from the trace (up to the
/// maximum peer id seen) get empty local sets. Throws InvalidArgument on
/// malformed input.
[[nodiscard]] ScenarioOutput load_trace(std::istream& is);

/// Convenience file wrappers.
void save_trace_file(const std::string& path, const ItemSource& items,
                     TraceKeyMode mode, const Catalog* catalog = nullptr);
[[nodiscard]] ScenarioOutput load_trace_file(const std::string& path);

}  // namespace nf::wl
