#include "workload/workload.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/hashing.h"

namespace nf::wl {

void WorkloadConfig::validate() const {
  require(num_peers >= 1, "need at least one peer");
  require(num_items >= 1, "need at least one item");
  require(instances_per_item > 0.0, "instances_per_item must be positive");
  require(alpha >= 0.0, "alpha must be non-negative");
}

ItemId item_id_for_rank(std::uint64_t rank, std::uint64_t seed) {
  return ItemId(hash64(rank, seed ^ 0x1D3A5B7C9E0F2468ull));
}

Workload Workload::generate(const WorkloadConfig& config) {
  config.validate();
  Rng rng(config.seed);
  const ZipfDistribution zipf(config.num_items, config.alpha);
  const auto total_instances = static_cast<std::uint64_t>(
      config.instances_per_item * static_cast<double>(config.num_items));

  // Draw each instance's (rank, peer) and bucket per peer. Ranks are stored
  // as 32-bit to keep the transient footprint at 4 bytes per instance
  // (10^7 instances at n = 10^6).
  require(config.num_items <= 0xFFFFFFFFull, "num_items exceeds u32 ranks");
  std::vector<std::vector<std::uint32_t>> raw(config.num_peers);
  const std::uint64_t expected_per_peer =
      total_instances / config.num_peers + 1;
  for (auto& bucket : raw) bucket.reserve(expected_per_peer);
  std::uint64_t sampled_instances = total_instances;
  if (config.min_one_instance && total_instances >= config.num_items) {
    // One guaranteed instance per item at a random peer, so the data set
    // really contains n distinct items; the rest follow the Zipf shape.
    for (std::uint64_t rank = 1; rank <= config.num_items; ++rank) {
      raw[rng.below(config.num_peers)].push_back(
          static_cast<std::uint32_t>(rank));
    }
    sampled_instances -= config.num_items;
  }
  for (std::uint64_t i = 0; i < sampled_instances; ++i) {
    const auto rank = static_cast<std::uint32_t>(zipf(rng));
    const auto peer = static_cast<std::uint32_t>(
        rng.below(config.num_peers));
    raw[peer].push_back(rank);
  }

  // Compact each bucket into a LocalItems map and accumulate ground truth
  // per rank (dense array — cheaper than merging sparse maps).
  Workload out;
  out.local_.resize(config.num_peers);
  std::vector<Value> global_by_rank(config.num_items + 1, 0);
  for (std::uint32_t p = 0; p < config.num_peers; ++p) {
    auto& bucket = raw[p];
    std::sort(bucket.begin(), bucket.end());
    std::vector<std::pair<ItemId, Value>> pairs;
    for (std::size_t i = 0; i < bucket.size();) {
      std::size_t j = i;
      while (j < bucket.size() && bucket[j] == bucket[i]) ++j;
      const Value count = j - i;
      global_by_rank[bucket[i]] += count;
      pairs.emplace_back(item_id_for_rank(bucket[i], config.seed), count);
      i = j;
    }
    bucket.clear();
    bucket.shrink_to_fit();
    out.local_[p] = LocalItems::from_unsorted(std::move(pairs));
    out.total_ += out.local_[p].total();
  }

  std::vector<std::pair<ItemId, Value>> global_pairs;
  for (std::uint64_t rank = 1; rank <= config.num_items; ++rank) {
    if (global_by_rank[rank] > 0) {
      global_pairs.emplace_back(item_id_for_rank(rank, config.seed),
                                global_by_rank[rank]);
    }
  }
  out.global_ = ValueMap<ItemId, Value>::from_unsorted(std::move(global_pairs));
  ensure(out.total_ == out.global_.total(), "ground truth total mismatch");
  return out;
}

Workload Workload::from_local_sets(std::vector<LocalItems> local_sets) {
  require(!local_sets.empty(), "need at least one peer");
  Workload out;
  out.local_ = std::move(local_sets);
  for (const auto& local : out.local_) {
    out.global_.merge_add(local);
  }
  out.total_ = out.global_.total();
  return out;
}

const LocalItems& Workload::local_items(PeerId p) const {
  require(p.value() < local_.size(), "peer out of range");
  return local_[p.value()];
}

Value Workload::threshold_for(double theta) const {
  require(theta > 0.0 && theta <= 1.0, "theta must be in (0,1]");
  return static_cast<Value>(
      std::ceil(theta * static_cast<double>(total_)));
}

ValueMap<ItemId, Value> Workload::frequent_items(Value threshold) const {
  ValueMap<ItemId, Value> out = global_;
  out.retain([&](ItemId, Value v) { return v >= threshold; });
  return out;
}

double Workload::avg_local_distinct() const {
  double sum = 0.0;
  for (const auto& local : local_) sum += static_cast<double>(local.size());
  return sum / static_cast<double>(local_.size());
}

double Workload::avg_global_value() const {
  if (global_.empty()) return 0.0;
  return static_cast<double>(total_) / static_cast<double>(global_.size());
}

double Workload::avg_light_value(Value threshold) const {
  double sum = 0.0;
  std::uint64_t count = 0;
  for (const auto& [id, v] : global_) {
    if (v < threshold) {
      sum += static_cast<double>(v);
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

}  // namespace nf::wl
