// A mutable item source for continuous monitoring.
//
// The paper's motivating applications are cumulative counters — downloads,
// query appearances, packets — that only grow. GrowingWorkload holds the
// current per-peer local sets and accepts per-peer deltas between epochs;
// core::ContinuousMonitor re-runs netFilter over it each epoch.
#pragma once

#include <cstdint>
#include <vector>

#include "common/item_source.h"

namespace nf::wl {

class GrowingWorkload final : public ItemSource {
 public:
  explicit GrowingWorkload(std::uint32_t num_peers) : local_(num_peers) {
    require(num_peers >= 1, "need at least one peer");
  }

  /// Starts from an existing source's current state.
  static GrowingWorkload from(const ItemSource& base) {
    GrowingWorkload out(base.num_peers());
    for (std::uint32_t p = 0; p < base.num_peers(); ++p) {
      out.local_[p] = base.local_items(PeerId(p));
    }
    return out;
  }

  /// Adds `delta` to peer `p`'s local value of `item`.
  void add(PeerId p, ItemId item, Value delta) {
    require(p.value() < local_.size(), "peer out of range");
    require(delta > 0, "deltas must be positive (counters only grow)");
    local_[p.value()].add(item, delta);
  }

  /// Merges a whole delta set into peer `p`.
  void add_all(PeerId p, const LocalItems& delta) {
    require(p.value() < local_.size(), "peer out of range");
    local_[p.value()].merge_add(delta);
  }

  // ItemSource
  [[nodiscard]] const LocalItems& local_items(PeerId p) const override {
    require(p.value() < local_.size(), "peer out of range");
    return local_[p.value()];
  }
  [[nodiscard]] std::uint32_t num_peers() const override {
    return static_cast<std::uint32_t>(local_.size());
  }

  /// Current grand total v (oracle-side convenience).
  [[nodiscard]] Value total_value() const {
    Value v = 0;
    for (const auto& l : local_) v += l.total();
    return v;
  }

 private:
  std::vector<LocalItems> local_;
};

}  // namespace nf::wl
