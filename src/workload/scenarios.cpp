#include "workload/scenarios.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/hashing.h"
#include "common/rng.h"
#include "common/zipf.h"

namespace nf::wl {

ItemId Catalog::intern(const std::string& key) {
  const ItemId id(hash_bytes(key));
  auto [it, inserted] = names_.emplace(id, key);
  if (!inserted) {
    ensure(it->second == key, "item id collision between distinct keys");
  }
  return id;
}

const std::string& Catalog::name_of(ItemId id) const {
  const auto it = names_.find(id);
  require(it != names_.end(), "unknown item id");
  return it->second;
}

namespace {

std::string keyword_name(std::uint64_t rank) {
  return "kw-" + std::to_string(rank);
}

}  // namespace

ScenarioOutput keyword_queries(std::uint32_t num_peers,
                               std::uint32_t vocabulary,
                               std::uint32_t queries_per_peer, double alpha,
                               std::uint64_t seed) {
  require(vocabulary >= 4, "vocabulary too small");
  Rng rng(seed);
  const ZipfDistribution zipf(vocabulary, alpha);
  ScenarioOutput out;
  std::vector<LocalItems> locals(num_peers);
  for (std::uint32_t p = 0; p < num_peers; ++p) {
    std::vector<std::pair<ItemId, Value>> pairs;
    for (std::uint32_t q = 0; q < queries_per_peer; ++q) {
      // A query mentions 1..4 distinct keywords; the local value of a
      // keyword counts the queries it appears in, so dedup within a query.
      const std::uint64_t len = rng.between(1, 4);
      std::vector<std::uint64_t> kws;
      while (kws.size() < len) {
        const std::uint64_t kw = zipf(rng);
        if (std::find(kws.begin(), kws.end(), kw) == kws.end()) {
          kws.push_back(kw);
        }
      }
      for (std::uint64_t kw : kws) {
        pairs.emplace_back(out.catalog.intern(keyword_name(kw)), 1);
      }
    }
    locals[p] = LocalItems::from_unsorted(std::move(pairs));
  }
  out.workload = Workload::from_local_sets(std::move(locals));
  return out;
}

ScenarioOutput document_replicas(std::uint32_t num_peers,
                                 std::uint32_t num_documents,
                                 std::uint32_t replicas_per_peer,
                                 double alpha, std::uint64_t seed) {
  require(num_documents >= 4, "too few documents");
  Rng rng(seed);
  const ZipfDistribution doc_dist(num_documents, alpha);
  ScenarioOutput out;
  std::vector<LocalItems> locals(num_peers);
  for (std::uint32_t p = 0; p < num_peers; ++p) {
    std::vector<std::pair<ItemId, Value>> pairs;
    for (std::uint32_t rep = 0; rep < replicas_per_peer; ++rep) {
      const std::uint64_t doc = doc_dist(rng);
      pairs.emplace_back(
          out.catalog.intern("doc-" + std::to_string(doc)), 1);
    }
    locals[p] = LocalItems::from_unsorted(std::move(pairs));
  }
  out.workload = Workload::from_local_sets(std::move(locals));
  return out;
}

ScenarioOutput popular_peers(std::uint32_t num_peers,
                             std::uint32_t queries_per_peer,
                             std::uint32_t num_super_peers,
                             std::uint64_t seed) {
  require(num_peers > num_super_peers + 1, "too few peers");
  Rng rng(seed);
  ScenarioOutput out;
  std::vector<std::string> super_names;
  for (std::uint32_t s = 0; s < num_super_peers; ++s) {
    super_names.push_back("peer-" + std::to_string(s));
  }
  std::vector<LocalItems> locals(num_peers);
  for (std::uint32_t p = 0; p < num_peers; ++p) {
    std::vector<std::pair<ItemId, Value>> pairs;
    for (std::uint32_t q = 0; q < queries_per_peer; ++q) {
      // 40% of queries are answered by one of the super-peers, the rest by
      // a uniformly random ordinary peer.
      std::uint64_t answerer;
      if (num_super_peers > 0 && rng.chance(0.4)) {
        answerer = rng.below(num_super_peers);
      } else {
        answerer = rng.between(num_super_peers, num_peers - 1);
      }
      if (answerer == p) continue;  // peers do not rate themselves
      pairs.emplace_back(
          out.catalog.intern("peer-" + std::to_string(answerer)), 1);
    }
    locals[p] = LocalItems::from_unsorted(std::move(pairs));
  }
  out.workload = Workload::from_local_sets(std::move(locals));
  for (const auto& name : super_names) {
    out.planted.push_back(ItemId(hash_bytes(name)));
  }
  return out;
}

ScenarioOutput contacted_peer_pairs(std::uint32_t num_peers,
                                    std::uint32_t packets_per_peer,
                                    std::uint32_t num_friend_pairs,
                                    std::uint64_t seed) {
  require(num_peers >= 4, "too few peers");
  Rng rng(seed);
  ScenarioOutput out;
  const auto pair_name = [](std::uint64_t a, std::uint64_t b) {
    if (a > b) std::swap(a, b);
    return "pair-" + std::to_string(a) + "<->" + std::to_string(b);
  };
  // Friend pairs exchange sustained traffic; their packets transit many
  // relays, so every relay sees a slice of the same conversation.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> friends;
  while (friends.size() < num_friend_pairs) {
    const std::uint64_t a = rng.below(num_peers);
    const std::uint64_t b = rng.below(num_peers);
    if (a != b) friends.emplace_back(a, b);
  }
  std::vector<LocalItems> locals(num_peers);
  for (std::uint32_t p = 0; p < num_peers; ++p) {
    std::vector<std::pair<ItemId, Value>> pairs;
    for (std::uint32_t k = 0; k < packets_per_peer; ++k) {
      const std::uint64_t a = rng.below(num_peers);
      const std::uint64_t b = rng.below(num_peers);
      if (a == b) continue;
      pairs.emplace_back(out.catalog.intern(pair_name(a, b)), 1);
    }
    for (const auto& [a, b] : friends) {
      // Each relay forwards a burst of this conversation's packets.
      if (!rng.chance(0.7)) continue;
      pairs.emplace_back(out.catalog.intern(pair_name(a, b)),
                         rng.between(packets_per_peer / 20 + 1,
                                     packets_per_peer / 5 + 2));
    }
    locals[p] = LocalItems::from_unsorted(std::move(pairs));
  }
  out.workload = Workload::from_local_sets(std::move(locals));
  for (const auto& [a, b] : friends) {
    out.planted.push_back(ItemId(hash_bytes(pair_name(a, b))));
  }
  return out;
}

ScenarioOutput co_occurring_pairs(std::uint32_t num_peers,
                                  std::uint32_t vocabulary,
                                  std::uint32_t queries_per_peer, double alpha,
                                  std::uint64_t seed) {
  require(vocabulary >= 4, "vocabulary too small");
  Rng rng(seed);
  const ZipfDistribution zipf(vocabulary, alpha);
  ScenarioOutput out;
  std::vector<LocalItems> locals(num_peers);
  for (std::uint32_t p = 0; p < num_peers; ++p) {
    std::vector<std::pair<ItemId, Value>> pairs;
    for (std::uint32_t q = 0; q < queries_per_peer; ++q) {
      const std::uint64_t len = rng.between(2, 4);
      std::vector<std::uint64_t> kws;
      while (kws.size() < len) {
        const std::uint64_t kw = zipf(rng);
        if (std::find(kws.begin(), kws.end(), kw) == kws.end()) {
          kws.push_back(kw);
        }
      }
      std::sort(kws.begin(), kws.end());
      for (std::size_t i = 0; i < kws.size(); ++i) {
        for (std::size_t j = i + 1; j < kws.size(); ++j) {
          const std::string name =
              keyword_name(kws[i]) + "+" + keyword_name(kws[j]);
          pairs.emplace_back(out.catalog.intern(name), 1);
        }
      }
    }
    locals[p] = LocalItems::from_unsorted(std::move(pairs));
  }
  out.workload = Workload::from_local_sets(std::move(locals));
  return out;
}

ScenarioOutput ddos_flows(std::uint32_t num_peers,
                          std::uint32_t address_space,
                          std::uint32_t flows_per_peer,
                          std::uint32_t num_victims, std::uint64_t seed) {
  require(address_space > num_victims, "address space too small");
  Rng rng(seed);
  // Background destinations are mildly skewed (a CDN effect), flow sizes
  // Pareto-ish in [1 KB, ~1 MB].
  const ZipfDistribution dest_dist(address_space, 0.8);
  ScenarioOutput out;

  std::vector<std::string> victim_names;
  for (std::uint32_t i = 0; i < num_victims; ++i) {
    victim_names.push_back("10.66.0." + std::to_string(i + 1));
  }

  std::vector<LocalItems> locals(num_peers);
  for (std::uint32_t p = 0; p < num_peers; ++p) {
    std::vector<std::pair<ItemId, Value>> pairs;
    for (std::uint32_t fl = 0; fl < flows_per_peer; ++fl) {
      const std::uint64_t dest = dest_dist(rng);
      const std::string name = "198.51." + std::to_string(dest / 256 % 256) +
                               "." + std::to_string(dest % 256) + "#" +
                               std::to_string(dest);
      // Pareto(1.2)-ish size in kilobytes: heavy-tailed background flows so
      // each router routinely sees individual flows far larger than any
      // single attack flow.
      const double u = std::max(rng.uniform(), 1e-9);
      const auto kb = static_cast<Value>(1.0 / std::pow(u, 1.0 / 1.2));
      pairs.emplace_back(out.catalog.intern(name), std::max<Value>(kb, 1));
    }
    // Attack traffic: every victim receives a stream of small flows through
    // ~80% of routers. Individually unremarkable, globally dominant.
    for (std::uint32_t v = 0; v < num_victims; ++v) {
      if (!rng.chance(0.8)) continue;
      const std::uint64_t attack_kb = rng.between(8, 30);
      pairs.emplace_back(out.catalog.intern(victim_names[v]), attack_kb);
    }
    locals[p] = LocalItems::from_unsorted(std::move(pairs));
  }
  out.workload = Workload::from_local_sets(std::move(locals));
  for (const auto& name : victim_names) {
    out.planted.push_back(ItemId(hash_bytes(name)));
  }
  return out;
}

ScenarioOutput worm_signatures(std::uint32_t num_peers,
                               std::uint32_t benign_signatures,
                               std::uint32_t flows_per_peer,
                               std::uint32_t num_worms, std::uint64_t seed) {
  require(benign_signatures >= 4, "too few benign signatures");
  Rng rng(seed);
  const ZipfDistribution benign_dist(benign_signatures, 1.2);
  ScenarioOutput out;

  std::vector<std::string> worm_names;
  for (std::uint32_t w = 0; w < num_worms; ++w) {
    worm_names.push_back("worm-sig-" +
                         std::to_string(hash64(w, seed) % 0xFFFFFF));
  }

  std::vector<LocalItems> locals(num_peers);
  for (std::uint32_t p = 0; p < num_peers; ++p) {
    std::vector<std::pair<ItemId, Value>> pairs;
    for (std::uint32_t fl = 0; fl < flows_per_peer; ++fl) {
      const std::uint64_t sig = benign_dist(rng);
      pairs.emplace_back(out.catalog.intern("sig-" + std::to_string(sig)), 1);
    }
    // A worm propagates scanning flows through nearly every vantage point.
    for (std::uint32_t w = 0; w < num_worms; ++w) {
      if (!rng.chance(0.9)) continue;
      const Value infected_flows = rng.between(
          flows_per_peer / 10 + 1, flows_per_peer / 3 + 2);
      pairs.emplace_back(out.catalog.intern(worm_names[w]), infected_flows);
    }
    locals[p] = LocalItems::from_unsorted(std::move(pairs));
  }
  out.workload = Workload::from_local_sets(std::move(locals));
  for (const auto& name : worm_names) {
    out.planted.push_back(ItemId(hash_bytes(name)));
  }
  return out;
}

}  // namespace nf::wl
