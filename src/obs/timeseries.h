// Round-sampled time series for the observability layer
// (docs/OBSERVABILITY.md "Time series").
//
// The engine drives one sample per simulated round: registered counters are
// recorded as per-round deltas (so a column is "how much happened this
// round"), registered gauges as their current value. Storage is columnar —
// one fixed-capacity ring per column plus a shared stamp column — so the
// sample path writes one slot per column and never allocates. When more
// rounds are sampled than the ring holds, the oldest rows are overwritten;
// `total_samples()` stays monotonic across the wrap so consumers can detect
// the gap, exactly like ProtocolTracer::seq.
//
// Stamps are the tracer's logical clock (engine rounds so far across every
// engine sharing the obs::Context), so a multi-phase run — netFilter spins
// up one engine per phase — produces one strictly increasing series per
// metric spanning all phases.
//
// Sources are raw Counter*/Gauge* handles into the owning context's
// MetricsRegistry; registry.reset() invalidates them, so clear() the series
// (or drop the context) before resetting the registry.
//
// Header-only, like obs/metrics.h and obs/trace.h: the engine (nf_net)
// samples the series but nf_obs links against nf_net, so the engine-facing
// obs types must not need the nf_obs archive.
//
// Thread safety: track_*() and sample() take a mutex but are intended for
// the engine thread (once per round — not a hot path); snapshot accessors
// are for quiescent reads between runs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/capability.h"
#include "obs/metrics.h"

namespace nf::obs {

class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Registers `src` under `name`, sampled as a per-round delta. The delta
  /// baseline is the counter's value at registration. Re-registering an
  /// existing name rebinds its source (and re-baselines); rows sampled
  /// before registration read as 0.
  NF_ENGINE_THREAD void track_counter(std::string_view name,
                                      const Counter* src) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (CounterColumn& col : counters_) {
      if (col.name == name) {
        col.src = src;
        col.last = src->value();
        return;
      }
    }
    counters_.push_back(CounterColumn{
        std::string(name), src, src->value(),
        std::vector<std::uint64_t>(capacity_, 0)});
  }

  /// Registers `src` under `name`, sampled as its current value.
  NF_ENGINE_THREAD void track_gauge(std::string_view name, const Gauge* src) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (GaugeColumn& col : gauges_) {
      if (col.name == name) {
        col.src = src;
        return;
      }
    }
    gauges_.push_back(GaugeColumn{std::string(name), src,
                                  std::vector<double>(capacity_, 0.0)});
  }

  /// Records one row stamped `stamp` (the engine passes the tracer clock).
  /// Zero allocation: writes one ring slot per registered column.
  NF_ENGINE_THREAD void sample(std::uint64_t stamp) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stamp_ring_.empty()) stamp_ring_.assign(capacity_, 0);
    const auto slot = static_cast<std::size_t>(total_ % capacity_);
    stamp_ring_[slot] = stamp;
    for (CounterColumn& col : counters_) {
      const std::uint64_t now = col.src->value();
      col.ring[slot] = now - col.last;
      col.last = now;
    }
    for (GaugeColumn& col : gauges_) {
      col.ring[slot] = col.src->value();
    }
    ++total_;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Rows currently held (<= capacity).
  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(total_, capacity_));
  }

  /// Rows ever sampled, including those the ring has since overwritten.
  [[nodiscard]] std::uint64_t total_samples() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return total_;
  }

  /// Rows lost to wraparound.
  [[nodiscard]] std::uint64_t dropped() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return total_ < capacity_ ? 0 : total_ - capacity_;
  }

  [[nodiscard]] std::vector<std::string> counter_names() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const CounterColumn& col : counters_) names.push_back(col.name);
    return names;
  }

  [[nodiscard]] std::vector<std::string> gauge_names() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(gauges_.size());
    for (const GaugeColumn& col : gauges_) names.push_back(col.name);
    return names;
  }

  /// Retained rows oldest first; empty vector for an unknown name.
  [[nodiscard]] std::vector<std::uint64_t> stamps() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stamp_ring_.empty()) return {};
    return unwrap(stamp_ring_);
  }

  [[nodiscard]] std::vector<std::uint64_t> counter_series(
      std::string_view name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const CounterColumn& col : counters_) {
      if (col.name == name) return unwrap(col.ring);
    }
    return {};
  }

  [[nodiscard]] std::vector<double> gauge_series(std::string_view name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const GaugeColumn& col : gauges_) {
      if (col.name == name) return unwrap(col.ring);
    }
    return {};
  }

  /// Drops every row and every registered column.
  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    stamp_ring_.clear();
    counters_.clear();
    gauges_.clear();
    total_ = 0;
  }

 private:
  struct CounterColumn {
    std::string name;
    const Counter* src;
    std::uint64_t last;  ///< value at the previous sample (delta baseline)
    std::vector<std::uint64_t> ring;
  };
  struct GaugeColumn {
    std::string name;
    const Gauge* src;
    std::vector<double> ring;
  };

  /// Copies the retained slots of `ring` into a fresh vector, oldest first.
  template <typename T>
  [[nodiscard]] std::vector<T> unwrap(const std::vector<T>& ring) const {
    std::vector<T> out;
    const std::size_t rows =
        static_cast<std::size_t>(total_ < capacity_ ? total_ : capacity_);
    out.reserve(rows);
    for (std::uint64_t s = total_ - rows; s < total_; ++s) {
      out.push_back(ring[static_cast<std::size_t>(s % capacity_)]);
    }
    return out;
  }

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<std::uint64_t> stamp_ring_;
  std::vector<CounterColumn> counters_;
  std::vector<GaugeColumn> gauges_;
  std::uint64_t total_{0};
};

}  // namespace nf::obs
