#include "obs/trace_event.h"

#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <string_view>
#include <utility>
#include <vector>

namespace nf::obs {

namespace {

// One synthetic process; phase tracks take tids 1.., instant-event tracks
// sit above them so they group below the phases in the viewer.
constexpr std::uint64_t kPid = 0;
constexpr std::uint64_t kMergeTid = 100;
constexpr std::uint64_t kFanoutTid = 101;
constexpr std::uint64_t kGossipTid = 102;
constexpr std::uint64_t kMarkTid = 103;

Json metadata(const char* what, std::uint64_t tid, std::string_view name) {
  auto e = Json::object();
  e["name"] = what;
  e["ph"] = "M";
  e["pid"] = kPid;
  e["tid"] = tid;
  auto args = Json::object();
  args["name"] = name;
  e["args"] = std::move(args);
  return e;
}

Json event(const char* ph, std::string_view name, std::uint64_t ts,
           std::uint64_t tid) {
  auto e = Json::object();
  e["ph"] = ph;
  e["name"] = name;
  e["ts"] = ts;
  e["pid"] = kPid;
  e["tid"] = tid;
  return e;
}

std::uint64_t instant_tid(EventKind kind) {
  switch (kind) {
    case EventKind::kMerge: return kMergeTid;
    case EventKind::kFanout: return kFanoutTid;
    case EventKind::kGossipRound: return kGossipTid;
    default: return kMarkTid;
  }
}

const char* instant_value_key(EventKind kind) {
  switch (kind) {
    case EventKind::kMerge: return "bytes";
    case EventKind::kFanout: return "copies";
    case EventKind::kGossipRound: return "round";
    default: return "value";
  }
}

}  // namespace

Json trace_event_json(const Context& ctx) {
  const std::vector<TraceEvent> trace = ctx.tracer.snapshot();

  // Pass 1: a track per distinct phase name (first-appearance order) and
  // the set of instant tracks actually used, so the metadata is minimal
  // and deterministic.
  std::vector<std::pair<std::string, std::uint64_t>> phase_tids;
  std::map<std::uint64_t, const char*> instant_tracks;
  const auto phase_tid = [&](std::string_view name) -> std::uint64_t {
    for (const auto& [n, tid] : phase_tids) {
      if (n == name) return tid;
    }
    const std::uint64_t tid = phase_tids.size() + 1;
    phase_tids.emplace_back(std::string(name), tid);
    return tid;
  };
  for (const TraceEvent& e : trace) {
    switch (e.kind) {
      case EventKind::kPhaseBegin:
      case EventKind::kPhaseEnd: phase_tid(e.name); break;
      case EventKind::kMerge: instant_tracks[kMergeTid] = "merges"; break;
      case EventKind::kFanout: instant_tracks[kFanoutTid] = "fanouts"; break;
      case EventKind::kGossipRound:
        instant_tracks[kGossipTid] = "gossip";
        break;
      case EventKind::kMark: instant_tracks[kMarkTid] = "marks"; break;
      case EventKind::kRound: break;
    }
  }

  auto events = Json::array();
  events.push_back(metadata("process_name", 0, "netfilter"));
  for (const auto& [name, tid] : phase_tids) {
    events.push_back(metadata("thread_name", tid, name));
  }
  for (const auto& [tid, name] : instant_tracks) {
    events.push_back(metadata("thread_name", tid, name));
  }

  // Pass 2: the events. Ends whose begin fell off the ring are dropped —
  // Perfetto rejects a track whose "E" stack underflows.
  std::map<std::string, std::uint64_t, std::less<>> open_depth;
  for (const TraceEvent& e : trace) {
    switch (e.kind) {
      case EventKind::kPhaseBegin: {
        ++open_depth[e.name];
        events.push_back(event("B", e.name, e.clock, phase_tid(e.name)));
        break;
      }
      case EventKind::kPhaseEnd: {
        const auto it = open_depth.find(std::string_view(e.name));
        if (it == open_depth.end() || it->second == 0) break;
        --it->second;
        Json end = event("E", e.name, e.clock, phase_tid(e.name));
        auto args = Json::object();
        args["wall_us"] = e.value;
        end["args"] = std::move(args);
        events.push_back(std::move(end));
        break;
      }
      case EventKind::kRound: {
        Json c = event("C", "engine.arrivals", e.clock, 0);
        auto args = Json::object();
        args["arrivals"] = e.value;
        c["args"] = std::move(args);
        events.push_back(std::move(c));
        break;
      }
      case EventKind::kMerge:
      case EventKind::kFanout:
      case EventKind::kGossipRound:
      case EventKind::kMark: {
        Json i = event("i", e.name, e.clock, instant_tid(e.kind));
        i["s"] = "t";
        auto args = Json::object();
        args[instant_value_key(e.kind)] = e.value;
        if (e.peer != kNoPeer) args["peer"] = e.peer;
        i["args"] = std::move(args);
        events.push_back(std::move(i));
        break;
      }
    }
  }

  // Flow arrows along each session's critical path: one flow per session,
  // stepping from the gating chain's first send to the delivery that gates
  // done(). Emitted only when lineage analysis yields paths, so traces
  // from runs without lineage tagging are unchanged.
  const std::vector<CriticalPath> paths = critical_paths(ctx.lineage);
  if (!paths.empty() && !ctx.lineage.runs().empty()) {
    const std::uint64_t base = ctx.lineage.runs().back().clock;
    const auto known_tid = [&](std::string_view name) -> std::uint64_t {
      for (const auto& [n, tid] : phase_tids) {
        if (n == name) return tid;
      }
      return 0;  // phase never produced a span; no track to bind to
    };
    const auto flow = [&](const char* ph, std::uint64_t id, std::uint64_t ts,
                          std::uint64_t tid) {
      Json f = event(ph, "critical-path", ts, tid);
      f["cat"] = "lineage";
      f["id"] = id;
      f["bp"] = "e";
      events.push_back(std::move(f));
    };
    std::uint64_t flow_id = 0;
    for (const CriticalPath& cp : paths) {
      ++flow_id;
      std::vector<std::pair<const CriticalHop*, std::uint64_t>> bound;
      for (const CriticalHop& h : cp.hops) {
        const std::uint64_t tid = known_tid(h.phase_name);
        if (tid != 0) bound.emplace_back(&h, tid);
      }
      if (bound.empty()) continue;
      flow("s", flow_id, bound.front().first->send_round + base,
           bound.front().second);
      for (std::size_t k = 0; k < bound.size(); ++k) {
        flow(k + 1 == bound.size() ? "f" : "t", flow_id,
             bound[k].first->deliver_round + base, bound[k].second);
      }
    }
  }

  // Counter tracks: one per TimeSeries column, sampled once per round.
  const std::vector<std::uint64_t> stamps = ctx.series.stamps();
  const auto counter_events = [&](std::string_view name, const auto& values) {
    for (std::size_t i = 0; i < values.size() && i < stamps.size(); ++i) {
      Json c = event("C", name, stamps[i], 0);
      auto args = Json::object();
      args["value"] = values[i];
      c["args"] = std::move(args);
      events.push_back(std::move(c));
    }
  };
  for (const std::string& name : ctx.series.counter_names()) {
    counter_events(name, ctx.series.counter_series(name));
  }
  for (const std::string& name : ctx.series.gauge_names()) {
    counter_events(name, ctx.series.gauge_series(name));
  }

  auto out = Json::object();
  out["displayTimeUnit"] = "ms";
  out["traceEvents"] = std::move(events);
  return out;
}

bool write_trace_event_file(const std::string& path, const Context& ctx) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write trace-event file to " << path << "\n";
    return false;
  }
  trace_event_json(ctx).dump(out);
  out << '\n';
  return out.good();
}

}  // namespace nf::obs
