#include "obs/export.h"

#include <iterator>
#include <ostream>
#include <string_view>
#include <vector>

namespace nf::obs {

Json to_json(const MetricsRegistry& registry) {
  auto counters = Json::object();
  for (const auto& [name, c] : registry.counters()) {
    counters[name] = c.value();
  }
  auto gauges = Json::object();
  for (const auto& [name, g] : registry.gauges()) {
    gauges[name] = g.value();
  }
  auto histograms = Json::object();
  for (const auto& [name, h] : registry.histograms()) {
    auto hist = Json::object();
    hist["count"] = h.count();
    hist["sum"] = h.sum();
    hist["min"] = h.min();
    hist["max"] = h.max();
    auto buckets = Json::array();
    for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (h.bucket(i) == 0) continue;
      auto bucket = Json::object();
      bucket["lo"] = Histogram::bucket_lo(i);
      bucket["hi"] = Histogram::bucket_hi(i);
      bucket["count"] = h.bucket(i);
      buckets.push_back(std::move(bucket));
    }
    hist["buckets"] = std::move(buckets);
    histograms[name] = std::move(hist);
  }
  auto out = Json::object();
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  return out;
}

Json to_json(const ProtocolTracer& tracer) {
  auto out = Json::object();
  out["capacity"] = static_cast<std::uint64_t>(tracer.capacity());
  out["total_recorded"] = tracer.total_recorded();
  out["dropped"] = tracer.dropped();
  out["clock"] = tracer.clock();
  auto events = Json::array();
  for (const TraceEvent& e : tracer.snapshot()) {
    auto event = Json::object();
    event["seq"] = e.seq;
    event["clock"] = e.clock;
    event["kind"] = to_string(e.kind);
    event["name"] = e.name;
    event["value"] = e.value;
    if (e.peer != kNoPeer) event["peer"] = e.peer;
    events.push_back(std::move(event));
  }
  out["events"] = std::move(events);
  return out;
}

Json to_json(const TimeSeries& series) {
  auto out = Json::object();
  out["capacity"] = static_cast<std::uint64_t>(series.capacity());
  out["total_samples"] = series.total_samples();
  out["dropped"] = series.dropped();
  auto stamps = Json::array();
  for (const std::uint64_t s : series.stamps()) stamps.push_back(s);
  out["stamps"] = std::move(stamps);
  auto counters = Json::object();
  for (const std::string& name : series.counter_names()) {
    auto column = Json::array();
    for (const std::uint64_t v : series.counter_series(name)) {
      column.push_back(v);
    }
    counters[name] = std::move(column);
  }
  out["counters"] = std::move(counters);
  auto gauges = Json::object();
  for (const std::string& name : series.gauge_names()) {
    auto column = Json::array();
    for (const double v : series.gauge_series(name)) column.push_back(v);
    gauges[name] = std::move(column);
  }
  out["gauges"] = std::move(gauges);
  return out;
}

Json to_json(const net::TrafficMeter& meter, bool include_peer_matrix) {
  auto out = Json::object();
  out["num_peers"] = meter.num_peers();
  out["num_messages"] = meter.num_messages();
  out["total_bytes"] = meter.total();
  out["max_peer_total"] = meter.max_peer_total();

  auto categories = Json::array();
  auto totals = Json::object();
  auto per_peer = Json::object();
  for (std::size_t c = 0; c < net::kNumTrafficCategories; ++c) {
    const auto category = static_cast<net::TrafficCategory>(c);
    const std::string name{net::to_string(category)};
    categories.push_back(name);
    totals[name] = meter.total(category);
    per_peer[name] = meter.per_peer(category);
  }
  out["categories"] = std::move(categories);
  out["totals"] = std::move(totals);
  out["per_peer"] = std::move(per_peer);

  if (!include_peer_matrix) return out;
  auto matrix = Json::array();
  for (std::uint32_t p = 0; p < meter.num_peers(); ++p) {
    const auto& row = meter.per_peer_breakdown(PeerId(p));
    auto cells = Json::array();
    for (const std::uint64_t bytes : row) cells.push_back(bytes);
    matrix.push_back(std::move(cells));
  }
  out["peer_category_bytes"] = std::move(matrix);
  return out;
}

namespace {

/// One link_stats matrix row. Categories follow net::TrafficCategory;
/// zero cells are omitted (most levels see 3-4 of the 9 categories).
Json link_level_row(const LinkStats& ls, std::size_t row) {
  auto out = Json::object();
  auto bytes = Json::object();
  auto msgs = Json::object();
  auto predicted = Json::object();
  for (std::size_t c = 0; c < net::kNumTrafficCategories; ++c) {
    const std::string name{
        net::to_string(static_cast<net::TrafficCategory>(c))};
    if (ls.level_msgs(row, c) != 0) {
      bytes[name] = ls.level_bytes(row, c);
      msgs[name] = ls.level_msgs(row, c);
    }
    if (ls.level_predicted(row, c) > 0.0) {
      predicted[name] = ls.level_predicted(row, c);
    }
  }
  out["bytes"] = std::move(bytes);
  out["msgs"] = std::move(msgs);
  out["predicted"] = std::move(predicted);
  out["total_bytes"] = ls.level_total_bytes(row);
  out["total_msgs"] = ls.level_total_msgs(row);
  return out;
}

}  // namespace

Json to_json(const LinkStats& stats) {
  auto out = Json::object();
  out["num_levels"] = static_cast<std::uint64_t>(stats.num_levels());
  auto levels = Json::array();
  for (std::uint32_t d = 0; d < stats.num_levels(); ++d) {
    Json row = link_level_row(stats, d);
    row["level"] = static_cast<std::uint64_t>(d);
    row["peers"] = stats.level_peers(d);
    // Static directed link capacity of the level (bytes/round) — the
    // utilization denominator for nf-inspect congestion. Only present when
    // the run installed a capacity-limited link model.
    if (stats.level_capacity(d) != 0) {
      row["capacity"] = stats.level_capacity(d);
    }
    levels.push_back(std::move(row));
  }
  out["levels"] = std::move(levels);
  const std::size_t bucket = stats.num_levels();
  if (stats.level_total_msgs(bucket) != 0) {
    out["off_hierarchy"] = link_level_row(stats, bucket);
  }

  const LinkSummary& links = stats.links();
  out["link_capacity"] = static_cast<std::uint64_t>(links.capacity());
  out["links_tracked"] = static_cast<std::uint64_t>(links.size());
  out["links_error_bound"] = links.error_bound();
  out["links_total_bytes"] = links.total_weight();
  auto hot = Json::array();
  constexpr std::size_t kMaxHot = 64;
  for (const LinkSummary::Entry& e : links.ranked()) {
    if (hot.size() >= kMaxHot) break;
    auto link = Json::object();
    const std::uint32_t from = link_src(e.key);
    const std::uint32_t to = link_dst(e.key);
    link["from"] = static_cast<std::uint64_t>(from);
    link["to"] = static_cast<std::uint64_t>(to);
    link["level"] = static_cast<std::uint64_t>(stats.level_of_link(from, to));
    link["bytes"] = e.weight;
    hot.push_back(std::move(link));
  }
  out["hot"] = std::move(hot);

  // Congestion spill: which links the queueing gated on, by queued bytes.
  // Present only when the run actually queued, so infinite-capacity
  // reports keep their previous shape.
  const LinkSummary& spill = stats.spill();
  if (spill.total_weight() != 0) {
    auto congestion = Json::object();
    congestion["spilled_bytes"] = spill.total_weight();
    congestion["spill_error_bound"] = spill.error_bound();
    auto spill_hot = Json::array();
    for (const LinkSummary::Entry& e : spill.ranked()) {
      if (spill_hot.size() >= kMaxHot) break;
      auto link = Json::object();
      const std::uint32_t from = link_src(e.key);
      const std::uint32_t to = link_dst(e.key);
      link["from"] = static_cast<std::uint64_t>(from);
      link["to"] = static_cast<std::uint64_t>(to);
      link["level"] =
          static_cast<std::uint64_t>(stats.level_of_link(from, to));
      link["bytes"] = e.weight;
      spill_hot.push_back(std::move(link));
    }
    congestion["hot"] = std::move(spill_hot);
    out["congestion"] = std::move(congestion);
  }
  return out;
}

Json spans_json(const ProtocolTracer& tracer) {
  auto spans = Json::array();
  std::vector<TraceEvent> open;
  for (const TraceEvent& e : tracer.snapshot()) {
    if (e.kind == EventKind::kPhaseBegin) {
      open.push_back(e);
      continue;
    }
    if (e.kind != EventKind::kPhaseEnd) continue;
    // Match the innermost open span with the same name; a begin lost to
    // ring wraparound leaves this end unpaired.
    for (auto it = open.rbegin(); it != open.rend(); ++it) {
      if (std::string_view(it->name) != std::string_view(e.name)) continue;
      auto span = Json::object();
      span["name"] = e.name;
      span["begin_seq"] = it->seq;
      span["end_seq"] = e.seq;
      span["begin_clock"] = it->clock;
      span["end_clock"] = e.clock;
      span["rounds"] = e.clock - it->clock;
      span["wall_us"] = e.value;
      spans.push_back(std::move(span));
      open.erase(std::next(it).base());
      break;
    }
  }
  return spans;
}

Json timings_json(const MetricsRegistry& registry) {
  constexpr std::string_view kPrefix = "time_us/";
  auto out = Json::object();
  for (const auto& [name, c] : registry.counters()) {
    if (name.size() <= kPrefix.size() ||
        std::string_view(name).substr(0, kPrefix.size()) != kPrefix) {
      continue;
    }
    out[name.substr(kPrefix.size())] = c.value();
  }
  return out;
}

Json to_json(const ExportBundle& bundle) {
  auto out = Json::object();
  out["schema_version"] = kSchemaVersion;
  out["bench"] = bundle.bench;
  out["params"] = bundle.params;
  out["results"] = bundle.results;
  if (!bundle.traffic.is_null()) out["traffic"] = bundle.traffic;
  if (!bundle.sessions.is_null()) out["sessions"] = bundle.sessions;
  if (bundle.obs != nullptr) {
    out["metrics"] = to_json(bundle.obs->registry);
    out["timings"] = timings_json(bundle.obs->registry);
    out["spans"] = spans_json(bundle.obs->tracer);
    out["trace"] = to_json(bundle.obs->tracer);
    out["series"] = to_json(bundle.obs->series);
    out["conformance"] = to_json(bundle.obs->conformance);
    out["lineage"] = to_json(bundle.obs->lineage);
    out["link_stats"] = to_json(bundle.obs->link_stats);  // schema v6+v7
  }
  return out;
}

void write_csv(std::ostream& os, const MetricsRegistry& registry) {
  os << "type,name,value,count,min,max\n";
  for (const auto& [name, c] : registry.counters()) {
    os << "counter," << name << ',' << c.value() << ",,,\n";
  }
  for (const auto& [name, g] : registry.gauges()) {
    os << "gauge," << name << ',' << g.value() << ",,,\n";
  }
  for (const auto& [name, h] : registry.histograms()) {
    os << "histogram," << name << ',' << h.sum() << ',' << h.count() << ','
       << h.min() << ',' << h.max() << '\n';
  }
}

void write_csv(std::ostream& os, const ProtocolTracer& tracer) {
  os << "seq,clock,kind,name,peer,value\n";
  for (const TraceEvent& e : tracer.snapshot()) {
    os << e.seq << ',' << e.clock << ',' << to_string(e.kind) << ','
       << e.name << ',';
    if (e.peer != kNoPeer) os << e.peer;
    os << ',' << e.value << '\n';
  }
}

}  // namespace nf::obs
