// Topology-resolved telemetry: per-hierarchy-level traffic accounting,
// bounded heavy-hitter link tracking, and congestion telemetry — level
// capacities, per-level backlog gauges, and a spill summary over queued
// bytes (docs/OBSERVABILITY.md "Link stats", schema v7 `link_stats`
// section).
//
// The TrafficMeter answers "how many bytes, per category"; nothing below it
// answers *where* those bytes flow. LinkStats adds the spatial axis: every
// envelope the engine admits is charged to (a) its hierarchy level — the
// deeper endpoint's BFS depth, so a child→parent push and the parent's
// reply land on the same level — and (b) a bounded Misra-Gries summary over
// directed (src, dst) pairs that surfaces the hottest links without exact
// per-link counters, which would be O(E) at N = 10^6 peers. This dogfoods
// the paper's own idea: heavy-hitter identification applied to the
// simulator's own traffic stream (P2PTFHH applies the same mergeable-sketch
// construction to distributed monitoring).
//
// Charging happens exclusively on the engine thread, inside the canonical
// (major, minor)-ordered merge at the round barrier (Engine::
// merge_and_finalize) — never from shard callbacks. A Misra-Gries summary
// is merge-order sensitive, so per-shard summaries folded in shard order
// would break the bit-identical-across---threads contract; the barrier
// already sees every send in the serial order, so one summary fed there is
// deterministic for any shard count. nf-lint's nf-obs-context check flags
// LinkStats::charge calls outside net/engine.cpp.
//
// Header-only, like obs/metrics.h: the engine (nf_net) charges link stats
// but nf_obs links against nf_net, so engine-facing obs types must not need
// the nf_obs archive.
//
// Zero-allocation contract: after configure_levels()/bind_series()/
// set_link_capacity() (all warm-up calls), charge() touches only
// preallocated storage — tests/steady_alloc_test.cpp gates this with the
// alloc hook, and `engine/steady_allocs` stays 0 with telemetry attached.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/capability.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace nf::obs {

/// Canonical directed-link key: (from << 32) | to. Dense peer ids are
/// 32-bit by construction (num_peers is a u32), so the packing is lossless.
[[nodiscard]] constexpr std::uint64_t link_key(std::uint32_t from,
                                               std::uint32_t to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}
[[nodiscard]] constexpr std::uint32_t link_src(std::uint64_t key) {
  return static_cast<std::uint32_t>(key >> 32);
}
[[nodiscard]] constexpr std::uint32_t link_dst(std::uint64_t key) {
  return static_cast<std::uint32_t>(key & 0xFFFFFFFFull);
}

/// Bounded weighted heavy-hitter summary over u64 link keys — the
/// Misra-Gries construction of src/core/misra_gries.h re-instantiated for
/// the telemetry hot path: open-addressed preallocated storage (no
/// allocation per add), a global offset in place of decrement-all (one
/// subtraction instead of an O(k) sweep), and lazy reclamation of entries
/// whose estimate has decayed to zero.
///
/// Guarantees (for total added weight V, capacity k):
///   estimate(x) <= true_weight(x) <= estimate(x) + error_bound()
/// with error_bound() == 0 while the number of distinct keys stays within
/// capacity — the fig7 N=1000 runs (≈2·(N-1) directed tree links) are
/// exact under the default capacity; the 10^5/10^6-peer runs degrade to a
/// genuine sketch. Estimates only ever under-count, so the top of ranked()
/// is trustworthy: a link reported hot really carried at least that much.
///
/// Determinism: state depends only on the sequence of add() calls, and the
/// engine feeds it in canonical merge order; ranked() orders by (estimate
/// desc, key asc), so exports are bit-identical across shard counts.
class LinkSummary {
 public:
  /// Reserved empty-slot marker; key_of(from, to) never produces it for
  /// dense peer ids (both endpoints would need to be 2^32-1).
  static constexpr std::uint64_t kEmptyKey = ~0ull;

  explicit LinkSummary(std::size_t capacity = 4096) {
    set_capacity(capacity);
  }

  /// Re-sizes the summary, dropping all contents. Allocation happens here
  /// (warm-up), never in add().
  void set_capacity(std::size_t capacity) {
    capacity_ = std::max<std::size_t>(1, capacity);
    std::size_t slots = 4;
    while (slots < capacity_ * 4) slots <<= 1;
    slots_.assign(slots, Slot{kEmptyKey, 0});
    scratch_.assign(slots, Slot{kEmptyKey, 0});
    mask_ = slots - 1;
    occupied_ = 0;
    base_ = 0;
    carried_error_ = 0;
    total_weight_ = 0;
    overflow_since_compact_ = 0;
  }

  /// Zeroes the summary, keeping its storage.
  void clear() {
    std::fill(slots_.begin(), slots_.end(), Slot{kEmptyKey, 0});
    occupied_ = 0;
    base_ = 0;
    carried_error_ = 0;
    total_weight_ = 0;
    overflow_since_compact_ = 0;
  }

  void add(std::uint64_t key, std::uint64_t weight) {
    total_weight_ += weight;
    std::size_t i = hash(key) & mask_;
    std::size_t dead = slots_.size();  // first decayed slot on the probe path
    while (slots_[i].key != kEmptyKey) {
      if (slots_[i].key == key) {
        // Revive-if-decayed: a dead entry's estimate is 0, so the refreshed
        // weight restarts from the offset (its pre-decay remainder was
        // already paid for by base_).
        slots_[i].weight = std::max(slots_[i].weight, base_) + weight;
        return;
      }
      if (dead == slots_.size() && slots_[i].weight <= base_) dead = i;
      i = (i + 1) & mask_;
    }
    if (occupied_ < capacity_) {
      slots_[i] = Slot{key, base_ + weight};
      ++occupied_;
      return;
    }
    if (dead != slots_.size()) {
      // Reuse a decayed slot in place. The slot stays non-empty, so other
      // keys' probe chains are unaffected.
      slots_[dead] = Slot{key, base_ + weight};
      return;
    }
    // Summary full, no reusable slot on the probe path: the Misra-Gries
    // decrement-all, applied as one offset bump. Every live estimate drops
    // by `weight` (clamping at zero via the estimate() comparison) and the
    // new key is not admitted — its weight is the error the bound reports.
    base_ += weight;
    // Lazy reclamation alone degrades on high-churn streams: once every
    // entry has decayed, bumps destroy no live mass and the error bound
    // grows linearly with traffic instead of ~V/(k+1). Periodically rebuild
    // the table with only live entries so decayed slots become admissible
    // again — amortized O(1) per add, preallocated scratch, and a pure
    // function of the add sequence (determinism holds).
    if (++overflow_since_compact_ >= std::max<std::size_t>(64, capacity_ / 4)) {
      compact();
    }
  }

  /// Lower-bound estimate of the total weight added under `key`.
  [[nodiscard]] std::uint64_t estimate(std::uint64_t key) const {
    std::size_t i = hash(key) & mask_;
    while (slots_[i].key != kEmptyKey) {
      if (slots_[i].key == key) {
        return slots_[i].weight > base_ ? slots_[i].weight - base_ : 0;
      }
      i = (i + 1) & mask_;
    }
    return 0;
  }

  /// Maximum under-count of any estimate (0 while within capacity).
  [[nodiscard]] std::uint64_t error_bound() const {
    return base_ + carried_error_;
  }

  /// Total weight ever added (exact; unaffected by decrements).
  [[nodiscard]] std::uint64_t total_weight() const { return total_weight_; }

  /// Live entries (estimate > 0).
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const Slot& s : slots_) {
      if (s.key != kEmptyKey && s.weight > base_) ++n;
    }
    return n;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  struct Entry {
    std::uint64_t key;
    std::uint64_t weight;  ///< estimate (lower bound)
  };

  /// Live entries ordered by (estimate desc, key asc) — a total order, so
  /// the export is deterministic. Allocates; cold path only.
  [[nodiscard]] std::vector<Entry> ranked() const {
    std::vector<Entry> out;
    out.reserve(std::min(occupied_, capacity_));
    for (const Slot& s : slots_) {
      if (s.key != kEmptyKey && s.weight > base_) {
        out.push_back(Entry{s.key, s.weight - base_});
      }
    }
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      return a.weight != b.weight ? a.weight > b.weight : a.key < b.key;
    });
    return out;
  }

  /// Folds `other` into this summary (Agarwal et al.: merging summaries of
  /// two streams yields a valid summary of the concatenated stream). Each
  /// of other's estimates is replayed as an add — overflow decrements feed
  /// base_ as usual — and other's own error carries into error_bound().
  /// Deterministic: entries fold in ranked() order. Cold path (allocates
  /// via ranked()); the engine itself never merges — it charges one summary
  /// in canonical order at the barrier.
  void merge(const LinkSummary& other) {
    for (const Entry& e : other.ranked()) add(e.key, e.weight);
    carried_error_ += other.error_bound();
    total_weight_ += other.total_weight() - other.ranked_weight();
  }

 private:
  struct Slot {
    std::uint64_t key;
    std::uint64_t weight;  ///< absolute (offset by base_)
  };

  /// splitmix64 finalizer — full-avalanche mix of the packed key.
  [[nodiscard]] static std::uint64_t hash(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  /// Rebuilds the table from its live entries, folding base_ into the
  /// carried error (estimates and error_bound() are unchanged; decayed
  /// slots are freed for re-admission).
  void compact() {
    std::size_t n = 0;
    for (const Slot& s : slots_) {
      if (s.key != kEmptyKey && s.weight > base_) {
        scratch_[n++] = Slot{s.key, s.weight - base_};
      }
    }
    std::fill(slots_.begin(), slots_.end(), Slot{kEmptyKey, 0});
    carried_error_ += base_;
    base_ = 0;
    occupied_ = n;
    overflow_since_compact_ = 0;
    for (std::size_t k = 0; k < n; ++k) {
      std::size_t i = hash(scratch_[k].key) & mask_;
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask_;
      slots_[i] = scratch_[k];
    }
  }

  /// Sum of live estimates (what merge() replays; the remainder of other's
  /// total_weight is decayed history, still counted in the merged total).
  [[nodiscard]] std::uint64_t ranked_weight() const {
    std::uint64_t sum = 0;
    for (const Slot& s : slots_) {
      if (s.key != kEmptyKey && s.weight > base_) sum += s.weight - base_;
    }
    return sum;
  }

  std::vector<Slot> slots_;
  std::vector<Slot> scratch_;  ///< compact() staging; sized with slots_
  std::size_t mask_ = 0;
  std::size_t capacity_ = 0;
  std::size_t occupied_ = 0;       ///< non-empty slots (live or decayed)
  std::size_t overflow_since_compact_ = 0;  ///< base_ bumps since compact()
  std::uint64_t base_ = 0;         ///< global decrement offset
  std::uint64_t carried_error_ = 0;  ///< error bounds from merge()/compact()
  std::uint64_t total_weight_ = 0;
};

/// Per-hierarchy-level × per-category traffic matrix plus the heavy-hitter
/// link summary — the engine-facing face of the topology telemetry plane.
///
/// A link's level is max(depth(from), depth(to)) under the BFS hierarchy
/// (root depth 0), so level d holds exactly the links between depth d-1
/// parents and their depth-d children: a peer's filtering push and the
/// dissemination copy it receives land on the same level, which is what
/// makes the per-level totals reconcile against the cost model's per-level
/// terms (core::cost_model::*_level_bytes). Traffic touching a peer outside
/// the hierarchy (churned out / never assigned a depth) lands in a separate
/// off-hierarchy bucket.
class LinkStats {
 public:
  /// Category axis width. net::kNumTrafficCategories (9) must fit; a
  /// static_assert in net/engine.cpp keeps the two in sync without this
  /// header depending on nf_net headers.
  static constexpr std::size_t kMaxCategories = 16;
  /// Depth marker for peers outside the hierarchy.
  static constexpr std::uint32_t kNoLevel = ~0u;
  static constexpr std::size_t kDefaultLinkCapacity = 4096;

  LinkStats() : links_(kDefaultLinkCapacity) {
    // Unconfigured stats must still accept charge(): engines run with obs
    // attached but no hierarchy (raw engine tests, naive flood). One row —
    // the off-hierarchy bucket, since num_levels_ == 0 — absorbs it all.
    bytes_.assign(kMaxCategories, 0);
    msgs_.assign(kMaxCategories, 0);
    predicted_.assign(kMaxCategories, 0.0);
    level_peers_.assign(1, 0);
  }

  /// Re-sizes the heavy-hitter summary (drops its contents). Warm-up only.
  void set_link_capacity(std::size_t capacity) {
    links_.set_capacity(capacity);
  }

  /// Installs the level geometry: `peer_level[p]` is peer p's BFS depth
  /// (kNoLevel for non-members), `num_levels` the hierarchy height.
  /// Re-configuring with identical geometry keeps accumulated counts (an
  /// alpha sweep re-runs over one shared context and hierarchy); a changed
  /// geometry resets the matrix — mixed-geometry accumulation would be
  /// meaningless.
  NF_ENGINE_THREAD void configure_levels(
      const std::vector<std::uint32_t>& peer_level, std::uint32_t num_levels) {
    if (peer_level == peer_level_ && num_levels == num_levels_) return;
    peer_level_ = peer_level;
    num_levels_ = num_levels;
    const std::size_t rows = static_cast<std::size_t>(num_levels_) + 1;
    bytes_.assign(rows * kMaxCategories, 0);
    msgs_.assign(rows * kMaxCategories, 0);
    predicted_.assign(rows * kMaxCategories, 0.0);
    level_peers_.assign(rows, 0);
    for (const std::uint32_t d : peer_level_) {
      if (d != kNoLevel && d < num_levels_) ++level_peers_[d];
    }
    level_counters_.assign(num_levels_, nullptr);
  }

  /// Creates (or rebinds) one `link/level<d>/bytes` counter and one
  /// `link/level<d>/backlog_bytes` gauge per level in `registry` and tracks
  /// them as series columns, so per-level utilization and queue depth land
  /// in the TimeSeries ring and — via the trace-event exporter — as Perfetto
  /// counter tracks per level. Call after configure_levels(); allocation
  /// happens here, never in charge()/set_backlog().
  NF_ENGINE_THREAD void bind_series(MetricsRegistry& registry,
                                    TimeSeries& series) {
    backlog_gauges_.assign(num_levels_, nullptr);
    for (std::uint32_t d = 0; d < num_levels_; ++d) {
      const std::string name = "link/level" + std::to_string(d) + "/bytes";
      Counter* c = &registry.counter(name);
      series.track_counter(name, c);
      level_counters_[d] = c;
      const std::string backlog =
          "link/level" + std::to_string(d) + "/backlog_bytes";
      Gauge* g = &registry.gauge(backlog);
      series.track_gauge(backlog, g);
      backlog_gauges_[d] = g;
    }
  }

  /// Installs the static directed link capacity (bytes/round) of one level
  /// — the utilization denominator `nf-inspect congestion` divides observed
  /// level bytes by. Computed by the run harness from the hierarchy and the
  /// LinkClassModel (sum over both directions of every parent<->child link
  /// at the level); purely observational. Warm-up only.
  void set_level_capacity(std::uint32_t level, std::uint64_t bytes_per_round) {
    if (level_capacity_.size() < num_levels_) {
      level_capacity_.assign(num_levels_, 0);
    }
    if (level < level_capacity_.size()) {
      level_capacity_[level] = bytes_per_round;
    }
  }

  [[nodiscard]] std::uint64_t level_capacity(std::uint32_t level) const {
    return level < level_capacity_.size() ? level_capacity_[level] : 0;
  }

  /// Charges one admitted envelope. Engine thread only, canonical merge
  /// order only (enforced by nf-lint outside net/engine.cpp). Zero
  /// allocation after warm-up.
  NF_ENGINE_THREAD void charge(std::uint32_t from, std::uint32_t to,
                               std::size_t category, std::uint64_t bytes) {
    const std::size_t row = level_of_link(from, to);
    if (category >= kMaxCategories) category = kMaxCategories - 1;
    bytes_[row * kMaxCategories + category] += bytes;
    ++msgs_[row * kMaxCategories + category];
    if (row < level_counters_.size() && level_counters_[row] != nullptr) {
      level_counters_[row]->add(bytes);
    }
    links_.add(link_key(from, to), bytes);
  }

  /// Charges one queued admission to the congestion summary: `bytes` of a
  /// message that could not clear link (from, to) in its propagation-delay
  /// round and spilled into the per-link backlog. Same discipline as
  /// charge(): engine thread only, canonical admission order only (nf-lint's
  /// nf-link-model check flags calls outside net/engine.cpp). Zero
  /// allocation after warm-up.
  NF_ENGINE_THREAD void charge_spill(std::uint32_t from, std::uint32_t to,
                                     std::uint64_t bytes) {
    spill_.add(link_key(from, to), bytes);
  }

  /// Publishes one level's end-of-round backlog depth (bytes still queued
  /// on the level's links after the round's capacity drained). Engine
  /// thread only; no-op for rows without a bound gauge (off-hierarchy,
  /// detached series).
  NF_ENGINE_THREAD void set_backlog(std::size_t row, std::uint64_t bytes) {
    if (row < backlog_gauges_.size() && backlog_gauges_[row] != nullptr) {
      backlog_gauges_[row]->set(static_cast<double>(bytes));
    }
  }

  /// Accumulates a cost-model prediction for (level, category) — called
  /// once per conformance-eligible run, so predictions grow in lockstep
  /// with the observed matrix across a sweep.
  void add_prediction(std::uint32_t level, std::size_t category,
                      double bytes) {
    if (level > num_levels_ || category >= kMaxCategories) return;
    predicted_[static_cast<std::size_t>(level) * kMaxCategories + category] +=
        bytes;
  }

  /// Row index for a link: max endpoint depth, or the off-hierarchy bucket
  /// (row num_levels()) when either endpoint has no depth. Unconfigured
  /// stats (num_levels() == 0) put everything in the bucket.
  [[nodiscard]] std::size_t level_of_link(std::uint32_t from,
                                          std::uint32_t to) const {
    const std::uint32_t df =
        from < peer_level_.size() ? peer_level_[from] : kNoLevel;
    const std::uint32_t dt =
        to < peer_level_.size() ? peer_level_[to] : kNoLevel;
    if (df == kNoLevel || dt == kNoLevel) return num_levels_;
    const std::uint32_t d = std::max(df, dt);
    return d < num_levels_ ? d : num_levels_;
  }

  [[nodiscard]] bool configured() const { return num_levels_ != 0; }
  [[nodiscard]] std::uint32_t num_levels() const { return num_levels_; }

  /// Members at depth `level` (the cost model's per-level multiplier).
  [[nodiscard]] std::uint64_t level_peers(std::uint32_t level) const {
    return level < level_peers_.size() ? level_peers_[level] : 0;
  }

  /// Row `num_levels()` is the off-hierarchy bucket.
  [[nodiscard]] std::uint64_t level_bytes(std::size_t row,
                                          std::size_t category) const {
    return cell(bytes_, row, category);
  }
  [[nodiscard]] std::uint64_t level_msgs(std::size_t row,
                                         std::size_t category) const {
    return cell(msgs_, row, category);
  }
  [[nodiscard]] double level_predicted(std::size_t row,
                                       std::size_t category) const {
    const std::size_t i = row * kMaxCategories + category;
    return i < predicted_.size() ? predicted_[i] : 0.0;
  }
  [[nodiscard]] std::uint64_t level_total_bytes(std::size_t row) const {
    std::uint64_t sum = 0;
    for (std::size_t c = 0; c < kMaxCategories; ++c) {
      sum += cell(bytes_, row, c);
    }
    return sum;
  }
  [[nodiscard]] std::uint64_t level_total_msgs(std::size_t row) const {
    std::uint64_t sum = 0;
    for (std::size_t c = 0; c < kMaxCategories; ++c) {
      sum += cell(msgs_, row, c);
    }
    return sum;
  }

  [[nodiscard]] const LinkSummary& links() const { return links_; }
  [[nodiscard]] LinkSummary& links() { return links_; }

  /// Heavy-hitter summary over *spilled* (queued) bytes per directed link —
  /// which links the congestion actually gates on. Same Misra-Gries bounds
  /// as links().
  [[nodiscard]] const LinkSummary& spill() const { return spill_; }
  [[nodiscard]] LinkSummary& spill() { return spill_; }

 private:
  template <typename V>
  [[nodiscard]] static typename V::value_type cell(const V& m,
                                                   std::size_t row,
                                                   std::size_t category) {
    const std::size_t i = row * kMaxCategories + category;
    return i < m.size() ? m[i] : 0;
  }

  std::vector<std::uint32_t> peer_level_;
  std::uint32_t num_levels_ = 0;
  std::vector<std::uint64_t> bytes_;      ///< (num_levels+1) × kMaxCategories
  std::vector<std::uint64_t> msgs_;
  std::vector<double> predicted_;
  std::vector<std::uint64_t> level_peers_;
  std::vector<Counter*> level_counters_;  ///< one per level; bind_series()
  std::vector<Gauge*> backlog_gauges_;    ///< one per level; bind_series()
  std::vector<std::uint64_t> level_capacity_;  ///< bytes/round per level
  LinkSummary links_;
  LinkSummary spill_;  ///< queued bytes per link (congestion hot list)
};

}  // namespace nf::obs
