// Metrics registry for the observability layer (docs/OBSERVABILITY.md).
//
// Named counters, gauges and log2-bucketed histograms. The registry is a
// plain value owned by obs::Context; instrumentation sites reach it through
// a nullable Context* so the disabled path is a single pointer test (see
// obs/context.h and the BM_Obs* fixtures in bench/microbench.cpp).
//
// Handles returned by counter()/gauge()/histogram() are stable references
// (node-based map), so hot paths can look a metric up once and increment
// through the handle. reset() invalidates all handles.
//
// Thread safety: metric updates are lock-free relaxed atomics and
// find_or_create takes a registry mutex, so protocol callbacks running on
// the sharded engine's worker pool (net/engine.h) can share one registry.
// Values are commutative sums/extrema, so totals are identical no matter
// which shard incremented first. Snapshot accessors (counters(), value())
// are meant for quiescent reads between runs, not for mid-round tearing.
//
// Naming convention: `<subsystem>/<metric>` (e.g. "engine/rounds",
// "convergecast/msg_bytes"); phase wall times use `time_us/<phase>`.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace nf::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed histogram of unsigned values (message sizes, fan-outs,
/// depths): bucket i counts values of bit width i, so bucket 0 holds exactly
/// the value 0 and bucket i >= 1 holds [2^(i-1), 2^i - 1]. Fixed storage,
/// no allocation on observe().
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 65;  ///< bit widths 0..64

  void observe(std::uint64_t v) {
    buckets_[static_cast<std::size_t>(std::bit_width(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    update_min(v);
    update_max(v);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const {
    return count() ? min_.load(std::memory_order_relaxed) : 0;
  }
  [[nodiscard]] std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Smallest value counted by bucket i.
  [[nodiscard]] static constexpr std::uint64_t bucket_lo(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  /// Largest value counted by bucket i.
  [[nodiscard]] static constexpr std::uint64_t bucket_hi(std::size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << i) - 1;
  }

 private:
  void update_min(std::uint64_t v) {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur && !min_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t v) {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> buckets_[kNumBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{
      std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  /// Finds or creates; the reference stays valid until reset().
  Counter& counter(std::string_view name) { return find_or_create(counters_, name); }
  Gauge& gauge(std::string_view name) { return find_or_create(gauges_, name); }
  Histogram& histogram(std::string_view name) {
    return find_or_create(histograms_, name);
  }

  // Sorted iteration for the exporters.
  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters()
      const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges()
      const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>&
  histograms() const {
    return histograms_;
  }

  /// Drops every metric. Invalidates all outstanding handles.
  void reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

 private:
  template <typename M>
  typename M::mapped_type& find_or_create(M& map, std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map.find(name);
    if (it != map.end()) return it->second;
    return map.try_emplace(std::string(name)).first->second;
  }

  std::mutex mutex_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace nf::obs
