// Lineage analysis: critical-path extraction, per-phase slack and the
// schema v5 `lineage` JSON section (docs/OBSERVABILITY.md "Causal
// lineage"). Kept out of lineage.h so the net layer can use the recorder
// header-only without linking nf_obs.
#include "obs/lineage.h"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/export.h"
#include "obs/json.h"

namespace nf::obs {

namespace {

/// Display name for a hop, mirroring SessionMux::add_phase span naming:
/// bare phase names for unnamed (single) sessions, "<session>/<phase>"
/// otherwise; empty for untagged traffic or unregistered phases.
std::string compose_phase_name(const LineageRecorder& rec,
                               std::uint32_t session, std::uint32_t phase) {
  if (session == LineageRecorder::kNoSessionTag) return {};
  const std::string_view pname = rec.phase_name(session, phase);
  if (pname.empty()) return {};
  const std::string_view sname = rec.session_name(session);
  if (sname.empty()) return std::string(pname);
  return std::string(sname) + "/" + std::string(pname);
}

}  // namespace

std::vector<CriticalPath> critical_paths(const LineageRecorder& rec) {
  std::vector<CriticalPath> out;
  if (rec.total() == 0 || rec.runs().empty()) return out;
  const LineageRecorder::RunMark run = rec.runs().back();
  const LineageId lo = std::max(run.first_id, rec.first_retained_id());
  const LineageId hi = rec.total();
  if (lo > hi) return out;
  const auto n = static_cast<std::size_t>(hi - lo + 1);

  // Extra parents restricted to the window, sorted by (child, parent) so
  // the candidate scan below is deterministic.
  std::vector<LineageEdge> extra;
  for (const LineageEdge& e : rec.extra_edges()) {
    if (e.child >= lo && e.child <= hi && e.parent >= lo) extra.push_back(e);
  }
  std::sort(extra.begin(), extra.end(),
            [](const LineageEdge& a, const LineageEdge& b) {
              return a.child != b.child ? a.child < b.child
                                        : a.parent < b.parent;
            });

  // Longest-chain DP in id order, which is topological: a parent is always
  // admitted (and delivered) before any send it triggers. Chain weight is
  // the sum of hop rounds (deliver - send); ties break by bytes, then by
  // keeping the first candidate scanned (the primary parent).
  std::vector<std::uint64_t> chain_rounds(n, 0);
  std::vector<std::uint64_t> chain_bytes(n, 0);
  std::vector<LineageId> best_parent(n, kNoLineage);
  std::size_t ei = 0;
  for (LineageId id = lo; id <= hi; ++id) {
    while (ei < extra.size() && extra[ei].child < id) ++ei;
    std::size_t ej = ei;
    while (ej < extra.size() && extra[ej].child == id) ++ej;
    if (!rec.was_delivered(id)) {
      ei = ej;
      continue;
    }
    const LineageRecorder::NodeView node = rec.node(id);
    const std::size_t idx = static_cast<std::size_t>(id - lo);
    std::uint64_t best_r = 0;
    std::uint64_t best_b = 0;
    LineageId best_p = kNoLineage;
    const auto consider = [&](LineageId p) {
      if (p < lo || p > hi || !rec.was_delivered(p)) return;
      const std::size_t pidx = static_cast<std::size_t>(p - lo);
      if (best_p == kNoLineage || chain_rounds[pidx] > best_r ||
          (chain_rounds[pidx] == best_r && chain_bytes[pidx] > best_b)) {
        best_r = chain_rounds[pidx];
        best_b = chain_bytes[pidx];
        best_p = p;
      }
    };
    consider(node.parent);
    for (; ei < ej; ++ei) consider(extra[ei].parent);
    ei = ej;
    chain_rounds[idx] = best_r + (node.deliver_clock - node.send_clock);
    chain_bytes[idx] = best_b + node.bytes;
    best_parent[idx] = best_p;
  }

  // One sink per session: the latest delivery at or before the session's
  // recorded done() round (every delivery when no done round is known).
  // std::map keys keep sessions in id order.
  std::map<std::uint32_t, LineageId> sinks;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>
      last_phase_deliver;
  for (LineageId id = lo; id <= hi; ++id) {
    if (!rec.was_delivered(id)) continue;
    const LineageRecorder::NodeView node = rec.node(id);
    if (node.session == LineageRecorder::kNoSessionTag) continue;
    const std::uint64_t deliver_round = node.deliver_clock - run.clock;
    auto [it, inserted] = last_phase_deliver.try_emplace(
        std::make_pair(node.session, node.phase), deliver_round);
    if (!inserted) it->second = std::max(it->second, deliver_round);
    const std::uint64_t done = rec.done_round(node.session);
    if (done != LineageRecorder::kNoRound && deliver_round > done) continue;
    auto [sit, fresh] = sinks.try_emplace(node.session, id);
    if (fresh) continue;
    const LineageRecorder::NodeView cur = rec.node(sit->second);
    const std::size_t a = static_cast<std::size_t>(id - lo);
    const std::size_t b = static_cast<std::size_t>(sit->second - lo);
    if (node.deliver_clock > cur.deliver_clock ||
        (node.deliver_clock == cur.deliver_clock &&
         (chain_rounds[a] > chain_rounds[b] ||
          (chain_rounds[a] == chain_rounds[b] &&
           chain_bytes[a] > chain_bytes[b])))) {
      sit->second = id;
    }
  }

  for (const auto& [session, sink] : sinks) {
    CriticalPath path;
    path.session = session;
    path.session_name = std::string(rec.session_name(session));
    const std::uint64_t sink_round =
        rec.node(sink).deliver_clock - run.clock;
    const std::uint64_t done = rec.done_round(session);
    path.done_round = done != LineageRecorder::kNoRound ? done : sink_round;
    const std::size_t sidx = static_cast<std::size_t>(sink - lo);
    path.rounds = chain_rounds[sidx];
    path.bytes = chain_bytes[sidx];
    for (LineageId id = sink; id != kNoLineage;
         id = best_parent[static_cast<std::size_t>(id - lo)]) {
      const LineageRecorder::NodeView node = rec.node(id);
      CriticalHop hop;
      hop.id = id;
      hop.from = node.from;
      hop.to = node.to;
      hop.session = node.session;
      hop.phase = node.phase;
      hop.phase_name = compose_phase_name(rec, node.session, node.phase);
      hop.bytes = node.bytes;
      hop.send_round = node.send_clock - run.clock;
      hop.deliver_round = node.deliver_clock - run.clock;
      path.hops.push_back(std::move(hop));
    }
    std::reverse(path.hops.begin(), path.hops.end());
    for (const auto& [key, last] : last_phase_deliver) {
      if (key.first != session) continue;
      PhaseSlack slack;
      slack.phase = key.second;
      slack.name = compose_phase_name(rec, session, key.second);
      slack.last_deliver_round = last;
      slack.slack_rounds = path.done_round > last ? path.done_round - last : 0;
      path.slack.push_back(std::move(slack));
    }
    out.push_back(std::move(path));
  }
  return out;
}

Json to_json(const LineageRecorder& rec) {
  Json out = Json::object();
  out["capacity"] = static_cast<std::uint64_t>(rec.capacity());
  out["total"] = rec.total();
  out["dropped_nodes"] = rec.dropped_nodes();
  out["edge_capacity"] = static_cast<std::uint64_t>(rec.edge_capacity());
  out["edges_seen"] = rec.edges_seen();

  Json runs = Json::array();
  for (const LineageRecorder::RunMark& r : rec.runs()) {
    Json j = Json::object();
    j["clock"] = r.clock;
    j["first_id"] = r.first_id;
    runs.push_back(std::move(j));
  }
  out["runs"] = std::move(runs);

  Json sessions = Json::array();
  for (std::uint32_t s = 0; s < rec.num_named_sessions(); ++s) {
    Json j = Json::object();
    j["id"] = s;
    j["name"] = std::string(rec.session_name(s));
    if (rec.done_round(s) != LineageRecorder::kNoRound) {
      j["done_round"] = rec.done_round(s);
    }
    Json phases = Json::array();
    for (std::uint32_t p = 0; p < rec.num_named_phases(s); ++p) {
      phases.push_back(std::string(rec.phase_name(s, p)));
    }
    j["phases"] = std::move(phases);
    sessions.push_back(std::move(j));
  }
  out["sessions"] = std::move(sessions);

  // Node columns for the most recent run's retained window, rounds relative
  // to the run's start clock (deliver_round 0 = never delivered).
  Json nodes = Json::object();
  Json ids = Json::array();
  Json parent = Json::array();
  Json from = Json::array();
  Json to = Json::array();
  Json session = Json::array();
  Json phase = Json::array();
  Json bytes = Json::array();
  Json send_round = Json::array();
  Json deliver_round = Json::array();
  LineageId lo = 1;
  LineageId hi = 0;
  if (!rec.runs().empty() && rec.total() != 0) {
    lo = std::max(rec.runs().back().first_id, rec.first_retained_id());
    hi = rec.total();
  }
  const std::uint64_t base = rec.runs().empty() ? 0 : rec.runs().back().clock;
  for (LineageId id = lo; id <= hi; ++id) {
    const LineageRecorder::NodeView n = rec.node(id);
    ids.push_back(id);
    parent.push_back(n.parent);
    from.push_back(n.from);
    to.push_back(n.to);
    session.push_back(n.session);
    phase.push_back(n.phase);
    bytes.push_back(n.bytes);
    send_round.push_back(n.send_clock - base);
    deliver_round.push_back(
        n.deliver_clock == 0 ? std::uint64_t{0} : n.deliver_clock - base);
  }
  nodes["id"] = std::move(ids);
  nodes["parent"] = std::move(parent);
  nodes["from"] = std::move(from);
  nodes["to"] = std::move(to);
  nodes["session"] = std::move(session);
  nodes["phase"] = std::move(phase);
  nodes["bytes"] = std::move(bytes);
  nodes["send_round"] = std::move(send_round);
  nodes["deliver_round"] = std::move(deliver_round);
  out["nodes"] = std::move(nodes);

  Json edges = Json::array();
  for (const LineageEdge& e : rec.extra_edges()) {
    if (e.child < lo || e.child > hi || e.parent < lo) continue;
    Json pair = Json::array();
    pair.push_back(e.parent);
    pair.push_back(e.child);
    edges.push_back(std::move(pair));
  }
  out["extra_edges"] = std::move(edges);

  Json paths = Json::array();
  for (const CriticalPath& cp : critical_paths(rec)) {
    Json j = Json::object();
    j["session"] = cp.session;
    j["name"] = cp.session_name;
    j["done_round"] = cp.done_round;
    j["rounds"] = cp.rounds;
    j["bytes"] = cp.bytes;
    Json hops = Json::array();
    for (const CriticalHop& h : cp.hops) {
      Json hop = Json::object();
      hop["id"] = h.id;
      hop["from"] = h.from;
      hop["to"] = h.to;
      hop["phase"] = h.phase_name;
      hop["bytes"] = h.bytes;
      hop["send_round"] = h.send_round;
      hop["deliver_round"] = h.deliver_round;
      hops.push_back(std::move(hop));
    }
    j["hops"] = std::move(hops);
    Json slack = Json::array();
    for (const PhaseSlack& s : cp.slack) {
      Json row = Json::object();
      std::string label = s.name;
      if (label.empty()) {
        label = "p";
        label += std::to_string(s.phase);
      }
      row["phase"] = std::move(label);
      row["last_deliver_round"] = s.last_deliver_round;
      row["slack_rounds"] = s.slack_rounds;
      slack.push_back(std::move(row));
    }
    j["slack"] = std::move(slack);
    paths.push_back(std::move(j));
  }
  out["critical_paths"] = std::move(paths);
  return out;
}

}  // namespace nf::obs
