#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace nf::obs {

bool Json::as_bool() const {
  require(is_bool(), "json value is not a bool");
  return std::get<bool>(v_);
}

double Json::as_double() const {
  if (const auto* i = std::get_if<std::int64_t>(&v_)) {
    return static_cast<double>(*i);
  }
  if (const auto* u = std::get_if<std::uint64_t>(&v_)) {
    return static_cast<double>(*u);
  }
  require(std::holds_alternative<double>(v_), "json value is not a number");
  return std::get<double>(v_);
}

std::uint64_t Json::as_uint64() const {
  if (const auto* u = std::get_if<std::uint64_t>(&v_)) return *u;
  if (const auto* i = std::get_if<std::int64_t>(&v_)) {
    require(*i >= 0, "json value is negative");
    return static_cast<std::uint64_t>(*i);
  }
  if (const auto* d = std::get_if<double>(&v_)) {
    require(*d >= 0.0 && *d <= 1.8446744073709552e19 &&
                *d == std::floor(*d),
            "json value is not an unsigned integer");
    return static_cast<std::uint64_t>(*d);
  }
  throw InvalidArgument("json value is not a number");
}

const std::string& Json::as_string() const {
  require(is_string(), "json value is not a string");
  return std::get<std::string>(v_);
}

const Json::Array& Json::as_array() const {
  require(is_array(), "json value is not an array");
  return std::get<Array>(v_);
}

const Json::Object& Json::as_object() const {
  require(is_object(), "json value is not an object");
  return std::get<Object>(v_);
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) v_ = Object{};
  require(is_object(), "json operator[] on a non-object");
  return std::get<Object>(v_)[key];
}

const Json* Json::find(std::string_view key) const {
  const auto* obj = std::get_if<Object>(&v_);
  if (obj == nullptr) return nullptr;
  const auto it = obj->find(std::string(key));
  return it == obj->end() ? nullptr : &it->second;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  require(found != nullptr, concat("json key not found: ", key));
  return *found;
}

void Json::push_back(Json value) {
  if (is_null()) v_ = Array{};
  require(is_array(), "json push_back on a non-array");
  // Reached only through the token engine's name-collision edge on
  // `push_back`; Json is report plumbing and never runs inside the engine's
  // steady-state round.
  // nf-lint: nf-cap-noalloc-ok
  std::get<Array>(v_).push_back(std::move(value));
}

std::size_t Json::size() const {
  if (const auto* a = std::get_if<Array>(&v_)) return a->size();
  if (const auto* o = std::get_if<Object>(&v_)) return o->size();
  return 0;
}

namespace {

void dump_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void newline_indent(std::ostream& os, int indent, int depth) {
  if (indent < 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void Json::dump_impl(std::ostream& os, int indent, int depth) const {
  if (std::holds_alternative<std::nullptr_t>(v_)) {
    os << "null";
  } else if (const auto* b = std::get_if<bool>(&v_)) {
    os << (*b ? "true" : "false");
  } else if (const auto* i = std::get_if<std::int64_t>(&v_)) {
    os << *i;
  } else if (const auto* u = std::get_if<std::uint64_t>(&v_)) {
    os << *u;
  } else if (const auto* d = std::get_if<double>(&v_)) {
    if (!std::isfinite(*d)) {
      os << "null";  // JSON has no NaN/Inf
    } else {
      // 17 significant digits round-trip any double exactly; defaultfloat
      // drops trailing zeros, so common values stay short ("0.01").
      std::ostringstream tmp;
      tmp << std::setprecision(17) << *d;
      std::string text = tmp.str();
      // Keep the number a double on re-parse.
      if (text.find_first_of(".eE") == std::string::npos) text += ".0";
      os << text;
    }
  } else if (const auto* s = std::get_if<std::string>(&v_)) {
    dump_string(os, *s);
  } else if (const auto* a = std::get_if<Array>(&v_)) {
    if (a->empty()) {
      os << "[]";
      return;
    }
    os << '[';
    for (std::size_t i = 0; i < a->size(); ++i) {
      if (i != 0) os << ',';
      newline_indent(os, indent, depth + 1);
      (*a)[i].dump_impl(os, indent, depth + 1);
    }
    newline_indent(os, indent, depth);
    os << ']';
  } else {
    const auto& obj = std::get<Object>(v_);
    if (obj.empty()) {
      os << "{}";
      return;
    }
    os << '{';
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) os << ',';
      first = false;
      newline_indent(os, indent, depth + 1);
      dump_string(os, key);
      os << (indent < 0 ? ":" : ": ");
      value.dump_impl(os, indent, depth + 1);
    }
    newline_indent(os, indent, depth);
    os << '}';
  }
}

void Json::dump(std::ostream& os, int indent) const {
  dump_impl(os, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

namespace {

/// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value(0);
    skip_ws();
    require(pos_ == text_.size(), "json: trailing characters");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 256;

  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument(concat("json parse error at offset ", pos_, ": ",
                                 what));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(concat("expected '", c, "'"));
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value(depth + 1);
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == '}') return Json(std::move(obj));
      if (next != ',') fail("expected ',' or '}'");
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == ']') return Json(std::move(arr));
      if (next != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          fail("unescaped control character");
        }
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default: fail("bad escape");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t code = 0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, code,
                        16);
    if (ec != std::errc{} || ptr != text_.data() + pos_ + 4) {
      fail("bad \\u escape");
    }
    pos_ += 4;
    return code;
  }

  void append_unicode_escape(std::string& out) {
    std::uint32_t code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // Surrogate pair: a low surrogate must follow.
      if (!consume_literal("\\u")) fail("unpaired surrogate");
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("bad number");

    const bool integral =
        token.find_first_of(".eE") == std::string_view::npos;
    if (integral) {
      if (token.front() == '-') {
        std::int64_t i = 0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), i);
        if (ec == std::errc{} && ptr == token.data() + token.size()) {
          return Json(i);
        }
      } else {
        std::uint64_t u = 0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), u);
        if (ec == std::errc{} && ptr == token.data() + token.size()) {
          return Json(u);
        }
      }
      // Out of 64-bit range: fall through to double.
    }
    double d = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      fail("bad number");
    }
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_{0};
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace nf::obs
