// Structured protocol tracer (docs/OBSERVABILITY.md).
//
// Records span-style events — phase begin/end, engine round boundaries,
// per-level convergecast merges, multicast fan-out, gossip rounds — into a
// bounded in-memory ring. Each event carries a global sequence number
// (monotonic even after the ring wraps, so consumers can detect gaps) and a
// logical timestamp: the engine advances the tracer clock once per
// simulated round, so `clock` orders events across protocol phases the way
// rounds order messages.
//
// Event names must be string literals (or otherwise outlive the tracer);
// the ring stores the pointer, never a copy. Dynamically built names (e.g.
// per-session trace tracks like "q3/filtering") go through intern(), which
// copies the string into tracer-owned storage and hands back a pointer with
// tracer lifetime.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nf::obs {

/// Sentinel peer for events not attributable to a single peer.
inline constexpr std::uint32_t kNoPeer = 0xFFFFFFFFu;

enum class EventKind : std::uint8_t {
  kPhaseBegin,   ///< protocol phase opened (value unused)
  kPhaseEnd,     ///< protocol phase closed (value = wall microseconds)
  kRound,        ///< engine round boundary (value = messages delivered)
  kMerge,        ///< convergecast child merged (value = message bytes)
  kFanout,       ///< multicast forward (value = downstream copies)
  kGossipRound,  ///< one gossip round completed (value = round index)
  kMark,         ///< free-form point event
};

[[nodiscard]] constexpr std::string_view to_string(EventKind k) {
  switch (k) {
    case EventKind::kPhaseBegin: return "phase_begin";
    case EventKind::kPhaseEnd: return "phase_end";
    case EventKind::kRound: return "round";
    case EventKind::kMerge: return "merge";
    case EventKind::kFanout: return "fanout";
    case EventKind::kGossipRound: return "gossip_round";
    case EventKind::kMark: return "mark";
  }
  return "?";
}

struct TraceEvent {
  std::uint64_t seq = 0;    ///< global event index, monotonic across wraps
  std::uint64_t clock = 0;  ///< logical timestamp (engine rounds so far)
  std::uint64_t value = 0;  ///< kind-specific payload (see EventKind)
  const char* name = "";    ///< static string; the ring never owns it
  std::uint32_t peer = kNoPeer;
  EventKind kind = EventKind::kMark;
};

/// Thread safety: record() may be called concurrently from the sharded
/// engine's workers; a mutex serializes ring writes, so seq numbers stay
/// gap-free (events from concurrently executing shards interleave in lock
/// acquisition order, which can differ run to run — metrics and protocol
/// results stay deterministic, trace interleaving is diagnostic only).
class ProtocolTracer {
 public:
  explicit ProtocolTracer(std::size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.reserve(capacity_);
  }

  void record(EventKind kind, const char* name, std::uint32_t peer = kNoPeer,
              std::uint64_t value = 0) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const TraceEvent e{total_, clock_, value, name, peer, kind};
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
    } else {
      // Events fill slots in seq order, so seq % capacity is always the
      // oldest slot once the ring is full.
      ring_[static_cast<std::size_t>(total_ % capacity_)] = e;
    }
    ++total_;
  }

  /// Copies `name` into tracer-owned storage and returns a pointer that
  /// stays valid for the tracer's lifetime — the way runtime-built event
  /// names (per-session trace tracks) satisfy the static-name contract.
  /// Interned strings survive clear(): a snapshot taken before the clear
  /// may still reference them.
  [[nodiscard]] const char* intern(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string& s : interned_) {
      if (s == name) return s.c_str();
    }
    return interned_.emplace_back(name).c_str();
  }

  /// Advances the logical clock; the engine calls this once per round.
  void advance_clock(std::uint64_t delta = 1) {
    const std::lock_guard<std::mutex> lock(mutex_);
    clock_ += delta;
  }
  [[nodiscard]] std::uint64_t clock() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return clock_;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
  }
  /// Events ever recorded, including those the ring has since overwritten.
  [[nodiscard]] std::uint64_t total_recorded() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return total_;
  }
  /// Events lost to wraparound.
  [[nodiscard]] std::uint64_t dropped() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return total_ - ring_.size();
  }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for (std::uint64_t s = total_ - ring_.size(); s < total_; ++s) {
      out.push_back(ring_[static_cast<std::size_t>(s % capacity_)]);
    }
    return out;
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    total_ = 0;
    clock_ = 0;
  }

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  // Deque: growth never moves existing strings, so interned pointers stay
  // stable.
  std::deque<std::string> interned_;
  std::vector<TraceEvent> ring_;
  std::uint64_t total_{0};
  std::uint64_t clock_{0};
};

}  // namespace nf::obs
