// Cost-model conformance: predicted-vs-observed residuals per phase
// (docs/OBSERVABILITY.md "Cost-model conformance").
//
// The paper's central claim is analytic — netFilter's per-peer byte cost
// obeys Formulae 1–4 (src/core/cost_model.*). This report makes every
// instrumented run self-checking against that claim: the protocol driver
// appends one ConformanceRun per NetFilter::run() holding the run's actual
// parameters (f, g, w, r, fp, ...) and a list of checks, each pairing a
// formula's prediction with the measured value.
//
// A check is *gated* when the model is exact by construction (filtering and
// dissemination under the flat wire model), so its residual participates in
// within() — the tolerance gate ctest and `nf-inspect` assert. Advisory
// checks (aggregation, which Formula 1 upper-bounds; expected false
// positives, which Formula 4 gives in expectation) are reported with their
// residuals but never fail the gate.
//
// This type deliberately knows nothing about the cost model itself — the
// hook in src/core/netfilter.cpp computes predictions and feeds plain
// numbers — so obs/ stays below core/ in the layer order.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace nf::obs {

struct ConformanceCheck {
  std::string name;        ///< e.g. "F1.filtering"
  double predicted = 0.0;  ///< model value (per-peer bytes, or a count)
  double observed = 0.0;   ///< measured value from the run
  bool gated = true;       ///< participates in within()/max_gated_residual()

  /// Signed relative error (observed - predicted) / |predicted|; an exact
  /// match is 0. predicted == 0 yields 0 when observed is also 0, else +-1
  /// per unit observed is treated as a full-scale miss (inf would poison
  /// JSON, so the magnitude is clamped to |observed|).
  [[nodiscard]] double residual() const {
    if (predicted == 0.0) return observed == 0.0 ? 0.0 : observed;
    return (observed - predicted) / std::abs(predicted);
  }
};

struct ConformanceRun {
  /// The run's actual model inputs (f, g, threshold, heavy_groups, r, fp,
  /// num_peers, ...) so a consumer can re-derive every prediction.
  std::map<std::string, double> params;
  std::vector<ConformanceCheck> checks;
};

/// Thread safety: mutations come from the engine thread at run boundaries;
/// a mutex keeps concurrent protocol drivers sharing one obs::Context safe.
class ConformanceReport {
 public:
  /// Opens a new run; subsequent set_param()/add_check() target it.
  void begin_run();

  /// Sets a model input on the latest run (opens one if none exists).
  void set_param(std::string_view name, double value);

  /// Appends a predicted-vs-observed check to the latest run.
  void add_check(std::string_view name, double predicted, double observed,
                 bool gated);

  [[nodiscard]] std::size_t num_runs() const;
  [[nodiscard]] std::vector<ConformanceRun> snapshot() const;

  /// Largest |residual| over gated checks of every run (0 when none).
  [[nodiscard]] double max_gated_residual() const;

  /// True iff every gated check's |residual| <= tol.
  [[nodiscard]] bool within(double tol) const {
    return max_gated_residual() <= tol;
  }

  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<ConformanceRun> runs_;
};

/// {"runs":[{"params":{...},"checks":[{"name","predicted","observed",
///  "residual","gated"},...]},...],"max_gated_residual":x}
[[nodiscard]] Json to_json(const ConformanceReport& report);

}  // namespace nf::obs
