// Chrome trace-event export (docs/OBSERVABILITY.md "Trace-event export").
//
// Converts an obs::Context — the ProtocolTracer ring plus the TimeSeries
// recorder — into the Trace Event Format consumed by Perfetto
// (ui.perfetto.dev) and chrome://tracing: a JSON object with a
// "traceEvents" array. The mapping uses the *logical* clock as the
// timestamp axis (1 simulated round = 1 µs), so the visual timeline shows
// protocol time, not host wall time:
//
//   - every distinct phase name gets its own named track (thread), with
//     "B"/"E" duration events from kPhaseBegin/kPhaseEnd (wall µs in args);
//   - kMerge / kFanout / kGossipRound / kMark become per-peer instant
//     events ("i") on kind-named tracks, peer and value in args;
//   - kRound events and every TimeSeries column become counter tracks
//     ("C"), one per metric, so in-flight messages, per-round deliveries
//     and per-shard busy time plot as graphs under the phase tracks.
//
// Phase-end events whose begin was lost to ring wraparound are dropped
// (Perfetto rejects unbalanced "E"s); begins still open at export time are
// left open, which the viewer tolerates.
#pragma once

#include <string>

#include "obs/context.h"
#include "obs/json.h"

namespace nf::obs {

/// {"displayTimeUnit":"ms","traceEvents":[...]} — valid trace-event JSON.
[[nodiscard]] Json trace_event_json(const Context& ctx);

/// Serializes trace_event_json(ctx) to `path` (compact, one line). Returns
/// false with a stderr note when the file cannot be written.
bool write_trace_event_file(const std::string& path, const Context& ctx);

}  // namespace nf::obs
