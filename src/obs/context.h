// Observability context: metrics registry, protocol tracer, round-sampled
// time series and cost-model conformance report, threaded through the
// protocol layers as a nullable pointer.
//
// A null Context* means observability is off; every helper below reduces to
// a single branch in that case, so instrumentation can sit on hot paths
// (engine message delivery, convergecast merges) without a measurable tax —
// bench/microbench.cpp's BM_Obs* fixtures document both the disabled and
// the enabled cost.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/conformance.h"
#include "obs/lineage.h"
#include "obs/link_stats.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace nf::obs {

struct Context {
  MetricsRegistry registry;
  ProtocolTracer tracer;
  /// Engine-driven per-round recorder; its sources are registry handles, so
  /// registry.reset() requires a series.clear() first.
  TimeSeries series;
  ConformanceReport conformance;
  /// Happened-before DAG of engine messages (engine-thread writes only).
  LineageRecorder lineage;
  /// Per-hierarchy-level traffic matrix + heavy-hitter link summary,
  /// charged by the engine at the canonical-order merge barrier (schema v6
  /// `link_stats` section).
  LinkStats link_stats;

  explicit Context(std::size_t trace_capacity = 4096,
                   std::size_t series_capacity = 4096,
                   std::size_t lineage_capacity =
                       LineageRecorder::kDefaultCapacity)
      : tracer(trace_capacity),
        series(series_capacity),
        lineage(lineage_capacity) {}
};

// Null-safe instrumentation helpers. Sites that fire per message should
// prefer caching the registry handle (see Engine::set_obs) when enabled.
inline void add_counter(Context* c, std::string_view name,
                        std::uint64_t delta = 1) {
  if (c != nullptr) c->registry.counter(name).add(delta);
}
inline void set_gauge(Context* c, std::string_view name, double value) {
  if (c != nullptr) c->registry.gauge(name).set(value);
}
inline void observe(Context* c, std::string_view name, std::uint64_t value) {
  if (c != nullptr) c->registry.histogram(name).observe(value);
}
inline void trace_event(Context* c, EventKind kind, const char* name,
                        std::uint32_t peer = kNoPeer,
                        std::uint64_t value = 0) {
  if (c != nullptr) c->tracer.record(kind, name, peer, value);
}

/// RAII protocol phase span: emits kPhaseBegin on entry and, on exit,
/// kPhaseEnd (value = wall microseconds) plus a `time_us/<name>` counter
/// the exporters surface as the phase timing table. `name` must be a
/// string literal.
class ScopedPhase {
 public:
  ScopedPhase(Context* ctx, const char* name) : ctx_(ctx), name_(name) {
    if (ctx_ == nullptr) return;
    ctx_->tracer.record(EventKind::kPhaseBegin, name_);
    start_ = std::chrono::steady_clock::now();
  }

  ~ScopedPhase() {
    if (ctx_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
    ctx_->registry.counter(std::string("time_us/") + name_).add(us);
    ctx_->tracer.record(EventKind::kPhaseEnd, name_, kNoPeer, us);
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Context* ctx_;
  const char* name_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace nf::obs
