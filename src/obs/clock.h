// Wall-clock readings for the observability layer.
//
// Protocol code must never consult ambient time: the determinism contract
// (DESIGN.md §6c) allows only seeded nf::Rng draws and counter-keyed hash
// streams, and nf-lint's nf-determinism-banned-entropy check enforces the
// ban mechanically. Wall time is an obs concern — timing gauges, span
// stamps — so the one place the monotonic clock may be spelled is this
// header, inside the exempt src/obs tree. Runtime code that needs to time
// itself for metrics takes readings through these helpers; the values feed
// gauges and traces only and never influence protocol behaviour.
#pragma once

#include <chrono>
#include <cstdint>

namespace nf::obs {

/// An opaque monotonic timestamp. Comparable and subtractable; obtain one
/// only via wall_now().
using WallTime = std::chrono::steady_clock::time_point;

inline WallTime wall_now() { return std::chrono::steady_clock::now(); }

/// Microseconds elapsed since `since` (a wall_now() reading).
inline std::uint64_t elapsed_us(WallTime since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(wall_now() -
                                                            since)
          .count());
}

/// Nanoseconds elapsed since `since` — for accumulating many short
/// intervals (the obs self-overhead meter times blocks well under 1µs;
/// rounding each to microseconds would systematically drop them).
inline std::uint64_t elapsed_ns(WallTime since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall_now() - since)
          .count());
}

}  // namespace nf::obs
