// Minimal JSON document model for the observability exporters.
//
// The bench binaries must emit machine-readable results (--json) without
// external dependencies, so this is a small value type: build a tree,
// dump() it (object keys come out sorted — std::map — so golden tests and
// diffs are stable), parse() it back for round-trip tests. Integers are
// kept as int64/uint64, not coerced to double, so counters round-trip
// exactly; non-finite doubles serialize as null (JSON has no NaN).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace nf::obs {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(double d) : v_(d) {}
  Json(int i) : v_(static_cast<std::int64_t>(i)) {}
  Json(long i) : v_(static_cast<std::int64_t>(i)) {}
  Json(long long i) : v_(static_cast<std::int64_t>(i)) {}
  Json(unsigned u) : v_(static_cast<std::uint64_t>(u)) {}
  Json(unsigned long u) : v_(static_cast<std::uint64_t>(u)) {}
  Json(unsigned long long u) : v_(static_cast<std::uint64_t>(u)) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string_view s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(Array a) : v_(std::move(a)) {}
  Json(Object o) : v_(std::move(o)) {}

  [[nodiscard]] static Json object() { return Json(Object{}); }
  [[nodiscard]] static Json array() { return Json(Array{}); }

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<std::int64_t>(v_) ||
           std::holds_alternative<std::uint64_t>(v_) ||
           std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v_);
  }

  [[nodiscard]] bool as_bool() const;
  /// Any numeric alternative, widened to double.
  [[nodiscard]] double as_double() const;
  /// Numeric value as uint64; throws if negative, fractional or too large.
  [[nodiscard]] std::uint64_t as_uint64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object access, creating the key (and converting null -> object).
  Json& operator[](const std::string& key);
  /// Object lookup without creation; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// Object lookup that throws when the key is absent.
  [[nodiscard]] const Json& at(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const {
    return find(key) != nullptr;
  }

  /// Array append (converting null -> array).
  void push_back(Json value);
  /// Elements for arrays, keys for objects, 0 otherwise.
  [[nodiscard]] std::size_t size() const;

  /// Serializes; `indent` < 0 is compact, >= 0 pretty-prints with that many
  /// spaces per level.
  void dump(std::ostream& os, int indent = -1) const;
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses standard JSON; throws nf::Error on malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

  friend bool operator==(const Json&, const Json&) = default;

 private:
  using Value = std::variant<std::nullptr_t, bool, std::int64_t,
                             std::uint64_t, double, std::string, Array,
                             Object>;

  void dump_impl(std::ostream& os, int indent, int depth) const;

  Value v_;
};

}  // namespace nf::obs
