// Causal message lineage: the happened-before DAG of an engine run
// (docs/OBSERVABILITY.md "Causal lineage").
//
// Every non-ACK message the engine admits gets a compact LineageId, assigned
// by a monotonic counter walked in the canonical (major, minor) merge order
// — the same total order that makes K-shard runs bit-identical — so lineage
// ids are deterministic for any --threads=K. The id rides the Envelope;
// protocol components tag each send with the id of the message whose arrival
// triggered it (its causal parent), or nothing when a local round tick
// originated it. Components never mint or rewrite ids themselves (nf-lint's
// nf-envelope-discipline check enforces this): the primary parent flows
// automatically from the delivery context, and multi-parent components
// (convergecast merges, gossip) pass the full parent set to the send call.
//
// The LineageRecorder stores the DAG in a bounded columnar ring (SoA): node
// columns are overwritten FIFO once `capacity` admissions have happened, and
// extra edges beyond the first parent go through reservoir sampling keyed by
// a counter-seeded hash stream, so million-peer runs keep O(capacity)
// memory and remain deterministic. All recorder writes happen on the engine
// thread (admission, delivery, run marks) or before the run (names), so the
// recorder is lock-free by design — shard workers only copy ids into
// KeyedSends.
//
// Analysis (critical paths, per-phase slack, JSON export) lives in
// lineage.cpp / export.h: this header stays dependency-light so the net
// layer, which does not link nf_obs, can use the recorder header-only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/capability.h"
#include "common/hashing.h"
#include "common/ids.h"

namespace nf::obs {

/// Compact happened-before node id; 0 means "no lineage" (ACKs, round
/// ticks, runs without an obs context).
using LineageId = std::uint64_t;
inline constexpr LineageId kNoLineage = 0;

/// A sampled extra edge (parents beyond the first) of the lineage DAG.
struct LineageEdge {
  LineageId parent = kNoLineage;
  LineageId child = kNoLineage;
};

class LineageRecorder {
 public:
  /// Default node-ring capacity: a --quick multiquery run admits ~20k
  /// messages, so the default keeps full DAGs for every committed bench
  /// while staying ~3 MiB.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;
  static constexpr std::size_t kDefaultEdgeCapacity = 4096;
  /// "Round not recorded" sentinel for done-round queries.
  static constexpr std::uint64_t kNoRound =
      std::numeric_limits<std::uint64_t>::max();
  /// Mirrors net::kNoSession without depending on the net layer.
  static constexpr std::uint32_t kNoSessionTag = 0xFFFFFFFFu;

  /// Start clock + first node id of one Engine::run; analysis and export
  /// window on the most recent mark (matching the traffic section's "most
  /// recent captured run" convention).
  struct RunMark {
    std::uint64_t clock = 0;
    LineageId first_id = 1;
  };

  /// Everything recorded about one node, reassembled from the columns.
  struct NodeView {
    LineageId id = kNoLineage;
    LineageId parent = kNoLineage;
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    std::uint32_t session = kNoSessionTag;
    std::uint32_t phase = 0;
    std::uint64_t bytes = 0;
    std::uint64_t send_clock = 0;
    /// 0 = never delivered (lost, dead destination, duplicate-suppressed).
    std::uint64_t deliver_clock = 0;
  };

  explicit LineageRecorder(std::size_t capacity = kDefaultCapacity,
                           std::size_t edge_capacity = kDefaultEdgeCapacity)
      : capacity_(capacity == 0 ? 1 : capacity),
        edge_capacity_(edge_capacity) {}

  // --- Engine-side hooks. Engine thread only; columns allocate lazily so
  // --- an attached-but-idle recorder costs nothing.

  /// Assigns the next id (canonical admission order) and records the node.
  NF_ENGINE_THREAD LineageId admit(LineageId parent, PeerId from, PeerId to,
                                   std::uint32_t session, std::uint32_t phase,
                                   std::uint64_t bytes,
                                   std::uint64_t send_clock) {
    if (parent_.empty()) allocate();
    const LineageId id = ++total_;
    if (id > capacity_) ++dropped_nodes_;  // the slot's previous occupant
    const std::size_t s = slot(id);
    parent_[s] = parent;
    from_[s] = from.value();
    to_[s] = to.value();
    session_[s] = session;
    phase_[s] = phase;
    bytes_[s] = bytes;
    send_clock_[s] = send_clock;
    deliver_clock_[s] = 0;
    return id;
  }

  /// Records an extra parent (beyond the envelope's primary) via reservoir
  /// sampling; zero ids are ignored so components can push causes
  /// unconditionally.
  NF_ENGINE_THREAD void link(LineageId child, LineageId parent) {
    if (parent == kNoLineage || child == kNoLineage) return;
    if (edge_capacity_ == 0) return;
    const std::uint64_t n = edges_seen_++;
    if (edges_.size() < edge_capacity_) {
      edges_.push_back(LineageEdge{parent, child});
      return;
    }
    // Algorithm R with a counter-keyed hash draw: deterministic for any
    // shard count because edges arrive in canonical admission order.
    const auto j = static_cast<std::uint64_t>(
        hash_uniform(n, kReservoirSeed) * static_cast<double>(n + 1));
    if (j < edge_capacity_) edges_[static_cast<std::size_t>(j)] =
        LineageEdge{parent, child};
  }

  /// Marks a successful delivery; undelivered nodes (loss, churn, duplicate
  /// suppression) keep deliver_clock 0 and never enter critical paths.
  NF_ENGINE_THREAD void delivered(LineageId id, std::uint64_t deliver_clock) {
    if (retained(id)) deliver_clock_[slot(id)] = deliver_clock;
  }

  /// Called at each Engine::run entry with the tracer clock; windows the
  /// analysis to the most recent run.
  NF_ENGINE_THREAD void mark_run_start(std::uint64_t clock) {
    runs_.push_back(RunMark{clock, total_ + 1});
  }

  // --- Session metadata, registered by the session runtime.

  NF_ENGINE_THREAD void set_session_name(std::uint32_t session,
                                         std::string_view name) {
    if (session == kNoSessionTag) return;
    if (session_names_.size() <= session) session_names_.resize(session + 1);
    session_names_[session] = std::string(name);
  }

  NF_ENGINE_THREAD void set_phase_name(std::uint32_t session,
                                       std::uint32_t phase,
                                       std::string_view name) {
    if (session == kNoSessionTag) return;
    if (phase_names_.size() <= session) phase_names_.resize(session + 1);
    auto& phases = phase_names_[session];
    if (phases.size() <= phase) phases.resize(phase + 1);
    phases[phase] = std::string(name);
  }

  /// Records the run-relative round at which `session` completed (all its
  /// phases done()); critical paths terminate at or before this round.
  NF_ENGINE_THREAD void set_session_done(std::uint32_t session,
                                         std::uint64_t round) {
    if (session == kNoSessionTag) return;
    if (done_round_.size() <= session) {
      done_round_.resize(session + 1, kNoRound);
    }
    done_round_[session] = round;
  }

  // --- Read side (analysis, export, tests).

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t edge_capacity() const { return edge_capacity_; }
  [[nodiscard]] LineageId total() const { return total_; }
  [[nodiscard]] std::uint64_t dropped_nodes() const { return dropped_nodes_; }
  [[nodiscard]] std::uint64_t edges_seen() const { return edges_seen_; }
  [[nodiscard]] const std::vector<LineageEdge>& extra_edges() const {
    return edges_;
  }
  [[nodiscard]] const std::vector<RunMark>& runs() const { return runs_; }

  /// Oldest node id still in the ring (1 until the ring wraps).
  [[nodiscard]] LineageId first_retained_id() const {
    return total_ > capacity_ ? total_ - capacity_ + 1 : 1;
  }

  [[nodiscard]] bool retained(LineageId id) const {
    return id != kNoLineage && id <= total_ && id >= first_retained_id();
  }

  [[nodiscard]] bool was_delivered(LineageId id) const {
    return retained(id) && deliver_clock_[slot(id)] != 0;
  }

  /// Precondition: retained(id).
  [[nodiscard]] NodeView node(LineageId id) const {
    const std::size_t s = slot(id);
    return NodeView{id,          parent_[s], from_[s],
                    to_[s],      session_[s], phase_[s],
                    bytes_[s],   send_clock_[s], deliver_clock_[s]};
  }

  [[nodiscard]] std::string_view session_name(std::uint32_t session) const {
    return session < session_names_.size() ? session_names_[session]
                                           : std::string_view{};
  }

  [[nodiscard]] std::string_view phase_name(std::uint32_t session,
                                            std::uint32_t phase) const {
    if (session >= phase_names_.size()) return {};
    const auto& phases = phase_names_[session];
    return phase < phases.size() ? std::string_view(phases[phase])
                                 : std::string_view{};
  }

  [[nodiscard]] std::size_t num_named_sessions() const {
    return session_names_.size();
  }

  [[nodiscard]] std::size_t num_named_phases(std::uint32_t session) const {
    return session < phase_names_.size() ? phase_names_[session].size() : 0;
  }

  [[nodiscard]] std::uint64_t done_round(std::uint32_t session) const {
    return session < done_round_.size() ? done_round_[session] : kNoRound;
  }

 private:
  static constexpr std::uint64_t kReservoirSeed = 0x11EA6EED5EEDull;

  [[nodiscard]] std::size_t slot(LineageId id) const {
    return static_cast<std::size_t>((id - 1) % capacity_);
  }

  void allocate() {
    // The edge reservoir fills to edge_capacity_ and then overwrites in
    // place; reserving here keeps link() heap-free after this warm-up.
    edges_.reserve(edge_capacity_);
    parent_.assign(capacity_, kNoLineage);
    from_.assign(capacity_, 0);
    to_.assign(capacity_, 0);
    session_.assign(capacity_, kNoSessionTag);
    phase_.assign(capacity_, 0);
    bytes_.assign(capacity_, 0);
    send_clock_.assign(capacity_, 0);
    deliver_clock_.assign(capacity_, 0);
  }

  std::size_t capacity_;
  std::size_t edge_capacity_;
  LineageId total_ = 0;
  std::uint64_t dropped_nodes_ = 0;

  // Node columns (SoA ring indexed by (id - 1) % capacity_).
  std::vector<LineageId> parent_;
  std::vector<std::uint32_t> from_;
  std::vector<std::uint32_t> to_;
  std::vector<std::uint32_t> session_;
  std::vector<std::uint32_t> phase_;
  std::vector<std::uint64_t> bytes_;
  std::vector<std::uint64_t> send_clock_;
  std::vector<std::uint64_t> deliver_clock_;

  // Extra-parent reservoir.
  std::vector<LineageEdge> edges_;
  std::uint64_t edges_seen_ = 0;

  std::vector<RunMark> runs_;
  std::vector<std::string> session_names_;
  std::vector<std::vector<std::string>> phase_names_;
  std::vector<std::uint64_t> done_round_;
};

/// One hop of an extracted critical path. Rounds are relative to the run's
/// start clock; `phase_name` is the composed display name ("q0/filtering",
/// bare for unnamed sessions, empty for non-session traffic).
struct CriticalHop {
  LineageId id = kNoLineage;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t session = LineageRecorder::kNoSessionTag;
  std::uint32_t phase = 0;
  std::string phase_name;
  std::uint64_t bytes = 0;
  std::uint64_t send_round = 0;
  std::uint64_t deliver_round = 0;
};

/// Per-phase slack: rounds between a phase's last delivery and session
/// completion — how far that phase could slip without delaying done().
struct PhaseSlack {
  std::uint32_t phase = 0;
  std::string name;
  std::uint64_t last_deliver_round = 0;
  std::uint64_t slack_rounds = 0;
};

/// The gating chain of one session in the most recent run: the chain with
/// the most hop-rounds (ties: bytes, then id) among those ending at the last
/// delivery at or before the session's done() round.
struct CriticalPath {
  std::uint32_t session = LineageRecorder::kNoSessionTag;
  std::string session_name;
  std::uint64_t done_round = LineageRecorder::kNoRound;
  std::uint64_t rounds = 0;  ///< sum of hop rounds along the chain
  std::uint64_t bytes = 0;   ///< sum of hop bytes along the chain
  std::vector<CriticalHop> hops;
  std::vector<PhaseSlack> slack;
};

/// Extracts one critical path per session seen in the most recent run
/// (sessions ordered by id). Deterministic for any shard count: ids,
/// weights and tie-breaks all derive from canonical admission order.
[[nodiscard]] std::vector<CriticalPath> critical_paths(
    const LineageRecorder& recorder);

}  // namespace nf::obs
