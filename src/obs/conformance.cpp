#include "obs/conformance.h"

#include <algorithm>

namespace nf::obs {

void ConformanceReport::begin_run() {
  const std::lock_guard<std::mutex> lock(mutex_);
  runs_.emplace_back();
}

void ConformanceReport::set_param(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (runs_.empty()) runs_.emplace_back();
  runs_.back().params[std::string(name)] = value;
}

void ConformanceReport::add_check(std::string_view name, double predicted,
                                  double observed, bool gated) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (runs_.empty()) runs_.emplace_back();
  runs_.back().checks.push_back(
      ConformanceCheck{std::string(name), predicted, observed, gated});
}

std::size_t ConformanceReport::num_runs() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return runs_.size();
}

std::vector<ConformanceRun> ConformanceReport::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return runs_;
}

double ConformanceReport::max_gated_residual() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  double worst = 0.0;
  for (const ConformanceRun& run : runs_) {
    for (const ConformanceCheck& check : run.checks) {
      if (!check.gated) continue;
      worst = std::max(worst, std::abs(check.residual()));
    }
  }
  return worst;
}

void ConformanceReport::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  runs_.clear();
}

Json to_json(const ConformanceReport& report) {
  auto runs = Json::array();
  for (const ConformanceRun& run : report.snapshot()) {
    auto params = Json::object();
    for (const auto& [name, value] : run.params) params[name] = value;
    auto checks = Json::array();
    for (const ConformanceCheck& check : run.checks) {
      auto c = Json::object();
      c["name"] = check.name;
      c["predicted"] = check.predicted;
      c["observed"] = check.observed;
      c["residual"] = check.residual();
      c["gated"] = check.gated;
      checks.push_back(std::move(c));
    }
    auto r = Json::object();
    r["params"] = std::move(params);
    r["checks"] = std::move(checks);
    runs.push_back(std::move(r));
  }
  auto out = Json::object();
  out["runs"] = std::move(runs);
  out["max_gated_residual"] = report.max_gated_residual();
  return out;
}

}  // namespace nf::obs
