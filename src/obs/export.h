// JSON/CSV exporters for the observability layer (docs/OBSERVABILITY.md).
//
// Serialize the metrics registry, the trace ring and the TrafficMeter
// per-peer/per-category breakdown into a stable schema (kSchemaVersion).
// Every bench binary funnels its --json output through ExportBundle, so
// all BENCH_*.json artifacts share one shape.
#pragma once

#include <iosfwd>
#include <string>

#include "net/metrics.h"
#include "obs/context.h"
#include "obs/json.h"

namespace nf::obs {

/// Bump when the JSON layout changes incompatibly.
/// History (docs/OBSERVABILITY.md "Schema history"): v7 adds the
/// congestion telemetry — per-level link `capacity` (bytes/round) in
/// `link_stats.levels` rows, the `link_stats.congestion` sub-object
/// (queued-bytes spill summary with its hot-link table), the
/// `engine/congestion/*` counters, the `engine/backlog_bytes` gauge and
/// the per-level `link/level<d>/backlog_bytes` gauge series; v6 adds the
/// `link_stats` section (per-hierarchy-level byte/message accounting with
/// cost-model level predictions, plus the Misra-Gries heavy-hitter link
/// table), the `obs/overhead_us` / `engine/round_us` self-overhead
/// counters and the `obs/timeseries_dropped_rounds` counter; v5 adds the
/// `lineage` section (happened-before DAG of the most recent run, extracted
/// critical paths and per-phase slack) and the `trace/dropped_events`
/// counter; v4 adds the optional `sessions` section (per-session traffic
/// attribution from a SessionMux run) and `rounds_total` to netFilter
/// result rows; v3 adds the `series` (round-sampled time series) and
/// `conformance` (cost-model residuals) sections; v2 added the `threads`
/// shard count to every bench's params object; v1 was the initial schema.
inline constexpr std::uint64_t kSchemaVersion = 7;

/// {"counters": {...}, "gauges": {...}, "histograms": {name:
///  {"count","sum","min","max","buckets":[{"lo","hi","count"},...]}}}
[[nodiscard]] Json to_json(const MetricsRegistry& registry);

/// {"capacity","total_recorded","dropped","clock","events":[...]}; each
/// event is {"seq","clock","kind","name","value"} plus "peer" when set.
[[nodiscard]] Json to_json(const ProtocolTracer& tracer);

/// {"capacity","total_samples","dropped","stamps":[...],
///  "counters":{name:[per-round deltas]},"gauges":{name:[values]}} — the
/// columns are aligned with "stamps" (oldest retained row first).
[[nodiscard]] Json to_json(const TimeSeries& series);

/// {"num_peers","num_messages","total_bytes","max_peer_total",
///  "totals":{category:bytes}, "per_peer":{category:avg},
///  "categories":[...], "peer_category_bytes":[[...],...]} — the matrix
/// columns follow "categories" order. Pass include_peer_matrix=false to
/// omit the N×category matrix (it dominates the document at large N; the
/// summary sections are what nf-inspect and the baseline diffs read).
[[nodiscard]] Json to_json(const net::TrafficMeter& meter,
                           bool include_peer_matrix = true);

/// {"num_levels","link_capacity","links_tracked","links_error_bound",
///  "links_total_bytes","levels":[{"level","peers","total_bytes","bytes":
///  {category:n},"msgs":{category:n},"predicted":{category:x},
///  "capacity" (bytes/round, only when the run set one)},...],
///  "off_hierarchy" (same row shape, only when traffic landed there),
///  "hot":[{"from","to","level","bytes"},...],
///  "congestion" (only when links queued): {"spilled_bytes",
///  "spill_error_bound","hot":[{"from","to","level","bytes"},...]}} — hot
/// links in (bytes desc, key asc) order, capped at 64 rows; estimates are
/// lower bounds within the error bound (schema v7).
[[nodiscard]] Json to_json(const LinkStats& stats);

/// {"capacity","total","dropped_nodes","runs","sessions","nodes" (columnar,
///  most recent run), "extra_edges","critical_paths"} — the happened-before
/// DAG plus its extracted gating chains (obs/lineage.h).
[[nodiscard]] Json to_json(const LineageRecorder& recorder);

/// Phase spans reconstructed from paired kPhaseBegin/kPhaseEnd events:
/// [{"name","begin_seq","end_seq","begin_clock","end_clock","rounds",
///   "wall_us"},...]. Begins lost to ring wraparound leave their ends
/// unpaired (skipped).
[[nodiscard]] Json spans_json(const ProtocolTracer& tracer);

/// The `time_us/<phase>` counters as {"<phase>": microseconds}.
[[nodiscard]] Json timings_json(const MetricsRegistry& registry);

/// One bench run's worth of observability output.
struct ExportBundle {
  std::string bench;               ///< binary name, e.g. "fig5_filter_size"
  Json params = Json::object();    ///< experiment parameters
  Json results = Json::array();    ///< one object per sweep row
  Json traffic;                    ///< to_json(TrafficMeter); null if absent
  /// Per-session traffic attribution of a multiplexed run (one object per
  /// session: {"name","threshold?","bytes":{cat:n},"msgs":{cat:n}});
  /// null when the bench ran no SessionMux.
  Json sessions;
  const Context* obs = nullptr;    ///< registry + trace; may be null
};

/// Top-level document: {"schema_version","bench","params","results",
///  "traffic","sessions","metrics","timings","spans","trace","series",
///  "conformance"} (obs-derived sections only when `obs` is non-null,
/// "traffic"/"sessions" only when captured).
[[nodiscard]] Json to_json(const ExportBundle& bundle);

/// `type,name,value,count,min,max` rows (counters, gauges, histograms).
void write_csv(std::ostream& os, const MetricsRegistry& registry);

/// `seq,clock,kind,name,peer,value` rows, oldest first.
void write_csv(std::ostream& os, const ProtocolTracer& tracer);

}  // namespace nf::obs
