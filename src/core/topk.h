// Exact top-k retrieval built on IFI.
//
// The paper's related work (§II) contrasts IFI with top-k retrieval [4]:
// top-k bounds the result count, IFI bounds the value. The two meet with a
// simple adaptive reduction, included here because "find the k most
// downloaded songs" is what operators often actually ask: run netFilter at
// a threshold no more than k items can clear (t = v/k), and halve the
// threshold until at least k items qualify. Any item outside IFI(t) is
// below t <= the k-th best inside, so the top k of the final run is the
// exact global top-k. Convergence takes O(log(v/k)) netFilter runs; on
// skewed data the first run almost always suffices.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "agg/hierarchy.h"
#include "core/netfilter.h"

namespace nf::core {

struct TopKStats {
  std::uint32_t netfilter_runs = 0;
  Value final_threshold = 0;
  double total_cost = 0.0;  ///< bytes/peer summed over all runs
};

struct TopKResult {
  /// Exactly min(k, distinct items) entries, sorted by value descending
  /// (ties broken by smaller item id) — with exact values.
  std::vector<std::pair<ItemId, Value>> items;
  TopKStats stats;
};

class TopK {
 public:
  explicit TopK(NetFilterConfig config) : netfilter_(config) {}

  [[nodiscard]] TopKResult run(const ItemSource& items,
                               const agg::Hierarchy& hierarchy,
                               net::Overlay& overlay,
                               net::TrafficMeter& meter,
                               std::uint32_t k) const;

 private:
  NetFilter netfilter_;
};

}  // namespace nf::core
