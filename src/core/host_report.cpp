#include "core/host_report.h"

namespace nf::core {

EffectiveItems::EffectiveItems(const ItemSource& base,
                               const agg::Hierarchy& hierarchy,
                               const net::Overlay& overlay,
                               const WireSizes& wire,
                               net::TrafficMeter* meter)
    : base_(base),
      hierarchy_(hierarchy),
      merged_(base.num_peers()),
      has_merged_(base.num_peers(), false) {
  for (std::uint32_t p = 0; p < base.num_peers(); ++p) {
    const PeerId id(p);
    if (hierarchy.is_member(id) || !overlay.is_alive(id)) continue;
    const PeerId host = hierarchy.host(id);
    const LocalItems& items = base.local_items(id);
    if (items.empty()) continue;
    ++num_reporters_;
    if (meter != nullptr) {
      meter->record(id, net::TrafficCategory::kHostReport,
                    items.size() * wire.item_value_pair());
    }
    if (!has_merged_[host]) {
      has_merged_[host] = true;
      merged_[host] = base.local_items(host);
    }
    merged_[host].merge_add(items);
  }
}

const LocalItems& EffectiveItems::local_items(PeerId p) const {
  if (!hierarchy_.is_member(p)) return empty_;
  return has_merged_[p] ? merged_[p] : base_.local_items(p);
}

}  // namespace nf::core
