// Analytic cost model of netFilter (paper §IV, Formulae 1-6).
//
// Used three ways: (1) to pick the optimal filter size g and filter count f,
// (2) to sanity-check the simulator (bench/analysis_cost_model compares
// model vs measured), (3) in tests as a closed-form oracle for the
// protocol's byte accounting.
#pragma once

#include <cstdint>

#include "common/wire.h"

namespace nf::core::cost_model {

/// Formula 1 per-phase components — netfilter_cost() is their sum, and the
/// conformance report (docs/OBSERVABILITY.md "Cost-model conformance")
/// compares each term against the matching phase's measured per-peer bytes.
///
/// Filtering: sa·f·g — every peer pushes f filters of g aggregates up the
/// tree.
[[nodiscard]] double filtering_term(const WireSizes& wire, double num_filters,
                                    double num_groups);
/// Dissemination: sg·f·w — the root multicasts the w heavy group ids per
/// filter back down.
[[nodiscard]] double dissemination_term(const WireSizes& wire,
                                        double num_filters,
                                        double heavy_groups_per_filter);
/// Aggregation: (sa+si)·(r+fp) — candidate (item, value) pairs converge
/// back to the root. The paper treats this as an upper bound: a pair
/// travels once per tree edge on its path, not once per peer.
[[nodiscard]] double aggregation_term(const WireSizes& wire,
                                      double heavy_items,
                                      double false_positives);

/// Per-hierarchy-level splits of the exact Formula-1 terms, for the schema
/// v6 `link_stats` reconciliation (`nf-inspect levels`). Under the BFS
/// hierarchy a level-d link joins a depth-(d-1) parent to a depth-d child,
/// so the traffic crossing level d is driven by the member count at depth
/// d: each of those members pushes one sa·f·g filtering message up its
/// level-d link and receives one sg·W dissemination copy (W = Σ_f w_f, the
/// heavy-group total) over the same link. Summing the level terms over
/// d >= 1 recovers the global formulas times (N-1)/N — the root neither
/// pushes nor receives.
[[nodiscard]] double filtering_level_bytes(const WireSizes& wire,
                                           double num_filters,
                                           double num_groups,
                                           double members_at_level);
[[nodiscard]] double dissemination_level_bytes(const WireSizes& wire,
                                               double heavy_groups_total,
                                               double members_at_level);

/// Formula 1: C_filter = sa·f·g + sg·f·w + (sa+si)·(r+fp).
/// `heavy_groups_per_filter` is the paper's w; `false_positives` its fp.
[[nodiscard]] double netfilter_cost(const WireSizes& wire, double num_filters,
                                    double num_groups,
                                    double heavy_groups_per_filter,
                                    double heavy_items,
                                    double false_positives);

/// Formula 2 bounds: (sa+si)·o <= C_naive <= (sa+si)·o·(h-1).
[[nodiscard]] double naive_cost_lower(const WireSizes& wire,
                                      double items_per_peer);
[[nodiscard]] double naive_cost_upper(const WireSizes& wire,
                                      double items_per_peer, double height);

/// Formula 4: expected heterogeneous false positives
/// fp2 = (n-r)·(1-(1-1/g)^r)^f.
[[nodiscard]] double expected_fp2(double num_items, double heavy_items,
                                  double num_groups, double num_filters);

/// Formula 3: g_opt = c + v̄_light / (θ·v̄), with small positive constant c.
/// Setting g at least this large makes homogeneous false positives unlikely
/// (at most t/v̄_light items land in one group in expectation).
[[nodiscard]] double optimal_num_groups(double v_bar_light, double theta,
                                        double v_bar, double c = 20.0);

/// Formula 6: f_opt = ceil( log_{1/(1-(1-1/g)^r)} ((sa+si)(n-r)/(g·sa)) ).
/// The f at which one more filter costs more in filtering than it saves in
/// candidate aggregation. Clamped to >= 1.
[[nodiscard]] std::uint32_t optimal_num_filters(const WireSizes& wire,
                                                double num_items,
                                                double heavy_items,
                                                double num_groups);

/// Queueing extension (link-capacity engine, net/link_model.h): rounds one
/// hop needs to push `message_bytes` through a link draining
/// `link_capacity` bytes/round — ceil(bytes / capacity), floored at 1.
/// Infinite (or non-positive) capacity collapses to the paper's one
/// round/hop synchronous model.
[[nodiscard]] double transfer_rounds(double message_bytes,
                                     double link_capacity);

/// Rounds a depth-`depth` wave (convergecast or multicast) needs when every
/// hop moves `message_bytes` over a level-bottleneck link of
/// `link_capacity`: the wave front crosses one level per transfer, plus one
/// round for the engine to observe quiescence. depth * transfer + 1.
[[nodiscard]] double phase_rounds(double message_bytes, double depth,
                                  double link_capacity);

}  // namespace nf::core::cost_model
