#include "core/ifi_session.h"

#include <utility>

#include "common/error.h"
#include "net/codec.h"
#include "obs/context.h"

namespace nf::core {

IfiSessionPhases::IfiSessionPhases(const NetFilter& netfilter,
                                   const ItemSource& items,
                                   const agg::Hierarchy& hierarchy,
                                   Value threshold)
    : netfilter_(netfilter),
      items_(items),
      hierarchy_(hierarchy),
      threshold_(threshold),
      obs_(netfilter.config().obs),
      filtering_(
          hierarchy, net::TrafficCategory::kFiltering,
          /*local=*/
          [this](PeerId p) {
            return netfilter_.local_group_aggregates(items_.local_items(p));
          },
          /*merge=*/
          [](std::vector<Value>& acc, std::vector<Value>&& child) {
            ensure(acc.size() == child.size(), "group vector size mismatch");
            for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += child[i];
          },
          /*wire_bytes=*/
          [this](const std::vector<Value>& v) -> std::uint64_t {
            const NetFilterConfig& cfg = netfilter_.config();
            // The paper's model charges sa bytes per item group per filter
            // (§IV-A) regardless of sparsity; kVarintDelta prices the
            // actual varint encoding.
            return cfg.wire_model == WireModel::kFlatFields
                       ? std::uint64_t{cfg.wire.aggregate_bytes} *
                             cfg.num_filters * cfg.num_groups
                       : net::encode_aggregates(v).size();
          },
          netfilter.config().obs),
      dissemination_(
          hierarchy, net::TrafficCategory::kDissemination,
          /*on_receive=*/
          [this](net::PhaseContext& ctx, const HeavyGroupSet& hg) {
            on_heavy_received(ctx, hg);
          },
          netfilter.config().obs),
      aggregation_(
          hierarchy, net::TrafficCategory::kAggregation,
          /*local=*/
          [this](PeerId p) {
            ensure(ready_[p] != 0, "peer aggregating before materialization");
            return std::move(partial_[p.value()]);
          },
          /*merge=*/
          [](LocalItems& acc, LocalItems&& child) { acc.merge_add(child); },
          /*wire_bytes=*/
          [this](const LocalItems& m) -> std::uint64_t {
            const NetFilterConfig& cfg = netfilter_.config();
            return cfg.wire_model == WireModel::kFlatFields
                       ? m.size() * cfg.wire.item_value_pair()
                       : net::encode_pairs(m).size();
          },
          netfilter.config().obs),
      partial_(hierarchy.num_peers()),
      ready_(hierarchy.num_peers(), false) {
  require(threshold >= 1, "threshold must be >= 1");
  filtering_.set_on_complete(
      [this](net::PhaseContext& ctx, const std::vector<Value>& global) {
        finish_filtering(ctx, global);
      });
  aggregation_.set_on_complete(
      [this](net::PhaseContext& ctx, const LocalItems& candidates) {
        finish_aggregation(ctx, candidates);
      });
}

net::PhaseId IfiSessionPhases::register_phases(
    net::SessionMux& mux, net::SessionId session,
    net::PhaseStart filtering_start) {
  net::PhaseOptions fopts;
  fopts.start = filtering_start;
  // Children's aggregates must merge into an initialized accumulator;
  // buffering is the safety net (on a tree a parent always starts before
  // its children can reach it).
  fopts.open_on_message = false;
  fopts.name = "filtering";
  const net::PhaseId fid = mux.add_phase(session, filtering_, fopts);

  net::PhaseOptions dopts;  // receipt of the heavy set IS the trigger
  dopts.name = "dissemination";
  dissemination_pid_ = mux.add_phase(session, dissemination_, dopts);

  net::PhaseOptions aopts;
  aopts.open_on_message = false;  // materialize before merging children
  aopts.name = "aggregation";
  aggregation_pid_ = mux.add_phase(session, aggregation_, aopts);
  return fid;
}

// Runs at the root, inside the delivery that completed the global group
// aggregates: threshold the groups, hand the heavy set to the multicast and
// open it here — the per-peer phase-2 wave starts this very round.
void IfiSessionPhases::finish_filtering(net::PhaseContext& ctx,
                                        const std::vector<Value>& global) {
  const NetFilterConfig& cfg = netfilter_.config();
  const std::uint32_t f = cfg.num_filters;
  const std::uint32_t g = cfg.num_groups;
  heavy_.heavy.assign(f, std::vector<bool>(g, false));
  for (std::uint32_t i = 0; i < f; ++i) {
    for (std::uint32_t j = 0; j < g; ++j) {
      heavy_.heavy[i][j] =
          global[static_cast<std::size_t>(i) * g + j] >= threshold_;
    }
  }
  filtering_rounds_ = ctx.round() + 1;
  obs::add_counter(obs_, "netfilter/heavy_groups", heavy_.total());

  // Each dissemination message costs sg per heavy group id under the flat
  // model, or a delta-coded id list under kVarintDelta (Algorithm 2, line 1).
  std::uint64_t dissemination_bytes =
      heavy_.total() * cfg.wire.group_id_bytes;
  if (cfg.wire_model == WireModel::kVarintDelta) {
    std::vector<std::uint64_t> heavy_ids;
    for (std::size_t i = 0; i < heavy_.heavy.size(); ++i) {
      for (std::size_t j = 0; j < heavy_.heavy[i].size(); ++j) {
        if (heavy_.heavy[i][j]) {
          heavy_ids.push_back(i * heavy_.heavy[i].size() + j);
        }
      }
    }
    dissemination_bytes = net::encode_sorted_ids(heavy_ids).size();
  }
  dissemination_.set_payload(heavy_, dissemination_bytes);
  ctx.open_phase(dissemination_pid_);
}

// Runs at every member when the heavy set reaches it: materialize the local
// candidates (Algorithm 2, line 2) and enter aggregation immediately — this
// peer's subtree proceeds without waiting for the multicast to finish
// elsewhere.
void IfiSessionPhases::on_heavy_received(net::PhaseContext& ctx,
                                         const HeavyGroupSet& hg) {
  const PeerId p = ctx.self();
  partial_[p.value()] =
      netfilter_.materialize_candidates(items_.local_items(p), hg);
  ready_[p] = true;
  ctx.open_phase(aggregation_pid_);
}

void IfiSessionPhases::finish_aggregation(net::PhaseContext& ctx,
                                          const LocalItems& candidates) {
  NetFilterStats& s = result_.stats;
  s.threshold = threshold_;
  s.heavy_groups_total = heavy_.total();
  s.num_candidates = candidates.size();
  result_.frequent = candidates;
  result_.frequent.retain(
      [&](ItemId, Value v) { return v >= threshold_; });
  s.num_frequent = result_.frequent.size();
  s.num_false_positives = s.num_candidates - s.num_frequent;
  obs::add_counter(obs_, "netfilter/candidates", s.num_candidates);
  obs::add_counter(obs_, "netfilter/frequent", s.num_frequent);
  result_ready_.store(true, std::memory_order_relaxed);
  if (on_complete_) on_complete_(ctx);
}

NetFilterResult IfiSessionPhases::take_result() {
  require(complete(), "IFI session not complete");
  return std::move(result_);
}

}  // namespace nf::core
