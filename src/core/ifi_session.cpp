#include "core/ifi_session.h"

#include <utility>

#include "common/error.h"
#include "net/codec.h"
#include "obs/context.h"

namespace nf::core {

IfiSessionPhases::IfiSessionPhases(const NetFilter& netfilter,
                                   const ItemSource& items,
                                   const agg::Hierarchy& hierarchy,
                                   Value threshold)
    : netfilter_(netfilter),
      items_(items),
      hierarchy_(hierarchy),
      threshold_(threshold),
      obs_(netfilter.config().obs),
      filtering_(
          hierarchy, net::TrafficCategory::kFiltering,
          /*width=*/netfilter.config().num_filters *
              netfilter.config().num_groups,
          /*local=*/
          [this](PeerId p, std::span<std::uint64_t> out) {
            netfilter_.local_group_aggregates_into(items_.local_items(p),
                                                   out);
          },
          // The paper's model charges sa bytes per item group per filter
          // (§IV-A) regardless of sparsity; kVarintDelta prices the actual
          // varint encoding — the slab length, i.e. flat_bytes = 0.
          /*flat_bytes=*/
          netfilter.config().wire_model == WireModel::kFlatFields
              ? std::uint64_t{netfilter.config().wire.aggregate_bytes} *
                    netfilter.config().num_filters *
                    netfilter.config().num_groups
              : 0,
          netfilter.config().obs),
      dissemination_(
          hierarchy, net::TrafficCategory::kDissemination,
          /*on_receive=*/
          [this](net::PhaseContext& ctx,
                 std::span<const std::uint8_t> encoded) {
            on_heavy_received(ctx, encoded);
          },
          netfilter.config().obs),
      aggregation_(
          hierarchy, net::TrafficCategory::kAggregation,
          /*local=*/
          [this](PeerId p) {
            ensure(ready_[p] != 0, "peer aggregating before materialization");
            return partial_.take(p);
          },
          /*wire_bytes=*/
          netfilter.config().wire_model == WireModel::kFlatFields
              ? agg::FlatPairsConvergecastPhase::WireBytesFn(
                    [this](const LocalItems& m) -> std::uint64_t {
                      return m.size() *
                             netfilter_.config().wire.item_value_pair();
                    })
              : agg::FlatPairsConvergecastPhase::WireBytesFn(),
          netfilter.config().obs),
      ready_(hierarchy.num_peers(), false) {
  require(threshold >= 1, "threshold must be >= 1");
  partial_.configure(items);
  filtering_.set_on_complete(
      [this](net::PhaseContext& ctx, std::span<const Value> global) {
        finish_filtering(ctx, global);
      });
  aggregation_.set_on_complete(
      [this](net::PhaseContext& ctx, const LocalItems& candidates) {
        finish_aggregation(ctx, candidates);
      });
}

net::PhaseId IfiSessionPhases::register_phases(
    net::SessionMux& mux, net::SessionId session,
    net::PhaseStart filtering_start) {
  net::PhaseOptions fopts;
  fopts.start = filtering_start;
  // Children's aggregates must merge into an initialized accumulator;
  // buffering is the safety net (on a tree a parent always starts before
  // its children can reach it).
  fopts.open_on_message = false;
  fopts.name = "filtering";
  const net::PhaseId fid = mux.add_phase(session, filtering_, fopts);

  net::PhaseOptions dopts;  // receipt of the heavy set IS the trigger
  dopts.name = "dissemination";
  dissemination_pid_ = mux.add_phase(session, dissemination_, dopts);

  net::PhaseOptions aopts;
  aopts.open_on_message = false;  // materialize before merging children
  aopts.name = "aggregation";
  aggregation_pid_ = mux.add_phase(session, aggregation_, aopts);
  return fid;
}

// Runs at the root, inside the delivery that completed the global group
// aggregates: threshold the groups, hand the heavy set to the multicast and
// open it here — the per-peer phase-2 wave starts this very round.
void IfiSessionPhases::finish_filtering(net::PhaseContext& ctx,
                                        std::span<const Value> global) {
  const NetFilterConfig& cfg = netfilter_.config();
  const std::uint32_t f = cfg.num_filters;
  const std::uint32_t g = cfg.num_groups;
  heavy_.heavy.assign(f, std::vector<bool>(g, false));
  for (std::uint32_t i = 0; i < f; ++i) {
    for (std::uint32_t j = 0; j < g; ++j) {
      heavy_.heavy[i][j] =
          global[static_cast<std::size_t>(i) * g + j] >= threshold_;
    }
  }
  filtering_rounds_ = ctx.round() + 1;
  obs::add_counter(obs_, "netfilter/heavy_groups", heavy_.total());

  // The wire always carries the delta-coded heavy id list; the flat model
  // charges sg per heavy group id, kVarintDelta the encoded length itself
  // (Algorithm 2, line 1). Encoded once here at the root — every forward
  // down the tree is a span copy.
  const net::Bytes encoded = encode_heavy_groups(heavy_);
  const std::uint64_t dissemination_bytes =
      cfg.wire_model == WireModel::kFlatFields
          ? heavy_.total() * cfg.wire.group_id_bytes
          : encoded.size();
  dissemination_.set_payload(encoded, dissemination_bytes);
  ctx.open_phase(dissemination_pid_);
}

// Runs at every member when the heavy set reaches it: materialize the local
// candidates (Algorithm 2, line 2) and enter aggregation immediately — this
// peer's subtree proceeds without waiting for the multicast to finish
// elsewhere.
void IfiSessionPhases::on_heavy_received(
    net::PhaseContext& ctx, std::span<const std::uint8_t> encoded) {
  const NetFilterConfig& cfg = netfilter_.config();
  const HeavyGroupSet hg =
      decode_heavy_groups(encoded, cfg.num_filters, cfg.num_groups);
  const PeerId p = ctx.self();
  partial_.materialize(p, items_.local_items(p), hg, netfilter_.bank());
  ready_[p] = true;
  ctx.open_phase(aggregation_pid_);
}

void IfiSessionPhases::finish_aggregation(net::PhaseContext& ctx,
                                          const LocalItems& candidates) {
  NetFilterStats& s = result_.stats;
  s.threshold = threshold_;
  s.heavy_groups_total = heavy_.total();
  s.num_candidates = candidates.size();
  result_.frequent = candidates;
  result_.frequent.retain(
      [&](ItemId, Value v) { return v >= threshold_; });
  s.num_frequent = result_.frequent.size();
  s.num_false_positives = s.num_candidates - s.num_frequent;
  obs::add_counter(obs_, "netfilter/candidates", s.num_candidates);
  obs::add_counter(obs_, "netfilter/frequent", s.num_frequent);
  result_ready_.store(true, std::memory_order_relaxed);
  if (on_complete_) on_complete_(ctx);
}

NetFilterResult IfiSessionPhases::take_result() {
  require(complete(), "IFI session not complete");
  return std::move(result_);
}

}  // namespace nf::core
