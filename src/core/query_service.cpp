#include "core/query_service.h"

#include <algorithm>
#include <any>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "agg/multicast.h"
#include "common/arena.h"
#include "common/error.h"
#include "core/host_report.h"
#include "core/ifi_session.h"
#include "obs/context.h"

namespace nf::core {

namespace {

/// Stage 1: every requester's theta travels up the parent chain to the
/// root, recording its route (paper §III-A.1). One protocol instance
/// carries all requests.
class RequestsUp final : public net::Protocol {
 public:
  struct Arrived {
    PeerId requester;
    double theta;
    std::vector<PeerId> route;  // [requester, hop, ...], excluding root
  };

  RequestsUp(const agg::Hierarchy& hierarchy,
             const std::vector<FrequentItemsRequest>& requests,
             std::uint64_t request_bytes)
      : hierarchy_(hierarchy),
        requests_(requests),
        request_bytes_(request_bytes),
        started_(requests.size(), 0) {}

  void on_round(net::Context& ctx) override {
    // The engine calls on_round for every alive peer every round, so each
    // requester originates its own request(s) in round 0. One byte per
    // request (not vector<bool>): only the requester's shard touches its
    // requests' flags, and bytes keep those writes race-free.
    for (std::size_t i = 0; i < requests_.size(); ++i) {
      if (started_[i] != 0 || requests_[i].requester != ctx.self()) continue;
      started_[i] = 1;
      forward(ctx,
              Arrived{requests_[i].requester, requests_[i].theta, {}});
    }
  }

  void on_message(net::Context& ctx, net::Envelope&& env) override {
    auto* msg = std::any_cast<Arrived>(&env.payload);
    ensure(msg != nullptr, "request payload type mismatch");
    forward(ctx, std::move(*msg));
  }

  [[nodiscard]] bool active() const override {
    return arrived_.size() < requests_.size();
  }
  [[nodiscard]] const std::vector<Arrived>& arrived() const {
    return arrived_;
  }

 private:
  void forward(net::Context& ctx, Arrived&& msg) {
    const PeerId self = ctx.self();
    if (self == hierarchy_.root()) {
      arrived_.push_back(std::move(msg));
      return;
    }
    msg.route.push_back(self);
    // Control-plane hop: one tiny routed message per query, off the
    // zero-alloc hot path.
    ctx.send(hierarchy_.upstream(self), net::TrafficCategory::kControl,
             request_bytes_, std::any(std::move(msg)));  // nf-lint: nf-flat-payload-ok
  }

  const agg::Hierarchy& hierarchy_;
  const std::vector<FrequentItemsRequest>& requests_;
  std::uint64_t request_bytes_;
  std::vector<std::uint8_t> started_;
  // Root-shard only: requests arrive via on_message at the root, so there
  // is a single writer and the engine barrier publishes it.
  std::vector<Arrived> arrived_;
};

/// Stage 3: per-requester replies retrace the recorded routes.
class RepliesDown final : public net::Protocol {
 public:
  struct Pending {
    std::vector<PeerId> route;  // remaining hops; requester first
    FrequentItemsResponse response;
  };

  RepliesDown(const agg::Hierarchy& hierarchy, std::vector<Pending> replies,
              std::uint64_t pair_bytes)
      : hierarchy_(hierarchy),
        outbox_(std::move(replies)),
        pair_bytes_(pair_bytes),
        expected_(outbox_.size()) {}

  void on_run_start(const net::Overlay& overlay) override {
    if (delivered_.empty()) delivered_.resize(overlay.num_peers());
  }

  void on_round(net::Context& ctx) override {
    if (ctx.self() != hierarchy_.root() || sent_) return;
    sent_ = true;
    for (auto& pending : outbox_) {
      dispatch(ctx, std::move(pending));
    }
    outbox_.clear();
  }

  void on_message(net::Context& ctx, net::Envelope&& env) override {
    auto* msg = std::any_cast<Pending>(&env.payload);
    ensure(msg != nullptr, "reply payload type mismatch");
    dispatch(ctx, std::move(*msg));
  }

  [[nodiscard]] bool active() const override {
    return delivered_count_.load(std::memory_order_relaxed) < expected_;
  }
  /// Delivered responses in requester id order (per-requester arrival
  /// order within a requester); the caller re-sorts by request position.
  [[nodiscard]] std::vector<FrequentItemsResponse> take_delivered() {
    std::vector<FrequentItemsResponse> out;
    for (auto& per_peer : delivered_) {
      for (auto& response : per_peer) out.push_back(std::move(response));
    }
    return out;
  }

 private:
  void dispatch(net::Context& ctx, Pending&& pending) {
    if (pending.route.empty()) {
      ensure(ctx.self() == pending.response.requester, "reply misrouted");
      // Replies land in the requester's own arena slot, so concurrent
      // arrivals at requesters in different shards never share state.
      delivered_[ctx.self()].push_back(std::move(pending.response));
      delivered_count_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const PeerId next = pending.route.back();
    pending.route.pop_back();
    const std::uint64_t bytes =
        pending.response.frequent.size() * pair_bytes_;
    ctx.send(next, net::TrafficCategory::kControl, bytes,
             std::any(std::move(pending)));  // nf-lint: nf-flat-payload-ok
  }

  const agg::Hierarchy& hierarchy_;
  std::vector<Pending> outbox_;
  std::uint64_t pair_bytes_;
  std::size_t expected_;
  bool sent_ = false;
  PeerArena<std::vector<FrequentItemsResponse>> delivered_;
  std::atomic<std::size_t> delivered_count_{0};
};

// ---- serve_concurrent: per-query session phases (net/session.h) ----

/// Wire shape of a request walking up the parent chain. The route is what
/// the reply retraces; the query parameters themselves are registered at
/// the root per session, so the message body is just the theta the byte
/// charge models.
struct QueryRequestMsg {
  std::vector<PeerId> route;  ///< hops walked so far, excluding the root
};

/// Query parameters the root announces down the tree: enough for a peer to
/// derive the session's filter bank and threshold.
struct QueryAnnounceMsg {
  std::uint64_t filter_seed = 0;
  std::uint32_t num_filters = 0;
  std::uint32_t num_groups = 0;
  Value threshold = 0;
};

/// Reply retracing the recorded route back to the requester.
struct QueryReplyMsg {
  std::vector<PeerId> route;  ///< remaining hops; requester first
  ValueMap<ItemId, Value> frequent;
};

/// Session entry phase: the requester originates when the phase opens
/// (kAllPeers, round 0) and each hop forwards upstream, recording the
/// route. done() once the root has it.
class RequestPhase final  // control plane, not hot path
    : public net::TypedPhase<QueryRequestMsg> {  // nf-lint: nf-flat-payload-ok
 public:
  using ArrivedFn =
      std::function<void(net::PhaseContext&, QueryRequestMsg&&)>;

  RequestPhase(const agg::Hierarchy& hierarchy, PeerId requester,
               std::uint64_t request_bytes, ArrivedFn on_arrived)
      : hierarchy_(hierarchy),
        requester_(requester),
        request_bytes_(request_bytes),
        on_arrived_(std::move(on_arrived)) {}

  void on_start(net::PhaseContext& ctx) override {
    if (ctx.self() != requester_) return;
    forward(ctx, QueryRequestMsg{});
  }

  [[nodiscard]] bool done() const override {
    return arrived_.load(std::memory_order_relaxed);
  }

 protected:
  void on_payload(net::PhaseContext& ctx, QueryRequestMsg&& msg,
                  PeerId /*from*/) override {
    forward(ctx, std::move(msg));
  }

 private:
  void forward(net::PhaseContext& ctx, QueryRequestMsg&& msg) {
    const PeerId self = ctx.self();
    if (self == hierarchy_.root()) {
      arrived_.store(true, std::memory_order_relaxed);
      on_arrived_(ctx, std::move(msg));
      return;
    }
    msg.route.push_back(self);
    this->send(ctx, hierarchy_.upstream(self), net::TrafficCategory::kControl,
               request_bytes_, std::move(msg));
  }

  const agg::Hierarchy& hierarchy_;
  PeerId requester_;
  std::uint64_t request_bytes_;
  ArrivedFn on_arrived_;
  std::atomic<bool> arrived_{false};
};

/// Session exit phase: the root dispatches the finished answer along the
/// recorded route; done() when it lands at the requester.
class ReplyPhase final  // control plane, not hot path
    : public net::TypedPhase<QueryReplyMsg> {  // nf-lint: nf-flat-payload-ok
 public:
  using DeliveredFn =
      std::function<void(net::PhaseContext&, QueryReplyMsg&&)>;

  ReplyPhase(PeerId requester, std::uint64_t pair_bytes,
             DeliveredFn on_delivered)
      : requester_(requester),
        pair_bytes_(pair_bytes),
        on_delivered_(std::move(on_delivered)) {}

  /// Installed at the root (its shard) right before open_phase().
  void set_payload(QueryReplyMsg msg) {
    outbox_ = std::move(msg);
    has_payload_ = true;
  }

  void on_start(net::PhaseContext& ctx) override {
    // Opened at the root by the IFI completion hook (payload installed) or
    // at a relay/requester by message arrival (nothing to originate).
    if (!has_payload_) return;
    has_payload_ = false;
    dispatch(ctx, std::move(outbox_));
  }

  [[nodiscard]] bool done() const override {
    return delivered_.load(std::memory_order_relaxed);
  }

 protected:
  void on_payload(net::PhaseContext& ctx, QueryReplyMsg&& msg,
                  PeerId /*from*/) override {
    dispatch(ctx, std::move(msg));
  }

 private:
  void dispatch(net::PhaseContext& ctx, QueryReplyMsg&& msg) {
    if (msg.route.empty()) {
      ensure(ctx.self() == requester_, "reply misrouted");
      delivered_.store(true, std::memory_order_relaxed);
      on_delivered_(ctx, std::move(msg));
      return;
    }
    const PeerId next = msg.route.back();
    msg.route.pop_back();
    const std::uint64_t bytes = msg.frequent.size() * pair_bytes_;
    this->send(ctx, next, net::TrafficCategory::kControl, bytes,
               std::move(msg));
  }

  PeerId requester_;
  std::uint64_t pair_bytes_;
  DeliveredFn on_delivered_;
  QueryReplyMsg outbox_;
  bool has_payload_ = false;
  std::atomic<bool> delivered_{false};
};

/// Everything one multiplexed query owns: its six phases (request ->
/// announce -> filtering -> dissemination -> aggregation -> reply), its own
/// NetFilter (per-query filter bank), route and response slots.
struct QuerySession {
  net::SessionId sid = 0;
  PeerId requester;
  Value threshold = 0;
  NetFilterConfig config;
  std::unique_ptr<NetFilter> netfilter;
  std::unique_ptr<IfiSessionPhases> ifi;
  std::unique_ptr<RequestPhase> request;
  std::unique_ptr<agg::MulticastPhase<QueryAnnounceMsg>> announce;
  std::unique_ptr<ReplyPhase> reply;
  net::PhaseId announce_pid = 0;
  net::PhaseId filtering_pid = 0;
  net::PhaseId reply_pid = 0;
  std::vector<PeerId> route;       // root shard: recorded at request arrival
  FrequentItemsResponse response;  // requester shard write; read post-run
};

}  // namespace

std::vector<FrequentItemsResponse> QueryService::serve_concurrent(
    const std::vector<ConcurrentRequest>& requests, const ItemSource& items,
    const agg::Hierarchy& hierarchy, net::Overlay& overlay,
    net::TrafficMeter& meter, ConcurrentQueryStats* stats,
    const net::ChurnSchedule* churn) const {
  require(!requests.empty(), "no requests");
  require(items.num_peers() == overlay.num_peers(),
          "item source and overlay disagree on peer count");
  for (const auto& req : requests) {
    require(req.theta > 0.0 && req.theta <= 1.0, "theta must be in (0,1]");
    require(hierarchy.is_member(req.requester),
            "requester must be a hierarchy member");
  }
  obs::Context* obs = config_.obs;
  obs::ScopedPhase whole(obs, "query-service");

  Value v_total = 0;
  for (std::uint32_t p = 0; p < items.num_peers(); ++p) {
    if (hierarchy.is_member(PeerId(p))) {
      v_total += items.local_items(PeerId(p)).total();
    }
  }
  require(v_total > 0, "system holds no items");

  // The host report runs once; every session queries the same effective
  // (member-folded) item view.
  const std::uint64_t host_before =
      meter.total(net::TrafficCategory::kHostReport);
  const EffectiveItems effective = [&] {
    obs::ScopedPhase phase(obs, "host-report");
    return EffectiveItems(items, hierarchy, overlay, config_.wire, &meter);
  }();

  // Announced query parameters: f, g, seed and t — four flat fields.
  const std::uint64_t announce_bytes =
      std::uint64_t{4} * config_.wire.aggregate_bytes;

  net::SessionMux mux(obs);
  std::vector<std::unique_ptr<QuerySession>> sessions;
  sessions.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ConcurrentRequest& req = requests[i];
    auto owned = std::make_unique<QuerySession>();
    QuerySession* q = owned.get();
    q->requester = req.requester;
    q->threshold = static_cast<Value>(
        std::ceil(req.theta * static_cast<double>(v_total)));
    q->config = config_;
    if (req.num_filters != 0) q->config.num_filters = req.num_filters;
    if (req.num_groups != 0) q->config.num_groups = req.num_groups;
    if (req.filter_seed != 0) q->config.filter_seed = req.filter_seed;
    q->sid = mux.add_session("q" + std::to_string(i));
    q->netfilter = std::make_unique<NetFilter>(q->config);
    q->ifi = std::make_unique<IfiSessionPhases>(*q->netfilter, effective,
                                                hierarchy, q->threshold);

    q->request = std::make_unique<RequestPhase>(
        hierarchy, req.requester, config_.wire.aggregate_bytes,
        [q, announce_bytes](net::PhaseContext& ctx, QueryRequestMsg&& msg) {
          q->route = std::move(msg.route);
          q->announce->set_payload(
              QueryAnnounceMsg{q->config.filter_seed, q->config.num_filters,
                               q->config.num_groups, q->threshold},
              announce_bytes);
          ctx.open_phase(q->announce_pid);
        });
    net::PhaseOptions ropts;
    ropts.start = net::PhaseStart::kAllPeers;
    ropts.name = "request";
    (void)mux.add_phase(q->sid, *q->request, ropts);

    q->announce = std::make_unique<agg::MulticastPhase<QueryAnnounceMsg>>(
        hierarchy, net::TrafficCategory::kControl,
        [q](net::PhaseContext& ctx, const QueryAnnounceMsg& /*msg*/) {
          // In deployment the peer derives the session's filter bank from
          // the announced (f, g, seed); here the session's NetFilter holds
          // it already, so receipt just starts filtering at this peer.
          ctx.open_phase(q->filtering_pid);
        },
        obs);
    net::PhaseOptions aopts;
    aopts.name = "announce";
    q->announce_pid = mux.add_phase(q->sid, *q->announce, aopts);

    q->filtering_pid =
        q->ifi->register_phases(mux, q->sid, net::PhaseStart::kOnDemand);

    q->reply = std::make_unique<ReplyPhase>(
        req.requester, config_.wire.item_value_pair(),
        [q](net::PhaseContext& ctx, QueryReplyMsg&& msg) {
          q->response.requester = ctx.self();
          q->response.threshold = q->threshold;
          q->response.frequent = std::move(msg.frequent);
        });
    net::PhaseOptions popts;
    popts.name = "reply";
    q->reply_pid = mux.add_phase(q->sid, *q->reply, popts);

    q->ifi->set_on_complete([q](net::PhaseContext& ctx) {
      QueryReplyMsg msg;
      msg.route = q->route;
      msg.frequent = q->ifi->result().frequent;
      q->reply->set_payload(std::move(msg));
      ctx.open_phase(q->reply_pid);
    });
    sessions.push_back(std::move(owned));
  }

  net::Engine engine(overlay, meter);
  engine.set_threads(config_.threads);
  engine.set_fault_model(config_.fault);
  engine.set_obs(obs);
  const std::uint64_t rounds =
      engine.run(mux, config_.max_rounds_per_phase, churn);

  std::vector<FrequentItemsResponse> responses;
  responses.reserve(sessions.size());
  for (const auto& q : sessions) {
    ensure(mux.session_done(q->sid), "query session did not complete");
    responses.push_back(std::move(q->response));
  }

  mux.flush_obs_counters();
  if (stats != nullptr) {
    stats->rounds_total = rounds;
    const double n = static_cast<double>(overlay.num_peers());
    stats->host_report_cost =
        static_cast<double>(meter.total(net::TrafficCategory::kHostReport) -
                            host_before) /
        n;
    const std::vector<net::SessionTraffic> traffic = mux.traffic();
    for (auto& q : sessions) {
      ConcurrentSessionStats ss;
      ss.traffic = traffic[q->sid];
      ss.name = ss.traffic.name;
      ss.threshold = q->threshold;
      ss.netfilter = q->ifi->take_result().stats;
      // Per-session completion round (the round of the gating delivery, as
      // the lineage critical path reports it), not the shared run length.
      ss.netfilter.rounds_total = mux.done_round(q->sid);
      const auto category_cost = [&](net::TrafficCategory c) {
        return static_cast<double>(
                   ss.traffic.bytes[static_cast<std::size_t>(c)]) /
               n;
      };
      ss.netfilter.filtering_cost =
          category_cost(net::TrafficCategory::kFiltering);
      ss.netfilter.dissemination_cost =
          category_cost(net::TrafficCategory::kDissemination);
      ss.netfilter.aggregation_cost =
          category_cost(net::TrafficCategory::kAggregation);
      ss.netfilter.candidates_per_peer =
          static_cast<double>(ss.traffic.bytes[static_cast<std::size_t>(
              net::TrafficCategory::kAggregation)]) /
          static_cast<double>(q->config.wire.item_value_pair()) / n;
      record_netfilter_conformance(q->config, ss.netfilter,
                                   overlay.num_peers());
      stats->sessions.push_back(std::move(ss));
    }
  }
  return responses;
}

std::vector<FrequentItemsResponse> QueryService::serve(
    const std::vector<FrequentItemsRequest>& requests,
    const ItemSource& items, const agg::Hierarchy& hierarchy,
    net::Overlay& overlay, net::TrafficMeter& meter,
    QueryServiceStats* stats) const {
  require(!requests.empty(), "no requests");
  for (const auto& req : requests) {
    require(req.theta > 0.0 && req.theta <= 1.0, "theta must be in (0,1]");
    require(hierarchy.is_member(req.requester),
            "requester must be a hierarchy member");
  }

  // v is needed to turn thetas into absolute thresholds; in deployment the
  // root gets it from the bootstrap aggregate (see tuner.cpp); the byte
  // charge for that is the tuner's, not the query service's.
  Value v_total = 0;
  for (std::uint32_t p = 0; p < items.num_peers(); ++p) {
    if (hierarchy.is_member(PeerId(p))) {
      v_total += items.local_items(PeerId(p)).total();
    }
  }
  require(v_total > 0, "system holds no items");

  // Stage 1: route all requests to the root (one theta per message).
  const std::uint64_t control_at_entry =
      meter.total(net::TrafficCategory::kControl);
  RequestsUp up(hierarchy, requests, config_.wire.aggregate_bytes);
  {
    net::Engine engine(overlay, meter);
    engine.run(up, 10000);
  }
  ensure(up.arrived().size() == requests.size(),
         "not every request reached the root");
  const std::uint64_t control_after_requests =
      meter.total(net::TrafficCategory::kControl);

  // Stage 2: one shared netFilter run at the minimum threshold.
  double min_theta = 1.0;
  for (const auto& req : requests) min_theta = std::min(min_theta, req.theta);
  const auto min_threshold = static_cast<Value>(
      std::ceil(min_theta * static_cast<double>(v_total)));
  const NetFilter netfilter(config_);
  const NetFilterResult shared =
      netfilter.run(items, hierarchy, overlay, meter, min_threshold);

  // Stage 3: per-request filtering of the superset, replies retrace routes.
  std::vector<RepliesDown::Pending> pending;
  pending.reserve(requests.size());
  for (const auto& arrived : up.arrived()) {
    RepliesDown::Pending p;
    p.route = arrived.route;
    p.response.requester = arrived.requester;
    p.response.threshold = static_cast<Value>(
        std::ceil(arrived.theta * static_cast<double>(v_total)));
    p.response.frequent = shared.frequent;
    p.response.frequent.retain([&](ItemId, Value v) {
      return v >= p.response.threshold;
    });
    pending.push_back(std::move(p));
  }
  RepliesDown down(hierarchy, std::move(pending),
                   config_.wire.item_value_pair());
  {
    net::Engine engine(overlay, meter);
    engine.run(down, 10000);
  }
  auto responses = down.take_delivered();
  ensure(responses.size() == requests.size(), "lost replies");
  // Restore the caller's request order.
  std::stable_sort(responses.begin(), responses.end(),
                   [&](const FrequentItemsResponse& a,
                       const FrequentItemsResponse& b) {
                     const auto pos = [&](PeerId id) {
                       for (std::size_t i = 0; i < requests.size(); ++i) {
                         if (requests[i].requester == id) return i;
                       }
                       return requests.size();
                     };
                     return pos(a.requester) < pos(b.requester);
                   });

  if (stats != nullptr) {
    stats->min_threshold = min_threshold;
    stats->netfilter_runs = 1;
    stats->netfilter = shared.stats;
    const double n = static_cast<double>(overlay.num_peers());
    stats->request_cost_per_peer =
        static_cast<double>(control_after_requests - control_at_entry) / n;
    stats->reply_cost_per_peer =
        static_cast<double>(meter.total(net::TrafficCategory::kControl) -
                            control_after_requests) /
        n;
  }
  return responses;
}

}  // namespace nf::core
