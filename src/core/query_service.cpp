#include "core/query_service.h"

#include <algorithm>
#include <any>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <optional>

#include "common/arena.h"
#include "common/error.h"

namespace nf::core {

namespace {

/// Stage 1: every requester's theta travels up the parent chain to the
/// root, recording its route (paper §III-A.1). One protocol instance
/// carries all requests.
class RequestsUp final : public net::Protocol {
 public:
  struct Arrived {
    PeerId requester;
    double theta;
    std::vector<PeerId> route;  // [requester, hop, ...], excluding root
  };

  RequestsUp(const agg::Hierarchy& hierarchy,
             const std::vector<FrequentItemsRequest>& requests,
             std::uint64_t request_bytes)
      : hierarchy_(hierarchy),
        requests_(requests),
        request_bytes_(request_bytes),
        started_(requests.size(), 0) {}

  void on_round(net::Context& ctx) override {
    // The engine calls on_round for every alive peer every round, so each
    // requester originates its own request(s) in round 0. One byte per
    // request (not vector<bool>): only the requester's shard touches its
    // requests' flags, and bytes keep those writes race-free.
    for (std::size_t i = 0; i < requests_.size(); ++i) {
      if (started_[i] != 0 || requests_[i].requester != ctx.self()) continue;
      started_[i] = 1;
      forward(ctx,
              Arrived{requests_[i].requester, requests_[i].theta, {}});
    }
  }

  void on_message(net::Context& ctx, net::Envelope&& env) override {
    auto* msg = std::any_cast<Arrived>(&env.payload);
    ensure(msg != nullptr, "request payload type mismatch");
    forward(ctx, std::move(*msg));
  }

  [[nodiscard]] bool active() const override {
    return arrived_.size() < requests_.size();
  }
  [[nodiscard]] const std::vector<Arrived>& arrived() const {
    return arrived_;
  }

 private:
  void forward(net::Context& ctx, Arrived&& msg) {
    const PeerId self = ctx.self();
    if (self == hierarchy_.root()) {
      arrived_.push_back(std::move(msg));
      return;
    }
    msg.route.push_back(self);
    ctx.send(hierarchy_.upstream(self), net::TrafficCategory::kControl,
             request_bytes_, std::any(std::move(msg)));
  }

  const agg::Hierarchy& hierarchy_;
  const std::vector<FrequentItemsRequest>& requests_;
  std::uint64_t request_bytes_;
  std::vector<std::uint8_t> started_;
  // Root-shard only: requests arrive via on_message at the root, so there
  // is a single writer and the engine barrier publishes it.
  std::vector<Arrived> arrived_;
};

/// Stage 3: per-requester replies retrace the recorded routes.
class RepliesDown final : public net::Protocol {
 public:
  struct Pending {
    std::vector<PeerId> route;  // remaining hops; requester first
    FrequentItemsResponse response;
  };

  RepliesDown(const agg::Hierarchy& hierarchy, std::vector<Pending> replies,
              std::uint64_t pair_bytes)
      : hierarchy_(hierarchy),
        outbox_(std::move(replies)),
        pair_bytes_(pair_bytes),
        expected_(outbox_.size()) {}

  void on_run_start(const net::Overlay& overlay) override {
    if (delivered_.empty()) delivered_.resize(overlay.num_peers());
  }

  void on_round(net::Context& ctx) override {
    if (ctx.self() != hierarchy_.root() || sent_) return;
    sent_ = true;
    for (auto& pending : outbox_) {
      dispatch(ctx, std::move(pending));
    }
    outbox_.clear();
  }

  void on_message(net::Context& ctx, net::Envelope&& env) override {
    auto* msg = std::any_cast<Pending>(&env.payload);
    ensure(msg != nullptr, "reply payload type mismatch");
    dispatch(ctx, std::move(*msg));
  }

  [[nodiscard]] bool active() const override {
    return delivered_count_.load(std::memory_order_relaxed) < expected_;
  }
  /// Delivered responses in requester id order (per-requester arrival
  /// order within a requester); the caller re-sorts by request position.
  [[nodiscard]] std::vector<FrequentItemsResponse> take_delivered() {
    std::vector<FrequentItemsResponse> out;
    for (auto& per_peer : delivered_) {
      for (auto& response : per_peer) out.push_back(std::move(response));
    }
    return out;
  }

 private:
  void dispatch(net::Context& ctx, Pending&& pending) {
    if (pending.route.empty()) {
      ensure(ctx.self() == pending.response.requester, "reply misrouted");
      // Replies land in the requester's own arena slot, so concurrent
      // arrivals at requesters in different shards never share state.
      delivered_[ctx.self()].push_back(std::move(pending.response));
      delivered_count_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const PeerId next = pending.route.back();
    pending.route.pop_back();
    const std::uint64_t bytes =
        pending.response.frequent.size() * pair_bytes_;
    ctx.send(next, net::TrafficCategory::kControl, bytes,
             std::any(std::move(pending)));
  }

  const agg::Hierarchy& hierarchy_;
  std::vector<Pending> outbox_;
  std::uint64_t pair_bytes_;
  std::size_t expected_;
  bool sent_ = false;
  PeerArena<std::vector<FrequentItemsResponse>> delivered_;
  std::atomic<std::size_t> delivered_count_{0};
};

}  // namespace

std::vector<FrequentItemsResponse> QueryService::serve(
    const std::vector<FrequentItemsRequest>& requests,
    const ItemSource& items, const agg::Hierarchy& hierarchy,
    net::Overlay& overlay, net::TrafficMeter& meter,
    QueryServiceStats* stats) const {
  require(!requests.empty(), "no requests");
  for (const auto& req : requests) {
    require(req.theta > 0.0 && req.theta <= 1.0, "theta must be in (0,1]");
    require(hierarchy.is_member(req.requester),
            "requester must be a hierarchy member");
  }

  // v is needed to turn thetas into absolute thresholds; in deployment the
  // root gets it from the bootstrap aggregate (see tuner.cpp); the byte
  // charge for that is the tuner's, not the query service's.
  Value v_total = 0;
  for (std::uint32_t p = 0; p < items.num_peers(); ++p) {
    if (hierarchy.is_member(PeerId(p))) {
      v_total += items.local_items(PeerId(p)).total();
    }
  }
  require(v_total > 0, "system holds no items");

  // Stage 1: route all requests to the root (one theta per message).
  const std::uint64_t control_at_entry =
      meter.total(net::TrafficCategory::kControl);
  RequestsUp up(hierarchy, requests, config_.wire.aggregate_bytes);
  {
    net::Engine engine(overlay, meter);
    engine.run(up, 10000);
  }
  ensure(up.arrived().size() == requests.size(),
         "not every request reached the root");
  const std::uint64_t control_after_requests =
      meter.total(net::TrafficCategory::kControl);

  // Stage 2: one shared netFilter run at the minimum threshold.
  double min_theta = 1.0;
  for (const auto& req : requests) min_theta = std::min(min_theta, req.theta);
  const auto min_threshold = static_cast<Value>(
      std::ceil(min_theta * static_cast<double>(v_total)));
  const NetFilter netfilter(config_);
  const NetFilterResult shared =
      netfilter.run(items, hierarchy, overlay, meter, min_threshold);

  // Stage 3: per-request filtering of the superset, replies retrace routes.
  std::vector<RepliesDown::Pending> pending;
  pending.reserve(requests.size());
  for (const auto& arrived : up.arrived()) {
    RepliesDown::Pending p;
    p.route = arrived.route;
    p.response.requester = arrived.requester;
    p.response.threshold = static_cast<Value>(
        std::ceil(arrived.theta * static_cast<double>(v_total)));
    p.response.frequent = shared.frequent;
    p.response.frequent.retain([&](ItemId, Value v) {
      return v >= p.response.threshold;
    });
    pending.push_back(std::move(p));
  }
  RepliesDown down(hierarchy, std::move(pending),
                   config_.wire.item_value_pair());
  {
    net::Engine engine(overlay, meter);
    engine.run(down, 10000);
  }
  auto responses = down.take_delivered();
  ensure(responses.size() == requests.size(), "lost replies");
  // Restore the caller's request order.
  std::stable_sort(responses.begin(), responses.end(),
                   [&](const FrequentItemsResponse& a,
                       const FrequentItemsResponse& b) {
                     const auto pos = [&](PeerId id) {
                       for (std::size_t i = 0; i < requests.size(); ++i) {
                         if (requests[i].requester == id) return i;
                       }
                       return requests.size();
                     };
                     return pos(a.requester) < pos(b.requester);
                   });

  if (stats != nullptr) {
    stats->min_threshold = min_threshold;
    stats->netfilter_runs = 1;
    stats->netfilter = shared.stats;
    const double n = static_cast<double>(overlay.num_peers());
    stats->request_cost_per_peer =
        static_cast<double>(control_after_requests - control_at_entry) / n;
    stats->reply_cost_per_peer =
        static_cast<double>(meter.total(net::TrafficCategory::kControl) -
                            control_after_requests) /
        n;
  }
  return responses;
}

}  // namespace nf::core
