// Setting netFilter optimally in practice (paper §IV-E).
//
// g_opt and f_opt (Formulae 3, 6) depend on v̄, v̄_light, n and r — none of
// which the root knows. The tuner obtains them the way the paper
// prescribes: v and N by trivial one-value-per-peer aggregates, the rest by
// random-branch sampling (agg::sample_estimates), then evaluates the
// formulae. The sampling traffic is charged so experiments can report the
// all-in cost of self-tuning.
#pragma once

#include "agg/hierarchy.h"
#include "agg/sampling.h"
#include "common/item_source.h"
#include "core/config.h"

namespace nf::core {

struct TunedSetting {
  std::uint32_t num_groups = 0;   ///< chosen g
  std::uint32_t num_filters = 0;  ///< chosen f
  Value threshold = 0;            ///< t = θ·v
  Value v_total = 0;              ///< v, from the bootstrap aggregate
  agg::SampleEstimates estimates;
  /// Cost-model predictions for the chosen (g, f) under config.link:
  /// barriered round count (phase waves over the bottleneck link) and
  /// per-peer bytes (Formula 1 with the fp2 estimate). Under infinite
  /// capacity predicted_rounds is the pure 3-wave depth term.
  double predicted_rounds = 0.0;
  double predicted_bytes = 0.0;

  /// A ready-to-run config carrying the tuned g and f.
  [[nodiscard]] NetFilterConfig to_config(const NetFilterConfig& base) const {
    NetFilterConfig c = base;
    c.num_groups = num_groups;
    c.num_filters = num_filters;
    return c;
  }
};

struct TunerConfig {
  agg::SamplingConfig sampling{};
  WireSizes wire{};
  /// The additive constant c of Formula 3.
  double g_constant = 20.0;
  /// Clamp bounds for the chosen parameters.
  std::uint32_t min_groups = 2;
  std::uint32_t max_groups = 1u << 20;
  std::uint32_t max_filters = 16;
  /// Link model the tuned run will execute under. The default (infinite
  /// capacity) keeps the paper's closed-form Formulae 3/6; a
  /// capacity-limited model switches the tuner to a grid search that
  /// minimizes (predicted rounds, predicted bytes) lexicographically —
  /// under congestion a slightly larger filter that fits the bottleneck
  /// link beats the pure byte optimum that queues for extra rounds.
  net::LinkModel link{};
};

/// Computes v by a scalar aggregate over the hierarchy (charged sa bytes per
/// non-root member, category kSampling), runs branch sampling, and applies
/// Formulae 3 and 6. `theta` in (0, 1].
[[nodiscard]] TunedSetting tune(const ItemSource& items,
                                const agg::Hierarchy& hierarchy,
                                double theta, const TunerConfig& config,
                                net::TrafficMeter* meter);

}  // namespace nf::core
