#include "core/gossip_netfilter.h"

#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "agg/gossip.h"
#include "common/arena.h"
#include "common/error.h"
#include "net/flood.h"
#include "obs/context.h"

namespace nf::core {

namespace {

/// Push-sum over sparse <item, mass> maps. Push-sum only needs a vector
/// space — halving and adding — which ValueMap<ItemId, double> provides;
/// the support union emerges as shares mix. The hidden `count` coordinate
/// (1 at the initiator) turns averages into sums, as in agg::PushSumGossip.
/// Shard-safe the same way: per-peer arenas, round counting on the engine
/// thread via on_round_begin.
class MapPushSum final : public net::Protocol {
 public:
  using Map = ValueMap<ItemId, double>;

  MapPushSum(std::vector<Map> initial, PeerId initiator,
             const WireSizes& wire, std::uint32_t rounds, std::uint64_t seed,
             obs::Context* obs = nullptr)
      : x_(std::move(initial)),
        wire_(wire),
        obs_(obs),
        rounds_(rounds),
        num_peers_(x_.size()) {
    count_.assign(num_peers_, 0.0);
    count_[initiator.value()] = 1.0;
    w_.assign(num_peers_, 1.0);
    rng_ = fork_streams(seed, num_peers_);
    pending_parents_.assign(num_peers_, {});
  }

  void on_round_begin(std::uint64_t /*round*/) override {
    ++rounds_done_;
    if (obs_ != nullptr) {
      obs_->tracer.record(obs::EventKind::kGossipRound, "gossip.round",
                          obs::kNoPeer, rounds_done_);
    }
  }

  void on_round(net::Context& ctx) override {
    const PeerId self = ctx.self();
    if (rounds_done_ > rounds_) return;

    const auto targets = ctx.overlay().alive_neighbors(self);
    if (targets.empty()) return;
    const PeerId to = targets[rng_[self.value()].below(targets.size())];

    Share out;
    Map& x = x_[self.value()];
    // Halve in place and build the outgoing copy in one pass.
    std::vector<std::pair<ItemId, double>> pairs;
    pairs.reserve(x.size());
    for (const auto& [id, v] : x) pairs.emplace_back(id, v * 0.5);
    out.x = Map::from_unsorted(pairs);
    x = Map::from_unsorted(std::move(pairs));
    out.count = count_[self.value()] * 0.5;
    count_[self.value()] *= 0.5;
    out.w = w_[self.value()] * 0.5;
    w_[self.value()] *= 0.5;

    const std::uint64_t bytes =
        out.x.size() * wire_.item_value_pair() + 2 * wire_.aggregate_bytes;
    if (obs_ != nullptr) {
      obs_->registry.counter("gossip/shares").add(1);
      obs_->registry.histogram("gossip/share_bytes").observe(bytes);
    }
    // Shares merged since the last send are causal parents of this one.
    std::vector<obs::LineageId>& parents = pending_parents_[self.value()];
    ctx.send(to, net::TrafficCategory::kGossip, bytes,
             std::any(std::move(out)),
             std::span<const obs::LineageId>(parents));
    parents.clear();
  }

  void on_message(net::Context& ctx, net::Envelope&& env) override {
    auto* share = std::any_cast<Share>(&env.payload);
    ensure(share != nullptr, "map push-sum payload type mismatch");
    const PeerId self = ctx.self();
    pending_parents_[self.value()].push_back(ctx.cause());
    x_[self.value()].merge_add(share->x);
    count_[self.value()] += share->count;
    w_[self.value()] += share->w;
  }

  [[nodiscard]] bool active() const override {
    return rounds_done_ < rounds_;
  }

  /// Estimated global <id, value> sums at `p`.
  [[nodiscard]] ValueMap<ItemId, double> estimates(PeerId p) const {
    ValueMap<ItemId, double> out;
    const double cnt = count_[p.value()];
    if (cnt <= 0.0) return out;
    for (const auto& [id, v] : x_[p.value()]) {
      out.add(id, v / cnt);
    }
    return out;
  }

 private:
  struct Share {
    Map x;
    double count;
    double w;
  };

  PeerArena<Map> x_;
  PeerArena<double> count_;
  PeerArena<double> w_;
  PeerArena<Rng> rng_;
  PeerArena<std::vector<obs::LineageId>> pending_parents_;
  WireSizes wire_;
  obs::Context* obs_ = nullptr;
  std::uint32_t rounds_;
  std::uint32_t num_peers_;
  std::uint32_t rounds_done_{0};
};

}  // namespace

GossipNetFilter::GossipNetFilter(GossipNetFilterConfig config)
    : config_(config),
      bank_(config.filter_seed, config.num_filters, config.num_groups) {
  config_.validate();
}

GossipNetFilterResult GossipNetFilter::run(
    const ItemSource& items, net::Overlay& overlay, PeerId initiator,
    net::TrafficMeter& meter, Value threshold,
    const ValueMap<ItemId, Value>* oracle) const {
  require(threshold >= 1, "threshold must be >= 1");
  require(overlay.is_alive(initiator), "initiator must be alive");
  const std::uint32_t g = config_.num_groups;
  const std::uint32_t f = config_.num_filters;
  const auto num_peers = overlay.num_peers();
  GossipNetFilterResult result;
  result.stats.threshold = threshold;

  const double prune_bar =
      static_cast<double>(threshold) * (1.0 - config_.slack);

  // ---- Phase 1: push-sum over the f×g group aggregates. ----
  std::vector<std::vector<double>> initial;
  initial.reserve(num_peers);
  for (std::uint32_t p = 0; p < num_peers; ++p) {
    std::vector<double> x(static_cast<std::size_t>(f) * g, 0.0);
    if (overlay.is_alive(PeerId(p))) {
      for (const auto& [id, value] : items.local_items(PeerId(p))) {
        for (std::uint32_t i = 0; i < f; ++i) {
          x[static_cast<std::size_t>(i) * g +
            bank_.filter(i).group_of(id).value()] +=
              static_cast<double>(value);
        }
      }
    }
    initial.push_back(std::move(x));
  }
  const std::uint64_t gossip_before =
      meter.total(net::TrafficCategory::kGossip);
  agg::PushSumGossip::Config p1;
  p1.rounds = config_.phase1_rounds;
  p1.seed = config_.seed;
  p1.bytes_per_coordinate = config_.wire.aggregate_bytes;
  p1.weight_bytes = config_.wire.aggregate_bytes;
  p1.obs = config_.obs;
  agg::PushSumGossip phase1(std::move(initial), p1);
  {
    // Each stage gets its own engine: leftover in-flight shares (or, under
    // the fault model, pending retransmissions) must never be delivered
    // into the next stage's protocol.
    obs::ScopedPhase span(config_.obs, "gossip.phase1");
    net::Engine engine(overlay, meter);
    engine.set_threads(config_.threads);
    engine.set_fault_model(config_.fault);
    engine.set_obs(config_.obs);
    result.stats.rounds +=
        engine.run(phase1, std::uint64_t{p1.rounds} * 4 + 10);
  }
  result.stats.phase1_cost =
      static_cast<double>(meter.total(net::TrafficCategory::kGossip) -
                          gossip_before) /
      num_peers;

  // The initiator prunes with slack against its own estimates.
  std::vector<std::vector<bool>> heavy(f, std::vector<bool>(g, false));
  std::uint64_t heavy_total = 0;
  for (std::uint32_t i = 0; i < f; ++i) {
    for (std::uint32_t j = 0; j < g; ++j) {
      const double est = phase1.estimate_sum(
          initiator, static_cast<std::size_t>(i) * g + j);
      if (est >= prune_bar) {
        heavy[i][j] = true;
        ++heavy_total;
      }
    }
  }
  result.stats.heavy_groups_total = heavy_total;

  // ---- Dissemination: flood the heavy bitmap. ----
  const std::uint64_t flood_before =
      meter.total(net::TrafficCategory::kDissemination);
  std::vector<ValueMap<ItemId, double>> partial(num_peers);
  net::Flood<std::vector<std::vector<bool>>> flood(
      initiator, heavy, heavy_total * config_.wire.group_id_bytes,
      net::TrafficCategory::kDissemination, config_.flood_ttl,
      [&](PeerId p, const std::vector<std::vector<bool>>& bitmap) {
        if (!overlay.is_alive(p)) return;
        for (const auto& [id, value] : items.local_items(p)) {
          bool passes = true;
          for (std::uint32_t i = 0; i < f; ++i) {
            if (!bitmap[i][bank_.filter(i).group_of(id).value()]) {
              passes = false;
              break;
            }
          }
          if (passes) {
            partial[p.value()].add(id, static_cast<double>(value));
          }
        }
      });
  {
    obs::ScopedPhase span(config_.obs, "gossip.flood");
    net::Engine engine(overlay, meter);
    engine.set_threads(config_.threads);
    engine.set_fault_model(config_.fault);
    engine.set_obs(config_.obs);
    result.stats.rounds +=
        engine.run(flood, std::uint64_t{config_.flood_ttl} * 4 + 10);
  }
  result.stats.flood_cost =
      static_cast<double>(meter.total(net::TrafficCategory::kDissemination) -
                          flood_before) /
      num_peers;

  // ---- Phase 2: push-sum over the sparse candidate maps. ----
  const std::uint64_t phase2_before =
      meter.total(net::TrafficCategory::kGossip);
  MapPushSum phase2(std::move(partial), initiator, config_.wire,
                    config_.phase2_rounds, config_.seed ^ 0xABCDEFull,
                    config_.obs);
  {
    obs::ScopedPhase span(config_.obs, "gossip.phase2");
    net::Engine engine(overlay, meter);
    engine.set_threads(config_.threads);
    engine.set_fault_model(config_.fault);
    engine.set_obs(config_.obs);
    result.stats.rounds +=
        engine.run(phase2, std::uint64_t{config_.phase2_rounds} * 4 + 10);
  }
  result.stats.phase2_cost =
      static_cast<double>(meter.total(net::TrafficCategory::kGossip) -
                          phase2_before) /
      num_peers;

  const auto estimates = phase2.estimates(initiator);
  result.stats.num_candidates = estimates.size();
  for (const auto& [id, est] : estimates) {
    if (est >= prune_bar) {
      result.reported.add(
          id, static_cast<Value>(std::llround(std::max(est, 0.0))));
    }
  }
  result.stats.num_reported = result.reported.size();

  if (oracle != nullptr) {
    for (const auto& [id, v] : result.reported) {
      if (!oracle->contains(id)) {
        ++result.stats.false_positives;
      } else {
        const auto truth = static_cast<double>(oracle->value_of(id));
        result.stats.max_value_rel_error =
            std::max(result.stats.max_value_rel_error,
                     std::abs(static_cast<double>(v) - truth) / truth);
      }
    }
    for (const auto& [id, v] : *oracle) {
      if (!result.reported.contains(id)) ++result.stats.false_negatives;
    }
  }
  return result;
}

}  // namespace nf::core
