// Multi-request serving (paper §III-A.1).
//
// Several peers may concurrently request frequent-item sets with different
// thresholds. Two strategies:
//
// serve() — the paper's sharing optimisation: all requests are forwarded to
// the root, netFilter runs ONCE with the minimum requested threshold, and
// each requester receives the superset filtered at its own threshold.
// Forwarding and reply traffic is charged so the sharing win is measurable.
//
// serve_concurrent() — independent queries that cannot share a run (they
// may use distinct thresholds AND distinct filter banks) multiplex as N
// full IFI sessions over a single engine run via the session runtime
// (net/session.h): request -> announce -> filtering -> dissemination ->
// aggregation -> reply per session, all pipelined per peer, with
// per-session trace tracks, traffic tallies and conformance runs so
// nf-inspect can attribute bytes per query.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agg/hierarchy.h"
#include "common/item_source.h"
#include "core/netfilter.h"
#include "net/churn.h"
#include "net/session.h"

namespace nf::core {

struct FrequentItemsRequest {
  PeerId requester;
  double theta;  ///< requested threshold ratio
};

struct FrequentItemsResponse {
  PeerId requester;
  Value threshold = 0;                 ///< t for this requester
  ValueMap<ItemId, Value> frequent;    ///< exact result at their threshold
};

struct QueryServiceStats {
  Value min_threshold = 0;       ///< the single threshold netFilter ran at
  std::uint64_t netfilter_runs = 1;
  NetFilterStats netfilter;      ///< stats of the one shared run
  double request_cost_per_peer = 0.0;  ///< forwarding requests to the root
  double reply_cost_per_peer = 0.0;    ///< shipping per-request results back
};

/// One independent query for serve_concurrent. Zero-valued overrides fall
/// back to the service's NetFilterConfig, so plain {requester, theta}
/// requests share the default filter bank while still running as separate
/// sessions.
struct ConcurrentRequest {
  PeerId requester;
  double theta;                    ///< requested threshold ratio
  std::uint32_t num_filters = 0;   ///< per-query f; 0 = service default
  std::uint32_t num_groups = 0;    ///< per-query g; 0 = service default
  std::uint64_t filter_seed = 0;   ///< per-query seed; 0 = service default
};

/// Per-session accounting of one multiplexed query ("q<i>" in trace tracks,
/// obs counters and nf-inspect breakdowns).
struct ConcurrentSessionStats {
  std::string name;          ///< session name, "q<i>"
  Value threshold = 0;
  /// Counting fields from the session's own run; phase costs are computed
  /// from the session's traffic tally (not the shared meter), so concurrent
  /// sessions don't bleed into each other's numbers. rounds_total is this
  /// session's completion round (SessionMux::done_round — the round of the
  /// gating delivery, matching the lineage critical path's final hop);
  /// per-phase round splits live in the trace spans.
  NetFilterStats netfilter;
  net::SessionTraffic traffic;  ///< per-category bytes/messages
};

struct ConcurrentQueryStats {
  std::uint64_t rounds_total = 0;    ///< the single engine run all sessions shared
  double host_report_cost = 0.0;     ///< charged once, shared by all sessions
  std::vector<ConcurrentSessionStats> sessions;
};

class QueryService {
 public:
  explicit QueryService(NetFilterConfig config) : config_(config) {}

  /// Serves all requests with one shared netFilter run. The request with
  /// the smallest theta defines the run threshold; every response is exact
  /// for its own theta because filtering a superset of frequent items by a
  /// larger threshold loses nothing.
  [[nodiscard]] std::vector<FrequentItemsResponse> serve(
      const std::vector<FrequentItemsRequest>& requests,
      const ItemSource& items, const agg::Hierarchy& hierarchy,
      net::Overlay& overlay, net::TrafficMeter& meter,
      QueryServiceStats* stats = nullptr) const;

  /// Runs every request as its own full IFI session — its own threshold and
  /// (optionally) its own filter bank — multiplexed over ONE engine run.
  /// Responses come back in request order and are bit-identical to running
  /// the same queries back-to-back. `churn` may fail/join peers mid-run;
  /// peers participating in a query (hierarchy members, requesters) must
  /// stay alive or the run cannot complete. Faulty links come from the
  /// config's fault model as usual.
  [[nodiscard]] std::vector<FrequentItemsResponse> serve_concurrent(
      const std::vector<ConcurrentRequest>& requests, const ItemSource& items,
      const agg::Hierarchy& hierarchy, net::Overlay& overlay,
      net::TrafficMeter& meter, ConcurrentQueryStats* stats = nullptr,
      const net::ChurnSchedule* churn = nullptr) const;

 private:
  NetFilterConfig config_;
};

}  // namespace nf::core
