// Multi-request sharing (paper §III-A.1).
//
// Several peers may concurrently request frequent-item sets with different
// thresholds. Instead of one hierarchy + one netFilter run per request, all
// requests are forwarded to the root, netFilter runs ONCE with the minimum
// requested threshold, and each requester receives the superset filtered at
// its own threshold. Forwarding and reply traffic is charged so the sharing
// win is measurable.
#pragma once

#include <cstdint>
#include <vector>

#include "agg/hierarchy.h"
#include "common/item_source.h"
#include "core/netfilter.h"

namespace nf::core {

struct FrequentItemsRequest {
  PeerId requester;
  double theta;  ///< requested threshold ratio
};

struct FrequentItemsResponse {
  PeerId requester;
  Value threshold = 0;                 ///< t for this requester
  ValueMap<ItemId, Value> frequent;    ///< exact result at their threshold
};

struct QueryServiceStats {
  Value min_threshold = 0;       ///< the single threshold netFilter ran at
  std::uint64_t netfilter_runs = 1;
  NetFilterStats netfilter;      ///< stats of the one shared run
  double request_cost_per_peer = 0.0;  ///< forwarding requests to the root
  double reply_cost_per_peer = 0.0;    ///< shipping per-request results back
};

class QueryService {
 public:
  explicit QueryService(NetFilterConfig config) : config_(config) {}

  /// Serves all requests with one shared netFilter run. The request with
  /// the smallest theta defines the run threshold; every response is exact
  /// for its own theta because filtering a superset of frequent items by a
  /// larger threshold loses nothing.
  [[nodiscard]] std::vector<FrequentItemsResponse> serve(
      const std::vector<FrequentItemsRequest>& requests,
      const ItemSource& items, const agg::Hierarchy& hierarchy,
      net::Overlay& overlay, net::TrafficMeter& meter,
      QueryServiceStats* stats = nullptr) const;

 private:
  NetFilterConfig config_;
};

}  // namespace nf::core
