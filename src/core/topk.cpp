#include "core/topk.h"

#include <algorithm>

#include "common/error.h"

namespace nf::core {

TopKResult TopK::run(const ItemSource& items,
                     const agg::Hierarchy& hierarchy, net::Overlay& overlay,
                     net::TrafficMeter& meter, std::uint32_t k) const {
  require(k >= 1, "k must be at least 1");

  Value v_total = 0;
  for (std::uint32_t p = 0; p < items.num_peers(); ++p) {
    if (hierarchy.is_member(PeerId(p))) {
      v_total += items.local_items(PeerId(p)).total();
    }
  }
  require(v_total > 0, "system holds no items");

  TopKResult result;
  // At most k items can each hold >= v/k of the mass, so this start never
  // over-collects; halving from there converges in O(log(v/k)) runs.
  Value t = std::max<Value>(1, v_total / k);
  ValueMap<ItemId, Value> frequent;
  while (true) {
    const NetFilterResult run_result =
        netfilter_.run(items, hierarchy, overlay, meter, t);
    ++result.stats.netfilter_runs;
    result.stats.total_cost += run_result.stats.total_cost();
    frequent = run_result.frequent;
    result.stats.final_threshold = t;
    if (frequent.size() >= k || t == 1) break;
    t = std::max<Value>(1, t / 2);
  }

  // Any item outside IFI(t) has value < t <= value of every item inside,
  // so sorting the final run's output yields the exact global top-k.
  result.items.assign(frequent.begin(), frequent.end());
  std::sort(result.items.begin(), result.items.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (result.items.size() > k) result.items.resize(k);
  return result;
}

}  // namespace nf::core
