// netFilter — exact identification of frequent items in P2P systems
// (paper §III).
//
// Phase 1, candidate filtering: every peer folds its local item set into
// f×g item-group aggregates (one g-sized vector per hash filter) and the
// vectors are summed up the hierarchy. Item groups whose aggregate is below
// the threshold are light; an item survives as a candidate only if all f of
// its groups are heavy.
//
// Phase 2, candidate verification: the root multicasts the heavy group ids
// down the hierarchy; each peer materializes the candidates visible in its
// local set (Algorithm 2) and exact <id, value> pairs are merged bottom-up.
// Candidates whose exact global value clears the threshold are the answer —
// no false positives, no false negatives, exact values.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "agg/hierarchy.h"
#include "common/arena.h"
#include "common/hashing.h"
#include "common/item_source.h"
#include "core/config.h"
#include "net/codec.h"
#include "net/engine.h"

namespace nf::core {

/// The heavy item groups that survive phase 1: one bitmap per filter.
struct HeavyGroupSet {
  std::vector<std::vector<bool>> heavy;  ///< [filter][group]

  /// Σ_f w_f — total heavy groups across filters (what Fig 5(a)/6(a) plot).
  [[nodiscard]] std::uint64_t total() const;

  /// True iff every one of the item's f groups is heavy.
  [[nodiscard]] bool passes(ItemId item, const FilterBank& bank) const;
};

/// Arena-backed Phase-2 candidate rows: peer p's materialized candidates
/// occupy one contiguous span of a shared pair slab instead of N little
/// maps. Rows are written in place on the dissemination receive — sorted
/// order is inherited from the peer's local item map, so adopting a row
/// into a LocalItems skips the sort — and distinct peers own disjoint
/// spans, which preserves the sharded engine's disjoint-writer contract
/// (common/arena.h). Capacity is bounded by the local item counts, so a
/// warmed instance never reallocates across runs.
class CandidateRows {
 public:
  /// Sizes every row to its upper bound (the peer's local item count).
  void configure(const ItemSource& items) {
    const std::uint32_t n = items.num_peers();
    offsets_.assign(std::size_t{n} + 1, 0);
    for (std::uint32_t p = 0; p < n; ++p) {
      offsets_[p + 1] = offsets_[p] + items.local_items(PeerId(p)).size();
    }
    slab_.resize(offsets_[n]);
    counts_.assign(n, 0);
  }

  /// Writes the entries of `local` that pass `heavy` under `bank` into
  /// p's row (runs on the shard that owns p).
  void materialize(PeerId p, const LocalItems& local,
                   const HeavyGroupSet& heavy, const FilterBank& bank) {
    std::size_t w = offsets_[p.value()];
    for (const auto& [id, value] : local) {
      if (heavy.passes(id, bank)) slab_[w++] = {id, value};
    }
    counts_[p] = static_cast<std::uint32_t>(w - offsets_[p.value()]);
  }

  /// The row as a ready-to-merge map (sorted adoption, no re-sort).
  [[nodiscard]] LocalItems take(PeerId p) const {
    return LocalItems::from_sorted(
        std::span<const LocalItems::value_type>(slab_).subspan(
            offsets_[p.value()], counts_[p]));
  }

 private:
  std::vector<std::size_t> offsets_;  ///< per-peer row starts, [n]+1
  std::vector<LocalItems::value_type> slab_;
  PeerArena<std::uint32_t> counts_;
};

struct NetFilterStats {
  std::uint64_t threshold = 0;             ///< t actually used
  std::uint64_t heavy_groups_total = 0;    ///< Σ_f w_f
  std::uint64_t num_candidates = 0;        ///< |candidate set| at the root
  std::uint64_t num_frequent = 0;          ///< true frequent items reported
  std::uint64_t num_false_positives = 0;   ///< candidates - frequent (fp)
  double candidates_per_peer = 0.0;        ///< avg <id,value> pairs sent/peer
  std::uint64_t rounds_filtering = 0;
  std::uint64_t rounds_verification = 0;
  /// Engine rounds for the whole query. Barriered orchestration pays the
  /// phases back to back (filtering + verification); the pipelined session
  /// overlaps them, so rounds_total is strictly smaller there — the win the
  /// fig5 bench reports. In pipelined runs rounds_filtering counts until
  /// the root completed filtering and rounds_verification is the remainder
  /// (phase 2 already ran at the leaves during it).
  std::uint64_t rounds_total = 0;

  // Per-peer average communication cost in bytes (the paper's metric),
  // split the way Figures 5(b)/6(b) plot it.
  double filtering_cost = 0.0;
  double dissemination_cost = 0.0;
  double aggregation_cost = 0.0;
  double host_report_cost = 0.0;

  /// The paper's "total cost": the lumped sum of the three phase costs.
  [[nodiscard]] double total_cost() const {
    return filtering_cost + dissemination_cost + aggregation_cost;
  }
};

struct NetFilterResult {
  /// IFI(A, t): exact item ids and exact global values.
  ValueMap<ItemId, Value> frequent;
  NetFilterStats stats;
};

class NetFilter {
 public:
  explicit NetFilter(NetFilterConfig config);

  /// Runs both phases over `hierarchy` and returns the exact frequent-item
  /// set. `items` must cover every peer of the overlay; traffic is charged
  /// to `meter`. `threshold` must be >= 1.
  [[nodiscard]] NetFilterResult run(const ItemSource& items,
                                    const agg::Hierarchy& hierarchy,
                                    net::Overlay& overlay,
                                    net::TrafficMeter& meter,
                                    Value threshold) const;

  /// Phase 1 only (exposed for tests and extensions): returns the heavy
  /// group bitmap and fills the filtering stats fields.
  [[nodiscard]] HeavyGroupSet filter_candidates(const ItemSource& items,
                                                const agg::Hierarchy& hierarchy,
                                                net::Overlay& overlay,
                                                net::TrafficMeter& meter,
                                                Value threshold,
                                                NetFilterStats* stats) const;

  /// Phase 2 only: candidate materialization + verification given the
  /// heavy group bitmap.
  [[nodiscard]] NetFilterResult verify_candidates(
      const ItemSource& items, const agg::Hierarchy& hierarchy,
      net::Overlay& overlay, net::TrafficMeter& meter, Value threshold,
      const HeavyGroupSet& heavy, NetFilterStats stats) const;

  /// The f×g group aggregates of one local item set — what each peer
  /// contributes in phase 1. Layout: filter-major, aggregates[i*g + group].
  [[nodiscard]] std::vector<Value> local_group_aggregates(
      const LocalItems& items) const;

  /// Zero-allocation variant: accumulates the aggregates into `out`
  /// (zero-filled first), which must have size f*g. This is what the flat
  /// filtering convergecast folds straight into its SoA row.
  void local_group_aggregates_into(const LocalItems& items,
                                   std::span<Value> out) const;

  /// The candidates visible in one local item set given the heavy bitmap —
  /// what each peer materializes in phase 2 (Algorithm 2, line 2).
  [[nodiscard]] LocalItems materialize_candidates(
      const LocalItems& items, const HeavyGroupSet& heavy) const;

  [[nodiscard]] const FilterBank& bank() const { return bank_; }
  [[nodiscard]] const NetFilterConfig& config() const { return config_; }

 private:
  /// The classic orchestration: three engine runs with global barriers
  /// between the phases (config.barriered). `items` is the effective
  /// (host-report-folded) source.
  [[nodiscard]] NetFilterResult run_barriered(const ItemSource& items,
                                              const agg::Hierarchy& hierarchy,
                                              net::Overlay& overlay,
                                              net::TrafficMeter& meter,
                                              Value threshold) const;

  /// One session on one engine run (the default): a peer enters phase 2 the
  /// moment the heavy multicast reaches it — identical result, strictly
  /// fewer engine rounds (see core/ifi_session.h).
  [[nodiscard]] NetFilterResult run_pipelined(const ItemSource& items,
                                              const agg::Hierarchy& hierarchy,
                                              net::Overlay& overlay,
                                              net::TrafficMeter& meter,
                                              Value threshold) const;

  NetFilterConfig config_;
  FilterBank bank_;
};

/// Wire form of a heavy-group bitmap: the set bits flattened to sorted ids
/// (filter-major, i*g + group) and delta-coded (net::encode_sorted_ids).
/// This is what the flat dissemination multicast ships; the flat-field cost
/// model still charges total() * group_id_bytes per message.
[[nodiscard]] net::Bytes encode_heavy_groups(const HeavyGroupSet& heavy);
[[nodiscard]] HeavyGroupSet decode_heavy_groups(
    std::span<const std::uint8_t> in, std::uint32_t num_filters,
    std::uint32_t num_groups);

/// Records one Formula-1 conformance run into config.obs (no-op when null):
/// predicted per-peer phase costs from the analytic model vs the costs in
/// `stats`. Only configurations the closed-form model prices are judged —
/// flat wire fields on a loss-free network. Public so QueryService can
/// record one run per multiplexed session from per-session traffic tallies.
///
/// When `hierarchy` is given and the run was barriered, the report also
/// carries advisory `rounds.*` checks: predicted round counts from the
/// queueing cost model (cost_model::phase_rounds over the per-level
/// bottleneck link capacities of config.link) vs the measured
/// rounds_filtering / rounds_verification / rounds_total. Pipelined runs
/// overlap phases, so the per-phase wave model does not apply there.
void record_netfilter_conformance(const NetFilterConfig& config,
                                  const NetFilterStats& stats,
                                  std::uint32_t num_peers,
                                  const agg::Hierarchy* hierarchy = nullptr);

}  // namespace nf::core
