#include "core/naive.h"

#include "agg/convergecast.h"
#include "common/error.h"
#include "core/host_report.h"

namespace nf::core {

NaiveResult NaiveCollector::run(const ItemSource& items,
                                const agg::Hierarchy& hierarchy,
                                net::Overlay& overlay,
                                net::TrafficMeter& meter,
                                Value threshold) const {
  require(threshold >= 1, "threshold must be >= 1");
  const std::uint64_t before = meter.total(net::TrafficCategory::kNaive);
  const EffectiveItems effective(items, hierarchy, overlay, wire_, &meter);

  agg::Convergecast<LocalItems> cast(
      hierarchy, net::TrafficCategory::kNaive,
      /*local=*/[&](PeerId p) { return effective.local_items(p); },
      /*merge=*/
      [](LocalItems& acc, LocalItems&& child) { acc.merge_add(child); },
      /*wire_bytes=*/
      [this](const LocalItems& m) {
        return m.size() * wire_.item_value_pair();
      });

  net::Engine engine(overlay, meter);
  engine.set_fault_model(fault_);
  const std::uint64_t rounds = engine.run(cast, 100000);
  ensure(cast.complete(), "naive aggregation did not complete");

  NaiveResult result;
  result.frequent = cast.result();
  result.frequent.retain([&](ItemId, Value v) { return v >= threshold; });

  const std::uint64_t bytes =
      meter.total(net::TrafficCategory::kNaive) - before;
  result.stats.cost_per_peer =
      static_cast<double>(bytes) / static_cast<double>(overlay.num_peers());
  result.stats.items_per_peer =
      static_cast<double>(bytes) /
      static_cast<double>(wire_.item_value_pair()) /
      static_cast<double>(overlay.num_peers());
  result.stats.rounds = rounds;
  result.stats.num_frequent = result.frequent.size();
  return result;
}

}  // namespace nf::core
