// Partitioned netFilter over replicated hierarchies.
//
// §III-A.1 suggests building multiple hierarchies (after [13]) against the
// single point of failure; [13]-style systems also use them for load
// balancing. This driver realizes both: k BFS hierarchies with distinct
// roots run netFilter cooperatively, each owning a slice of the work —
//
//   * phase 1: filter i's group aggregates flow up hierarchy (i mod k);
//   * dissemination: each root multicasts its own slice of the heavy
//     bitmap down its own hierarchy, so every peer reassembles the full
//     f-filter bitmap;
//   * phase 2: candidate items are partitioned by hash — item x is
//     verified through hierarchy (hash(x) mod k) — and each root reports
//     the exact frequent items of its slice; the union is the answer.
//
// Exactness is untouched (every slice is aggregated over all peers); what
// changes is the load profile: no single root carries the whole filtering
// vector or the whole candidate stream. bench/ablation_partitioned
// measures the max/mean load drop.
#pragma once

#include <cstdint>

#include "agg/multi_hierarchy.h"
#include "core/netfilter.h"

namespace nf::core {

struct PartitionedStats {
  std::uint64_t threshold = 0;
  std::uint64_t heavy_groups_total = 0;
  std::uint64_t num_candidates = 0;
  std::uint64_t num_frequent = 0;
  double filtering_cost = 0.0;      ///< bytes/peer, all hierarchies
  double dissemination_cost = 0.0;
  double aggregation_cost = 0.0;
  std::uint64_t rounds = 0;

  [[nodiscard]] double total_cost() const {
    return filtering_cost + dissemination_cost + aggregation_cost;
  }
};

struct PartitionedResult {
  ValueMap<ItemId, Value> frequent;  ///< exact union over all slices
  PartitionedStats stats;
};

class PartitionedNetFilter {
 public:
  /// `config.num_filters` should be >= the number of hierarchies for the
  /// filtering load to spread evenly (it is clamped to >= 1 per slice).
  explicit PartitionedNetFilter(NetFilterConfig config);

  [[nodiscard]] PartitionedResult run(const ItemSource& items,
                                      const agg::MultiHierarchy& hierarchies,
                                      net::Overlay& overlay,
                                      net::TrafficMeter& meter,
                                      Value threshold) const;

  [[nodiscard]] const FilterBank& bank() const { return bank_; }

 private:
  NetFilterConfig config_;
  FilterBank bank_;
};

}  // namespace nf::core
