// Gossip-based netFilter — the paper's future-work direction (§VI)
// implemented: "investigate a fault-tolerant gossip aggregation ... and
// extend the solutions proposed in this study on gossip aggregation".
//
// The two-phase structure survives; only the aggregation substrate changes
// from the BFS hierarchy to hierarchy-free primitives, so there is no tree
// to repair under churn:
//
//   Phase 1 (candidate filtering). Push-sum gossip estimates the f×g item-
//   group aggregates. After R1 rounds the initiator prunes groups whose
//   *estimate* falls below t·(1−δ) — the slack δ absorbs the residual
//   gossip error so truly heavy groups are not lost (no false negatives,
//   with high probability).
//
//   Dissemination. The surviving heavy-group bitmap is flooded over the
//   overlay (net::Flood) so every peer materializes its partial candidate
//   set against the SAME bitmap.
//
//   Phase 2 (candidate verification). A second push-sum runs over the
//   sparse candidate maps — push-sum is linear, so <id, value> maps gossip
//   exactly like vectors, with the support union emerging along the way.
//   The initiator reports candidates whose estimated global value reaches
//   t·(1−δ).
//
// Unlike hierarchical netFilter the result is approximate: reported values
// carry the gossip estimation error, and the δ slack admits borderline
// false positives. bench/ablation_gossip_netfilter measures both against
// the exact oracle, alongside the cost of hierarchy-freedom.
#pragma once

#include <cstdint>

#include "common/hashing.h"
#include "common/item_source.h"
#include "core/config.h"
#include "net/engine.h"

namespace nf::core {

struct GossipNetFilterConfig {
  std::uint32_t num_groups = 100;   ///< g
  std::uint32_t num_filters = 3;    ///< f
  std::uint64_t filter_seed = 0xF117E25EEDull;
  WireSizes wire{};
  std::uint32_t phase1_rounds = 60;  ///< push-sum rounds for group sums
  std::uint32_t phase2_rounds = 60;  ///< push-sum rounds for candidates
  /// δ: prune/report slack as a fraction of t. Larger δ tolerates more
  /// gossip error (fewer false negatives) at the price of more candidates
  /// and false positives.
  double slack = 0.15;
  std::uint32_t flood_ttl = 64;
  std::uint64_t seed = 17;
  /// Link fault model (loss 0 by default); with loss > 0 the engine's
  /// reliability layer keeps push-sum mass conservation intact.
  net::LinkFaultModel fault{};
  /// Shards/threads for the engines driving each stage (1 = serial). Any
  /// value yields bit-identical results — see net/engine.h.
  std::uint32_t threads = 1;
  /// Optional observability sink (not owned; may be null). When set, each
  /// stage emits a phase span and the engines/protocols record metrics.
  obs::Context* obs = nullptr;

  void validate() const {
    require(num_groups >= 1, "need at least one item group");
    require(num_filters >= 1, "need at least one filter");
    require(slack >= 0.0 && slack < 1.0, "slack must be in [0,1)");
    require(phase1_rounds >= 1 && phase2_rounds >= 1,
            "need at least one gossip round per phase");
    wire.validate();
  }
};

struct GossipNetFilterStats {
  std::uint64_t threshold = 0;
  std::uint64_t heavy_groups_total = 0;
  std::uint64_t num_candidates = 0;  ///< support of the phase-2 map at init
  std::uint64_t num_reported = 0;
  std::uint64_t rounds = 0;
  double phase1_cost = 0.0;  ///< gossip bytes/peer, group aggregates
  double flood_cost = 0.0;   ///< flood bytes/peer, heavy-group bitmap
  double phase2_cost = 0.0;  ///< gossip bytes/peer, candidate maps

  [[nodiscard]] double total_cost() const {
    return phase1_cost + flood_cost + phase2_cost;
  }

  // Versus the exact oracle, when one is provided to run().
  std::uint64_t false_positives = 0;
  std::uint64_t false_negatives = 0;
  double max_value_rel_error = 0.0;  ///< over correctly reported items
};

struct GossipNetFilterResult {
  /// Reported frequent items with *estimated* global values.
  ValueMap<ItemId, Value> reported;
  GossipNetFilterStats stats;
};

class GossipNetFilter {
 public:
  explicit GossipNetFilter(GossipNetFilterConfig config);

  /// Runs the three stages from `initiator`. No hierarchy is used; the
  /// overlay only needs to be connected. If `oracle` is non-null the stats
  /// include false positives/negatives and value error against it.
  [[nodiscard]] GossipNetFilterResult run(
      const ItemSource& items, net::Overlay& overlay, PeerId initiator,
      net::TrafficMeter& meter, Value threshold,
      const ValueMap<ItemId, Value>* oracle = nullptr) const;

  [[nodiscard]] const FilterBank& bank() const { return bank_; }
  [[nodiscard]] const GossipNetFilterConfig& config() const {
    return config_;
  }

 private:
  GossipNetFilterConfig config_;
  FilterBank bank_;
};

}  // namespace nf::core
