#include "core/tuner.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "core/cost_model.h"

namespace nf::core {

namespace {

/// Predicted (barriered rounds, per-peer bytes) for one (g, f) candidate
/// under a bottleneck link of `capacity` bytes/round and tree depth
/// `depth`. Messages per phase hop: sa·f·g filtering, sg·f·r̂
/// dissemination (Σ_f w_f ≈ f·r̂ heavy ids), (sa+si)·(r̂+fp2) aggregation.
struct PredictedCost {
  double rounds;
  double bytes;
};

PredictedCost predict(const WireSizes& wire, double g, double f, double n_hat,
                      double r_hat, double depth, double capacity) {
  const double fp2 = cost_model::expected_fp2(n_hat, r_hat, g, f);
  const double bytes =
      cost_model::netfilter_cost(wire, f, g, r_hat, r_hat, fp2);
  const double rounds =
      cost_model::phase_rounds(wire.aggregate_bytes * f * g, depth,
                               capacity) +
      cost_model::phase_rounds(wire.group_id_bytes * f * r_hat, depth,
                               capacity) +
      cost_model::phase_rounds(
          static_cast<double>(wire.item_value_pair()) * (r_hat + fp2), depth,
          capacity);
  return {rounds, bytes};
}

}  // namespace

TunedSetting tune(const ItemSource& items, const agg::Hierarchy& hierarchy,
                  double theta, const TunerConfig& config,
                  net::TrafficMeter* meter) {
  require(theta > 0.0 && theta <= 1.0, "theta must be in (0,1]");

  // Bootstrap aggregates for v (and N, which the hierarchy already knows):
  // each peer contributes a single value (paper §IV). Charged one aggregate
  // field per non-root member; the full engine-driven version of this pass
  // lives in agg/bootstrap.h.
  TunedSetting out;
  for (std::uint32_t p = 0; p < items.num_peers(); ++p) {
    const PeerId id(p);
    if (!hierarchy.is_member(id)) continue;
    out.v_total += items.local_items(id).total();
    if (meter != nullptr && id != hierarchy.root()) {
      meter->record(id, net::TrafficCategory::kSampling,
                    config.wire.aggregate_bytes);
    }
  }
  require(out.v_total > 0, "system holds no items");
  out.threshold = static_cast<Value>(
      std::ceil(theta * static_cast<double>(out.v_total)));

  out.estimates = agg::sample_estimates(hierarchy, items, out.v_total,
                                        out.threshold, config.sampling, meter);

  // Formula 3. If the sample saw no light items (tiny universe or huge
  // sample), fall back to v̄ itself — every group then holds ~1/θ of the
  // mass budget.
  const double v_bar = std::max(out.estimates.v_bar, 1e-9);
  const double v_light =
      out.estimates.v_bar_light > 0.0 ? out.estimates.v_bar_light : v_bar;
  const double g_opt = cost_model::optimal_num_groups(
      v_light, theta, v_bar, config.g_constant);
  out.num_groups = std::clamp(
      static_cast<std::uint32_t>(std::lround(g_opt)), config.min_groups,
      config.max_groups);

  // Formula 6 wants n and r.
  const double n_hat = std::max(out.estimates.n_hat, 1.0);
  const double r_hat = std::clamp(out.estimates.r_hat, 1.0, n_hat);
  out.num_filters = std::min(
      config.max_filters,
      cost_model::optimal_num_filters(config.wire, n_hat, r_hat,
                                      out.num_groups));

  const double depth =
      hierarchy.height() > 0 ? hierarchy.height() - 1.0 : 0.0;
  if (!config.link.capacity_limited()) {
    // Infinite capacity: Formulae 3/6 are the byte optimum and every
    // configuration takes the same 3-wave round count — keep the paper's
    // closed-form choice and just record its predictions.
    const PredictedCost p =
        predict(config.wire, out.num_groups, out.num_filters, n_hat, r_hat,
                depth, static_cast<double>(net::kInfiniteCapacity));
    out.predicted_rounds = p.rounds;
    out.predicted_bytes = p.bytes;
    return out;
  }

  // Congestion-aware selection: under a finite bottleneck the filtering
  // wave pays ceil(sa·f·g / c) rounds per level, so the byte-optimal (g, f)
  // can be strictly dominated by a smaller filter that fits the link. Grid
  // over geometric g steps (plus the Formula-3 point) and every f, and take
  // the lexicographic (rounds, bytes) minimum; first-wins ties keep the
  // choice deterministic.
  double bottleneck = static_cast<double>(net::kInfiniteCapacity);
  for (std::uint32_t p = 0; p < items.num_peers(); ++p) {
    const PeerId id(p);
    if (!hierarchy.is_member(id) || id == hierarchy.root()) continue;
    const auto cap = static_cast<double>(
        config.link.capacity(id, hierarchy.upstream(id)));
    if (cap < bottleneck) bottleneck = cap;
  }
  std::vector<std::uint32_t> grid;
  for (std::uint64_t g64 = config.min_groups; g64 <= config.max_groups;
       g64 *= 2) {
    grid.push_back(static_cast<std::uint32_t>(g64));
  }
  grid.push_back(out.num_groups);
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

  std::uint32_t best_g = out.num_groups;
  std::uint32_t best_f = out.num_filters;
  PredictedCost best = predict(config.wire, best_g, best_f, n_hat, r_hat,
                               depth, bottleneck);
  for (const std::uint32_t g_cand : grid) {
    for (std::uint32_t f_cand = 1; f_cand <= config.max_filters; ++f_cand) {
      const PredictedCost p = predict(config.wire, g_cand, f_cand, n_hat,
                                      r_hat, depth, bottleneck);
      if (p.rounds < best.rounds ||
          (p.rounds == best.rounds && p.bytes < best.bytes)) {
        best = p;
        best_g = g_cand;
        best_f = f_cand;
      }
    }
  }
  out.num_groups = best_g;
  out.num_filters = best_f;
  out.predicted_rounds = best.rounds;
  out.predicted_bytes = best.bytes;
  return out;
}

}  // namespace nf::core
