#include "core/tuner.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "core/cost_model.h"

namespace nf::core {

TunedSetting tune(const ItemSource& items, const agg::Hierarchy& hierarchy,
                  double theta, const TunerConfig& config,
                  net::TrafficMeter* meter) {
  require(theta > 0.0 && theta <= 1.0, "theta must be in (0,1]");

  // Bootstrap aggregates for v (and N, which the hierarchy already knows):
  // each peer contributes a single value (paper §IV). Charged one aggregate
  // field per non-root member; the full engine-driven version of this pass
  // lives in agg/bootstrap.h.
  TunedSetting out;
  for (std::uint32_t p = 0; p < items.num_peers(); ++p) {
    const PeerId id(p);
    if (!hierarchy.is_member(id)) continue;
    out.v_total += items.local_items(id).total();
    if (meter != nullptr && id != hierarchy.root()) {
      meter->record(id, net::TrafficCategory::kSampling,
                    config.wire.aggregate_bytes);
    }
  }
  require(out.v_total > 0, "system holds no items");
  out.threshold = static_cast<Value>(
      std::ceil(theta * static_cast<double>(out.v_total)));

  out.estimates = agg::sample_estimates(hierarchy, items, out.v_total,
                                        out.threshold, config.sampling, meter);

  // Formula 3. If the sample saw no light items (tiny universe or huge
  // sample), fall back to v̄ itself — every group then holds ~1/θ of the
  // mass budget.
  const double v_bar = std::max(out.estimates.v_bar, 1e-9);
  const double v_light =
      out.estimates.v_bar_light > 0.0 ? out.estimates.v_bar_light : v_bar;
  const double g_opt = cost_model::optimal_num_groups(
      v_light, theta, v_bar, config.g_constant);
  out.num_groups = std::clamp(
      static_cast<std::uint32_t>(std::lround(g_opt)), config.min_groups,
      config.max_groups);

  // Formula 6 wants n and r.
  const double n_hat = std::max(out.estimates.n_hat, 1.0);
  const double r_hat = std::clamp(out.estimates.r_hat, 1.0, n_hat);
  out.num_filters = std::min(
      config.max_filters,
      cost_model::optimal_num_filters(config.wire, n_hat, r_hat,
                                      out.num_groups));
  return out;
}

}  // namespace nf::core
