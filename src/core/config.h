// netFilter configuration.
#pragma once

#include <cstdint>

#include "common/error.h"
#include "common/wire.h"
#include "net/engine.h"
#include "obs/context.h"

namespace nf::core {

/// How message bytes are charged to the traffic meter.
enum class WireModel : std::uint8_t {
  /// The paper's model: flat sa/sg/si bytes per field (Table III).
  kFlatFields,
  /// Realistic serialization: varint aggregates, delta-coded sorted id
  /// lists (net/codec.h) — what a deployment would actually send.
  kVarintDelta,
};

struct NetFilterConfig {
  /// g — the filter size: item groups per filter (paper §III-B.1).
  std::uint32_t num_groups = 100;
  /// f — the number of independent hash filters (paper §III-B.2).
  std::uint32_t num_filters = 3;
  /// Master seed the f filter hash functions are derived from. Broadcast by
  /// the root together with (f, g); all peers derive identical filters.
  std::uint64_t filter_seed = 0xF117E25EEDull;
  /// Field sizes (sa, sg, si) used to charge communication cost.
  WireSizes wire{};
  /// Byte-accounting scheme; kFlatFields reproduces the paper.
  WireModel wire_model = WireModel::kFlatFields;
  /// Link fault model; loss 0 (the default) reproduces the paper's
  /// loss-free simulation. With loss > 0 the engine's reliability layer
  /// keeps the result exact and the meter shows the price.
  net::LinkFaultModel fault{};
  /// Link delay/capacity model. The default (delay 1, infinite capacity)
  /// reproduces the paper's synchronous network bit-for-bit; a
  /// capacity-limited model makes heavy phases queue on narrow links and
  /// the per-phase round counts grow accordingly (net/link_model.h).
  net::LinkModel link{};
  /// Engine round budget per protocol phase (safety net, not a tuning knob).
  std::uint64_t max_rounds_per_phase = 100000;
  /// Run the classic three-engine-run orchestration (one global barrier
  /// between phases) instead of the pipelined single-run session (the
  /// default). Results are identical; the barriered path exists as the A/B
  /// baseline for the round-count comparison benches.
  bool barriered = false;
  /// Shards/threads for the engines driving each phase (1 = serial). Any
  /// value yields bit-identical results — see net/engine.h.
  std::uint32_t threads = 1;
  /// Optional observability sink (not owned; may be null). When set, the
  /// run emits phase spans, per-protocol counters and engine traffic
  /// metrics into it; when null the instrumentation costs one branch.
  obs::Context* obs = nullptr;

  void validate() const {
    require(num_groups >= 1, "need at least one item group");
    require(num_filters >= 1, "need at least one filter");
    wire.validate();
  }
};

}  // namespace nf::core
