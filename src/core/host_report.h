// Host reporting: non-participating peers hand their local item sets to a
// stable peer (paper §III-A: "other peers forward their local item sets to
// one of these peers participating in netFilter").
//
// EffectiveItems presents, for each hierarchy member, the union of its own
// local item set and the sets of the non-members it hosts — the view every
// netFilter phase operates on. Reporting traffic is charged once, when the
// view is built (category kHostReport): each alive non-member sends
// (sa + si) bytes per local item to its host.
//
// In the paper's default evaluation every peer participates, in which case
// this class adds no copies and charges no traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "agg/hierarchy.h"
#include "common/arena.h"
#include "common/item_source.h"
#include "common/wire.h"
#include "net/metrics.h"

namespace nf::core {

class EffectiveItems final : public ItemSource {
 public:
  /// Builds the per-member effective view and charges reporting traffic to
  /// `meter` (if non-null).
  EffectiveItems(const ItemSource& base, const agg::Hierarchy& hierarchy,
                 const net::Overlay& overlay, const WireSizes& wire,
                 net::TrafficMeter* meter);

  /// For members: own + hosted items. For non-members: empty (their items
  /// were handed to the host).
  [[nodiscard]] const LocalItems& local_items(PeerId p) const override;

  [[nodiscard]] std::uint32_t num_peers() const override {
    return base_.num_peers();
  }

  /// Number of peers that reported to a host (diagnostics).
  [[nodiscard]] std::uint32_t num_reporters() const { return num_reporters_; }

 private:
  const ItemSource& base_;
  const agg::Hierarchy& hierarchy_;
  // Members that host at least one reporter get a merged copy here. Dense
  // arenas keep local_items() an O(1) indexed read on the round hot path
  // (it is called from every shard during candidate filtering).
  PeerArena<LocalItems> merged_;
  PeerArena<bool> has_merged_;
  LocalItems empty_;
  std::uint32_t num_reporters_{0};
};

}  // namespace nf::core
