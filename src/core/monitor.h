// Continuous frequent-item monitoring.
//
// Wraps netFilter for the deployment pattern the paper's applications
// imply: counters grow over time, and the operator wants the frequent set
// refreshed every epoch together with what *changed* — which items became
// frequent, which fell out (with a ratio threshold t = θ·v, the bar rises
// as the system total grows, so items can drop out even though their
// counters never shrink). Every epoch's set is exact; the monitor also
// tracks amortized communication cost.
#pragma once

#include <cstdint>
#include <vector>

#include "core/netfilter.h"

namespace nf::core {

struct EpochReport {
  std::uint32_t epoch = 0;
  Value total_value = 0;           ///< v at this epoch
  Value threshold = 0;             ///< t = θ·v at this epoch
  ValueMap<ItemId, Value> frequent;  ///< exact set with exact values
  std::vector<ItemId> newly_frequent;
  std::vector<ItemId> dropped;     ///< frequent last epoch, not now
  NetFilterStats stats;
};

class ContinuousMonitor {
 public:
  /// `theta` is re-applied to the current total every epoch.
  ContinuousMonitor(NetFilterConfig config, double theta)
      : netfilter_(config), theta_(theta) {
    require(theta > 0.0 && theta <= 1.0, "theta must be in (0,1]");
  }

  /// Runs one epoch over the source's current state. The hierarchy may
  /// differ between epochs (e.g. repaired after churn).
  [[nodiscard]] EpochReport epoch(const ItemSource& items,
                                  const agg::Hierarchy& hierarchy,
                                  net::Overlay& overlay,
                                  net::TrafficMeter& meter);

  [[nodiscard]] std::uint32_t epochs_run() const { return epochs_; }

  /// Cumulative netFilter bytes per peer across all epochs.
  [[nodiscard]] double total_cost_per_peer() const { return total_cost_; }

  /// Last epoch's frequent set (empty before the first epoch).
  [[nodiscard]] const ValueMap<ItemId, Value>& current() const {
    return previous_;
  }

 private:
  NetFilter netfilter_;
  double theta_;
  ValueMap<ItemId, Value> previous_;
  std::uint32_t epochs_ = 0;
  double total_cost_ = 0.0;
};

}  // namespace nf::core
