#include "core/netfilter.h"

#include <algorithm>
#include <utility>

#include "agg/flat_phases.h"
#include "common/arena.h"
#include "common/error.h"
#include "core/cost_model.h"
#include "core/host_report.h"
#include "core/ifi_session.h"
#include "net/codec.h"
#include "net/session.h"
#include "obs/context.h"

namespace nf::core {

namespace {

double per_peer(std::uint64_t bytes, std::uint32_t num_peers) {
  return static_cast<double>(bytes) / static_cast<double>(num_peers);
}

}  // namespace

// Predicted per-peer phase costs from the analytic model vs what the
// TrafficMeter (or a session tally) actually charged; varint or lossy runs
// are skipped (their bytes are legitimately different from the formula).
//
// Gated vs advisory: filtering and dissemination are exact by construction
// (modulo the root, which receives but never sends — hence the (n-1)/n
// factor), so they gate. Aggregation is the paper's upper bound — a
// candidate pair travels once per tree edge on its path, not once total —
// so it and the lumped F1 total are advisory.
void record_netfilter_conformance(const NetFilterConfig& config,
                                  const NetFilterStats& s,
                                  std::uint32_t num_peers,
                                  const agg::Hierarchy* hierarchy) {
  obs::Context* obs = config.obs;
  if (obs == nullptr) return;
  if (config.wire_model != WireModel::kFlatFields) return;
  if (config.fault.loss_probability > 0.0) return;

  const double n = num_peers;
  const double non_root = (n - 1.0) / n;
  const double f = config.num_filters;
  const double g = config.num_groups;
  const double w_total = static_cast<double>(s.heavy_groups_total);
  const double r = static_cast<double>(s.num_frequent);
  const double fp = static_cast<double>(s.num_false_positives);

  obs::ConformanceReport& report = obs->conformance;
  report.begin_run();
  report.set_param("num_peers", n);
  report.set_param("num_filters", f);
  report.set_param("num_groups", g);
  report.set_param("threshold", static_cast<double>(s.threshold));
  report.set_param("heavy_groups_total", w_total);
  report.set_param("num_candidates", static_cast<double>(s.num_candidates));
  report.set_param("num_frequent", r);
  report.set_param("num_false_positives", fp);

  report.add_check("F1.filtering",
                   cost_model::filtering_term(config.wire, f, g) * non_root,
                   s.filtering_cost, /*gated=*/true);
  // dissemination_term is sg·f·w with w per filter; Σ_f w_f is already the
  // total, so f drops out.
  report.add_check(
      "F1.dissemination",
      cost_model::dissemination_term(config.wire, 1.0, w_total) * non_root,
      s.dissemination_cost, /*gated=*/true);
  report.add_check(
      "F1.aggregation_ub",
      cost_model::aggregation_term(config.wire, r, fp) * non_root,
      s.aggregation_cost, /*gated=*/false);
  report.add_check("F1.total",
                   cost_model::netfilter_cost(config.wire, f, g,
                                              f > 0.0 ? w_total / f : 0.0, r,
                                              fp) *
                       non_root,
                   s.total_cost(), /*gated=*/false);

  // Advisory round-count checks (the queueing cost model): each phase is a
  // depth-D wave whose front needs transfer_rounds(message, capacity)
  // rounds per level, gated by the narrowest link of that level. Only the
  // barriered orchestration pays the phases back to back, so only there is
  // the per-phase wave model the right predictor; the aggregation message
  // uses the paper's upper bound, so these stay advisory like F1.total.
  if (hierarchy != nullptr && config.barriered) {
    const std::uint32_t height = hierarchy->height();
    const double depth = height > 0 ? height - 1.0 : 0.0;
    // Per-level bottleneck: min capacity among the level-d parent links.
    std::vector<double> min_cap(
        height, static_cast<double>(net::kInfiniteCapacity));
    for (std::uint32_t p = 0; p < num_peers; ++p) {
      const PeerId id(p);
      if (!hierarchy->is_member(id) || id == hierarchy->root()) continue;
      const std::uint32_t d = hierarchy->depth(id);
      const auto cap = static_cast<double>(
          config.link.capacity(id, hierarchy->upstream(id)));
      if (cap < min_cap[d]) min_cap[d] = cap;
    }
    const auto wave = [&](double message_bytes) {
      // Σ_d transfer_rounds at the level bottleneck, plus the quiescence
      // round — phase_rounds specialized to heterogeneous levels.
      double rounds = 1.0;
      for (std::uint32_t d = 1; d < height; ++d) {
        rounds += cost_model::transfer_rounds(message_bytes, min_cap[d]);
      }
      return rounds;
    };
    const double filt_rounds =
        wave(config.wire.aggregate_bytes * f * g);
    const double veri_rounds =
        wave(config.wire.group_id_bytes * w_total) +
        wave(static_cast<double>(config.wire.item_value_pair()) * (r + fp));
    report.set_param("tree_depth", depth);
    report.add_check("rounds.filtering", filt_rounds,
                     static_cast<double>(s.rounds_filtering),
                     /*gated=*/false);
    report.add_check("rounds.verification", veri_rounds,
                     static_cast<double>(s.rounds_verification),
                     /*gated=*/false);
    report.add_check("rounds.total", filt_rounds + veri_rounds,
                     static_cast<double>(s.rounds_total),
                     /*gated=*/false);
  }

  // Per-level split of the two exact terms, accumulated into the link_stats
  // predictions (schema v6): each member at depth d pushes one sa·f·g
  // filtering message up its level-d link and receives one sg·W
  // dissemination copy over it, so the level terms are member counts times
  // the per-peer terms — `nf-inspect levels` reconciles the charged
  // per-level bytes against these to <1%. Accumulating (+=) per run keeps
  // predictions in lockstep with the observed matrix across a sweep.
  // nf-lint: nf-obs-context-ok (null-checked at function entry)
  obs::LinkStats& ls = obs->link_stats;
  for (std::uint32_t d = 1; d < ls.num_levels(); ++d) {
    const auto members = static_cast<double>(ls.level_peers(d));
    ls.add_prediction(
        d, static_cast<std::size_t>(net::TrafficCategory::kFiltering),
        cost_model::filtering_level_bytes(config.wire, f, g, members));
    ls.add_prediction(
        d, static_cast<std::size_t>(net::TrafficCategory::kDissemination),
        cost_model::dissemination_level_bytes(config.wire, w_total, members));
  }
}

std::uint64_t HeavyGroupSet::total() const {
  std::uint64_t t = 0;
  for (const auto& bitmap : heavy) {
    t += static_cast<std::uint64_t>(
        std::count(bitmap.begin(), bitmap.end(), true));
  }
  return t;
}

bool HeavyGroupSet::passes(ItemId item, const FilterBank& bank) const {
  for (std::uint32_t i = 0; i < bank.num_filters(); ++i) {
    const GroupId group = bank.filter(i).group_of(item);
    if (!heavy[i][group.value()]) return false;
  }
  return true;
}

net::Bytes encode_heavy_groups(const HeavyGroupSet& heavy) {
  std::vector<std::uint64_t> ids;
  ids.reserve(heavy.total());
  for (std::size_t i = 0; i < heavy.heavy.size(); ++i) {
    const std::vector<bool>& bitmap = heavy.heavy[i];
    for (std::size_t j = 0; j < bitmap.size(); ++j) {
      if (bitmap[j]) ids.push_back(i * bitmap.size() + j);
    }
  }
  return net::encode_sorted_ids(ids);
}

HeavyGroupSet decode_heavy_groups(std::span<const std::uint8_t> in,
                                  std::uint32_t num_filters,
                                  std::uint32_t num_groups) {
  HeavyGroupSet out;
  out.heavy.assign(num_filters, std::vector<bool>(num_groups, false));
  for (const std::uint64_t id : net::decode_sorted_ids(in)) {
    const std::uint64_t i = id / num_groups;
    const std::uint64_t j = id % num_groups;
    ensure(i < num_filters, "heavy group id out of filter range");
    out.heavy[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;
  }
  return out;
}

NetFilter::NetFilter(NetFilterConfig config)
    : config_(config),
      bank_(config.filter_seed, config.num_filters, config.num_groups) {
  config_.validate();
}

std::vector<Value> NetFilter::local_group_aggregates(
    const LocalItems& items) const {
  std::vector<Value> agg(
      static_cast<std::size_t>(config_.num_filters) * config_.num_groups, 0);
  local_group_aggregates_into(items, agg);
  return agg;
}

void NetFilter::local_group_aggregates_into(const LocalItems& items,
                                            std::span<Value> out) const {
  const std::uint32_t g = config_.num_groups;
  const std::uint32_t f = config_.num_filters;
  ensure(out.size() == static_cast<std::size_t>(f) * g,
         "aggregate span size mismatch");
  std::fill(out.begin(), out.end(), 0);
  for (const auto& [id, value] : items) {
    for (std::uint32_t i = 0; i < f; ++i) {
      const GroupId group = bank_.filter(i).group_of(id);
      out[static_cast<std::size_t>(i) * g + group.value()] += value;
    }
  }
}

LocalItems NetFilter::materialize_candidates(const LocalItems& items,
                                             const HeavyGroupSet& heavy) const {
  LocalItems out = items;
  out.retain([&](ItemId id, Value) { return heavy.passes(id, bank_); });
  return out;
}

HeavyGroupSet NetFilter::filter_candidates(const ItemSource& items,
                                           const agg::Hierarchy& hierarchy,
                                           net::Overlay& overlay,
                                           net::TrafficMeter& meter,
                                           Value threshold,
                                           NetFilterStats* stats) const {
  require(threshold >= 1, "threshold must be >= 1");
  obs::ScopedPhase phase(config_.obs, "filtering");
  const std::uint32_t g = config_.num_groups;
  const std::uint32_t f = config_.num_filters;
  const std::uint64_t before = meter.total(net::TrafficCategory::kFiltering);

  // Under the paper's model every peer propagates sa bytes per item group
  // per filter (§IV-A: candidate filtering cost = sa·f·g), regardless of
  // sparsity; under kVarintDelta the actual varint encoding is priced —
  // which is exactly the encoded slab length, so flat_bytes=0 (charge the
  // wire length) reproduces the legacy byte tallies bit for bit.
  const std::uint64_t flat_bytes =
      config_.wire_model == WireModel::kFlatFields
          ? std::uint64_t{config_.wire.aggregate_bytes} * f * g
          : 0;

  agg::FlatAggregateConvergecast cast(
      hierarchy, net::TrafficCategory::kFiltering, /*width=*/f * g,
      /*local=*/
      [&](PeerId p, std::span<std::uint64_t> out) {
        local_group_aggregates_into(items.local_items(p), out);
      },
      flat_bytes, config_.obs);

  net::Engine engine(overlay, meter);
  engine.set_threads(config_.threads);
  engine.set_fault_model(config_.fault);
  engine.set_link_model(config_.link);
  engine.set_obs(config_.obs);
  const std::uint64_t rounds =
      engine.run(cast, config_.max_rounds_per_phase);
  ensure(cast.complete(), "candidate filtering did not complete");

  const std::span<const Value> global = cast.result();
  HeavyGroupSet heavy;
  heavy.heavy.assign(f, std::vector<bool>(g, false));
  for (std::uint32_t i = 0; i < f; ++i) {
    for (std::uint32_t j = 0; j < g; ++j) {
      heavy.heavy[i][j] =
          global[static_cast<std::size_t>(i) * g + j] >= threshold;
    }
  }

  if (stats != nullptr) {
    stats->threshold = threshold;
    stats->heavy_groups_total = heavy.total();
    stats->rounds_filtering = rounds;
    stats->filtering_cost =
        per_peer(meter.total(net::TrafficCategory::kFiltering) - before,
                 overlay.num_peers());
  }
  obs::add_counter(config_.obs, "netfilter/heavy_groups", heavy.total());
  return heavy;
}

NetFilterResult NetFilter::verify_candidates(
    const ItemSource& items, const agg::Hierarchy& hierarchy,
    net::Overlay& overlay, net::TrafficMeter& meter, Value threshold,
    const HeavyGroupSet& heavy, NetFilterStats stats) const {
  const std::uint64_t dissemination_before =
      meter.total(net::TrafficCategory::kDissemination);
  const std::uint64_t aggregation_before =
      meter.total(net::TrafficCategory::kAggregation);

  // Phase 2a: the root propagates the heavy group identifiers downwards
  // (Algorithm 2, line 1). The wire always carries the delta-coded id list;
  // the flat model charges sg per heavy group id, kVarintDelta charges the
  // encoded length itself.
  const net::Bytes heavy_encoded = encode_heavy_groups(heavy);
  const std::uint64_t dissemination_bytes =
      config_.wire_model == WireModel::kFlatFields
          ? heavy.total() * config_.wire.group_id_bytes
          : heavy_encoded.size();

  // Phase 2b: peers materialize their partial candidate sets on receipt
  // (Algorithm 2, line 2) and the <id, value> pairs merge bottom-up
  // (lines 3-4). The downward wave strictly precedes the upward one — no
  // peer can contribute before it has the heavy list — so the two protocols
  // run back to back.
  // Candidate rows live in one flat slab (disjoint spans per peer, written
  // from the receiving peer's shard); the flags are a byte arena so
  // neighbors never share a written byte.
  CandidateRows partial;
  partial.configure(items);
  PeerArena<bool> ready(overlay.num_peers(), false);

  agg::FlatMulticast down(
      hierarchy, net::TrafficCategory::kDissemination, heavy_encoded,
      dissemination_bytes,
      /*on_receive=*/
      [&](PeerId p, std::span<const std::uint8_t> body) {
        const HeavyGroupSet hg = decode_heavy_groups(
            body, config_.num_filters, config_.num_groups);
        partial.materialize(p, items.local_items(p), hg, bank_);
        ready[p] = true;
      },
      config_.obs);

  net::Engine engine(overlay, meter);
  engine.set_threads(config_.threads);
  engine.set_fault_model(config_.fault);
  engine.set_link_model(config_.link);
  engine.set_obs(config_.obs);
  std::uint64_t down_rounds = 0;
  {
    obs::ScopedPhase phase(config_.obs, "dissemination");
    down_rounds = engine.run(down, config_.max_rounds_per_phase);
  }
  ensure(down.complete(), "dissemination did not complete");

  // kVarintDelta charges the encoded pair list — the slab bytes themselves —
  // so an empty WireBytesFn (charge the wire length) is the exact model.
  agg::FlatPairsConvergecast::WireBytesFn pair_bytes;
  if (config_.wire_model == WireModel::kFlatFields) {
    pair_bytes = [this](const LocalItems& m) {
      return m.size() * config_.wire.item_value_pair();
    };
  }
  agg::FlatPairsConvergecast up(
      hierarchy, net::TrafficCategory::kAggregation,
      /*local=*/
      [&](PeerId p) {
        ensure(ready[p] != 0, "peer aggregating before materialization");
        return partial.take(p);
      },
      std::move(pair_bytes), config_.obs);
  std::uint64_t up_rounds = 0;
  {
    obs::ScopedPhase phase(config_.obs, "aggregation");
    up_rounds = engine.run(up, config_.max_rounds_per_phase);
  }
  ensure(up.complete(), "candidate aggregation did not complete");

  NetFilterResult result;
  const LocalItems& candidates = up.result();
  stats.num_candidates = candidates.size();
  result.frequent = candidates;
  result.frequent.retain(
      [&](ItemId, Value v) { return v >= threshold; });
  stats.num_frequent = result.frequent.size();
  stats.num_false_positives = stats.num_candidates - stats.num_frequent;
  stats.rounds_verification = down_rounds + up_rounds;
  obs::add_counter(config_.obs, "netfilter/candidates", stats.num_candidates);
  obs::add_counter(config_.obs, "netfilter/frequent", stats.num_frequent);

  const std::uint64_t aggregation_bytes =
      meter.total(net::TrafficCategory::kAggregation) - aggregation_before;
  stats.dissemination_cost = per_peer(
      meter.total(net::TrafficCategory::kDissemination) - dissemination_before,
      overlay.num_peers());
  stats.aggregation_cost = per_peer(aggregation_bytes, overlay.num_peers());
  stats.candidates_per_peer =
      static_cast<double>(aggregation_bytes) /
      static_cast<double>(config_.wire.item_value_pair()) /
      static_cast<double>(overlay.num_peers());

  result.stats = stats;
  return result;
}

NetFilterResult NetFilter::run_barriered(const ItemSource& items,
                                         const agg::Hierarchy& hierarchy,
                                         net::Overlay& overlay,
                                         net::TrafficMeter& meter,
                                         Value threshold) const {
  NetFilterStats stats;
  const HeavyGroupSet heavy = filter_candidates(items, hierarchy, overlay,
                                                meter, threshold, &stats);
  NetFilterResult result = verify_candidates(items, hierarchy, overlay, meter,
                                             threshold, heavy, stats);
  result.stats.rounds_total =
      result.stats.rounds_filtering + result.stats.rounds_verification;
  return result;
}

NetFilterResult NetFilter::run_pipelined(const ItemSource& items,
                                         const agg::Hierarchy& hierarchy,
                                         net::Overlay& overlay,
                                         net::TrafficMeter& meter,
                                         Value threshold) const {
  require(threshold >= 1, "threshold must be >= 1");
  const std::uint32_t n = overlay.num_peers();
  const std::uint64_t filtering_before =
      meter.total(net::TrafficCategory::kFiltering);
  const std::uint64_t dissemination_before =
      meter.total(net::TrafficCategory::kDissemination);
  const std::uint64_t aggregation_before =
      meter.total(net::TrafficCategory::kAggregation);

  net::SessionMux mux(config_.obs);
  // Unnamed single session: phase spans keep the classic bare names
  // ("filtering", ...), so trace consumers see the same span set as the
  // barriered path.
  const net::SessionId sid = mux.add_session();
  IfiSessionPhases ifi(*this, items, hierarchy, threshold);
  (void)ifi.register_phases(mux, sid, net::PhaseStart::kAllPeers);

  net::Engine engine(overlay, meter);
  engine.set_threads(config_.threads);
  engine.set_fault_model(config_.fault);
  engine.set_link_model(config_.link);
  engine.set_obs(config_.obs);
  const std::uint64_t rounds_total =
      engine.run(mux, config_.max_rounds_per_phase);
  ensure(ifi.complete(), "pipelined netfilter did not complete");

  NetFilterResult result = ifi.take_result();
  NetFilterStats& s = result.stats;
  s.rounds_total = rounds_total;
  s.rounds_filtering = ifi.filtering_rounds();
  s.rounds_verification = rounds_total - s.rounds_filtering;
  const std::uint64_t aggregation_bytes =
      meter.total(net::TrafficCategory::kAggregation) - aggregation_before;
  s.filtering_cost = per_peer(
      meter.total(net::TrafficCategory::kFiltering) - filtering_before, n);
  s.dissemination_cost = per_peer(
      meter.total(net::TrafficCategory::kDissemination) - dissemination_before,
      n);
  s.aggregation_cost = per_peer(aggregation_bytes, n);
  s.candidates_per_peer =
      static_cast<double>(aggregation_bytes) /
      static_cast<double>(config_.wire.item_value_pair()) /
      static_cast<double>(n);
  return result;
}

NetFilterResult NetFilter::run(const ItemSource& items,
                               const agg::Hierarchy& hierarchy,
                               net::Overlay& overlay, net::TrafficMeter& meter,
                               Value threshold) const {
  require(items.num_peers() == overlay.num_peers(),
          "item source and overlay disagree on peer count");
  obs::ScopedPhase whole(config_.obs, "netfilter");
  // Install the level geometry for the topology telemetry plane before any
  // engine runs: every envelope the phases below admit is charged per level
  // at the merge barrier. configure_levels is a no-op when the geometry is
  // unchanged, so an alpha sweep over one shared context keeps its matrix
  // accumulating; bind_series re-binds (and re-baselines) the per-level
  // series columns, like the engine's own columns.
  if (config_.obs != nullptr) {
    obs::LinkStats& ls = config_.obs->link_stats;
    std::vector<std::uint32_t> depths(overlay.num_peers(),
                                      obs::LinkStats::kNoLevel);
    for (std::uint32_t p = 0; p < overlay.num_peers(); ++p) {
      if (hierarchy.is_member(PeerId(p))) {
        depths[p] = hierarchy.depth(PeerId(p));
      }
    }
    ls.configure_levels(depths, hierarchy.height());
    ls.bind_series(config_.obs->registry, config_.obs->series);
    // Static level capacities — the utilization denominator for
    // `nf-inspect congestion`. A level's directed capacity is the sum over
    // its parent links of both directions (up-convergecast and
    // down-multicast cross the same edge).
    if (config_.link.capacity_limited()) {
      std::vector<std::uint64_t> level_cap(hierarchy.height(), 0);
      for (std::uint32_t p = 0; p < overlay.num_peers(); ++p) {
        const PeerId id(p);
        if (!hierarchy.is_member(id) || id == hierarchy.root()) continue;
        const std::uint64_t cap =
            config_.link.capacity(id, hierarchy.upstream(id));
        // Uncapped links (possible under partial level overrides) never
        // queue; leave them out of the finite denominator.
        if (cap == net::kInfiniteCapacity) continue;
        level_cap[hierarchy.depth(id)] += 2 * cap;
      }
      for (std::uint32_t d = 0; d < hierarchy.height(); ++d) {
        ls.set_level_capacity(d, level_cap[d]);
      }
    }
  }
  const std::uint64_t host_before =
      meter.total(net::TrafficCategory::kHostReport);
  const EffectiveItems effective = [&] {
    obs::ScopedPhase phase(config_.obs, "host-report");
    return EffectiveItems(items, hierarchy, overlay, config_.wire, &meter);
  }();
  const double host_report_cost =
      per_peer(meter.total(net::TrafficCategory::kHostReport) - host_before,
               overlay.num_peers());

  NetFilterResult result =
      config_.barriered
          ? run_barriered(effective, hierarchy, overlay, meter, threshold)
          : run_pipelined(effective, hierarchy, overlay, meter, threshold);
  result.stats.host_report_cost = host_report_cost;
  record_netfilter_conformance(config_, result.stats, overlay.num_peers(),
                               &hierarchy);
  return result;
}

}  // namespace nf::core
