// One IFI query as a session of composable phases (DESIGN.md §6d).
//
// Wires the three netFilter phases — filtering convergecast, heavy-group
// multicast, aggregation convergecast — onto a net::SessionMux so they run
// pipelined inside a single engine run: the root flips from filtering to
// dissemination inside the delivery callback that completes the global
// aggregate, and every other peer opens its aggregation phase the moment
// the heavy multicast reaches it. No global barrier anywhere, yet the
// result is the exact IFI answer: a peer's phase-2 contribution depends
// only on the heavy set (which it has) and its subtree's contributions
// (which the mux buffers if they somehow arrive first — on a tree they
// cannot, since the heavy set reaches a parent strictly before any child
// can respond through it).
//
// Used by NetFilter::run for the pipelined single-query path and by
// QueryService::serve_concurrent to multiplex N independent queries with
// distinct thresholds/filters over one engine run.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "agg/flat_phases.h"
#include "agg/hierarchy.h"
#include "common/item_source.h"
#include "core/netfilter.h"
#include "net/session.h"

namespace nf::core {

class IfiSessionPhases {
 public:
  /// Fires at the root, inside the engine run, the moment this query's
  /// exact answer exists — the hook a reply phase chains from.
  using CompleteFn = std::function<void(net::PhaseContext&)>;

  /// `netfilter`, `items` and `hierarchy` must outlive the engine run.
  IfiSessionPhases(const NetFilter& netfilter, const ItemSource& items,
                   const agg::Hierarchy& hierarchy, Value threshold);

  /// Registers filtering -> dissemination -> aggregation on `mux` under
  /// `session` and returns the filtering PhaseId (the session's entry).
  /// kAllPeers starts filtering everywhere on the first tick (single-query
  /// runs); kOnDemand leaves it to an announcement phase's open_phase()
  /// (multiplexed queries).
  net::PhaseId register_phases(net::SessionMux& mux, net::SessionId session,
                               net::PhaseStart filtering_start);

  void set_on_complete(CompleteFn fn) { on_complete_ = std::move(fn); }

  /// True once the root holds the exact answer.
  [[nodiscard]] bool complete() const {
    return result_ready_.load(std::memory_order_relaxed);
  }

  /// Rounds until the filtering convergecast completed at the root.
  [[nodiscard]] std::uint64_t filtering_rounds() const {
    return filtering_rounds_;
  }

  [[nodiscard]] const HeavyGroupSet& heavy() const { return heavy_; }

  /// The result in place — the exact frequent set plus the counting stats
  /// fields (threshold, heavy groups, candidates, frequent, false
  /// positives). Readable from the root's shard inside on-complete hooks.
  [[nodiscard]] const NetFilterResult& result() const {
    require(complete(), "IFI session not complete");
    return result_;
  }

  /// Moves the result out. Rounds and byte costs are the orchestrator's to
  /// fill — only it knows which engine run and which traffic tally this
  /// session rode on. Call once, after the run.
  [[nodiscard]] NetFilterResult take_result();

 private:
  void finish_filtering(net::PhaseContext& ctx,
                        std::span<const Value> global);
  void on_heavy_received(net::PhaseContext& ctx,
                         std::span<const std::uint8_t> encoded);
  void finish_aggregation(net::PhaseContext& ctx, const LocalItems& candidates);

  const NetFilter& netfilter_;
  const ItemSource& items_;
  const agg::Hierarchy& hierarchy_;
  Value threshold_;
  obs::Context* obs_;

  // Flat slab-backed phases (agg/flat_phases.h): group sums ride the wire
  // as varint vectors merged by column adds into a SoA arena; the heavy set
  // travels as one delta-coded id list, decoded per peer on receipt.
  agg::FlatAggregateConvergecastPhase filtering_;
  agg::FlatMulticastPhase dissemination_;
  agg::FlatPairsConvergecastPhase aggregation_;
  net::PhaseId dissemination_pid_ = 0;
  net::PhaseId aggregation_pid_ = 0;

  // Per-peer candidate rows in one flat slab: written from the receiving
  // peer's shard on heavy receipt, adopted by the same peer's aggregation
  // on_start. The flags are a byte arena so neighbors never share a byte.
  CandidateRows partial_;
  PeerArena<bool> ready_;

  // Root-shard writes, published by the round barrier / read after the run.
  HeavyGroupSet heavy_;
  std::uint64_t filtering_rounds_ = 0;
  NetFilterResult result_;
  std::atomic<bool> result_ready_{false};
  CompleteFn on_complete_;
};

}  // namespace nf::core
