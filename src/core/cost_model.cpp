#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace nf::core::cost_model {

double filtering_term(const WireSizes& wire, double num_filters,
                      double num_groups) {
  return wire.aggregate_bytes * num_filters * num_groups;
}

double dissemination_term(const WireSizes& wire, double num_filters,
                          double heavy_groups_per_filter) {
  return wire.group_id_bytes * num_filters * heavy_groups_per_filter;
}

double aggregation_term(const WireSizes& wire, double heavy_items,
                        double false_positives) {
  return static_cast<double>(wire.item_value_pair()) *
         (heavy_items + false_positives);
}

double filtering_level_bytes(const WireSizes& wire, double num_filters,
                             double num_groups, double members_at_level) {
  return filtering_term(wire, num_filters, num_groups) * members_at_level;
}

double dissemination_level_bytes(const WireSizes& wire,
                                 double heavy_groups_total,
                                 double members_at_level) {
  // One copy of the full heavy-id list per member; Σ_f w_f is already the
  // total, so the per-filter factor drops out (cf. F1.dissemination).
  return dissemination_term(wire, 1.0, heavy_groups_total) * members_at_level;
}

double netfilter_cost(const WireSizes& wire, double num_filters,
                      double num_groups, double heavy_groups_per_filter,
                      double heavy_items, double false_positives) {
  return filtering_term(wire, num_filters, num_groups) +
         dissemination_term(wire, num_filters, heavy_groups_per_filter) +
         aggregation_term(wire, heavy_items, false_positives);
}

double naive_cost_lower(const WireSizes& wire, double items_per_peer) {
  return static_cast<double>(wire.item_value_pair()) * items_per_peer;
}

double naive_cost_upper(const WireSizes& wire, double items_per_peer,
                        double height) {
  return static_cast<double>(wire.item_value_pair()) * items_per_peer *
         std::max(1.0, height - 1.0);
}

double expected_fp2(double num_items, double heavy_items, double num_groups,
                    double num_filters) {
  require(num_groups >= 1.0, "num_groups must be >= 1");
  if (num_items <= heavy_items) return 0.0;
  // P(light item shares a group with >=1 of the r heavy items, one filter).
  const double p_collide =
      1.0 - std::pow(1.0 - 1.0 / num_groups, heavy_items);
  return (num_items - heavy_items) * std::pow(p_collide, num_filters);
}

double optimal_num_groups(double v_bar_light, double theta, double v_bar,
                          double c) {
  require(theta > 0.0, "theta must be positive");
  require(v_bar > 0.0, "v_bar must be positive");
  return c + v_bar_light / (theta * v_bar);
}

std::uint32_t optimal_num_filters(const WireSizes& wire, double num_items,
                                  double heavy_items, double num_groups) {
  require(num_groups >= 2.0, "num_groups must be >= 2");
  if (num_items <= heavy_items || heavy_items <= 0.0) return 1;
  const double p_collide =
      1.0 - std::pow(1.0 - 1.0 / num_groups, heavy_items);
  if (p_collide <= 0.0) return 1;
  if (p_collide >= 1.0) {
    // Every light item collides under every filter; more filters cannot
    // help (the filter size is too small for this r).
    return 1;
  }
  const double arg = static_cast<double>(wire.item_value_pair()) *
                     (num_items - heavy_items) /
                     (num_groups * wire.aggregate_bytes);
  if (arg <= 1.0) return 1;
  // log base 1/p_collide of arg; p_collide < 1 so the base is > 1.
  const double f = std::log(arg) / -std::log(p_collide);
  return std::max(1u, static_cast<std::uint32_t>(std::ceil(f)));
}

double transfer_rounds(double message_bytes, double link_capacity) {
  if (!(link_capacity > 0.0) || std::isinf(link_capacity)) return 1.0;
  return std::max(1.0, std::ceil(message_bytes / link_capacity));
}

double phase_rounds(double message_bytes, double depth,
                    double link_capacity) {
  return depth * transfer_rounds(message_bytes, link_capacity) + 1.0;
}

}  // namespace nf::core::cost_model
