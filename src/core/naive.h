// The naive approach (paper §I, §IV-B): every peer forwards its full local
// item set up the hierarchy; <id, value> pairs for equal items merge along
// the way, and the root ends up with the exact global value of every item
// in the system, from which it reads off the frequent ones.
//
// This is the exact-result baseline netFilter is compared against in
// Figures 7 and 8. Its cost per peer is (sa+si)·o ≤ C_naive ≤
// (sa+si)·o·(h−1) (Formula 2): a peer propagates the union of its own
// items and everything its subtree sent, which is why the realized cost
// sits well below the intuitive O(n·N).
#pragma once

#include "agg/hierarchy.h"
#include "common/item_source.h"
#include "common/wire.h"
#include "net/engine.h"

namespace nf::core {

struct NaiveStats {
  double cost_per_peer = 0.0;         ///< bytes propagated per peer (kNaive)
  double items_per_peer = 0.0;        ///< <id,value> pairs propagated per peer
  std::uint64_t rounds = 0;
  std::uint64_t num_frequent = 0;
};

struct NaiveResult {
  ValueMap<ItemId, Value> frequent;
  NaiveStats stats;
};

class NaiveCollector {
 public:
  explicit NaiveCollector(WireSizes wire, net::LinkFaultModel fault = {})
      : wire_(wire), fault_(fault) {
    wire_.validate();
  }

  [[nodiscard]] NaiveResult run(const ItemSource& items,
                                const agg::Hierarchy& hierarchy,
                                net::Overlay& overlay,
                                net::TrafficMeter& meter,
                                Value threshold) const;

 private:
  WireSizes wire_;
  net::LinkFaultModel fault_;
};

}  // namespace nf::core
