// Approximate frequent-items baseline: mergeable Misra-Gries summaries.
//
// The paper's related work ([9], [12]) finds frequent items approximately
// with an ε error tolerance and communication O(a/ε); the paper argues
// exactness matters (no false positives for attack detection, exact values
// for cache replacement) and declines a head-to-head. We implement the
// approximate approach anyway — each peer summarizes its local set with a
// k-counter Misra-Gries sketch, sketches merge up the hierarchy, and the
// root reports every item whose lower bound can still reach the threshold —
// so bench/ablation_approx can quantify the paper's argument: the bytes an
// ε-approximation needs as ε shrinks toward exactness, and the false
// positives it reports on the way.
//
// Guarantees (standard MG bounds with k counters over total mass v):
//   estimate(x) <= true(x) <= estimate(x) + v/(k+1)
// Reporting items with estimate(x) + v/(k+1) >= t yields no false
// negatives; false positives and value errors up to v/(k+1) remain.
#pragma once

#include <cstdint>
#include <vector>

#include "agg/hierarchy.h"
#include "common/item_source.h"
#include "common/wire.h"
#include "net/engine.h"

namespace nf::core {

/// Mergeable Misra-Gries summary with at most `capacity` counters.
class MisraGries {
 public:
  explicit MisraGries(std::size_t capacity);

  /// Counts `weight` occurrences of `item`.
  void add(ItemId item, Value weight);

  /// Mergeable-summaries merge (Agarwal et al.): sum counters, then subtract
  /// the (capacity+1)-largest count from all and drop non-positive ones.
  /// The combined error stays <= v/(capacity+1).
  void merge(const MisraGries& other);

  /// Lower-bound estimate for one item (0 if not tracked).
  [[nodiscard]] Value estimate(ItemId item) const;

  /// Total weight subtracted from every tracked counter so far; the
  /// over-approximation needed for "could reach threshold" decisions.
  [[nodiscard]] Value error_bound() const { return decremented_; }

  [[nodiscard]] const ValueMap<ItemId, Value>& counters() const {
    return counters_;
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] std::uint64_t wire_bytes(const WireSizes& wire) const {
    return counters_.size() * wire.item_value_pair() + wire.aggregate_bytes;
  }

 private:
  void shrink();

  std::size_t capacity_;
  ValueMap<ItemId, Value> counters_;
  Value decremented_{0};
};

struct ApproxStats {
  double cost_per_peer = 0.0;
  std::uint64_t rounds = 0;
  std::uint64_t num_reported = 0;
  std::uint64_t false_positives = 0;   ///< vs the exact oracle, if provided
  std::uint64_t false_negatives = 0;
  double max_value_error = 0.0;        ///< max |reported - true| over reported
};

struct ApproxResult {
  /// Items that may be frequent, with their lower-bound estimates.
  ValueMap<ItemId, Value> reported;
  ApproxStats stats;
};

class ApproxCollector {
 public:
  /// `epsilon`: error tolerance as a fraction of v; counters per sketch is
  /// ceil(1/epsilon).
  ApproxCollector(WireSizes wire, double epsilon);

  [[nodiscard]] ApproxResult run(const ItemSource& items,
                                 const agg::Hierarchy& hierarchy,
                                 net::Overlay& overlay,
                                 net::TrafficMeter& meter, Value threshold,
                                 const ValueMap<ItemId, Value>* oracle) const;

  [[nodiscard]] std::size_t sketch_capacity() const { return capacity_; }

 private:
  WireSizes wire_;
  std::size_t capacity_;
};

}  // namespace nf::core
