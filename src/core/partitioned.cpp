#include "core/partitioned.h"

#include <algorithm>
#include <vector>

#include "agg/convergecast.h"
#include "agg/multicast.h"
#include "common/arena.h"
#include "common/error.h"

namespace nf::core {

PartitionedNetFilter::PartitionedNetFilter(NetFilterConfig config)
    : config_(config),
      bank_(config.filter_seed, config.num_filters, config.num_groups) {
  config_.validate();
}

PartitionedResult PartitionedNetFilter::run(
    const ItemSource& items, const agg::MultiHierarchy& hierarchies,
    net::Overlay& overlay, net::TrafficMeter& meter, Value threshold) const {
  require(threshold >= 1, "threshold must be >= 1");
  const auto k = static_cast<std::uint32_t>(hierarchies.size());
  require(k >= 1, "need at least one hierarchy");
  const std::uint32_t g = config_.num_groups;
  const std::uint32_t f = config_.num_filters;
  const double num_peers = overlay.num_peers();

  PartitionedResult result;
  result.stats.threshold = threshold;

  // Which filters each hierarchy slice owns: filter i -> slice (i mod k).
  std::vector<std::vector<std::uint32_t>> slice_filters(k);
  for (std::uint32_t i = 0; i < f; ++i) {
    slice_filters[i % k].push_back(i);
  }

  // ---- Phase 1: one convergecast per slice, over its own hierarchy. ----
  const std::uint64_t filtering_before =
      meter.total(net::TrafficCategory::kFiltering);
  std::vector<std::vector<bool>> heavy(f, std::vector<bool>(g, false));
  for (std::uint32_t s = 0; s < k; ++s) {
    const auto& filters = slice_filters[s];
    if (filters.empty()) continue;
    const std::uint64_t wire_bytes =
        std::uint64_t{config_.wire.aggregate_bytes} * filters.size() * g;
    agg::Convergecast<std::vector<Value>> cast(
        hierarchies.at(s), net::TrafficCategory::kFiltering,
        /*local=*/
        [&](PeerId p) {
          std::vector<Value> agg(filters.size() * g, 0);
          for (const auto& [id, value] : items.local_items(p)) {
            for (std::size_t fi = 0; fi < filters.size(); ++fi) {
              agg[fi * g +
                  bank_.filter(filters[fi]).group_of(id).value()] += value;
            }
          }
          return agg;
        },
        /*merge=*/
        [](std::vector<Value>& a, std::vector<Value>&& b) {
          add_columns(a.data(), b.data(), a.size());
        },
        /*wire_bytes=*/
        [wire_bytes](const std::vector<Value>&) { return wire_bytes; });
    net::Engine engine(overlay, meter);
    engine.set_threads(config_.threads);
    engine.set_obs(config_.obs);
    result.stats.rounds += engine.run(cast, config_.max_rounds_per_phase);
    ensure(cast.complete(), "partitioned filtering did not complete");
    const auto& sums = cast.result();
    for (std::size_t fi = 0; fi < filters.size(); ++fi) {
      for (std::uint32_t j = 0; j < g; ++j) {
        heavy[filters[fi]][j] = sums[fi * g + j] >= threshold;
      }
    }
  }
  result.stats.filtering_cost =
      static_cast<double>(meter.total(net::TrafficCategory::kFiltering) -
                          filtering_before) /
      num_peers;

  HeavyGroupSet heavy_set;
  heavy_set.heavy = heavy;
  result.stats.heavy_groups_total = heavy_set.total();

  // ---- Dissemination: each root multicasts its slice of the bitmap. ----
  const std::uint64_t dissemination_before =
      meter.total(net::TrafficCategory::kDissemination);
  // Peers reassemble the union; with deterministic slices the reassembled
  // bitmap equals `heavy` everywhere, so we model the traffic (per-slice
  // heavy ids over each hierarchy's edges) and hand peers the full bitmap.
  for (std::uint32_t s = 0; s < k; ++s) {
    std::uint64_t slice_heavy = 0;
    for (std::uint32_t fi : slice_filters[s]) {
      slice_heavy += static_cast<std::uint64_t>(std::count(
          heavy[fi].begin(), heavy[fi].end(), true));
    }
    agg::Multicast<std::uint32_t> mc(
        hierarchies.at(s), net::TrafficCategory::kDissemination, s,
        slice_heavy * config_.wire.group_id_bytes,
        [](PeerId, const std::uint32_t&) {});
    net::Engine engine(overlay, meter);
    engine.set_threads(config_.threads);
    engine.set_obs(config_.obs);
    result.stats.rounds += engine.run(mc, config_.max_rounds_per_phase);
    ensure(mc.complete(), "slice dissemination did not complete");
  }
  result.stats.dissemination_cost =
      static_cast<double>(meter.total(net::TrafficCategory::kDissemination) -
                          dissemination_before) /
      num_peers;

  // ---- Phase 2: candidates partitioned by item hash across slices. ----
  const std::uint64_t aggregation_before =
      meter.total(net::TrafficCategory::kAggregation);
  for (std::uint32_t s = 0; s < k; ++s) {
    agg::Convergecast<LocalItems> cast(
        hierarchies.at(s), net::TrafficCategory::kAggregation,
        /*local=*/
        [&](PeerId p) {
          LocalItems out = items.local_items(p);
          out.retain([&](ItemId id, Value) {
            return hash64(id.value(), config_.filter_seed ^ 0x511CEull) %
                           k ==
                       s &&
                   heavy_set.passes(id, bank_);
          });
          return out;
        },
        /*merge=*/
        [](LocalItems& a, LocalItems&& b) { a.merge_add(b); },
        /*wire_bytes=*/
        [this](const LocalItems& m) {
          return m.size() * config_.wire.item_value_pair();
        });
    net::Engine engine(overlay, meter);
    engine.set_threads(config_.threads);
    engine.set_obs(config_.obs);
    result.stats.rounds += engine.run(cast, config_.max_rounds_per_phase);
    ensure(cast.complete(), "partitioned verification did not complete");
    result.stats.num_candidates += cast.result().size();
    for (const auto& [id, v] : cast.result()) {
      if (v >= threshold) result.frequent.add(id, v);
    }
  }
  result.stats.aggregation_cost =
      static_cast<double>(meter.total(net::TrafficCategory::kAggregation) -
                          aggregation_before) /
      num_peers;
  result.stats.num_frequent = result.frequent.size();
  return result;
}

}  // namespace nf::core
