#include "core/misra_gries.h"

#include <algorithm>
#include <cmath>

#include "agg/convergecast.h"
#include "common/error.h"

namespace nf::core {

MisraGries::MisraGries(std::size_t capacity) : capacity_(capacity) {
  require(capacity >= 1, "Misra-Gries needs at least one counter");
}

void MisraGries::add(ItemId item, Value weight) {
  counters_.add(item, weight);
  if (counters_.size() > capacity_) shrink();
}

void MisraGries::merge(const MisraGries& other) {
  require(capacity_ == other.capacity_, "capacity mismatch");
  counters_.merge_add(other.counters_);
  decremented_ += other.decremented_;
  if (counters_.size() > capacity_) shrink();
}

void MisraGries::shrink() {
  // Subtract the (capacity+1)-th largest count from everything and drop the
  // non-positive remainder; at most `capacity` counters survive.
  std::vector<Value> counts;
  counts.reserve(counters_.size());
  for (const auto& [id, v] : counters_) counts.push_back(v);
  // nth_element for the (capacity+1)-th largest == index capacity_ in
  // descending order.
  std::nth_element(counts.begin(),
                   counts.begin() + static_cast<std::ptrdiff_t>(capacity_),
                   counts.end(), std::greater<>());
  const Value cut = counts[capacity_];
  decremented_ += cut;
  ValueMap<ItemId, Value> kept;
  kept.reserve(capacity_);
  std::vector<std::pair<ItemId, Value>> pairs;
  pairs.reserve(counters_.size());
  for (const auto& [id, v] : counters_) {
    if (v > cut) pairs.emplace_back(id, v - cut);
  }
  counters_ = ValueMap<ItemId, Value>::from_unsorted(std::move(pairs));
  ensure(counters_.size() <= capacity_, "shrink failed to enforce capacity");
}

Value MisraGries::estimate(ItemId item) const {
  return counters_.value_of(item);
}

ApproxCollector::ApproxCollector(WireSizes wire, double epsilon)
    : wire_(wire) {
  require(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0,1]");
  capacity_ = static_cast<std::size_t>(std::ceil(1.0 / epsilon));
}

ApproxResult ApproxCollector::run(const ItemSource& items,
                                  const agg::Hierarchy& hierarchy,
                                  net::Overlay& overlay,
                                  net::TrafficMeter& meter, Value threshold,
                                  const ValueMap<ItemId, Value>* oracle) const {
  require(threshold >= 1, "threshold must be >= 1");
  const std::uint64_t before = meter.total(net::TrafficCategory::kApprox);

  agg::Convergecast<MisraGries> cast(
      hierarchy, net::TrafficCategory::kApprox,
      /*local=*/
      [&](PeerId p) {
        MisraGries sketch(capacity_);
        for (const auto& [id, v] : items.local_items(p)) sketch.add(id, v);
        return sketch;
      },
      /*merge=*/
      [](MisraGries& acc, MisraGries&& child) { acc.merge(child); },
      /*wire_bytes=*/
      [this](const MisraGries& s) { return s.wire_bytes(wire_); });

  net::Engine engine(overlay, meter);
  const std::uint64_t rounds = engine.run(cast, 100000);
  ensure(cast.complete(), "sketch aggregation did not complete");

  const MisraGries& merged = cast.result();
  ApproxResult result;
  // Report every item whose upper bound reaches the threshold.
  const Value slack = merged.error_bound();
  for (const auto& [id, v] : merged.counters()) {
    if (v + slack >= threshold) result.reported.add(id, v);
  }

  result.stats.rounds = rounds;
  result.stats.num_reported = result.reported.size();
  result.stats.cost_per_peer =
      static_cast<double>(meter.total(net::TrafficCategory::kApprox) -
                          before) /
      static_cast<double>(overlay.num_peers());

  if (oracle != nullptr) {
    for (const auto& [id, v] : result.reported) {
      if (!oracle->contains(id)) {
        ++result.stats.false_positives;
      } else {
        const double err = std::abs(static_cast<double>(oracle->value_of(id)) -
                                    static_cast<double>(v));
        result.stats.max_value_error =
            std::max(result.stats.max_value_error, err);
      }
    }
    for (const auto& [id, v] : *oracle) {
      if (!result.reported.contains(id)) ++result.stats.false_negatives;
    }
  }
  return result;
}

}  // namespace nf::core
