#include "core/monitor.h"

#include <cmath>

#include "common/error.h"

namespace nf::core {

EpochReport ContinuousMonitor::epoch(const ItemSource& items,
                                     const agg::Hierarchy& hierarchy,
                                     net::Overlay& overlay,
                                     net::TrafficMeter& meter) {
  EpochReport report;
  report.epoch = epochs_;

  // v from the members' current state (in deployment this is the one-value
  // bootstrap aggregate; its cost is charged by the tuner when used).
  for (std::uint32_t p = 0; p < items.num_peers(); ++p) {
    if (hierarchy.is_member(PeerId(p)) || !overlay.is_alive(PeerId(p))) {
      report.total_value += items.local_items(PeerId(p)).total();
    }
  }
  require(report.total_value > 0, "system holds no items");
  report.threshold = static_cast<Value>(
      std::ceil(theta_ * static_cast<double>(report.total_value)));

  const NetFilterResult result =
      netfilter_.run(items, hierarchy, overlay, meter, report.threshold);
  report.frequent = result.frequent;
  report.stats = result.stats;

  for (const auto& [id, v] : report.frequent) {
    if (!previous_.contains(id)) report.newly_frequent.push_back(id);
  }
  for (const auto& [id, v] : previous_) {
    if (!report.frequent.contains(id)) report.dropped.push_back(id);
  }

  previous_ = report.frequent;
  ++epochs_;
  total_cost_ += result.stats.total_cost();
  return report;
}

}  // namespace nf::core
